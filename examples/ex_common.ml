(* Shared by every example: virtual run time, overridable through the
   VTP_DURATION environment variable so the test suite can smoke-run
   each example in a fraction of its demo length. *)

let duration default =
  match Sys.getenv_opt "VTP_DURATION" with
  | None -> default
  | Some s -> (
      match float_of_string_opt s with
      | Some d when d > 0.0 -> d
      | Some _ | None -> default)
