(* Media streaming to a mobile receiver — the paper's motivating
   scenario (§1): a GoP-structured video stream crosses a bursty
   wireless hop to a resource-limited handset.

   Two runs, same network and workload:
     - standard RFC 3448 TFRC (receiver computes the loss event rate);
     - QTP_light with partial reliability (receiver does only SACK).

   The receiver's operation counts show why the handset prefers
   QTP_light; delivery ratio and delay show what partial reliability
   buys the stream.

   Run with:  dune exec examples/media_streaming.exe *)

let duration = Ex_common.duration 30.0

let run ~light =
  let sim = Engine.Sim.create ~seed:5 () in
  let rng = Engine.Sim.split_rng sim in
  (* A 5 Mb/s wireless hop with 2% bursty (Gilbert-Elliott) loss. *)
  let forward =
    Netsim.Topology.spec ~rate_bps:5e6 ~delay:0.03
      ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:50)
      ~loss:(fun () ->
        Experiments.Common.gilbert ~loss:0.02 ~burstiness:0.6
          (Engine.Rng.split rng))
      ()
  in
  let topo = Netsim.Topology.duplex_path ~sim ~forward () in
  let cost_receiver = Stats.Cost.create () in
  let offer =
    if light then
      Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_partial ] ()
    else Qtp.Profile.qtp_tfrc ()
  in
  let responder =
    if light then Qtp.Profile.mobile_receiver () else Qtp.Profile.anything ()
  in
  let agreed = Qtp.Profile.agreed_exn offer responder in
  (* The application: a 25 fps video encoder pushing packetised frames. *)
  let source, push = Qtp.Source.queued () in
  let media =
    Workload.Media.start ~sim ~rng:(Engine.Rng.split rng)
      Workload.Media.default_params ~push ~stop_at:duration ()
  in
  let conn =
    Qtp.Connection.create ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      ~cost_receiver ~source
      (Qtp.Connection.config ~initial_rtt:0.2 agreed)
  in
  Engine.Sim.run ~until:duration sim;
  (conn, cost_receiver, media)

let describe name (conn, cost, media) =
  let delivered = Qtp.Connection.delivered conn in
  let skipped = Qtp.Connection.skipped conn in
  let pkts = Stats.Series.count (Qtp.Connection.arrivals conn) in
  let delays = Qtp.Connection.delivery_delays conn in
  Format.printf "@.--- %s ---@." name;
  Format.printf "video: %d frames (%.2f Mb/s mean)@."
    (Workload.Media.frames_emitted media)
    (Workload.Media.mean_rate_bps Workload.Media.default_params /. 1e6);
  Format.printf "delivered %d / skipped %d (ratio %.4f), retx %d@." delivered
    skipped
    (float_of_int delivered /. float_of_int (Stdlib.max 1 (delivered + skipped)))
    (Qtp.Connection.retransmissions conn);
  if Array.length delays > 0 then
    Format.printf "delivery delay p50 %.0f ms, p99 %.0f ms@."
      (1000.0 *. Stats.Summary.percentile delays 0.5)
      (1000.0 *. Stats.Summary.percentile delays 0.99);
  Format.printf "receiver: %d ops total, %.2f ops/packet, history entries %d@."
    (Stats.Cost.total_ops cost)
    (float_of_int (Stats.Cost.total_ops cost) /. float_of_int (Stdlib.max 1 pkts))
    (Stats.Cost.high_water cost "lh.entries")

let () =
  describe "standard TFRC receiver" (run ~light:false);
  describe "QTP_light receiver (partial reliability)" (run ~light:true);
  Format.printf
    "@.QTP_light moves the loss-history work off the handset and, with@.\
     partial reliability, repairs what it can before the playout deadline.@."
