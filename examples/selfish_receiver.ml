(* The selfish receiver attack (Georg & Gorinsky, cited in §3) and why
   QTP_light is immune.

   A standard TFRC receiver computes the loss event rate p itself and
   reports it; a selfish one simply reports p = 0 and the sender keeps
   accelerating regardless of actual congestion.  In QTP_light the
   receiver only acknowledges what it received (SACK); the sender
   reconstructs p from that coverage, so there is no number to lie
   about — a receiver claiming packets it never got would also be
   telling the reliability plane not to repair them.

   Run with:  dune exec examples/selfish_receiver.exe *)

let loss = 0.02

let duration = Ex_common.duration 30.0

let run ~light ~selfish =
  let sim = Engine.Sim.create ~seed:3 () in
  let rng = Engine.Sim.split_rng sim in
  let forward =
    Netsim.Topology.spec ~rate_bps:10e6 ~delay:0.04
      ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:50)
      ~loss:(fun () -> Netsim.Loss_model.bernoulli ~p:loss ~rng)
      ()
  in
  let topo = Netsim.Topology.duplex_path ~sim ~forward () in
  let offer =
    if light then
      Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_none ] ()
    else Qtp.Profile.qtp_tfrc ()
  in
  let responder =
    if light then Qtp.Profile.mobile_receiver () else Qtp.Profile.anything ()
  in
  let agreed = Qtp.Profile.agreed_exn offer responder in
  let conn =
    Qtp.Connection.create ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      (Qtp.Connection.config ~initial_rtt:0.2
         ~selfish_p_factor:(if selfish then 0.0 else 1.0)
         agreed)
  in
  Engine.Sim.run ~until:duration sim;
  Stats.Series.rate_bps (Qtp.Connection.arrivals conn)
    ~from_:(duration /. 6.0) ~until:duration
  /. 1e6

let () =
  Format.printf "path: 10 Mb/s with %.0f%% random loss@.@." (loss *. 100.0);
  let honest_std = run ~light:false ~selfish:false in
  let lying_std = run ~light:false ~selfish:true in
  let honest_light = run ~light:true ~selfish:false in
  let lying_light = run ~light:true ~selfish:true in
  Format.printf "standard TFRC, honest receiver:   %6.2f Mb/s (fair rate)@."
    honest_std;
  Format.printf "standard TFRC, selfish receiver:  %6.2f Mb/s  <- %.1fx theft@."
    lying_std (lying_std /. honest_std);
  Format.printf "QTP_light, honest receiver:       %6.2f Mb/s@." honest_light;
  Format.printf "QTP_light, 'selfish' receiver:    %6.2f Mb/s  <- no channel to lie@."
    lying_light
