(* Adaptive streaming: the encoder follows the transport.

   A streaming server rarely pushes a fixed bitrate: it encodes at the
   highest ladder rung the transport can carry.  QTP exposes its allowed
   rate ([Qtp.Connection.current_rate_bps]), so the encoder can adapt
   without probing — the §1 "convergence between media streaming and
   mobility" scenario end to end:

     encoder ladder -> QTP_light (partial reliability) -> bursty wireless

   The wireless channel degrades mid-run (1% loss for 30 s, then 6%
   bursty); the run shows the rung trajectory responding and the
   fraction of time spent at each quality.

   Run with:  dune exec examples/adaptive_streaming.exe *)

let ladder = [ 0.4e6; 0.8e6; 1.5e6; 2.5e6; 4.0e6 ]

let duration = Ex_common.duration 60.0

let () =
  let sim = Engine.Sim.create ~seed:9 () in
  let rng = Engine.Sim.split_rng sim in
  (* Two channel regimes; the forward link consults whichever is
     current. *)
  let mild =
    Experiments.Common.gilbert ~loss:0.01 ~burstiness:0.5 (Engine.Rng.split rng)
  in
  let harsh =
    Experiments.Common.gilbert ~loss:0.06 ~burstiness:0.7 (Engine.Rng.split rng)
  in
  let regime = ref mild in
  let forward =
    Netsim.Topology.spec ~rate_bps:5e6 ~delay:0.03
      ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:50)
      ~loss:(fun () ->
        Netsim.Loss_model.custom ~expected:0.01 (fun () ->
            Netsim.Loss_model.drops !regime))
      ()
  in
  let topo = Netsim.Topology.duplex_path ~sim ~forward () in
  ignore
    (Engine.Sim.schedule_at sim (0.5 *. duration) (fun () ->
         Format.printf "t=%5.1fs  -- channel degrades to 6%% bursty loss --@."
           (0.5 *. duration);
         regime := harsh));
  let agreed =
    Qtp.Profile.agreed_exn
      (Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_partial ] ())
      (Qtp.Profile.mobile_receiver ())
  in
  let source, push = Qtp.Source.queued () in
  let conn =
    Qtp.Connection.create ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      ~source
      (Qtp.Connection.config ~initial_rtt:0.2 agreed)
  in
  let media =
    Workload.Adaptive_media.start ~sim ~rng:(Engine.Rng.split rng)
      ~ladder_bps:ladder
      ~transport_rate_bps:(fun () -> Qtp.Connection.current_rate_bps conn)
      ~push ~stop_at:duration ()
  in
  let rec log () =
    Format.printf "t=%5.1fs  transport %.2f Mb/s  rung %.2f Mb/s@."
      (Engine.Sim.now sim)
      (Qtp.Connection.current_rate_bps conn /. 1e6)
      (Workload.Adaptive_media.current_rung_bps media /. 1e6);
    if Engine.Sim.now sim < duration -. 5.0 then
      ignore (Engine.Sim.schedule_after sim 5.0 log)
  in
  ignore (Engine.Sim.schedule_at sim 5.0 log);
  Engine.Sim.run ~until:duration sim;
  Format.printf "@.%d frames, %d quality switches@."
    (Workload.Adaptive_media.frames_emitted media)
    (Workload.Adaptive_media.switches media);
  Format.printf "time share per rung:@.";
  List.iter
    (fun (rung, frac) ->
      Format.printf "  %.2f Mb/s: %4.1f%%@." (rung /. 1e6) (100.0 *. frac))
    (Workload.Adaptive_media.rung_time_fractions media);
  Format.printf "delivered %d segments (%d skipped past deadline)@."
    (Qtp.Connection.delivered conn)
    (Qtp.Connection.skipped conn)
