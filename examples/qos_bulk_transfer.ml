(* QoS bulk transfer over a DiffServ/AF network — the QTP_AF scenario
   (§4): an application negotiated a committed rate g with the network's
   AF class (edge token-bucket marking, RIO core queue), then tries to
   actually use it for a reliable transfer while unresponsive excess
   traffic loads the class.

   TCP cannot exploit the reservation; QTP_AF (gTFRC + full SACK
   reliability) collects it.

   Run with:  dune exec examples/qos_bulk_transfer.exe *)

let g_mbps = 3.0

let duration = Ex_common.duration 60.0

let describe name (r : Experiments.Af_scenario.result) =
  Format.printf "%-28s achieved %.2f Mb/s  (%.0f%% of g)  retx=%d@." name
    (r.Experiments.Af_scenario.achieved_wire_bps /. 1e6)
    (100.0 *. r.Experiments.Af_scenario.achieved_wire_bps /. (g_mbps *. 1e6))
    r.Experiments.Af_scenario.retransmissions

let () =
  Format.printf
    "AF class: 10 Mb/s RIO bottleneck, committed rate g = %.1f Mb/s,@.\
     8 Mb/s of unresponsive excess traffic in the same class.@.@."
    g_mbps;
  let run proto =
    Experiments.Af_scenario.run ~seed:11 ~g_mbps ~proto ~duration ()
  in
  describe "TCP NewReno" (run Experiments.Af_scenario.Tcp_newreno);
  describe "QTP_AF (gTFRC + SACK full)" (run Experiments.Af_scenario.Qtp_af);
  describe "TFRC+SACK without floor" (run Experiments.Af_scenario.Tfrc_full_nofloor);
  Format.printf
    "@.TCP's AIMD reacts to out-of-profile drops and cannot hold the@.\
     reservation; gTFRC never descends below g, so QTP_AF delivers the@.\
     negotiated QoS with full reliability on top.@."
