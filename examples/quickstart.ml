(* Quickstart: open a VTP connection over a simulated path, negotiate a
   profile, transfer data for 10 seconds, print what happened.

   Run with:  dune exec examples/quickstart.exe *)

let duration = Ex_common.duration 10.0

let () =
  (* 1. A simulation world and a 10 Mb/s, 40 ms path. *)
  let sim = Engine.Sim.create ~seed:1 () in
  let forward =
    Netsim.Topology.spec ~rate_bps:10e6 ~delay:0.04
      ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:50)
      ()
  in
  let topo = Netsim.Topology.duplex_path ~sim ~forward () in

  (* 2. Negotiate: a streaming server offers QTP_light; the peer is a
     constrained mobile receiver.  The SYN / SYN-ACK / ACK handshake
     runs in-band. *)
  let conn =
    Qtp.Connection.create_negotiated ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      ~initial_rtt:0.2
      ~initiator:(Qtp.Profile.qtp_light ())
      ~responder:(Qtp.Profile.mobile_receiver ())
      ()
  in

  (* 3. Run virtual time. *)
  Engine.Sim.run ~until:duration sim;

  (* 4. Inspect. *)
  (match Qtp.Connection.state conn with
  | Qtp.Connection.Established agreed ->
      Format.printf "established: %a@." Qtp.Capabilities.pp_agreed agreed
  | Qtp.Connection.Failed reason -> Format.printf "failed: %s@." reason
  | Qtp.Connection.Negotiating | Qtp.Connection.Closing
  | Qtp.Connection.Closed ->
      Format.printf "unexpected connection state@.");
  let rate =
    Stats.Series.rate_bps (Qtp.Connection.arrivals conn)
      ~from_:(0.1 *. duration) ~until:duration
  in
  Format.printf
    "sent %d segments, delivered %d in order, throughput %.2f Mb/s@."
    (Qtp.Connection.data_sent conn)
    (Qtp.Connection.delivered conn)
    (rate /. 1e6);
  Format.printf "sender loss estimate: %.4f (computed sender-side: QTP_light)@."
    (Qtp.Connection.sender_loss_estimate conn)
