(* Sack.Blocks: normalisation algebra. *)

module B = Sack.Blocks
module S = Packet.Serial

let blk a b = B.make (S.of_int a) (S.of_int b)

let ints blocks =
  List.map
    (fun (b : B.t) ->
      (S.to_int b.Packet.Header.block_start, S.to_int b.Packet.Header.block_end))
    blocks

let test_make_rejects_empty () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (blk 5 5);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "reversed rejected" true
    (try
       ignore (blk 6 5);
       false
     with Invalid_argument _ -> true)

let test_length_contains () =
  let b = blk 10 15 in
  Alcotest.(check int) "length" 5 (B.length b);
  Alcotest.(check bool) "contains start" true (B.contains b (S.of_int 10));
  Alcotest.(check bool) "contains mid" true (B.contains b (S.of_int 12));
  Alcotest.(check bool) "end excluded" false (B.contains b (S.of_int 15))

let test_normalise_merges_overlap () =
  Alcotest.(check (list (pair int int)))
    "overlap merged"
    [ (1, 8) ]
    (ints (B.normalise [ blk 1 5; blk 3 8 ]))

let test_normalise_merges_adjacent () =
  Alcotest.(check (list (pair int int)))
    "adjacent merged"
    [ (1, 10) ]
    (ints (B.normalise [ blk 5 10; blk 1 5 ]))

let test_normalise_keeps_gaps () =
  Alcotest.(check (list (pair int int)))
    "gap preserved"
    [ (1, 3); (5, 7) ]
    (ints (B.normalise [ blk 5 7; blk 1 3 ]))

let test_insert () =
  let bs = B.normalise [ blk 1 3; blk 5 7 ] in
  Alcotest.(check (list (pair int int)))
    "insert extends the left block"
    [ (1, 4); (5, 7) ]
    (ints (B.insert bs (S.of_int 3)));
  let bridged = B.insert (B.insert bs (S.of_int 3)) (S.of_int 4) in
  Alcotest.(check (list (pair int int))) "fully merged" [ (1, 7) ] (ints bridged)

let test_mem_total () =
  let bs = B.normalise [ blk 1 3; blk 5 7 ] in
  Alcotest.(check bool) "mem" true (B.mem bs (S.of_int 6));
  Alcotest.(check bool) "not mem" false (B.mem bs (S.of_int 4));
  Alcotest.(check int) "total" 4 (B.total bs)

let test_is_normalised () =
  Alcotest.(check bool) "good" true (B.is_normalised [ blk 1 3; blk 5 7 ]);
  Alcotest.(check bool) "adjacent is not normal" false
    (B.is_normalised [ blk 1 3; blk 3 7 ]);
  Alcotest.(check bool) "out of order is not normal" false
    (B.is_normalised [ blk 5 7; blk 1 3 ])

let prop_normalise_idempotent_and_sound =
  QCheck.Test.make ~name:"normalise: normal form + same membership" ~count:300
    QCheck.(list (pair (int_bound 500) (int_range 1 20)))
    (fun raw ->
      let blocks = List.map (fun (a, len) -> blk a (a + len)) raw in
      let norm = B.normalise blocks in
      B.is_normalised norm
      && B.normalise norm = norm
      && List.for_all
           (fun x ->
             let s = S.of_int x in
             B.mem norm s = List.exists (fun b -> B.contains b s) blocks)
           (List.init 550 Fun.id))

let prop_insert_preserves_normal_form =
  QCheck.Test.make ~name:"insert keeps normal form and adds member" ~count:300
    QCheck.(pair (list (pair (int_bound 200) (int_range 1 5))) (int_bound 220))
    (fun (raw, x) ->
      let norm = B.normalise (List.map (fun (a, len) -> blk a (a + len)) raw) in
      let after = B.insert norm (S.of_int x) in
      B.is_normalised after && B.mem after (S.of_int x))

let suite =
  [
    Alcotest.test_case "make rejects empty" `Quick test_make_rejects_empty;
    Alcotest.test_case "length/contains" `Quick test_length_contains;
    Alcotest.test_case "normalise merges overlap" `Quick
      test_normalise_merges_overlap;
    Alcotest.test_case "normalise merges adjacent" `Quick
      test_normalise_merges_adjacent;
    Alcotest.test_case "normalise keeps gaps" `Quick test_normalise_keeps_gaps;
    Alcotest.test_case "insert" `Quick test_insert;
    Alcotest.test_case "mem/total" `Quick test_mem_total;
    Alcotest.test_case "is_normalised" `Quick test_is_normalised;
    QCheck_alcotest.to_alcotest prop_normalise_idempotent_and_sound;
    QCheck_alcotest.to_alcotest prop_insert_preserves_normal_form;
  ]
