(* Trunk.Sched: the differential battery.  The fast scheduler (circular
   ring, in-place FIFO columns, O(1) per allocation) is replayed
   against naive list-based references on random interleavings of
   admissions and segment fills, demanding the exact same allocation
   sequence — plus the classic DRR fairness bound as a property of the
   fast implementation alone. *)

module Sc = Trunk.Sched

(* --- naive references --------------------------------------------- *)

(* Reference DRR: the textbook loop over an explicit user list.  Round
   state (deficits, the round order, whether the head is still owed its
   quantum top-up) persists across [fill] calls exactly like the real
   scheduler's, but every structure is a plain list rebuilt with
   appends — slow and obvious. *)
module Ref_drr = struct
  type t = {
    quantum : int;
    weights : int array;
    backlog : int array;
    deficit : int array;
    mutable ring : int list;  (* head first, round order *)
    mutable fresh : bool;  (* head not yet topped up this turn *)
  }

  let create ~quantum ~weights ~users =
    {
      quantum;
      weights;
      backlog = Array.make users 0;
      deficit = Array.make users 0;
      ring = [];
      fresh = true;
    }

  let enqueue t ~user bytes =
    if bytes > 0 then begin
      if t.backlog.(user) = 0 then begin
        if t.ring = [] then t.fresh <- true;
        t.ring <- t.ring @ [ user ]
      end;
      t.backlog.(user) <- t.backlog.(user) + bytes
    end

  let fill t ~budget ~overhead ~cap ~f =
    let used = ref 0 in
    let left = ref budget in
    let continue = ref true in
    while !continue do
      match t.ring with
      | [] -> continue := false
      | u :: rest ->
          if !left < overhead + 1 then continue := false
          else begin
            if t.fresh then begin
              t.deficit.(u) <- t.deficit.(u) + (t.quantum * t.weights.(u));
              t.fresh <- false
            end;
            let take =
              Stdlib.min
                (Stdlib.min t.backlog.(u) t.deficit.(u))
                (Stdlib.min cap (!left - overhead))
            in
            if take >= 1 then begin
              f ~user:u ~take;
              t.backlog.(u) <- t.backlog.(u) - take;
              t.deficit.(u) <- t.deficit.(u) - take;
              used := !used + overhead + take;
              left := !left - (overhead + take)
            end;
            if t.backlog.(u) = 0 then begin
              (* Drained: forfeit the unspent deficit, leave the round. *)
              t.deficit.(u) <- 0;
              t.ring <- rest;
              t.fresh <- true
            end
            else if t.deficit.(u) = 0 then begin
              (* Turn spent: to the back of the round. *)
              t.ring <- rest @ [ u ];
              t.fresh <- true
            end
            else if take = 0 then continue := false
          end
    done;
    !used
end

(* Reference FIFO: admission chunks in a plain list, same-user tail
   coalescing, head split on cap/budget. *)
module Ref_fifo = struct
  type t = { mutable chunks : (int * int) list (* (user, bytes), head first *) }

  let create () = { chunks = [] }

  let enqueue t ~user bytes =
    if bytes > 0 then begin
      match List.rev t.chunks with
      | (u, b) :: tail_rev when u = user ->
          t.chunks <- List.rev ((u, b + bytes) :: tail_rev)
      | _ -> t.chunks <- t.chunks @ [ (user, bytes) ]
    end

  let fill t ~budget ~overhead ~cap ~f =
    let used = ref 0 in
    let left = ref budget in
    let continue = ref true in
    while !continue do
      match t.chunks with
      | [] -> continue := false
      | (u, avail) :: rest ->
          if !left < overhead + 1 then continue := false
          else begin
            let take = Stdlib.min avail (Stdlib.min cap (!left - overhead)) in
            f ~user:u ~take;
            if take = avail then t.chunks <- rest
            else t.chunks <- (u, avail - take) :: rest;
            used := !used + overhead + take;
            left := !left - (overhead + take)
          end
    done;
    !used
end

(* --- op-sequence differential ------------------------------------- *)

type op = Enq of int * int | Fill of int

let gen_case =
  QCheck.Gen.(
    let* users = int_range 2 8 in
    let* quantum = int_range 4 64 in
    let* cap = int_range 1 64 in
    let* overhead = int_range 0 8 in
    let* weights = array_size (return users) (int_range 1 7) in
    let* ops =
      list_size (int_range 5 40)
        (oneof
           [
             map2 (fun u b -> Enq (u, b)) (int_range 0 (users - 1))
               (int_range 1 200);
             map (fun b -> Fill b) (int_range 1 400);
           ])
    in
    return (users, quantum, cap, overhead, weights, ops))

let pp_case fmt (users, quantum, cap, overhead, weights, ops) =
  Format.fprintf fmt "users=%d q=%d cap=%d ovh=%d w=[%s] ops=[%s]" users
    quantum cap overhead
    (String.concat ";" (Array.to_list (Array.map string_of_int weights)))
    (String.concat ";"
       (List.map
          (function
            | Enq (u, b) -> Printf.sprintf "E%d+%d" u b
            | Fill b -> Printf.sprintf "F%d" b)
          ops))

let allocs_of fill =
  let acc = ref [] in
  let used = fill ~f:(fun ~user ~take -> acc := (user, take) :: !acc) in
  (used, List.rev !acc)

let drr_differential (users, quantum, cap, overhead, weights, ops) =
  let fast = Sc.create ~quantum ~weights Sc.Drr ~users () in
  let ref_ = Ref_drr.create ~quantum ~weights ~users in
  List.for_all
    (fun op ->
      match op with
      | Enq (u, b) ->
          Sc.enqueue fast ~user:u b;
          Ref_drr.enqueue ref_ ~user:u b;
          Sc.backlog fast ~user:u = ref_.Ref_drr.backlog.(u)
      | Fill budget ->
          let fu, fa =
            allocs_of (fun ~f -> Sc.fill fast ~budget ~overhead ~cap ~f)
          in
          let ru, ra =
            allocs_of (fun ~f -> Ref_drr.fill ref_ ~budget ~overhead ~cap ~f)
          in
          fu = ru && fa = ra)
    ops
  && Sc.total fast = Array.fold_left ( + ) 0 ref_.Ref_drr.backlog

let fifo_differential (users, _quantum, cap, overhead, _weights, ops) =
  let fast = Sc.create Sc.Fifo ~users () in
  let ref_ = Ref_fifo.create () in
  List.for_all
    (fun op ->
      match op with
      | Enq (u, b) ->
          Sc.enqueue fast ~user:u b;
          Ref_fifo.enqueue ref_ ~user:u b;
          true
      | Fill budget ->
          let fu, fa =
            allocs_of (fun ~f -> Sc.fill fast ~budget ~overhead ~cap ~f)
          in
          let ru, ra =
            allocs_of (fun ~f -> Ref_fifo.fill ref_ ~budget ~overhead ~cap ~f)
          in
          fu = ru && fa = ra)
    ops
  && Sc.total fast
     = List.fold_left (fun n (_, b) -> n + b) 0 ref_.Ref_fifo.chunks

let prop_drr_matches_reference =
  QCheck.Test.make ~name:"DRR ring matches naive list reference" ~count:300
    (QCheck.make ~print:(Format.asprintf "%a" pp_case) gen_case)
    drr_differential

let prop_fifo_matches_reference =
  QCheck.Test.make ~name:"FIFO columns match naive list reference" ~count:300
    (QCheck.make ~print:(Format.asprintf "%a" pp_case) gen_case)
    fifo_differential

(* --- DRR fairness bound ------------------------------------------- *)

(* With every user continuously backlogged, a completed turn serves
   exactly [quantum * weight] bytes (take never exceeds the deficit and
   a turn only ends when the deficit hits zero or the queue drains), so
   per-unit-weight service across users can differ by at most one
   turn's quantum — regardless of how segment budgets slice the rounds. *)
let prop_drr_fairness_bound =
  QCheck.Gen.(
    let* users = int_range 2 6 in
    let* quantum = int_range 8 64 in
    let* cap = int_range 1 64 in
    let* overhead = int_range 0 8 in
    let* weights = array_size (return users) (int_range 1 5) in
    let* fills = list_size (int_range 10 60) (int_range 16 512) in
    return (users, quantum, cap, overhead, weights, fills))
  |> fun gen ->
  QCheck.Test.make
    ~name:"DRR: per-unit-weight service within one quantum" ~count:300
    (QCheck.make gen)
    (fun (users, quantum, cap, overhead, weights, fills) ->
      let t = Sc.create ~quantum ~weights Sc.Drr ~users () in
      let service = Array.make users 0 in
      for u = 0 to users - 1 do
        (* Deep enough that nobody drains within the run. *)
        Sc.enqueue t ~user:u 10_000_000
      done;
      List.iter
        (fun budget ->
          ignore
            (Sc.fill t ~budget ~overhead ~cap ~f:(fun ~user ~take ->
                 service.(user) <- service.(user) + take)))
        fills;
      let per_w u = float_of_int service.(u) /. float_of_int weights.(u) in
      let lo = ref (per_w 0) and hi = ref (per_w 0) in
      for u = 1 to users - 1 do
        let s = per_w u in
        if s < !lo then lo := s;
        if s > !hi then hi := s
      done;
      !hi -. !lo <= float_of_int quantum +. 1e-9)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_drr_matches_reference;
    QCheck_alcotest.to_alcotest prop_fifo_matches_reference;
    QCheck_alcotest.to_alcotest prop_drr_fairness_bound;
  ]
