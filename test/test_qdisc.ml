(* Netsim.Qdisc: FIFO order, capacities, RIO colour differentiation. *)

let frame ?(mark = Netsim.Mark.Best_effort) ?(size = 1000) uid =
  Netsim.Frame.make ~uid ~flow_id:0 ~size ~mark ~born:0.0
    (Netsim.Frame.Raw uid)

let test_droptail_fifo () =
  let q = Netsim.Qdisc.droptail ~capacity_pkts:10 in
  for i = 1 to 5 do
    Alcotest.(check bool) "accepted" true
      (Netsim.Qdisc.enqueue q ~now:0.0 (frame i))
  done;
  let order = ref [] in
  let rec drain () =
    match Netsim.Qdisc.dequeue q ~now:0.0 with
    | Some f ->
        order := f.Netsim.Frame.uid :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "FIFO" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_droptail_capacity () =
  let q = Netsim.Qdisc.droptail ~capacity_pkts:3 in
  for i = 1 to 3 do
    ignore (Netsim.Qdisc.enqueue q ~now:0.0 (frame i))
  done;
  Alcotest.(check bool) "tail dropped" false
    (Netsim.Qdisc.enqueue q ~now:0.0 (frame 4));
  Alcotest.(check int) "length" 3 (Netsim.Qdisc.length_pkts q);
  let st = Netsim.Qdisc.stats q in
  Alcotest.(check int) "offered" 4 st.Netsim.Qdisc.offered;
  Alcotest.(check int) "dropped" 1 st.Netsim.Qdisc.dropped

let test_byte_accounting () =
  let q = Netsim.Qdisc.droptail ~capacity_pkts:10 in
  ignore (Netsim.Qdisc.enqueue q ~now:0.0 (frame ~size:700 1));
  ignore (Netsim.Qdisc.enqueue q ~now:0.0 (frame ~size:300 2));
  Alcotest.(check int) "bytes" 1000 (Netsim.Qdisc.length_bytes q);
  ignore (Netsim.Qdisc.dequeue q ~now:0.0);
  Alcotest.(check int) "bytes after dequeue" 300 (Netsim.Qdisc.length_bytes q)

let red_params =
  {
    Netsim.Red.min_th = 5.0;
    max_th = 15.0;
    max_p = 0.1;
    w_q = 0.2;
    gentle = true;
    idle_pkt_time = 0.001;
  }

let test_red_queue_caps () =
  let rng = Engine.Rng.create ~seed:61 in
  let q = Netsim.Qdisc.red ~capacity_pkts:20 ~params:red_params ~rng () in
  let accepted = ref 0 in
  for i = 1 to 200 do
    if Netsim.Qdisc.enqueue q ~now:(float_of_int i *. 1e-4) (frame i) then
      incr accepted
  done;
  Alcotest.(check bool) "hard cap respected" true
    (Netsim.Qdisc.length_pkts q <= 20);
  Alcotest.(check bool) "some early drops happened" true (!accepted < 200)

let rio_q () =
  let rng = Engine.Rng.create ~seed:63 in
  Netsim.Qdisc.rio ~capacity_pkts:60
    ~in_params:
      { red_params with min_th = 20.0; max_th = 40.0; max_p = 0.02 }
    ~out_params:{ red_params with min_th = 3.0; max_th = 8.0; max_p = 0.5 }
    ~rng ()

let test_rio_protects_green () =
  let q = rio_q () in
  let green_drops = ref 0 and red_drops = ref 0 in
  let now = ref 0.0 in
  (* Hold the queue around 25 packets: well above the out-profile RED
     region (min 3 / max 8) and with green occupancy (~half) below the
     in-profile thresholds (min 20 / max 40) — the operating point an AF
     class is engineered for. *)
  for i = 1 to 25 do
    ignore (Netsim.Qdisc.enqueue q ~now:0.0 (frame ~mark:Netsim.Mark.Green i))
  done;
  for i = 26 to 4000 do
    now := !now +. 1e-4;
    let mark = if i mod 2 = 0 then Netsim.Mark.Green else Netsim.Mark.Red in
    if not (Netsim.Qdisc.enqueue q ~now:!now (frame ~mark i)) then begin
      match mark with
      | Netsim.Mark.Green -> incr green_drops
      | _ -> incr red_drops
    end;
    ignore (Netsim.Qdisc.dequeue q ~now:!now)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "red drops (%d) >> green drops (%d)" !red_drops !green_drops)
    true
    (!red_drops > 10 * Stdlib.max 1 !green_drops);
  let st = Netsim.Qdisc.stats q in
  Alcotest.(check int) "green drop stat" !green_drops st.Netsim.Qdisc.dropped_green;
  Alcotest.(check int) "nongreen drop stat" !red_drops
    st.Netsim.Qdisc.dropped_nongreen

let test_rio_green_accounting () =
  let q = rio_q () in
  ignore (Netsim.Qdisc.enqueue q ~now:0.0 (frame ~mark:Netsim.Mark.Green 1));
  ignore (Netsim.Qdisc.enqueue q ~now:0.0 (frame ~mark:Netsim.Mark.Red 2));
  ignore (Netsim.Qdisc.enqueue q ~now:0.0 (frame ~mark:Netsim.Mark.Green 3));
  (* Dequeue everything; green counters must come back to zero without
     going negative (internally asserted by construction). *)
  let rec drain n =
    match Netsim.Qdisc.dequeue q ~now:0.1 with
    | Some _ -> drain (n + 1)
    | None -> n
  in
  Alcotest.(check int) "drained all" 3 (drain 0);
  Alcotest.(check int) "empty" 0 (Netsim.Qdisc.length_pkts q)

let test_dequeue_empty () =
  let q = Netsim.Qdisc.droptail ~capacity_pkts:2 in
  Alcotest.(check bool) "empty dequeue" true
    (Netsim.Qdisc.dequeue q ~now:0.0 = None)

let prop_droptail_never_exceeds_capacity =
  QCheck.Test.make ~name:"droptail occupancy bounded" ~count:100
    QCheck.(list bool)
    (fun ops ->
      let q = Netsim.Qdisc.droptail ~capacity_pkts:5 in
      let uid = ref 0 in
      List.for_all
        (fun enq ->
          if enq then begin
            incr uid;
            ignore (Netsim.Qdisc.enqueue q ~now:0.0 (frame !uid))
          end
          else ignore (Netsim.Qdisc.dequeue q ~now:0.0);
          Netsim.Qdisc.length_pkts q <= 5)
        ops)

let suite =
  [
    Alcotest.test_case "droptail FIFO" `Quick test_droptail_fifo;
    Alcotest.test_case "droptail capacity" `Quick test_droptail_capacity;
    Alcotest.test_case "byte accounting" `Quick test_byte_accounting;
    Alcotest.test_case "red caps occupancy" `Quick test_red_queue_caps;
    Alcotest.test_case "rio protects green" `Quick test_rio_protects_green;
    Alcotest.test_case "rio green accounting" `Quick test_rio_green_accounting;
    Alcotest.test_case "dequeue empty" `Quick test_dequeue_empty;
    QCheck_alcotest.to_alcotest prop_droptail_never_exceeds_capacity;
  ]
