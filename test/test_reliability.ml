(* Sack.Reliability: policy-driven retransmission decisions and forward
   points. *)

module SB = Sack.Scoreboard
module RL = Sack.Reliability
module S = Packet.Serial

let blk a b = Sack.Blocks.make (S.of_int a) (S.of_int b)

let setup policy =
  let sb = SB.create () in
  let rl = RL.create policy ~scoreboard:sb () in
  (sb, rl)

let send_n sb n =
  for i = 0 to n - 1 do
    SB.on_send sb ~seq:(S.of_int i)
      ~now:(float_of_int i *. 0.001)
      ~size:1000 ~is_retx:false
  done

let infer_loss sb =
  (* Make 0 lost via SACK of 1..5. *)
  let r = SB.on_feedback sb ~cum_ack:(S.of_int 0) ~blocks:[ blk 1 6 ] in
  r.SB.newly_lost

let test_full_retransmits () =
  let sb, rl = setup RL.Full in
  send_n sb 6;
  RL.on_losses rl ~now:0.01 (infer_loss sb);
  (match RL.next_decision rl ~now:0.02 with
  | RL.Retransmit s -> Alcotest.(check int) "retransmit 0" 0 (S.to_int s)
  | RL.Fresh_data -> Alcotest.fail "expected retransmit");
  (* Honour it; queue must then be empty. *)
  SB.on_send sb ~seq:(S.of_int 0) ~now:0.02 ~size:1000 ~is_retx:true;
  match RL.next_decision rl ~now:0.03 with
  | RL.Fresh_data -> ()
  | RL.Retransmit _ -> Alcotest.fail "queue should be drained"

let test_unreliable_abandons () =
  let sb, rl = setup RL.Unreliable in
  send_n sb 6;
  RL.on_losses rl ~now:0.01 (infer_loss sb);
  Alcotest.(check int) "abandoned immediately" 1 (RL.abandoned rl);
  (match RL.next_decision rl ~now:0.02 with
  | RL.Fresh_data -> ()
  | RL.Retransmit _ -> Alcotest.fail "unreliable never retransmits");
  (* Forward point passes the abandoned hole and the sacked run. *)
  let fwd = RL.fwd_point rl ~highest_sent:(SB.next_seq sb) in
  Alcotest.(check int) "fwd past hole and sacked" 6 (S.to_int fwd)

let test_partial_respects_max_retx () =
  let sb, rl = setup (RL.Partial { max_retx = 1; deadline = 100.0 }) in
  send_n sb 6;
  RL.on_losses rl ~now:0.01 (infer_loss sb);
  (match RL.next_decision rl ~now:0.02 with
  | RL.Retransmit s ->
      SB.on_send sb ~seq:s ~now:0.02 ~size:1000 ~is_retx:true
  | RL.Fresh_data -> Alcotest.fail "first retransmit allowed");
  (* The retransmission is lost too. *)
  ignore (SB.mark_expired sb ~now:10.0 ~timeout:1.0);
  RL.on_losses rl ~now:10.0 [ S.of_int 0 ];
  (match RL.next_decision rl ~now:10.0 with
  | RL.Fresh_data -> Alcotest.(check int) "gave up" 1 (RL.abandoned rl)
  | RL.Retransmit _ -> Alcotest.fail "max_retx exceeded")

let test_partial_respects_deadline () =
  let sb, rl = setup (RL.Partial { max_retx = 10; deadline = 0.5 }) in
  send_n sb 6;
  (* Loss detected late: the segment (sent at ~0) is already past its
     deadline when the opportunity arises. *)
  RL.on_losses rl ~now:1.0 (infer_loss sb);
  match RL.next_decision rl ~now:1.0 with
  | RL.Fresh_data -> Alcotest.(check int) "abandoned by deadline" 1 (RL.abandoned rl)
  | RL.Retransmit _ -> Alcotest.fail "deadline exceeded"

let test_stale_queue_entries_skipped () =
  let sb, rl = setup RL.Full in
  send_n sb 6;
  RL.on_losses rl ~now:0.01 (infer_loss sb);
  (* The hole heals (late arrival -> cum advance) before the sender acts. *)
  ignore (SB.on_feedback sb ~cum_ack:(S.of_int 6) ~blocks:[]);
  match RL.next_decision rl ~now:0.02 with
  | RL.Fresh_data -> ()
  | RL.Retransmit _ -> Alcotest.fail "acked seq must not be retransmitted"

let test_duplicate_loss_reports_queued_once () =
  let sb, rl = setup RL.Full in
  send_n sb 6;
  let lost = infer_loss sb in
  RL.on_losses rl ~now:0.01 lost;
  RL.on_losses rl ~now:0.02 lost;
  Alcotest.(check int) "queued once" 1 (RL.retransmissions_queued rl)

let test_full_fwd_point_is_una () =
  let sb, rl = setup RL.Full in
  send_n sb 6;
  ignore (SB.on_feedback sb ~cum_ack:(S.of_int 2) ~blocks:[ blk 4 6 ]);
  (* Hole at 2..3 not abandoned under Full: receiver must wait. *)
  let fwd = RL.fwd_point rl ~highest_sent:(SB.next_seq sb) in
  Alcotest.(check int) "fwd = una" 2 (S.to_int fwd)

let test_policy_pp () =
  Alcotest.(check string) "pp full" "full"
    (Format.asprintf "%a" RL.pp_policy RL.Full);
  Alcotest.(check string) "pp unreliable" "unreliable"
    (Format.asprintf "%a" RL.pp_policy RL.Unreliable)

let suite =
  [
    Alcotest.test_case "full retransmits" `Quick test_full_retransmits;
    Alcotest.test_case "unreliable abandons" `Quick test_unreliable_abandons;
    Alcotest.test_case "partial max_retx" `Quick test_partial_respects_max_retx;
    Alcotest.test_case "partial deadline" `Quick test_partial_respects_deadline;
    Alcotest.test_case "stale queue skipped" `Quick
      test_stale_queue_entries_skipped;
    Alcotest.test_case "dedup loss reports" `Quick
      test_duplicate_loss_reports_queued_once;
    Alcotest.test_case "full fwd = una" `Quick test_full_fwd_point_is_una;
    Alcotest.test_case "policy pp" `Quick test_policy_pp;
  ]
