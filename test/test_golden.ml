(* Golden-trace conformance: every corpus scenario replayed under both
   event-queue backends must produce the canonical trace committed
   under test/golden/, byte for byte.

   This turns the scheduler-determinism claim into a regression gate:
   any behavioural drift anywhere in the protocol stack — segment
   scheduling, loss inference, rate updates, negotiation — changes
   trace bytes and shows up as a pinpointed line diff rather than a
   silent number change.

   Regenerate after an intentional behaviour change with:
     dune exec bin/vtp_trace.exe -- --regen test/golden *)

let golden_path name = Filename.concat "golden" (name ^ ".trace")

let read_file path = In_channel.with_open_bin path In_channel.input_all

let pp_failure name (d : Trace.Export.divergence) =
  Alcotest.failf "%s: %a" name Trace.Export.pp_divergence d

(* One replay per (entry, backend), shared across the test cases so the
   corpus is not re-simulated for every assertion.  All captures fan
   over the domain pool on first use; each capture's recorder is
   ambient per domain, so concurrent replays never share state. *)
let captured = Hashtbl.create 16

let populate () =
  if Hashtbl.length captured = 0 then begin
    let work =
      List.concat_map
        (fun (e : Fuzz.Golden.entry) -> [ (e, `Wheel); (e, `Heap) ])
        Fuzz.Golden.corpus
    in
    let results =
      Engine.Pool.with_pool (fun pool ->
          Engine.Pool.map_list pool
            (fun (e, sched) -> (e, sched, Fuzz.Golden.capture ~sched e))
            work)
    in
    List.iter
      (fun ((e : Fuzz.Golden.entry), sched, (report, recorder)) ->
        (* A scenario that stops passing its oracles would silently
           turn the golden file into a record of broken behaviour. *)
        if not (Fuzz.Exec.passed report) then
          Alcotest.failf "%s: scenario no longer passes:@.%a"
            e.Fuzz.Golden.name Fuzz.Exec.pp_report report;
        Hashtbl.replace captured
          (e.Fuzz.Golden.name, sched)
          (Trace.Export.canonical recorder))
      results
  end

let canonical ~sched (e : Fuzz.Golden.entry) =
  populate ();
  match Hashtbl.find_opt captured (e.Fuzz.Golden.name, sched) with
  | Some text -> text
  | None ->
      Alcotest.failf "%s: capture missing from corpus fan-out"
        e.Fuzz.Golden.name

let test_backends_agree () =
  List.iter
    (fun (e : Fuzz.Golden.entry) ->
      let wheel = canonical ~sched:`Wheel e in
      let heap = canonical ~sched:`Heap e in
      match Trace.Export.diff heap wheel with
      | None -> ()
      | Some d -> pp_failure (e.Fuzz.Golden.name ^ " (heap vs wheel)") d)
    Fuzz.Golden.corpus

let test_matches_committed () =
  List.iter
    (fun (e : Fuzz.Golden.entry) ->
      let path = golden_path e.Fuzz.Golden.name in
      if not (Sys.file_exists path) then
        Alcotest.failf
          "%s: missing committed trace %s (regenerate with vtp_trace --regen)"
          e.Fuzz.Golden.name path;
      let want = read_file path in
      let got = canonical ~sched:`Wheel e in
      match Trace.Export.diff want got with
      | None -> ()
      | Some d -> pp_failure (e.Fuzz.Golden.name ^ " (vs committed)") d)
    Fuzz.Golden.corpus

let test_digest_stability () =
  (* The committed digest is a pure function of the committed bytes;
     check one entry end to end so digest plumbing cannot rot. *)
  let e = List.hd Fuzz.Golden.corpus in
  let text = canonical ~sched:`Wheel e in
  Alcotest.(check string)
    "digest matches committed file"
    (Trace.Export.digest_of_string (read_file (golden_path e.Fuzz.Golden.name)))
    (Trace.Export.digest_of_string text)

let test_seeded_mismatch_is_pinpointed () =
  (* Negative control: corrupt one event line of a committed trace and
     check the diff names exactly that line.  Guards against a diff
     that reports success on differing inputs. *)
  let text = read_file (golden_path "light_headline") in
  let lines = String.split_on_char '\n' text in
  let target = 5 in
  let mutated =
    String.concat "\n"
      (List.mapi
         (fun i l -> if i = target - 1 then l ^ " CORRUPTED" else l)
         lines)
  in
  match Trace.Export.diff text mutated with
  | Some d ->
      Alcotest.(check int) "first divergent line" target d.Trace.Export.line;
      (match (d.Trace.Export.left, d.Trace.Export.right) with
      | Some l, Some r ->
          Alcotest.(check string) "right is left corrupted" (l ^ " CORRUPTED") r
      | _ -> Alcotest.fail "divergence should carry both lines")
  | None -> Alcotest.fail "diff failed to flag a seeded mismatch"

let test_corpus_names_unique () =
  let names = List.map (fun e -> e.Fuzz.Golden.name) Fuzz.Golden.corpus in
  Alcotest.(check int)
    "corpus names unique"
    (List.length names)
    (List.length (List.sort_uniq String.compare names))

let suite =
  [
    Alcotest.test_case "heap and wheel replay byte-identically" `Slow
      test_backends_agree;
    Alcotest.test_case "replay matches committed corpus" `Slow
      test_matches_committed;
    Alcotest.test_case "digest stability" `Slow test_digest_stability;
    Alcotest.test_case "seeded mismatch is pinpointed" `Quick
      test_seeded_mismatch_is_pinpointed;
    Alcotest.test_case "corpus names unique" `Quick test_corpus_names_unique;
  ]
