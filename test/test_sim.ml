(* Engine.Sim: event ordering, cancellation, horizons, tie-breaking. *)

let test_runs_in_time_order () =
  let sim = Engine.Sim.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.Sim.schedule_at sim 3.0 (note "c"));
  ignore (Engine.Sim.schedule_at sim 1.0 (note "a"));
  ignore (Engine.Sim.schedule_at sim 2.0 (note "b"));
  Engine.Sim.run sim;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log)

let test_ties_fifo () =
  let sim = Engine.Sim.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Engine.Sim.schedule_at sim 1.0 (fun () -> log := i :: !log))
  done;
  Engine.Sim.run sim;
  Alcotest.(check (list int))
    "same-time events run in scheduling order"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_clock_advances () =
  let sim = Engine.Sim.create () in
  let seen = ref 0.0 in
  ignore (Engine.Sim.schedule_at sim 5.5 (fun () -> seen := Engine.Sim.now sim));
  Engine.Sim.run sim;
  Alcotest.(check (float 1e-9)) "clock at event time" 5.5 !seen

let test_schedule_after () =
  let sim = Engine.Sim.create () in
  let at = ref 0.0 in
  ignore
    (Engine.Sim.schedule_at sim 2.0 (fun () ->
         ignore
           (Engine.Sim.schedule_after sim 1.5 (fun () -> at := Engine.Sim.now sim))));
  Engine.Sim.run sim;
  Alcotest.(check (float 1e-9)) "relative schedule" 3.5 !at

let test_cancel () =
  let sim = Engine.Sim.create () in
  let fired = ref false in
  let h = Engine.Sim.schedule_at sim 1.0 (fun () -> fired := true) in
  Engine.Sim.cancel sim h;
  Engine.Sim.run sim;
  Alcotest.(check bool) "cancelled event did not fire" false !fired

let test_cancel_idempotent () =
  let sim = Engine.Sim.create () in
  let h = Engine.Sim.schedule_at sim 1.0 ignore in
  Engine.Sim.cancel sim h;
  Engine.Sim.cancel sim h;
  Engine.Sim.run sim

let test_past_scheduling_rejected () =
  let sim = Engine.Sim.create () in
  ignore
    (Engine.Sim.schedule_at sim 2.0 (fun () ->
         Alcotest.check_raises "past is invalid"
           (Invalid_argument "Sim.schedule_at: time 1 is before now 2")
           (fun () -> ignore (Engine.Sim.schedule_at sim 1.0 ignore))));
  Engine.Sim.run sim

let test_until_horizon () =
  let sim = Engine.Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.Sim.schedule_at sim (float_of_int i) (fun () -> incr count))
  done;
  Engine.Sim.run ~until:5.0 sim;
  Alcotest.(check int) "only events <= horizon" 5 !count;
  Alcotest.(check (float 1e-9)) "clock at horizon" 5.0 (Engine.Sim.now sim);
  Engine.Sim.run sim;
  Alcotest.(check int) "rest run later" 10 !count

let test_step () =
  let sim = Engine.Sim.create () in
  let count = ref 0 in
  ignore (Engine.Sim.schedule_at sim 1.0 (fun () -> incr count));
  ignore (Engine.Sim.schedule_at sim 2.0 (fun () -> incr count));
  Alcotest.(check bool) "first step" true (Engine.Sim.step sim);
  Alcotest.(check int) "one ran" 1 !count;
  Alcotest.(check bool) "second step" true (Engine.Sim.step sim);
  Alcotest.(check bool) "empty" false (Engine.Sim.step sim)

let test_cascading_events () =
  (* Events scheduling events: a chain of n self-propagating steps. *)
  let sim = Engine.Sim.create () in
  let count = ref 0 in
  let rec chain () =
    incr count;
    if !count < 100 then ignore (Engine.Sim.schedule_after sim 0.1 chain)
  in
  ignore (Engine.Sim.schedule_at sim 0.0 (fun () -> chain ()));
  Engine.Sim.run sim;
  Alcotest.(check int) "chain length" 100 !count;
  Alcotest.(check bool)
    "clock advanced by chain" true
    (Float.abs (Engine.Sim.now sim -. 9.9) < 1e-6)

let suite =
  [
    Alcotest.test_case "time order" `Quick test_runs_in_time_order;
    Alcotest.test_case "FIFO tie-break" `Quick test_ties_fifo;
    Alcotest.test_case "clock advances" `Quick test_clock_advances;
    Alcotest.test_case "schedule_after" `Quick test_schedule_after;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "cancel idempotent" `Quick test_cancel_idempotent;
    Alcotest.test_case "past rejected" `Quick test_past_scheduling_rejected;
    Alcotest.test_case "run ~until" `Quick test_until_horizon;
    Alcotest.test_case "step" `Quick test_step;
    Alcotest.test_case "cascading events" `Quick test_cascading_events;
  ]
