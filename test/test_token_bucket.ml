(* Netsim.Token_bucket: conformance accounting. *)

module TB = Netsim.Token_bucket

let test_starts_full () =
  let tb = TB.create ~rate_bps:8000.0 ~burst:1000 ~now:0.0 in
  Alcotest.(check bool) "full burst conforms" true
    (TB.conform tb ~now:0.0 ~bytes:1000);
  Alcotest.(check bool) "then empty" false (TB.conform tb ~now:0.0 ~bytes:1)

let test_refill_rate () =
  let tb = TB.create ~rate_bps:8000.0 ~burst:1000 ~now:0.0 in
  ignore (TB.conform tb ~now:0.0 ~bytes:1000);
  (* 8000 b/s = 1000 B/s; after 0.5 s there are 500 bytes. *)
  Alcotest.(check bool) "not yet" false (TB.conform tb ~now:0.4 ~bytes:500);
  Alcotest.(check bool) "after enough time" true (TB.conform tb ~now:0.6 ~bytes:500)

let test_burst_cap () =
  let tb = TB.create ~rate_bps:8000.0 ~burst:1000 ~now:0.0 in
  ignore (TB.conform tb ~now:0.0 ~bytes:1000);
  (* A very long wait cannot accumulate more than the burst. *)
  Alcotest.(check bool) "bounded by burst" false
    (TB.conform tb ~now:100.0 ~bytes:1001);
  Alcotest.(check bool) "burst available" true
    (TB.conform tb ~now:100.0 ~bytes:1000)

let test_nonconforming_consumes_nothing () =
  let tb = TB.create ~rate_bps:8000.0 ~burst:1000 ~now:0.0 in
  ignore (TB.conform tb ~now:0.0 ~bytes:800);
  Alcotest.(check bool) "nonconforming rejected" false
    (TB.conform tb ~now:0.0 ~bytes:500);
  (* The 200 remaining tokens must still be there. *)
  Alcotest.(check bool) "small packet passes" true
    (TB.conform tb ~now:0.0 ~bytes:200)

let test_level () =
  let tb = TB.create ~rate_bps:8000.0 ~burst:1000 ~now:0.0 in
  Alcotest.(check (float 1e-6)) "initial level" 1000.0 (TB.level tb ~now:0.0);
  ignore (TB.conform tb ~now:0.0 ~bytes:600);
  Alcotest.(check (float 1e-6)) "after consume" 400.0 (TB.level tb ~now:0.0)

let test_long_run_rate () =
  (* Offered 2x the committed rate: about half must conform. *)
  let tb = TB.create ~rate_bps:8.0e5 ~burst:3000 ~now:0.0 in
  let conformed = ref 0 and total = 2000 in
  for i = 0 to total - 1 do
    let now = float_of_int i *. 0.005 in
    (* one 1000 B packet every 5 ms = 1.6 Mb/s offered *)
    if TB.conform tb ~now ~bytes:1000 then incr conformed
  done;
  let frac = float_of_int !conformed /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "conforming fraction %f ~ 0.5" frac)
    true
    (Float.abs (frac -. 0.5) < 0.05)

let prop_never_negative =
  QCheck.Test.make ~name:"token level never negative" ~count:200
    QCheck.(list (pair (float_bound_exclusive 10.0) (int_bound 5000)))
    (fun events ->
      let tb = TB.create ~rate_bps:1e6 ~burst:10_000 ~now:0.0 in
      let now = ref 0.0 in
      List.for_all
        (fun (dt, bytes) ->
          now := !now +. Float.abs dt;
          ignore (TB.conform tb ~now:!now ~bytes);
          TB.level tb ~now:!now >= 0.0)
        events)

let suite =
  [
    Alcotest.test_case "starts full" `Quick test_starts_full;
    Alcotest.test_case "refill rate" `Quick test_refill_rate;
    Alcotest.test_case "burst cap" `Quick test_burst_cap;
    Alcotest.test_case "nonconforming consumes nothing" `Quick
      test_nonconforming_consumes_nothing;
    Alcotest.test_case "level" `Quick test_level;
    Alcotest.test_case "long-run conformance" `Quick test_long_run_rate;
    QCheck_alcotest.to_alcotest prop_never_negative;
  ]
