(* Packet.Header / Segment: size accounting and helpers. *)

module H = Packet.Header
module S = Packet.Serial

let data =
  H.Data
    {
      seq = S.of_int 9;
      tstamp = 1.0;
      rtt_estimate = 0.1;
      is_retransmit = false;
      fwd_point = S.zero;
    }

let test_wire_size_data () =
  Alcotest.(check int) "data + payload"
    (H.data_header_bytes + 1200)
    (H.wire_size data ~payload:1200)

let test_wire_size_sack_scales_with_blocks () =
  let mk n =
    H.Sack_feedback
      {
        cum_ack = S.zero;
        blocks =
          List.init n (fun i ->
              {
                H.block_start = S.of_int (10 * i);
                block_end = S.of_int ((10 * i) + 5);
              });
        sack_tstamp_echo = 0.0;
        sack_t_delay = 0.0;
        sack_x_recv = 0.0;
        sack_ce_count = 0;
      }
  in
  let s0 = H.wire_size (mk 0) ~payload:0 in
  let s3 = H.wire_size (mk 3) ~payload:0 in
  Alcotest.(check int) "8 bytes per block" (s0 + 24) s3

let test_seq_of () =
  Alcotest.(check (option int)) "data has seq" (Some 9)
    (Option.map S.to_int (H.seq_of data));
  let fb =
    H.Feedback
      { tstamp_echo = 0.0; t_delay = 0.0; x_recv = 0.0; p = 0.0; recv_seq = S.zero }
  in
  Alcotest.(check (option int)) "feedback has none" None
    (Option.map S.to_int (H.seq_of fb))

let test_segment_size_and_flags () =
  let seg =
    Packet.Segment.make ~id:1 ~flow_id:2 ~hdr:data ~payload:1000 ~sent_at:0.5
  in
  Alcotest.(check int) "size" (H.data_header_bytes + 1000)
    (Packet.Segment.size seg);
  Alcotest.(check bool) "is data" true (Packet.Segment.is_data seg);
  Alcotest.(check (option int)) "seq" (Some 9)
    (Option.map S.to_int (Packet.Segment.seq seg))

let test_pp_smoke () =
  (* The printers must not raise and must mention the discriminating
     fields. *)
  let s = Format.asprintf "%a" H.pp data in
  Alcotest.(check bool) "mentions DATA" true (String.length s > 4)

let suite =
  [
    Alcotest.test_case "data wire size" `Quick test_wire_size_data;
    Alcotest.test_case "sack size scales" `Quick
      test_wire_size_sack_scales_with_blocks;
    Alcotest.test_case "seq_of" `Quick test_seq_of;
    Alcotest.test_case "segment helpers" `Quick test_segment_size_and_flags;
    Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
  ]
