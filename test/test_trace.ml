(* The trace library in isolation: ring eviction accounting, the
   ambient recorder registry, sink gating, canonical serialisation and
   the line diff. *)

let ev_state s = Trace.Event.Conn_state { state = s }

let test_ring_basic () =
  let r = Trace.Ring.create ~capacity:4 in
  Alcotest.(check int) "empty length" 0 (Trace.Ring.length r);
  Trace.Ring.push r ~at:1.0 (ev_state "a");
  Trace.Ring.push r ~at:2.0 (ev_state "b");
  Alcotest.(check int) "length" 2 (Trace.Ring.length r);
  Alcotest.(check int) "total" 2 (Trace.Ring.total r);
  Alcotest.(check int) "dropped" 0 (Trace.Ring.dropped r);
  match Trace.Ring.to_list r with
  | [ e1; e2 ] ->
      Alcotest.(check (float 0.0)) "first at" 1.0 e1.Trace.Ring.at;
      Alcotest.(check (float 0.0)) "second at" 2.0 e2.Trace.Ring.at
  | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l)

let test_ring_eviction () =
  let r = Trace.Ring.create ~capacity:3 in
  for i = 1 to 7 do
    Trace.Ring.push r ~at:(float_of_int i) (ev_state (string_of_int i))
  done;
  Alcotest.(check int) "length capped" 3 (Trace.Ring.length r);
  Alcotest.(check int) "total counts evictions" 7 (Trace.Ring.total r);
  Alcotest.(check int) "dropped" 4 (Trace.Ring.dropped r);
  let ats = List.map (fun e -> e.Trace.Ring.at) (Trace.Ring.to_list r) in
  Alcotest.(check (list (float 0.0))) "newest window kept" [ 5.0; 6.0; 7.0 ] ats

let test_ring_capacity_validation () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Trace.Ring.create: capacity < 1") (fun () ->
      ignore (Trace.Ring.create ~capacity:0))

let test_recorder_ambient () =
  Alcotest.(check bool) "off before install" false (Trace.Recorder.on ());
  (* emit without a recorder: a silent no-op *)
  Trace.Recorder.emit ~flow:0 ~at:0.0 (ev_state "dropped-on-floor");
  let (), rec_ =
    Trace.Recorder.with_recorder (fun () ->
        Alcotest.(check bool) "on inside" true (Trace.Recorder.on ());
        Trace.Recorder.emit ~flow:3 ~at:1.0 (ev_state "x");
        Trace.Recorder.emit ~flow:1 ~at:2.0 (ev_state "y");
        Trace.Recorder.emit ~flow:3 ~at:3.0 (ev_state "z"))
  in
  Alcotest.(check bool) "off after" false (Trace.Recorder.on ());
  Alcotest.(check int) "events" 3 (Trace.Recorder.events rec_);
  Alcotest.(check (list int)) "flows ascending" [ 1; 3 ]
    (Trace.Recorder.flows rec_);
  match Trace.Recorder.ring rec_ ~flow:3 with
  | None -> Alcotest.fail "flow 3 ring missing"
  | Some ring -> Alcotest.(check int) "flow 3 events" 2 (Trace.Ring.total ring)

let test_recorder_clear_on_exception () =
  (try
     ignore
       (Trace.Recorder.with_recorder (fun () -> failwith "boom") : unit * _)
   with Failure _ -> ());
  Alcotest.(check bool) "cleared after exception" false (Trace.Recorder.on ())

let test_sink_gating () =
  let clock = ref 5.0 in
  let sink = Some (Trace.Sink.make ~flow:7 ~now:(fun () -> !clock)) in
  Alcotest.(check bool) "sink off without recorder" false (Trace.Sink.on sink);
  Alcotest.(check bool) "no sink is off" false (Trace.Sink.on None);
  let (), rec_ =
    Trace.Recorder.with_recorder (fun () ->
        Alcotest.(check bool) "sink on" true (Trace.Sink.on sink);
        Trace.Sink.emit sink (ev_state "a");
        clock := 6.5;
        Trace.Sink.emit sink (ev_state "b");
        Trace.Sink.emit None (ev_state "swallowed"))
  in
  match Trace.Recorder.ring rec_ ~flow:7 with
  | None -> Alcotest.fail "sink flow missing"
  | Some ring -> (
      match Trace.Ring.to_list ring with
      | [ a; b ] ->
          Alcotest.(check (float 0.0)) "sink stamped t1" 5.0 a.Trace.Ring.at;
          Alcotest.(check (float 0.0)) "sink stamped t2" 6.5 b.Trace.Ring.at
      | l -> Alcotest.failf "expected 2 sink events, got %d" (List.length l))

(* The packed codec round-trips the handover vocabulary: tag-18
   [Handover] with interned path names, and the 2-bit drop-reason aux
   including [D_cut]. *)
let test_codec_handover_roundtrip () =
  let evs =
    [
      Trace.Event.Handover
        { from_path = "wifi"; to_path = "cellular"; cut = false };
      Trace.Event.Handover
        { from_path = "cellular"; to_path = "sat"; cut = true };
      (* repeat an interned name to exercise the string table *)
      Trace.Event.Handover { from_path = "sat"; to_path = "wifi"; cut = false };
      Trace.Event.Drop { link = "l0"; reason = Trace.Event.D_loss; size = 1500 };
      Trace.Event.Drop { link = "l0"; reason = Trace.Event.D_queue; size = 576 };
      Trace.Event.Drop { link = "l1"; reason = Trace.Event.D_cut; size = 1500 };
    ]
  in
  let r = Trace.Ring.create ~capacity:16 in
  List.iteri (fun i ev -> Trace.Ring.push r ~at:(float_of_int i) ev) evs;
  let back = List.map (fun e -> e.Trace.Ring.ev) (Trace.Ring.to_list r) in
  Alcotest.(check int) "all entries survive" (List.length evs)
    (List.length back);
  List.iteri
    (fun i (orig, dec) ->
      Alcotest.(check bool)
        (Printf.sprintf "event %d round-trips" i)
        true (orig = dec))
    (List.combine evs back);
  (* Canonical bodies are injective over the new fields. *)
  let line ev = Format.asprintf "%a" Trace.Event.pp_canonical ev in
  let lines = List.map line back in
  Alcotest.(check int) "canonical lines distinct" (List.length evs)
    (List.length (List.sort_uniq compare lines))

let test_canonical_shape () =
  let (), rec_ =
    Trace.Recorder.with_recorder (fun () ->
        Trace.Recorder.emit ~flow:0 ~at:0.25
          (Trace.Event.Rate_change
             {
               x_bps = 1e6;
               x_calc_bps = Float.infinity;
               x_recv_bps = 5e5;
               p = 0.0;
               slow_start = true;
             });
        Trace.Recorder.emit ~flow:0 ~at:0.5
          (Trace.Event.Seg_send
             { seq = Packet.Serial.zero; size = 1500; retx = false }))
  in
  let text = Trace.Export.canonical rec_ in
  let lines = String.split_on_char '\n' text in
  (match lines with
  | magic :: flow_hdr :: _ ->
      Alcotest.(check string) "magic line" Trace.Export.magic magic;
      Alcotest.(check string) "flow header" "flow 0 events=2 dropped=0"
        flow_hdr
  | _ -> Alcotest.fail "canonical too short");
  Alcotest.(check bool) "hex float timestamps"
    true
    (List.exists
       (fun l -> String.length l > 2 && String.sub l 0 2 = "0x")
       lines);
  (* Serialisation is a pure function of the recorder. *)
  Alcotest.(check string) "stable on re-export" text
    (Trace.Export.canonical rec_);
  Alcotest.(check string) "digest = digest_of_string"
    (Trace.Export.digest rec_)
    (Trace.Export.digest_of_string text)

let test_diff () =
  let a = "# vtp-trace-1\nflow 0 events=2 dropped=0\nl1\nl2\n" in
  Alcotest.(check bool) "equal -> None" true (Trace.Export.diff a a = None);
  let b = "# vtp-trace-1\nflow 0 events=2 dropped=0\nl1\nDIFFERENT\n" in
  (match Trace.Export.diff a b with
  | Some { Trace.Export.line = 4; left = Some "l2"; right = Some "DIFFERENT" }
    ->
      ()
  | Some d ->
      Alcotest.failf "wrong divergence: line %d %a" d.Trace.Export.line
        Trace.Export.pp_divergence d
  | None -> Alcotest.fail "diff missed the mismatch");
  (* One side a strict prefix of the other. *)
  let c = "# vtp-trace-1\nflow 0 events=2 dropped=0\nl1\nl2\nl3\n" in
  match Trace.Export.diff a c with
  | Some { Trace.Export.line = 5; left = Some ""; right = Some "l3" } -> ()
  | Some d ->
      Alcotest.failf "wrong prefix divergence: %a" Trace.Export.pp_divergence d
  | None -> Alcotest.fail "diff missed the extra line"

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub hay i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let test_json_export () =
  let (), rec_ =
    Trace.Recorder.with_recorder (fun () ->
        Trace.Recorder.emit ~flow:2 ~at:1.0
          (Trace.Event.Rtt_sample { sample = 0.1; srtt = 0.12 }))
  in
  let s =
    Stats.Json.to_string
      (Trace.Export.to_json ~meta:[ ("k", Stats.Json.String "v") ] rec_)
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json contains %s" needle)
        true (contains ~needle s))
    [ "vtp-qlog-1"; "rtt_sample"; "\"flow\": 2"; "\"k\": \"v\"" ]

let suite =
  [
    Alcotest.test_case "ring basic" `Quick test_ring_basic;
    Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
    Alcotest.test_case "ring capacity validated" `Quick
      test_ring_capacity_validation;
    Alcotest.test_case "recorder ambient registry" `Quick test_recorder_ambient;
    Alcotest.test_case "recorder clears on exception" `Quick
      test_recorder_clear_on_exception;
    Alcotest.test_case "sink gating and stamping" `Quick test_sink_gating;
    Alcotest.test_case "handover/D_cut codec round-trip" `Quick
      test_codec_handover_roundtrip;
    Alcotest.test_case "canonical shape" `Quick test_canonical_shape;
    Alcotest.test_case "diff pinpoints first divergence" `Quick test_diff;
    Alcotest.test_case "qlog JSON export" `Quick test_json_export;
  ]
