(* Tfrc.Equation: known values, monotonicity, inverse. *)

let test_no_loss_infinite () =
  Alcotest.(check bool) "p=0 -> infinity" true
    (Float.is_integer (Tfrc.Equation.rate ~s:1500 ~r:0.1 ~p:0.0 ()) = false
     && Tfrc.Equation.rate ~s:1500 ~r:0.1 ~p:0.0 () = infinity)

let test_reference_point () =
  (* The simplified (first-term) equation gives s/(R*sqrt(2p/3));
     with the full RTO term the rate must be strictly below that. *)
  let s = 1500 and r = 0.1 and p = 0.01 in
  let x = Tfrc.Equation.rate ~s ~r ~p () in
  let simple = float_of_int s /. (r *. sqrt (2.0 *. p /. 3.0)) in
  Alcotest.(check bool) "below sqrt-only model" true (x < simple);
  Alcotest.(check bool) "same ballpark" true (x > simple /. 2.0)

let test_decreasing_in_p () =
  let rate p = Tfrc.Equation.rate ~s:1500 ~r:0.1 ~p () in
  let ps = [ 0.001; 0.005; 0.01; 0.05; 0.1; 0.3; 1.0 ] in
  let rec check = function
    | a :: b :: rest ->
        Alcotest.(check bool)
          (Printf.sprintf "rate(%f) > rate(%f)" a b)
          true
          (rate a > rate b);
        check (b :: rest)
    | _ -> ()
  in
  check ps

let test_decreasing_in_r () =
  Alcotest.(check bool) "longer RTT, lower rate" true
    (Tfrc.Equation.rate ~s:1500 ~r:0.05 ~p:0.01 ()
    > Tfrc.Equation.rate ~s:1500 ~r:0.2 ~p:0.01 ())

let test_linear_in_s () =
  let x1 = Tfrc.Equation.rate ~s:500 ~r:0.1 ~p:0.01 () in
  let x3 = Tfrc.Equation.rate ~s:1500 ~r:0.1 ~p:0.01 () in
  Alcotest.(check (float 1e-6)) "scales with s" 3.0 (x3 /. x1)

let test_rate_bps () =
  Alcotest.(check (float 1e-6)) "bps = 8 x bytes"
    (8.0 *. Tfrc.Equation.rate ~s:1500 ~r:0.1 ~p:0.02 ())
    (Tfrc.Equation.rate_bps ~s:1500 ~r:0.1 ~p:0.02 ())

let test_inverse_roundtrip () =
  List.iter
    (fun p_true ->
      let target = Tfrc.Equation.rate ~s:1500 ~r:0.1 ~p:p_true () in
      let p_found = Tfrc.Equation.loss_rate_for ~s:1500 ~r:0.1 ~target in
      Alcotest.(check bool)
        (Printf.sprintf "inverse(%f): %f" p_true p_found)
        true
        (Float.abs (p_found -. p_true) /. p_true < 1e-3))
    [ 0.001; 0.01; 0.05; 0.2 ]

let test_inverse_extremes () =
  (* Ludicrously low target -> p saturates at 1. *)
  Alcotest.(check (float 1e-9)) "tiny target" 1.0
    (Tfrc.Equation.loss_rate_for ~s:1500 ~r:0.1 ~target:1.0);
  (* Huge target -> p floors near 0. *)
  Alcotest.(check bool) "huge target" true
    (Tfrc.Equation.loss_rate_for ~s:1500 ~r:0.1 ~target:1e12 < 1e-6)

let prop_inverse_consistent =
  QCheck.Test.make ~name:"rate(loss_rate_for target) ~ target" ~count:200
    QCheck.(pair (float_range 0.01 0.5) (float_range 1e4 1e8))
    (fun (r, target) ->
      let p = Tfrc.Equation.loss_rate_for ~s:1500 ~r ~target in
      if p >= 1.0 || p <= 1e-8 then true
      else begin
        let x = Tfrc.Equation.rate ~s:1500 ~r ~p () in
        Float.abs (x -. target) /. target < 0.01
      end)

(* Golden values computed by hand from the RFC 3448 formula with b=1,
   t_RTO=4R, locking the implementation against silent drift:
   X = s / (R*sqrt(2p/3) + 4R*3*sqrt(3p/8)*p*(1+32p^2)). *)
let test_golden_values () =
  let check ~s ~r ~p ~expect =
    let x = Tfrc.Equation.rate ~s ~r ~p () in
    Alcotest.(check bool)
      (Printf.sprintf "X(s=%d,R=%g,p=%g) = %.6g, got %.6g" s r p expect x)
      true
      (Float.abs (x -. expect) /. expect < 1e-5)
  in
  (* s=1500, R=0.1, p=0.01:
     root1 = sqrt(0.02/3) = 0.0816497, term1 = 0.00816497
     root2 = sqrt(0.0075/2)... = sqrt(3*0.01/8) = 0.0612372
     term2 = 0.4*3*0.0612372*0.01*(1+0.0032) = 0.000737082
     X = 1500/0.0089021 = 168 498.35 B/s *)
  check ~s:1500 ~r:0.1 ~p:0.01 ~expect:168498.35;
  (* s=1000, R=0.05, p=0.1:
     term1 = 0.05*sqrt(0.2/3) = 0.0129099
     term2 = 0.2*3*sqrt(0.3/8)*0.1*(1+0.32) = 0.2*3*0.193649*0.1*1.32
           = 0.01533704
     X = 1000/0.0282470 = 35 402.04 *)
  check ~s:1000 ~r:0.05 ~p:0.1 ~expect:35402.04;
  (* s=1460, R=0.2, p=0.001 (a low-loss TCP-segment point):
     term1 = 0.2*sqrt(0.002/3) = 0.2*0.0258199 = 0.00516398
     term2 = 0.8*3*sqrt(0.003/8)*0.001*(1+3.2e-5)
           = 0.8*3*0.0193649*0.001*1.000032 = 4.64776e-5
     X = 1460/0.00521046 = 280 205.85 B/s *)
  check ~s:1460 ~r:0.2 ~p:0.001 ~expect:280205.85;
  (* p=1 (every packet a loss event, the worst-case floor):
     term1 = 0.1*sqrt(2/3) = 0.0816497
     term2 = 0.4*3*sqrt(3/8)*1*(1+32) = 1.2*0.6123724*33 = 24.2499484
     X = 1500/24.3315981 = 61.648 B/s *)
  check ~s:1500 ~r:0.1 ~p:1.0 ~expect:61.648232

(* RFC 3448 treats p as a probability: values above 1 are meaningless
   and the implementation clamps them, so the worst-case rate floor at
   p=1 also bounds any overshooting estimator. *)
let test_p_clamped_at_one () =
  Alcotest.(check (float 1e-9))
    "rate(p=5) = rate(p=1)"
    (Tfrc.Equation.rate ~s:1500 ~r:0.1 ~p:1.0 ())
    (Tfrc.Equation.rate ~s:1500 ~r:0.1 ~p:5.0 ())

(* As p -> 0 the RTO term vanishes and X approaches the first-term
   model s/(R*sqrt(2p/3)) from below; the term ratio is exactly
   t_RTO/R * 3*sqrt(3p/8)*p*(1+32p^2) / sqrt(2p/3) = 9p(1+32p^2)
   with t_RTO = 4R, so at p = 1e-6 the relative gap is ~9e-6. *)
let test_asymptote_near_zero () =
  let s = 1500 and r = 0.1 and p = 1e-6 in
  let x = Tfrc.Equation.rate ~s ~r ~p () in
  let simple = float_of_int s /. (r *. sqrt (2.0 *. p /. 3.0)) in
  let ratio = x /. simple in
  Alcotest.(check bool)
    (Printf.sprintf "X/simple = %.8f in [1-2e-5, 1)" ratio)
    true
    (ratio < 1.0 && ratio > 1.0 -. 2e-5)

let suite =
  [
    Alcotest.test_case "golden values" `Quick test_golden_values;
    Alcotest.test_case "p clamped at 1" `Quick test_p_clamped_at_one;
    Alcotest.test_case "p->0 asymptote" `Quick test_asymptote_near_zero;
    Alcotest.test_case "p=0 -> infinity" `Quick test_no_loss_infinite;
    Alcotest.test_case "reference point" `Quick test_reference_point;
    Alcotest.test_case "decreasing in p" `Quick test_decreasing_in_p;
    Alcotest.test_case "decreasing in R" `Quick test_decreasing_in_r;
    Alcotest.test_case "linear in s" `Quick test_linear_in_s;
    Alcotest.test_case "rate_bps" `Quick test_rate_bps;
    Alcotest.test_case "inverse round-trip" `Quick test_inverse_roundtrip;
    Alcotest.test_case "inverse extremes" `Quick test_inverse_extremes;
    QCheck_alcotest.to_alcotest prop_inverse_consistent;
  ]
