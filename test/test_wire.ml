(* Packet.Wire: codec round-trips, checksum detection, size accounting. *)

module H = Packet.Header
module S = Packet.Serial

let sample_data =
  H.Data
    {
      seq = S.of_int 1234567;
      tstamp = 12.5;
      rtt_estimate = 0.134;
      is_retransmit = true;
      fwd_point = S.of_int 1234000;
    }

let sample_feedback =
  H.Feedback
    {
      tstamp_echo = 99.25;
      t_delay = 0.002;
      x_recv = 1.25e6;
      p = 0.0123;
      recv_seq = S.of_int 424242;
    }

let sample_sack blocks =
  H.Sack_feedback
    {
      cum_ack = S.of_int 1000;
      blocks;
      sack_tstamp_echo = 1.5;
      sack_t_delay = 0.001;
      sack_x_recv = 2.0e6;
      sack_ce_count = 7;
    }

let block a b = { H.block_start = S.of_int a; block_end = S.of_int b }

let sample_handshake kind payload = H.Handshake { kind; payload }

let hdr_equal a b = a = b

let roundtrip name hdr () =
  let encoded = Packet.Wire.encode hdr in
  let decoded = Packet.Wire.decode encoded in
  Alcotest.(check bool) (name ^ " round-trips") true (hdr_equal hdr decoded)

let test_data_size_matches () =
  let encoded = Packet.Wire.encode sample_data in
  Alcotest.(check int)
    "encoded size = declared header size" H.data_header_bytes
    (Bytes.length encoded)

let test_feedback_size_matches () =
  let encoded = Packet.Wire.encode sample_feedback in
  Alcotest.(check int) "feedback size" H.feedback_bytes (Bytes.length encoded)

let test_sack_size_matches () =
  let hdr = sample_sack [ block 1100 1105; block 1110 1120 ] in
  let encoded = Packet.Wire.encode hdr in
  Alcotest.(check int)
    "sack size" (H.sack_feedback_bytes ~blocks:2) (Bytes.length encoded)

let test_checksum_detects_corruption () =
  let encoded = Packet.Wire.encode sample_feedback in
  (* Flip one payload byte. *)
  let i = Bytes.length encoded - 3 in
  Bytes.set_uint8 encoded i (Bytes.get_uint8 encoded i lxor 0xFF);
  Alcotest.check_raises "corruption detected"
    (Packet.Wire.Malformed "checksum mismatch") (fun () ->
      ignore (Packet.Wire.decode encoded))

let test_truncation_detected () =
  let encoded = Packet.Wire.encode sample_data in
  let short = Bytes.sub encoded 0 (Bytes.length encoded - 2) in
  Alcotest.(check bool) "truncation raises" true
    (try
       ignore (Packet.Wire.decode short);
       false
     with Packet.Wire.Malformed _ -> true)

let test_bad_tag () =
  let encoded = Packet.Wire.encode sample_data in
  Bytes.set_uint8 encoded 0 99;
  Alcotest.(check bool) "bad tag raises" true
    (try
       ignore (Packet.Wire.decode encoded);
       false
     with Packet.Wire.Malformed _ -> true)

let test_fletcher_known () =
  (* Fletcher-16 of "abcde" = 0xC8F0 per the classic example. *)
  let buf = Bytes.of_string "abcde" in
  Alcotest.(check int) "fletcher16(abcde)" 0xC8F0
    (Packet.Wire.fletcher16 buf ~pos:0 ~len:5)

let gen_header =
  let open QCheck.Gen in
  let serial = map S.of_int (int_bound 0xFFFFFFFF) in
  let pos_float = map Float.abs (float_bound_exclusive 1e6) in
  oneof
    [
      map (fun ((seq, tstamp, rtt), (retx, fwd)) ->
          H.Data
            {
              seq;
              tstamp;
              rtt_estimate = rtt;
              is_retransmit = retx;
              fwd_point = fwd;
            })
        (pair (triple serial pos_float pos_float) (pair bool serial));
      map (fun ((e, d, x), (p, r)) ->
          H.Feedback
            { tstamp_echo = e; t_delay = d; x_recv = x; p; recv_seq = r })
        (pair (triple pos_float pos_float pos_float) (pair pos_float serial));
      map (fun (((cum, blocks), ce), (e, d, x)) ->
          let blocks =
            List.map
              (fun (a, len) ->
                let a = S.of_int a in
                { H.block_start = a; block_end = S.add a (1 + (len land 0xFF)) })
              blocks
          in
          H.Sack_feedback
            {
              cum_ack = cum;
              blocks;
              sack_tstamp_echo = e;
              sack_t_delay = d;
              sack_x_recv = x;
              sack_ce_count = ce;
            })
        (pair
           (pair
              (pair serial
                 (list_size (int_bound 8)
                    (pair (int_bound 0xFFFFFFFF) small_nat)))
              (int_bound 1_000_000))
           (triple pos_float pos_float pos_float));
      map (fun (kind, payload) ->
          let kind =
            match kind land 3 with
            | 0 -> H.Syn
            | 1 -> H.Syn_ack
            | _ -> H.Ack_hs
          in
          H.Handshake { kind; payload })
        (pair small_nat (string_size (int_bound 200)));
    ]

let prop_roundtrip =
  QCheck.Test.make ~name:"wire codec round-trips arbitrary headers" ~count:500
    (QCheck.make gen_header)
    (fun hdr -> hdr_equal hdr (Packet.Wire.decode (Packet.Wire.encode hdr)))

let prop_decode_total =
  (* Fuzz: arbitrary bytes either decode or raise Malformed — never any
     other exception, never a crash. *)
  QCheck.Test.make ~name:"decode is total (Malformed or a header)" ~count:500
    QCheck.(string_of_size Gen.(int_bound 120))
    (fun s ->
      match Packet.Wire.decode (Bytes.of_string s) with
      | _ -> true
      | exception Packet.Wire.Malformed _ -> true)

let prop_bitflip_detected_or_decodes =
  (* Flipping any single byte of a valid encoding must either be caught
     by the checksum or produce a (different) well-formed decode — it
     must never escape as an unexpected exception. *)
  QCheck.Test.make ~name:"single corruption never crashes the decoder"
    ~count:300
    (QCheck.make QCheck.Gen.(pair gen_header (pair (int_bound 1000) (int_range 1 255))))
    (fun (hdr, (pos, flip)) ->
      let buf = Packet.Wire.encode hdr in
      let i = pos mod Bytes.length buf in
      Bytes.set_uint8 buf i (Bytes.get_uint8 buf i lxor flip);
      match Packet.Wire.decode buf with
      | _ -> true
      | exception Packet.Wire.Malformed _ -> true)

(* ------------------------------------------------------------------ *)
(* The zero-copy packed codec: byte-for-byte equivalent to the boxed
   codec, decodable in place, rejecting what [decode] rejects, and
   allocation-free on the composed encode -> check -> read roundtrip. *)

module P = Packet.Wire.Packed

let prop_packed_matches_encode =
  (* The packed writer must produce exactly [Wire.encode]'s bytes, at
     any offset, without touching its surroundings. *)
  QCheck.Test.make
    ~name:"packed encode_into is byte-identical to Wire.encode" ~count:500
    (QCheck.make gen_header)
    (fun hdr ->
      let want = Packet.Wire.encode hdr in
      let pos = 3 in
      let buf = Bytes.make (P.measure hdr + pos + 5) '\xAA' in
      let n = P.encode_into hdr buf ~pos in
      n = P.measure hdr
      && n = Bytes.length want
      && Bytes.equal (Bytes.sub buf pos n) want
      && Bytes.equal (Bytes.sub buf 0 pos) (Bytes.make pos '\xAA')
      && Bytes.equal
           (Bytes.sub buf (pos + n) 5)
           (Bytes.make 5 '\xAA'))

let prop_packed_decode_identity =
  QCheck.Test.make ~name:"packed encode -> decode-in-place is identity"
    ~count:500 (QCheck.make gen_header)
    (fun hdr ->
      let pos = 7 in
      let buf = Bytes.create (P.measure hdr + pos) in
      let n = P.encode_into hdr buf ~pos in
      hdr_equal hdr (P.decode buf ~pos ~len:n))

let test_packed_check_truncation () =
  let buf = Bytes.create 256 in
  let n = P.encode_into (sample_sack [ block 10 12; block 20 25 ]) buf ~pos:0 in
  P.check buf ~pos:0 ~len:n;
  for len = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "prefix of %d rejected" len)
      true
      (try
         P.check buf ~pos:0 ~len;
         false
       with Packet.Wire.Malformed _ -> true)
  done

let test_packed_check_bad_buffer () =
  let buf = Bytes.create 8 in
  Alcotest.check_raises "too-small target rejected"
    (Packet.Wire.Malformed "buffer too small") (fun () ->
      ignore (P.encode_into sample_data buf ~pos:0))

let prop_packed_check_agrees_with_decode =
  (* On arbitrary bytes the packed validator and the boxed decoder must
     agree exactly on accept vs reject. *)
  QCheck.Test.make ~name:"packed check accepts iff decode accepts" ~count:500
    QCheck.(string_of_size Gen.(int_bound 120))
    (fun s ->
      let buf = Bytes.of_string s in
      let boxed_ok =
        match Packet.Wire.decode buf with
        | _ -> true
        | exception Packet.Wire.Malformed _ -> false
      in
      let packed_ok =
        match P.check buf ~pos:0 ~len:(Bytes.length buf) with
        | () -> true
        | exception Packet.Wire.Malformed _ -> false
      in
      boxed_ok = packed_ok)

let prop_packed_corruption_never_crashes =
  QCheck.Test.make
    ~name:"packed corruption is rejected or reads cleanly" ~count:300
    (QCheck.make
       QCheck.Gen.(pair gen_header (pair (int_bound 1000) (int_range 1 255))))
    (fun (hdr, (pos, flip)) ->
      let buf = Bytes.create (P.measure hdr) in
      let n = P.encode_into hdr buf ~pos:0 in
      let i = pos mod n in
      Bytes.set_uint8 buf i (Bytes.get_uint8 buf i lxor flip);
      match P.check buf ~pos:0 ~len:n with
      | () -> ignore (P.read_digest buf ~pos:0); true
      | exception Packet.Wire.Malformed _ -> true)

let test_packed_roundtrip_zero_alloc () =
  (* The acceptance bar of the fast path: a full SACK roundtrip —
     packed encode into the domain scratch, structural check, in-place
     read of every field — allocates nothing once warm. *)
  let hdr =
    sample_sack
      [ block 1100 1105; block 1110 1120; block 1200 1260; block 2000 2001 ]
  in
  let buf = P.scratch () in
  let digest = ref 0 in
  let spin iters =
    for _ = 1 to iters do
      let n = P.encode_into hdr buf ~pos:0 in
      P.check buf ~pos:0 ~len:n;
      digest := !digest lxor P.read_digest buf ~pos:0
    done
  in
  spin 100 (* warm-up: scratch + any one-time boxing *);
  let iters = 10_000 in
  let before = Gc.minor_words () in
  spin iters;
  let per_op = (Gc.minor_words () -. before) /. float_of_int iters in
  Alcotest.(check bool)
    (Printf.sprintf "%.4f words/op (digest %x)" per_op (!digest land 0xFFFF))
    true (per_op < 1.0)

let test_packed_field_accessors () =
  (* Spot-check the in-place views against the known sample values. *)
  let buf = P.scratch () in
  let n =
    P.encode_into (sample_sack [ block 1100 1105; block 1110 1120 ]) buf ~pos:0
  in
  P.check buf ~pos:0 ~len:n;
  Alcotest.(check int) "cum_ack" 1000 (P.sack_cum_ack buf 0);
  Alcotest.(check int) "nblocks" 2 (P.sack_nblocks buf 0);
  Alcotest.(check int) "block 0 start" 1100 (P.sack_block_start buf 0 0);
  Alcotest.(check int) "block 1 end" 1120 (P.sack_block_end buf 0 1);
  Alcotest.(check (float 0.0)) "x_recv" 2.0e6 (P.sack_x_recv buf 0);
  Alcotest.(check int) "ce_count" 7 (P.sack_ce_count buf 0);
  let n = P.encode_into sample_data buf ~pos:0 in
  P.check buf ~pos:0 ~len:n;
  Alcotest.(check int) "data seq" 1234567 (P.data_seq buf 0);
  Alcotest.(check bool) "data retx" true (P.data_is_retx buf 0);
  Alcotest.(check int) "data fwd" 1234000 (P.data_fwd_point buf 0);
  Alcotest.(check (float 0.0)) "data rtt" 0.134 (P.data_rtt buf 0)

let suite =
  [
    Alcotest.test_case "data round-trip" `Quick (roundtrip "data" sample_data);
    Alcotest.test_case "feedback round-trip" `Quick
      (roundtrip "feedback" sample_feedback);
    Alcotest.test_case "sack round-trip (0 blocks)" `Quick
      (roundtrip "sack0" (sample_sack []));
    Alcotest.test_case "sack round-trip (3 blocks)" `Quick
      (roundtrip "sack3" (sample_sack [ block 1100 1105; block 1110 1120; block 2000 2001 ]));
    Alcotest.test_case "handshake round-trip" `Quick
      (roundtrip "hs" (sample_handshake H.Syn "qtp1-offer;planes=std"));
    Alcotest.test_case "data size" `Quick test_data_size_matches;
    Alcotest.test_case "feedback size" `Quick test_feedback_size_matches;
    Alcotest.test_case "sack size" `Quick test_sack_size_matches;
    Alcotest.test_case "checksum detects corruption" `Quick
      test_checksum_detects_corruption;
    Alcotest.test_case "truncation detected" `Quick test_truncation_detected;
    Alcotest.test_case "bad tag" `Quick test_bad_tag;
    Alcotest.test_case "fletcher16 known value" `Quick test_fletcher_known;
    Alcotest.test_case "packed check: truncation" `Quick
      test_packed_check_truncation;
    Alcotest.test_case "packed encode: buffer too small" `Quick
      test_packed_check_bad_buffer;
    Alcotest.test_case "packed roundtrip allocates nothing" `Quick
      test_packed_roundtrip_zero_alloc;
    Alcotest.test_case "packed field accessors" `Quick
      test_packed_field_accessors;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_decode_total;
    QCheck_alcotest.to_alcotest prop_bitflip_detected_or_decodes;
    QCheck_alcotest.to_alcotest prop_packed_matches_encode;
    QCheck_alcotest.to_alcotest prop_packed_decode_identity;
    QCheck_alcotest.to_alcotest prop_packed_check_agrees_with_decode;
    QCheck_alcotest.to_alcotest prop_packed_corruption_never_crashes;
  ]
