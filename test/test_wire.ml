(* Packet.Wire: codec round-trips, checksum detection, size accounting. *)

module H = Packet.Header
module S = Packet.Serial

let sample_data =
  H.Data
    {
      seq = S.of_int 1234567;
      tstamp = 12.5;
      rtt_estimate = 0.134;
      is_retransmit = true;
      fwd_point = S.of_int 1234000;
    }

let sample_feedback =
  H.Feedback
    {
      tstamp_echo = 99.25;
      t_delay = 0.002;
      x_recv = 1.25e6;
      p = 0.0123;
      recv_seq = S.of_int 424242;
    }

let sample_sack blocks =
  H.Sack_feedback
    {
      cum_ack = S.of_int 1000;
      blocks;
      sack_tstamp_echo = 1.5;
      sack_t_delay = 0.001;
      sack_x_recv = 2.0e6;
      sack_ce_count = 7;
    }

let block a b = { H.block_start = S.of_int a; block_end = S.of_int b }

let sample_handshake kind payload = H.Handshake { kind; payload }

let hdr_equal a b = a = b

let roundtrip name hdr () =
  let encoded = Packet.Wire.encode hdr in
  let decoded = Packet.Wire.decode encoded in
  Alcotest.(check bool) (name ^ " round-trips") true (hdr_equal hdr decoded)

let test_data_size_matches () =
  let encoded = Packet.Wire.encode sample_data in
  Alcotest.(check int)
    "encoded size = declared header size" H.data_header_bytes
    (Bytes.length encoded)

let test_feedback_size_matches () =
  let encoded = Packet.Wire.encode sample_feedback in
  Alcotest.(check int) "feedback size" H.feedback_bytes (Bytes.length encoded)

let test_sack_size_matches () =
  let hdr = sample_sack [ block 1100 1105; block 1110 1120 ] in
  let encoded = Packet.Wire.encode hdr in
  Alcotest.(check int)
    "sack size" (H.sack_feedback_bytes ~blocks:2) (Bytes.length encoded)

let test_checksum_detects_corruption () =
  let encoded = Packet.Wire.encode sample_feedback in
  (* Flip one payload byte. *)
  let i = Bytes.length encoded - 3 in
  Bytes.set_uint8 encoded i (Bytes.get_uint8 encoded i lxor 0xFF);
  Alcotest.check_raises "corruption detected"
    (Packet.Wire.Malformed "checksum mismatch") (fun () ->
      ignore (Packet.Wire.decode encoded))

let test_truncation_detected () =
  let encoded = Packet.Wire.encode sample_data in
  let short = Bytes.sub encoded 0 (Bytes.length encoded - 2) in
  Alcotest.(check bool) "truncation raises" true
    (try
       ignore (Packet.Wire.decode short);
       false
     with Packet.Wire.Malformed _ -> true)

let test_bad_tag () =
  let encoded = Packet.Wire.encode sample_data in
  Bytes.set_uint8 encoded 0 99;
  Alcotest.(check bool) "bad tag raises" true
    (try
       ignore (Packet.Wire.decode encoded);
       false
     with Packet.Wire.Malformed _ -> true)

let test_fletcher_known () =
  (* Fletcher-16 of "abcde" = 0xC8F0 per the classic example. *)
  let buf = Bytes.of_string "abcde" in
  Alcotest.(check int) "fletcher16(abcde)" 0xC8F0
    (Packet.Wire.fletcher16 buf ~pos:0 ~len:5)

let gen_header =
  let open QCheck.Gen in
  let serial = map S.of_int (int_bound 0xFFFFFFFF) in
  let pos_float = map Float.abs (float_bound_exclusive 1e6) in
  oneof
    [
      map (fun ((seq, tstamp, rtt), (retx, fwd)) ->
          H.Data
            {
              seq;
              tstamp;
              rtt_estimate = rtt;
              is_retransmit = retx;
              fwd_point = fwd;
            })
        (pair (triple serial pos_float pos_float) (pair bool serial));
      map (fun ((e, d, x), (p, r)) ->
          H.Feedback
            { tstamp_echo = e; t_delay = d; x_recv = x; p; recv_seq = r })
        (pair (triple pos_float pos_float pos_float) (pair pos_float serial));
      map (fun (((cum, blocks), ce), (e, d, x)) ->
          let blocks =
            List.map
              (fun (a, len) ->
                let a = S.of_int a in
                { H.block_start = a; block_end = S.add a (1 + (len land 0xFF)) })
              blocks
          in
          H.Sack_feedback
            {
              cum_ack = cum;
              blocks;
              sack_tstamp_echo = e;
              sack_t_delay = d;
              sack_x_recv = x;
              sack_ce_count = ce;
            })
        (pair
           (pair
              (pair serial
                 (list_size (int_bound 8)
                    (pair (int_bound 0xFFFFFFFF) small_nat)))
              (int_bound 1_000_000))
           (triple pos_float pos_float pos_float));
      map (fun (kind, payload) ->
          let kind =
            match kind land 3 with
            | 0 -> H.Syn
            | 1 -> H.Syn_ack
            | _ -> H.Ack_hs
          in
          H.Handshake { kind; payload })
        (pair small_nat (string_size (int_bound 200)));
    ]

let prop_roundtrip =
  QCheck.Test.make ~name:"wire codec round-trips arbitrary headers" ~count:500
    (QCheck.make gen_header)
    (fun hdr -> hdr_equal hdr (Packet.Wire.decode (Packet.Wire.encode hdr)))

let prop_decode_total =
  (* Fuzz: arbitrary bytes either decode or raise Malformed — never any
     other exception, never a crash. *)
  QCheck.Test.make ~name:"decode is total (Malformed or a header)" ~count:500
    QCheck.(string_of_size Gen.(int_bound 120))
    (fun s ->
      match Packet.Wire.decode (Bytes.of_string s) with
      | _ -> true
      | exception Packet.Wire.Malformed _ -> true)

let prop_bitflip_detected_or_decodes =
  (* Flipping any single byte of a valid encoding must either be caught
     by the checksum or produce a (different) well-formed decode — it
     must never escape as an unexpected exception. *)
  QCheck.Test.make ~name:"single corruption never crashes the decoder"
    ~count:300
    (QCheck.make QCheck.Gen.(pair gen_header (pair (int_bound 1000) (int_range 1 255))))
    (fun (hdr, (pos, flip)) ->
      let buf = Packet.Wire.encode hdr in
      let i = pos mod Bytes.length buf in
      Bytes.set_uint8 buf i (Bytes.get_uint8 buf i lxor flip);
      match Packet.Wire.decode buf with
      | _ -> true
      | exception Packet.Wire.Malformed _ -> true)

let suite =
  [
    Alcotest.test_case "data round-trip" `Quick (roundtrip "data" sample_data);
    Alcotest.test_case "feedback round-trip" `Quick
      (roundtrip "feedback" sample_feedback);
    Alcotest.test_case "sack round-trip (0 blocks)" `Quick
      (roundtrip "sack0" (sample_sack []));
    Alcotest.test_case "sack round-trip (3 blocks)" `Quick
      (roundtrip "sack3" (sample_sack [ block 1100 1105; block 1110 1120; block 2000 2001 ]));
    Alcotest.test_case "handshake round-trip" `Quick
      (roundtrip "hs" (sample_handshake H.Syn "qtp1-offer;planes=std"));
    Alcotest.test_case "data size" `Quick test_data_size_matches;
    Alcotest.test_case "feedback size" `Quick test_feedback_size_matches;
    Alcotest.test_case "sack size" `Quick test_sack_size_matches;
    Alcotest.test_case "checksum detects corruption" `Quick
      test_checksum_detects_corruption;
    Alcotest.test_case "truncation detected" `Quick test_truncation_detected;
    Alcotest.test_case "bad tag" `Quick test_bad_tag;
    Alcotest.test_case "fletcher16 known value" `Quick test_fletcher_known;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_decode_total;
    QCheck_alcotest.to_alcotest prop_bitflip_detected_or_decodes;
  ]
