(* Each lint rule gets a fixture that fires and a fixture that stays
   clean, driven through [lint_string] (token rules) or
   [lint_file_names] (tree-shape rules) so no files need creating. *)

module L = Analysis.Lint

let ids fs = List.map (fun (f : L.finding) -> f.rule_id) fs

let fires id ~path src = List.mem id (ids (L.lint_string ~path src))

let check_fires id ~path src =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires on %S" id src)
    true (fires id ~path src)

let check_clean id ~path src =
  Alcotest.(check bool)
    (Printf.sprintf "%s stays quiet on %S" id src)
    false (fires id ~path src)

let proto = "lib/tfrc/fixture.ml"

let test_poly_compare () =
  check_fires "poly-compare" ~path:proto "let c = compare a b\n";
  check_fires "poly-compare" ~path:proto "List.sort Stdlib.compare xs\n";
  check_clean "poly-compare" ~path:proto "let c = Int.compare a b\n";
  (* definitions and labels are exempt *)
  check_clean "poly-compare" ~path:proto "let compare a b = Int.compare a b\n";
  check_clean "poly-compare" ~path:proto "sort ~compare:Int.compare xs\n";
  (* out of scope: the rule only polices protocol directories *)
  check_clean "poly-compare" ~path:"lib/workload/media.ml" "let c = compare a b\n"

let test_float_eq () =
  check_fires "float-eq" ~path:proto "let f x = if x = 0.0 then 1 else 2\n";
  check_fires "float-eq" ~path:proto "let g a = a <> 1.0\n";
  (* binders and optional-argument defaults are not comparisons *)
  check_clean "float-eq" ~path:proto "let x = 1.0\n";
  check_clean "float-eq" ~path:proto "let f ?(eps = 1e-9) () = eps\n";
  check_clean "float-eq" ~path:proto "let rate ~s ~r () = 8.0 *. s /. r\n";
  check_clean "float-eq" ~path:proto "let f x = Float.equal x 0.0\n"

let test_random_call () =
  check_fires "random-call" ~path:proto "let x = Random.int 5\n";
  check_fires "random-call" ~path:"bin/tool.ml" "Random.self_init ()\n";
  (* the seeded shim is the one allowed user *)
  check_clean "random-call" ~path:"lib/engine/rng.ml" "let x = Random.int 5\n";
  check_clean "random-call" ~path:proto "let x = Engine.Rng.int rng 5\n"

let test_domain_spawn () =
  check_fires "domain-spawn" ~path:proto "let d = Domain.spawn work\n";
  check_fires "domain-spawn" ~path:"bin/tool.ml"
    "ignore (Stdlib.Domain.spawn f)\n";
  (* the pool is the one allowed user *)
  check_clean "domain-spawn" ~path:"lib/engine/pool.ml"
    "let d = Domain.spawn work\n";
  check_clean "domain-spawn" ~path:proto
    "let x = Engine.Pool.with_pool run\n";
  (* other Domain.* uses (DLS, join) stay legal everywhere *)
  check_clean "domain-spawn" ~path:proto
    "let k = Domain.DLS.new_key (fun () -> ref None)\n";
  check_clean "domain-spawn" ~path:proto "Domain.join d\n"

let test_obj_magic () =
  check_fires "obj-magic" ~path:"lib/workload/media.ml" "let y = Obj.magic x\n";
  check_clean "obj-magic" ~path:"lib/workload/media.ml" "let y = Obj.repr x\n"

let test_assert_false () =
  check_fires "assert-false" ~path:proto "let f () = assert false\n";
  check_clean "assert-false" ~path:proto "let f x = assert (x > 0)\n"

let test_failwith_empty () =
  check_fires "failwith-empty" ~path:proto "let f () = failwith \"\"\n";
  check_clean "failwith-empty" ~path:proto "let f () = failwith \"boom\"\n"

let test_missing_mli () =
  let has files =
    List.mem "missing-mli" (ids (L.lint_file_names files))
  in
  Alcotest.(check bool) "lib .ml without .mli" true (has [ "lib/foo/a.ml" ]);
  Alcotest.(check bool)
    "paired .mli satisfies" false
    (has [ "lib/foo/a.ml"; "lib/foo/a.mli" ]);
  Alcotest.(check bool) "executables exempt" false (has [ "bin/b.ml" ])

let test_lexer_blind_spots () =
  (* Findings must never come from comments or string literals. *)
  check_clean "assert-false" ~path:proto "(* assert false *) let x = 1\n";
  check_clean "assert-false" ~path:proto "let s = \"assert false\"\n";
  check_clean "random-call" ~path:proto
    "(* nested (* Random.int *) with a \"*)\" string *) let x = 1\n";
  (* ... and line numbers survive multi-line comments *)
  let fs = L.lint_string ~path:proto "(* one\n   two *)\nlet f () = assert false\n" in
  match fs with
  | [ f ] -> Alcotest.(check int) "line after comment" 3 f.L.line
  | _ -> Alcotest.fail "expected exactly one finding"

let test_severity_and_format () =
  let fs = L.lint_string ~path:proto "let f () = assert false\n" in
  Alcotest.(check int) "errors subset" 1 (List.length (L.errors fs));
  match fs with
  | [ f ] ->
      Alcotest.(check string) "machine-readable rendering"
        "lib/tfrc/fixture.ml:1: [assert-false] error: bare 'assert false'; \
         raise an informative error (invalid_arg/failwith with a message) \
         instead"
        (Format.asprintf "%a" L.pp_finding f)
  | _ -> Alcotest.fail "expected exactly one finding"

let test_tree_is_clean () =
  (* The repository's own sources must stay lint-clean; run from the
     project root when available (dune runs tests in a sandbox dir, so
     only assert when the tree is visible). *)
  if Sys.file_exists "lib" && Sys.file_exists "bin" then
    let errs = L.errors (L.lint_tree ~roots:[ "lib"; "bin" ] ()) in
    Alcotest.(check int) "no error findings in tree" 0 (List.length errs)

let suite =
  [
    ("poly-compare", `Quick, test_poly_compare);
    ("float-eq", `Quick, test_float_eq);
    ("random-call", `Quick, test_random_call);
    ("domain-spawn", `Quick, test_domain_spawn);
    ("obj-magic", `Quick, test_obj_magic);
    ("assert-false", `Quick, test_assert_false);
    ("failwith-empty", `Quick, test_failwith_empty);
    ("missing-mli", `Quick, test_missing_mli);
    ("lexer blind spots", `Quick, test_lexer_blind_spots);
    ("severity and format", `Quick, test_severity_and_format);
    ("tree is clean", `Quick, test_tree_is_clean);
  ]
