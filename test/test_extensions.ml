(* Extension features: oscillation damping (§4.5) and handshake
   retransmission under loss. *)

let test_damping_slows_on_rtt_rise () =
  let sim = Engine.Sim.create () in
  let params =
    {
      Tfrc.Sender.default_params with
      packet_size = 1000;
      initial_rtt = 0.1;
      oscillation_damping = true;
      max_rate_bps = Some 1e8;
    }
  in
  let sender = Tfrc.Sender.create ~sim params ~on_transmit:(fun () -> true) () in
  Tfrc.Sender.start sender;
  (* Feed two feedbacks: a baseline RTT then a 4x larger sample.  The
     instantaneous rate must dip below the allowed rate by ~sqrt(4)/…
     (R_sqmean lags, sqrt(R_sample) jumps). *)
  ignore
    (Engine.Sim.schedule_at sim 0.1 (fun () ->
         Tfrc.Sender.on_feedback sender ~tstamp_echo:0.0 ~t_delay:0.0
           ~x_recv:1e6 ~p:0.01));
  ignore
    (Engine.Sim.schedule_at sim 0.9 (fun () ->
         Tfrc.Sender.on_feedback sender ~tstamp_echo:0.5 ~t_delay:0.0
           ~x_recv:1e6 ~p:0.01));
  Engine.Sim.run ~until:1.0 sim;
  let allowed = Tfrc.Sender.rate_bps sender in
  let inst = Tfrc.Sender.instantaneous_rate_bps sender in
  Alcotest.(check bool)
    (Printf.sprintf "instantaneous %.0f < allowed %.0f" inst allowed)
    true (inst < allowed *. 0.95)

let test_damping_off_means_equal () =
  let sim = Engine.Sim.create () in
  let params =
    { Tfrc.Sender.default_params with packet_size = 1000; initial_rtt = 0.1 }
  in
  let sender = Tfrc.Sender.create ~sim params ~on_transmit:(fun () -> true) () in
  Tfrc.Sender.start sender;
  ignore
    (Engine.Sim.schedule_at sim 0.1 (fun () ->
         Tfrc.Sender.on_feedback sender ~tstamp_echo:0.0 ~t_delay:0.0
           ~x_recv:1e6 ~p:0.01));
  Engine.Sim.run ~until:0.5 sim;
  Alcotest.(check (float 1e-6)) "identical without damping"
    (Tfrc.Sender.rate_bps sender)
    (Tfrc.Sender.instantaneous_rate_bps sender)

let lossy_nego ~seed ~loss =
  let sim, topo =
    Experiments.Common.lossy_path ~seed ~rate_mbps:10.0
      ~loss:(Experiments.Common.bernoulli loss)
      ()
  in
  let conn =
    Qtp.Connection.create_negotiated ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      ~initial_rtt:0.2
      ~initiator:(Qtp.Profile.qtp_light ())
      ~responder:(Qtp.Profile.mobile_receiver ())
      ()
  in
  (sim, conn)

let test_handshake_survives_loss () =
  (* 30% loss: some SYNs die, the retry timer must get through. *)
  let established = ref 0 in
  for k = 0 to 9 do
    let sim, conn = lossy_nego ~seed:(200 + k) ~loss:0.3 in
    Engine.Sim.run ~until:60.0 sim;
    match Qtp.Connection.state conn with
    | Qtp.Connection.Established _ -> incr established
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d/10 established at 30%% loss" !established)
    true (!established >= 8)

let test_handshake_never_hangs () =
  (* Total blackout: must resolve to Failed, not stay Negotiating. *)
  let sim, topo =
    Experiments.Common.lossy_path ~seed:3 ~rate_mbps:10.0
      ~loss:(Experiments.Common.bernoulli 1.0)
      ()
  in
  let conn =
    Qtp.Connection.create_negotiated ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      ~initial_rtt:0.2
      ~initiator:(Qtp.Profile.qtp_light ())
      ~responder:(Qtp.Profile.mobile_receiver ())
      ()
  in
  Engine.Sim.run ~until:120.0 sim;
  match Qtp.Connection.state conn with
  | Qtp.Connection.Failed _ -> ()
  | Qtp.Connection.Established _ ->
      Alcotest.fail "established through a black hole?"
  | Qtp.Connection.Negotiating | Qtp.Connection.Closing
  | Qtp.Connection.Closed ->
      Alcotest.fail "handshake hung"

let test_duplicate_syn_harmless () =
  (* Clean path but with an eager retry timer: if the first SYN-ACK is
     slow only because of queueing, duplicate SYNs must not corrupt the
     connection.  Emulate with moderate loss so retries overlap. *)
  let sim, conn = lossy_nego ~seed:7 ~loss:0.2 in
  Engine.Sim.run ~until:60.0 sim;
  match Qtp.Connection.state conn with
  | Qtp.Connection.Established _ ->
      Alcotest.(check bool) "data flowed" true (Qtp.Connection.delivered conn > 0)
  | Qtp.Connection.Failed r -> Alcotest.failf "failed: %s" r
  | Qtp.Connection.Negotiating | Qtp.Connection.Closing
  | Qtp.Connection.Closed ->
      Alcotest.fail "stuck"

let suite =
  [
    Alcotest.test_case "damping slows on RTT rise" `Quick
      test_damping_slows_on_rtt_rise;
    Alcotest.test_case "damping off = identity" `Quick
      test_damping_off_means_equal;
    Alcotest.test_case "handshake survives 30% loss" `Slow
      test_handshake_survives_loss;
    Alcotest.test_case "handshake never hangs" `Quick
      test_handshake_never_hangs;
    Alcotest.test_case "duplicate SYN harmless" `Quick
      test_duplicate_syn_harmless;
  ]
