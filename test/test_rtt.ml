(* Tfrc.Rtt: EWMA behaviour. *)

let test_seed_used_before_samples () =
  let r = Tfrc.Rtt.create ~initial:0.5 () in
  Alcotest.(check (float 1e-9)) "seed" 0.5 (Tfrc.Rtt.smoothed r);
  Alcotest.(check bool) "no sample yet" false (Tfrc.Rtt.has_sample r)

let test_first_sample_replaces_seed () =
  let r = Tfrc.Rtt.create ~initial:0.5 () in
  Tfrc.Rtt.sample r 0.1;
  Alcotest.(check (float 1e-9)) "first sample wins" 0.1 (Tfrc.Rtt.smoothed r);
  Alcotest.(check bool) "has sample" true (Tfrc.Rtt.has_sample r)

let test_ewma () =
  let r = Tfrc.Rtt.create ~q:0.9 ~initial:0.5 () in
  Tfrc.Rtt.sample r 0.1;
  Tfrc.Rtt.sample r 0.2;
  (* 0.9*0.1 + 0.1*0.2 = 0.11 *)
  Alcotest.(check (float 1e-9)) "ewma step" 0.11 (Tfrc.Rtt.smoothed r)

let test_converges () =
  let r = Tfrc.Rtt.create ~initial:1.0 () in
  for _ = 1 to 200 do
    Tfrc.Rtt.sample r 0.05
  done;
  Alcotest.(check bool) "converges to steady input" true
    (Float.abs (Tfrc.Rtt.smoothed r -. 0.05) < 0.001)

let test_t_rto () =
  let r = Tfrc.Rtt.create ~initial:0.5 () in
  Tfrc.Rtt.sample r 0.1;
  Alcotest.(check (float 1e-9)) "4R" 0.4 (Tfrc.Rtt.t_rto r)

let test_sample_count () =
  let r = Tfrc.Rtt.create ~initial:0.5 () in
  Tfrc.Rtt.sample r 0.1;
  Tfrc.Rtt.sample r 0.1;
  Alcotest.(check int) "counted" 2 (Tfrc.Rtt.samples r)

let suite =
  [
    Alcotest.test_case "seed" `Quick test_seed_used_before_samples;
    Alcotest.test_case "first sample" `Quick test_first_sample_replaces_seed;
    Alcotest.test_case "ewma" `Quick test_ewma;
    Alcotest.test_case "convergence" `Quick test_converges;
    Alcotest.test_case "t_rto" `Quick test_t_rto;
    Alcotest.test_case "sample count" `Quick test_sample_count;
  ]
