(* Engine.Dist: moments and support of each sampler. *)

let rng () = Engine.Rng.create ~seed:31

let sample n f =
  let r = rng () in
  Array.init n (fun _ -> f r)

let mean xs = Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let test_exponential_mean () =
  let xs = sample 50_000 (fun r -> Engine.Dist.exponential r ~mean:2.0) in
  let m = mean xs in
  Alcotest.(check bool)
    (Printf.sprintf "mean %f ~ 2.0" m)
    true
    (Float.abs (m -. 2.0) < 0.05);
  Alcotest.(check bool) "all positive" true (Array.for_all (fun x -> x >= 0.0) xs)

let test_pareto_support () =
  let xs = sample 10_000 (fun r -> Engine.Dist.pareto r ~shape:2.5 ~scale:1.0) in
  Alcotest.(check bool) "x >= scale" true (Array.for_all (fun x -> x >= 1.0) xs);
  (* mean = shape*scale/(shape-1) = 2.5/1.5 ~ 1.667 *)
  let m = mean xs in
  Alcotest.(check bool)
    (Printf.sprintf "mean %f ~ 1.667" m)
    true
    (Float.abs (m -. 1.6667) < 0.08)

let test_normal_moments () =
  let xs = sample 50_000 (fun r -> Engine.Dist.normal r ~mean:3.0 ~stddev:2.0) in
  let m = mean xs in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
    /. float_of_int (Array.length xs)
  in
  Alcotest.(check bool) "mean ~3" true (Float.abs (m -. 3.0) < 0.05);
  Alcotest.(check bool) "stddev ~2" true (Float.abs (sqrt var -. 2.0) < 0.05)

let test_geometric () =
  let xs = sample 50_000 (fun r -> float_of_int (Engine.Dist.geometric r ~p:0.25)) in
  Alcotest.(check bool)
    "non-negative" true
    (Array.for_all (fun x -> x >= 0.0) xs);
  (* mean = (1-p)/p = 3 *)
  let m = mean xs in
  Alcotest.(check bool)
    (Printf.sprintf "mean %f ~ 3.0" m)
    true
    (Float.abs (m -. 3.0) < 0.1)

let test_uniform_range () =
  let xs =
    sample 20_000 (fun r -> Engine.Dist.uniform_range r ~lo:(-2.0) ~hi:5.0)
  in
  Alcotest.(check bool)
    "in range" true
    (Array.for_all (fun x -> x >= -2.0 && x < 5.0) xs);
  let m = mean xs in
  Alcotest.(check bool) "mean ~1.5" true (Float.abs (m -. 1.5) < 0.1)

let test_poisson_mean () =
  let xs = sample 20_000 (fun r -> float_of_int (Engine.Dist.poisson r ~mean:4.0)) in
  let m = mean xs in
  Alcotest.(check bool)
    (Printf.sprintf "mean %f ~ 4.0" m)
    true
    (Float.abs (m -. 4.0) < 0.1)

let test_poisson_zero () =
  let r = rng () in
  Alcotest.(check int) "mean 0 gives 0" 0 (Engine.Dist.poisson r ~mean:0.0)

let suite =
  [
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "pareto support and mean" `Quick test_pareto_support;
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "geometric mean" `Quick test_geometric;
    Alcotest.test_case "uniform_range" `Quick test_uniform_range;
    Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
    Alcotest.test_case "poisson zero" `Quick test_poisson_zero;
  ]
