(* Differential qcheck suites for the slab-packed hot state.

   The arena rewrite moved the mutable per-flow state of the TFRC
   sender, the TFRC receiver and the QTP_light loss reconstructor into
   struct-of-arrays slabs; the record-based originals were frozen as
   [Tfrc.Sender_ref] / [Tfrc.Receiver_ref] / [Qtp.Loss_reconstructor_ref].
   Each property drives the packed module and its oracle through one
   random operation script — feedback storms, idle gaps, handover
   reseeds, LFN-sized sequence jumps — and requires every observable to
   stay bit-identical (Float.equal, not approximate: the packing must
   not change a single IEEE operation). *)

module S = Tfrc.Sender
module SR = Tfrc.Sender_ref
module R = Tfrc.Receiver
module RR = Tfrc.Receiver_ref
module LR = Qtp.Loss_reconstructor
module LRR = Qtp.Loss_reconstructor_ref

let feq = Float.equal

let link_of (bw, rtt) = { Tfrc.Handover.bandwidth_bps = bw; rtt }

let policy_of = function
  | 0 -> `Keep
  | 1 -> `Reset
  | _ -> `Informed

(* ------------------------------------------------------------------ *)
(* Sender: packed vs reference *)

type snd_op =
  | S_feedback of { dt : float; echo_age : float; t_delay : float;
                    x_recv : float; p : float }
  | S_idle of float
  | S_notify
  | S_handover of { policy : int; bw : float; link_rtt : float }

let gen_snd_op =
  QCheck.Gen.(
    frequency
      [
        ( 6,
          map
            (fun ((dt_i, age_i, td_i), (xr_i, p_i)) ->
              S_feedback
                {
                  dt = float_of_int dt_i /. 1000.0;
                  echo_age = float_of_int age_i /. 1000.0;
                  t_delay = float_of_int td_i /. 10000.0;
                  x_recv = float_of_int xr_i;
                  (* p = 0 keeps slow start alive; small rates exercise
                     the t_mbi floor and the gTFRC clamp *)
                  p = (if p_i = 0 then 0.0 else float_of_int p_i /. 1000.0);
                })
            (pair
               (triple (int_range 1 400) (int_range 10 500) (int_range 0 200))
               (pair (int_range 500 200_000) (int_range 0 100))) );
        (2, map (fun dt_i -> S_idle (float_of_int dt_i /. 100.0))
             (int_range 1 120));
        (1, return S_notify);
        ( 1,
          map
            (fun (pol, bw_i, rtt_i) ->
              S_handover
                {
                  policy = pol;
                  bw = float_of_int bw_i *. 1e4;
                  link_rtt = float_of_int rtt_i /. 1000.0;
                })
            (triple (int_bound 2) (int_range 10 1000) (int_range 5 400)) );
      ])

let gen_snd_case =
  QCheck.Gen.(
    pair
      (triple (int_range 0 3) (int_range 20 800) bool)
      (list_size (int_range 1 40) gen_snd_op))

let snd_params (psize_i, irtt_i, damping) =
  {
    S.default_params with
    S.packet_size = 500 + (250 * psize_i);
    initial_rtt = float_of_int irtt_i /. 1000.0;
    min_rate_bps = (if psize_i = 1 then 64_000.0 else 0.0);
    oscillation_damping = damping;
  }

let snd_ref_params (psize_i, irtt_i, damping) =
  {
    SR.default_params with
    SR.packet_size = 500 + (250 * psize_i);
    initial_rtt = float_of_int irtt_i /. 1000.0;
    min_rate_bps = (if psize_i = 1 then 64_000.0 else 0.0);
    oscillation_damping = damping;
  }

let sender_observables_agree a b =
  feq (S.rate_bps a) (SR.rate_bps b)
  && feq (S.instantaneous_rate_bps a) (SR.instantaneous_rate_bps b)
  && feq (S.rtt a) (SR.rtt b)
  && S.has_rtt_sample a = SR.has_rtt_sample b
  && S.in_slow_start a = SR.in_slow_start b
  && S.packets_sent a = SR.packets_sent b
  && S.feedbacks_processed a = SR.feedbacks_processed b
  && S.nofeedback_expiries a = SR.nofeedback_expiries b

let prop_sender_parity =
  QCheck.Test.make ~name:"slab sender == record sender (bit-exact)"
    ~count:120
    (QCheck.make gen_snd_case)
    (fun (pcfg, ops) ->
      let sim_a = Engine.Sim.create ~seed:7 () in
      let sim_b = Engine.Sim.create ~seed:7 () in
      let a =
        S.create ~sim:sim_a (snd_params pcfg) ~on_transmit:(fun () -> true) ()
      in
      let b =
        SR.create ~sim:sim_b (snd_ref_params pcfg)
          ~on_transmit:(fun () -> true)
          ()
      in
      S.start a;
      SR.start b;
      let now = ref 0.0 in
      let advance dt =
        now := !now +. dt;
        Engine.Sim.run ~until:!now sim_a;
        Engine.Sim.run ~until:!now sim_b
      in
      List.for_all
        (fun op ->
          (match op with
          | S_feedback { dt; echo_age; t_delay; x_recv; p } ->
              advance dt;
              let echo = Float.max 0.0 (!now -. echo_age) in
              S.on_feedback a ~tstamp_echo:echo ~t_delay ~x_recv ~p;
              SR.on_feedback b ~tstamp_echo:echo ~t_delay ~x_recv ~p
          | S_idle dt -> advance dt
          | S_notify ->
              S.notify_data a;
              SR.notify_data b
          | S_handover { policy; bw; link_rtt } ->
              let link = link_of (bw, link_rtt) in
              S.apply_handover a ~policy:(policy_of policy) ~link;
              SR.apply_handover b ~policy:(policy_of policy) ~link);
          sender_observables_agree a b)
        ops)

(* ------------------------------------------------------------------ *)
(* Receiver: packed vs reference *)

type rcv_op =
  | R_data of { dt : float; gap : int; size : int; ce : bool }
  | R_jump of int  (* LFN-style window displacement *)
  | R_gap of float
  | R_handover of { policy : int; bw : float; link_rtt : float }

let gen_rcv_op =
  QCheck.Gen.(
    frequency
      [
        ( 8,
          map
            (fun ((dt_i, gap_i), (size_i, ce)) ->
              R_data
                {
                  dt = float_of_int dt_i /. 5000.0;
                  (* mostly in-order, sometimes a hole (a loss event) *)
                  gap = (if gap_i < 85 then 1 else 1 + (gap_i mod 7));
                  size = 200 + (size_i * 100);
                  ce;
                })
            (pair
               (pair (int_range 1 300) (int_bound 99))
               (pair (int_bound 13) bool)) );
        (1, map (fun j -> R_jump (1000 + j)) (int_bound 30_000));
        (1, map (fun dt_i -> R_gap (float_of_int dt_i /. 50.0))
             (int_range 1 100));
        ( 1,
          map
            (fun (pol, bw_i, rtt_i) ->
              R_handover
                {
                  policy = pol;
                  bw = float_of_int bw_i *. 1e4;
                  link_rtt = float_of_int rtt_i /. 1000.0;
                })
            (triple (int_bound 2) (int_range 10 1000) (int_range 5 400)) );
      ])

let receiver_observables_agree a b =
  feq (R.x_recv a) (RR.x_recv b)
  && feq (R.loss_event_rate a) (RR.loss_event_rate b)
  && R.loss_events a = RR.loss_events b
  && R.packets_received a = RR.packets_received b
  && R.feedbacks_sent a = RR.feedbacks_sent b

let feedbacks_agree (x : Packet.Header.feedback) (y : Packet.Header.feedback) =
  feq x.Packet.Header.tstamp_echo y.Packet.Header.tstamp_echo
  && feq x.Packet.Header.t_delay y.Packet.Header.t_delay
  && feq x.Packet.Header.x_recv y.Packet.Header.x_recv
  && feq x.Packet.Header.p y.Packet.Header.p
  && Packet.Serial.equal x.Packet.Header.recv_seq y.Packet.Header.recv_seq

let prop_receiver_parity =
  QCheck.Test.make ~name:"slab receiver == record receiver (bit-exact)"
    ~count:120
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) gen_rcv_op))
    (fun ops ->
      let sim_a = Engine.Sim.create ~seed:11 () in
      let sim_b = Engine.Sim.create ~seed:11 () in
      let fa = ref [] and fb = ref [] in
      let a = R.create ~sim:sim_a ~send_feedback:(fun f -> fa := f :: !fa) () in
      let b =
        RR.create ~sim:sim_b ~send_feedback:(fun f -> fb := f :: !fb) ()
      in
      let now = ref 0.0 and seq = ref 0 in
      let advance dt =
        now := !now +. dt;
        Engine.Sim.run ~until:!now sim_a;
        Engine.Sim.run ~until:!now sim_b
      in
      let deliver ~gap ~size ~ce =
        seq := !seq + gap;
        let hdr =
          {
            Packet.Header.seq = Packet.Serial.of_int !seq;
            tstamp = Float.max 0.0 (!now -. 0.02);
            rtt_estimate = 0.08;
            is_retransmit = false;
            fwd_point = Packet.Serial.of_int !seq;
          }
        in
        R.on_data a ~ce hdr ~size;
        RR.on_data b ~ce hdr ~size
      in
      List.for_all
        (fun op ->
          (match op with
          | R_data { dt; gap; size; ce } ->
              advance dt;
              deliver ~gap ~size ~ce
          | R_jump j ->
              advance 0.001;
              deliver ~gap:j ~size:1000 ~ce:false
          | R_gap dt -> advance dt
          | R_handover { policy; bw; link_rtt } ->
              let link = link_of (bw, link_rtt) in
              R.on_handover a ~policy:(policy_of policy) ~link;
              RR.on_handover b ~policy:(policy_of policy) ~link);
          receiver_observables_agree a b
          && List.length !fa = List.length !fb
          && List.for_all2 feedbacks_agree !fa !fb)
        ops)

(* ------------------------------------------------------------------ *)
(* Loss reconstructor: packed vs reference (standalone arenas) *)

type lr_op =
  | L_batch of { dt : float; covers : (int * bool) list; rtt : float;
                 x_recv : float }
  | L_ce of { marks : int; rtt : float; x_recv : float }
  | L_handover of { policy : int; bw : float; link_rtt : float }

let gen_lr_op =
  QCheck.Gen.(
    frequency
      [
        ( 6,
          map
            (fun ((dt_i, rtt_i, xr_i), covers) ->
              L_batch
                {
                  dt = float_of_int dt_i /. 1000.0;
                  covers;
                  rtt = float_of_int rtt_i /. 1000.0;
                  x_recv = float_of_int xr_i;
                })
            (pair
               (triple (int_range 1 300) (int_range 5 400)
                  (int_range 500 100_000))
               (list_size (int_range 1 30)
                  (pair (int_range 1 50) bool))) );
        ( 1,
          map
            (fun (m, rtt_i, xr_i) ->
              L_ce
                {
                  marks = m;
                  rtt = float_of_int rtt_i /. 1000.0;
                  x_recv = float_of_int xr_i;
                })
            (triple (int_range 1 4) (int_range 5 400) (int_range 500 100_000)) );
        ( 1,
          map
            (fun (pol, bw_i, rtt_i) ->
              L_handover
                {
                  policy = pol;
                  bw = float_of_int bw_i *. 1e4;
                  link_rtt = float_of_int rtt_i /. 1000.0;
                })
            (triple (int_bound 2) (int_range 10 1000) (int_range 5 400)) );
      ])

let prop_reconstructor_parity =
  QCheck.Test.make
    ~name:"slab reconstructor == record reconstructor (bit-exact)" ~count:120
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) gen_lr_op))
    (fun ops ->
      let a = LR.create () in
      let b = LRR.create () in
      let packet_size = 1500 in
      let now = ref 0.0 and seq = ref 0 in
      List.for_all
        (fun op ->
          (match op with
          | L_batch { dt; covers; rtt; x_recv } ->
              now := !now +. dt;
              (* the packed side streams through a batch, the oracle
                 takes the equivalent cover list — also pins the
                 batch API against the list API *)
              let batch = LR.begin_batch a in
              let cl =
                List.map
                  (fun (gap, was_retx) ->
                    seq := !seq + gap;
                    let sent_at = Float.max 0.0 (!now -. rtt) in
                    LR.push_cover a ~seq:(Packet.Serial.of_int !seq) ~sent_at
                      ~was_retx ~rtt ~x_recv ~packet_size;
                    {
                      Sack.Scoreboard.cov_seq = Packet.Serial.of_int !seq;
                      cov_sent_at = sent_at;
                      cov_was_retx = was_retx;
                    })
                  covers
              in
              LR.end_batch a batch;
              LRR.on_covers b ~covers:cl ~rtt ~x_recv ~packet_size
          | L_ce { marks; rtt; x_recv } ->
              LR.on_ce_marks a ~new_marks:marks ~rtt ~x_recv ~packet_size;
              LRR.on_ce_marks b ~new_marks:marks ~rtt ~x_recv ~packet_size
          | L_handover { policy; bw; link_rtt } ->
              let link = link_of (bw, link_rtt) in
              LR.on_handover a ~policy:(policy_of policy) ~packet_size ~link;
              LRR.on_handover b ~policy:(policy_of policy) ~packet_size ~link);
          feq (LR.loss_event_rate a) (LRR.loss_event_rate b)
          && LR.loss_events a = LRR.loss_events b)
        ops)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_sender_parity; prop_receiver_parity; prop_reconstructor_parity ]
