(* The fuzz harness itself: generator determinism, executor soundness on
   known-good seeds, trace replay on a mangled link, and the negative
   test — a deliberately-injected receiver bug must be caught and
   shrunk. *)

module S = Fuzz.Scenario
module E = Fuzz.Exec
module D = Fuzz.Driver
module Sh = Fuzz.Shrink

(* --- generator ---------------------------------------------------- *)

let test_generate_deterministic () =
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d" seed)
        true
        (S.equal (S.generate ~seed) (S.generate ~seed)))
    [ 1; 42; 1000; 123456 ]

let prop_generated_in_bounds =
  QCheck.Test.make ~name:"generated scenarios stay inside bounds" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let sc = S.generate ~seed in
      sc.S.rate_mbps >= 1.0
      && sc.S.rate_mbps <= 16.0
      && sc.S.delay_ms >= 2.0
      && sc.S.delay_ms <= 80.0
      && sc.S.buffer_pkts >= 10
      && sc.S.buffer_pkts <= 120
      && sc.S.duration >= 4.0
      && sc.S.duration <= 12.0
      && S.flows sc >= 1)

(* --- executor ----------------------------------------------------- *)

let test_mini_soak () =
  List.iter
    (fun seed ->
      let r = E.run (S.generate ~seed) in
      if not (E.passed r) then
        Alcotest.failf "seed %d failed:@\n%a" seed E.pp_report r)
    [ 101; 102; 103; 104; 105 ]

let test_exec_deterministic () =
  let sc = S.generate ~seed:137 in
  let a = E.run sc in
  let b = E.run sc in
  Alcotest.(check bool) "same flow stats" true (a.E.flows = b.E.flows);
  Alcotest.(check int) "same failure count" (List.length a.E.failures)
    (List.length b.E.failures);
  Alcotest.(check bool) "same fault counts" true (a.E.mangled = b.E.mangled);
  Alcotest.(check int) "same checker traffic" a.E.checker_events
    b.E.checker_events

(* --- trace replay through the checker on a mangled link ----------- *)

let mk_frame i =
  Netsim.Frame.make
    ~uid:(Netsim.Frame.fresh_uid ())
    ~flow_id:0 ~size:1000 ~born:0.0 (Netsim.Frame.Raw i)

(* Drive 200 frames over a link whose mangler duplicates aggressively,
   tracing injections, deliveries and drops.  Unless the duplicates'
   fresh uids are also recorded as sent, replaying the trace must
   produce a conservation violation ("delivered but never sent"). *)
let mangled_trace ~account_dups =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:11 in
  let mangler =
    Netsim.Mangler.create ~sim ~rng
      (Netsim.Mangler.profile ~p_duplicate:0.3 ())
  in
  let tracer = Netsim.Tracer.create ~sim () in
  let sink _ = () in
  let link =
    Netsim.Link.create ~sim ~rate_bps:8e6 ~delay:0.005
      ~qdisc:(Netsim.Qdisc.droptail ~capacity_pkts:1000)
      ~mangler ()
  in
  Netsim.Link.connect link (Netsim.Tracer.tap tracer "delivered" sink);
  Netsim.Link.on_drop link (Netsim.Tracer.tap tracer "dropped" sink);
  if account_dups then
    Netsim.Mangler.on_duplicate mangler (fun ~orig:_ ~dup ->
        Netsim.Tracer.tap tracer "sent" sink dup);
  let send = Netsim.Tracer.tap tracer "sent" (Netsim.Link.send link) in
  for i = 0 to 199 do
    ignore
      (Engine.Sim.schedule_at sim (0.002 *. float i) (fun () ->
           send (mk_frame i)))
  done;
  Engine.Sim.run ~until:5.0 sim;
  Alcotest.(check bool)
    "duplicates occurred" true
    ((Netsim.Mangler.stats mangler).Netsim.Mangler.duplicated > 0);
  Netsim.Tracer.events tracer

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

let test_trace_check_catches_unaccounted_dups () =
  match Analysis.Trace_check.check (mangled_trace ~account_dups:false) with
  | Some v ->
      let msg = Format.asprintf "%a" Analysis.Invariants.pp_violation v in
      Alcotest.(check bool)
        "conservation violation" true
        (contains_sub ~sub:"never sent" msg)
  | None -> Alcotest.fail "expected a conservation violation"

let test_trace_replay_clean_when_dups_accounted () =
  let events = mangled_trace ~account_dups:true in
  let checker = Analysis.Invariants.create () in
  Analysis.Trace_check.replay checker events;
  (match Analysis.Invariants.violations checker with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "unexpected violation: %a" Analysis.Invariants.pp_violation
        v);
  Alcotest.(check bool)
    "events were fed" true
    (Analysis.Invariants.events_seen checker > 0)

(* --- the negative test: an injected bug is caught and shrunk ------ *)

(* Hand-built so the bug has a clean trigger: full reliability (SACK on
   every data packet) plus forward-path duplication.  The padding
   (reverse mangling, background traffic) is there for the shrinker to
   strip. *)
let buggy_scenario =
  {
    S.seed = 424242;
    shape = S.Dumbbell 1;
    rate_mbps = 4.0;
    delay_ms = 10.0;
    buffer_pkts = 60;
    red = false;
    loss = S.Clean;
    mangle = Netsim.Mangler.profile ~p_duplicate:0.08 ();
    mangle_reverse = true;
    profile = S.P_full;
    workload = S.Greedy;
    background = true;
    duration = 4.0;
    handover = None;
    trunk = None;
  }

let with_bug f =
  Sack.Rcv_tracker.test_only_skip_dup_check := true;
  Fun.protect
    ~finally:(fun () -> Sack.Rcv_tracker.test_only_skip_dup_check := false)
    f

let test_injected_bug_caught () =
  Alcotest.(check bool)
    "baseline passes without the bug" true
    (E.passed (E.run buggy_scenario));
  with_bug (fun () ->
      let r = E.run buggy_scenario in
      Alcotest.(check bool) "bug detected" false (E.passed r);
      Alcotest.(check bool)
        "detected by an invariant" true
        (List.exists
           (function E.Invariant _ -> true | _ -> false)
           r.E.failures))

let test_injected_bug_shrinks () =
  with_bug (fun () ->
      let out = Sh.shrink ~still_fails:D.still_fails buggy_scenario in
      Alcotest.(check bool)
        "shrunk scenario still fails" true
        (D.still_fails out.Sh.shrunk);
      Alcotest.(check bool) "at least one simplification" true
        (out.Sh.steps >= 1);
      Alcotest.(check bool) "background stripped" false
        out.Sh.shrunk.S.background;
      Alcotest.(check bool) "reverse mangling stripped" false
        out.Sh.shrunk.S.mangle_reverse;
      (* The shrinker may even strip the injected duplication: with the
         dup check disabled, a greedy flow's own spurious
         retransmissions (congestion losses, delayed feedback) already
         deliver duplicate segments.  What must survive is the single
         flow and the full-reliability profile the bug lives in. *)
      Alcotest.(check bool)
        "single dumbbell flow" true
        (out.Sh.shrunk.S.shape = S.Dumbbell 1);
      Alcotest.(check bool)
        "full-reliability profile kept" true
        (out.Sh.shrunk.S.profile = S.P_full))

let suite =
  [
    Alcotest.test_case "generator deterministic" `Quick
      test_generate_deterministic;
    QCheck_alcotest.to_alcotest prop_generated_in_bounds;
    Alcotest.test_case "mini soak passes" `Slow test_mini_soak;
    Alcotest.test_case "executor deterministic" `Slow test_exec_deterministic;
    Alcotest.test_case "trace check catches unaccounted dups" `Quick
      test_trace_check_catches_unaccounted_dups;
    Alcotest.test_case "trace replay clean when dups accounted" `Quick
      test_trace_replay_clean_when_dups_accounted;
    Alcotest.test_case "injected bug caught" `Slow test_injected_bug_caught;
    Alcotest.test_case "injected bug shrinks" `Slow test_injected_bug_shrinks;
  ]
