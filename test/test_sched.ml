(* Cross-scheduler tests: the wheel and the heap backends of Engine.Sim
   must be observationally identical (pending-count accounting aside).

   - boundary behaviours pinned under each backend;
   - a qcheck differential property replaying random scheduler programs
     under both and comparing the full firing traces byte for byte;
   - a white-box census property over the wheel's internal accounting;
   - a determinism regression: every fuzz smoke-corpus seed must
     produce digest-identical reports under both backends. *)

let scheds = [ ("wheel", `Wheel); ("heap", `Heap) ]

(* ------------------------------------------------------------------ *)
(* Boundary behaviours, one copy per backend. *)

let test_horizon_event_fires sched () =
  let sim = Engine.Sim.create ~sched () in
  let fired = ref false in
  ignore (Engine.Sim.schedule_at sim 5.0 (fun () -> fired := true));
  Engine.Sim.run ~until:5.0 sim;
  Alcotest.(check bool) "event exactly at the horizon fires" true !fired;
  Alcotest.(check (float 1e-9)) "clock at horizon" 5.0 (Engine.Sim.now sim)

let test_cancel_after_fire sched () =
  let sim = Engine.Sim.create ~sched () in
  let n = ref 0 in
  let h = Engine.Sim.schedule_at sim 1.0 (fun () -> incr n) in
  Engine.Sim.run sim;
  Engine.Sim.cancel sim h;
  (* The record behind [h] is recycled by the next schedule; the stale
     handle must fail its generation check rather than kill the new
     event. *)
  ignore (Engine.Sim.schedule_at sim 2.0 (fun () -> incr n));
  Engine.Sim.cancel sim h;
  Engine.Sim.run sim;
  Alcotest.(check int) "both events ran despite stale cancels" 2 !n

let test_past_rejected sched () =
  let sim = Engine.Sim.create ~sched () in
  ignore
    (Engine.Sim.schedule_at sim 2.0 (fun () ->
         Alcotest.check_raises "past is invalid"
           (Invalid_argument "Sim.schedule_at: time 1 is before now 2")
           (fun () -> ignore (Engine.Sim.schedule_at sim 1.0 ignore))));
  Engine.Sim.run sim

let test_horizon_reached_on_early_drain sched () =
  let sim = Engine.Sim.create ~sched () in
  ignore (Engine.Sim.schedule_at sim 1.0 ignore);
  Engine.Sim.run ~until:10.0 sim;
  Alcotest.(check (float 1e-9))
    "clock lands on horizon after queue empties" 10.0 (Engine.Sim.now sim)

(* ------------------------------------------------------------------ *)
(* Differential property.  A program is a list of (tag, arg) pairs —
   integers so qcheck can shrink both the list and the elements —
   decoded into schedule_at / schedule_after / cancel / step /
   run ~until operations.  Delays are divisions by primes, giving due
   times with awkward binary fractions that stress the wheel's 1 µs
   tick quantisation.  The trace records every firing (id and clock)
   plus the final clock and executed count; both backends must produce
   it byte-identically. *)

let run_trace ~sched prog =
  let buf = Buffer.create 256 in
  let sim = Engine.Sim.create ~sched () in
  let handles = ref [] in
  let next_id = ref 0 in
  let note id () =
    Buffer.add_string buf
      (Printf.sprintf "%d@%.17g;" id (Engine.Sim.now sim))
  in
  let delay prime a = float_of_int a /. float_of_int prime in
  List.iter
    (fun (tag, a) ->
      match tag mod 5 with
      | 0 ->
          let id = !next_id in
          incr next_id;
          handles :=
            Engine.Sim.schedule_at sim
              (Engine.Sim.now sim +. delay 97 a)
              (note id)
            :: !handles
      | 1 ->
          let id = !next_id in
          incr next_id;
          handles :=
            Engine.Sim.schedule_after sim (delay 89 a) (note id) :: !handles
      | 2 -> (
          match !handles with
          | [] -> ()
          | l -> Engine.Sim.cancel sim (List.nth l (a mod List.length l)))
      | 3 -> ignore (Engine.Sim.step sim : bool)
      | _ ->
          Engine.Sim.run ~until:(Engine.Sim.now sim +. delay 83 a) sim)
    prog;
  Engine.Sim.run sim;
  Buffer.add_string buf
    (Printf.sprintf "end@%.17g#%d" (Engine.Sim.now sim)
       (Engine.Sim.executed sim));
  Buffer.contents buf

let arb_program = QCheck.(list (pair small_nat small_nat))

let prop_differential =
  QCheck.Test.make ~count:300 ~name:"random programs: wheel trace = heap trace"
    arb_program (fun prog ->
      String.equal (run_trace ~sched:`Wheel prog) (run_trace ~sched:`Heap prog))

(* ------------------------------------------------------------------ *)
(* White-box census: after every operation on a bare wheel, events held
   in buckets plus live events staged in the ready heap must equal the
   advertised size, and [length] must equal the number of live events
   we put in. *)

let fresh_ev time seq =
  let ev = Engine.Event.make_dummy () in
  ev.Engine.Event.time <- time;
  ev.Engine.Event.seq <- seq;
  ev.Engine.Event.live <- true;
  ev

let prop_census =
  QCheck.Test.make ~count:200 ~name:"wheel census invariant under random ops"
    arb_program (fun prog ->
      let w = Engine.Wheel.create () in
      let live = ref [] in
      let seq = ref 0 in
      let check () =
        let buckets, ready_live, size, _cursor = Engine.Wheel.census w in
        if buckets + ready_live <> size then
          QCheck.Test.fail_reportf
            "census out of balance: buckets %d + ready %d <> size %d" buckets
            ready_live size;
        if Engine.Wheel.length w <> List.length !live then
          QCheck.Test.fail_reportf "length %d <> live model %d"
            (Engine.Wheel.length w) (List.length !live);
        true
      in
      List.for_all
        (fun (tag, a) ->
          (match tag mod 4 with
          | 0 | 1 ->
              let ev = fresh_ev (float_of_int a /. 97.0) !seq in
              incr seq;
              Engine.Wheel.add w ev;
              live := ev :: !live
          | 2 -> (
              match !live with
              | [] -> ()
              | l ->
                  let ev = List.nth l (a mod List.length l) in
                  ev.Engine.Event.live <- false;
                  ignore (Engine.Wheel.remove w ev : bool);
                  live := List.filter (fun e -> e != ev) !live)
          | _ -> (
              match Engine.Wheel.pop_min w with
              | None -> ()
              | Some ev -> live := List.filter (fun e -> e != ev) !live));
          check ())
        prog)

(* ------------------------------------------------------------------ *)
(* Determinism regression: the 25-seed fuzz smoke corpus replayed under
   each backend; the rendered reports must digest identically. *)

let digest_report ~sched seed =
  let sc = Fuzz.Scenario.generate ~seed in
  let report = Fuzz.Exec.run ~sched sc in
  Digest.to_hex (Digest.string (Format.asprintf "%a" Fuzz.Exec.pp_report report))

let test_fuzz_corpus_digests () =
  List.iter
    (fun seed ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d report digest" seed)
        (digest_report ~sched:`Heap seed)
        (digest_report ~sched:`Wheel seed))
    Fuzz.Driver.smoke_corpus

let suite =
  List.concat_map
    (fun (name, sched) ->
      [
        Alcotest.test_case
          (Printf.sprintf "event at horizon fires [%s]" name)
          `Quick
          (test_horizon_event_fires sched);
        Alcotest.test_case
          (Printf.sprintf "cancel after fire is a no-op [%s]" name)
          `Quick
          (test_cancel_after_fire sched);
        Alcotest.test_case
          (Printf.sprintf "past scheduling rejected [%s]" name)
          `Quick (test_past_rejected sched);
        Alcotest.test_case
          (Printf.sprintf "horizon reached on early drain [%s]" name)
          `Quick
          (test_horizon_reached_on_early_drain sched);
      ])
    scheds
  @ [
      QCheck_alcotest.to_alcotest prop_differential;
      QCheck_alcotest.to_alcotest prop_census;
      Alcotest.test_case "fuzz smoke corpus digests (wheel = heap)" `Quick
        test_fuzz_corpus_digests;
    ]
