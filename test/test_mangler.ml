(* Properties of the fault-injection stage: frame conservation,
   seed-determinism and the bounded reorder distance promised by
   [reorder_max_hold]. *)

module M = Netsim.Mangler
module F = Netsim.Frame

let mk_frame i =
  F.make ~uid:(F.fresh_uid ()) ~flow_id:0 ~size:1000 ~born:0.0 (F.Raw i)

(* Identify an emission by the id baked into its body (uids differ for
   duplicates) and whether the mangler wrapped it. *)
let source_id (f : F.t) =
  match f.F.body with
  | F.Raw i -> (i, false)
  | M.Corrupted (F.Raw i) -> (i, true)
  | _ -> Alcotest.fail "unexpected frame body out of the mangler"

(* Push [n] frames through a fresh mangler and return the emissions in
   order, plus the mangler for stats inspection. *)
let run_pipeline ~seed ~n prof =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let m = M.create ~sim ~rng prof in
  let out = ref [] in
  let emit f = out := f :: !out in
  for i = 0 to n - 1 do
    M.push m ~emit (mk_frame i)
  done;
  M.flush m;
  (List.rev !out, m)

let any_prof ~pr ~pd ~pc ~hold =
  M.profile ~p_reorder:pr ~reorder_max_hold:hold ~p_duplicate:pd ~p_corrupt:pc
    ()

(* Generator: seed, frame count and a fault mix aggressive enough to
   exercise every branch. *)
let arb_setup =
  QCheck.make
    ~print:(fun (seed, n, pr, pd, pc, hold) ->
      Printf.sprintf "seed=%d n=%d reorder=%.2f dup=%.2f corrupt=%.2f hold=%d"
        seed n pr pd pc hold)
    QCheck.Gen.(
      let* seed = int_bound 100_000 in
      let* n = int_range 5 150 in
      let* pr = float_bound_inclusive 0.4 in
      let* pd = float_bound_inclusive 0.3 in
      let* pc = float_bound_inclusive 0.3 in
      let* hold = int_range 1 8 in
      return (seed, n, pr, pd, pc, hold))

(* Conservation: every input id comes out at least once, duplicates add
   exactly [stats.duplicated] extra emissions, and uids never repeat. *)
let prop_conservation =
  QCheck.Test.make ~name:"mangler conserves frames" ~count:200 arb_setup
    (fun (seed, n, pr, pd, pc, hold) ->
      let out, m = run_pipeline ~seed ~n (any_prof ~pr ~pd ~pc ~hold) in
      let st = M.stats m in
      let ids = Hashtbl.create 64 in
      List.iter
        (fun f ->
          let i, _ = source_id f in
          Hashtbl.replace ids i
            (1 + Option.value (Hashtbl.find_opt ids i) ~default:0))
        out;
      let all_present =
        List.init n Fun.id |> List.for_all (Hashtbl.mem ids)
      in
      let uids = List.map (fun f -> f.F.uid) out in
      let distinct_uids =
        List.length (List.sort_uniq Int.compare uids) = List.length uids
      in
      all_present
      && List.length out = n + st.M.duplicated
      && distinct_uids
      && M.held_frames m = 0)

(* Determinism: same seed, same arrivals => identical emission sequence
   (by source id and corruption flag) and identical stats. *)
let prop_determinism =
  QCheck.Test.make ~name:"mangler is seed-deterministic" ~count:100 arb_setup
    (fun (seed, n, pr, pd, pc, hold) ->
      let prof = any_prof ~pr ~pd ~pc ~hold in
      let trace run = List.map source_id (fst run) in
      let a = run_pipeline ~seed ~n prof in
      let b = run_pipeline ~seed ~n prof in
      let sa = M.stats (snd a) and sb = M.stats (snd b) in
      trace a = trace b
      && sa.M.passed = sb.M.passed
      && sa.M.reordered = sb.M.reordered
      && sa.M.duplicated = sb.M.duplicated
      && sa.M.corrupted = sb.M.corrupted)

(* Bounded reorder distance: no frame is overtaken by more than
   [reorder_max_hold] later arrivals.  Count, for each original frame's
   first emission, how many higher-id frames appear earlier. *)
let prop_bounded_reorder =
  QCheck.Test.make ~name:"mangler bounds reorder distance" ~count:200
    arb_setup (fun (seed, n, pr, pd, pc, hold) ->
      let out, _ = run_pipeline ~seed ~n (any_prof ~pr ~pd ~pc ~hold) in
      let first_emission_ids =
        let seen = Hashtbl.create 64 in
        List.filter_map
          (fun f ->
            let i, _ = source_id f in
            if Hashtbl.mem seen i then None
            else begin
              Hashtbl.add seen i ();
              Some i
            end)
          out
      in
      (* [i]'s overtakers are the earlier first-emissions with a larger
         arrival id; each must number at most [hold]. *)
      let emitted_before = Hashtbl.create 64 in
      let ok = ref true in
      List.iter
        (fun i ->
          let overtakers =
            Hashtbl.fold
              (fun j () acc -> if j > i then acc + 1 else acc)
              emitted_before 0
          in
          if overtakers > hold then ok := false;
          Hashtbl.replace emitted_before i ())
        first_emission_ids;
      !ok)

(* The quiet-period flush timer releases held frames when traffic
   stops, so nothing is stranded. *)
let test_flush_timer () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:7 in
  let m = M.create ~sim ~rng ~flush_after:0.1 (any_prof ~pr:1.0 ~pd:0.0 ~pc:0.0 ~hold:5) in
  let out = ref [] in
  let emit f = out := f :: !out in
  M.push m ~emit (mk_frame 0);
  Alcotest.(check int) "held" 1 (M.held_frames m);
  Engine.Sim.run ~until:1.0 sim;
  Alcotest.(check int) "released by timer" 0 (M.held_frames m);
  Alcotest.(check int) "emitted" 1 (List.length !out)

let test_transparent () =
  let out, m = run_pipeline ~seed:3 ~n:50 M.none in
  let st = M.stats m in
  Alcotest.(check int) "all passed" 50 st.M.passed;
  Alcotest.(check (list int)) "in order"
    (List.init 50 Fun.id)
    (List.map (fun f -> fst (source_id f)) out)

let suite =
  [
    Alcotest.test_case "transparent profile" `Quick test_transparent;
    Alcotest.test_case "flush timer" `Quick test_flush_timer;
    QCheck_alcotest.to_alcotest prop_conservation;
    QCheck_alcotest.to_alcotest prop_determinism;
    QCheck_alcotest.to_alcotest prop_bounded_reorder;
  ]
