(* Packet.Serial: wraparound arithmetic and circular ordering. *)

module S = Packet.Serial

let s = S.of_int

let test_basic_order () =
  Alcotest.(check bool) "0 < 1" true S.(s 0 < s 1);
  Alcotest.(check bool) "1 > 0" true S.(s 1 > s 0);
  Alcotest.(check bool) "5 <= 5" true S.(s 5 <= s 5);
  Alcotest.(check bool) "equal" true (S.equal (s 42) (s 42))

let test_wraparound_order () =
  let near_top = s 0xFFFFFFFF in
  let wrapped = S.succ near_top in
  Alcotest.(check int) "wraps to 0" 0 (S.to_int wrapped);
  Alcotest.(check bool) "max < wrapped 0" true S.(near_top < wrapped);
  Alcotest.(check int) "diff across wrap" 1 (S.diff wrapped near_top)

let test_succ_pred () =
  Alcotest.(check int) "succ" 8 (S.to_int (S.succ (s 7)));
  Alcotest.(check int) "pred" 6 (S.to_int (S.pred (s 7)));
  Alcotest.(check int) "pred of 0 wraps" 0xFFFFFFFF (S.to_int (S.pred (s 0)))

let test_add_diff_inverse () =
  let a = s 100 and b = s 250 in
  Alcotest.(check int) "diff" (-150) (S.diff a b);
  Alcotest.(check bool) "add inverse" true (S.equal (S.add b (S.diff a b)) a)

let test_min_max () =
  Alcotest.(check int) "max" 9 (S.to_int (S.max (s 4) (s 9)));
  Alcotest.(check int) "min" 4 (S.to_int (S.min (s 4) (s 9)));
  (* across the wrap: 0xFFFFFFFE < 1 circularly *)
  Alcotest.(check int) "max across wrap" 1
    (S.to_int (S.max (s 0xFFFFFFFE) (s 1)))

let test_range () =
  Alcotest.(check (list int)) "simple range" [ 3; 4; 5 ]
    (List.map S.to_int (S.range (s 3) (s 6)));
  Alcotest.(check (list int)) "empty range" [] (List.map S.to_int (S.range (s 6) (s 6)));
  Alcotest.(check (list int)) "reversed empty" [] (List.map S.to_int (S.range (s 7) (s 6)));
  Alcotest.(check (list int))
    "range across wrap"
    [ 0xFFFFFFFF; 0 ]
    (List.map S.to_int (S.range (s 0xFFFFFFFF) (s 1)))

let test_to_string () =
  Alcotest.(check string) "print unsigned" "4294967295" (S.to_string (s 0xFFFFFFFF))

let prop_half_window_order =
  QCheck.Test.make ~name:"a < a+k for 0<k<2^31" ~count:500
    QCheck.(pair (int_bound 0xFFFFFFF) (int_range 1 0x7FFFFFF))
    (fun (base, k) ->
      let a = s base in
      let b = S.add a k in
      S.( < ) a b && S.( > ) b a && S.diff b a = k)

let prop_add_assoc =
  QCheck.Test.make ~name:"add distributes" ~count:500
    QCheck.(triple (int_bound 0xFFFFFFFF) (int_bound 10000) (int_bound 10000))
    (fun (base, i, j) ->
      S.equal (S.add (S.add (s base) i) j) (S.add (s base) (i + j)))

let suite =
  [
    Alcotest.test_case "basic order" `Quick test_basic_order;
    Alcotest.test_case "wraparound" `Quick test_wraparound_order;
    Alcotest.test_case "succ/pred" `Quick test_succ_pred;
    Alcotest.test_case "add/diff inverse" `Quick test_add_diff_inverse;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "range" `Quick test_range;
    Alcotest.test_case "to_string" `Quick test_to_string;
    QCheck_alcotest.to_alcotest prop_half_window_order;
    QCheck_alcotest.to_alcotest prop_add_assoc;
  ]
