(* Connection close lifecycle: drain, CLOSE/CLOSE-ACK, idempotence,
   unilateral close through a dead path. *)

let setup ?(loss = 0.0) ?(seed = 191) ~mode () =
  let sim, topo =
    Experiments.Common.lossy_path ~seed ~rate_mbps:10.0
      ~loss:(Experiments.Common.bernoulli loss)
      ()
  in
  let agreed =
    Qtp.Profile.agreed_exn
      (Qtp.Profile.qtp_light ~reliability:[ mode ] ())
      (Qtp.Profile.mobile_receiver ())
  in
  let conn =
    Qtp.Connection.create ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      (Qtp.Connection.config ~initial_rtt:0.2 agreed)
  in
  (sim, conn)

let test_close_reaches_closed () =
  let sim, conn = setup ~mode:Qtp.Capabilities.R_full () in
  ignore (Engine.Sim.schedule_at sim 5.0 (fun () -> Qtp.Connection.close conn));
  Engine.Sim.run ~until:15.0 sim;
  Alcotest.(check bool) "closed" true (Qtp.Connection.state conn = Qtp.Connection.Closed)

let test_close_stops_new_data () =
  let sim, conn = setup ~mode:Qtp.Capabilities.R_full () in
  ignore (Engine.Sim.schedule_at sim 5.0 (fun () -> Qtp.Connection.close conn));
  Engine.Sim.run ~until:7.0 sim;
  let sent_at_7 = Qtp.Connection.data_sent conn in
  Engine.Sim.run ~until:15.0 sim;
  Alcotest.(check int) "no new data after close settles" sent_at_7
    (Qtp.Connection.data_sent conn)

let test_close_drains_reliability_under_loss () =
  (* Everything sent before close must still be delivered: close waits
     for the scoreboard to drain even at 5% loss. *)
  let sim, conn = setup ~loss:0.05 ~mode:Qtp.Capabilities.R_full () in
  ignore (Engine.Sim.schedule_at sim 5.0 (fun () -> Qtp.Connection.close conn));
  Engine.Sim.run ~until:30.0 sim;
  Alcotest.(check bool) "closed" true
    (Qtp.Connection.state conn = Qtp.Connection.Closed);
  Alcotest.(check int) "nothing skipped" 0 (Qtp.Connection.skipped conn);
  (* All in-flight data was repaired and delivered (the only shortfall
     may be segments lost *after* the last retransmission wave, which
     drain handles, so: delivered = sent distinct seqs). *)
  Alcotest.(check int) "delivered everything sent"
    (Qtp.Connection.data_sent conn)
    (Qtp.Connection.delivered conn)

let test_close_idempotent () =
  let sim, conn = setup ~mode:Qtp.Capabilities.R_none () in
  ignore
    (Engine.Sim.schedule_at sim 5.0 (fun () ->
         Qtp.Connection.close conn;
         Qtp.Connection.close conn));
  Engine.Sim.run ~until:10.0 sim;
  Qtp.Connection.close conn;
  Alcotest.(check bool) "still closed" true
    (Qtp.Connection.state conn = Qtp.Connection.Closed)

let test_unilateral_close_on_dead_path () =
  (* The reverse path dies with the close in flight: after the retry
     budget the sender closes anyway. *)
  let sim, topo =
    Experiments.Common.lossy_path ~seed:193 ~rate_mbps:10.0
      ~loss:(Experiments.Common.bernoulli 0.0)
      ()
  in
  let agreed =
    Qtp.Profile.agreed_exn
      (Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_none ] ())
      (Qtp.Profile.mobile_receiver ())
  in
  let ep = Netsim.Topology.endpoint topo 0 in
  let dead = ref false in
  let real = ep.Netsim.Topology.to_sender in
  let ep = { ep with Netsim.Topology.to_sender = (fun f -> if not !dead then real f) } in
  let conn =
    Qtp.Connection.create ~sim ~endpoint:ep
      (Qtp.Connection.config ~initial_rtt:0.2 agreed)
  in
  ignore
    (Engine.Sim.schedule_at sim 5.0 (fun () ->
         dead := true;
         Qtp.Connection.close conn));
  Engine.Sim.run ~until:60.0 sim;
  Alcotest.(check bool) "unilaterally closed" true
    (Qtp.Connection.state conn = Qtp.Connection.Closed)

let test_close_before_established () =
  let sim, topo =
    Experiments.Common.lossy_path ~seed:195 ~rate_mbps:10.0
      ~loss:(Experiments.Common.bernoulli 1.0)
      ()
  in
  let conn =
    Qtp.Connection.create_negotiated ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      ~initiator:(Qtp.Profile.qtp_light ())
      ~responder:(Qtp.Profile.mobile_receiver ())
      ()
  in
  ignore (Engine.Sim.schedule_at sim 0.5 (fun () -> Qtp.Connection.close conn));
  Engine.Sim.run ~until:5.0 sim;
  Alcotest.(check bool) "aborted" true
    (Qtp.Connection.state conn = Qtp.Connection.Closed)

let suite =
  [
    Alcotest.test_case "reaches Closed" `Quick test_close_reaches_closed;
    Alcotest.test_case "stops new data" `Quick test_close_stops_new_data;
    Alcotest.test_case "drains reliability" `Quick
      test_close_drains_reliability_under_loss;
    Alcotest.test_case "idempotent" `Quick test_close_idempotent;
    Alcotest.test_case "unilateral on dead path" `Quick
      test_unilateral_close_on_dead_path;
    Alcotest.test_case "close before established" `Quick
      test_close_before_established;
  ]
