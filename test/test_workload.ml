(* Workload: background injectors and the media model. *)

let collect_sink () =
  let frames = ref [] in
  let sink f = frames := f :: !frames in
  (sink, frames)

let test_cbr_rate () =
  let sim = Engine.Sim.create () in
  let sink, frames = collect_sink () in
  let bg =
    Workload.Background.cbr ~sim ~sink ~flow_id:7 ~rate_bps:8.0e5
      ~packet_size:1000 ~stop_at:10.0 ()
  in
  Engine.Sim.run ~until:11.0 sim;
  (* 0.8 Mb/s = 100 pkt/s of 1000 B over 10 s = ~1000 packets. *)
  let n = List.length !frames in
  Alcotest.(check bool) (Printf.sprintf "%d ~ 1000" n) true (abs (n - 1000) <= 2);
  Alcotest.(check int) "stats agree" n (Workload.Background.packets_sent bg);
  Alcotest.(check int) "bytes" (n * 1000) (Workload.Background.bytes_sent bg);
  Alcotest.(check bool) "flow id stamped" true
    (List.for_all (fun f -> f.Netsim.Frame.flow_id = 7) !frames)

let test_cbr_stops () =
  let sim = Engine.Sim.create () in
  let sink, frames = collect_sink () in
  ignore
    (Workload.Background.cbr ~sim ~sink ~flow_id:0 ~rate_bps:8.0e5
       ~packet_size:1000 ~stop_at:1.0 ());
  Engine.Sim.run ~until:5.0 sim;
  let n = List.length !frames in
  Alcotest.(check bool) "stopped" true (n <= 101)

let test_poisson_rate () =
  let sim = Engine.Sim.create ~seed:111 () in
  let rng = Engine.Sim.split_rng sim in
  let sink, frames = collect_sink () in
  ignore
    (Workload.Background.poisson ~sim ~sink ~flow_id:0 ~rng ~rate_bps:8.0e5
       ~packet_size:1000 ~stop_at:20.0 ());
  Engine.Sim.run ~until:21.0 sim;
  let n = List.length !frames in
  Alcotest.(check bool)
    (Printf.sprintf "%d ~ 2000 +- 10%%" n)
    true
    (n > 1800 && n < 2200)

let test_on_off_duty_cycle () =
  let sim = Engine.Sim.create ~seed:113 () in
  let rng = Engine.Sim.split_rng sim in
  let sink, frames = collect_sink () in
  ignore
    (Workload.Background.exp_on_off ~sim ~sink ~flow_id:0 ~rng
       ~peak_rate_bps:8.0e5 ~mean_on:0.5 ~mean_off:0.5 ~packet_size:1000
       ~stop_at:40.0 ());
  Engine.Sim.run ~until:41.0 sim;
  let n = List.length !frames in
  (* ~50% duty: expect ~2000; accept a broad band. *)
  Alcotest.(check bool)
    (Printf.sprintf "%d within duty-cycle band" n)
    true
    (n > 1000 && n < 3200)

let test_marking () =
  let sim = Engine.Sim.create () in
  let sink, frames = collect_sink () in
  ignore
    (Workload.Background.cbr ~sim ~sink ~flow_id:0 ~rate_bps:8.0e5
       ~packet_size:1000 ~mark:Netsim.Mark.Red ~stop_at:0.1 ());
  Engine.Sim.run ~until:0.2 sim;
  Alcotest.(check bool) "marked red" true
    (List.for_all
       (fun f -> Netsim.Mark.equal f.Netsim.Frame.mark Netsim.Mark.Red)
       !frames)

let test_media_rate_and_packets () =
  let sim = Engine.Sim.create ~seed:115 () in
  let rng = Engine.Sim.split_rng sim in
  let p = Workload.Media.default_params in
  let pushed = ref 0 in
  let m =
    Workload.Media.start ~sim ~rng p
      ~push:(fun n -> pushed := !pushed + n)
      ~stop_at:20.0 ()
  in
  Engine.Sim.run ~until:21.0 sim;
  Alcotest.(check bool) "frames ~ 25/s x 20s" true
    (abs (Workload.Media.frames_emitted m - 500) <= 2);
  let mean_rate = Workload.Media.mean_rate_bps p in
  let measured =
    8.0 *. float_of_int (Workload.Media.bytes_emitted m) /. 20.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.0f ~ model %.0f" measured mean_rate)
    true
    (Float.abs (measured -. mean_rate) /. mean_rate < 0.1);
  Alcotest.(check bool) "packets pushed" true (!pushed > 0)

let test_media_gop_structure () =
  (* With zero jitter the I/P size ratio is exact. *)
  let sim = Engine.Sim.create ~seed:117 () in
  let rng = Engine.Sim.split_rng sim in
  let p =
    { Workload.Media.default_params with jitter = 0.0; mean_i_bytes = 9000.0; mean_p_bytes = 3000.0 }
  in
  let sizes = ref [] in
  (* Infer per-frame bytes from deltas of the cumulative counter. *)
  let m = Workload.Media.start ~sim ~rng p ~push:(fun _ -> ()) ~stop_at:1.0 () in
  let last = ref 0 in
  let rec sample () =
    let b = Workload.Media.bytes_emitted m in
    if b > !last then begin
      sizes := (b - !last) :: !sizes;
      last := b
    end;
    if Engine.Sim.now sim < 1.0 then
      ignore (Engine.Sim.schedule_after sim 0.02 sample)
  in
  ignore (Engine.Sim.schedule_at sim 0.001 sample);
  Engine.Sim.run ~until:1.2 sim;
  let sizes = List.rev !sizes in
  (match sizes with
  | i_frame :: _ ->
      Alcotest.(check int) "first frame is an I-frame" 9000 i_frame
  | [] -> Alcotest.fail "no frames");
  Alcotest.(check bool) "P frames present" true (List.mem 3000 sizes)

let suite =
  [
    Alcotest.test_case "cbr rate" `Quick test_cbr_rate;
    Alcotest.test_case "cbr stops" `Quick test_cbr_stops;
    Alcotest.test_case "poisson rate" `Quick test_poisson_rate;
    Alcotest.test_case "on/off duty" `Quick test_on_off_duty_cycle;
    Alcotest.test_case "marking" `Quick test_marking;
    Alcotest.test_case "media rate" `Quick test_media_rate_and_packets;
    Alcotest.test_case "media GoP" `Quick test_media_gop_structure;
  ]
