(* Netsim.Monitor: queue sampling. *)

let test_samples_occupancy () =
  let sim = Engine.Sim.create () in
  let q = Netsim.Qdisc.droptail ~capacity_pkts:100 in
  let monitor = Netsim.Monitor.start ~sim ~qdisc:q ~interval:0.1 ~until:1.05 () in
  (* Occupancy: 0 until t=0.35, then 3 packets. *)
  ignore
    (Engine.Sim.schedule_at sim 0.35 (fun () ->
         for i = 1 to 3 do
           ignore
             (Netsim.Qdisc.enqueue q ~now:0.35
                (Netsim.Frame.make ~uid:i ~flow_id:0 ~size:100 ~born:0.35
                   (Netsim.Frame.Raw i)))
         done));
  Engine.Sim.run ~until:2.0 sim;
  let samples = Netsim.Monitor.samples_pkts monitor in
  Alcotest.(check int) "10 samples" 10 (Array.length samples);
  Alcotest.(check (float 1e-9)) "early sample empty" 0.0 samples.(0);
  Alcotest.(check (float 1e-9)) "late sample full" 3.0 samples.(9);
  Alcotest.(check bool) "mean in between" true
    (let m = Netsim.Monitor.mean_pkts monitor in
     m > 0.0 && m < 3.0)

let test_times_monotone () =
  let sim = Engine.Sim.create () in
  let q = Netsim.Qdisc.droptail ~capacity_pkts:10 in
  let monitor = Netsim.Monitor.start ~sim ~qdisc:q ~interval:0.05 ~until:0.5 () in
  Engine.Sim.run ~until:1.0 sim;
  let times = Netsim.Monitor.times monitor in
  let ok = ref true in
  for i = 1 to Array.length times - 1 do
    if times.(i) <= times.(i - 1) then ok := false
  done;
  Alcotest.(check bool) "monotone timestamps" true !ok;
  Alcotest.(check bool) "stops at until" true
    (Array.for_all (fun t -> t <= 0.5) times)

let test_summary () =
  let sim = Engine.Sim.create () in
  let q = Netsim.Qdisc.droptail ~capacity_pkts:10 in
  let monitor = Netsim.Monitor.start ~sim ~qdisc:q ~interval:0.1 ~until:0.55 () in
  Engine.Sim.run ~until:1.0 sim;
  let s = Netsim.Monitor.summary monitor in
  Alcotest.(check int) "summary count" 5 s.Stats.Summary.n

let suite =
  [
    Alcotest.test_case "samples occupancy" `Quick test_samples_occupancy;
    Alcotest.test_case "times monotone" `Quick test_times_monotone;
    Alcotest.test_case "summary" `Quick test_summary;
  ]
