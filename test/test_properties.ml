(* Failure-injection property tests: random path conditions and
   compositions, invariant contracts checked on every run.

   Each property builds a short (8 s) simulation so qcheck can afford
   dozens of cases. *)

let run_random_connection ~seed ~loss ~burst ~mode ~light ~cadence =
  let sim = Engine.Sim.create ~seed () in
  let rng = Engine.Sim.split_rng sim in
  let forward =
    Netsim.Topology.spec ~rate_bps:10e6 ~delay:0.02
      ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:40)
      ~loss:(fun () ->
        if loss <= 0.0 then Netsim.Loss_model.none
        else if burst then
          Experiments.Common.gilbert ~loss ~burstiness:0.6
            (Engine.Rng.split rng)
        else Netsim.Loss_model.bernoulli ~p:loss ~rng:(Engine.Rng.split rng))
      ()
  in
  let topo = Netsim.Topology.duplex_path ~sim ~forward () in
  let offer =
    if light then Qtp.Profile.qtp_light ~reliability:[ mode ] ()
    else
      {
        (Qtp.Profile.qtp_tfrc ()) with
        Qtp.Capabilities.reliability = [ mode ];
      }
  in
  let agreed = Qtp.Profile.agreed_exn offer (Qtp.Profile.anything ()) in
  let conn =
    Qtp.Connection.create ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      (Qtp.Connection.config ~initial_rtt:0.2 ~cadence agreed)
  in
  Engine.Sim.run ~until:8.0 sim;
  conn

let gen_case =
  QCheck.Gen.(
    map
      (fun ((seed, loss_i), (burst, mode_i, light)) ->
        let loss = float_of_int loss_i /. 100.0 in
        let mode =
          match mode_i mod 3 with
          | 0 -> Qtp.Capabilities.R_none
          | 1 -> Qtp.Capabilities.R_partial
          | _ -> Qtp.Capabilities.R_full
        in
        (seed, loss, burst, mode, light))
      (pair (pair (int_range 1 10_000) (int_range 0 10))
         (triple bool (int_bound 2) bool)))

let arb_case = QCheck.make gen_case

let prop_conservation =
  QCheck.Test.make ~name:"delivered + skipped never exceeds data sent"
    ~count:30 arb_case
    (fun (seed, loss, burst, mode, light) ->
      let conn =
        run_random_connection ~seed ~loss ~burst ~mode ~light
          ~cadence:Qtp.Connection.Per_rtt
      in
      let sent = Qtp.Connection.data_sent conn in
      let accounted =
        Qtp.Connection.delivered conn + Qtp.Connection.skipped conn
      in
      accounted <= sent)

let prop_unreliable_never_retransmits =
  QCheck.Test.make ~name:"R_none never retransmits" ~count:20 arb_case
    (fun (seed, loss, burst, _mode, light) ->
      let conn =
        run_random_connection ~seed ~loss ~burst ~mode:Qtp.Capabilities.R_none
          ~light ~cadence:Qtp.Connection.Per_rtt
      in
      Qtp.Connection.retransmissions conn = 0)

let prop_full_never_skips =
  QCheck.Test.make ~name:"R_full never skips" ~count:20 arb_case
    (fun (seed, loss, burst, _mode, light) ->
      let conn =
        run_random_connection ~seed ~loss ~burst ~mode:Qtp.Capabilities.R_full
          ~light ~cadence:Qtp.Connection.Per_rtt
      in
      Qtp.Connection.skipped conn = 0)

let prop_loss_estimate_sane =
  QCheck.Test.make ~name:"sender loss estimate stays in [0,1]" ~count:20
    arb_case
    (fun (seed, loss, burst, mode, light) ->
      let conn =
        run_random_connection ~seed ~loss ~burst ~mode ~light
          ~cadence:Qtp.Connection.Per_packet
      in
      let p = Qtp.Connection.sender_loss_estimate conn in
      p >= 0.0 && p <= 1.0)

let prop_progress_on_lossy_paths =
  QCheck.Test.make ~name:"connection always makes progress (loss <= 10%)"
    ~count:20 arb_case
    (fun (seed, loss, burst, mode, light) ->
      let conn =
        run_random_connection ~seed ~loss ~burst ~mode ~light
          ~cadence:Qtp.Connection.Per_rtt
      in
      Qtp.Connection.delivered conn > 0)

let prop_delays_bounded_below =
  QCheck.Test.make ~name:"delivery delays >= one-way delay" ~count:15 arb_case
    (fun (seed, loss, burst, mode, light) ->
      let conn =
        run_random_connection ~seed ~loss ~burst ~mode ~light
          ~cadence:Qtp.Connection.Per_rtt
      in
      Array.for_all
        (fun d -> d >= 0.019)
        (Qtp.Connection.delivery_delays conn))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_conservation;
    QCheck_alcotest.to_alcotest prop_unreliable_never_retransmits;
    QCheck_alcotest.to_alcotest prop_full_never_skips;
    QCheck_alcotest.to_alcotest prop_loss_estimate_sane;
    QCheck_alcotest.to_alcotest prop_progress_on_lossy_paths;
    QCheck_alcotest.to_alcotest prop_delays_bounded_below;
  ]
