(* TCP baseline: congestion window dynamics and end-to-end transfer. *)

let duplex ?(rate_bps = 8.0e6) ?(delay = 0.01) ?loss ?(seed = 81) () =
  let sim = Engine.Sim.create ~seed () in
  let rng = Engine.Sim.split_rng sim in
  let forward =
    Netsim.Topology.spec ~rate_bps ~delay
      ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:50)
      ~loss:(fun () ->
        match loss with
        | Some p -> Netsim.Loss_model.bernoulli ~p ~rng
        | None -> Netsim.Loss_model.none)
      ()
  in
  let topo = Netsim.Topology.duplex_path ~sim ~forward () in
  (sim, Netsim.Topology.endpoint topo 0)

let test_clean_transfer_fills_pipe () =
  let sim, ep = duplex () in
  let flow = Tcp.Flow.create ~sim ~endpoint:ep () in
  Engine.Sim.run ~until:20.0 sim;
  let rate = Tcp.Flow.goodput_bps flow ~from_:5.0 ~until:20.0 in
  Alcotest.(check bool)
    (Printf.sprintf "goodput %f ~ link rate" rate)
    true
    (rate > 0.8 *. 8.0e6);
  Alcotest.(check int) "no timeouts on clean path" 0
    (Tcp.Tcp_sender.timeouts (Tcp.Flow.sender flow))

let test_slow_start_growth () =
  let sim, ep = duplex () in
  let flow = Tcp.Flow.create ~sim ~endpoint:ep () in
  Engine.Sim.run ~until:0.2 sim;
  (* After ~10 RTTs of 20 ms, cwnd must have grown well beyond IW. *)
  Alcotest.(check bool) "cwnd grew" true
    (Tcp.Tcp_sender.cwnd (Tcp.Flow.sender flow) > 8.0)

let test_loss_triggers_fast_retransmit () =
  let sim, ep = duplex ~loss:0.02 () in
  let flow = Tcp.Flow.create ~sim ~endpoint:ep () in
  Engine.Sim.run ~until:20.0 sim;
  let s = Tcp.Flow.sender flow in
  Alcotest.(check bool) "retransmits happened" true
    (Tcp.Tcp_sender.retransmits s > 0);
  Alcotest.(check bool) "mostly without timeouts" true
    (Tcp.Tcp_sender.retransmits s > Tcp.Tcp_sender.timeouts s)

let test_receiver_delivers_everything_in_order () =
  let sim, ep = duplex ~loss:0.05 () in
  let flow = Tcp.Flow.create ~sim ~endpoint:ep () in
  Engine.Sim.run ~until:20.0 sim;
  let sender = Tcp.Flow.sender flow in
  let receiver = Tcp.Flow.receiver flow in
  (* Reliability: the cumulative point equals delivered segments with no
     holes behind it. *)
  let cum = Packet.Serial.to_int (Tcp.Tcp_receiver.cum_ack receiver) in
  Alcotest.(check bool) "progress" true (cum > 100);
  Alcotest.(check bool) "sent covers cum" true
    (Tcp.Tcp_sender.segments_sent sender >= cum)

let test_rto_on_blackout () =
  (* Forward path dies at t=2 (100% loss): the sender must fire RTOs and
     survive (no exception), with backoff growing the RTO. *)
  let sim = Engine.Sim.create ~seed:83 () in
  let dead = ref false in
  let forward =
    Netsim.Topology.spec ~rate_bps:8.0e6 ~delay:0.01
      ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:50)
      ()
  in
  let topo = Netsim.Topology.duplex_path ~sim ~forward () in
  let ep = Netsim.Topology.endpoint topo 0 in
  (* Intercept forward traffic to emulate the blackout. *)
  let real_send = ep.Netsim.Topology.to_receiver in
  let ep = { ep with Netsim.Topology.to_receiver = (fun f -> if not !dead then real_send f) } in
  let flow = Tcp.Flow.create ~sim ~endpoint:ep () in
  ignore (Engine.Sim.schedule_at sim 2.0 (fun () -> dead := true));
  Engine.Sim.run ~until:30.0 sim;
  Alcotest.(check bool) "timeouts fired" true
    (Tcp.Tcp_sender.timeouts (Tcp.Flow.sender flow) >= 2);
  Alcotest.(check bool) "rto backed off" true
    (Tcp.Tcp_sender.rto (Tcp.Flow.sender flow) > 0.5)

let test_sack_variant_runs () =
  let sim, ep = duplex ~loss:0.03 () in
  let params = { Tcp.Tcp_sender.default_params with use_sack = true } in
  let flow = Tcp.Flow.create ~sim ~endpoint:ep ~params () in
  Engine.Sim.run ~until:20.0 sim;
  Alcotest.(check bool) "sack tcp moves data" true
    (Tcp.Flow.goodput_bps flow ~from_:5.0 ~until:20.0 > 1e5)

let test_srtt_estimation () =
  let sim, ep = duplex ~delay:0.05 () in
  let flow = Tcp.Flow.create ~sim ~endpoint:ep () in
  Engine.Sim.run ~until:5.0 sim;
  match Tcp.Tcp_sender.srtt (Tcp.Flow.sender flow) with
  | Some srtt ->
      (* True RTT >= 100 ms (plus queueing). *)
      Alcotest.(check bool)
        (Printf.sprintf "srtt %f >= 0.1" srtt)
        true (srtt >= 0.099)
  | None -> Alcotest.fail "no rtt sample"

let test_delayed_acks_halve_ack_traffic () =
  let run delayed =
    let sim, ep = duplex () in
    let params = { Tcp.Tcp_sender.default_params with delayed_acks = delayed } in
    let flow = Tcp.Flow.create ~sim ~endpoint:ep ~params () in
    Engine.Sim.run ~until:10.0 sim;
    let r = Tcp.Flow.receiver flow in
    ( Tcp.Tcp_receiver.acks_sent r,
      Tcp.Tcp_receiver.segments_received r,
      Tcp.Flow.goodput_bps flow ~from_:2.0 ~until:10.0 )
  in
  let acks_imm, segs_imm, rate_imm = run false in
  let acks_del, segs_del, rate_del = run true in
  Alcotest.(check bool) "immediate: one ack per segment" true
    (acks_imm >= segs_imm - 1);
  Alcotest.(check bool)
    (Printf.sprintf "delayed acks (%d) ~ half of segments (%d)" acks_del
       segs_del)
    true
    (acks_del < (segs_del * 6 / 10));
  Alcotest.(check bool)
    (Printf.sprintf "throughput survives (%.2f vs %.2f Mb/s)" (rate_del /. 1e6)
       (rate_imm /. 1e6))
    true
    (rate_del > 0.7 *. rate_imm)

let test_delayed_acks_with_loss_still_recovers () =
  let sim, ep = duplex ~loss:0.02 () in
  let params = { Tcp.Tcp_sender.default_params with delayed_acks = true } in
  let flow = Tcp.Flow.create ~sim ~endpoint:ep ~params () in
  Engine.Sim.run ~until:20.0 sim;
  let s = Tcp.Flow.sender flow in
  (* Out-of-order segments are acked immediately, so fast retransmit
     still dominates over timeouts. *)
  Alcotest.(check bool) "fast retransmit works with delack" true
    (Tcp.Tcp_sender.retransmits s > Tcp.Tcp_sender.timeouts s);
  Alcotest.(check bool) "progress" true
    (Tcp.Flow.goodput_bps flow ~from_:5.0 ~until:20.0 > 1e5)

let suite =
  [
    Alcotest.test_case "delayed acks halve traffic" `Quick
      test_delayed_acks_halve_ack_traffic;
    Alcotest.test_case "delayed acks recover from loss" `Quick
      test_delayed_acks_with_loss_still_recovers;
    Alcotest.test_case "fills clean pipe" `Quick test_clean_transfer_fills_pipe;
    Alcotest.test_case "slow start growth" `Quick test_slow_start_growth;
    Alcotest.test_case "fast retransmit" `Quick
      test_loss_triggers_fast_retransmit;
    Alcotest.test_case "in-order delivery" `Quick
      test_receiver_delivers_everything_in_order;
    Alcotest.test_case "rto on blackout" `Quick test_rto_on_blackout;
    Alcotest.test_case "sack variant" `Quick test_sack_variant_runs;
    Alcotest.test_case "srtt estimation" `Quick test_srtt_estimation;
  ]
