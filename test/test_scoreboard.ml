(* Sack.Scoreboard: send tracking, feedback digestion, loss inference,
   expiry, abandonment. *)

module SB = Sack.Scoreboard
module S = Packet.Serial

let blk a b = Sack.Blocks.make (S.of_int a) (S.of_int b)

let send_n sb ?(start = 0) ?(t0 = 0.0) n =
  for i = start to start + n - 1 do
    SB.on_send sb ~seq:(S.of_int i)
      ~now:(t0 +. (float_of_int i *. 0.001))
      ~size:1000 ~is_retx:false
  done

let test_sequencing () =
  let sb = SB.create () in
  Alcotest.(check int) "starts at 0" 0 (S.to_int (SB.next_seq sb));
  send_n sb 5;
  Alcotest.(check int) "next" 5 (S.to_int (SB.next_seq sb));
  Alcotest.(check int) "una" 0 (S.to_int (SB.una sb));
  Alcotest.(check int) "outstanding" 5 (SB.outstanding sb)

let test_out_of_order_send_rejected () =
  let sb = SB.create () in
  Alcotest.(check bool) "skip rejected" true
    (try
       SB.on_send sb ~seq:(S.of_int 3) ~now:0.0 ~size:1000 ~is_retx:false;
       false
     with Invalid_argument _ -> true)

let test_cum_ack_advances () =
  let sb = SB.create () in
  send_n sb 5;
  let res = SB.on_feedback sb ~cum_ack:(S.of_int 3) ~blocks:[] in
  Alcotest.(check bool) "cum advanced" true res.SB.cum_advanced;
  Alcotest.(check int) "3 newly acked" 3 (List.length res.SB.newly_acked);
  Alcotest.(check int) "una" 3 (S.to_int (SB.una sb));
  Alcotest.(check int) "outstanding" 2 (SB.outstanding sb);
  (* Acked covers come in ascending order with send times. *)
  (match res.SB.newly_acked with
  | { SB.cov_seq; cov_sent_at; cov_was_retx } :: _ ->
      Alcotest.(check int) "first cover" 0 (S.to_int cov_seq);
      Alcotest.(check (float 1e-9)) "send time" 0.0 cov_sent_at;
      Alcotest.(check bool) "not retx" false cov_was_retx
  | [] -> Alcotest.fail "expected covers")

let test_sack_marks () =
  let sb = SB.create () in
  send_n sb 10;
  let res = SB.on_feedback sb ~cum_ack:(S.of_int 0) ~blocks:[ blk 5 8 ] in
  Alcotest.(check int) "newly sacked" 3 (List.length res.SB.newly_sacked);
  Alcotest.(check bool) "status sacked" true (SB.status sb (S.of_int 6) = `Sacked);
  (* Re-reporting the same block adds nothing. *)
  let res2 = SB.on_feedback sb ~cum_ack:(S.of_int 0) ~blocks:[ blk 5 8 ] in
  Alcotest.(check int) "idempotent" 0 (List.length res2.SB.newly_sacked)

let test_loss_inference_dupthresh () =
  let sb = SB.create ~dupthresh:3 () in
  send_n sb 10;
  (* 0 missing; sacked 1-2 -> only 2 above: not yet lost. *)
  let r1 = SB.on_feedback sb ~cum_ack:(S.of_int 0) ~blocks:[ blk 1 3 ] in
  Alcotest.(check (list int)) "not yet" []
    (List.map S.to_int r1.SB.newly_lost);
  let r2 = SB.on_feedback sb ~cum_ack:(S.of_int 0) ~blocks:[ blk 1 4 ] in
  Alcotest.(check (list int)) "now lost" [ 0 ]
    (List.map S.to_int r2.SB.newly_lost);
  Alcotest.(check bool) "status lost" true (SB.status sb (S.of_int 0) = `Lost);
  Alcotest.(check (list int)) "pending" [ 0 ]
    (List.map S.to_int (SB.lost_pending sb))

let test_multiple_holes_inferred () =
  let sb = SB.create () in
  send_n sb 12;
  (* Holes at 0,1 and 5; sacked 2..5? sacked blocks [2,5) and [6,12). *)
  let r =
    SB.on_feedback sb ~cum_ack:(S.of_int 0) ~blocks:[ blk 2 5; blk 6 12 ]
  in
  Alcotest.(check (list int)) "holes below enough sacks" [ 0; 1; 5 ]
    (List.map S.to_int r.SB.newly_lost)

let test_retransmit_resets () =
  let sb = SB.create () in
  send_n sb 6;
  ignore (SB.on_feedback sb ~cum_ack:(S.of_int 0) ~blocks:[ blk 1 6 ]);
  Alcotest.(check bool) "lost" true (SB.status sb (S.of_int 0) = `Lost);
  SB.on_send sb ~seq:(S.of_int 0) ~now:1.0 ~size:1000 ~is_retx:true;
  Alcotest.(check bool) "in flight again" true
    (SB.status sb (S.of_int 0) = `In_flight);
  Alcotest.(check int) "retx counted" 1 (SB.retx_count sb (S.of_int 0));
  Alcotest.(check int) "stats" 1 (SB.stats_retx sb);
  (* Cum ack after repair: cover reports the original send time and the
     retransmit flag. *)
  let r = SB.on_feedback sb ~cum_ack:(S.of_int 6) ~blocks:[] in
  match r.SB.newly_acked with
  | [ c ] ->
      Alcotest.(check bool) "was retx" true c.SB.cov_was_retx;
      Alcotest.(check int) "seq 0" 0 (S.to_int c.SB.cov_seq)
  | l -> Alcotest.failf "expected 1 cover (sacked ones not repeated), got %d" (List.length l)

let test_retransmit_unknown_rejected () =
  let sb = SB.create () in
  Alcotest.(check bool) "unknown retx rejected" true
    (try
       SB.on_send sb ~seq:(S.of_int 0) ~now:0.0 ~size:1000 ~is_retx:true;
       false
     with Invalid_argument _ -> true)

let test_mark_expired () =
  let sb = SB.create () in
  send_n sb 3;
  let expired = SB.mark_expired sb ~now:10.0 ~timeout:1.0 in
  Alcotest.(check (list int)) "all expired" [ 0; 1; 2 ]
    (List.map S.to_int expired);
  Alcotest.(check (list int)) "idempotent" []
    (List.map S.to_int (SB.mark_expired sb ~now:10.0 ~timeout:1.0))

let test_expiry_skips_sacked_and_fresh () =
  let sb = SB.create () in
  send_n sb 4;
  ignore (SB.on_feedback sb ~cum_ack:(S.of_int 0) ~blocks:[ blk 2 3 ]);
  (* seq 3 sent at t=3ms; with now=0.1 and timeout=0.098 only 0,1 are old
     enough; 2 is sacked. *)
  let expired = SB.mark_expired sb ~now:0.1 ~timeout:0.0975 in
  Alcotest.(check (list int)) "old unsacked only" [ 0; 1 ]
    (List.map S.to_int expired)

let test_abandon_below () =
  let sb = SB.create () in
  send_n sb 10;
  SB.abandon_below sb (S.of_int 4);
  Alcotest.(check int) "una moved" 4 (S.to_int (SB.una sb));
  Alcotest.(check int) "entries dropped" 6 (SB.outstanding sb);
  Alcotest.(check bool) "untracked" true (SB.status sb (S.of_int 2) = `Untracked)

let test_in_flight_bytes () =
  let sb = SB.create () in
  send_n sb 4;
  Alcotest.(check int) "4 kB" 4000 (SB.in_flight_bytes sb);
  ignore (SB.on_feedback sb ~cum_ack:(S.of_int 0) ~blocks:[ blk 1 2 ]);
  Alcotest.(check int) "sacked not in flight" 3000 (SB.in_flight_bytes sb)

let prop_sacked_and_lost_disjoint =
  QCheck.Test.make ~name:"no seq both sacked and lost" ~count:200
    QCheck.(list (pair (int_bound 30) (int_bound 5)))
    (fun raw_blocks ->
      let sb = SB.create () in
      send_n sb 32;
      List.iter
        (fun (a, len) ->
          if len > 0 && a + len <= 32 then
            ignore (SB.on_feedback sb ~cum_ack:(S.of_int 0) ~blocks:[ blk a (a + len) ]))
        raw_blocks;
      List.for_all
        (fun i ->
          match SB.status sb (S.of_int i) with
          | `Sacked | `Lost | `In_flight | `Untracked -> true)
        (List.init 32 Fun.id)
      && List.for_all
           (fun s -> SB.status sb s = `Lost)
           (SB.lost_pending sb))

let prop_una_monotone =
  QCheck.Test.make ~name:"una never regresses" ~count:200
    QCheck.(list (int_bound 40))
    (fun acks ->
      let sb = SB.create () in
      send_n sb 40;
      let ok = ref true in
      let prev = ref 0 in
      List.iter
        (fun a ->
          ignore (SB.on_feedback sb ~cum_ack:(S.of_int a) ~blocks:[]);
          let u = S.to_int (SB.una sb) in
          if u < !prev then ok := false;
          prev := u)
        acks;
      !ok)

(* ------------------------------------------------------------------ *)
(* Differential testing against the frozen per-entry reference
   implementation: a random operation stream — send bursts, SACK
   feedback, retransmission of every pending loss, timeout expiry and
   abandonment — is replayed through both the run-length scoreboard and
   [Sack.Scoreboard_ref], and every externally observable result must
   match exactly: feedback covers, loss inferences, expiry lists,
   per-sequence status and the aggregate counters. *)

module SBR = Sack.Scoreboard_ref

let cover_repr (c : SB.cover) =
  (S.to_int c.SB.cov_seq, c.SB.cov_sent_at, c.SB.cov_was_retx)

let cover_repr_ref (c : SBR.cover) =
  (S.to_int c.SBR.cov_seq, c.SBR.cov_sent_at, c.SBR.cov_was_retx)

let differential_run ~seed ~steps =
  let rng = Engine.Rng.create ~seed in
  let sb = SB.create ~dupthresh:3 () in
  let sbr = SBR.create ~dupthresh:3 () in
  let now = ref 0.0 in
  let ok = ref true in
  let expect _what b = if not b then ok := false in
  let both_send seq ~is_retx =
    SB.on_send sb ~seq ~now:!now ~size:1000 ~is_retx;
    SBR.on_send sbr ~seq ~now:!now ~size:1000 ~is_retx
  in
  for _ = 1 to steps do
    now := !now +. 0.001 +. Engine.Rng.float rng 0.01;
    (match Engine.Rng.int rng 8 with
    | 0 | 1 ->
        let n = 1 + Engine.Rng.int rng 24 in
        for _ = 1 to n do
          both_send (SB.next_seq sb) ~is_retx:false
        done
    | 2 | 3 | 4 ->
        let una = S.to_int (SB.una sb) in
        let nxt = S.to_int (SB.next_seq sb) in
        let window = nxt - una in
        let cum = una + Engine.Rng.int rng (window + 1) in
        let blocks =
          List.init (Engine.Rng.int rng 4) (fun _ ->
              let a = cum + 1 + Engine.Rng.int rng (Stdlib.max 1 (nxt - cum) + 2) in
              blk a (a + 1 + Engine.Rng.int rng 6))
        in
        let r = SB.on_feedback sb ~cum_ack:(S.of_int cum) ~blocks in
        let rr = SBR.on_feedback sbr ~cum_ack:(S.of_int cum) ~blocks in
        expect "cum_advanced" (r.SB.cum_advanced = rr.SBR.cum_advanced);
        expect "newly_acked"
          (List.map cover_repr r.SB.newly_acked
          = List.map cover_repr_ref rr.SBR.newly_acked);
        expect "newly_sacked"
          (List.map cover_repr r.SB.newly_sacked
          = List.map cover_repr_ref rr.SBR.newly_sacked);
        expect "newly_lost"
          (List.map S.to_int r.SB.newly_lost
          = List.map S.to_int rr.SBR.newly_lost)
    | 5 ->
        let lp = SB.lost_pending sb in
        expect "lost_pending"
          (List.map S.to_int lp = List.map S.to_int (SBR.lost_pending sbr));
        List.iter (fun s -> both_send s ~is_retx:true) lp
    | 6 ->
        let timeout = 0.001 +. Engine.Rng.float rng 0.05 in
        expect "mark_expired"
          (List.map S.to_int (SB.mark_expired sb ~now:!now ~timeout)
          = List.map S.to_int (SBR.mark_expired sbr ~now:!now ~timeout))
    | _ ->
        let una = S.to_int (SB.una sb) in
        let window = S.to_int (SB.next_seq sb) - una in
        let upto = S.of_int (una + Engine.Rng.int rng (window + 1)) in
        SB.abandon_below sb upto;
        SBR.abandon_below sbr upto);
    expect "una" (S.equal (SB.una sb) (SBR.una sbr));
    expect "next_seq" (S.equal (SB.next_seq sb) (SBR.next_seq sbr));
    expect "outstanding" (SB.outstanding sb = SBR.outstanding sbr);
    expect "in_flight" (SB.in_flight_bytes sb = SBR.in_flight_bytes sbr)
  done;
  let una = S.to_int (SB.una sb) and nxt = S.to_int (SB.next_seq sb) in
  for i = Stdlib.max 0 (una - 2) to nxt + 2 do
    let s = S.of_int i in
    expect "status" (SB.status sb s = SBR.status sbr s);
    expect "retx_count" (SB.retx_count sb s = SBR.retx_count sbr s);
    expect "first_sent_at" (SB.first_sent_at sb s = SBR.first_sent_at sbr s)
  done;
  expect "stats_sent" (SB.stats_sent sb = SBR.stats_sent sbr);
  expect "stats_retx" (SB.stats_retx sb = SBR.stats_retx sbr);
  expect "stats_acked" (SB.stats_acked sb = SBR.stats_acked sbr);
  !ok

let prop_differential_vs_reference =
  QCheck.Test.make
    ~name:"run-length scoreboard matches the frozen reference" ~count:250
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 120))
    (fun (seed, steps) -> differential_run ~seed ~steps)

(* Adversarial fragmentation: SACK every second packet of a large
   window in one feedback — the worst case for any run-length scheme.
   The representation must hold exactly one run per reported block (no
   super-linear blowup), infer the interleaved holes lost, and collapse
   back to zero runs once the cumulative ack sweeps the window. *)
let test_alternating_sack_fragmentation () =
  let n = 2000 in
  let sb = SB.create ~dupthresh:3 () in
  send_n sb n;
  let blocks = List.init (n / 2) (fun i -> blk ((2 * i) + 1) ((2 * i) + 2)) in
  let r = SB.on_feedback sb ~cum_ack:(S.of_int 0) ~blocks in
  Alcotest.(check int) "every block newly sacked" (n / 2)
    (List.length r.SB.newly_sacked);
  let sacked_runs, lost_runs = SB.runs_held sb in
  Alcotest.(check int) "one run per disjoint block" (n / 2) sacked_runs;
  Alcotest.(check bool) "lost runs bounded by holes" true
    (lost_runs <= n / 2);
  (* Holes with >= dupthresh sacked packets above them are lost: all
     even numbers except the last two. *)
  Alcotest.(check int) "holes inferred lost" ((n / 2) - 2)
    (List.length r.SB.newly_lost);
  let r2 = SB.on_feedback sb ~cum_ack:(S.of_int n) ~blocks:[] in
  Alcotest.(check int) "cum sweep acks the holes" (n / 2)
    (List.length r2.SB.newly_acked);
  Alcotest.(check (pair int int)) "runs collapse to nothing" (0, 0)
    (SB.runs_held sb);
  Alcotest.(check int) "nothing outstanding" 0 (SB.outstanding sb)

(* --- iter_feedback: callback order and parity with on_feedback ---- *)

let test_iter_feedback_ordering () =
  (* Two identically-prepared scoreboards digest the same feedback, one
     through the streaming iterator and one through the list-building
     wrapper: the callback stream must replay the wrapper's covers
     exactly, phase by phase (acks, then sacks, then losses), each
     phase in ascending sequence order, and the summary counts must
     match. *)
  let prep () =
    let sb = SB.create () in
    send_n sb 12;
    sb
  in
  let cum_ack = S.of_int 3 and blocks = [ blk 5 6; blk 8 11 ] in
  let events = ref [] in
  let sum =
    SB.iter_feedback (prep ()) ~cum_ack ~blocks
      ~on_ack:(fun ~seq ~sent_at ~was_retx:_ ->
        events := `Ack (S.to_int seq, sent_at) :: !events)
      ~on_sack:(fun ~seq ~sent_at ~was_retx:_ ->
        events := `Sack (S.to_int seq, sent_at) :: !events)
      ~on_lost:(fun seq -> events := `Lost (S.to_int seq) :: !events)
  in
  let ev = List.rev !events in
  let phase = function `Ack _ -> 0 | `Sack _ -> 1 | `Lost _ -> 2 in
  let seq_of = function `Ack (s, _) | `Sack (s, _) -> s | `Lost s -> s in
  let rec phases_ascend = function
    | a :: (b :: _ as rest) ->
        (phase a < phase b || (phase a = phase b && seq_of a < seq_of b))
        && phases_ascend rest
    | _ -> true
  in
  Alcotest.(check bool) "acks, then sacks, then losses; each ascending" true
    (phases_ascend ev);
  let r = SB.on_feedback (prep ()) ~cum_ack ~blocks in
  let covers k l =
    List.map (fun c -> k (S.to_int c.SB.cov_seq, c.SB.cov_sent_at)) l
  in
  Alcotest.(check bool) "stream replays the wrapper's covers" true
    (ev
    = covers (fun x -> `Ack x) r.SB.newly_acked
      @ covers (fun x -> `Sack x) r.SB.newly_sacked
      @ List.map (fun s -> `Lost (S.to_int s)) r.SB.newly_lost);
  Alcotest.(check int) "fb_acked" (List.length r.SB.newly_acked) sum.SB.fb_acked;
  Alcotest.(check int) "fb_sacked" (List.length r.SB.newly_sacked)
    sum.SB.fb_sacked;
  Alcotest.(check int) "fb_lost" (List.length r.SB.newly_lost) sum.SB.fb_lost;
  Alcotest.(check bool) "fb_cum_advanced" r.SB.cum_advanced
    sum.SB.fb_cum_advanced;
  Alcotest.(check bool) "losses were actually inferred" true
    (sum.SB.fb_lost > 0)

let suite =
  [
    Alcotest.test_case "iter_feedback: callback order and parity" `Quick
      test_iter_feedback_ordering;
    Alcotest.test_case "sequencing" `Quick test_sequencing;
    Alcotest.test_case "out of order rejected" `Quick
      test_out_of_order_send_rejected;
    Alcotest.test_case "cum ack" `Quick test_cum_ack_advances;
    Alcotest.test_case "sack marks" `Quick test_sack_marks;
    Alcotest.test_case "loss inference" `Quick test_loss_inference_dupthresh;
    Alcotest.test_case "multiple holes" `Quick test_multiple_holes_inferred;
    Alcotest.test_case "retransmit resets" `Quick test_retransmit_resets;
    Alcotest.test_case "unknown retx rejected" `Quick
      test_retransmit_unknown_rejected;
    Alcotest.test_case "mark_expired" `Quick test_mark_expired;
    Alcotest.test_case "expiry selective" `Quick
      test_expiry_skips_sacked_and_fresh;
    Alcotest.test_case "abandon_below" `Quick test_abandon_below;
    Alcotest.test_case "in-flight bytes" `Quick test_in_flight_bytes;
    Alcotest.test_case "alternating-loss fragmentation bounded" `Quick
      test_alternating_sack_fragmentation;
    QCheck_alcotest.to_alcotest prop_sacked_and_lost_disjoint;
    QCheck_alcotest.to_alcotest prop_una_monotone;
    QCheck_alcotest.to_alcotest prop_differential_vs_reference;
  ]
