(* Sack.Rcv_tracker: cumulative ack, range merging, SACK block
   generation, forward points. *)

module T = Sack.Rcv_tracker
module S = Packet.Serial

let feed t xs = List.iter (fun i -> T.on_data t ~seq:(S.of_int i)) xs

let blocks_ints t =
  List.map
    (fun (b : Sack.Blocks.t) ->
      (S.to_int b.Packet.Header.block_start, S.to_int b.Packet.Header.block_end))
    (T.all_ranges t)

let test_in_order () =
  let t = T.create () in
  feed t [ 0; 1; 2; 3 ];
  Alcotest.(check int) "cum advances" 4 (S.to_int (T.cum_ack t));
  Alcotest.(check (list (pair int int))) "no ranges" [] (blocks_ints t)

let test_gap_creates_range () =
  let t = T.create () in
  feed t [ 0; 1; 5; 6 ];
  Alcotest.(check int) "cum stuck at hole" 2 (S.to_int (T.cum_ack t));
  Alcotest.(check (list (pair int int))) "range" [ (5, 7) ] (blocks_ints t)

let test_fill_merges_back () =
  let t = T.create () in
  feed t [ 0; 1; 5; 6; 3; 4 ];
  Alcotest.(check (list (pair int int))) "one merged range" [ (3, 7) ]
    (blocks_ints t);
  feed t [ 2 ];
  Alcotest.(check int) "cum jumps over merged range" 7
    (S.to_int (T.cum_ack t));
  Alcotest.(check (list (pair int int))) "ranges consumed" [] (blocks_ints t)

let test_multiple_ranges_sorted () =
  let t = T.create () in
  feed t [ 0; 10; 5; 20 ];
  Alcotest.(check (list (pair int int)))
    "ascending disjoint ranges"
    [ (5, 6); (10, 11); (20, 21) ]
    (blocks_ints t)

let test_duplicates_counted () =
  let t = T.create () in
  feed t [ 0; 1; 1; 0; 5; 5 ];
  Alcotest.(check int) "dups" 3 (T.duplicates t);
  Alcotest.(check int) "packets counted raw" 6 (T.packets t)

(* Exact duplicates must leave the acknowledgment state untouched: no
   cum movement, no new or widened ranges, no SACK block changes. *)
let test_duplicates_leave_state_untouched () =
  let t = T.create () in
  feed t [ 0; 1; 5; 6; 10 ];
  let cum = S.to_int (T.cum_ack t) in
  let ranges = blocks_ints t in
  feed t [ 0; 1; 5; 6; 10; 5; 10 ];
  Alcotest.(check int) "cum unchanged" cum (S.to_int (T.cum_ack t));
  Alcotest.(check (list (pair int int))) "ranges unchanged" ranges
    (blocks_ints t);
  Alcotest.(check int) "all counted as dups" 7 (T.duplicates t)

(* The deliberate-bug hook exists for the fuzz harness's negative test;
   prove it really corrupts the range list (a below-cum block appears)
   and that turning it off restores correct behaviour. *)
let test_bug_hook_corrupts_ranges () =
  Sack.Rcv_tracker.test_only_skip_dup_check := true;
  Fun.protect
    ~finally:(fun () -> Sack.Rcv_tracker.test_only_skip_dup_check := false)
    (fun () ->
      let t = T.create () in
      feed t [ 0; 1; 2 ];
      (* A duplicate of 1 now re-inserts a range below the cum point. *)
      feed t [ 1 ];
      Alcotest.(check bool)
        "bogus below-cum range present" true
        (List.exists (fun (lo, _) -> lo < S.to_int (T.cum_ack t))
           (blocks_ints t)));
  let t = T.create () in
  feed t [ 0; 1; 2; 1 ];
  Alcotest.(check (list (pair int int))) "clean again with hook off" []
    (blocks_ints t)

let test_sack_blocks_recency_first () =
  let t = T.create ~max_blocks:2 () in
  feed t [ 0; 5; 10; 15; 20 ];
  (* Four ranges exist; the report must carry the two most recent. *)
  let blocks = T.sack_blocks t in
  Alcotest.(check int) "bounded" 2 (List.length blocks);
  match blocks with
  | first :: second :: _ ->
      Alcotest.(check int) "most recent first" 20
        (S.to_int first.Packet.Header.block_start);
      Alcotest.(check int) "then previous" 15
        (S.to_int second.Packet.Header.block_start)
  | _ -> Alcotest.fail "expected 2 blocks"

let test_received_query () =
  let t = T.create () in
  feed t [ 0; 1; 5 ];
  Alcotest.(check bool) "cum-covered" true (T.received t (S.of_int 1));
  Alcotest.(check bool) "ranged" true (T.received t (S.of_int 5));
  Alcotest.(check bool) "hole" false (T.received t (S.of_int 3))

let test_fwd_point_abandons () =
  let t = T.create () in
  feed t [ 0; 1; 5; 6 ];
  T.apply_fwd_point t (S.of_int 4);
  Alcotest.(check int) "cum at fwd" 4 (S.to_int (T.cum_ack t));
  feed t [ 4 ];
  Alcotest.(check int) "then merges through the range" 7
    (S.to_int (T.cum_ack t))

let test_fwd_point_into_range () =
  let t = T.create () in
  feed t [ 0; 5; 6; 7 ];
  (* fwd into the middle of [5,8): everything below 6 abandoned, range
     trimmed and immediately consumed. *)
  T.apply_fwd_point t (S.of_int 6);
  Alcotest.(check int) "cum continues through trimmed range" 8
    (S.to_int (T.cum_ack t))

let test_fwd_point_backwards_ignored () =
  let t = T.create () in
  feed t [ 0; 1; 2 ];
  T.apply_fwd_point t (S.of_int 1);
  Alcotest.(check int) "no regression" 3 (S.to_int (T.cum_ack t))

let test_cost_o1 () =
  let cost = Stats.Cost.create () in
  let t = T.create ~cost () in
  feed t (List.init 1000 Fun.id);
  Alcotest.(check int) "one charge per packet" 1000
    (Stats.Cost.ops cost "recv.light.packet")

let prop_tracker_vs_reference =
  (* Against a naive reference set implementation. *)
  QCheck.Test.make ~name:"tracker matches reference semantics" ~count:200
    QCheck.(list (int_bound 100))
    (fun arrivals ->
      let t = T.create () in
      let received = Hashtbl.create 64 in
      List.iter
        (fun i ->
          T.on_data t ~seq:(S.of_int i);
          Hashtbl.replace received i ())
        arrivals;
      (* cum = first missing from 0. *)
      let rec first_missing i =
        if Hashtbl.mem received i then first_missing (i + 1) else i
      in
      let expected_cum = first_missing 0 in
      S.to_int (T.cum_ack t) = expected_cum
      && List.for_all
           (fun i ->
             T.received t (S.of_int i) = Hashtbl.mem received i)
           (List.init 110 Fun.id))

(* ------------------------------------------------------------------ *)
(* Differential testing against the frozen list-based reference
   implementation: random arrival streams with gaps, reorder and
   forward points replay through both trackers, and the cumulative ack,
   the full range list, the bounded SACK report (recency order
   included) and the counters must match exactly at every step. *)

module TR = Sack.Rcv_tracker_ref

let block_ints (b : Sack.Blocks.t) =
  (S.to_int b.Packet.Header.block_start, S.to_int b.Packet.Header.block_end)

let differential_tracker_run ~seed ~steps =
  let rng = Engine.Rng.create ~seed in
  let t = T.create ~max_blocks:4 () in
  let r = TR.create ~max_blocks:4 () in
  let ok = ref true in
  let expect b = if not b then ok := false in
  for _ = 1 to steps do
    (match Engine.Rng.int rng 11 with
    | 10 ->
        (* Handover discontinuity: a [`Cut] migration drops the whole
           flight, so the next arrival lands hundreds of numbers beyond
           the highest seen — one giant hole opened in a single step,
           then filled (or forwarded past) by the later ops. *)
        let s =
          S.to_int (T.highest_expected t) + 200 + Engine.Rng.int rng 800
        in
        T.on_data t ~seq:(S.of_int s);
        TR.on_data r ~seq:(S.of_int s)
    | 8 ->
        let fwd = S.to_int (T.cum_ack t) + Engine.Rng.int rng 25 in
        T.apply_fwd_point t (S.of_int fwd);
        TR.apply_fwd_point r (S.of_int fwd)
    | 9 ->
        expect
          (List.map block_ints (T.sack_blocks t)
          = List.map block_ints (TR.sack_blocks r))
    | _ ->
        let s = S.to_int (T.cum_ack t) + Engine.Rng.int rng 50 in
        T.on_data t ~seq:(S.of_int s);
        TR.on_data r ~seq:(S.of_int s));
    expect (S.equal (T.cum_ack t) (TR.cum_ack r));
    expect
      (List.map block_ints (T.all_ranges t)
      = List.map block_ints (TR.all_ranges r));
    expect (T.duplicates t = TR.duplicates r);
    expect (T.packets t = TR.packets r)
  done;
  expect (S.equal (T.highest_expected t) (TR.highest_expected r));
  expect
    (List.map block_ints (T.sack_blocks t)
    = List.map block_ints (TR.sack_blocks r));
  let cum = S.to_int (T.cum_ack t) in
  let top = S.to_int (T.highest_expected t) in
  for i = Stdlib.max 0 (cum - 3) to top + 3 do
    expect (T.received t (S.of_int i) = TR.received r (S.of_int i))
  done;
  !ok

let prop_differential_vs_reference =
  QCheck.Test.make
    ~name:
      "run-length tracker matches the frozen reference (with handover jumps)"
    ~count:250
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 250))
    (fun (seed, steps) -> differential_tracker_run ~seed ~steps)

(* Adversarial duplicate flood: build a maximally fragmented range list
   (every second number received), then replay the whole pattern many
   times over.  Duplicates must be counted and change nothing — the
   range count stays put, the SACK report stays bounded, and the
   cumulative ack does not move. *)
let test_duplicate_flood_bounded () =
  let n = 500 in
  let t = T.create () in
  let evens = List.init n (fun i -> 2 * i) in
  feed t evens;
  (* 0 advanced the cum point; every later even opened a range. *)
  Alcotest.(check int) "one range per even arrival" (n - 1)
    (T.ranges_held t);
  let cum = S.to_int (T.cum_ack t) in
  let ranges = blocks_ints t in
  for _ = 1 to 10 do
    feed t evens
  done;
  Alcotest.(check int) "flood counted as duplicates" (10 * n)
    (T.duplicates t);
  Alcotest.(check int) "range count unchanged" (n - 1) (T.ranges_held t);
  Alcotest.(check int) "cum unchanged" cum (S.to_int (T.cum_ack t));
  Alcotest.(check (list (pair int int))) "ranges unchanged" ranges
    (blocks_ints t);
  Alcotest.(check int) "SACK report stays bounded" 4
    (List.length (T.sack_blocks t))

let suite =
  [
    Alcotest.test_case "in order" `Quick test_in_order;
    Alcotest.test_case "gap creates range" `Quick test_gap_creates_range;
    Alcotest.test_case "fill merges" `Quick test_fill_merges_back;
    Alcotest.test_case "multiple ranges" `Quick test_multiple_ranges_sorted;
    Alcotest.test_case "duplicates" `Quick test_duplicates_counted;
    Alcotest.test_case "duplicates leave state untouched" `Quick
      test_duplicates_leave_state_untouched;
    Alcotest.test_case "bug hook corrupts ranges" `Quick
      test_bug_hook_corrupts_ranges;
    Alcotest.test_case "sack recency order" `Quick
      test_sack_blocks_recency_first;
    Alcotest.test_case "received query" `Quick test_received_query;
    Alcotest.test_case "fwd point abandons" `Quick test_fwd_point_abandons;
    Alcotest.test_case "fwd point into range" `Quick test_fwd_point_into_range;
    Alcotest.test_case "fwd point backwards" `Quick
      test_fwd_point_backwards_ignored;
    Alcotest.test_case "O(1) cost per packet" `Quick test_cost_o1;
    Alcotest.test_case "duplicate flood bounded" `Quick
      test_duplicate_flood_bounded;
    QCheck_alcotest.to_alcotest prop_tracker_vs_reference;
    QCheck_alcotest.to_alcotest prop_differential_vs_reference;
  ]
