(* Engine.Rng: determinism, ranges, independence of splits. *)

let test_deterministic () =
  let a = Engine.Rng.create ~seed:123 in
  let b = Engine.Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same seed, same stream" (Engine.Rng.bits64 a) (Engine.Rng.bits64 b)
  done

let test_seed_matters () =
  let a = Engine.Rng.create ~seed:1 in
  let b = Engine.Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Int64.equal (Engine.Rng.bits64 a) (Engine.Rng.bits64 b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_copy_independent () =
  let a = Engine.Rng.create ~seed:7 in
  let b = Engine.Rng.copy a in
  let xa = Engine.Rng.bits64 a in
  let xb = Engine.Rng.bits64 b in
  Alcotest.(check int64) "copy starts at same state" xa xb;
  ignore (Engine.Rng.bits64 a);
  (* b is one draw behind now; drawing from b must not affect a. *)
  let xa2 = Engine.Rng.bits64 a in
  let _ = Engine.Rng.bits64 b in
  let xa3 = Engine.Rng.bits64 a in
  Alcotest.(check bool) "independent evolution" true (xa2 <> xa3)

let test_uniform_range () =
  let rng = Engine.Rng.create ~seed:99 in
  for _ = 1 to 10_000 do
    let u = Engine.Rng.uniform rng in
    if u < 0.0 || u >= 1.0 then Alcotest.failf "uniform out of range: %f" u
  done

let test_uniform_mean () =
  let rng = Engine.Rng.create ~seed:5 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Engine.Rng.uniform rng
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %f close to 0.5" mean)
    true
    (Float.abs (mean -. 0.5) < 0.01)

let test_int_bounds () =
  let rng = Engine.Rng.create ~seed:11 in
  for _ = 1 to 10_000 do
    let x = Engine.Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.failf "int out of range: %d" x
  done

let test_int_covers_all () =
  let rng = Engine.Rng.create ~seed:13 in
  let seen = Array.make 5 false in
  for _ = 1 to 1_000 do
    seen.(Engine.Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_chance_extremes () =
  let rng = Engine.Rng.create ~seed:17 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Engine.Rng.chance rng 0.0);
    Alcotest.(check bool) "p=1 always" true (Engine.Rng.chance rng 1.0)
  done

let test_chance_rate () =
  let rng = Engine.Rng.create ~seed:19 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Engine.Rng.chance rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "rate %f close to 0.3" rate)
    true
    (Float.abs (rate -. 0.3) < 0.01)

let test_split_diverges () =
  let parent = Engine.Rng.create ~seed:23 in
  let child = Engine.Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Int64.equal (Engine.Rng.bits64 parent) (Engine.Rng.bits64 child) then
      incr same
  done;
  Alcotest.(check bool) "parent and child independent" true (!same < 5)

let stream_prefix rng n = List.init n (fun _ -> Engine.Rng.bits64 rng)

let test_derive_same_key_same_stream () =
  let a = Engine.Rng.create ~seed:31 in
  let b = Engine.Rng.create ~seed:31 in
  Alcotest.(check (list int64))
    "same seed+key, same child stream"
    (stream_prefix (Engine.Rng.derive a ~key:5) 50)
    (stream_prefix (Engine.Rng.derive b ~key:5) 50)

let test_derive_schedule_independent () =
  (* The whole point of derive: the parent's draw position (and other
     derivations) must not leak into the child.  split would fail
     this. *)
  let fresh = Engine.Rng.create ~seed:31 in
  let undisturbed = stream_prefix (Engine.Rng.derive fresh ~key:9) 50 in
  let busy = Engine.Rng.create ~seed:31 in
  ignore (stream_prefix busy 17);
  ignore (Engine.Rng.derive busy ~key:2);
  ignore (Engine.Rng.split busy);
  Alcotest.(check (list int64))
    "parent draws/splits do not move the child"
    undisturbed
    (stream_prefix (Engine.Rng.derive busy ~key:9) 50)

let test_derive_keys_independent () =
  let rng = Engine.Rng.create ~seed:37 in
  let a = Engine.Rng.derive rng ~key:0 in
  let b = Engine.Rng.derive rng ~key:1 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Int64.equal (Engine.Rng.bits64 a) (Engine.Rng.bits64 b) then incr same
  done;
  Alcotest.(check bool) "adjacent keys uncorrelated" true (!same < 5)

let test_derive_does_not_advance_parent () =
  let a = Engine.Rng.create ~seed:41 in
  let b = Engine.Rng.create ~seed:41 in
  ignore (Engine.Rng.derive a ~key:1234);
  Alcotest.(check int64)
    "parent stream untouched" (Engine.Rng.bits64 b) (Engine.Rng.bits64 a)

let prop_derive_schedule_independent =
  (* For arbitrary seeds, keys and parent perturbations, the derived
     stream is a pure function of (seed, key). *)
  QCheck.Test.make ~name:"derive is a pure function of (seed, key)" ~count:200
    QCheck.(triple small_int (int_range 0 10_000) (int_range 0 64))
    (fun (seed, key, noise) ->
      let quiet = Engine.Rng.create ~seed in
      let noisy = Engine.Rng.create ~seed in
      for _ = 1 to noise do
        ignore (Engine.Rng.bits64 noisy)
      done;
      if noise mod 2 = 1 then ignore (Engine.Rng.split noisy);
      Int64.equal
        (Engine.Rng.bits64 (Engine.Rng.derive quiet ~key))
        (Engine.Rng.bits64 (Engine.Rng.derive noisy ~key)))

let prop_int_in_range =
  QCheck.Test.make ~name:"int n always in [0,n)" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Engine.Rng.create ~seed in
      let x = Engine.Rng.int rng n in
      x >= 0 && x < n)

let suite =
  [
    Alcotest.test_case "deterministic by seed" `Quick test_deterministic;
    Alcotest.test_case "seed changes stream" `Quick test_seed_matters;
    Alcotest.test_case "copy is independent" `Quick test_copy_independent;
    Alcotest.test_case "uniform in [0,1)" `Quick test_uniform_range;
    Alcotest.test_case "uniform mean 0.5" `Quick test_uniform_mean;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int covers residues" `Quick test_int_covers_all;
    Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
    Alcotest.test_case "chance rate" `Quick test_chance_rate;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
    Alcotest.test_case "derive: same key, same stream" `Quick
      test_derive_same_key_same_stream;
    Alcotest.test_case "derive: schedule independent" `Quick
      test_derive_schedule_independent;
    Alcotest.test_case "derive: keys independent" `Quick
      test_derive_keys_independent;
    Alcotest.test_case "derive: parent untouched" `Quick
      test_derive_does_not_advance_parent;
    QCheck_alcotest.to_alcotest prop_derive_schedule_independent;
    QCheck_alcotest.to_alcotest prop_int_in_range;
  ]
