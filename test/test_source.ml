(* Qtp.Source: application source models. *)

let test_greedy () =
  let s = Qtp.Source.greedy () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "always has data" true (Qtp.Source.take s)
  done;
  Alcotest.(check int) "offered counted" 100 (Qtp.Source.offered_packets s)

let test_finite () =
  let s = Qtp.Source.finite ~packets:3 in
  Alcotest.(check bool) "1" true (Qtp.Source.take s);
  Alcotest.(check bool) "2" true (Qtp.Source.take s);
  Alcotest.(check bool) "3" true (Qtp.Source.take s);
  Alcotest.(check bool) "dry" false (Qtp.Source.take s);
  Alcotest.(check int) "offered" 3 (Qtp.Source.offered_packets s)

let test_cbr_paces () =
  let sim = Engine.Sim.create () in
  (* 8 kb/s = 1000 B/s = one 500 B packet per 0.5 s; starts empty... the
     bucket starts with zero credit. *)
  let s = Qtp.Source.cbr ~sim ~rate_bps:8000.0 ~packet_size:500 () in
  Alcotest.(check bool) "empty at t=0" false (Qtp.Source.take s);
  Engine.Sim.run ~until:0.6 sim;
  Alcotest.(check bool) "one packet after 0.6s" true (Qtp.Source.take s);
  Alcotest.(check bool) "but only one" false (Qtp.Source.take s)

let test_cbr_wakes_sender () =
  let sim = Engine.Sim.create () in
  let s = Qtp.Source.cbr ~sim ~rate_bps:8000.0 ~packet_size:500 () in
  let woken = ref false in
  Qtp.Source.set_notify s (fun () -> woken := true);
  Alcotest.(check bool) "nothing yet" false (Qtp.Source.take s);
  Engine.Sim.run ~until:1.0 sim;
  Alcotest.(check bool) "notified when the packet completed" true !woken

let test_cbr_long_run_rate () =
  let sim = Engine.Sim.create () in
  let s = Qtp.Source.cbr ~sim ~rate_bps:1.0e6 ~packet_size:1000 () in
  (* Pull as fast as possible every ms; accepted packets are rate-bound. *)
  let taken = ref 0 in
  let rec poll () =
    if Qtp.Source.take s then incr taken;
    if Engine.Sim.now sim < 10.0 then
      ignore (Engine.Sim.schedule_after sim 0.0005 poll)
  in
  ignore (Engine.Sim.schedule_at sim 0.0 poll);
  Engine.Sim.run ~until:10.0 sim;
  (* 1 Mb/s for 10 s = 1.25 MB = 1250 packets. *)
  Alcotest.(check bool)
    (Printf.sprintf "%d packets ~ 1250" !taken)
    true
    (abs (!taken - 1250) < 30)

let test_queued () =
  let s, push = Qtp.Source.queued () in
  let woken = ref 0 in
  Qtp.Source.set_notify s (fun () -> incr woken);
  Alcotest.(check bool) "empty" false (Qtp.Source.take s);
  push 2;
  Alcotest.(check int) "notified" 1 !woken;
  Alcotest.(check bool) "one" true (Qtp.Source.take s);
  Alcotest.(check bool) "two" true (Qtp.Source.take s);
  Alcotest.(check bool) "drained" false (Qtp.Source.take s);
  push 0;
  Alcotest.(check int) "push 0 is silent" 1 !woken

let test_on_off_produces_bursts () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Sim.split_rng sim in
  let s =
    Qtp.Source.on_off ~sim ~rng ~mean_on:0.5 ~mean_off:0.5 ~rate_bps:1.0e6
      ~packet_size:1000 ()
  in
  let taken = ref 0 in
  let rec poll () =
    if Qtp.Source.take s then incr taken;
    if Engine.Sim.now sim < 20.0 then
      ignore (Engine.Sim.schedule_after sim 0.001 poll)
  in
  ignore (Engine.Sim.schedule_at sim 0.0 poll);
  Engine.Sim.run ~until:20.0 sim;
  (* Duty cycle ~50%: expect roughly 1250 packets over 20 s, well below
     the always-on 2500 and well above zero. *)
  Alcotest.(check bool)
    (Printf.sprintf "%d packets consistent with on/off duty" !taken)
    true
    (!taken > 400 && !taken < 2100)

let suite =
  [
    Alcotest.test_case "greedy" `Quick test_greedy;
    Alcotest.test_case "finite" `Quick test_finite;
    Alcotest.test_case "cbr paces" `Quick test_cbr_paces;
    Alcotest.test_case "cbr wakes" `Quick test_cbr_wakes_sender;
    Alcotest.test_case "cbr long-run rate" `Quick test_cbr_long_run_rate;
    Alcotest.test_case "queued" `Quick test_queued;
    Alcotest.test_case "on/off bursts" `Quick test_on_off_produces_bursts;
  ]
