(* Workload.Adaptive_media and Netsim.Loss_model.custom. *)

let test_custom_loss_model () =
  let flips = ref 0 in
  let lm =
    Netsim.Loss_model.custom ~expected:0.5 (fun () ->
        incr flips;
        !flips mod 2 = 0)
  in
  let drops = ref 0 in
  for _ = 1 to 100 do
    if Netsim.Loss_model.drops lm then incr drops
  done;
  Alcotest.(check int) "oracle consulted" 100 !flips;
  Alcotest.(check int) "every other packet dropped" 50 !drops;
  Alcotest.(check (float 1e-9)) "expected rate surfaced" 0.5
    (Netsim.Loss_model.expected_loss_rate lm)

let ladder = [ 0.5e6; 1.0e6; 2.0e6 ]

let test_picks_rung_under_budget () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Sim.split_rng sim in
  let rate = ref 10.0e6 in
  let m =
    Workload.Adaptive_media.start ~sim ~rng ~ladder_bps:ladder
      ~transport_rate_bps:(fun () -> !rate)
      ~push:(fun _ -> ())
      ~stop_at:10.0 ()
  in
  Engine.Sim.run ~until:2.0 sim;
  Alcotest.(check (float 1.0)) "top rung at high rate" 2.0e6
    (Workload.Adaptive_media.current_rung_bps m);
  rate := 1.3e6;
  Engine.Sim.run ~until:4.0 sim;
  (* 0.85 * 1.3M = 1.105M -> rung 1.0M *)
  Alcotest.(check (float 1.0)) "middle rung" 1.0e6
    (Workload.Adaptive_media.current_rung_bps m);
  rate := 0.1e6;
  Engine.Sim.run ~until:6.0 sim;
  Alcotest.(check (float 1.0)) "floor rung even below budget" 0.5e6
    (Workload.Adaptive_media.current_rung_bps m);
  Alcotest.(check int) "two switches" 2 (Workload.Adaptive_media.switches m)

let test_frames_and_time_shares () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Sim.split_rng sim in
  let pushed = ref 0 in
  let m =
    Workload.Adaptive_media.start ~sim ~rng ~ladder_bps:ladder ~fps:10.0
      ~transport_rate_bps:(fun () -> 10e6)
      ~push:(fun n -> pushed := !pushed + n)
      ~stop_at:10.0 ()
  in
  Engine.Sim.run ~until:11.0 sim;
  Alcotest.(check bool) "≈100 frames" true
    (abs (Workload.Adaptive_media.frames_emitted m - 100) <= 1);
  Alcotest.(check bool) "packets pushed" true (!pushed > 0);
  let shares = Workload.Adaptive_media.rung_time_fractions m in
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 shares in
  Alcotest.(check bool) "shares sum to 1" true (Float.abs (total -. 1.0) < 1e-6)

let test_empty_ladder_rejected () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Sim.split_rng sim in
  Alcotest.(check bool) "rejected" true
    (try
       ignore
         (Workload.Adaptive_media.start ~sim ~rng ~ladder_bps:[]
            ~transport_rate_bps:(fun () -> 1e6)
            ~push:(fun _ -> ())
            ());
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "custom loss model" `Quick test_custom_loss_model;
    Alcotest.test_case "rung under budget" `Quick test_picks_rung_under_budget;
    Alcotest.test_case "frames and shares" `Quick test_frames_and_time_shares;
    Alcotest.test_case "empty ladder" `Quick test_empty_ladder_rejected;
  ]
