(* Tfrc.Sender + Tfrc.Receiver wired directly (no network): slow start,
   feedback reaction, nofeedback timer, gTFRC floor, idle/wake. *)

let make_pair ?(min_rate_bps = 0.0) ?(loss_every = 0) sim =
  (* Direct wiring with a constant one-way delay of 10 ms each way. *)
  let owd = 0.01 in
  let params =
    {
      Tfrc.Sender.default_params with
      packet_size = 1000;
      initial_rtt = 0.1;
      min_rate_bps;
      (* Direct wiring has no physical link: cap the rate so lossless
         slow start cannot double into an event flood. *)
      max_rate_bps = Some 1e8;
    }
  in
  let sender_ref = ref None in
  let receiver_ref = ref None in
  let send_feedback (fb : Packet.Header.feedback) =
    ignore
      (Engine.Sim.schedule_after sim owd (fun () ->
           match !sender_ref with
           | Some snd ->
               Tfrc.Sender.on_feedback snd ~tstamp_echo:fb.tstamp_echo
                 ~t_delay:fb.t_delay ~x_recv:fb.x_recv ~p:fb.p
           | None -> ()))
  in
  let receiver = Tfrc.Receiver.create ~sim ~send_feedback () in
  receiver_ref := Some receiver;
  let seq = ref 0 in
  let sent = ref 0 in
  let transmit () =
    incr sent;
    let this = !seq in
    incr seq;
    let lost = loss_every > 0 && this mod loss_every = loss_every - 1 in
    if not lost then begin
      let snd = Option.get !sender_ref in
      let d =
        {
          Packet.Header.seq = Packet.Serial.of_int this;
          tstamp = Engine.Sim.now sim;
          rtt_estimate = Tfrc.Sender.rtt snd;
          is_retransmit = false;
          fwd_point = Packet.Serial.of_int this;
        }
      in
      ignore
        (Engine.Sim.schedule_after sim owd (fun () ->
             Tfrc.Receiver.on_data receiver d ~size:1000))
    end;
    true
  in
  let sender = Tfrc.Sender.create ~sim params ~on_transmit:transmit () in
  sender_ref := Some sender;
  (sender, receiver, sent)

let test_slow_start_doubles () =
  let sim = Engine.Sim.create () in
  let sender, _, _ = make_pair sim in
  let r0 = Tfrc.Sender.rate_bps sender in
  Tfrc.Sender.start sender;
  Engine.Sim.run ~until:3.0 sim;
  Alcotest.(check bool) "still in slow start (no loss)" true
    (Tfrc.Sender.in_slow_start sender);
  Alcotest.(check bool) "rate grew a lot" true
    (Tfrc.Sender.rate_bps sender > 10.0 *. r0)

let test_loss_leaves_slow_start () =
  let sim = Engine.Sim.create () in
  let sender, receiver, _ = make_pair ~loss_every:50 sim in
  Tfrc.Sender.start sender;
  Engine.Sim.run ~until:20.0 sim;
  Alcotest.(check bool) "left slow start" false
    (Tfrc.Sender.in_slow_start sender);
  Alcotest.(check bool) "receiver saw loss events" true
    (Tfrc.Receiver.loss_events receiver > 0);
  (* Equation-governed rate with p ~ 2%: sanity corridor. *)
  let p = Tfrc.Receiver.loss_event_rate receiver in
  Alcotest.(check bool)
    (Printf.sprintf "p %f plausible" p)
    true
    (p > 0.003 && p < 0.08)

let test_rtt_measured () =
  let sim = Engine.Sim.create () in
  let sender, _, _ = make_pair sim in
  Tfrc.Sender.start sender;
  Engine.Sim.run ~until:3.0 sim;
  Alcotest.(check bool) "rtt sampled" true (Tfrc.Sender.has_rtt_sample sender);
  (* True RTT is 20 ms. *)
  Alcotest.(check bool)
    (Printf.sprintf "rtt %f ~ 0.02" (Tfrc.Sender.rtt sender))
    true
    (Float.abs (Tfrc.Sender.rtt sender -. 0.02) < 0.01)

let test_nofeedback_halves () =
  let sim = Engine.Sim.create () in
  let params =
    { Tfrc.Sender.default_params with packet_size = 1000; initial_rtt = 0.1 }
  in
  (* Transmit into the void: no receiver, no feedback. *)
  let sender = Tfrc.Sender.create ~sim params ~on_transmit:(fun () -> true) () in
  Tfrc.Sender.start sender;
  let r0 = Tfrc.Sender.rate_bps sender in
  Engine.Sim.run ~until:10.0 sim;
  Alcotest.(check bool) "nofeedback fired" true
    (Tfrc.Sender.nofeedback_expiries sender > 1);
  Alcotest.(check bool) "rate collapsed" true
    (Tfrc.Sender.rate_bps sender < r0)

let test_gtfrc_floor_respected () =
  let sim = Engine.Sim.create () in
  let floor = 2.0e6 in
  let sender, _, _ = make_pair ~min_rate_bps:floor ~loss_every:10 sim in
  Tfrc.Sender.start sender;
  Engine.Sim.run ~until:20.0 sim;
  (* Heavy loss (10%) would push TFRC way below 2 Mb/s; gTFRC must not. *)
  Alcotest.(check bool)
    (Printf.sprintf "rate %f >= floor" (Tfrc.Sender.rate_bps sender))
    true
    (Tfrc.Sender.rate_bps sender >= floor -. 1.0)

let test_no_floor_collapses () =
  let sim = Engine.Sim.create () in
  let sender, _, _ = make_pair ~loss_every:10 sim in
  Tfrc.Sender.start sender;
  Engine.Sim.run ~until:20.0 sim;
  Alcotest.(check bool) "pure TFRC sinks below 2 Mb/s at 10% loss" true
    (Tfrc.Sender.rate_bps sender < 2.0e6)

let test_idle_and_wake () =
  let sim = Engine.Sim.create () in
  let available = ref true in
  let sent = ref 0 in
  let params =
    { Tfrc.Sender.default_params with packet_size = 1000; initial_rtt = 0.1 }
  in
  let sender =
    Tfrc.Sender.create ~sim params
      ~on_transmit:(fun () ->
        if !available then begin
          incr sent;
          true
        end
        else false)
      ()
  in
  Tfrc.Sender.start sender;
  ignore (Engine.Sim.schedule_at sim 1.0 (fun () -> available := false));
  ignore
    (Engine.Sim.schedule_at sim 5.0 (fun () ->
         available := true;
         Tfrc.Sender.notify_data sender));
  Engine.Sim.run ~until:6.0 sim;
  let sent_at_1 = !sent in
  ignore sent_at_1;
  Alcotest.(check bool) "kept sending after wake" true (!sent > 0);
  (* Verify nothing was sent while idle: count between t=1.2 and t=5. *)
  let sim2 = Engine.Sim.create () in
  let sent2 = ref 0 in
  let avail2 = ref true in
  let sender2 =
    Tfrc.Sender.create ~sim:sim2 params
      ~on_transmit:(fun () ->
        if !avail2 then begin
          incr sent2;
          true
        end
        else false)
      ()
  in
  Tfrc.Sender.start sender2;
  ignore (Engine.Sim.schedule_at sim2 1.0 (fun () -> avail2 := false));
  Engine.Sim.run ~until:1.5 sim2;
  let mark = !sent2 in
  Engine.Sim.run ~until:5.0 sim2;
  Alcotest.(check int) "idle means silent" mark !sent2

let test_stop () =
  let sim = Engine.Sim.create () in
  let sender, _, sent = make_pair sim in
  Tfrc.Sender.start sender;
  ignore (Engine.Sim.schedule_at sim 1.0 (fun () -> Tfrc.Sender.stop sender));
  Engine.Sim.run ~until:2.0 sim;
  let at_stop = !sent in
  Engine.Sim.run ~until:5.0 sim;
  Alcotest.(check int) "no sends after stop" at_stop !sent

let suite =
  [
    Alcotest.test_case "slow start doubles" `Quick test_slow_start_doubles;
    Alcotest.test_case "loss leaves slow start" `Quick
      test_loss_leaves_slow_start;
    Alcotest.test_case "rtt measured" `Quick test_rtt_measured;
    Alcotest.test_case "nofeedback halves" `Quick test_nofeedback_halves;
    Alcotest.test_case "gTFRC floor" `Quick test_gtfrc_floor_respected;
    Alcotest.test_case "no floor collapses" `Quick test_no_floor_collapses;
    Alcotest.test_case "idle and wake" `Quick test_idle_and_wake;
    Alcotest.test_case "stop" `Quick test_stop;
  ]
