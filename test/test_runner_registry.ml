(* Experiments.Runner: registry invariants (ids unique and resolvable,
   metadata complete) — guards the CLI and bench entry points. *)

let test_ids_unique () =
  let ids = List.map (fun e -> e.Experiments.Runner.id) Experiments.Runner.all in
  Alcotest.(check int) "no duplicate ids"
    (List.length ids)
    (List.length (List.sort_uniq String.compare ids))

let test_find_resolves_all () =
  List.iter
    (fun (e : Experiments.Runner.entry) ->
      match Experiments.Runner.find e.Experiments.Runner.id with
      | Some e' ->
          Alcotest.(check string) "same entry" e.Experiments.Runner.title
            e'.Experiments.Runner.title
      | None -> Alcotest.failf "id %s not found" e.Experiments.Runner.id)
    Experiments.Runner.all

let test_find_unknown () =
  Alcotest.(check bool) "unknown id" true (Experiments.Runner.find "zz" = None)

let test_metadata_complete () =
  List.iter
    (fun (e : Experiments.Runner.entry) ->
      Alcotest.(check bool)
        (e.Experiments.Runner.id ^ " has title")
        true
        (String.length e.Experiments.Runner.title > 0);
      Alcotest.(check bool)
        (e.Experiments.Runner.id ^ " has claim")
        true
        (String.length e.Experiments.Runner.claim > 0))
    Experiments.Runner.all

let test_expected_experiments_present () =
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true
        (Experiments.Runner.find id <> None))
    [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "e10"; "e11";
      "e12"; "e13"; "e14"; "e15"; "e16"; "e17"; "a1"; "a2"; "a3"; "a4" ]

let suite =
  [
    Alcotest.test_case "ids unique" `Quick test_ids_unique;
    Alcotest.test_case "find resolves" `Quick test_find_resolves_all;
    Alcotest.test_case "find unknown" `Quick test_find_unknown;
    Alcotest.test_case "metadata complete" `Quick test_metadata_complete;
    Alcotest.test_case "expected experiments" `Quick
      test_expected_experiments_present;
  ]
