(* Sack.Reassembly: in-order delivery, buffering, forward points. *)

module R = Sack.Reassembly
module S = Packet.Serial

let make () =
  let delivered = ref [] in
  let gaps = ref [] in
  let r =
    R.create
      ~deliver:(fun ~seq ~size -> delivered := (S.to_int seq, size) :: !delivered)
      ~on_gap:(fun ~skipped -> gaps := skipped :: !gaps)
      ()
  in
  (r, delivered, gaps)

let feed r xs = List.iter (fun i -> R.on_data r ~seq:(S.of_int i) ~size:100) xs

let test_in_order_immediate () =
  let r, delivered, _ = make () in
  feed r [ 0; 1; 2 ];
  Alcotest.(check (list (pair int int)))
    "delivered in order"
    [ (0, 100); (1, 100); (2, 100) ]
    (List.rev !delivered);
  Alcotest.(check int) "counter" 3 (R.delivered r);
  Alcotest.(check int) "nothing buffered" 0 (R.buffered r)

let test_out_of_order_buffers () =
  let r, delivered, _ = make () in
  feed r [ 0; 2; 3 ];
  Alcotest.(check (list (pair int int))) "only prefix" [ (0, 100) ]
    (List.rev !delivered);
  Alcotest.(check int) "buffered" 2 (R.buffered r);
  feed r [ 1 ];
  Alcotest.(check (list int)) "hole filled, drained"
    [ 0; 1; 2; 3 ]
    (List.rev_map fst !delivered);
  Alcotest.(check int) "buffer empty" 0 (R.buffered r)

let test_duplicates_dropped () =
  let r, delivered, _ = make () in
  feed r [ 0; 0; 1; 1; 1 ];
  Alcotest.(check int) "two deliveries" 2 (List.length !delivered)

(* An exact duplicate of a still-buffered (out-of-order) segment must
   not double-deliver once the hole fills, and must not disturb the
   delivery counters the fuzz oracles key on. *)
let test_duplicate_of_buffered_segment () =
  let r, delivered, _ = make () in
  feed r [ 0; 2; 2; 3; 2 ];
  Alcotest.(check int) "only the prefix so far" 1 (List.length !delivered);
  Alcotest.(check int) "buffer holds each segment once" 2 (R.buffered r);
  feed r [ 1 ];
  Alcotest.(check (list int)) "each delivered exactly once"
    [ 0; 1; 2; 3 ]
    (List.rev_map fst !delivered);
  Alcotest.(check int) "delivered counter" 4 (R.delivered r);
  Alcotest.(check int) "nothing skipped" 0 (R.skipped r)

let test_stale_dropped () =
  let r, delivered, _ = make () in
  feed r [ 0; 1; 2 ];
  feed r [ 1 ];
  Alcotest.(check int) "stale ignored" 3 (List.length !delivered)

let test_fwd_point_skips_and_reports_gap () =
  let r, delivered, gaps = make () in
  feed r [ 0; 3; 4 ];
  R.apply_fwd_point r (S.of_int 3);
  Alcotest.(check (list int)) "buffered released after skip"
    [ 0; 3; 4 ]
    (List.rev_map fst !delivered);
  Alcotest.(check (list int)) "gap of 2 reported" [ 2 ] !gaps;
  Alcotest.(check int) "skip counter" 2 (R.skipped r);
  Alcotest.(check int) "next expected" 5 (S.to_int (R.next_expected r))

let test_fwd_point_delivers_buffered_inside_range () =
  let r, delivered, gaps = make () in
  feed r [ 0; 2 ];
  (* fwd to 3: hole at 1 abandoned, buffered 2 must be delivered. *)
  R.apply_fwd_point r (S.of_int 3);
  Alcotest.(check (list int)) "0 then 2" [ 0; 2 ] (List.rev_map fst !delivered);
  Alcotest.(check (list int)) "one gap" [ 1 ] !gaps

let test_fwd_point_noop_backwards () =
  let r, delivered, _ = make () in
  feed r [ 0; 1 ];
  R.apply_fwd_point r (S.of_int 1);
  Alcotest.(check int) "unchanged" 2 (List.length !delivered);
  Alcotest.(check int) "next" 2 (S.to_int (R.next_expected r))

let prop_full_delivery_when_everything_arrives =
  QCheck.Test.make
    ~name:"any arrival order delivers the full prefix in order" ~count:200
    QCheck.(list (int_bound 30))
    (fun perm_src ->
      let n = 20 in
      (* Build a permutation of 0..n-1 from the random list. *)
      let order =
        List.sort_uniq Int.compare (List.filter (fun x -> x < n) perm_src)
        @ List.filter
            (fun i ->
              not (List.mem i (List.filter (fun x -> x < n) perm_src)))
            (List.init n Fun.id)
      in
      let r, delivered, _ = make () in
      List.iter (fun i -> R.on_data r ~seq:(S.of_int i) ~size:1) order;
      List.rev_map fst !delivered = List.init n Fun.id)

let suite =
  [
    Alcotest.test_case "in order" `Quick test_in_order_immediate;
    Alcotest.test_case "out of order buffers" `Quick test_out_of_order_buffers;
    Alcotest.test_case "duplicates" `Quick test_duplicates_dropped;
    Alcotest.test_case "duplicate of buffered segment" `Quick
      test_duplicate_of_buffered_segment;
    Alcotest.test_case "stale" `Quick test_stale_dropped;
    Alcotest.test_case "fwd skips + gap" `Quick
      test_fwd_point_skips_and_reports_gap;
    Alcotest.test_case "fwd delivers buffered" `Quick
      test_fwd_point_delivers_buffered_inside_range;
    Alcotest.test_case "fwd backwards noop" `Quick test_fwd_point_noop_backwards;
    QCheck_alcotest.to_alcotest prop_full_delivery_when_everything_arrives;
  ]
