(* Every catalogue invariant gets a hand-built event sequence that
   violates it (and a neighbouring sequence that does not), then the
   checker is exercised end-to-end: tracer replay, two full experiment
   scenarios under [~checked:true], and a deliberately mis-configured
   gTFRC floor that must be caught. *)

module I = Analysis.Invariants

let first events =
  let c = I.create () in
  List.iter (I.feed c) events;
  I.first_violation c

let invariant_of events =
  Option.map (fun (v : I.violation) -> v.I.invariant) (first events)

let check_violates name inv events =
  Alcotest.(check (option string)) name (Some inv) (invariant_of events)

let check_clean name events =
  Alcotest.(check (option string)) name None (invariant_of events)

let rate ?(at = 1.0) ?(flow = 0) ~x ?(x_calc = infinity) ?(x_recv = 1e6)
    ?(p = 0.0) ?(g = 0.0) ?cap ?(mbi = 9600.0) ?(ss = false) () =
  I.Rate
    {
      at;
      flow;
      x_bps = x;
      x_calc_bps = x_calc;
      x_recv_bps = x_recv;
      p;
      g_bps = g;
      cap_bps = cap;
      mbi_floor_bps = mbi;
      slow_start = ss;
    }

let feedback ?(at = 1.0) ?(flow = 0) ?(cum = 10) ?(blocks = []) ?hi () =
  I.Feedback { at; flow; cum_ack = cum; blocks; window_hi = hi }

let test_gtfrc_floor () =
  check_violates "X under min(g, X_calc)" "gtfrc-floor"
    [ rate ~x:2e6 ~x_calc:4e6 ~x_recv:3e6 ~p:0.01 ~g:5e6 () ];
  check_clean "floor honoured"
    [ rate ~x:4e6 ~x_calc:4e6 ~x_recv:3e6 ~p:0.01 ~g:5e6 () ];
  check_clean "slow start exempt"
    [ rate ~x:2e6 ~x_calc:4e6 ~p:0.01 ~g:5e6 ~ss:true () ];
  check_clean "no reservation, no floor"
    [ rate ~x:2e6 ~x_calc:4e6 ~x_recv:3e6 ~p:0.01 () ]

let test_tfrc_rate_bounds () =
  check_violates "below one packet per t_mbi" "tfrc-rate-bounds"
    [ rate ~x:100.0 ~mbi:9600.0 () ];
  check_violates "above the negotiated ceiling" "tfrc-rate-bounds"
    [ rate ~x:2e6 ~cap:1e6 () ];
  check_violates "above 2*X_recv under loss" "tfrc-rate-bounds"
    [ rate ~x:5e6 ~x_calc:5e6 ~x_recv:1e6 ~p:0.01 () ];
  check_clean "inside all bounds"
    [ rate ~x:1.5e6 ~x_calc:2e6 ~x_recv:1e6 ~p:0.01 ~cap:1e7 () ];
  check_clean "slow start may exceed 2*X_recv freely, not the ceiling"
    [ rate ~x:5e6 ~x_recv:1e6 ~ss:true () ]

let test_sack_wellformed () =
  check_clean "disjoint blocks above cum"
    [ feedback ~cum:10 ~blocks:[ (12, 15); (17, 20) ] ~hi:25 () ];
  check_clean "recency wire order is fine"
    [ feedback ~cum:10 ~blocks:[ (17, 20); (12, 15) ] ~hi:25 () ];
  check_violates "empty block" "sack-wellformed"
    [ feedback ~blocks:[ (12, 12) ] ~hi:25 () ];
  check_violates "block not above cum_ack" "sack-wellformed"
    [ feedback ~cum:10 ~blocks:[ (8, 12) ] ~hi:25 () ];
  check_violates "block beyond what was sent" "sack-wellformed"
    [ feedback ~cum:10 ~blocks:[ (12, 40) ] ~hi:25 () ];
  check_violates "overlapping blocks" "sack-wellformed"
    [ feedback ~cum:10 ~blocks:[ (12, 16); (15, 20) ] ~hi:25 () ]

let test_cum_ack_monotone () =
  let fb at cum = feedback ~at ~cum () in
  check_clean "advancing cum" [ fb 1.0 5; fb 2.0 7 ];
  check_violates "regressing cum" "cum-ack-monotone" [ fb 1.0 7; fb 2.0 5 ];
  check_clean "fresh epoch resets per-flow state"
    [ fb 1.0 7; I.Epoch; fb 0.5 5 ]

let test_packet_conservation () =
  let sent u = I.Sent { at = 1.0; flow = 0; uid = u } in
  let dlv u = I.Delivered { at = 2.0; flow = 0; uid = u } in
  let drop u = I.Dropped { at = 2.0; flow = 0; uid = u } in
  check_clean "sent then delivered" [ sent 1; dlv 1; sent 2; drop 2; sent 3 ];
  check_violates "delivered but never sent" "packet-conservation" [ dlv 9 ];
  check_violates "accounted twice" "packet-conservation"
    [ sent 1; drop 1; dlv 1 ];
  check_violates "injected twice" "packet-conservation" [ sent 1; sent 1 ]

let test_checker_plumbing () =
  let c = I.create ~limit:2 () in
  for u = 1 to 5 do
    I.feed c (I.Delivered { at = 1.0; flow = 0; uid = u })
  done;
  Alcotest.(check int) "events counted" 5 (I.events_seen c);
  Alcotest.(check int) "violations bounded by limit" 2
    (List.length (I.violations c));
  (match I.violations c with
  | { I.invariant = "packet-conservation"; _ } :: _ -> ()
  | _ -> Alcotest.fail "expected packet-conservation violations");
  Alcotest.check_raises "check_exn raises the first violation"
    (I.Violation (Option.get (I.first_violation c)))
    (fun () -> I.check_exn c)

let tracer_event ~at ~point ~uid =
  {
    Netsim.Tracer.at;
    point;
    uid;
    flow_id = 0;
    size = 1500;
    mark = Netsim.Mark.Best_effort;
  }

let test_trace_replay () =
  let clean =
    [
      tracer_event ~at:0.1 ~point:"sent" ~uid:1;
      tracer_event ~at:0.2 ~point:"delivered" ~uid:1;
      tracer_event ~at:0.3 ~point:"sent" ~uid:2;
      tracer_event ~at:0.4 ~point:"dropped" ~uid:2;
      tracer_event ~at:0.5 ~point:"queue-in" ~uid:3 (* no role: ignored *);
    ]
  in
  Alcotest.(check bool) "conserving trace passes" true
    (Analysis.Trace_check.check clean = None);
  let bad = [ tracer_event ~at:0.1 ~point:"delivered" ~uid:7 ] in
  (match Analysis.Trace_check.check bad with
  | Some v ->
      Alcotest.(check string) "conservation caught via trace"
        "packet-conservation" v.I.invariant
  | None -> Alcotest.fail "expected a violation");
  (* custom tap-point names via roles *)
  let roles =
    {
      Analysis.Trace_check.sent = [ "ingress" ];
      delivered = [ "egress" ];
      dropped = [ "loss" ];
    }
  in
  let renamed =
    [
      tracer_event ~at:0.1 ~point:"ingress" ~uid:1;
      tracer_event ~at:0.2 ~point:"egress" ~uid:1;
    ]
  in
  Alcotest.(check bool) "custom roles map points" true
    (Analysis.Trace_check.check ~roles renamed = None)

(* ------------------------------------------------------------------ *)
(* End-to-end: real scenarios under the live checker. *)

let test_e1_checked () =
  let (_ : Stats.Table.t) =
    Experiments.Common.with_checked ~checked:true (fun () ->
        Experiments.E1_af_assurance.run ~seed:42 ())
  in
  ()

let test_e7_checked () =
  let (_ : Stats.Table.t) =
    Experiments.Common.with_checked ~checked:true (fun () ->
        Experiments.E7_selfish_receiver.run ~seed:42 ())
  in
  ()

(* A ceiling below the negotiated AF target makes the sender's clamp
   genuinely break the gTFRC floor (the cap is applied after the floor);
   the checker must catch the mis-configuration. *)
let test_broken_floor_caught () =
  let target = 5e6 in
  let cap = 1e6 in
  let run () =
    Experiments.Common.with_checked ~checked:true (fun () ->
        let sim, topo =
          Experiments.Common.lossy_path ~seed:7 ~rate_mbps:10.0
            ~loss:(Experiments.Common.bernoulli 0.02)
            ()
        in
        let agreed =
          Qtp.Profile.agreed_exn
            (Qtp.Profile.qtp_af ~g_bps:target ())
            (Qtp.Profile.anything ())
        in
        let conn =
          Qtp.Connection.create ~sim
            ~endpoint:(Netsim.Topology.endpoint topo 0)
            (Qtp.Connection.config ~max_rate_bps:cap agreed)
        in
        Engine.Sim.run ~until:30.0 sim;
        ignore conn)
  in
  match run () with
  | () -> Alcotest.fail "mis-configured floor went undetected"
  | exception I.Violation v ->
      Alcotest.(check string) "the floor invariant fires" "gtfrc-floor"
        v.I.invariant

let suite =
  [
    ("gtfrc-floor", `Quick, test_gtfrc_floor);
    ("tfrc-rate-bounds", `Quick, test_tfrc_rate_bounds);
    ("sack-wellformed", `Quick, test_sack_wellformed);
    ("cum-ack-monotone", `Quick, test_cum_ack_monotone);
    ("packet-conservation", `Quick, test_packet_conservation);
    ("checker plumbing", `Quick, test_checker_plumbing);
    ("trace replay", `Quick, test_trace_replay);
    ("e1 under the checker", `Slow, test_e1_checked);
    ("e7 under the checker", `Slow, test_e7_checked);
    ("broken gTFRC floor is caught", `Quick, test_broken_floor_caught);
  ]
