(* Trunk.Mux: the conservation battery.  Every admitted user byte must
   come back exactly once, byte-identical, in order — checked two ways:
   independently against the feed's closed-form pattern on a clean
   link, and through the digest oracle across mangled (reordering /
   duplicating / corrupting) fuzz scenarios. *)

module M = Trunk.Mux
module S = Fuzz.Scenario
module E = Fuzz.Exec

let duration = 3.0

let drain = 20.0

(* One trunked QTP_AF connection over a clean dumbbell; the per-user
   delivery callback replays the feed's pattern formula against every
   delivered byte at the user's running stream offset — an oracle that
   shares nothing with the mux's internal digests. *)
let run_clean ?(audit = true) ?weights ?chunk ?period ~discipline ~users
    ~per_user () =
  let seed = 9 in
  let sim, topo =
    Experiments.Common.af_dumbbell ~seed ~n_flows:1 ~bottleneck_mbps:10.0
      ~committed_mbps:[| 5.0 |] ()
  in
  let mux =
    M.create ?weights (M.config ~discipline ~audit ~users ())
  in
  let agreed =
    Qtp.Profile.agreed_exn
      (Qtp.Profile.qtp_af ~g_bps:5e6 ())
      (Qtp.Profile.anything ())
  in
  let conn =
    Qtp.Connection.create ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      ~source:(M.source mux)
      (Qtp.Connection.config ~initial_rtt:0.2 agreed)
  in
  M.attach mux ~conn ~seg_payload:(1500 - Packet.Header.data_header_bytes);
  let offsets = Array.make users 0 in
  let pattern_errors = ref 0 in
  let feed_seed = 0 in
  M.set_on_data mux (fun ~user ~buf ~pos ~len ->
      for i = 0 to len - 1 do
        let o = offsets.(user) + i in
        let want = (feed_seed + (user * 131) + (o * 31)) land 0xff in
        if Char.code (Bytes.get buf (pos + i)) <> want then
          incr pattern_errors
      done;
      offsets.(user) <- offsets.(user) + len);
  ignore
    (M.feed mux ~sim ~seed:feed_seed ?chunk ?period
       ~workloads:(Array.make users per_user)
       ~stop_at:duration ());
  Engine.Sim.run ~until:duration sim;
  Qtp.Connection.close conn;
  Engine.Sim.run ~until:(duration +. drain) sim;
  (mux, !pattern_errors)

let check_clean ~label ?audit ?weights ?chunk ?period ~discipline ~users
    ~per_user () =
  let mux, pattern_errors =
    run_clean ?audit ?weights ?chunk ?period ~discipline ~users ~per_user ()
  in
  Alcotest.(check int) (label ^ ": pattern mismatches") 0 pattern_errors;
  Alcotest.(check int) (label ^ ": junk bytes") 0 (M.junk_bytes mux);
  (match M.check_conservation mux with
  | Ok () -> ()
  | Error what -> Alcotest.failf "%s: conservation: %s" label what);
  for u = 0 to users - 1 do
    Alcotest.(check int)
      (Printf.sprintf "%s: user %d delivered = shipped" label u)
      (M.shipped_bytes mux ~user:u)
      (M.delivered_bytes mux ~user:u);
    if M.backlog_user mux ~user:u = 0 then
      Alcotest.(check int)
        (Printf.sprintf "%s: user %d shipped everything admitted" label u)
        (M.admitted_bytes mux ~user:u)
        (M.shipped_bytes mux ~user:u)
  done;
  mux

let test_clean_drr () =
  ignore
    (check_clean ~label:"drr" ~discipline:Trunk.Sched.Drr ~users:8
       ~per_user:40_000 ())

let test_clean_fifo () =
  ignore
    (check_clean ~label:"fifo" ~discipline:Trunk.Sched.Fifo ~users:8
       ~per_user:40_000 ())

let test_clean_unaudited () =
  (* The bench configuration: digests off, byte counts still exact —
     and the external pattern oracle still covers byte identity. *)
  ignore
    (check_clean ~label:"unaudited" ~audit:false ~discipline:Trunk.Sched.Drr
       ~users:8 ~per_user:40_000 ())

let test_weighted_shares () =
  (* Every user continuously backlogged (workloads far exceed what g
     can carry in [duration]); weighted DRR must hand out deliveries
     close to the 4:1 weight ratio. *)
  let weights = [| 4; 1; 1; 1 |] in
  (* Admission must outpace each user's trunk share or no backlog ever
     forms and DRR degenerates to serve-on-arrival: 16 KiB every 5 ms
     offers ~3 MB/s per user against a ~160 KB/s fair share. *)
  let mux =
    check_clean ~label:"weighted" ~weights ~chunk:16384 ~period:0.005
      ~discipline:Trunk.Sched.Drr ~users:4 ~per_user:2_000_000 ()
  in
  let d u = float_of_int (M.delivered_bytes mux ~user:u) in
  let others = (d 1 +. d 2 +. d 3) /. 3.0 in
  let ratio = d 0 /. others in
  Alcotest.(check bool)
    (Printf.sprintf "weight-4 user gets ~4x (got %.2fx)" ratio)
    true
    (ratio > 3.2 && ratio < 4.8)

(* --- conservation through mangled links --------------------------- *)

let test_mangled_conservation () =
  (* Walk the trunk fuzz band until a handful of scenarios with active
     manglers have run: each must pass every oracle (the exec already
     compares per-user digests at all three stations), parse zero junk,
     and deliver exactly what it shipped; across the set, reordering /
     duplication / corruption must actually have fired. *)
  let faults = ref 0 and exercised = ref 0 and seed = ref 501 in
  while !faults < 4 && !seed < 601 do
    let sc = S.generate_in ~band:`Trunk ~seed:!seed in
    if Netsim.Mangler.is_active sc.S.mangle then begin
      incr faults;
      let r = E.run sc in
      if not (E.passed r) then
        Alcotest.failf "trunk seed %d failed:@\n%a" !seed E.pp_report r;
      let m = r.E.mangled in
      exercised :=
        !exercised + m.Netsim.Mangler.reordered + m.Netsim.Mangler.duplicated
        + m.Netsim.Mangler.corrupted;
      match r.E.trunk with
      | None -> Alcotest.failf "trunk seed %d: no trunk stats" !seed
      | Some tk ->
          Alcotest.(check int)
            (Printf.sprintf "seed %d: junk" !seed)
            0 tk.E.tk_junk;
          Alcotest.(check int)
            (Printf.sprintf "seed %d: delivered = shipped" !seed)
            tk.E.tk_shipped tk.E.tk_delivered
    end;
    incr seed
  done;
  Alcotest.(check int) "found 4 mangled trunk scenarios" 4 !faults;
  Alcotest.(check bool)
    (Printf.sprintf "manglers actually fired (%d events)" !exercised)
    true (!exercised > 0)

let suite =
  [
    Alcotest.test_case "clean link: DRR delivers the pattern" `Quick
      test_clean_drr;
    Alcotest.test_case "clean link: FIFO delivers the pattern" `Quick
      test_clean_fifo;
    Alcotest.test_case "audit off: counts still conserved" `Quick
      test_clean_unaudited;
    Alcotest.test_case "weighted DRR shares" `Quick test_weighted_shares;
    Alcotest.test_case "mangled links conserve every byte" `Slow
      test_mangled_conservation;
  ]
