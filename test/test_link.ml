(* Netsim.Link: serialisation timing, queueing, loss, utilisation. *)

let frame ?(size = 1000) uid =
  Netsim.Frame.make ~uid ~flow_id:0 ~size ~born:0.0 (Netsim.Frame.Raw uid)

let make_link ?(rate_bps = 8.0e5) ?(delay = 0.1) ?loss ?(cap = 10) sim =
  Netsim.Link.create ~sim ~rate_bps ~delay
    ~qdisc:(Netsim.Qdisc.droptail ~capacity_pkts:cap)
    ?loss ()

let test_transmission_plus_propagation () =
  let sim = Engine.Sim.create () in
  (* 1000 B at 0.8 Mb/s = 10 ms serialisation; 100 ms propagation. *)
  let link = make_link sim in
  let arrivals = ref [] in
  Netsim.Link.connect link (fun f ->
      arrivals := (f.Netsim.Frame.uid, Engine.Sim.now sim) :: !arrivals);
  Netsim.Link.send link (frame 1);
  Engine.Sim.run sim;
  match !arrivals with
  | [ (1, at) ] -> Alcotest.(check (float 1e-9)) "arrival time" 0.11 at
  | _ -> Alcotest.fail "expected exactly one arrival"

let test_back_to_back_serialisation () =
  let sim = Engine.Sim.create () in
  let link = make_link sim in
  let arrivals = ref [] in
  Netsim.Link.connect link (fun f ->
      arrivals := (f.Netsim.Frame.uid, Engine.Sim.now sim) :: !arrivals);
  Netsim.Link.send link (frame 1);
  Netsim.Link.send link (frame 2);
  Engine.Sim.run sim;
  match List.rev !arrivals with
  | [ (1, t1); (2, t2) ] ->
      Alcotest.(check (float 1e-9)) "first" 0.11 t1;
      (* The second waits one serialisation slot behind the first. *)
      Alcotest.(check (float 1e-9)) "second" 0.12 t2
  | _ -> Alcotest.fail "expected two arrivals"

let test_queue_overflow_drops () =
  let sim = Engine.Sim.create () in
  let link = make_link ~cap:3 sim in
  let count = ref 0 in
  Netsim.Link.connect link (fun _ -> incr count);
  (* 1 transmitting + 3 queued = 4 survive out of 10. *)
  for i = 1 to 10 do
    Netsim.Link.send link (frame i)
  done;
  Engine.Sim.run sim;
  Alcotest.(check int) "survivors" 4 !count;
  let st = Netsim.Qdisc.stats (Netsim.Link.qdisc link) in
  Alcotest.(check int) "drops" 6 st.Netsim.Qdisc.dropped

let test_loss_model_applied () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:71 in
  let link =
    make_link ~rate_bps:8.0e7 ~delay:0.001 ~cap:10_000
      ~loss:(Netsim.Loss_model.bernoulli ~p:0.3 ~rng)
      sim
  in
  let count = ref 0 in
  Netsim.Link.connect link (fun _ -> incr count);
  let n = 5000 in
  for i = 1 to n do
    Netsim.Link.send link (frame i)
  done;
  Engine.Sim.run sim;
  let rate = 1.0 -. (float_of_int !count /. float_of_int n) in
  Alcotest.(check bool)
    (Printf.sprintf "loss rate %f ~ 0.3" rate)
    true
    (Float.abs (rate -. 0.3) < 0.03);
  Alcotest.(check int) "loss stat matches" (n - !count)
    (Netsim.Link.stats link).Netsim.Link.lost_frames

let test_utilisation () =
  let sim = Engine.Sim.create () in
  let link = make_link sim in
  Netsim.Link.connect link (fun _ -> ());
  (* 10 x 1000 B on 0.8 Mb/s over 1 second window: 80 kbit / 800 kbit. *)
  for i = 1 to 10 do
    Netsim.Link.send link (frame i)
  done;
  Engine.Sim.run sim;
  Alcotest.(check (float 1e-6)) "utilisation 10%" 0.1
    (Netsim.Link.utilisation link ~over:1.0)

let test_hop_count () =
  let sim = Engine.Sim.create () in
  let l1 = make_link ~delay:0.01 sim in
  let l2 = make_link ~delay:0.01 sim in
  let final = ref None in
  Netsim.Link.connect l1 (Netsim.Link.send l2);
  Netsim.Link.connect l2 (fun f -> final := Some f.Netsim.Frame.hops);
  Netsim.Link.send l1 (frame 1);
  Engine.Sim.run sim;
  Alcotest.(check (option int)) "two hops" (Some 2) !final

let test_no_sink_fails () =
  let sim = Engine.Sim.create () in
  let link = make_link sim in
  Netsim.Link.send link (frame 1);
  Alcotest.(check bool) "delivery without sink raises" true
    (try
       Engine.Sim.run sim;
       false
     with Failure _ -> true)

let suite =
  [
    Alcotest.test_case "tx + propagation timing" `Quick
      test_transmission_plus_propagation;
    Alcotest.test_case "back-to-back serialisation" `Quick
      test_back_to_back_serialisation;
    Alcotest.test_case "overflow drops" `Quick test_queue_overflow_drops;
    Alcotest.test_case "loss model applied" `Quick test_loss_model_applied;
    Alcotest.test_case "utilisation" `Quick test_utilisation;
    Alcotest.test_case "hop count" `Quick test_hop_count;
    Alcotest.test_case "no sink fails" `Quick test_no_sink_fails;
  ]
