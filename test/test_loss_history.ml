(* Tfrc.Loss_history: hole detection, loss-event grouping, weighted
   average, discounting, retransmit exclusion. *)

module LH = Tfrc.Loss_history
module S = Packet.Serial

let rtt = 0.1

(* Feed sequence numbers (1 ms apart) with [skip] numbers missing. *)
let feed ?(lh = LH.create ()) ?(gap = 0.001) present =
  List.iter
    (fun i ->
      LH.on_packet lh ~seq:(S.of_int i)
        ~arrival:(float_of_int i *. gap)
        ~rtt ~is_retx:false)
    present;
  lh

let range a b = List.init (b - a) (fun i -> a + i)

let test_no_loss () =
  let lh = feed (range 0 100) in
  Alcotest.(check int) "no events" 0 (LH.loss_events lh);
  Alcotest.(check (float 0.0)) "p = 0" 0.0 (LH.loss_event_rate lh);
  Alcotest.(check int) "packets" 100 (LH.packets_seen lh)

let test_single_hole_detected () =
  (* 50 missing; ndup=3 means it is lost once 51..53 arrive. *)
  let lh = feed (range 0 50 @ range 51 54) in
  Alcotest.(check int) "one loss" 1 (LH.losses lh);
  Alcotest.(check int) "one event" 1 (LH.loss_events lh)

let test_hole_needs_ndup () =
  let lh = feed (range 0 50 @ [ 51; 52 ]) in
  Alcotest.(check int) "not yet confirmed" 0 (LH.losses lh)

let test_late_arrival_cancels_hole () =
  let lh = LH.create () in
  let send i = LH.on_packet lh ~seq:(S.of_int i) ~arrival:(float_of_int i *. 0.001) ~rtt ~is_retx:false in
  List.iter send [ 0; 1; 3; 4 ];
  (* 2 is a pending hole with after=2; its late arrival repairs it. *)
  send 2;
  List.iter send [ 5; 6; 7; 8 ];
  Alcotest.(check int) "no losses" 0 (LH.losses lh)

let test_burst_groups_into_one_event () =
  (* Five consecutive losses within one RTT: one loss event. *)
  let lh = feed (range 0 50 @ range 55 70) in
  Alcotest.(check int) "five losses" 5 (LH.losses lh);
  Alcotest.(check int) "one event" 1 (LH.loss_events lh)

let test_spread_losses_are_separate_events () =
  (* Losses far apart in time (> RTT at 1 ms spacing -> 150 apart). *)
  let present =
    List.filter (fun i -> i <> 100 && i <> 400 && i <> 700) (range 0 1000)
  in
  let lh = feed present in
  Alcotest.(check int) "three losses" 3 (LH.losses lh);
  Alcotest.(check int) "three events" 3 (LH.loss_events lh)

let test_retransmit_excluded () =
  let lh = LH.create () in
  LH.on_packet lh ~seq:(S.of_int 0) ~arrival:0.0 ~rtt ~is_retx:false;
  LH.on_packet lh ~seq:(S.of_int 1) ~arrival:0.001 ~rtt ~is_retx:true;
  Alcotest.(check int) "retx not counted" 1 (LH.packets_seen lh)

let test_mean_interval_weighted () =
  (* Construct exactly two closed intervals of 100 and 200 packets.
     Open interval small; weights for 2 terms are both 1. *)
  let present =
    List.filter (fun i -> i <> 100 && i <> 300 && i <> 400) (range 0 1000)
  in
  let lh = feed ~gap:0.05 present in
  (* gap 0.05 > rtt: every loss is its own event. *)
  Alcotest.(check int) "three events" 3 (LH.loss_events lh);
  let intervals = LH.closed_intervals lh in
  Alcotest.(check (list (float 0.5))) "closed intervals newest-first"
    [ 100.0; 200.0 ] intervals

(* RFC 3448 section 5.4 conformance: with a full history of n = 8
   closed intervals the weights must be [1;1;1;1;0.8;0.6;0.4;0.2]
   (newest first).  Nine isolated loss events at seqs 10, 20, 31, 43,
   56, 70, 85, 101, 118 close intervals of 10..17 packets, so newest
   first the history reads [17;..;10] and the weighted mean is
     (17+16+15+14 + 0.8*13 + 0.6*12 + 0.4*11 + 0.2*10) / 6 = 86/6,
   giving p = 6/86 exactly (the short open interval cannot win the
   max, and at 3 packets it triggers no discounting). *)
let test_rfc3448_weights_vector () =
  let losses = [ 10; 20; 31; 43; 56; 70; 85; 101; 118 ] in
  let present =
    List.filter (fun i -> not (List.mem i losses)) (range 0 122)
  in
  let lh = feed ~gap:0.05 present in
  Alcotest.(check int) "nine events" 9 (LH.loss_events lh);
  Alcotest.(check (list (float 1e-9)))
    "closed intervals newest-first"
    [ 17.; 16.; 15.; 14.; 13.; 12.; 11.; 10. ]
    (LH.closed_intervals lh);
  Alcotest.(check (float 1e-12)) "p = 6/86" (6.0 /. 86.0)
    (LH.loss_event_rate lh)

let test_p_tracks_loss_rate_ballpark () =
  (* Periodic loss every 100 packets, spaced out in time: p ~ 1/100. *)
  let present = List.filter (fun i -> i mod 100 <> 99) (range 0 3000) in
  let lh = feed ~gap:0.05 present in
  let p = LH.loss_event_rate lh in
  Alcotest.(check bool)
    (Printf.sprintf "p %f ~ 0.01" p)
    true
    (p > 0.005 && p < 0.02)

let test_first_interval_seeding () =
  let lh = LH.create () in
  let send i =
    LH.on_packet lh ~seq:(S.of_int i) ~arrival:(float_of_int i *. 0.001) ~rtt
      ~is_retx:false
  in
  List.iter send (range 0 10);
  LH.set_first_interval lh 500.0;
  Alcotest.(check (list (float 1e-9))) "seed stored" [ 500.0 ]
    (LH.closed_intervals lh);
  (* Seeding is only effective while no closed interval exists. *)
  LH.set_first_interval lh 900.0;
  Alcotest.(check (list (float 1e-9))) "seed not replaced" [ 500.0 ]
    (LH.closed_intervals lh)

let test_discounting_faster_recovery () =
  let mk discount =
    let lh = LH.create ~discount () in
    (* losses early... *)
    let present = List.filter (fun i -> i mod 50 <> 49) (range 0 500) in
    List.iter
      (fun i ->
        LH.on_packet lh ~seq:(S.of_int i) ~arrival:(float_of_int i *. 0.05)
          ~rtt ~is_retx:false)
      present;
    (* ...then a long clean stretch. *)
    List.iter
      (fun i ->
        LH.on_packet lh ~seq:(S.of_int i)
          ~arrival:(25.0 +. (float_of_int i *. 0.05))
          ~rtt ~is_retx:false)
      (range 500 3000);
    LH.loss_event_rate lh
  in
  let p_disc = mk true and p_plain = mk false in
  Alcotest.(check bool)
    (Printf.sprintf "discounted %f <= undisc %f" p_disc p_plain)
    true (p_disc <= p_plain)

let test_history_bounded () =
  (* Many events: closed interval list stays at the history depth. *)
  let present = List.filter (fun i -> i mod 20 <> 19) (range 0 5000) in
  let lh = feed ~gap:0.05 present in
  Alcotest.(check bool) "history bounded at 8" true
    (List.length (LH.closed_intervals lh) <= 8)

let test_max_seq () =
  let lh = feed [ 0; 1; 2; 7 ] in
  match LH.max_seq lh with
  | Some s -> Alcotest.(check int) "max seq" 7 (S.to_int s)
  | None -> Alcotest.fail "expected max_seq"

let test_cost_charged () =
  let cost = Stats.Cost.create () in
  let lh = LH.create ~cost () in
  List.iter
    (fun i ->
      LH.on_packet lh ~seq:(S.of_int i) ~arrival:(float_of_int i *. 0.001)
        ~rtt ~is_retx:false)
    (range 0 100);
  ignore (LH.loss_event_rate lh);
  Alcotest.(check int) "update charged per packet" 100
    (Stats.Cost.ops cost "lh.update")

(* Reference model: loss events computed independently with a simple
   brute-force pass, compared against the incremental implementation. *)
let prop_events_match_reference =
  QCheck.Test.make ~name:"loss events match a brute-force reference" ~count:150
    QCheck.(pair (int_range 1 10_000) (int_range 1 15))
    (fun (seed, loss_pct) ->
      let rng = Engine.Rng.create ~seed in
      let n = 2000 in
      let gap = 0.004 in
      (* ~12 packets per RTT *)
      let alive =
        Array.init n (fun _ ->
            not (Engine.Rng.chance rng (float_of_int loss_pct /. 100.0)))
      in
      (* Incremental implementation. *)
      let lh = LH.create () in
      Array.iteri
        (fun i ok ->
          if ok then
            LH.on_packet lh ~seq:(S.of_int i)
              ~arrival:(float_of_int i *. gap)
              ~rtt ~is_retx:false)
        alive;
      (* Reference: a lost packet i is "detected" at the arrival time of
         the 3rd received packet after it; detections within [rtt] of the
         current event's start merge.  Only losses whose detection exists
         (3 later arrivals) count — same ndup semantics. *)
      let detection i =
        let rec scan j remaining =
          if j >= n then None
          else if alive.(j) then
            if remaining = 1 then Some (float_of_int j *. gap)
            else scan (j + 1) (remaining - 1)
          else scan (j + 1) remaining
        in
        scan (i + 1) 3
      in
      (* A receiver cannot detect losses before the first packet it ever
         received (they are before its window opens), so the reference
         starts at the first alive position. *)
      let first_alive =
        let rec scan i = if i >= n || alive.(i) then i else scan (i + 1) in
        scan 0
      in
      let events = ref 0 in
      let current_start = ref neg_infinity in
      for i = first_alive to n - 1 do
        if not alive.(i) then
          match detection i with
          | Some det ->
              if det -. !current_start > rtt then begin
                incr events;
                current_start := det
              end
          | None -> ()
      done;
      LH.loss_events lh = !events)

let prop_p_in_unit_interval =
  QCheck.Test.make ~name:"p always in [0,1]" ~count:100
    QCheck.(list (int_bound 2000))
    (fun xs ->
      let lh = LH.create () in
      let sorted = List.sort_uniq Int.compare xs in
      List.iter
        (fun i ->
          LH.on_packet lh ~seq:(S.of_int i)
            ~arrival:(float_of_int i *. 0.001)
            ~rtt ~is_retx:false)
        sorted;
      let p = LH.loss_event_rate lh in
      p >= 0.0 && p <= 1.0)

(* ------------------------------------------------------------------ *)
(* Differential testing against the frozen per-hole reference
   implementation: random arrival streams — in-order runs, skips that
   open holes, late arrivals that repair them, retransmissions — replay
   through both histories, and every observable must match exactly:
   loss counts, event grouping, the closed-interval list (bitwise — the
   float pipeline is shared), and the resulting loss event rate. *)

module LHR = Tfrc.Loss_history_ref

let differential_history_run ~seed ~steps =
  let rng = Engine.Rng.create ~seed in
  let lh = LH.create ~ndup:3 () in
  let lr = LHR.create ~ndup:3 () in
  let ok = ref true in
  let expect b = if not b then ok := false in
  let next = ref 0 in
  let pending = ref [] in
  let clock = ref 0.0 in
  let both seq ~is_retx =
    LH.on_packet lh ~seq:(S.of_int seq) ~arrival:!clock ~rtt ~is_retx;
    LHR.on_packet lr ~seq:(S.of_int seq) ~arrival:!clock ~rtt ~is_retx
  in
  for _ = 1 to steps do
    clock := !clock +. 0.002 +. Engine.Rng.float rng 0.006;
    (match Engine.Rng.int rng 11 with
    | 10 ->
        (* Mid-stream handover: both histories re-seed through the same
           discontinuity — 0 models the [`Reset] policy (clear), a
           positive interval models [`Informed] (declared-rate seed).
           Sequence numbering continues across the migration; pending
           skipped numbers stay eligible as post-reseed late arrivals,
           so both implementations must agree on how a pre-handover
           straggler lands in the reset window. *)
        let len =
          if Engine.Rng.bool rng then 0.0
          else 10.0 +. Engine.Rng.float rng 500.0
        in
        LH.reseed lh len;
        LHR.reseed lr len
    | 0 | 1 | 2 | 3 | 4 | 5 ->
        both !next ~is_retx:false;
        incr next
    | 6 | 7 ->
        (* Skip ahead, remembering the skipped numbers as candidate
           late arrivals. *)
        let gap = 1 + Engine.Rng.int rng 4 in
        for s = !next to !next + gap - 1 do
          pending := s :: !pending
        done;
        next := !next + gap;
        both !next ~is_retx:false;
        incr next
    | 8 -> (
        match !pending with
        | [] -> ()
        | l ->
            let i = Engine.Rng.int rng (List.length l) in
            let s = List.nth l i in
            pending := List.filteri (fun j _ -> j <> i) l;
            both s ~is_retx:false)
    | _ ->
        (* Retransmission of an old number: excluded from accounting. *)
        both (Engine.Rng.int rng (Stdlib.max 1 !next)) ~is_retx:true);
    if List.length !pending > 16 then
      pending := List.filteri (fun j _ -> j < 16) !pending;
    expect (LH.losses lh = LHR.losses lr);
    expect (LH.loss_events lh = LHR.loss_events lr)
  done;
  expect (LH.packets_seen lh = LHR.packets_seen lr);
  expect (LH.congestion_marks lh = LHR.congestion_marks lr);
  expect (LH.max_seq lh = LHR.max_seq lr);
  expect (LH.closed_intervals lh = LHR.closed_intervals lr);
  expect (Float.equal (LH.open_interval lh) (LHR.open_interval lr));
  expect (Float.equal (LH.mean_interval lh) (LHR.mean_interval lr));
  expect (Float.equal (LH.loss_event_rate lh) (LHR.loss_event_rate lr));
  !ok

let prop_differential_vs_reference =
  QCheck.Test.make
    ~name:
      "run-length loss history matches the frozen reference (with handovers)"
    ~count:250
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 400))
    (fun (seed, steps) -> differential_history_run ~seed ~steps)

(* Adversarial fragmentation: every second packet missing — the
   maximally fragmented hole pattern.  The epoch-virtualised promotion
   must keep the tracked-run tail at [ndup] or fewer (ripe holes are a
   prefix and leave immediately), never one run per historical hole. *)
let test_alternating_loss_holes_bounded () =
  let n = 1000 in
  let lh = LH.create ~ndup:3 () in
  List.iter
    (fun i ->
      LH.on_packet lh ~seq:(S.of_int (2 * i))
        ~arrival:(float_of_int i *. 0.001)
        ~rtt ~is_retx:false)
    (List.init n Fun.id);
  Alcotest.(check bool)
    (Printf.sprintf "holes held %d <= ndup" (LH.holes_held lh))
    true
    (LH.holes_held lh <= 3);
  (* Each arrival confirms earlier holes; all but the youngest two of
     the n-1 holes have ndup confirmations. *)
  Alcotest.(check int) "promoted losses" (n - 3) (LH.losses lh)

let suite =
  [
    Alcotest.test_case "no loss" `Quick test_no_loss;
    Alcotest.test_case "single hole" `Quick test_single_hole_detected;
    Alcotest.test_case "hole needs ndup" `Quick test_hole_needs_ndup;
    Alcotest.test_case "late arrival repairs" `Quick
      test_late_arrival_cancels_hole;
    Alcotest.test_case "burst groups into one event" `Quick
      test_burst_groups_into_one_event;
    Alcotest.test_case "spread losses separate" `Quick
      test_spread_losses_are_separate_events;
    Alcotest.test_case "retransmit excluded" `Quick test_retransmit_excluded;
    Alcotest.test_case "intervals closed correctly" `Quick
      test_mean_interval_weighted;
    Alcotest.test_case "RFC 3448 \xc2\xa75.4 weights vector" `Quick
      test_rfc3448_weights_vector;
    Alcotest.test_case "p ballpark" `Quick test_p_tracks_loss_rate_ballpark;
    Alcotest.test_case "first interval seeding" `Quick
      test_first_interval_seeding;
    Alcotest.test_case "discounting recovery" `Quick
      test_discounting_faster_recovery;
    Alcotest.test_case "history bounded" `Quick test_history_bounded;
    Alcotest.test_case "max_seq" `Quick test_max_seq;
    Alcotest.test_case "cost charged" `Quick test_cost_charged;
    Alcotest.test_case "alternating-loss holes bounded" `Quick
      test_alternating_loss_holes_bounded;
    QCheck_alcotest.to_alcotest prop_events_match_reference;
    QCheck_alcotest.to_alcotest prop_p_in_unit_interval;
    QCheck_alcotest.to_alcotest prop_differential_vs_reference;
  ]
