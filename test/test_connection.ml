(* Qtp.Connection: end-to-end behaviour of the composed protocol. *)

let duplex ?(rate_mbps = 10.0) ?(loss = 0.0) ?(seed = 101) () =
  Experiments.Common.lossy_path ~seed ~rate_mbps
    ~loss:(Experiments.Common.bernoulli loss)
    ()

let agreed_of offer responder = Qtp.Profile.agreed_exn offer responder

let run_conn ?(until = 20.0) ?source ?(cfg_of = fun a -> Qtp.Connection.config ~initial_rtt:0.2 a) ~loss offer responder =
  let sim, topo = duplex ~loss () in
  let conn =
    Qtp.Connection.create ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      ?source
      (cfg_of (agreed_of offer responder))
  in
  Engine.Sim.run ~until sim;
  conn

let test_clean_path_fills_link () =
  let conn =
    run_conn ~loss:0.0 (Qtp.Profile.qtp_tfrc ()) (Qtp.Profile.anything ())
  in
  let rate =
    Stats.Series.rate_bps (Qtp.Connection.arrivals conn) ~from_:5.0 ~until:20.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.0f near link" rate)
    true (rate > 8.0e6)

let test_loss_throttles () =
  let conn =
    run_conn ~loss:0.02 (Qtp.Profile.qtp_tfrc ()) (Qtp.Profile.anything ())
  in
  let rate =
    Stats.Series.rate_bps (Qtp.Connection.arrivals conn) ~from_:5.0 ~until:20.0
  in
  Alcotest.(check bool) "well below link rate" true (rate < 5.0e6);
  Alcotest.(check bool) "but alive" true (rate > 2.0e5);
  Alcotest.(check bool) "p estimated" true
    (Qtp.Connection.sender_loss_estimate conn > 0.005)

let test_full_reliability_delivers_all () =
  let conn =
    run_conn ~loss:0.05 (Qtp.Profile.qtp_full ()) (Qtp.Profile.anything ())
  in
  Alcotest.(check int) "nothing skipped" 0 (Qtp.Connection.skipped conn);
  Alcotest.(check bool) "retransmissions happened" true
    (Qtp.Connection.retransmissions conn > 0);
  Alcotest.(check bool) "delivered bulk" true
    (Qtp.Connection.delivered conn > 500)

let test_light_full_reliability_delivers_all () =
  let conn =
    run_conn ~loss:0.05
      (Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_full ] ())
      (Qtp.Profile.mobile_receiver ())
  in
  Alcotest.(check int) "nothing skipped" 0 (Qtp.Connection.skipped conn);
  Alcotest.(check bool) "delivered bulk" true
    (Qtp.Connection.delivered conn > 500)

let test_unreliable_skips_losses () =
  let conn =
    run_conn ~loss:0.05
      (Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_none ] ())
      (Qtp.Profile.mobile_receiver ())
  in
  Alcotest.(check int) "no retransmissions" 0
    (Qtp.Connection.retransmissions conn);
  Alcotest.(check bool) "losses were skipped" true
    (Qtp.Connection.skipped conn > 0);
  (* Delivery continues past the holes. *)
  Alcotest.(check bool) "delivered bulk" true
    (Qtp.Connection.delivered conn > 500)

let test_light_plane_estimates_loss () =
  let conn =
    run_conn ~loss:0.02
      (Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_none ] ())
      (Qtp.Profile.mobile_receiver ())
  in
  let p = Qtp.Connection.sender_loss_estimate conn in
  Alcotest.(check bool)
    (Printf.sprintf "sender-side p %f plausible" p)
    true
    (p > 0.002 && p < 0.08);
  Alcotest.(check bool) "no receiver-side estimate on light plane" true
    (Qtp.Connection.receiver_loss_estimate conn = None)

let test_delivery_delays_recorded () =
  let conn =
    run_conn ~loss:0.02 (Qtp.Profile.qtp_full ()) (Qtp.Profile.anything ())
  in
  let d = Qtp.Connection.delivery_delays conn in
  Alcotest.(check bool) "delays recorded" true (Array.length d > 100);
  Alcotest.(check bool) "all positive" true (Array.for_all (fun x -> x > 0.0) d);
  (* One-way delay is 40 ms; nothing can be faster. *)
  Alcotest.(check bool) "lower bound respected" true
    (Array.for_all (fun x -> x >= 0.039) d)

let test_gtfrc_target_respected_under_loss () =
  let g = 2.0e6 in
  let conn =
    run_conn ~loss:0.05 (Qtp.Profile.qtp_af ~g_bps:g ()) (Qtp.Profile.anything ())
  in
  (* At 5% random loss TFRC alone would sit far below 2 Mb/s (compare
     test_loss_throttles at 2%); the floor must hold the sending rate. *)
  Alcotest.(check bool) "rate floored at g" true
    (Qtp.Connection.current_rate_bps conn >= g *. 0.99)

let test_cbr_source_limits_rate () =
  let sim, topo = duplex ~loss:0.0 () in
  let media = 1.0e6 in
  let source = Qtp.Source.cbr ~sim ~rate_bps:media ~packet_size:1500 () in
  let conn =
    Qtp.Connection.create ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      ~source
      (Qtp.Connection.config ~initial_rtt:0.2
         (agreed_of (Qtp.Profile.qtp_tfrc ()) (Qtp.Profile.anything ())))
  in
  Engine.Sim.run ~until:20.0 sim;
  let rate =
    Stats.Series.rate_bps (Qtp.Connection.arrivals conn) ~from_:5.0 ~until:20.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.0f ~ media rate" rate)
    true
    (Float.abs (rate -. media) /. media < 0.1)

let test_negotiated_handshake_establishes () =
  let sim, topo = duplex ~loss:0.0 () in
  let conn =
    Qtp.Connection.create_negotiated ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      ~initial_rtt:0.2
      ~initiator:(Qtp.Profile.qtp_light ())
      ~responder:(Qtp.Profile.mobile_receiver ())
      ()
  in
  Engine.Sim.run ~until:5.0 sim;
  (match Qtp.Connection.state conn with
  | Qtp.Connection.Established a ->
      Alcotest.(check bool) "light plane" true
        (a.Qtp.Capabilities.plane = Qtp.Capabilities.Light)
  | _ -> Alcotest.fail "expected established");
  Alcotest.(check int) "3-segment handshake" 3
    (Qtp.Connection.handshake_packets conn);
  Alcotest.(check bool) "data flowed" true (Qtp.Connection.delivered conn > 0)

let test_negotiation_failure_is_clean () =
  let sim, topo = duplex ~loss:0.0 () in
  let conn =
    Qtp.Connection.create_negotiated ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      ~initiator:(Qtp.Profile.qtp_af ~g_bps:1e6 ())
      ~responder:(Qtp.Profile.qtp_light ())
      ()
  in
  Engine.Sim.run ~until:5.0 sim;
  (match Qtp.Connection.state conn with
  | Qtp.Connection.Failed _ -> ()
  | _ -> Alcotest.fail "expected failure");
  Alcotest.(check int) "nothing delivered" 0 (Qtp.Connection.delivered conn);
  Alcotest.(check int) "no data sent" 0 (Qtp.Connection.data_sent conn)

let test_feedback_flows_both_planes () =
  let std =
    run_conn ~loss:0.01 (Qtp.Profile.qtp_tfrc ()) (Qtp.Profile.anything ())
  in
  let light =
    run_conn ~loss:0.01
      (Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_none ] ())
      (Qtp.Profile.mobile_receiver ())
  in
  Alcotest.(check bool) "std feedback" true (Qtp.Connection.feedback_packets std > 10);
  Alcotest.(check bool) "light feedback" true
    (Qtp.Connection.feedback_packets light > 10);
  Alcotest.(check bool) "bytes counted" true
    (Qtp.Connection.feedback_bytes light > 0)

let suite =
  [
    Alcotest.test_case "clean path fills link" `Quick test_clean_path_fills_link;
    Alcotest.test_case "loss throttles" `Quick test_loss_throttles;
    Alcotest.test_case "full reliability (std plane)" `Quick
      test_full_reliability_delivers_all;
    Alcotest.test_case "full reliability (light plane)" `Quick
      test_light_full_reliability_delivers_all;
    Alcotest.test_case "unreliable skips" `Quick test_unreliable_skips_losses;
    Alcotest.test_case "light plane loss estimate" `Quick
      test_light_plane_estimates_loss;
    Alcotest.test_case "delivery delays" `Quick test_delivery_delays_recorded;
    Alcotest.test_case "gTFRC floor" `Quick
      test_gtfrc_target_respected_under_loss;
    Alcotest.test_case "cbr source limit" `Quick test_cbr_source_limits_rate;
    Alcotest.test_case "handshake establishes" `Quick
      test_negotiated_handshake_establishes;
    Alcotest.test_case "negotiation failure clean" `Quick
      test_negotiation_failure_is_clean;
    Alcotest.test_case "feedback on both planes" `Quick
      test_feedback_flows_both_planes;
  ]
