(* ECN: queue marking, loss-history accounting, negotiation, and the
   end-to-end mark-echo-react loop on both feedback planes. *)

let red_params =
  {
    Netsim.Red.min_th = 3.0;
    max_th = 10.0;
    max_p = 0.5;
    w_q = 0.3;
    gentle = true;
    idle_pkt_time = 0.001;
  }

let frame ?(ect = true) uid =
  let f =
    Netsim.Frame.make ~uid ~flow_id:0 ~size:1000 ~born:0.0
      (Netsim.Frame.Raw uid)
  in
  f.Netsim.Frame.ect <- ect;
  f

let test_red_marks_instead_of_dropping () =
  let rng = Engine.Rng.create ~seed:171 in
  let q = Netsim.Qdisc.red ~capacity_pkts:50 ~ecn:true ~params:red_params ~rng () in
  let marked = ref 0 and dropped = ref 0 in
  for i = 1 to 500 do
    let f = frame i in
    if Netsim.Qdisc.enqueue q ~now:(float_of_int i *. 1e-4) f then begin
      if f.Netsim.Frame.ce then incr marked
    end
    else incr dropped;
    if i mod 2 = 0 then ignore (Netsim.Qdisc.dequeue q ~now:(float_of_int i *. 1e-4))
  done;
  Alcotest.(check bool) "marks happened" true (!marked > 10);
  Alcotest.(check int) "stats agree" !marked
    (Netsim.Qdisc.stats q).Netsim.Qdisc.ce_marked

let test_non_ect_still_drops () =
  let rng = Engine.Rng.create ~seed:173 in
  let q = Netsim.Qdisc.red ~capacity_pkts:50 ~ecn:true ~params:red_params ~rng () in
  let marked = ref 0 and dropped = ref 0 in
  for i = 1 to 500 do
    let f = frame ~ect:false i in
    if Netsim.Qdisc.enqueue q ~now:(float_of_int i *. 1e-4) f then begin
      if f.Netsim.Frame.ce then incr marked
    end
    else incr dropped;
    if i mod 2 = 0 then ignore (Netsim.Qdisc.dequeue q ~now:(float_of_int i *. 1e-4))
  done;
  Alcotest.(check int) "never marked" 0 !marked;
  Alcotest.(check bool) "dropped instead" true (!dropped > 10)

let test_loss_history_counts_marks_as_events () =
  let lh = Tfrc.Loss_history.create () in
  let rtt = 0.05 in
  for i = 0 to 199 do
    Tfrc.Loss_history.on_packet lh ~seq:(Packet.Serial.of_int i)
      ~arrival:(float_of_int i *. 0.01)
      ~rtt ~is_retx:false;
    (* CE on packets 50 and 150: 1 s apart, two separate events. *)
    if i = 50 || i = 150 then
      Tfrc.Loss_history.on_congestion_mark lh ~seq:(Packet.Serial.of_int i)
        ~arrival:(float_of_int i *. 0.01)
        ~rtt
  done;
  Alcotest.(check int) "no packets lost" 0 (Tfrc.Loss_history.losses lh);
  Alcotest.(check int) "two marks" 2 (Tfrc.Loss_history.congestion_marks lh);
  Alcotest.(check int) "two events" 2 (Tfrc.Loss_history.loss_events lh);
  Alcotest.(check bool) "p > 0 without loss" true
    (Tfrc.Loss_history.loss_event_rate lh > 0.0)

let test_marks_group_within_rtt () =
  let lh = Tfrc.Loss_history.create () in
  let rtt = 0.05 in
  for i = 0 to 9 do
    Tfrc.Loss_history.on_packet lh ~seq:(Packet.Serial.of_int i)
      ~arrival:(float_of_int i *. 0.001)
      ~rtt ~is_retx:false;
    (* every packet marked — all within one RTT *)
    Tfrc.Loss_history.on_congestion_mark lh ~seq:(Packet.Serial.of_int i)
      ~arrival:(float_of_int i *. 0.001)
      ~rtt
  done;
  Alcotest.(check int) "ten marks" 10 (Tfrc.Loss_history.congestion_marks lh);
  Alcotest.(check int) "one event" 1 (Tfrc.Loss_history.loss_events lh)

let test_negotiation_requires_both () =
  let both =
    Qtp.Profile.agreed_exn
      (Qtp.Profile.qtp_light ~ecn:true ())
      (Qtp.Profile.mobile_receiver ())
  in
  Alcotest.(check bool) "both willing -> on" true both.Qtp.Capabilities.use_ecn;
  let one =
    Qtp.Profile.agreed_exn
      (Qtp.Profile.qtp_light ~ecn:false ())
      (Qtp.Profile.mobile_receiver ())
  in
  Alcotest.(check bool) "one unwilling -> off" false
    one.Qtp.Capabilities.use_ecn

let run_ecn_conn ~light ~ecn =
  let sim = Engine.Sim.create ~seed:177 () in
  let rng = Engine.Sim.split_rng sim in
  let forward =
    Netsim.Topology.spec ~rate_bps:10e6 ~delay:0.04
      ~qdisc:(fun () ->
        Netsim.Qdisc.red ~capacity_pkts:60 ~ecn:true
          ~params:
            {
              Netsim.Red.min_th = 8.0;
              max_th = 25.0;
              max_p = 0.1;
              w_q = 0.002;
              gentle = true;
              idle_pkt_time = 0.0012;
            }
          ~rng:(Engine.Rng.split rng) ())
      ()
  in
  let topo = Netsim.Topology.duplex_path ~sim ~forward () in
  let offer =
    if light then
      Qtp.Profile.qtp_light ~ecn ~reliability:[ Qtp.Capabilities.R_none ] ()
    else Qtp.Profile.qtp_tfrc ~ecn ()
  in
  let responder =
    if light then Qtp.Profile.mobile_receiver () else Qtp.Profile.anything ()
  in
  let agreed = Qtp.Profile.agreed_exn offer responder in
  let conn =
    Qtp.Connection.create ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      (Qtp.Connection.config ~initial_rtt:0.2 agreed)
  in
  Engine.Sim.run ~until:20.0 sim;
  let st = Netsim.Qdisc.stats (Netsim.Link.qdisc topo.Netsim.Topology.bottleneck) in
  (conn, st)

let test_e2e_std_plane_reacts_to_marks () =
  let conn, st = run_ecn_conn ~light:false ~ecn:true in
  Alcotest.(check bool) "marks happened" true (st.Netsim.Qdisc.ce_marked > 10);
  (* The sender's p must be driven by marks (the path loses only via the
     rare hard-limit overflow). *)
  Alcotest.(check bool) "sender reacts" true
    (Qtp.Connection.sender_loss_estimate conn > 0.0001);
  (* And the rate must stay below the link (i.e. it is not blasting). *)
  let rate =
    Stats.Series.rate_bps (Qtp.Connection.arrivals conn) ~from_:5.0 ~until:20.0
  in
  Alcotest.(check bool) "rate sane" true (rate < 10.5e6)

let test_e2e_light_plane_echoes_marks () =
  let conn, st = run_ecn_conn ~light:true ~ecn:true in
  Alcotest.(check bool) "marks happened" true (st.Netsim.Qdisc.ce_marked > 10);
  Alcotest.(check bool) "sender-side p from CE echo" true
    (Qtp.Connection.sender_loss_estimate conn > 0.0001)

let test_e2e_without_negotiation_no_marks () =
  (* ECN-capable queue, but the endpoints did not negotiate it: frames
     go out without ECT, so the queue drops instead. *)
  let conn, st = run_ecn_conn ~light:true ~ecn:false in
  Alcotest.(check int) "no marks" 0 st.Netsim.Qdisc.ce_marked;
  Alcotest.(check bool) "drops instead" true (st.Netsim.Qdisc.dropped > 0);
  ignore conn

let suite =
  [
    Alcotest.test_case "red marks ECT" `Quick test_red_marks_instead_of_dropping;
    Alcotest.test_case "non-ECT drops" `Quick test_non_ect_still_drops;
    Alcotest.test_case "marks are events" `Quick
      test_loss_history_counts_marks_as_events;
    Alcotest.test_case "marks group within RTT" `Quick
      test_marks_group_within_rtt;
    Alcotest.test_case "negotiation requires both" `Quick
      test_negotiation_requires_both;
    Alcotest.test_case "e2e std plane" `Quick test_e2e_std_plane_reacts_to_marks;
    Alcotest.test_case "e2e light plane" `Quick
      test_e2e_light_plane_echoes_marks;
    Alcotest.test_case "e2e off without negotiation" `Quick
      test_e2e_without_negotiation_no_marks;
  ]
