(* Trunk.Frame: the sub-frame codec — round-trip, header corruption
   rejection, truncation and resync without desync, and the zero-
   allocation pack/demux fast path. *)

module F = Trunk.Frame

(* Deterministic payload: byte [o] of a frame seeded [s] is a pure
   function of both, so parsed payloads can be checked byte-for-byte
   without carrying the originals around. *)
let fill_payload buf ~pos ~len ~seed =
  for i = 0 to len - 1 do
    Bytes.unsafe_set buf (pos + i)
      (Char.unsafe_chr ((seed + (i * 31)) land 0xff))
  done

let payload_ok buf ~pos ~len ~seed =
  let ok = ref true in
  for i = 0 to len - 1 do
    if Char.code (Bytes.get buf (pos + i)) <> (seed + (i * 31)) land 0xff then
      ok := false
  done;
  !ok

(* Encode a list of (user, len) frames back to back from position 0;
   returns the total bytes used. *)
let encode_all buf frames =
  let scratch = Bytes.create 0x10000 in
  List.fold_left
    (fun pos (user, len) ->
      fill_payload scratch ~pos:0 ~len ~seed:(user + len);
      pos + F.encode_into buf ~pos ~user ~src:scratch ~src_pos:0 ~len)
    0 frames

let parse buf ~pos ~len =
  let frames = ref [] and junk = ref 0 in
  F.iter buf ~pos ~len
    ~frame:(fun ~user ~off ~len ->
      frames := (user, off, len) :: !frames)
    ~junk:(fun ~bytes -> junk := !junk + bytes);
  (List.rev !frames, !junk)

let gen_frames =
  QCheck.Gen.(
    list_size (int_range 1 12)
      (pair
         (oneof [ int_range 0 5; int_range 0 F.max_user ])
         (int_range 1 300)))

let prop_roundtrip =
  QCheck.Test.make ~name:"frame pack -> iter is identity (junk = 0)"
    ~count:300 (QCheck.make gen_frames) (fun frames ->
      let total =
        List.fold_left (fun n (_, len) -> n + F.measure ~len) 0 frames
      in
      let buf = Bytes.create total in
      let used = encode_all buf frames in
      let parsed, junk = parse buf ~pos:0 ~len:used in
      used = total && junk = 0
      && List.length parsed = List.length frames
      && List.for_all2
           (fun (user, len) (pu, off, pl) ->
             pu = user && pl = len
             && payload_ok buf ~pos:off ~len ~seed:(user + len))
           frames parsed)

let prop_header_byte_flip_rejected =
  (* The check byte folds every header field, so changing ANY single
     header byte (to a different value) must make the frame invalid —
     there is no header bit the parser takes on faith. *)
  QCheck.Test.make ~name:"any header byte flip invalidates the frame"
    ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair
           (pair (int_range 0 F.max_user) (int_range 1 64))
           (pair (int_range 0 (F.header_bytes - 1)) (int_range 1 255))))
    (fun ((user, len), (victim, delta)) ->
      let buf = Bytes.create (F.measure ~len) in
      let scratch = Bytes.create len in
      fill_payload scratch ~pos:0 ~len ~seed:user;
      let used = F.encode_into buf ~pos:0 ~user ~src:scratch ~src_pos:0 ~len in
      let orig = Char.code (Bytes.get buf victim) in
      Bytes.set buf victim (Char.chr ((orig + delta) land 0xff));
      not (F.valid_at buf ~pos:0 ~limit:used))

let three_frames () =
  (* Zero payloads: no window inside the payload can self-validate (an
     all-zero header needs check byte 0x5A and length >= 1). *)
  let frames = [ (3, 40); (7, 25); (12, 60) ] in
  let total = List.fold_left (fun n (_, l) -> n + F.measure ~len:l) 0 frames in
  let buf = Bytes.create total in
  let zero = Bytes.make 64 '\x00' in
  let _ =
    List.fold_left
      (fun pos (user, len) ->
        pos + F.encode_into buf ~pos ~user ~src:zero ~src_pos:0 ~len)
      0 frames
  in
  (buf, total)

let test_truncation_no_desync () =
  (* Cut anywhere inside the third frame: the first two frames still
     parse, every remaining byte is reported as junk (the truncated
     header cannot validate — its payload no longer fits), and the
     parser neither throws nor reads past the limit. *)
  let buf, total = three_frames () in
  let f2_end = F.measure ~len:40 + F.measure ~len:25 in
  for cut = f2_end to total - 1 do
    let parsed, junk = parse buf ~pos:0 ~len:cut in
    Alcotest.(check (list (triple int int int)))
      (Printf.sprintf "frames at cut %d" cut)
      [ (3, F.header_bytes, 40); (7, f2_end - 25, 25) ]
      parsed;
    Alcotest.(check int)
      (Printf.sprintf "junk at cut %d" cut)
      (cut - f2_end) junk
  done

let test_resync_after_garbage () =
  (* A garbage prefix (0xFF bytes never self-validate: their check byte
     would have to be 0xA5) must be counted as junk, after which the
     parser re-locks on the genuine frame — 1-byte resync, no loss. *)
  let len = 10 and user = 7 in
  let zero = Bytes.make len '\x00' in
  for garbage = 1 to 17 do
    let buf = Bytes.make (garbage + F.measure ~len) '\xFF' in
    let _ =
      F.encode_into buf ~pos:garbage ~user ~src:zero ~src_pos:0 ~len
    in
    let parsed, junk = parse buf ~pos:0 ~len:(Bytes.length buf) in
    Alcotest.(check int) (Printf.sprintf "junk run %d" garbage) garbage junk;
    Alcotest.(check (list (triple int int int)))
      (Printf.sprintf "frame after %dB of garbage" garbage)
      [ (user, garbage + F.header_bytes, len) ]
      parsed
  done

let test_header_bounds_rejected () =
  let buf = Bytes.create 64 in
  let bad f = Alcotest.(check bool) "rejected" true
      (try f (); false with Invalid_argument _ -> true)
  in
  bad (fun () -> F.put_header buf ~pos:0 ~user:(-1) ~len:5);
  bad (fun () -> F.put_header buf ~pos:0 ~user:(F.max_user + 1) ~len:5);
  bad (fun () -> F.put_header buf ~pos:0 ~user:0 ~len:0);
  bad (fun () -> F.put_header buf ~pos:0 ~user:0 ~len:(F.max_len + 1));
  bad (fun () -> F.put_header buf ~pos:60 ~user:0 ~len:5)

let test_pack_demux_zero_alloc () =
  (* Mirror of the wire codec's bar (and the [trunk.frame] bench row):
     packing 8 sub-frames into the domain scratch and demultiplexing
     them back allocates nothing once warm. *)
  let src = Bytes.make 256 'x' in
  let buf = F.scratch () in
  let digest = ref 0 in
  (* Callbacks and buffers hoisted out of the loop: a closure built per
     iteration would charge the measurement for the harness. *)
  let on_frame ~user ~off ~len = digest := !digest lxor (user + off + len) in
  let on_junk ~bytes = digest := !digest + (bytes * 1_000_000) in
  let stride = F.measure ~len:256 in
  let spin iters =
    for _ = 1 to iters do
      for u = 0 to 7 do
        ignore
          (F.encode_into buf ~pos:(u * stride) ~user:u ~src ~src_pos:0
             ~len:256)
      done;
      F.iter buf ~pos:0 ~len:(8 * stride) ~frame:on_frame ~junk:on_junk
    done
  in
  spin 100 (* warm-up: scratch + any one-time boxing *);
  let iters = 10_000 in
  let before = Gc.minor_words () in
  spin iters;
  let per_op = (Gc.minor_words () -. before) /. float_of_int iters in
  Alcotest.(check bool)
    (Printf.sprintf "%.4f words/op (digest %x)" per_op (!digest land 0xFFFF))
    true (per_op < 1.0)

let suite =
  [
    Alcotest.test_case "truncation keeps earlier frames, no desync" `Quick
      test_truncation_no_desync;
    Alcotest.test_case "resync after garbage prefix" `Quick
      test_resync_after_garbage;
    Alcotest.test_case "header bounds rejected" `Quick
      test_header_bounds_rejected;
    Alcotest.test_case "pack/demux allocates nothing" `Quick
      test_pack_demux_zero_alloc;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_header_byte_flip_rejected;
  ]
