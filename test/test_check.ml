(* The structural analyzer: parser shape recovery, one firing and one
   structurally-similar clean fixture per pass, report fingerprints,
   baseline gating, and the jobs-independence contract — all driven
   through [Check.run_string] / [Check.run_files] so no files need
   creating. *)

module P = Analysis.Parser
module Pass = Analysis.Pass
module Check = Analysis.Check
module Report = Analysis.Report
module Baseline = Analysis.Baseline

let parse src = P.parse (Array.of_list (Analysis.Lint.tokenize src))

let contexts src = P.contexts (parse src)

let binding_named name src =
  match
    List.find_opt (fun (c : P.context) -> c.P.cx_binding.P.bname = name)
      (contexts src)
  with
  | Some c -> c
  | None -> Alcotest.failf "no binding %S parsed out of %S" name src

let rules fs = List.map (fun (f : Pass.finding) -> f.Pass.rule) fs

let fires rule ~path src = List.mem rule (rules (Check.run_string ~path src))

let check_fires rule ~path src =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires on %S" rule src)
    true (fires rule ~path src)

let check_clean rule ~path src =
  Alcotest.(check bool)
    (Printf.sprintf "%s stays quiet on %S" rule src)
    false (fires rule ~path src)

let proto = "lib/tfrc/fixture.ml"

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parser_structure () =
  (* nested modules give qualified contexts *)
  let src =
    "module A = struct\n\
    \  module B = struct let x = 1 end\n\
    \  let y = 2\n\
     end\n\
     let z = 3\n"
  in
  let c = binding_named "x" src in
  Alcotest.(check (list string)) "x sits in A.B" [ "A"; "B" ] c.P.cx_mods;
  Alcotest.(check string) "qualified" "A.B.x" (P.qualified_name c);
  Alcotest.(check (list string)) "y sits in A" [ "A" ]
    (binding_named "y" src).P.cx_mods;
  Alcotest.(check (list string)) "z at top" [] (binding_named "z" src).P.cx_mods;
  (* functor bodies are still walked *)
  let fsrc = "module F (X : Set.S) = struct let pick s = X.min_elt s end\n" in
  Alcotest.(check (list string)) "functor member" [ "F" ]
    (binding_named "pick" fsrc).P.cx_mods;
  (* a module alias is not a struct *)
  (match parse "module M = Map.Make (Int)\nlet a = 1\n" with
  | [ P.Other { okw = "module"; _ }; P.Let _ ] -> ()
  | _ -> Alcotest.fail "module alias should parse as Other + Let")

let test_parser_attributes () =
  let b = (binding_named "f" "let[@vtp.hot] f x = x + 1\n").P.cx_binding in
  Alcotest.(check (list string)) "prefix attr" [ "vtp.hot" ] b.P.battrs;
  Alcotest.(check bool) "f is a function" true b.P.bfun;
  let b =
    (binding_named "g" "let g x = x + 1 [@@vtp.alloc_ok]\nlet h = 2\n")
      .P.cx_binding
  in
  Alcotest.(check (list string)) "trailing attr" [ "vtp.alloc_ok" ] b.P.battrs;
  let c =
    binding_named "k" "[@@@vtp.hot]\n\nlet k x = x * 2\n"
  in
  Alcotest.(check bool) "floating attr reaches the binding" true
    (List.mem "vtp.hot" c.P.cx_floating);
  let b =
    (binding_named "r" "let[@vtp.hot] rec r n = if n = 0 then 1 else r (n - 1)\n")
      .P.cx_binding
  in
  Alcotest.(check (list string)) "attr before rec" [ "vtp.hot" ] b.P.battrs

let test_parser_blind_spots () =
  (* keywords inside comments and strings are invisible *)
  let src =
    "(* let bogus = ref 0 *)\n\
     let s = \"let fake = ref 0\"\n\
     let k x = x\n"
  in
  let names =
    List.map (fun (c : P.context) -> c.P.cx_binding.P.bname) (contexts src)
  in
  Alcotest.(check (list string)) "only real bindings" [ "s"; "k" ] names;
  (* expression-level and-chains stay inside their function *)
  let src = "let f x =\n  let a = ref 0 and b = ref x in\n  !a + !b\n" in
  let names =
    List.map (fun (c : P.context) -> c.P.cx_binding.P.bname) (contexts src)
  in
  Alcotest.(check (list string)) "let..and..in is one binding" [ "f" ] names;
  Alcotest.(check bool) "f is a function" true
    (binding_named "f" src).P.cx_binding.P.bfun;
  (* top-level rec..and chains split into members *)
  let src = "let rec even n = odd (n - 1)\nand odd n = even (n - 1)\n" in
  let names =
    List.map (fun (c : P.context) -> c.P.cx_binding.P.bname) (contexts src)
  in
  Alcotest.(check (list string)) "rec/and members" [ "even"; "odd" ] names

let test_parser_bfun () =
  let bfun name src = (binding_named name src).P.cx_binding.P.bfun in
  Alcotest.(check bool) "parameters" true (bfun "f" "let f x = x\n");
  Alcotest.(check bool) "fun body" true (bfun "g" "let g = fun x -> x\n");
  Alcotest.(check bool) "function body" true
    (bfun "h" "let h = function [] -> 0 | _ -> 1\n");
  Alcotest.(check bool) "plain value" false (bfun "v" "let v = 5\n");
  Alcotest.(check bool) "annotated value" false
    (bfun "c" "let c : int = 5\n");
  (* a unit binding is an effectful statement, not a function *)
  Alcotest.(check bool) "unit pattern" false (bfun "()" "let () = run ()\n")

(* ------------------------------------------------------------------ *)
(* Determinism family *)

let test_top_level_state () =
  check_fires "top-level-state" ~path:proto "let table = Hashtbl.create 16\n";
  check_fires "top-level-state" ~path:proto "let count = ref 0\n";
  (* the sanctioned forms *)
  check_clean "top-level-state" ~path:proto
    "let table = Domain.DLS.new_key (fun () -> Hashtbl.create 16)\n";
  check_clean "top-level-state" ~path:proto
    "let[@vtp.ambient] hook = ref false\n";
  (* functions allocating per call are not ambient state *)
  check_clean "top-level-state" ~path:proto
    "let make () = Hashtbl.create 16\n";
  (* a local ref inside a function body is not top-level state *)
  check_clean "top-level-state" ~path:proto
    "let f x =\n  let a = ref 0 and b = ref x in\n  !a + !b\n"

let test_hashtbl_order () =
  check_fires "hashtbl-order" ~path:proto
    "let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []\n";
  (* commutative aggregation is fine *)
  check_clean "hashtbl-order" ~path:proto
    "let total t = Hashtbl.fold (fun _ v acc -> acc + v) t 0\n";
  (* a sort downstream discharges the obligation *)
  check_clean "hashtbl-order" ~path:proto
    "let keys t =\n\
    \  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])\n";
  check_clean "hashtbl-order" ~path:proto
    "let[@vtp.unordered] dump t = Hashtbl.iter (fun k _ -> print_int k) t\n"

let test_wall_clock () =
  check_fires "wall-clock" ~path:proto
    "let deadline rto = Unix.gettimeofday () +. rto\n";
  check_fires "wall-clock" ~path:proto "let t0 = Sys.time ()\n";
  check_clean "wall-clock" ~path:proto
    "let deadline sim rto = Engine.Sim.now sim +. rto\n";
  (* the benchmark harness is the one allowed user *)
  check_clean "wall-clock" ~path:"bench/main.ml"
    "let t0 = Unix.gettimeofday ()\n"

(* ------------------------------------------------------------------ *)
(* Hot-path family *)

let test_hot_closure () =
  check_fires "hot-closure" ~path:proto
    "let[@vtp.hot] f t = List.iter (fun x -> use x) t.xs\n";
  check_fires "hot-closure" ~path:proto
    "let[@vtp.hot] g t =\n  let rec walk i = if i = 0 then 0 else walk (i - 1) in\n  walk t.n\n";
  (* same body, not marked hot *)
  check_clean "hot-closure" ~path:proto
    "let f t = List.iter (fun x -> use x) t.xs\n";
  (* the binding's own leading fun IS the function *)
  check_clean "hot-closure" ~path:proto "let[@vtp.hot] h = fun x -> x + 1\n";
  (* a local scalar is not a nested function *)
  check_clean "hot-closure" ~path:proto
    "let[@vtp.hot] k t =\n  let cap = t.n * 2 in\n  cap + 1\n";
  check_clean "hot-closure" ~path:proto
    "let[@vtp.alloc_ok] [@vtp.hot] e t = List.iter (fun x -> use x) t.xs\n"

let test_hot_list () =
  check_fires "hot-list" ~path:proto
    "let[@vtp.hot] f t = t.acc <- t.x :: t.acc\n";
  check_fires "hot-list" ~path:proto
    "let[@vtp.hot] g xs = List.map succ xs\n";
  check_fires "hot-list" ~path:proto "let[@vtp.hot] h x = [ x; x + 1 ]\n";
  (* match patterns and array indexing are not list construction *)
  check_clean "hot-list" ~path:proto
    "let[@vtp.hot] len = function [] -> 0 | _ :: _ -> 1\n";
  check_clean "hot-list" ~path:proto "let[@vtp.hot] nth t i = t.arr.(i)\n";
  check_clean "hot-list" ~path:proto "let f t = t.acc <- t.x :: t.acc\n"

let test_hot_box () =
  check_fires "hot-box" ~path:proto
    "let[@vtp.hot] peek t = if t.n = 0 then None else Some t.arr.(0)\n";
  check_fires "hot-box" ~path:proto "let[@vtp.hot] cell () = ref 0\n";
  (* destructuring an option is free *)
  check_clean "hot-box" ~path:proto
    "let[@vtp.hot] get t = match t.o with Some x -> x | None -> 0\n";
  check_clean "hot-box" ~path:proto
    "let[@vtp.alloc_ok] peek t = if t.n = 0 then None else Some t.arr.(0)\n";
  (* floating [@@@vtp.hot] marks every function in the structure *)
  check_fires "hot-box" ~path:proto "[@@@vtp.hot]\nlet wrap x = Some x\n";
  check_clean "hot-box" ~path:proto "let wrap x = Some x\n"

let test_hot_format () =
  check_fires "hot-format" ~path:proto
    "let[@vtp.hot] emit t = log (Printf.sprintf \"seq=%d\" t.seq)\n";
  check_fires "hot-format" ~path:proto
    "let[@vtp.hot] name t = string_of_int t.id ^ \"x\"\n";
  check_clean "hot-format" ~path:proto
    "let emit t = log (Printf.sprintf \"seq=%d\" t.seq)\n";
  check_clean "hot-format" ~path:proto
    "let[@vtp.hot] record t = Trace.Sink.seg_send t.sink 1\n"

(* ------------------------------------------------------------------ *)
(* Protocol constants *)

let eq_path = "lib/tfrc/equation.ml"

(* A miniature equation.ml carrying both declared runs for that file:
   the rto coefficients [1; 4] and the throughput coefficients
   [2; 3; 3; 8; 3; 1; 32].  [last] parameterises the final coefficient
   so the drift case differs in exactly one literal. *)
let eq_src last =
  "let rate ~s ~r ~p ?(b = 1.0) ?t_rto () =\n\
  \  let t_rto = match t_rto with Some t -> t | None -> 4.0 *. r in\n\
  \  let root1 = sqrt (2.0 *. b *. p /. 3.0) in\n\
  \  let root2 = sqrt (3.0 *. b *. p /. 8.0) in\n\
  \  float_of_int s\n\
  \  /. ((r *. root1) +. (t_rto *. 3.0 *. root2 *. p *. (1.0 +. (" ^ last
  ^ " *. p *. p))))\n"

let eq_good = eq_src "32.0"

let proto_const_findings src =
  List.filter
    (fun (f : Pass.finding) -> f.Pass.rule = "proto-const")
    (Check.run_string ~path:eq_path src)

let test_proto_const () =
  Alcotest.(check int) "conforming constants pass" 0
    (List.length (proto_const_findings eq_good));
  (* a typo'd coefficient is caught and names the authority *)
  let drifted = eq_src "31.0" in
  (match proto_const_findings drifted with
  | [ f ] ->
      Alcotest.(check string) "drift names the constant id"
        "rfc3448.throughput-eq" f.Pass.context
  | fs -> Alcotest.failf "expected 1 drift finding, got %d" (List.length fs));
  (* a refactor that loses the anchor binding is caught too *)
  (match proto_const_findings "let other = 1.0\n" with
  | [ _; _ ] -> ()
  | fs ->
      Alcotest.failf "expected 2 anchor-missing findings, got %d"
        (List.length fs));
  (* out of scope: the same drift in an unscoped directory is silent *)
  Alcotest.(check bool) "scoped to lib/tfrc + lib/sack" false
    (fires "proto-const" ~path:"lib/netsim/equation.ml" drifted)

(* ------------------------------------------------------------------ *)
(* API hygiene *)

let test_test_only_escape () =
  check_fires "test-only-escape" ~path:"lib/core/loss.ml"
    "let () = Sack.Rcv_tracker.test_only_skip_dup_check := true\n";
  (* tests are the intended users *)
  check_clean "test-only-escape" ~path:"test/test_fuzz.ml"
    "let () = Sack.Rcv_tracker.test_only_skip_dup_check := true\n";
  (* defining the hook is fine; only qualified cross-module reaches fire *)
  check_clean "test-only-escape" ~path:"lib/sack/rcv_tracker.ml"
    "let[@vtp.ambient] test_only_skip_dup_check = ref false\n"

let user_ml = "lib/core/user.ml"

let exports_findings mli =
  let files =
    [
      ("lib/engine/wheel.mli", mli);
      (user_ml, "let go p ev = Engine.Wheel.bucket_push p 3 ev\n");
    ]
  in
  List.filter
    (fun (f : Pass.finding) -> f.Pass.rule = "undeclared-export")
    (Check.run_files files)

let test_undeclared_export () =
  (match exports_findings "val add : t -> unit\n" with
  | [ f ] ->
      Alcotest.(check string) "finding lands in the referencing file"
        user_ml f.Pass.path
  | fs ->
      Alcotest.failf "expected 1 undeclared-export finding, got %d"
        (List.length fs));
  Alcotest.(check int) "declared name passes" 0
    (List.length
       (exports_findings "val bucket_push : t -> int -> Event.t -> unit\n"));
  (* an [include] makes the surface non-evident: stay silent *)
  Alcotest.(check int) "include suppresses the check" 0
    (List.length (exports_findings "include module type of Impl\n"))

(* ------------------------------------------------------------------ *)
(* Report + baseline *)

let entry ?(line = 10) ?(rule = "hot-box") ?(msg = "boxing") () =
  Report.make ~rule ~family:"hot-path" ~severity:"error"
    ~path:"lib/engine/wheel.ml" ~line ~message:msg ~context:"Wheel.pop"

let test_fingerprints () =
  (* line-insensitive: edits above a finding don't churn the baseline *)
  Alcotest.(check string) "same identity, different line"
    (entry ~line:10 ()).Report.fingerprint
    (entry ~line:99 ()).Report.fingerprint;
  Alcotest.(check bool) "message is part of identity" false
    ((entry ()).Report.fingerprint
    = (entry ~msg:"other" ()).Report.fingerprint)

let test_baseline_classify () =
  let old = entry () in
  let moved = entry ~line:42 () in
  let fresh = entry ~rule:"hot-list" ~msg:"consing" () in
  let bl = Baseline.of_entries [ old ] in
  (match Baseline.classify bl (Report.sort [ moved; fresh ]) with
  | [ (_, n1); (_, n2) ] ->
      let news =
        List.sort compare
          [ (if n1 then 1 else 0); (if n2 then 1 else 0) ]
      in
      Alcotest.(check (list int)) "moved absorbed, fresh gates" [ 0; 1 ] news
  | _ -> Alcotest.fail "classify changed arity");
  (* multiset: one baselined copy absorbs exactly one occurrence *)
  (match Baseline.classify bl (Report.sort [ moved; entry ~line:50 () ]) with
  | [ (_, a); (_, b) ] ->
      Alcotest.(check bool) "second copy still gates" true (a || b);
      Alcotest.(check bool) "first copy absorbed" false (a && b)
  | _ -> Alcotest.fail "classify changed arity")

let test_baseline_malformed () =
  let raises s =
    match Baseline.of_string s with
    | exception Baseline.Malformed _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "garbage" true (raises "not json at all");
  Alcotest.(check bool) "wrong schema" true
    (raises "{\"schema\": \"something-else\", \"findings\": []}");
  Alcotest.(check bool) "finding without fingerprint" true
    (raises
       "{\"schema\": \"vtp-analysis-baseline-1\", \"findings\": [{\"rule\": \
        \"x\"}]}");
  (* the round trip through to_json parses back clean *)
  let json = Stats.Json.to_string (Baseline.to_json [ entry () ]) in
  Alcotest.(check bool) "round trip" false (raises json)

let test_sarif_shape () =
  let doc =
    Report.sarif
      ~rules:[ ("hot-box", "boxing in hot bodies") ]
      [ (entry (), true); (entry ~msg:"old boxing" (), false) ]
  in
  let s = Stats.Json.to_string doc in
  let has sub = Analysis.Lint.contains_sub ~sub s in
  Alcotest.(check bool) "driver name" true (has "\"vtp_lint\"");
  Alcotest.(check bool) "ruleId" true (has "\"ruleId\": \"hot-box\"");
  Alcotest.(check bool) "new finding" true (has "\"baselineState\": \"new\"");
  Alcotest.(check bool) "baselined finding" true
    (has "\"baselineState\": \"unchanged\"");
  Alcotest.(check bool) "fingerprints" true (has "\"vtp/v1\"")

(* ------------------------------------------------------------------ *)
(* Determinism of the driver itself *)

let test_jobs_contract () =
  (* a small in-memory tree always available *)
  let files =
    [
      ("lib/tfrc/equation.ml", eq_good);
      ("lib/core/a.ml", "let bad = ref 0\n");
      ("lib/core/b.ml", "let[@vtp.hot] f t = Some t.x\n");
      ("lib/core/c.ml", "let fine x = x + 1\n");
    ]
  in
  let f1 = Check.run_files ~jobs:1 files in
  let f4 = Check.run_files ~jobs:4 files in
  Alcotest.(check int) "same findings" (List.length f1) (List.length f4);
  List.iter2
    (fun (a : Pass.finding) (b : Pass.finding) ->
      Alcotest.(check string) "same rule order" a.Pass.rule b.Pass.rule;
      Alcotest.(check string) "same path order" a.Pass.path b.Pass.path;
      Alcotest.(check int) "same lines" a.Pass.line b.Pass.line)
    f1 f4;
  (* and over the real tree when visible, as byte-identical SARIF *)
  if Sys.file_exists "lib" && Sys.file_exists "bin" then begin
    let sarif jobs =
      let fs = Check.run_tree ~jobs ~roots:[ "lib"; "bin" ] () in
      Stats.Json.to_string
        (Report.sarif ~rules:[]
           (List.map (fun e -> (e, true)) (Report.of_check fs)))
    in
    Alcotest.(check string) "tree report identical at jobs 1 vs 4" (sarif 1)
      (sarif 4)
  end

let test_tree_is_clean () =
  (* The repository's own sources must stay analyzer-clean (the
     committed baseline is empty); only assert when the tree is
     visible — dune sandboxes test execution. *)
  if Sys.file_exists "lib" && Sys.file_exists "bin" then begin
    let fs = Check.run_tree ~roots:[ "lib"; "bin" ] () in
    List.iter
      (fun (f : Pass.finding) ->
        Printf.eprintf "unexpected: %s:%d %s %s\n" f.Pass.path f.Pass.line
          f.Pass.rule f.Pass.message)
      fs;
    Alcotest.(check int) "no structural findings in tree" 0 (List.length fs)
  end

let suite =
  [
    ("parser structure", `Quick, test_parser_structure);
    ("parser attributes", `Quick, test_parser_attributes);
    ("parser blind spots", `Quick, test_parser_blind_spots);
    ("parser bfun", `Quick, test_parser_bfun);
    ("top-level-state", `Quick, test_top_level_state);
    ("hashtbl-order", `Quick, test_hashtbl_order);
    ("wall-clock", `Quick, test_wall_clock);
    ("hot-closure", `Quick, test_hot_closure);
    ("hot-list", `Quick, test_hot_list);
    ("hot-box", `Quick, test_hot_box);
    ("hot-format", `Quick, test_hot_format);
    ("proto-const", `Quick, test_proto_const);
    ("test-only-escape", `Quick, test_test_only_escape);
    ("undeclared-export", `Quick, test_undeclared_export);
    ("fingerprints", `Quick, test_fingerprints);
    ("baseline classify", `Quick, test_baseline_classify);
    ("baseline malformed", `Quick, test_baseline_malformed);
    ("sarif shape", `Quick, test_sarif_shape);
    ("jobs contract", `Quick, test_jobs_contract);
    ("tree is clean", `Quick, test_tree_is_clean);
  ]
