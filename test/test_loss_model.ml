(* Netsim.Loss_model: stationary rates and burstiness. *)

let count_drops lm n =
  let d = ref 0 in
  for _ = 1 to n do
    if Netsim.Loss_model.drops lm then incr d
  done;
  float_of_int !d /. float_of_int n

let test_none () =
  Alcotest.(check (float 0.0)) "never drops" 0.0
    (count_drops Netsim.Loss_model.none 1000);
  Alcotest.(check (float 0.0)) "expected 0" 0.0
    (Netsim.Loss_model.expected_loss_rate Netsim.Loss_model.none)

let test_bernoulli_rate () =
  let rng = Engine.Rng.create ~seed:51 in
  let lm = Netsim.Loss_model.bernoulli ~p:0.05 ~rng in
  let rate = count_drops lm 100_000 in
  Alcotest.(check bool)
    (Printf.sprintf "rate %f ~ 0.05" rate)
    true
    (Float.abs (rate -. 0.05) < 0.005);
  Alcotest.(check (float 1e-9)) "expected" 0.05
    (Netsim.Loss_model.expected_loss_rate lm)

let test_gilbert_stationary_rate () =
  let rng = Engine.Rng.create ~seed:53 in
  let lm =
    Netsim.Loss_model.gilbert_elliott ~p_good_to_bad:0.01 ~p_bad_to_good:0.2
      ~loss_good:0.0 ~loss_bad:0.5 ~rng
  in
  let expected = Netsim.Loss_model.expected_loss_rate lm in
  (* pi_bad = 0.01/0.21; expected = pi_bad * 0.5 *)
  Alcotest.(check (float 1e-9)) "analytic stationary rate"
    (0.01 /. 0.21 *. 0.5) expected;
  let rate = count_drops lm 200_000 in
  Alcotest.(check bool)
    (Printf.sprintf "measured %f ~ expected %f" rate expected)
    true
    (Float.abs (rate -. expected) < 0.005)

let burst_lengths lm n =
  (* Mean length of consecutive-drop runs. *)
  let runs = ref [] and cur = ref 0 in
  for _ = 1 to n do
    if Netsim.Loss_model.drops lm then incr cur
    else if !cur > 0 then begin
      runs := !cur :: !runs;
      cur := 0
    end
  done;
  match !runs with
  | [] -> 0.0
  | rs ->
      float_of_int (List.fold_left ( + ) 0 rs) /. float_of_int (List.length rs)

let test_gilbert_burstier_than_bernoulli () =
  let rng1 = Engine.Rng.create ~seed:55 in
  let rng2 = Engine.Rng.create ~seed:56 in
  let bursty = Experiments.Common.gilbert ~loss:0.05 ~burstiness:0.9 rng1 in
  let random = Netsim.Loss_model.bernoulli ~p:0.05 ~rng:rng2 in
  let bl = burst_lengths bursty 200_000 in
  let rl = burst_lengths random 200_000 in
  Alcotest.(check bool)
    (Printf.sprintf "gilbert bursts (%f) longer than bernoulli (%f)" bl rl)
    true (bl > rl *. 1.5)

let test_common_gilbert_calibration () =
  (* Experiments.Common.gilbert must hit the requested stationary rate. *)
  List.iter
    (fun target ->
      let rng = Engine.Rng.create ~seed:57 in
      let lm = Experiments.Common.gilbert ~loss:target ~burstiness:0.5 rng in
      let expected = Netsim.Loss_model.expected_loss_rate lm in
      Alcotest.(check (float 1e-6)) "calibrated" target expected;
      let measured = count_drops lm 300_000 in
      Alcotest.(check bool)
        (Printf.sprintf "measured %f ~ %f" measured target)
        true
        (Float.abs (measured -. target) < 0.2 *. target))
    [ 0.01; 0.05; 0.1 ]

let suite =
  [
    Alcotest.test_case "none" `Quick test_none;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "gilbert stationary rate" `Quick
      test_gilbert_stationary_rate;
    Alcotest.test_case "gilbert burstiness" `Quick
      test_gilbert_burstier_than_bernoulli;
    Alcotest.test_case "common.gilbert calibration" `Quick
      test_common_gilbert_calibration;
  ]
