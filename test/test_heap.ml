(* Engine.Heap: ordering, stability of size accounting, qcheck sort. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_empty () =
  let h = Engine.Heap.create ~compare:Int.compare in
  check_int "length" 0 (Engine.Heap.length h);
  check_bool "is_empty" true (Engine.Heap.is_empty h);
  Alcotest.(check (option int)) "min" None (Engine.Heap.min h);
  Alcotest.(check (option int)) "pop" None (Engine.Heap.pop_min h)

let test_ordering () =
  let h = Engine.Heap.create ~compare:Int.compare in
  List.iter (Engine.Heap.add h) [ 5; 1; 4; 1; 3; 9; 0 ];
  check_int "length" 7 (Engine.Heap.length h);
  let drained = ref [] in
  let rec drain () =
    match Engine.Heap.pop_min h with
    | Some x ->
        drained := x :: !drained;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int))
    "sorted ascending" [ 0; 1; 1; 3; 4; 5; 9 ]
    (List.rev !drained)

let test_min_not_removed () =
  let h = Engine.Heap.create ~compare:Int.compare in
  Engine.Heap.add h 2;
  Engine.Heap.add h 1;
  Alcotest.(check (option int)) "min" (Some 1) (Engine.Heap.min h);
  check_int "length unchanged" 2 (Engine.Heap.length h)

let test_clear () =
  let h = Engine.Heap.create ~compare:Int.compare in
  List.iter (Engine.Heap.add h) [ 3; 2; 1 ];
  Engine.Heap.clear h;
  check_int "cleared" 0 (Engine.Heap.length h);
  Engine.Heap.add h 7;
  Alcotest.(check (option int)) "usable after clear" (Some 7) (Engine.Heap.pop_min h)

let test_to_sorted_list () =
  let h = Engine.Heap.create ~compare:Int.compare in
  List.iter (Engine.Heap.add h) [ 4; 2; 8; 6 ];
  Alcotest.(check (list int)) "sorted" [ 2; 4; 6; 8 ] (Engine.Heap.to_sorted_list h);
  check_int "non-destructive" 4 (Engine.Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Engine.Heap.create ~compare:Int.compare in
      List.iter (Engine.Heap.add h) xs;
      let rec drain acc =
        match Engine.Heap.pop_min h with
        | Some x -> drain (x :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort Int.compare xs)

let prop_custom_order =
  QCheck.Test.make ~name:"heap honours custom compare (max-heap)" ~count:100
    QCheck.(list small_int)
    (fun xs ->
      let h = Engine.Heap.create ~compare:(fun a b -> Int.compare b a) in
      List.iter (Engine.Heap.add h) xs;
      let rec drain acc =
        match Engine.Heap.pop_min h with
        | Some x -> drain (x :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort (fun a b -> Int.compare b a) xs)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "drains in order" `Quick test_ordering;
    Alcotest.test_case "min peeks" `Quick test_min_not_removed;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "to_sorted_list" `Quick test_to_sorted_list;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_custom_order;
  ]
