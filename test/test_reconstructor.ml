(* Qtp.Loss_reconstructor: sender-side rebuild of the loss history. *)

module LR = Qtp.Loss_reconstructor
module S = Packet.Serial

let cover ?(retx = false) ?(gap = 0.001) i =
  {
    Sack.Scoreboard.cov_seq = S.of_int i;
    cov_sent_at = float_of_int i *. gap;
    cov_was_retx = retx;
  }

let rtt = 0.05

let feed lr covers =
  LR.on_covers lr ~covers ~rtt ~x_recv:1.0e6 ~packet_size:1500

let test_no_loss () =
  let lr = LR.create () in
  feed lr (List.init 100 cover);
  Alcotest.(check int) "no events" 0 (LR.loss_events lr);
  Alcotest.(check (float 0.0)) "p=0" 0.0 (LR.loss_event_rate lr)

let test_hole_detected () =
  let lr = LR.create () in
  (* 50 never covered. *)
  let covers = List.init 100 (fun i -> if i < 50 then i else i + 1) in
  feed lr (List.map cover covers);
  Alcotest.(check int) "one event" 1 (LR.loss_events lr);
  Alcotest.(check bool) "p > 0" true (LR.loss_event_rate lr > 0.0)

let test_first_interval_seeded () =
  let lr = LR.create () in
  let covers = List.init 100 (fun i -> if i < 50 then i else i + 1) in
  feed lr (List.map cover covers);
  (* The seed interval (from x_recv) plus rate > 0 means p is moderate,
     not 1/open-interval. *)
  let p = LR.loss_event_rate lr in
  Alcotest.(check bool)
    (Printf.sprintf "p %f reasonable" p)
    true
    (p > 1e-5 && p < 0.5)

let test_retransmitted_covers_excluded () =
  let lr = LR.create () in
  feed lr (List.init 50 cover);
  feed lr [ cover ~retx:true 50 ];
  feed lr (List.init 50 (fun i -> cover (51 + i)));
  (* 50 was a repaired retransmission: it must not appear as a fresh
     arrival, but neither is it a hole (we just never count it). *)
  Alcotest.(check int) "history only counts originals" 100
    (Tfrc.Loss_history.packets_seen (LR.history lr))

let test_batched_covers_equal_unbatched () =
  let covers = List.init 500 (fun i -> if i mod 50 = 49 then None else Some i) in
  let all = List.filter_map (fun x -> Option.map cover x) covers in
  let one_shot = LR.create () in
  feed one_shot all;
  let batched = LR.create () in
  let rec chunks n = function
    | [] -> []
    | l ->
        let take = List.filteri (fun i _ -> i < n) l in
        let rest = List.filteri (fun i _ -> i >= n) l in
        take :: chunks n rest
  in
  List.iter (feed batched) (chunks 37 all);
  Alcotest.(check (float 1e-9)) "batching invariant"
    (LR.loss_event_rate one_shot)
    (LR.loss_event_rate batched)

let test_matches_receiver_side () =
  (* The E6 property as a unit test: identical loss pattern, equal p. *)
  let n = 5000 in
  let rng = Engine.Rng.create ~seed:91 in
  let pattern = Array.init n (fun _ -> not (Engine.Rng.chance rng 0.02)) in
  let lh = Tfrc.Loss_history.create () in
  Array.iteri
    (fun i alive ->
      if alive then
        Tfrc.Loss_history.on_packet lh ~seq:(S.of_int i)
          ~arrival:((float_of_int i *. 0.001) +. rtt)
          ~rtt ~is_retx:false)
    pattern;
  let lr = LR.create () in
  let covers = ref [] in
  Array.iteri (fun i alive -> if alive then covers := cover i :: !covers) pattern;
  feed lr (List.rev !covers);
  let p_r = Tfrc.Loss_history.loss_event_rate lh in
  let p_s = LR.loss_event_rate lr in
  Alcotest.(check bool)
    (Printf.sprintf "sender %f ~ receiver %f" p_s p_r)
    true
    (p_r > 0.0 && Float.abs (p_s -. p_r) /. p_r < 0.05)

(* The paper's central claim as a differential property: for a random
   loss pattern, the full RFC 3448 receiver (driven through the event
   loop, feedback timers and all) and the QTP_light sender-side
   reconstruction (fed the same pattern as SACK cover reports, one
   batch per RTT) must agree on the loss-event rate.  Tolerance covers
   the one legitimate divergence — the synthetic first interval, which
   the receiver seeds from its measured x_recv and the reconstructor
   from the reported one. *)
let prop_matches_full_receiver =
  QCheck.Test.make ~name:"reconstruction tracks the full receiver's p"
    ~count:60
    QCheck.(pair (int_range 1 10_000) (int_range 1 12))
    (fun (seed, loss_pct) ->
      let n = 3000 in
      let gap = 0.004 in
      let rng = Engine.Rng.create ~seed in
      let alive =
        Array.init n (fun _ ->
            not (Engine.Rng.chance rng (float_of_int loss_pct /. 100.0)))
      in
      (* Receiver side: arrivals scheduled on a real sim clock. *)
      let sim = Engine.Sim.create ~seed:1 () in
      let rcv =
        Tfrc.Receiver.create ~sim ~send_feedback:(fun _ -> ()) ()
      in
      Array.iteri
        (fun i ok ->
          if ok then
            Engine.Sim.post_at sim
              (rtt +. (float_of_int i *. gap))
              (fun () ->
                Tfrc.Receiver.on_data rcv
                  {
                    Packet.Header.seq = S.of_int i;
                    tstamp = float_of_int i *. gap;
                    rtt_estimate = rtt;
                    is_retransmit = false;
                    fwd_point = S.zero;
                  }
                  ~size:1500))
        alive;
      (* The receiver's feedback timer re-arms itself forever, so the
         run must be time-bounded. *)
      Engine.Sim.run ~until:(rtt +. (float_of_int n *. gap) +. 1.0) sim;
      (* Sender side: the same pattern as covers, one batch per RTT. *)
      let lr = LR.create () in
      let batch = ref [] in
      Array.iteri
        (fun i ok ->
          if ok then batch := cover ~gap i :: !batch;
          if (i + 1) mod 12 = 0 || i = n - 1 then begin
            feed lr (List.rev !batch);
            batch := []
          end)
        alive;
      let p_r = Tfrc.Receiver.loss_event_rate rcv in
      let p_s = LR.loss_event_rate lr in
      if p_r = 0.0 then p_s = 0.0
      else Float.abs (p_s -. p_r) /. p_r < 0.1)

let suite =
  [
    Alcotest.test_case "no loss" `Quick test_no_loss;
    Alcotest.test_case "hole detected" `Quick test_hole_detected;
    Alcotest.test_case "first interval seeded" `Quick
      test_first_interval_seeded;
    Alcotest.test_case "retx covers excluded" `Quick
      test_retransmitted_covers_excluded;
    Alcotest.test_case "batching invariant" `Quick
      test_batched_covers_equal_unbatched;
    Alcotest.test_case "matches receiver side" `Quick test_matches_receiver_side;
    QCheck_alcotest.to_alcotest prop_matches_full_receiver;
  ]
