(* Stats: summary, series, fairness, cost, table. *)

let test_summary_moments () =
  let s = Stats.Summary.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check int) "n" 8 s.Stats.Summary.n;
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.Stats.Summary.mean;
  Alcotest.(check (float 1e-6)) "sample sd" 2.13809 s.Stats.Summary.stddev;
  Alcotest.(check (float 1e-9)) "min" 2.0 s.Stats.Summary.min;
  Alcotest.(check (float 1e-9)) "max" 9.0 s.Stats.Summary.max

let test_summary_empty () =
  let s = Stats.Summary.of_list [] in
  Alcotest.(check int) "n" 0 s.Stats.Summary.n;
  Alcotest.(check bool) "nan mean" true (Float.is_nan s.Stats.Summary.mean)

let test_summary_single () =
  let s = Stats.Summary.of_list [ 3.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Stats.Summary.mean;
  Alcotest.(check (float 1e-9)) "sd 0" 0.0 s.Stats.Summary.stddev

let test_cov () =
  let s = Stats.Summary.of_list [ 1.0; 3.0 ] in
  Alcotest.(check bool) "cov" true
    (Float.abs (Stats.Summary.cov s -. (sqrt 2.0 /. 2.0)) < 1e-9)

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.Summary.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p50" 3.0 (Stats.Summary.percentile xs 0.5);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.Summary.percentile xs 1.0);
  Alcotest.(check (float 1e-9)) "p25 interpolates" 2.0
    (Stats.Summary.percentile xs 0.25)

let test_percentile_boundaries () =
  (* Out-of-range q and empty input must raise, not clamp. *)
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty raises" true
    (raises (fun () -> Stats.Summary.percentile [||] 0.5));
  Alcotest.(check bool) "q < 0 raises" true
    (raises (fun () -> Stats.Summary.percentile [| 1.0 |] (-0.01)));
  Alcotest.(check bool) "q > 1 raises" true
    (raises (fun () -> Stats.Summary.percentile [| 1.0 |] 1.01));
  (* A single sample is every quantile of itself. *)
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "single sample p%g" (100.0 *. q))
        7.0
        (Stats.Summary.percentile [| 7.0 |] q))
    [ 0.0; 0.25; 0.5; 1.0 ];
  (* Unsorted input: percentile sorts a copy and leaves it alone. *)
  let xs = [| 5.0; 1.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "median of unsorted" 3.0
    (Stats.Summary.percentile xs 0.5);
  Alcotest.(check (float 1e-9)) "input untouched" 5.0 xs.(0);
  (* Two samples: q interpolates the full span linearly. *)
  Alcotest.(check (float 1e-9)) "p75 of a pair" 3.5
    (Stats.Summary.percentile [| 2.0; 4.0 |] 0.75)

let test_series_empty () =
  let s = Stats.Series.create () in
  Alcotest.(check int) "count" 0 (Stats.Series.count s);
  Alcotest.(check int) "total" 0 (Stats.Series.total_bytes s);
  Alcotest.(check (float 1e-9)) "rate over empty" 0.0
    (Stats.Series.rate_bps s ~from_:0.0 ~until:10.0);
  Alcotest.(check int) "no interarrivals" 0
    (Array.length (Stats.Series.interarrival_times s));
  Alcotest.(check int) "windows all zero" 0
    (Array.fold_left
       (fun acc r -> acc + if r > 0.0 then 1 else 0)
       0
       (Stats.Series.windowed_rates_bps s ~from_:0.0 ~until:4.0 ~window:1.0))

let test_series_single_sample () =
  let s = Stats.Series.create () in
  Stats.Series.record s ~time:1.5 ~bytes:1000;
  Alcotest.(check (float 1e-9)) "rate counts the one event" 8000.0
    (Stats.Series.rate_bps s ~from_:1.0 ~until:2.0);
  (* Interval edges are [from_, until): the sample sits on the closed
     edge when from_ = its time, outside when until = its time. *)
  Alcotest.(check (float 1e-9)) "closed lower edge" 8000.0
    (Stats.Series.rate_bps s ~from_:1.5 ~until:2.5);
  Alcotest.(check (float 1e-9)) "open upper edge" 0.0
    (Stats.Series.rate_bps s ~from_:0.5 ~until:1.5);
  Alcotest.(check int) "one event, no gaps" 0
    (Array.length (Stats.Series.interarrival_times s));
  (* Degenerate interval: empty, not a division by zero. *)
  Alcotest.(check (float 1e-9)) "empty interval" 0.0
    (Stats.Series.rate_bps s ~from_:1.5 ~until:1.5)

let test_series_partial_window_discarded () =
  let s = Stats.Series.create () in
  List.iter
    (fun (t, b) -> Stats.Series.record s ~time:t ~bytes:b)
    [ (0.5, 100); (1.5, 200); (2.2, 400) ];
  (* [0, 2.5) with window 1.0: two full bins, the trailing half bin
     (holding the 400-byte event) is discarded. *)
  let w = Stats.Series.windowed_rates_bps s ~from_:0.0 ~until:2.5 ~window:1.0 in
  Alcotest.(check int) "two full bins" 2 (Array.length w);
  Alcotest.(check (float 1e-9)) "bin 0" 800.0 w.(0);
  Alcotest.(check (float 1e-9)) "bin 1" 1600.0 w.(1)

let test_histogram_empty () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  Alcotest.(check int) "count" 0 (Stats.Histogram.count h);
  Alcotest.(check (array int)) "all bins zero" [| 0; 0; 0; 0 |]
    (Stats.Histogram.bin_counts h);
  (* Render must not divide by the (zero) fullest bin. *)
  Alcotest.(check bool) "renders" true
    (String.length (Stats.Histogram.render h) > 0)

let test_histogram_single_sample () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:4.0 ~bins:4 in
  Stats.Histogram.add h 1.0;
  Alcotest.(check (array int)) "lands in its bin" [| 0; 1; 0; 0 |]
    (Stats.Histogram.bin_counts h);
  let bounds = Stats.Histogram.bin_bounds h in
  Alcotest.(check (float 1e-9)) "bin lo" 1.0 (fst bounds.(1));
  Alcotest.(check (float 1e-9)) "bin hi" 2.0 (snd bounds.(1))

let test_histogram_edge_samples () =
  (* Bins partition [lo, hi): lo lands in bin 0, hi (out of range, as
     is anything beyond) is folded into the last bin. *)
  let h = Stats.Histogram.create ~lo:0.0 ~hi:4.0 ~bins:4 in
  List.iter (Stats.Histogram.add h) [ 0.0; 4.0 ];
  Alcotest.(check (array int)) "edges" [| 1; 0; 0; 1 |]
    (Stats.Histogram.bin_counts h)

let test_series_rate () =
  let s = Stats.Series.create () in
  Stats.Series.record s ~time:1.0 ~bytes:1000;
  Stats.Series.record s ~time:2.0 ~bytes:1000;
  Stats.Series.record s ~time:3.0 ~bytes:1000;
  (* [1,3): 2000 bytes over 2 s = 8000 b/s *)
  Alcotest.(check (float 1e-9)) "rate" 8000.0
    (Stats.Series.rate_bps s ~from_:1.0 ~until:3.0);
  Alcotest.(check int) "total" 3000 (Stats.Series.total_bytes s);
  Alcotest.(check int) "count" 3 (Stats.Series.count s)

let test_series_windows () =
  let s = Stats.Series.create () in
  List.iter
    (fun (t, b) -> Stats.Series.record s ~time:t ~bytes:b)
    [ (0.1, 100); (0.9, 100); (1.5, 400) ];
  let w = Stats.Series.windowed_rates_bps s ~from_:0.0 ~until:2.0 ~window:1.0 in
  Alcotest.(check int) "two windows" 2 (Array.length w);
  Alcotest.(check (float 1e-9)) "w0" 1600.0 w.(0);
  Alcotest.(check (float 1e-9)) "w1" 3200.0 w.(1)

let test_series_interarrival () =
  let s = Stats.Series.create () in
  List.iter
    (fun t -> Stats.Series.record s ~time:t ~bytes:1)
    [ 1.0; 1.5; 2.5 ];
  Alcotest.(check (array (float 1e-9))) "gaps" [| 0.5; 1.0 |]
    (Stats.Series.interarrival_times s)

let test_jain () =
  Alcotest.(check (float 1e-9)) "equal shares" 1.0
    (Stats.Fairness.jain [| 3.0; 3.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "one hog" (1.0 /. 3.0)
    (Stats.Fairness.jain [| 9.0; 0.0; 0.0 |]);
  Alcotest.(check bool) "between" true
    (let j = Stats.Fairness.jain [| 4.0; 2.0 |] in
     j > 0.5 && j < 1.0)

let test_throughput_ratio () =
  Alcotest.(check (float 1e-9)) "ratio" 2.0
    (Stats.Fairness.throughput_ratio [| 4.0; 4.0 |] [| 2.0; 2.0 |])

let test_cost () =
  let c = Stats.Cost.create () in
  Stats.Cost.charge c "a";
  Stats.Cost.charge c ~ops:5 "a";
  Stats.Cost.charge c "b";
  Alcotest.(check int) "a" 6 (Stats.Cost.ops c "a");
  Alcotest.(check int) "b" 1 (Stats.Cost.ops c "b");
  Alcotest.(check int) "absent" 0 (Stats.Cost.ops c "zzz");
  Alcotest.(check int) "total" 7 (Stats.Cost.total_ops c);
  Stats.Cost.watermark c "mem" 10;
  Stats.Cost.watermark c "mem" 7;
  Stats.Cost.watermark c "mem" 12;
  Alcotest.(check int) "high water" 12 (Stats.Cost.high_water c "mem");
  Alcotest.(check (list (pair string int))) "counters sorted"
    [ ("a", 6); ("b", 1) ]
    (Stats.Cost.counters c)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  scan 0

let test_table_render () =
  let t =
    Stats.Table.create ~title:"T"
      ~columns:[ ("name", Stats.Table.Left); ("v", Stats.Table.Right) ]
  in
  Stats.Table.add_row t [ "x"; "1.00" ];
  Stats.Table.add_row t [ "longer"; "23.00" ];
  let out = Stats.Table.render t in
  Alcotest.(check bool) "has title" true (String.length out > 0 && out.[0] = 'T');
  Alcotest.(check bool) "contains row" true (contains out "longer");
  Alcotest.(check bool) "right-aligned number padded" true
    (contains out " 1.00 |")

let test_table_arity_checked () =
  let t =
    Stats.Table.create ~title:"T" ~columns:[ ("a", Stats.Table.Left) ]
  in
  Alcotest.(check bool) "arity mismatch rejected" true
    (try
       Stats.Table.add_row t [ "1"; "2" ];
       false
     with Invalid_argument _ -> true)

let test_cells () =
  Alcotest.(check string) "float" "1.23" (Stats.Table.cell_f 1.234);
  Alcotest.(check string) "decimals" "1.2340" (Stats.Table.cell_f ~decimals:4 1.234);
  Alcotest.(check string) "nan" "-" (Stats.Table.cell_f nan);
  Alcotest.(check string) "int" "42" (Stats.Table.cell_i 42)

let test_csv () =
  let t =
    Stats.Table.create ~title:"My, Title"
      ~columns:[ ("a", Stats.Table.Left); ("b,c", Stats.Table.Right) ]
  in
  Stats.Table.add_row t [ "plain"; "1.00" ];
  Stats.Table.add_row t [ "has,comma"; "say \"hi\"" ];
  let csv = Stats.Table.to_csv t in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check string) "title comment" "# My, Title" (List.nth lines 0);
  Alcotest.(check string) "header quoted" "a,\"b,c\"" (List.nth lines 1);
  Alcotest.(check string) "plain row" "plain,1.00" (List.nth lines 2);
  Alcotest.(check string) "quoted row" "\"has,comma\",\"say \"\"hi\"\"\""
    (List.nth lines 3)

let test_histogram_binning () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.9; 2.0; 9.9; 4.0; -3.0; 42.0 ];
  Alcotest.(check int) "count" 7 (Stats.Histogram.count h);
  (* bins: [0,2) [2,4) [4,6) [6,8) [8,10); out-of-range clamps. *)
  Alcotest.(check (array int)) "bin counts" [| 3; 1; 1; 0; 2 |]
    (Stats.Histogram.bin_counts h)

let test_histogram_of_samples () =
  let samples = Array.init 100 (fun i -> float_of_int i) in
  let h = Stats.Histogram.of_samples ~bins:10 samples in
  Alcotest.(check int) "all binned" 100 (Stats.Histogram.count h);
  Alcotest.(check (array int)) "uniform" (Array.make 10 10)
    (Stats.Histogram.bin_counts h);
  let r = Stats.Histogram.render h in
  Alcotest.(check int) "ten lines" 10
    (List.length (List.filter (fun s -> s <> "") (String.split_on_char '\n' r)))

(* Merge laws: shard accumulators folded together must equal the
   sequential accumulation — the property the parallel fan-out's
   per-domain stats rely on. *)

let series_of events =
  let s = Stats.Series.create () in
  List.iter (fun (t, b) -> Stats.Series.record s ~time:t ~bytes:b) events;
  s

let series_fingerprint s =
  ( Stats.Series.count s,
    Stats.Series.total_bytes s,
    Array.to_list (Stats.Series.interarrival_times s),
    Stats.Series.rate_bps s ~from_:0.0 ~until:100.0 )

let test_series_merge_basic () =
  let a = series_of [ (1.0, 10); (3.0, 30) ] in
  let b = series_of [ (2.0, 20); (4.0, 40) ] in
  let m = Stats.Series.merge a b in
  Alcotest.(check int) "count" 4 (Stats.Series.count m);
  Alcotest.(check int) "total" 100 (Stats.Series.total_bytes m);
  Alcotest.(check (array (float 1e-9)))
    "interleaved by time" [| 1.0; 1.0; 1.0 |]
    (Stats.Series.interarrival_times m);
  (* Inputs untouched. *)
  Alcotest.(check int) "a intact" 2 (Stats.Series.count a);
  Alcotest.(check int) "b intact" 2 (Stats.Series.count b)

let events_gen =
  (* Sorted event lists: Series.record requires non-decreasing time. *)
  QCheck.Gen.(
    list_size (int_bound 30)
      (pair (float_bound_exclusive 50.0) (int_bound 5000))
    |> map (fun evs ->
           List.sort (fun (t1, _) (t2, _) -> Float.compare t1 t2) evs))

let prop_series_merge_is_sequential =
  QCheck.Test.make ~name:"Series.merge shards = sequential accumulation"
    ~count:200
    (QCheck.make
       QCheck.Gen.(pair events_gen events_gen)
       ~print:
         QCheck.Print.(
           pair (list (pair float int)) (list (pair float int))))
    (fun (ea, eb) ->
      let merged = Stats.Series.merge (series_of ea) (series_of eb) in
      let sequential =
        series_of
          (List.stable_sort
             (fun (t1, _) (t2, _) -> Float.compare t1 t2)
             (ea @ eb))
      in
      series_fingerprint merged = series_fingerprint sequential)

let test_histogram_merge_basic () =
  let a = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  let b = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Stats.Histogram.add a) [ 1.0; 3.0 ];
  List.iter (Stats.Histogram.add b) [ 3.5; 9.0; -1.0 ];
  let m = Stats.Histogram.merge a b in
  Alcotest.(check int) "count" 5 (Stats.Histogram.count m);
  Alcotest.(check (array int)) "bin-wise sum" [| 2; 2; 0; 0; 1 |]
    (Stats.Histogram.bin_counts m);
  Alcotest.(check (array int)) "a intact" [| 1; 1; 0; 0; 0 |]
    (Stats.Histogram.bin_counts a)

let test_histogram_merge_mismatch () =
  let check_rejects msg a b =
    Alcotest.(check bool) msg true
      (try
         ignore (Stats.Histogram.merge a b);
         false
       with Invalid_argument _ -> true)
  in
  let base = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  check_rejects "bin count differs" base
    (Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:4);
  check_rejects "lo differs" base
    (Stats.Histogram.create ~lo:1.0 ~hi:10.0 ~bins:5);
  check_rejects "hi differs" base
    (Stats.Histogram.create ~lo:0.0 ~hi:9.0 ~bins:5)

let prop_histogram_merge_is_sequential =
  QCheck.Test.make ~name:"Histogram.merge shards = sequential accumulation"
    ~count:200
    QCheck.(
      pair
        (list (float_bound_inclusive 12.0))
        (list (float_bound_inclusive 12.0)))
    (fun (xs, ys) ->
      let shard samples =
        let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:7 in
        List.iter (Stats.Histogram.add h) samples;
        h
      in
      let merged = Stats.Histogram.merge (shard xs) (shard ys) in
      let sequential = shard (xs @ ys) in
      Stats.Histogram.bin_counts merged = Stats.Histogram.bin_counts sequential
      && Stats.Histogram.count merged = Stats.Histogram.count sequential)

let test_histogram_degenerate () =
  let h = Stats.Histogram.of_samples [| 5.0; 5.0; 5.0 |] in
  Alcotest.(check int) "count" 3 (Stats.Histogram.count h);
  Alcotest.(check bool) "empty input rejected" true
    (try
       ignore (Stats.Histogram.of_samples [||]);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "summary moments" `Quick test_summary_moments;
    Alcotest.test_case "csv export" `Quick test_csv;
    Alcotest.test_case "histogram binning" `Quick test_histogram_binning;
    Alcotest.test_case "histogram of_samples" `Quick test_histogram_of_samples;
    Alcotest.test_case "histogram degenerate" `Quick test_histogram_degenerate;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "summary single" `Quick test_summary_single;
    Alcotest.test_case "cov" `Quick test_cov;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile boundaries" `Quick
      test_percentile_boundaries;
    Alcotest.test_case "series empty" `Quick test_series_empty;
    Alcotest.test_case "series single sample" `Quick
      test_series_single_sample;
    Alcotest.test_case "series partial window" `Quick
      test_series_partial_window_discarded;
    Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram single sample" `Quick
      test_histogram_single_sample;
    Alcotest.test_case "histogram edge samples" `Quick
      test_histogram_edge_samples;
    Alcotest.test_case "series rate" `Quick test_series_rate;
    Alcotest.test_case "series windows" `Quick test_series_windows;
    Alcotest.test_case "series interarrival" `Quick test_series_interarrival;
    Alcotest.test_case "jain" `Quick test_jain;
    Alcotest.test_case "throughput ratio" `Quick test_throughput_ratio;
    Alcotest.test_case "cost" `Quick test_cost;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_arity_checked;
    Alcotest.test_case "cells" `Quick test_cells;
    Alcotest.test_case "series merge" `Quick test_series_merge_basic;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge_basic;
    Alcotest.test_case "histogram merge mismatch" `Quick
      test_histogram_merge_mismatch;
    QCheck_alcotest.to_alcotest prop_series_merge_is_sequential;
    QCheck_alcotest.to_alcotest prop_histogram_merge_is_sequential;
  ]
