(* Netsim.Red: average tracking and drop-probability regimes. *)

let rng () = Engine.Rng.create ~seed:41

let params ?(gentle = true) () =
  {
    Netsim.Red.min_th = 5.0;
    max_th = 15.0;
    max_p = 0.1;
    w_q = 0.2;  (* fast EWMA so tests converge quickly *)
    gentle;
    idle_pkt_time = 0.001;
  }

let test_below_min_never_drops () =
  let red = Netsim.Red.create (params ()) ~rng:(rng ()) in
  for i = 0 to 200 do
    match Netsim.Red.decide red ~now:(float_of_int i *. 0.001) ~qlen:2 with
    | `Drop -> Alcotest.fail "dropped below min_th"
    | `Accept -> ()
  done

let test_above_hard_limit_always_drops () =
  let red = Netsim.Red.create (params ()) ~rng:(rng ()) in
  (* Drive the average far above 2*max_th. *)
  let drops = ref 0 in
  for i = 0 to 300 do
    match Netsim.Red.decide red ~now:(float_of_int i *. 0.001) ~qlen:60 with
    | `Drop -> incr drops
    | `Accept -> ()
  done;
  Alcotest.(check bool) "eventually all dropped" true (!drops > 200);
  (* After saturation every arrival must drop. *)
  (match Netsim.Red.decide red ~now:1.0 ~qlen:60 with
  | `Drop -> ()
  | `Accept -> Alcotest.fail "accepted above hard limit")

let test_intermediate_drops_probabilistically () =
  let red = Netsim.Red.create (params ()) ~rng:(rng ()) in
  let drops = ref 0 and total = 2000 in
  for i = 0 to total - 1 do
    match Netsim.Red.decide red ~now:(float_of_int i *. 0.001) ~qlen:10 with
    | `Drop -> incr drops
    | `Accept -> ()
  done;
  let rate = float_of_int !drops /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "drop rate %f in (0.01, 0.35)" rate)
    true
    (rate > 0.01 && rate < 0.35)

let test_avg_tracks_queue () =
  let red = Netsim.Red.create (params ()) ~rng:(rng ()) in
  for i = 0 to 100 do
    ignore (Netsim.Red.decide red ~now:(float_of_int i *. 0.001) ~qlen:10)
  done;
  Alcotest.(check bool)
    "avg converges near 10" true
    (Float.abs (Netsim.Red.avg red -. 10.0) < 1.0)

let test_idle_decay () =
  let red = Netsim.Red.create (params ()) ~rng:(rng ()) in
  for i = 0 to 100 do
    ignore (Netsim.Red.decide red ~now:(float_of_int i *. 0.001) ~qlen:10)
  done;
  let before = Netsim.Red.avg red in
  Netsim.Red.note_idle_start red ~now:0.101;
  (* A long idle period with an empty queue must decay the average. *)
  ignore (Netsim.Red.decide red ~now:1.0 ~qlen:0);
  Alcotest.(check bool)
    "avg decayed during idle" true
    (Netsim.Red.avg red < before /. 2.0)

let test_non_gentle_cliff () =
  let red = Netsim.Red.create (params ~gentle:false ()) ~rng:(rng ()) in
  (* avg just above max_th must hard-drop without the gentle ramp. *)
  for i = 0 to 100 do
    ignore (Netsim.Red.decide red ~now:(float_of_int i *. 0.001) ~qlen:17)
  done;
  match Netsim.Red.decide red ~now:0.2 ~qlen:17 with
  | `Drop -> ()
  | `Accept ->
      (* The average may still be slightly below max_th; force it. *)
      for i = 0 to 200 do
        ignore (Netsim.Red.decide red ~now:(0.2 +. (float_of_int i *. 0.001)) ~qlen:30)
      done;
      (match Netsim.Red.decide red ~now:0.5 ~qlen:30 with
      | `Drop -> ()
      | `Accept -> Alcotest.fail "non-gentle RED accepted above max_th")

let test_drop_counter () =
  let red = Netsim.Red.create (params ()) ~rng:(rng ()) in
  for i = 0 to 300 do
    ignore (Netsim.Red.decide red ~now:(float_of_int i *. 0.001) ~qlen:60)
  done;
  Alcotest.(check bool) "drops counted" true (Netsim.Red.drops red > 0)

let suite =
  [
    Alcotest.test_case "no drops below min_th" `Quick test_below_min_never_drops;
    Alcotest.test_case "hard limit drops" `Quick test_above_hard_limit_always_drops;
    Alcotest.test_case "probabilistic region" `Quick
      test_intermediate_drops_probabilistically;
    Alcotest.test_case "avg tracks queue" `Quick test_avg_tracks_queue;
    Alcotest.test_case "idle decay" `Quick test_idle_decay;
    Alcotest.test_case "non-gentle cliff" `Quick test_non_gentle_cliff;
    Alcotest.test_case "drop counter" `Quick test_drop_counter;
  ]
