(* Cross-stack integration: the paper's qualitative claims as asserted
   tests (slow variants of the experiment suite with fixed seeds). *)

let test_af_assurance_qtp_vs_tcp () =
  (* The headline: at g = 3 Mb/s under heavy excess, QTP_AF collects at
     least 85% of g while TCP gets under 60%. *)
  let tcp =
    Experiments.Af_scenario.run ~seed:42 ~g_mbps:3.0
      ~proto:Experiments.Af_scenario.Tcp_newreno ()
  in
  let qtp =
    Experiments.Af_scenario.run ~seed:42 ~g_mbps:3.0
      ~proto:Experiments.Af_scenario.Qtp_af ()
  in
  let ratio r = r.Experiments.Af_scenario.achieved_wire_bps /. 3.0e6 in
  Alcotest.(check bool)
    (Printf.sprintf "TCP ratio %.2f < 0.6" (ratio tcp))
    true (ratio tcp < 0.6);
  Alcotest.(check bool)
    (Printf.sprintf "QTP_AF ratio %.2f > 0.85" (ratio qtp))
    true (ratio qtp > 0.85)

let test_receiver_load_shift () =
  (* QTP_light must at least halve per-packet receiver work and keep no
     loss-history state at the receiver. *)
  let run light =
    let sim, topo =
      Experiments.Common.lossy_path ~seed:7 ~rate_mbps:10.0
        ~loss:(Experiments.Common.bernoulli 0.02)
        ()
    in
    let cost_receiver = Stats.Cost.create () in
    let cost_sender = Stats.Cost.create () in
    let offer =
      if light then
        Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_none ] ()
      else Qtp.Profile.qtp_tfrc ()
    in
    let agreed = Qtp.Profile.agreed_exn offer (Qtp.Profile.anything ()) in
    let conn =
      Qtp.Connection.create ~sim
        ~endpoint:(Netsim.Topology.endpoint topo 0)
        ~cost_sender ~cost_receiver
        (Qtp.Connection.config ~initial_rtt:0.2 agreed)
    in
    Engine.Sim.run ~until:30.0 sim;
    let pkts = Stats.Series.count (Qtp.Connection.arrivals conn) in
    ( float_of_int (Stats.Cost.total_ops cost_receiver) /. float_of_int pkts,
      Stats.Cost.high_water cost_receiver "lh.entries",
      Stats.Cost.high_water cost_sender "lh.entries" )
  in
  let std_ops, std_mem, std_snd_mem = run false in
  let light_ops, light_mem, light_snd_mem = run true in
  Alcotest.(check bool)
    (Printf.sprintf "light %.2f ops/pkt < half of std %.2f" light_ops std_ops)
    true
    (light_ops < std_ops /. 2.0);
  Alcotest.(check bool) "std receiver holds history" true (std_mem > 0);
  Alcotest.(check int) "light receiver holds none" 0 light_mem;
  Alcotest.(check int) "std sender holds none" 0 std_snd_mem;
  Alcotest.(check bool) "light sender holds the history" true
    (light_snd_mem > 0)

let test_selfish_receiver_immunity () =
  let run ~light ~factor =
    let sim, topo =
      Experiments.Common.lossy_path ~seed:9 ~rate_mbps:10.0
        ~loss:(Experiments.Common.bernoulli 0.02)
        ()
    in
    let offer =
      if light then
        Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_none ] ()
      else Qtp.Profile.qtp_tfrc ()
    in
    let agreed = Qtp.Profile.agreed_exn offer (Qtp.Profile.anything ()) in
    let conn =
      Qtp.Connection.create ~sim
        ~endpoint:(Netsim.Topology.endpoint topo 0)
        (Qtp.Connection.config ~initial_rtt:0.2 ~selfish_p_factor:factor agreed)
    in
    Engine.Sim.run ~until:30.0 sim;
    Stats.Series.rate_bps (Qtp.Connection.arrivals conn) ~from_:5.0 ~until:30.0
  in
  let honest_std = run ~light:false ~factor:1.0 in
  let lying_std = run ~light:false ~factor:0.0 in
  let honest_light = run ~light:true ~factor:1.0 in
  let lying_light = run ~light:true ~factor:0.0 in
  Alcotest.(check bool)
    (Printf.sprintf "lie inflates standard plane (%.0f -> %.0f)" honest_std
       lying_std)
    true
    (lying_std > 3.0 *. honest_std);
  Alcotest.(check (float 1.0)) "light plane ignores the knob entirely"
    honest_light lying_light

let test_wireless_tfrc_beats_tcp () =
  let seed = 21 in
  let loss = 0.05 in
  let run_tfrc () =
    let sim, topo =
      Experiments.Common.lossy_path ~seed ~rate_mbps:5.0 ~delay:0.06
        ~loss:(fun rng -> Experiments.Common.gilbert ~loss ~burstiness:0.6 rng)
        ()
    in
    let agreed =
      Qtp.Profile.agreed_exn (Qtp.Profile.qtp_tfrc ()) (Qtp.Profile.anything ())
    in
    let conn =
      Qtp.Connection.create ~sim
        ~endpoint:(Netsim.Topology.endpoint topo 0)
        (Qtp.Connection.config ~initial_rtt:0.2 agreed)
    in
    Engine.Sim.run ~until:40.0 sim;
    Stats.Series.rate_bps (Qtp.Connection.arrivals conn) ~from_:5.0 ~until:40.0
  in
  let run_tcp () =
    let sim, topo =
      Experiments.Common.lossy_path ~seed ~rate_mbps:5.0 ~delay:0.06
        ~loss:(fun rng -> Experiments.Common.gilbert ~loss ~burstiness:0.6 rng)
        ()
    in
    let flow =
      Tcp.Flow.create ~sim ~endpoint:(Netsim.Topology.endpoint topo 0) ()
    in
    Engine.Sim.run ~until:40.0 sim;
    Tcp.Flow.goodput_bps flow ~from_:5.0 ~until:40.0
  in
  let tfrc = run_tfrc () and tcp = run_tcp () in
  Alcotest.(check bool)
    (Printf.sprintf "TFRC %.0f > TCP %.0f on bursty wireless" tfrc tcp)
    true (tfrc > tcp)

let test_smoothness_tfrc_vs_tcp () =
  let cov_tfrc, _ = Experiments.E3_smoothness.run_tfrc ~seed:42 ~loss:0.02 in
  let cov_tcp, _ = Experiments.E3_smoothness.run_tcp ~seed:42 ~loss:0.02 in
  Alcotest.(check bool)
    (Printf.sprintf "TFRC CoV %.3f < TCP CoV %.3f" cov_tfrc cov_tcp)
    true (cov_tfrc < cov_tcp)

let test_friendliness_band () =
  let tfrc, tcp = Experiments.E4_friendliness.run_one ~seed:42 ~n:4 in
  let ratio = Stats.Fairness.throughput_ratio tfrc tcp in
  (* "Reasonably fair" band used in the TFRC literature. *)
  Alcotest.(check bool)
    (Printf.sprintf "aggregate ratio %.2f in [0.4, 2.5]" ratio)
    true
    (ratio > 0.4 && ratio < 2.5);
  let jain = Stats.Fairness.jain (Array.append tfrc tcp) in
  Alcotest.(check bool)
    (Printf.sprintf "jain %.2f > 0.6" jain)
    true (jain > 0.6)

let test_estimator_fidelity_network () =
  (* Over a real simulated path (not just traces): sender-side p within
     2x of a standard receiver's p under the same seed/loss process. *)
  let run light =
    let sim, topo =
      Experiments.Common.lossy_path ~seed:33 ~rate_mbps:10.0
        ~loss:(Experiments.Common.bernoulli 0.03)
        ()
    in
    let offer =
      if light then
        Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_none ] ()
      else Qtp.Profile.qtp_tfrc ()
    in
    let agreed = Qtp.Profile.agreed_exn offer (Qtp.Profile.anything ()) in
    let conn =
      Qtp.Connection.create ~sim
        ~endpoint:(Netsim.Topology.endpoint topo 0)
        (Qtp.Connection.config ~initial_rtt:0.2 agreed)
    in
    Engine.Sim.run ~until:40.0 sim;
    Qtp.Connection.sender_loss_estimate conn
  in
  let p_std = run false and p_light = run true in
  Alcotest.(check bool)
    (Printf.sprintf "p_light %.4f within 2x of p_std %.4f" p_light p_std)
    true
    (p_light > p_std /. 2.0 && p_light < p_std *. 2.0)

let suite =
  [
    Alcotest.test_case "AF assurance: QTP_AF wins, TCP fails" `Slow
      test_af_assurance_qtp_vs_tcp;
    Alcotest.test_case "receiver load shift" `Slow test_receiver_load_shift;
    Alcotest.test_case "selfish receiver immunity" `Slow
      test_selfish_receiver_immunity;
    Alcotest.test_case "wireless: TFRC > TCP" `Slow test_wireless_tfrc_beats_tcp;
    Alcotest.test_case "smoothness: TFRC < TCP CoV" `Slow
      test_smoothness_tfrc_vs_tcp;
    Alcotest.test_case "friendliness band" `Slow test_friendliness_band;
    Alcotest.test_case "estimator fidelity over network" `Slow
      test_estimator_fidelity_network;
  ]
