(* Engine.Pool: submission-order results, stealing, exceptions,
   determinism across jobs counts. *)

module Pool = Engine.Pool

let test_map_order () =
  Pool.with_pool ~jobs:4 (fun p ->
      let r = Pool.map p (fun x -> x * x) (Array.init 100 Fun.id) in
      Alcotest.(check (array int))
        "squares in submission order"
        (Array.init 100 (fun i -> i * i))
        r)

let test_map_empty_and_single () =
  Pool.with_pool ~jobs:4 (fun p ->
      Alcotest.(check (array int)) "empty" [||] (Pool.map p succ [||]);
      Alcotest.(check (array int)) "single" [| 42 |] (Pool.map p succ [| 41 |]))

let test_jobs_one_is_sequential () =
  Pool.with_pool ~jobs:1 (fun p ->
      Alcotest.(check int) "jobs" 1 (Pool.jobs p);
      let order = ref [] in
      let r =
        Pool.map p
          (fun x ->
            order := x :: !order;
            x + 1)
          (Array.init 10 Fun.id)
      in
      Alcotest.(check (array int)) "results" (Array.init 10 succ) r;
      (* With one worker tasks run inline, in submission order. *)
      Alcotest.(check (list int))
        "execution order" (List.init 10 Fun.id) (List.rev !order))

let test_more_jobs_than_tasks () =
  Pool.with_pool ~jobs:8 (fun p ->
      let r = Pool.map p (fun x -> 2 * x) [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "all tasks ran once" [| 2; 4; 6 |] r)

(* Regression: when the batch is smaller than the pool, a worker's home
   index exceeds the batch's lane count and must fold onto a real lane
   instead of indexing out of bounds.  The tasks are slow enough that
   the spare domains wake while the batch is still live — the crash was
   a race, so several rounds tighten the repro. *)
let test_small_batch_busy_tasks () =
  Pool.with_pool ~jobs:8 (fun p ->
      for round = 1 to 5 do
        let r =
          Pool.map p
            (fun x ->
              let s = ref 0 in
              for i = 1 to 2_000_000 do
                s := !s + (i land x)
              done;
              !s)
            [| 1; 3; 7 |]
        in
        Alcotest.(check int)
          (Printf.sprintf "round %d: three results" round)
          3 (Array.length r)
      done)

let test_tabulate_and_map_list () =
  Pool.with_pool ~jobs:3 (fun p ->
      Alcotest.(check (array int))
        "tabulate" [| 0; 10; 20; 30 |]
        (Pool.tabulate p 4 (fun i -> 10 * i));
      Alcotest.(check (list string))
        "map_list keeps order" [ "a!"; "b!"; "c!" ]
        (Pool.map_list p (fun s -> s ^ "!") [ "a"; "b"; "c" ]))

let test_pool_reusable () =
  Pool.with_pool ~jobs:4 (fun p ->
      let a = Pool.map p succ (Array.init 50 Fun.id) in
      let b = Pool.map p pred (Array.init 50 Fun.id) in
      Alcotest.(check (array int)) "first batch" (Array.init 50 succ) a;
      Alcotest.(check (array int)) "second batch" (Array.init 50 pred) b)

let test_exception_lowest_index () =
  Pool.with_pool ~jobs:4 (fun p ->
      Alcotest.check_raises "lowest failing index wins" (Failure "boom-3")
        (fun () ->
          ignore
            (Pool.map p
               (fun i ->
                 if i = 3 || i >= 7 then
                   failwith (Printf.sprintf "boom-%d" i)
                 else i)
               (Array.init 12 Fun.id))))

(* Uneven task durations force lane stealing: the first lane carries
   almost all the work, so with 4 workers somebody must cross lanes for
   the batch to finish.  Correctness here is results-at-their-index. *)
let test_uneven_durations () =
  Pool.with_pool ~jobs:4 (fun p ->
      let spin_until_prime i =
        (* A little real work, heavier for small indices. *)
        let rounds = if i < 4 then 20_000 else 10 in
        let acc = ref 0 in
        for k = 1 to rounds do
          acc := (!acc + (k * i)) mod 1_000_003
        done;
        (i, !acc land 0)
      in
      let r = Pool.map p spin_until_prime (Array.init 64 Fun.id) in
      Array.iteri
        (fun i (j, z) ->
          Alcotest.(check int) "index preserved" i j;
          Alcotest.(check int) "payload" 0 z)
        r)

(* The determinism contract end-to-end: per-task streams come from
   Rng.derive keyed by index, so the fan-out result is a pure function
   of (seed, index) — identical at any jobs count. *)
let test_deterministic_across_jobs () =
  let run ~jobs =
    let root = Engine.Rng.create ~seed:2026 in
    Pool.with_pool ~jobs (fun p ->
        Pool.tabulate p 32 (fun i ->
            let rng = Engine.Rng.derive root ~key:i in
            let acc = ref 0L in
            for _ = 1 to 100 do
              acc := Int64.add !acc (Engine.Rng.bits64 rng)
            done;
            !acc))
  in
  let seq = run ~jobs:1 and par = run ~jobs:4 in
  Alcotest.(check (array int64)) "jobs 1 = jobs 4" seq par

let prop_map_is_array_map =
  QCheck.Test.make ~name:"map = Array.map at any jobs" ~count:50
    QCheck.(pair (int_range 1 6) (list small_int))
    (fun (jobs, xs) ->
      let xs = Array.of_list xs in
      let f x = (x * 31) + 7 in
      Pool.with_pool ~jobs (fun p -> Pool.map p f xs) = Array.map f xs)

let suite =
  [
    Alcotest.test_case "map preserves submission order" `Quick test_map_order;
    Alcotest.test_case "empty and single arrays" `Quick
      test_map_empty_and_single;
    Alcotest.test_case "jobs=1 runs inline sequentially" `Quick
      test_jobs_one_is_sequential;
    Alcotest.test_case "more jobs than tasks" `Quick test_more_jobs_than_tasks;
    Alcotest.test_case "small batch under a big pool" `Quick
      test_small_batch_busy_tasks;
    Alcotest.test_case "tabulate and map_list" `Quick
      test_tabulate_and_map_list;
    Alcotest.test_case "pool survives multiple batches" `Quick
      test_pool_reusable;
    Alcotest.test_case "lowest-index exception propagates" `Quick
      test_exception_lowest_index;
    Alcotest.test_case "uneven durations (stealing)" `Quick
      test_uneven_durations;
    Alcotest.test_case "derive-keyed fan-out deterministic" `Quick
      test_deterministic_across_jobs;
    QCheck_alcotest.to_alcotest prop_map_is_array_map;
  ]
