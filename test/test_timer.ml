(* Engine.Timer: arm/re-arm/stop semantics. *)

let test_fires () =
  let sim = Engine.Sim.create () in
  let fired = ref [] in
  let t = Engine.Timer.create sim ~on_expire:(fun () -> fired := Engine.Sim.now sim :: !fired) in
  Engine.Timer.start t ~after:2.0;
  Engine.Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "fired once at 2" [ 2.0 ] !fired

let test_restart_replaces () =
  let sim = Engine.Sim.create () in
  let fired = ref [] in
  let t =
    Engine.Timer.create sim ~on_expire:(fun () ->
        fired := Engine.Sim.now sim :: !fired)
  in
  Engine.Timer.start t ~after:2.0;
  ignore
    (Engine.Sim.schedule_at sim 1.0 (fun () -> Engine.Timer.start t ~after:5.0));
  Engine.Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "only the re-armed deadline fires" [ 6.0 ] !fired

let test_stop () =
  let sim = Engine.Sim.create () in
  let fired = ref false in
  let t = Engine.Timer.create sim ~on_expire:(fun () -> fired := true) in
  Engine.Timer.start t ~after:1.0;
  ignore (Engine.Sim.schedule_at sim 0.5 (fun () -> Engine.Timer.stop t));
  Engine.Sim.run sim;
  Alcotest.(check bool) "stopped" false !fired

let test_is_armed_and_deadline () =
  let sim = Engine.Sim.create () in
  let t = Engine.Timer.create sim ~on_expire:ignore in
  Alcotest.(check bool) "initially disarmed" false (Engine.Timer.is_armed t);
  Engine.Timer.start t ~after:3.0;
  Alcotest.(check bool) "armed" true (Engine.Timer.is_armed t);
  Alcotest.(check (option (float 1e-9))) "deadline" (Some 3.0) (Engine.Timer.deadline t);
  Engine.Sim.run sim;
  Alcotest.(check bool) "disarmed after fire" false (Engine.Timer.is_armed t)

let test_rearm_in_callback () =
  let sim = Engine.Sim.create () in
  let count = ref 0 in
  let t_holder = ref None in
  let t =
    Engine.Timer.create sim ~on_expire:(fun () ->
        incr count;
        if !count < 5 then
          Engine.Timer.start (Option.get !t_holder) ~after:1.0)
  in
  t_holder := Some t;
  Engine.Timer.start t ~after:1.0;
  Engine.Sim.run sim;
  Alcotest.(check int) "periodic restarts" 5 !count;
  Alcotest.(check (float 1e-9)) "time" 5.0 (Engine.Sim.now sim)

let suite =
  [
    Alcotest.test_case "fires once" `Quick test_fires;
    Alcotest.test_case "restart replaces deadline" `Quick test_restart_replaces;
    Alcotest.test_case "stop" `Quick test_stop;
    Alcotest.test_case "is_armed/deadline" `Quick test_is_armed_and_deadline;
    Alcotest.test_case "re-arm in callback" `Quick test_rearm_in_callback;
  ]
