(* Netsim.Topology.chain and Netsim.Tracer. *)

let frame ?(flow = 0) uid =
  Netsim.Frame.make ~uid ~flow_id:flow ~size:1000 ~born:0.0
    (Netsim.Frame.Raw uid)

let spec ?(rate = 1e6) ?(delay = 0.01) ?loss () =
  match loss with
  | None -> Netsim.Topology.spec ~rate_bps:rate ~delay ()
  | Some l -> Netsim.Topology.spec ~rate_bps:rate ~delay ~loss:l ()

let test_chain_traverses_all_hops () =
  let sim = Engine.Sim.create () in
  let topo =
    Netsim.Topology.chain ~sim ~n_flows:1
      ~hops:[ spec (); spec (); spec () ]
      ()
  in
  let ep = Netsim.Topology.endpoint topo 0 in
  let hops_seen = ref (-1) in
  ep.Netsim.Topology.on_receiver_rx (fun f -> hops_seen := f.Netsim.Frame.hops);
  ep.Netsim.Topology.to_receiver (frame 1);
  Engine.Sim.run sim;
  Alcotest.(check int) "three hops" 3 !hops_seen

let test_chain_delay_accumulates () =
  let sim = Engine.Sim.create () in
  let topo =
    Netsim.Topology.chain ~sim ~n_flows:1
      ~hops:[ spec ~delay:0.01 (); spec ~delay:0.02 () ]
      ()
  in
  let ep = Netsim.Topology.endpoint topo 0 in
  let at = ref 0.0 in
  ep.Netsim.Topology.on_receiver_rx (fun _ -> at := Engine.Sim.now sim);
  ep.Netsim.Topology.to_receiver (frame 1);
  Engine.Sim.run sim;
  (* 2 serialisations of 8 ms (1000 B at 1 Mb/s) + 30 ms propagation. *)
  Alcotest.(check (float 1e-6)) "arrival time" 0.046 !at

let test_chain_bottleneck_is_slowest () =
  let sim = Engine.Sim.create () in
  let topo =
    Netsim.Topology.chain ~sim ~n_flows:1
      ~hops:[ spec ~rate:1e7 (); spec ~rate:2e6 (); spec ~rate:5e6 () ]
      ()
  in
  Alcotest.(check (float 1.0)) "slowest hop" 2e6
    (Netsim.Link.rate_bps topo.Netsim.Topology.bottleneck)

let test_chain_rejects_empty () =
  let sim = Engine.Sim.create () in
  Alcotest.(check bool) "empty hops rejected" true
    (try
       ignore (Netsim.Topology.chain ~sim ~n_flows:1 ~hops:[] ());
       false
     with Invalid_argument _ -> true)

let test_chain_loss_compounds () =
  (* Two hops of 10% loss each: survival ~ 0.81. *)
  let sim = Engine.Sim.create ~seed:131 () in
  let rng = Engine.Sim.split_rng sim in
  let lossy () =
    spec ~rate:1e8
      ~loss:(fun () ->
        Netsim.Loss_model.bernoulli ~p:0.1 ~rng:(Engine.Rng.split rng))
      ()
  in
  let topo = Netsim.Topology.chain ~sim ~n_flows:1 ~hops:[ lossy (); lossy () ] () in
  let ep = Netsim.Topology.endpoint topo 0 in
  let got = ref 0 in
  ep.Netsim.Topology.on_receiver_rx (fun _ -> incr got);
  let n = 20000 in
  let rec send i =
    if i < n then begin
      ep.Netsim.Topology.to_receiver (frame i);
      ignore (Engine.Sim.schedule_after sim 1e-4 (fun () -> send (i + 1)))
    end
  in
  ignore (Engine.Sim.schedule_at sim 0.0 (fun () -> send 0));
  Engine.Sim.run sim;
  let survival = float_of_int !got /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "survival %f ~ 0.81" survival)
    true
    (Float.abs (survival -. 0.81) < 0.02)

let test_tracer_records_and_bounds () =
  let sim = Engine.Sim.create () in
  let tracer = Netsim.Tracer.create ~sim ~capacity:5 () in
  let sunk = ref 0 in
  let sink = Netsim.Tracer.tap tracer "probe" (fun _ -> incr sunk) in
  for i = 1 to 8 do
    sink (frame i)
  done;
  Alcotest.(check int) "all forwarded" 8 !sunk;
  Alcotest.(check int) "total observed" 8 (Netsim.Tracer.count tracer);
  let evs = Netsim.Tracer.events tracer in
  Alcotest.(check int) "bounded buffer" 5 (List.length evs);
  (match evs with
  | first :: _ ->
      Alcotest.(check int) "oldest kept is #4" 4 first.Netsim.Tracer.uid
  | [] -> Alcotest.fail "no events");
  Alcotest.(check int) "count_at" 5 (Netsim.Tracer.count_at tracer "probe");
  Netsim.Tracer.clear tracer;
  Alcotest.(check int) "cleared" 0 (List.length (Netsim.Tracer.events tracer))

let test_tracer_multi_point () =
  let sim = Engine.Sim.create () in
  let tracer = Netsim.Tracer.create ~sim () in
  let a = Netsim.Tracer.tap tracer "a" (fun _ -> ()) in
  let b = Netsim.Tracer.tap tracer "b" (fun _ -> ()) in
  a (frame 1);
  b (frame 2);
  a (frame 3);
  Alcotest.(check int) "a" 2 (Netsim.Tracer.count_at tracer "a");
  Alcotest.(check int) "b" 1 (Netsim.Tracer.count_at tracer "b");
  let s = Format.asprintf "%t" (fun fmt -> Netsim.Tracer.dump tracer fmt) in
  Alcotest.(check bool) "dump nonempty" true (String.length s > 10)

let test_parking_lot_paths () =
  let sim = Engine.Sim.create () in
  (* Three hops; flow 0 crosses all, flow 1 only hop 1, flow 2 hops 1-2. *)
  let topo =
    Netsim.Topology.parking_lot ~sim
      ~hops:[ spec (); spec (); spec () ]
      ~paths:[| (0, 3); (1, 2); (1, 3) |]
      ()
  in
  let hops_seen = Array.make 3 (-1) in
  Array.iteri
    (fun i (ep : Netsim.Topology.endpoint) ->
      ep.Netsim.Topology.on_receiver_rx (fun f ->
          hops_seen.(i) <- f.Netsim.Frame.hops))
    topo.Netsim.Topology.endpoints;
  Array.iteri
    (fun i (ep : Netsim.Topology.endpoint) ->
      ep.Netsim.Topology.to_receiver (frame ~flow:i (100 + i)))
    topo.Netsim.Topology.endpoints;
  Engine.Sim.run sim;
  Alcotest.(check (array int)) "hop counts per path" [| 3; 1; 2 |] hops_seen

let test_parking_lot_shared_middle_hop () =
  let sim = Engine.Sim.create () in
  let topo =
    Netsim.Topology.parking_lot ~sim
      ~hops:[ spec ~rate:2e6 (); spec ~rate:1e6 (); spec ~rate:2e6 () ]
      ~paths:[| (0, 3); (1, 2) |]
      ()
  in
  Array.iter
    (fun (ep : Netsim.Topology.endpoint) ->
      ep.Netsim.Topology.on_receiver_rx (fun _ -> ()))
    topo.Netsim.Topology.endpoints;
  Alcotest.(check (float 1.0)) "middle hop is the bottleneck" 1e6
    (Netsim.Link.rate_bps topo.Netsim.Topology.bottleneck);
  (topo.Netsim.Topology.endpoints.(0)).Netsim.Topology.to_receiver
    (frame ~flow:0 1);
  (topo.Netsim.Topology.endpoints.(1)).Netsim.Topology.to_receiver
    (frame ~flow:1 2);
  Engine.Sim.run sim;
  let st = Netsim.Link.stats topo.Netsim.Topology.bottleneck in
  Alcotest.(check int) "both crossed the shared hop" 2 st.Netsim.Link.delivered

let test_parking_lot_validates () =
  let sim = Engine.Sim.create () in
  Alcotest.(check bool) "bad range rejected" true
    (try
       ignore
         (Netsim.Topology.parking_lot ~sim ~hops:[ spec () ]
            ~paths:[| (0, 2) |] ());
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "parking lot paths" `Quick test_parking_lot_paths;
    Alcotest.test_case "parking lot shared hop" `Quick
      test_parking_lot_shared_middle_hop;
    Alcotest.test_case "parking lot validates" `Quick test_parking_lot_validates;
    Alcotest.test_case "chain traverses hops" `Quick
      test_chain_traverses_all_hops;
    Alcotest.test_case "chain delay accumulates" `Quick
      test_chain_delay_accumulates;
    Alcotest.test_case "chain bottleneck" `Quick test_chain_bottleneck_is_slowest;
    Alcotest.test_case "chain rejects empty" `Quick test_chain_rejects_empty;
    Alcotest.test_case "chain loss compounds" `Quick test_chain_loss_compounds;
    Alcotest.test_case "tracer bounds" `Quick test_tracer_records_and_bounds;
    Alcotest.test_case "tracer multi point" `Quick test_tracer_multi_point;
  ]
