(* Mobility: the degenerate-handover differential (a self-migration
   schedule must leave the canonical trace byte-identical under both
   event-queue backends), frame conservation through [`Drain]/[`Cut]
   migrations, campaign determinism across worker counts, and the
   draw-position independence of derived handover schedules. *)

module S = Fuzz.Scenario
module E = Fuzz.Exec
module D = Fuzz.Driver

(* --- degenerate handover: byte-identical traces ------------------- *)

(* Re-selecting the already active path is a complete no-op inside
   [Netsim.Topology.migrate_flow] — no severing, no trace event, no
   policy hook.  The only residue of such a schedule is the posted
   simulation events themselves, which shift event sequence numbers
   uniformly at setup time without reordering any ties, so the
   canonical trace must match the same scenario with no schedule at
   all, byte for byte. *)
let degenerate_pair ~seed =
  let sc = S.generate_in ~band:`Handover ~seed in
  match sc.S.handover with
  | None -> Alcotest.failf "seed %d: handover band without handover" seed
  | Some ho ->
      let self =
        List.map (fun (at, _, _) -> (at, 0, `Drain)) ho.S.ho_schedule
      in
      let with_ ho_schedule =
        { sc with S.handover = Some { ho with S.ho_schedule; ho_policy = `Keep } }
      in
      (with_ self, with_ [])

let trace_digest ~sched sc =
  let report, recorder =
    Trace.Recorder.with_recorder (fun () -> E.run ~sched sc)
  in
  if not (E.passed report) then
    Alcotest.failf "scenario failed under recorder:@\n%a" E.pp_report report;
  Trace.Export.digest recorder

let test_degenerate_identical () =
  List.iter
    (fun seed ->
      let self_mig, no_sched = degenerate_pair ~seed in
      List.iter
        (fun (sched, label) ->
          Alcotest.(check string)
            (Printf.sprintf "seed %d, %s backend" seed label)
            (trace_digest ~sched no_sched)
            (trace_digest ~sched self_mig))
        [ (`Wheel, "wheel"); (`Heap, "heap") ])
    [ 42; 77 ]

(* --- frame conservation through migrate_flow ---------------------- *)

let mk_frame i =
  Netsim.Frame.make
    ~uid:(Netsim.Frame.fresh_uid ())
    ~flow_id:0 ~size:1000 ~born:0.0 (Netsim.Frame.Raw i)

(* Drive raw frames through a two-path mobile while a migration fires
   mid-stream, counting injections, deliveries and drops over every
   link.  [`Drain] must lose nothing; [`Cut] may drop only what the
   severed path held, and every loss must surface through [on_drop] so
   the books balance exactly. *)
let run_conservation ~mode ~t_mig ~n_frames =
  let sim = Engine.Sim.create ~seed:7 () in
  (* Ample buffers: the post-migration path is slower, and a droptail
     overflow there would be a qdisc loss, not a migration loss. *)
  let ample () = Netsim.Qdisc.droptail ~capacity_pkts:2000 in
  let paths =
    [
      Netsim.Topology.spec ~qdisc:ample ~rate_bps:8e6 ~delay:0.005 ();
      Netsim.Topology.spec ~qdisc:ample ~rate_bps:2e6 ~delay:0.040 ();
    ]
  in
  let m = Netsim.Topology.mobile ~sim ~paths () in
  let net = Netsim.Topology.mobile_net m in
  let ep = Netsim.Topology.endpoint net 0 in
  let delivered = ref 0 and dropped = ref 0 in
  ep.Netsim.Topology.on_receiver_rx (fun _ -> incr delivered);
  List.iter
    (fun l -> Netsim.Link.on_drop l (fun _ -> incr dropped))
    net.Netsim.Topology.links;
  for i = 0 to n_frames - 1 do
    ignore
      (Engine.Sim.schedule_at sim
         (0.001 *. float_of_int i)
         (fun () -> ep.Netsim.Topology.to_receiver (mk_frame i)))
  done;
  Netsim.Topology.apply_schedule m [ (t_mig, 1, mode) ];
  Engine.Sim.run ~until:10.0 sim;
  (!delivered, !dropped)

let prop_conservation =
  QCheck.Test.make ~name:"migrate_flow conserves frames" ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Engine.Rng.create ~seed in
      let n_frames = 80 + Engine.Rng.int rng 120 in
      (* Inside the injection window, so traffic straddles the move. *)
      let t_mig = 0.01 +. Engine.Rng.float rng (0.001 *. float_of_int n_frames)
      in
      let d_del, d_drop = run_conservation ~mode:`Drain ~t_mig ~n_frames in
      let c_del, c_drop = run_conservation ~mode:`Cut ~t_mig ~n_frames in
      (* Drain: make-before-break loses nothing. *)
      d_del = n_frames && d_drop = 0
      (* Cut: every frame is either delivered or accounted as dropped. *)
      && c_del + c_drop = n_frames)

let test_cut_drops_inflight () =
  (* At 8 Mb/s a 1000-byte frame serialises in 1 ms, so injecting every
     millisecond keeps the old path busy; severing it mid-stream must
     drop at least the frame on the wire — and the loss must be visible
     through [on_drop]. *)
  let delivered, dropped =
    run_conservation ~mode:`Cut ~t_mig:0.050 ~n_frames:150
  in
  Alcotest.(check bool) "cut drops in-flight frames" true (dropped > 0);
  Alcotest.(check int) "books balance" 150 (delivered + dropped)

(* --- campaign determinism across worker counts -------------------- *)

let test_jobs_determinism () =
  let seeds = [ 601; 602; 603 ] in
  let digests jobs =
    let acc = ref [] in
    let soak =
      D.run_seeds ~band:`Handover ~jobs
        ~progress:(fun seed r -> acc := (seed, D.digest r) :: !acc)
        seeds
    in
    List.iter
      (fun (f : D.found) ->
        Alcotest.failf "handover seed failed:@\n%a" E.pp_report f.D.report)
      soak.D.found;
    List.rev !acc
  in
  Alcotest.(check (list (pair int string)))
    "report digests identical at --jobs 1 and 4" (digests 1) (digests 4)

(* --- derived schedules are draw-position independent -------------- *)

(* The generator draws handover times from
   [Rng.derive rng ~key:(0x484f lxor seed)], so the schedule depends
   only on the creation seed and the key — never on how many draws the
   base generator consumed first.  This is what lets new bands extend
   the draw sequence without perturbing committed scenarios. *)
let prop_derive_position_independent =
  QCheck.Test.make ~name:"Rng.derive is independent of parent draw position"
    ~count:200
    QCheck.(pair (int_bound 1_000_000) (int_bound 64))
    (fun (seed, skew) ->
      let a = Engine.Rng.create ~seed in
      let b = Engine.Rng.create ~seed in
      for _ = 1 to skew do
        ignore (Engine.Rng.bits64 b)
      done;
      let key = 0x484f lxor seed in
      let da = Engine.Rng.derive a ~key in
      let db = Engine.Rng.derive b ~key in
      let ok = ref true in
      for _ = 1 to 16 do
        if Engine.Rng.bits64 da <> Engine.Rng.bits64 db then ok := false
      done;
      !ok)

let prop_handover_band_wellformed =
  QCheck.Test.make
    ~name:"handover band is reproducible and schedules are well-formed"
    ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let sc = S.generate_in ~band:`Handover ~seed in
      S.equal sc (S.generate_in ~band:`Handover ~seed)
      &&
      match sc.S.handover with
      | None -> false
      | Some ho ->
          let n = List.length ho.S.ho_links in
          let k = List.length ho.S.ho_schedule in
          let times = List.map (fun (at, _, _) -> at) ho.S.ho_schedule in
          n = 3
          && k >= 2 && k <= 4
          && List.sort compare times = times
          && List.for_all
               (fun at ->
                 at >= 0.15 *. sc.S.duration && at <= 0.85 *. sc.S.duration)
               times
          && List.for_all
               (fun (_, target, _) -> target >= 0 && target < n)
               ho.S.ho_schedule)

let suite =
  [
    Alcotest.test_case "degenerate schedule leaves trace byte-identical"
      `Quick test_degenerate_identical;
    QCheck_alcotest.to_alcotest prop_conservation;
    Alcotest.test_case "cut severs in-flight frames, fully accounted" `Quick
      test_cut_drops_inflight;
    Alcotest.test_case "handover campaign digests across jobs" `Slow
      test_jobs_determinism;
    QCheck_alcotest.to_alcotest prop_derive_position_independent;
    QCheck_alcotest.to_alcotest prop_handover_band_wellformed;
  ]
