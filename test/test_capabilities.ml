(* Qtp.Capabilities: negotiation semantics and codec. *)

module C = Qtp.Capabilities

let offer ?(planes = [ C.Standard ]) ?(rel = [ C.R_full ]) ?(g = 0.0)
    ?(pmr = 3) ?(pdl = 0.5) ?(ecn = false) () =
  {
    C.planes;
    reliability = rel;
    qos_target_bps = g;
    partial_max_retx = pmr;
    partial_deadline = pdl;
    ecn;
  }

let test_negotiate_prefers_initiator_order () =
  let i = offer ~planes:[ C.Light; C.Standard ] ~rel:[ C.R_partial; C.R_full ] () in
  let r = offer ~planes:[ C.Standard; C.Light ] ~rel:[ C.R_full; C.R_partial ] () in
  match C.negotiate ~initiator:i ~responder:r with
  | Ok a ->
      Alcotest.(check bool) "initiator plane preference wins" true
        (a.C.plane = C.Light);
      Alcotest.(check bool) "initiator reliability preference wins" true
        (a.C.mode = C.R_partial)
  | Error e -> Alcotest.fail e

let test_negotiate_no_common_plane () =
  let i = offer ~planes:[ C.Standard ] () in
  let r = offer ~planes:[ C.Light ] () in
  match C.negotiate ~initiator:i ~responder:r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected failure"

let test_negotiate_no_common_reliability () =
  let i = offer ~rel:[ C.R_full ] () in
  let r = offer ~rel:[ C.R_none ] () in
  match C.negotiate ~initiator:i ~responder:r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected failure"

let test_qos_target_capping () =
  let check ig rg expect =
    let i = offer ~g:ig () and r = offer ~g:rg () in
    match C.negotiate ~initiator:i ~responder:r with
    | Ok a -> Alcotest.(check (float 1e-9)) "capped" expect a.C.target_bps
    | Error e -> Alcotest.fail e
  in
  check 2e6 0.0 2e6;
  (* responder has no opinion *)
  check 2e6 1e6 1e6;
  (* responder caps *)
  check 1e6 2e6 1e6 (* responder cannot raise *)

let test_partial_params_strictest () =
  let i = offer ~pmr:5 ~pdl:1.0 () and r = offer ~pmr:2 ~pdl:2.0 () in
  match C.negotiate ~initiator:i ~responder:r with
  | Ok a ->
      Alcotest.(check int) "min retx" 2 a.C.max_retx;
      Alcotest.(check (float 1e-9)) "min deadline" 1.0 a.C.deadline
  | Error e -> Alcotest.fail e

let test_offer_codec_roundtrip () =
  let o =
    offer
      ~planes:[ C.Light; C.Standard ]
      ~rel:[ C.R_none; C.R_partial; C.R_full ]
      ~g:1.5e6 ~pmr:7 ~pdl:0.25 ()
  in
  match C.decode_offer (C.encode_offer o) with
  | Ok o' -> Alcotest.(check bool) "round trip" true (C.equal_offer o o')
  | Error e -> Alcotest.fail e

let test_agreed_codec_roundtrip () =
  let a =
    {
      C.plane = C.Light;
      mode = C.R_partial;
      target_bps = 3.0e6;
      max_retx = 4;
      deadline = 0.125;
      use_ecn = true;
    }
  in
  match C.decode_agreed (C.encode_agreed a) with
  | Ok a' -> Alcotest.(check bool) "round trip" true (C.equal_agreed a a')
  | Error e -> Alcotest.fail e

let test_decode_garbage () =
  (match C.decode_offer "not a capability string" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  (match C.decode_offer "qtp1-offer;planes=warp" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad plane accepted");
  match C.decode_agreed (C.encode_offer (offer ())) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "offer decoded as agreed"

let test_to_policy () =
  let base =
    {
      C.plane = C.Standard;
      mode = C.R_none;
      target_bps = 0.0;
      max_retx = 2;
      deadline = 0.3;
      use_ecn = false;
    }
  in
  Alcotest.(check bool) "none" true
    (C.to_policy base = Sack.Reliability.Unreliable);
  Alcotest.(check bool) "full" true
    (C.to_policy { base with C.mode = C.R_full } = Sack.Reliability.Full);
  match C.to_policy { base with C.mode = C.R_partial } with
  | Sack.Reliability.Partial { max_retx; deadline } ->
      Alcotest.(check int) "retx param" 2 max_retx;
      Alcotest.(check (float 1e-9)) "deadline param" 0.3 deadline
  | _ -> Alcotest.fail "expected partial"

let gen_offer =
  let open QCheck.Gen in
  let plane = oneofl [ C.Standard; C.Light ] in
  let mode = oneofl [ C.R_none; C.R_partial; C.R_full ] in
  let dedup l = List.sort_uniq Stdlib.compare l in
  map
    (fun (((planes, rels), ecn), (g, pmr, pdl)) ->
      {
        C.planes = dedup (List.filteri (fun i _ -> i < 2) planes);
        reliability = dedup (List.filteri (fun i _ -> i < 3) rels);
        qos_target_bps = Float.abs g;
        partial_max_retx = pmr;
        partial_deadline = Float.abs pdl;
        ecn;
      })
    (pair
       (pair
          (pair (list_size (int_range 1 2) plane)
             (list_size (int_range 1 3) mode))
          bool)
       (triple (float_bound_exclusive 1e7) (int_bound 10)
          (float_bound_exclusive 10.0)))

let prop_offer_roundtrip =
  QCheck.Test.make ~name:"offer codec round-trips" ~count:300
    (QCheck.make gen_offer)
    (fun o ->
      match C.decode_offer (C.encode_offer o) with
      | Ok o' -> C.equal_offer o o'
      | Error _ -> false)

let prop_negotiation_sound =
  QCheck.Test.make ~name:"negotiated result is within both offers" ~count:300
    (QCheck.make QCheck.Gen.(pair gen_offer gen_offer))
    (fun (i, r) ->
      match C.negotiate ~initiator:i ~responder:r with
      | Error _ ->
          (* Must be a genuine incompatibility. *)
          not
            (List.exists (fun p -> List.mem p r.C.planes) i.C.planes
            && List.exists (fun m -> List.mem m r.C.reliability) i.C.reliability)
      | Ok a ->
          List.mem a.C.plane i.C.planes
          && List.mem a.C.plane r.C.planes
          && List.mem a.C.mode i.C.reliability
          && List.mem a.C.mode r.C.reliability
          && a.C.target_bps <= i.C.qos_target_bps)

let suite =
  [
    Alcotest.test_case "initiator preference" `Quick
      test_negotiate_prefers_initiator_order;
    Alcotest.test_case "no common plane" `Quick test_negotiate_no_common_plane;
    Alcotest.test_case "no common reliability" `Quick
      test_negotiate_no_common_reliability;
    Alcotest.test_case "qos capping" `Quick test_qos_target_capping;
    Alcotest.test_case "partial strictest" `Quick test_partial_params_strictest;
    Alcotest.test_case "offer codec" `Quick test_offer_codec_roundtrip;
    Alcotest.test_case "agreed codec" `Quick test_agreed_codec_roundtrip;
    Alcotest.test_case "garbage rejected" `Quick test_decode_garbage;
    Alcotest.test_case "to_policy" `Quick test_to_policy;
    QCheck_alcotest.to_alcotest prop_offer_roundtrip;
    QCheck_alcotest.to_alcotest prop_negotiation_sound;
  ]
