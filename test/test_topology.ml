(* Netsim.Topology and Router/Marker: routing, marking, plumbing. *)

let frame ?(flow = 0) ?(size = 1000) uid =
  Netsim.Frame.make ~uid ~flow_id:flow ~size ~born:0.0 (Netsim.Frame.Raw uid)

let test_router_routes_by_flow () =
  let r = Netsim.Router.create () in
  let a = ref 0 and b = ref 0 in
  Netsim.Router.add_route r ~flow_id:1 (fun _ -> incr a);
  Netsim.Router.add_route r ~flow_id:2 (fun _ -> incr b);
  Netsim.Router.forward r (frame ~flow:1 1);
  Netsim.Router.forward r (frame ~flow:2 2);
  Netsim.Router.forward r (frame ~flow:1 3);
  Alcotest.(check int) "flow 1" 2 !a;
  Alcotest.(check int) "flow 2" 1 !b

let test_router_default_and_unroutable () =
  let r = Netsim.Router.create () in
  Netsim.Router.forward r (frame ~flow:9 1);
  Alcotest.(check int) "unroutable counted" 1 (Netsim.Router.unroutable r);
  let d = ref 0 in
  Netsim.Router.set_default r (fun _ -> incr d);
  Netsim.Router.forward r (frame ~flow:9 2);
  Alcotest.(check int) "default used" 1 !d;
  Alcotest.(check int) "no new unroutable" 1 (Netsim.Router.unroutable r)

let test_marker_colours () =
  let sim = Engine.Sim.create () in
  (* 0.8 Mb/s committed, 2000 B burst: the first two 1000 B packets are
     green, an immediate third is red. *)
  let m = Netsim.Marker.create ~sim ~committed_rate_bps:8.0e5 ~burst:2000 in
  let f1 = frame 1 and f2 = frame 2 and f3 = frame 3 in
  Netsim.Marker.mark m f1;
  Netsim.Marker.mark m f2;
  Netsim.Marker.mark m f3;
  Alcotest.(check bool) "f1 green" true
    (Netsim.Mark.equal f1.Netsim.Frame.mark Netsim.Mark.Green);
  Alcotest.(check bool) "f2 green" true
    (Netsim.Mark.equal f2.Netsim.Frame.mark Netsim.Mark.Green);
  Alcotest.(check bool) "f3 red" true
    (Netsim.Mark.equal f3.Netsim.Frame.mark Netsim.Mark.Red);
  Alcotest.(check int) "green count" 2 (Netsim.Marker.green_count m);
  Alcotest.(check int) "red count" 1 (Netsim.Marker.red_count m)

let test_duplex_path_round_trip () =
  let sim = Engine.Sim.create () in
  let forward = Netsim.Topology.spec ~rate_bps:1e6 ~delay:0.01 () in
  let topo = Netsim.Topology.duplex_path ~sim ~forward () in
  let ep = Netsim.Topology.endpoint topo 0 in
  let got_fwd = ref false and got_rev = ref false in
  ep.Netsim.Topology.on_receiver_rx (fun _ ->
      got_fwd := true;
      ep.Netsim.Topology.to_sender (frame 2));
  ep.Netsim.Topology.on_sender_rx (fun _ -> got_rev := true);
  ep.Netsim.Topology.to_receiver (frame 1);
  Engine.Sim.run sim;
  Alcotest.(check bool) "forward delivered" true !got_fwd;
  Alcotest.(check bool) "reverse delivered" true !got_rev

let test_dumbbell_isolates_flows () =
  let sim = Engine.Sim.create () in
  let bottleneck = Netsim.Topology.spec ~rate_bps:1e7 ~delay:0.01 () in
  let topo = Netsim.Topology.dumbbell ~sim ~n_flows:3 ~bottleneck () in
  let hits = Array.make 3 0 in
  Array.iteri
    (fun i ep ->
      ep.Netsim.Topology.on_receiver_rx (fun _ -> hits.(i) <- hits.(i) + 1))
    topo.Netsim.Topology.endpoints;
  (topo.Netsim.Topology.endpoints.(0)).Netsim.Topology.to_receiver
    (frame ~flow:0 1);
  (topo.Netsim.Topology.endpoints.(2)).Netsim.Topology.to_receiver
    (frame ~flow:2 2);
  (topo.Netsim.Topology.endpoints.(2)).Netsim.Topology.to_receiver
    (frame ~flow:2 3);
  Engine.Sim.run sim;
  Alcotest.(check (array int)) "per-flow delivery" [| 1; 0; 2 |] hits

let test_dumbbell_shares_bottleneck () =
  let sim = Engine.Sim.create () in
  let bottleneck = Netsim.Topology.spec ~rate_bps:1e6 ~delay:0.01 () in
  let topo = Netsim.Topology.dumbbell ~sim ~n_flows:2 ~bottleneck () in
  Array.iter
    (fun (ep : Netsim.Topology.endpoint) ->
      ep.Netsim.Topology.on_receiver_rx (fun _ -> ()))
    topo.Netsim.Topology.endpoints;
  (topo.Netsim.Topology.endpoints.(0)).Netsim.Topology.to_receiver
    (frame ~flow:0 1);
  (topo.Netsim.Topology.endpoints.(1)).Netsim.Topology.to_receiver
    (frame ~flow:1 2);
  Engine.Sim.run sim;
  let st = Netsim.Link.stats topo.Netsim.Topology.bottleneck in
  Alcotest.(check int) "both crossed the bottleneck" 2
    st.Netsim.Link.delivered

let test_dumbbell_markers () =
  let sim = Engine.Sim.create () in
  let bottleneck = Netsim.Topology.spec ~rate_bps:1e7 ~delay:0.01 () in
  let topo =
    Netsim.Topology.dumbbell ~sim ~n_flows:2 ~bottleneck
      ~committed_rates:[| 1e6; 0.0 |] ()
  in
  let ep0 = Netsim.Topology.endpoint topo 0 in
  let ep1 = Netsim.Topology.endpoint topo 1 in
  Alcotest.(check bool) "flow 0 has marker" true
    (ep0.Netsim.Topology.marker <> None);
  Alcotest.(check bool) "flow 1 has none" true
    (ep1.Netsim.Topology.marker = None);
  let seen_mark = ref Netsim.Mark.Best_effort in
  ep0.Netsim.Topology.on_receiver_rx (fun f ->
      seen_mark := f.Netsim.Frame.mark);
  ep0.Netsim.Topology.to_receiver (frame ~flow:0 1);
  Engine.Sim.run sim;
  Alcotest.(check bool) "in-profile marked green" true
    (Netsim.Mark.equal !seen_mark Netsim.Mark.Green)

let suite =
  [
    Alcotest.test_case "router by flow" `Quick test_router_routes_by_flow;
    Alcotest.test_case "router default" `Quick test_router_default_and_unroutable;
    Alcotest.test_case "marker colours" `Quick test_marker_colours;
    Alcotest.test_case "duplex round trip" `Quick test_duplex_path_round_trip;
    Alcotest.test_case "dumbbell isolates flows" `Quick
      test_dumbbell_isolates_flows;
    Alcotest.test_case "dumbbell shares bottleneck" `Quick
      test_dumbbell_shares_bottleneck;
    Alcotest.test_case "dumbbell markers" `Quick test_dumbbell_markers;
  ]
