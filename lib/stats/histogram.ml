type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins < 1 then invalid_arg "Histogram.create: bins < 1";
  if not (lo < hi) then invalid_arg "Histogram.create: lo >= hi";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let bin_index t x =
  let bins = Array.length t.counts in
  let raw =
    int_of_float (float_of_int bins *. (x -. t.lo) /. (t.hi -. t.lo))
  in
  Stdlib.max 0 (Stdlib.min (bins - 1) raw)

let add t x =
  t.counts.(bin_index t x) <- t.counts.(bin_index t x) + 1;
  t.total <- t.total + 1

let of_samples ?(bins = 20) samples =
  if Array.length samples = 0 then invalid_arg "Histogram.of_samples: empty";
  let lo = Array.fold_left Float.min samples.(0) samples in
  let hi = Array.fold_left Float.max samples.(0) samples in
  let lo, hi = if lo = hi then (lo -. 0.5, hi +. 0.5) else (lo, hi) in
  (* Widen the top edge so the maximum falls inside the last bin. *)
  let hi = hi +. ((hi -. lo) *. 1e-9) in
  let t = create ~lo ~hi ~bins in
  Array.iter (add t) samples;
  t

let merge a b =
  if
    Array.length a.counts <> Array.length b.counts
    || not (Float.equal a.lo b.lo)
    || not (Float.equal a.hi b.hi)
  then invalid_arg "Histogram.merge: incompatible bounds or bin counts";
  let t = create ~lo:a.lo ~hi:a.hi ~bins:(Array.length a.counts) in
  Array.iteri (fun i c -> t.counts.(i) <- c + b.counts.(i)) a.counts;
  t.total <- a.total + b.total;
  t

let count t = t.total

let bin_counts t = Array.copy t.counts

let bin_bounds t =
  let bins = Array.length t.counts in
  let w = (t.hi -. t.lo) /. float_of_int bins in
  Array.init bins (fun i ->
      (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w)))

let render ?(width = 40) t =
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  let bounds = bin_bounds t in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i c ->
      let lo, hi = bounds.(i) in
      let bar_len = c * width / peak in
      Buffer.add_string buf
        (Printf.sprintf "[%10.4g, %10.4g) %6d %s\n" lo hi c
           (String.make bar_len '#')))
    t.counts;
  Buffer.contents buf
