let jain xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Fairness.jain: empty";
  let sum = Array.fold_left ( +. ) 0.0 xs in
  let sumsq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
  if Float.equal sumsq 0.0 then 1.0
  else sum *. sum /. (float_of_int n *. sumsq)

let throughput_ratio a b =
  let mean xs =
    if Array.length xs = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)
  in
  let mb = mean b in
  if Float.equal mb 0.0 then infinity else mean a /. mb
