type align = Left | Right

type t = {
  title : string;
  columns : (string * align) list;
  mutable rows : string list list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let cell_f ?(decimals = 2) v =
  if Float.is_nan v then "-" else Printf.sprintf "%.*f" decimals v

let cell_i = string_of_int

let render t =
  let rows = List.rev t.rows in
  let headers = List.map fst t.columns in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let pad align width s =
    let gap = width - String.length s in
    if gap <= 0 then s
    else
      match align with
      | Left -> s ^ String.make gap ' '
      | Right -> String.make gap ' ' ^ s
  in
  let fmt_row cells =
    let aligned =
      List.mapi
        (fun i c ->
          let _, align = List.nth t.columns i in
          pad align (List.nth widths i) c)
        cells
    in
    "| " ^ String.concat " | " aligned ^ " |"
  in
  let rule =
    "+"
    ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (fmt_row headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (fmt_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf rule;
  Buffer.contents buf

let print t = print_endline (render t)

let csv_cell s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("# " ^ t.title ^ "\n");
  Buffer.add_string buf
    (String.concat "," (List.map (fun (h, _) -> csv_cell h) t.columns));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map csv_cell row));
      Buffer.add_char buf '\n')
    (List.rev t.rows);
  Buffer.contents buf
