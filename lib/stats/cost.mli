(** Abstract processing-cost model.

    The paper's QTP_light claim is about *algorithmic* receiver load:
    the RFC 3448 receiver maintains the loss-event history and
    periodically recomputes the average loss interval (work linear in
    the history), while the light receiver only flips bits in a
    reception map.  We expose that difference by charging named
    operation counts at each step; experiments report totals and
    per-packet averages.

    Counters are plain name-keyed integers; memory watermarks track
    the largest live size of a named structure. *)

type t

val create : unit -> t

val charge : t -> ?ops:int -> string -> unit
(** Add [ops] (default 1) units to the named counter. *)

val watermark : t -> string -> int -> unit
(** Record the current size of a named structure; keeps the max. *)

val ops : t -> string -> int
(** Total of one counter (0 if never charged). *)

val total_ops : t -> int
(** Sum across all counters. *)

val high_water : t -> string -> int

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val watermarks : t -> (string * int) list
