(** Inter-flow fairness metrics. *)

val jain : float array -> float
(** Jain's fairness index [(sum x)^2 / (n * sum x^2)], in [\[1/n, 1\]];
    1 = perfectly fair.  Raises [Invalid_argument] on empty input. *)

val throughput_ratio : float array -> float array -> float
(** Mean aggregate of group A over mean aggregate of group B — the
    classic "TCP-friendliness ratio" (1.0 = friendly). *)
