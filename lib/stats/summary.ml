type t = { n : int; mean : float; stddev : float; min : float; max : float }

let of_array xs =
  let n = Array.length xs in
  if n = 0 then { n = 0; mean = nan; stddev = nan; min = nan; max = nan }
  else begin
    let sum = Array.fold_left ( +. ) 0.0 xs in
    let mean = sum /. float_of_int n in
    let sq = Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs in
    let stddev = if n < 2 then 0.0 else sqrt (sq /. float_of_int (n - 1)) in
    let min = Array.fold_left Float.min xs.(0) xs in
    let max = Array.fold_left Float.max xs.(0) xs in
    { n; mean; stddev; min; max }
  end

let of_list xs = of_array (Array.of_list xs)

let cov t = if Float.equal t.mean 0.0 then nan else t.stddev /. t.mean

let percentile xs q =
  if Array.length xs = 0 then invalid_arg "Summary.percentile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Summary.percentile: q out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.n t.mean
    t.stddev t.min t.max
