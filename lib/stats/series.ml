type t = {
  mutable times : float array;
  mutable bytes : int array;
  mutable len : int;
  mutable total : int;
}

let create () = { times = [||]; bytes = [||]; len = 0; total = 0 }

let ensure t =
  if t.len >= Array.length t.times then begin
    let cap = Stdlib.max 64 (2 * Array.length t.times) in
    let times = Array.make cap 0.0 and bytes = Array.make cap 0 in
    Array.blit t.times 0 times 0 t.len;
    Array.blit t.bytes 0 bytes 0 t.len;
    t.times <- times;
    t.bytes <- bytes
  end

let record t ~time ~bytes =
  assert (t.len = 0 || time >= t.times.(t.len - 1));
  ensure t;
  t.times.(t.len) <- time;
  t.bytes.(t.len) <- bytes;
  t.len <- t.len + 1;
  t.total <- t.total + bytes

let total_bytes t = t.total

let count t = t.len

let bytes_in t ~from_ ~until =
  let acc = ref 0 in
  for i = 0 to t.len - 1 do
    if t.times.(i) >= from_ && t.times.(i) < until then acc := !acc + t.bytes.(i)
  done;
  !acc

let rate_bps t ~from_ ~until =
  if until <= from_ then 0.0
  else 8.0 *. float_of_int (bytes_in t ~from_ ~until) /. (until -. from_)

let windowed_rates_bps t ~from_ ~until ~window =
  assert (window > 0.0);
  let n = int_of_float (Float.floor ((until -. from_) /. window)) in
  let out = Array.make (Stdlib.max 0 n) 0.0 in
  for i = 0 to t.len - 1 do
    let ts = t.times.(i) in
    if ts >= from_ && ts < until then begin
      let bin = int_of_float ((ts -. from_) /. window) in
      if bin >= 0 && bin < n then
        out.(bin) <- out.(bin) +. (8.0 *. float_of_int t.bytes.(i) /. window)
    end
  done;
  out

(* Stable two-pointer merge by time, [a] winning ties: associative, so
   shards folded in any grouping (though not any order, for tied
   timestamps) reproduce the sequentially-accumulated series. *)
let merge a b =
  let n = a.len + b.len in
  let t =
    {
      times = Array.make (Stdlib.max 1 n) 0.0;
      bytes = Array.make (Stdlib.max 1 n) 0;
      len = n;
      total = a.total + b.total;
    }
  in
  let i = ref 0 and j = ref 0 in
  for k = 0 to n - 1 do
    let take_a =
      !j >= b.len || (!i < a.len && a.times.(!i) <= b.times.(!j))
    in
    if take_a then begin
      t.times.(k) <- a.times.(!i);
      t.bytes.(k) <- a.bytes.(!i);
      incr i
    end
    else begin
      t.times.(k) <- b.times.(!j);
      t.bytes.(k) <- b.bytes.(!j);
      incr j
    end
  done;
  t

let interarrival_times t =
  if t.len < 2 then [||]
  else Array.init (t.len - 1) (fun i -> t.times.(i + 1) -. t.times.(i))
