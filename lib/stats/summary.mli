(** Descriptive statistics over float samples. *)

type t = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
}

val of_list : float list -> t
val of_array : float array -> t
(** Empty input yields [n = 0] and NaN moments. *)

val cov : t -> float
(** Coefficient of variation, [stddev / mean]; NaN if mean is 0. *)

val percentile : float array -> float -> float
(** [percentile xs q] for [q] in [\[0,1\]], linear interpolation between
    order statistics.  Sorts a copy; raises [Invalid_argument] on empty
    input or q outside [0,1]. *)

val pp : Format.formatter -> t -> unit
