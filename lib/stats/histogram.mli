(** Fixed-bin histograms with a terminal rendering.

    Used by the examples and CLIs to show delay / occupancy
    distributions without external plotting. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Bins partition [\[lo, hi)] evenly; out-of-range samples land in the
    first/last bin.  [bins >= 1], [lo < hi]. *)

val of_samples : ?bins:int -> float array -> t
(** Bounds from the data (min..max, padded when degenerate); [bins]
    defaults to 20.  Raises [Invalid_argument] on empty input. *)

val add : t -> float -> unit

val merge : t -> t -> t
(** Fresh histogram with bin-wise summed counts.  Both inputs must
    share [lo], [hi] and bin count ([Invalid_argument] otherwise).
    Associative and commutative, so per-shard histograms from a
    parallel fan-out fold to exactly the sequential accumulation. *)

val count : t -> int
(** Total samples. *)

val bin_counts : t -> int array

val bin_bounds : t -> (float * float) array
(** [(lo_i, hi_i)] of every bin. *)

val render : ?width:int -> t -> string
(** One line per bin: range, count, and a bar scaled to [width]
    (default 40) characters for the fullest bin. *)
