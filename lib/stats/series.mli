(** Event recording and windowed-rate extraction.

    A [t] accumulates (time, bytes) arrival events for one flow; the
    analysis side turns them into goodput over an interval or a
    per-window throughput series (for smoothness/CoV measurements). *)

type t

val create : unit -> t

val record : t -> time:float -> bytes:int -> unit
(** Events must be recorded in non-decreasing time order. *)

val total_bytes : t -> int
val count : t -> int

val merge : t -> t -> t
(** [merge a b] is a fresh series holding both inputs' events, ordered
    by time ([a] first on ties).  Associative, so per-shard
    accumulators combined pairwise (e.g. from a parallel fan-out)
    equal the sequentially-recorded series.  The inputs are not
    mutated. *)

val rate_bps : t -> from_:float -> until:float -> float
(** Average rate over [\[from_, until)] in bits/s. *)

val windowed_rates_bps :
  t -> from_:float -> until:float -> window:float -> float array
(** Rate in each consecutive [window]-second bin of [\[from_, until)].
    Partial trailing bins are discarded. *)

val interarrival_times : t -> float array
