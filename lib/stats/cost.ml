type t = {
  counters : (string, int ref) Hashtbl.t;
  marks : (string, int ref) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; marks = Hashtbl.create 8 }

let slot table name =
  match Hashtbl.find_opt table name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add table name r;
      r

let charge t ?(ops = 1) name =
  let r = slot t.counters name in
  r := !r + ops

let watermark t name size =
  let r = slot t.marks name in
  if size > !r then r := size

let ops t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let total_ops t = Hashtbl.fold (fun _ r acc -> acc + !r) t.counters 0

let high_water t name =
  match Hashtbl.find_opt t.marks name with Some r -> !r | None -> 0

let sorted_entries table =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_entries t.counters

let watermarks t = sorted_entries t.marks
