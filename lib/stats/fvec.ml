(* Growable unboxed float vector.

   A [float list] accumulator costs five words per sample (cons cell +
   boxed float); this costs one word amortised, because OCaml flat
   float arrays store doubles unboxed.  Used for per-flow sample
   streams (delivery delays) that are only inspected after the run. *)

type t = { mutable buf : float array; mutable len : int }

let create ?(capacity = 16) () =
  { buf = Array.make (Stdlib.max 1 capacity) 0.0; len = 0 }

let length t = t.len

let[@vtp.hot] push t v =
  if t.len = Array.length t.buf then begin
    let buf = Array.make (2 * t.len) 0.0 in
    Array.blit t.buf 0 buf 0 t.len;
    t.buf <- buf
  end;
  Array.unsafe_set t.buf t.len v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Fvec.get";
  t.buf.(i)

let to_array t = Array.sub t.buf 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.buf i)
  done
