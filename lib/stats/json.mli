(** Minimal JSON tree, serialiser and reader for machine-readable
    outputs (benchmark reports, tooling hand-offs) — no external JSON
    dependency.

    Serialisation is deterministic (object fields print in the order
    given), NaN and infinities are emitted as [null] so the output
    always parses, and strings are escaped per RFC 8259.  The reader
    ({!of_string}) exists so in-repo tooling ([vtp_bench_diff]) can
    load the reports this module writes back in; it accepts standard
    JSON, not just our own output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Render with the given indent width (default 2). *)

val to_channel : ?indent:int -> out_channel -> t -> unit
(** [to_string] plus a trailing newline. *)

val pp : Format.formatter -> t -> unit

exception Parse_error of string
(** Raised by {!of_string} with an offset and a description. *)

val of_string : string -> t
(** Parse one JSON value (plus surrounding whitespace).  Numbers
    without a fraction or exponent become [Int], all others [Float];
    [\uXXXX] escapes above 0x7f decode as ['?'] (the emitter never
    produces them).  @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the first binding of [key]; [None] on
    a missing key or a non-object. *)
