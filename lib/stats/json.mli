(** Minimal JSON tree and serialiser for machine-readable outputs
    (benchmark reports, tooling hand-offs).

    Write-only by design: the repo has no JSON dependency, and nothing
    here needs to parse JSON — emitted files are consumed by external
    tooling.  Serialisation is deterministic (object fields print in
    the order given), NaN and infinities are emitted as [null] so the
    output always parses, and strings are escaped per RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Render with the given indent width (default 2). *)

val to_channel : ?indent:int -> out_channel -> t -> unit
(** [to_string] plus a trailing newline. *)

val pp : Format.formatter -> t -> unit
