type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/Infinity literals; map them to null so emitted files
   always parse.  [%.12g] keeps measurement precision without the noise
   of full round-trip digits. *)
let float_repr f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"
  | FP_zero | FP_subnormal | FP_normal ->
      let s = Printf.sprintf "%.12g" f in
      (* "1e+06" is valid JSON, "1." is not; "1" is but keeps int/float
         ambiguity — normalise bare integers to a trailing ".0". *)
      if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let rec emit buf ~indent ~level v =
  let pad n = Buffer.add_string buf (String.make (indent * n) ' ') in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (level + 1);
          emit buf ~indent ~level:(level + 1) item)
        items;
      Buffer.add_char buf '\n';
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (level + 1);
          escape buf k;
          Buffer.add_string buf ": ";
          emit buf ~indent ~level:(level + 1) item)
        fields;
      Buffer.add_char buf '\n';
      pad level;
      Buffer.add_char buf '}'

let to_string ?(indent = 2) v =
  let buf = Buffer.create 1024 in
  emit buf ~indent ~level:0 v;
  Buffer.contents buf

let to_channel ?indent oc v =
  output_string oc (to_string ?indent v);
  output_char oc '\n'

let pp fmt v = Format.pp_print_string fmt (to_string v)
