type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/Infinity literals; map them to null so emitted files
   always parse.  [%.12g] keeps measurement precision without the noise
   of full round-trip digits. *)
let float_repr f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"
  | FP_zero | FP_subnormal | FP_normal ->
      let s = Printf.sprintf "%.12g" f in
      (* "1e+06" is valid JSON, "1." is not; "1" is but keeps int/float
         ambiguity — normalise bare integers to a trailing ".0". *)
      if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let rec emit buf ~indent ~level v =
  let pad n = Buffer.add_string buf (String.make (indent * n) ' ') in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (level + 1);
          emit buf ~indent ~level:(level + 1) item)
        items;
      Buffer.add_char buf '\n';
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (level + 1);
          escape buf k;
          Buffer.add_string buf ": ";
          emit buf ~indent ~level:(level + 1) item)
        fields;
      Buffer.add_char buf '\n';
      pad level;
      Buffer.add_char buf '}'

let to_string ?(indent = 2) v =
  let buf = Buffer.create 1024 in
  emit buf ~indent ~level:0 v;
  Buffer.contents buf

let to_channel ?indent oc v =
  output_string oc (to_string ?indent v);
  output_char oc '\n'

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing.

   A recursive-descent reader for standard JSON, added so tooling
   (vtp_bench_diff) can read the reports this module writes back in.
   Numbers without '.', 'e' or a leading '-that-overflows' parse as
   [Int]; everything else numeric parses as [Float].  \uXXXX escapes
   decode below 0x80 and degrade to '?' above (the emitter never
   produces those). *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let parse_fail cur msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" cur.pos msg))

let peek cur =
  if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let continue = ref true in
  while !continue do
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') -> advance cur
    | Some _ | None -> continue := false
  done

let expect cur c =
  match peek cur with
  | Some got when got = c -> advance cur
  | Some got -> parse_fail cur (Printf.sprintf "expected %c, got %c" c got)
  | None -> parse_fail cur (Printf.sprintf "expected %c, got end of input" c)

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.src
    && String.sub cur.src cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else parse_fail cur ("expected " ^ word)

let parse_string_body cur =
  let buf = Buffer.create 16 in
  expect cur '"';
  let rec go () =
    match peek cur with
    | None -> parse_fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
        advance cur;
        (match peek cur with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
            if cur.pos + 4 >= String.length cur.src then
              parse_fail cur "truncated \\u escape";
            let hex = String.sub cur.src (cur.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> parse_fail cur "bad \\u escape"
            in
            Buffer.add_char buf (if code < 0x80 then Char.chr code else '?');
            cur.pos <- cur.pos + 4
        | Some c -> parse_fail cur (Printf.sprintf "bad escape \\%c" c)
        | None -> parse_fail cur "unterminated escape");
        advance cur;
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance cur;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek cur with Some c -> is_num_char c | None -> false) do
    advance cur
  done;
  let s = String.sub cur.src start (cur.pos - start) in
  let is_int =
    (not (String.contains s '.'))
    && (not (String.contains s 'e'))
    && not (String.contains s 'E')
  in
  if is_int then
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> parse_fail cur ("bad number: " ^ s))
  else
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> parse_fail cur ("bad number: " ^ s)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> parse_fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> String (parse_string_body cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else
        let rec items acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              items (v :: acc)
          | Some ']' ->
              advance cur;
              List.rev (v :: acc)
          | _ -> parse_fail cur "expected , or ] in array"
        in
        List (items [])
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else
        let field () =
          skip_ws cur;
          let k = parse_string_body cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              fields (kv :: acc)
          | Some '}' ->
              advance cur;
              List.rev (kv :: acc)
          | _ -> parse_fail cur "expected , or } in object"
        in
        Obj (fields [])
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> parse_fail cur (Printf.sprintf "unexpected character %c" c)

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  (match peek cur with
  | None -> ()
  | Some _ -> parse_fail cur "trailing garbage after value");
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None
