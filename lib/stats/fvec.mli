(** Growable unboxed float vector — an allocation-light replacement for
    [float list] sample accumulators (one word per sample amortised
    versus five for a cons + boxed float).  Doubling growth; samples
    keep insertion order. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int

val push : t -> float -> unit

val get : t -> int -> float
(** Raises [Invalid_argument] out of bounds. *)

val to_array : t -> float array
(** The samples in insertion order (a fresh array). *)

val iter : (float -> unit) -> t -> unit
