(** Aligned ASCII tables for experiment output. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t

val add_row : t -> string list -> unit
(** Row length must match the column count. *)

val cell_f : ?decimals:int -> float -> string
(** Format a float cell ([decimals] defaults to 2; NaN prints "-"). *)

val cell_i : int -> string

val render : t -> string
(** The whole table, title and rule lines included. *)

val to_csv : t -> string
(** RFC 4180-style CSV: header row then data rows.  Cells containing
    commas, quotes or newlines are quoted; the title is emitted as a
    leading comment line ([# title]). *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
