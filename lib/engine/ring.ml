(* Growable circular FIFO over a flat array.  Unlike [Queue.t], push and
   pop allocate nothing in steady state (Queue allocates a cons cell per
   element); the array doubles on overflow and vacated slots are
   overwritten with [dummy] so the ring never pins popped values. *)

type 'a t = {
  dummy : 'a;
  mutable arr : 'a array;
  mutable head : int;  (** index of the oldest element *)
  mutable n : int;
}

let create ~dummy = { dummy; arr = Array.make 8 dummy; head = 0; n = 0 }

let length t = t.n

let is_empty t = t.n = 0

let grow t =
  let cap = Array.length t.arr in
  let arr = Array.make (2 * cap) t.dummy in
  let tail = cap - t.head in
  Array.blit t.arr t.head arr 0 tail;
  Array.blit t.arr 0 arr tail (cap - tail);
  t.arr <- arr;
  t.head <- 0

let[@vtp.hot] push t x =
  if t.n = Array.length t.arr then grow t;
  let i = t.head + t.n in
  let cap = Array.length t.arr in
  t.arr.(if i >= cap then i - cap else i) <- x;
  t.n <- t.n + 1

let[@vtp.hot] pop t =
  if t.n = 0 then invalid_arg "Ring.pop: empty";
  let x = t.arr.(t.head) in
  t.arr.(t.head) <- t.dummy;
  t.head <- (if t.head + 1 = Array.length t.arr then 0 else t.head + 1);
  t.n <- t.n - 1;
  x

let peek_opt t = if t.n = 0 then None else Some t.arr.(t.head)

let iter f t =
  let cap = Array.length t.arr in
  for k = 0 to t.n - 1 do
    let i = t.head + k in
    f t.arr.(if i >= cap then i - cap else i)
  done

let clear t =
  Array.fill t.arr 0 (Array.length t.arr) t.dummy;
  t.head <- 0;
  t.n <- 0
