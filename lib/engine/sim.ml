type sched = [ `Heap | `Wheel ]

type queue = Q_heap of Event.t Heap.t | Q_wheel of Wheel.t

type handle = { ev : Event.t; h_gen : int }

(* Fired and cancelled event records are recycled through a bounded
   free-list so steady-state scheduling allocates only the caller's
   closure and the 2-word handle.  [gen] is bumped on release; a stale
   handle (cancel after fire) fails its generation check and is a
   no-op, exactly as the contract demands. *)
let pool_max = 65536

type trace_op = T_schedule of float | T_cancel of int | T_pop

type t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : queue;
  root_rng : Rng.t;
  mutable pool : Event.t array;
  mutable pool_n : int;
  mutable executed : int;
  mutable tracer : (trace_op -> unit) option;
  mutable arenas : Slab.t option array;  (* indexed by Slab.key *)
}

let create ?(seed = 42) ?(sched = `Wheel) () =
  {
    clock = 0.0;
    next_seq = 0;
    queue =
      (match sched with
      | `Heap -> Q_heap (Heap.create ~compare:Event.compare)
      | `Wheel -> Q_wheel (Wheel.create ()));
    root_rng = Rng.create ~seed;
    pool = [||];
    pool_n = 0;
    executed = 0;
    tracer = None;
    arenas = [||];
  }

let arena t lay =
  let k = Slab.key lay in
  if k >= Array.length t.arenas then begin
    let grown = Array.make (Slab.registered ()) None in
    Array.blit t.arenas 0 grown 0 (Array.length t.arenas);
    t.arenas <- grown
  end;
  match t.arenas.(k) with
  | Some a -> a
  | None ->
      let a = Slab.create lay in
      t.arenas.(k) <- Some a;
      a

let sched t = match t.queue with Q_heap _ -> `Heap | Q_wheel _ -> `Wheel

let now t = t.clock

let rng t = t.root_rng

let split_rng t = Rng.split t.root_rng

let executed t = t.executed

let set_tracer t f = t.tracer <- f

let alloc t time run =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if t.pool_n > 0 then begin
    let n = t.pool_n - 1 in
    t.pool_n <- n;
    let ev = t.pool.(n) in
    ev.Event.time <- time;
    ev.Event.seq <- seq;
    ev.Event.run <- run;
    ev.Event.live <- true;
    ev
  end
  else
    {
      Event.time;
      seq;
      run;
      live = true;
      gen = 0;
      tick = 0;
      where = Event.in_none;
      pos = 0;
    }

let release t (ev : Event.t) =
  ev.Event.gen <- ev.Event.gen + 1;
  ev.Event.run <- Event.noop;
  ev.Event.live <- false;
  if t.pool_n < Array.length t.pool then begin
    t.pool.(t.pool_n) <- ev;
    t.pool_n <- t.pool_n + 1
  end
  else if Array.length t.pool < pool_max then begin
    let cap = Stdlib.max 64 (2 * Array.length t.pool) in
    let pool = Array.make cap ev in
    Array.blit t.pool 0 pool 0 t.pool_n;
    t.pool <- pool;
    t.pool_n <- t.pool_n + 1
  end
(* else: pool full, let the GC have it *)

let enqueue t time run =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g is before now %g" time t.clock);
  let ev = alloc t time run in
  (match t.tracer with Some f -> f (T_schedule time) | None -> ());
  (match t.queue with
  | Q_heap h -> Heap.add h ev
  | Q_wheel w -> Wheel.add w ev);
  ev

let schedule_at t time run =
  let ev = enqueue t time run in
  { ev; h_gen = ev.Event.gen }

let schedule_after t delay run =
  if delay < 0.0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule_at t (t.clock +. delay) run

(* Handle-free scheduling for owners that hold the event directly (the
   timer, the TFRC send tick): no 2-word handle per arming.  Callers
   must capture [ev.gen] at scheduling time and cancel via
   {!cancel_ev}. *)
let schedule_after_ev t delay run =
  if delay < 0.0 then invalid_arg "Sim.schedule_after: negative delay";
  enqueue t (t.clock +. delay) run

let post_at t time run = ignore (enqueue t time run : Event.t)

let post_after t delay run =
  if delay < 0.0 then invalid_arg "Sim.post_after: negative delay";
  post_at t (t.clock +. delay) run

let cancel_ev t ev ~gen =
  if ev.Event.gen = gen && ev.Event.live then begin
    ev.Event.live <- false;
    (match t.tracer with Some f -> f (T_cancel ev.Event.seq) | None -> ());
    match t.queue with
    | Q_heap _ -> () (* lazily collected when it reaches the top *)
    | Q_wheel w -> if Wheel.remove w ev then release t ev
  end

let cancel t { ev; h_gen } = cancel_ev t ev ~gen:h_gen

let pending t =
  match t.queue with Q_heap h -> Heap.length h | Q_wheel w -> Wheel.length w

(* Next live event, shedding cancelled heap entries as they surface.
   Cancelled events never run and never advance the clock, under either
   scheduler. *)
let rec live_min t =
  match t.queue with
  | Q_wheel w -> Wheel.min w
  | Q_heap h -> (
      match Heap.min h with
      | Some ev when not ev.Event.live ->
          ignore (Heap.pop_min h);
          release t ev;
          live_min t
      | head -> head)

let step t =
  match live_min t with
  | None -> false
  | Some ev ->
      (match t.queue with
      | Q_heap h -> ignore (Heap.pop_min h)
      | Q_wheel w -> ignore (Wheel.pop_min w));
      t.clock <- ev.Event.time;
      t.executed <- t.executed + 1;
      (match t.tracer with Some f -> f T_pop | None -> ());
      let run = ev.Event.run in
      release t ev;
      run ();
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
      let continue = ref true in
      while !continue do
        match live_min t with
        | Some ev when ev.Event.time <= horizon -> ignore (step t)
        | Some _ | None ->
            t.clock <- Stdlib.max t.clock horizon;
            continue := false
      done
