type event = { time : float; seq : int; run : unit -> unit; mutable live : bool }

type handle = event

type t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : event Heap.t;
  root_rng : Rng.t;
}

let compare_event a b =
  match Float.compare a.time b.time with 0 -> Int.compare a.seq b.seq | c -> c

let create ?(seed = 42) () =
  {
    clock = 0.0;
    next_seq = 0;
    queue = Heap.create ~compare:compare_event;
    root_rng = Rng.create ~seed;
  }

let now t = t.clock

let rng t = t.root_rng

let split_rng t = Rng.split t.root_rng

let schedule_at t time run =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g is before now %g" time t.clock);
  let ev = { time; seq = t.next_seq; run; live = true } in
  t.next_seq <- t.next_seq + 1;
  Heap.add t.queue ev;
  ev

let schedule_after t delay run =
  if delay < 0.0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule_at t (t.clock +. delay) run

let cancel _t handle = handle.live <- false

let pending t = Heap.length t.queue

let step t =
  match Heap.pop_min t.queue with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      if ev.live then ev.run ();
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
      let continue = ref true in
      while !continue do
        match Heap.min t.queue with
        | Some ev when ev.time <= horizon -> ignore (step t)
        | Some _ | None ->
            t.clock <- Stdlib.max t.clock horizon;
            continue := false
      done
