(* Hierarchical timer wheel.

   Virtual time is quantised to 1 µs ticks.  Nine levels of 32 slots
   give 2^45 ticks (~400 virtual days) of horizon; anything further
   lands in an overflow bucket that is respread when reached.  Level 0
   slots are single ticks; a level-l slot spans 32^l ticks.  An event is
   filed at the highest level in which its tick differs from the cursor,
   so it cascades toward level 0 as the cursor approaches — classic
   hashed-and-hierarchical wheel (Varghese & Lauck) with absolute slot
   indexing.

   Firing order: the next occupied level-0 slot is drained into a small
   "ready" binary heap ordered by (time, seq), which resolves both
   sub-tick ordering (several float times can share a tick) and FIFO
   ties — so the observable event order is byte-identical to the
   reference binary-heap scheduler.

   Cancellation is eager: every event knows its bucket and index, so a
   cancel is an O(1) swap-remove and the record can be recycled
   immediately.  The reference heap, by contrast, keeps cancelled
   entries until they are popped — under timer churn (RTO restarted on
   every ACK) that is the difference between holding the live set and
   holding the whole scheduled history. *)

let slot_bits = 5

let slots = 32

let slot_mask = slots - 1

let levels = 9

let overflow_id = levels * slots

let ticks_per_second = 1e6

let tick_of_time time = int_of_float (time *. ticks_per_second)

type bucket = { mutable arr : Event.t array; mutable n : int }

type t = {
  dummy : Event.t;  (** filler for vacated array slots *)
  buckets : bucket array;  (** [levels * slots] wheel slots + overflow *)
  masks : int array;  (** per-level slot-occupancy bitmaps *)
  mutable cursor : int;  (** first tick not yet drained *)
  ready : Event.t Heap.t;  (** staged events, ordered by (time, seq) *)
  mutable size : int;  (** live events across buckets and ready *)
}

let create () =
  let dummy = Event.make_dummy () in
  {
    dummy;
    buckets = Array.init (overflow_id + 1) (fun _ -> { arr = [||]; n = 0 });
    masks = Array.make levels 0;
    cursor = 0;
    ready = Heap.create ~compare:Event.compare;
    size = 0;
  }

let length t = t.size

let[@vtp.hot] bucket_push t id (ev : Event.t) =
  let b = t.buckets.(id) in
  if b.n >= Array.length b.arr then begin
    let cap = Stdlib.max 4 (2 * Array.length b.arr) in
    let arr = Array.make cap t.dummy in
    Array.blit b.arr 0 arr 0 b.n;
    b.arr <- arr
  end;
  b.arr.(b.n) <- ev;
  ev.Event.where <- id;
  ev.Event.pos <- b.n;
  b.n <- b.n + 1

(* The level at which [tick] parts ways with the cursor: index of the
   highest differing 5-bit slot group ([levels] = beyond the horizon).
   Equal ticks file at level 0, in the cursor's own slot. *)
let[@vtp.hot] rec find_level x l =
  if l >= levels then levels
  else if x < 1 lsl (slot_bits * (l + 1)) then l
  else find_level x (l + 1)

let[@vtp.hot] level_of t tick = find_level (tick lxor t.cursor) 0

let[@vtp.hot] place t (ev : Event.t) =
  let l = level_of t ev.Event.tick in
  if l >= levels then bucket_push t overflow_id ev
  else begin
    let s = (ev.Event.tick lsr (slot_bits * l)) land slot_mask in
    bucket_push t ((l * slots) + s) ev;
    t.masks.(l) <- t.masks.(l) lor (1 lsl s)
  end

let[@vtp.hot] add t (ev : Event.t) =
  ev.Event.tick <- tick_of_time ev.Event.time;
  t.size <- t.size + 1;
  if ev.Event.tick < t.cursor then begin
    (* Due inside the already-drained region (the cursor may sit ahead
       of the sim clock after a peek): stage directly. *)
    ev.Event.where <- Event.in_ready;
    Heap.add t.ready ev
  end
  else place t ev

let[@vtp.hot] remove t (ev : Event.t) =
  let id = ev.Event.where in
  if id >= 0 then begin
    let b = t.buckets.(id) in
    let last = b.n - 1 in
    let moved = b.arr.(last) in
    b.arr.(ev.Event.pos) <- moved;
    moved.Event.pos <- ev.Event.pos;
    b.arr.(last) <- t.dummy;
    b.n <- last;
    if last = 0 && id < overflow_id then begin
      let l = id / slots and s = id mod slots in
      t.masks.(l) <- t.masks.(l) land lnot (1 lsl s)
    end;
    ev.Event.where <- Event.in_none;
    t.size <- t.size - 1;
    true
  end
  else if id = Event.in_ready then begin
    (* Buried in the ready heap: account for it now, let the pop path
       discard the (dead) record when it surfaces. *)
    t.size <- t.size - 1;
    false
  end
  else false

let[@vtp.hot] drain_slot t s =
  let b = t.buckets.(s) in
  let n = b.n in
  for i = 0 to n - 1 do
    let ev = b.arr.(i) in
    b.arr.(i) <- t.dummy;
    ev.Event.where <- Event.in_ready;
    Heap.add t.ready ev
  done;
  b.n <- 0;
  t.masks.(0) <- t.masks.(0) land lnot (1 lsl s);
  n

let[@vtp.hot] cascade t l s =
  let id = (l * slots) + s in
  let b = t.buckets.(id) in
  let n = b.n in
  b.n <- 0;
  t.masks.(l) <- t.masks.(l) land lnot (1 lsl s);
  for i = 0 to n - 1 do
    let ev = b.arr.(i) in
    b.arr.(i) <- t.dummy;
    (* The cursor now shares this event's level-[l] group, so it files
       strictly below level [l]: no infinite loop. *)
    place t ev
  done

(* All finite levels are empty: jump to the earliest overflow tick and
   re-place everything relative to the new cursor. *)
let respread_overflow t =
  let b = t.buckets.(overflow_id) in
  let n = b.n in
  let min_tick = ref b.arr.(0).Event.tick in
  for i = 1 to n - 1 do
    if b.arr.(i).Event.tick < !min_tick then min_tick := b.arr.(i).Event.tick
  done;
  t.cursor <- !min_tick;
  let stash = Array.sub b.arr 0 n in
  Array.fill b.arr 0 n t.dummy;
  b.n <- 0;
  Array.iter (fun ev -> place t ev) stash

let[@vtp.hot] rec lowest_bit_from i m =
  if m land 1 = 1 then i else lowest_bit_from (i + 1) (m lsr 1)

let[@vtp.hot] lowest_bit_index m = lowest_bit_from 0 m

(* The cursor just carried across a window boundary (its level-0 group
   wrapped to 0).  Cascade the slot it now occupies at every level the
   carry propagated through, highest first, so no event sits parked at
   level l while the cursor is inside that very window — otherwise
   later level-0 traffic would be drained past it. *)
let[@vtp.hot] rec carry_top t l =
  if l < levels && t.cursor land ((1 lsl (slot_bits * (l + 1))) - 1) = 0 then
    carry_top t (l + 1)
  else l

let[@vtp.hot] enter_window t =
  let h = carry_top t 1 in
  for l = h downto 1 do
    let s = (t.cursor lsr (slot_bits * l)) land slot_mask in
    if t.masks.(l) land (1 lsl s) <> 0 then cascade t l s
  done

(* Advance the cursor to the next occupied tick and stage that slot.
   [true] iff anything was staged. *)
let[@vtp.hot] rec refill t =
  let cur0 = t.cursor land slot_mask in
  let m0 = t.masks.(0) land (-1 lsl cur0) in
  if m0 <> 0 then begin
    let s = lowest_bit_index m0 in
    t.cursor <- t.cursor land lnot slot_mask lor s;
    let staged = drain_slot t s in
    t.cursor <- t.cursor + 1;
    if t.cursor land slot_mask = 0 then enter_window t;
    if staged > 0 then true else refill t
  end
  else climb t 1

(* Level 0 exhausted for this window: open the next occupied window of
   the lowest occupied level and cascade it down. *)
and climb t l =
  if l >= levels then
    if t.buckets.(overflow_id).n > 0 then begin
      respread_overflow t;
      refill t
    end
    else false
  else begin
    let cur_l = (t.cursor lsr (slot_bits * l)) land slot_mask in
    let m = t.masks.(l) land (-1 lsl cur_l) in
    if m = 0 then climb t (l + 1)
    else begin
      let s = lowest_bit_index m in
      let low = (1 lsl (slot_bits * (l + 1))) - 1 in
      t.cursor <- t.cursor land lnot low lor (s lsl (slot_bits * l));
      cascade t l s;
      refill t
    end
  end
[@@vtp.hot]

let[@vtp.hot] rec ensure t =
  match Heap.min t.ready with
  | Some ev when not ev.Event.live ->
      (* cancelled while staged: drop the corpse and keep looking *)
      ignore (Heap.pop_min t.ready);
      ev.Event.where <- Event.in_none;
      ensure t
  | Some _ as head -> head
  | None ->
      if t.size = 0 then None
      else if refill t then ensure t
      else failwith "Engine.Wheel: size accounting out of sync"

let[@vtp.hot] min t = ensure t

let pop_min t =
  match ensure t with
  | None -> None
  | Some ev ->
      ignore (Heap.pop_min t.ready);
      ev.Event.where <- Event.in_none;
      t.size <- t.size - 1;
      Some ev

(* White-box accounting census for tests: every live event must be
   held exactly once, in a bucket or staged in the ready heap. *)
let census t =
  let live = ref 0 in
  Array.iter (fun b -> live := !live + b.n) t.buckets;
  let ready_live = ref 0 in
  List.iter (fun (ev : Event.t) -> if ev.live then incr ready_live)
    (Heap.to_sorted_list t.ready);
  (!live, !ready_live, t.size, t.cursor)
