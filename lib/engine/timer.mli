(** Restartable one-shot timer.

    Protocol state machines (RTO, TFRC nofeedback timer, feedback timer)
    need a timer that can be (re)armed and cancelled idempotently; this
    wraps {!Sim} scheduling with that discipline. *)

type t

val create : Sim.t -> on_expire:(unit -> unit) -> t
(** A disarmed timer; [on_expire] fires each time an armed deadline is
    reached without an intervening [stop]/[restart]. *)

val start : t -> after:float -> unit
(** Arm (or re-arm, replacing any pending deadline) to fire after
    [after] seconds of virtual time. *)

val stop : t -> unit
(** Disarm; no-op if not armed. *)

val is_armed : t -> bool

val deadline : t -> float option
(** Absolute expiry time if armed. *)
