(** A scheduled simulation event — the shared currency of {!Sim}'s
    pluggable schedulers ({!Heap}-backed and {!Wheel}-backed).

    This is an internal engine type: records are pooled and reused by
    {!Sim}, so nothing outside the engine should retain one.  The
    mutable [gen] field is bumped on every reuse; handles compare it to
    detect staleness.  [tick], [where] and [pos] are scratch fields
    owned by the {!Wheel} scheduler (bucket location bookkeeping for
    O(1) cancellation). *)

type t = {
  mutable time : float;  (** absolute virtual due time *)
  mutable seq : int;  (** global tie-break: insertion order *)
  mutable run : unit -> unit;
  mutable live : bool;  (** false once cancelled *)
  mutable gen : int;  (** reuse generation, for stale-handle detection *)
  mutable tick : int;  (** wheel: quantised due time *)
  mutable where : int;  (** wheel: bucket id, {!in_ready} or {!in_none} *)
  mutable pos : int;  (** wheel: index within its bucket *)
}

val noop : unit -> unit
(** Shared do-nothing thunk installed in recycled records so a pooled
    event never retains a caller closure. *)

val in_none : int
(** [where] code: not held by any scheduler structure. *)

val in_ready : int
(** [where] code: staged in the wheel's ready heap. *)

val make_dummy : unit -> t
(** A fresh dead record, used to pad scheduler-internal arrays. *)

val compare : t -> t -> int
(** Lexicographic [(time, seq)] — the canonical firing order. *)
