(** Deterministic pseudo-random number generation.

    The generator is xoshiro256** seeded through splitmix64, implemented
    from the reference algorithms.  It is self-contained so that
    simulation runs are reproducible across OCaml versions and platforms
    (the stdlib [Random] implementation has changed between releases).

    Generators are cheap to [split]: a child generator is seeded from the
    parent stream, letting independent simulation components draw from
    statistically independent streams while the whole run stays a pure
    function of the root seed. *)

type t

val create : seed:int -> t
(** Fresh generator fully determined by [seed]. *)

val copy : t -> t
(** Snapshot of the current state; the copy evolves independently. *)

val split : t -> t
(** Child generator seeded from the parent (which advances).  The
    child therefore depends on the parent's draw position; use
    {!derive} when the child must not. *)

val derive : t -> key:int -> t
(** [derive t ~key] is a child generator determined {e only} by [t]'s
    creation seed and [key]: it does not advance [t], and interleaved
    draws on [t] (or other [derive] calls) never change the child's
    stream.  This is the schedule-independent derivation parallel
    fan-out needs — a task keyed by its index or seed sees the same
    stream whatever order tasks run in.  Distinct keys give
    statistically independent streams. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t b] is uniform in [\[0, b)]. [b] must be positive. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)] without modulo bias. [n >= 1]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [0,1]). *)
