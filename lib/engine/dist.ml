let exponential rng ~mean =
  assert (mean > 0.0);
  let u = 1.0 -. Rng.uniform rng in
  -.mean *. log u

let pareto rng ~shape ~scale =
  assert (shape > 0.0 && scale > 0.0);
  let u = 1.0 -. Rng.uniform rng in
  scale /. (u ** (1.0 /. shape))

let normal rng ~mean ~stddev =
  let u1 = 1.0 -. Rng.uniform rng in
  let u2 = Rng.uniform rng in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let geometric rng ~p =
  assert (p > 0.0 && p <= 1.0);
  if p >= 1.0 then 0
  else
    let u = 1.0 -. Rng.uniform rng in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let uniform_range rng ~lo ~hi =
  assert (lo < hi);
  lo +. Rng.float rng (hi -. lo)

let log_uniform_range rng ~lo ~hi =
  assert (lo > 0.0 && lo < hi);
  exp (uniform_range rng ~lo:(log lo) ~hi:(log hi))

let choice rng arr =
  if Array.length arr = 0 then invalid_arg "Dist.choice: empty array";
  arr.(Rng.int rng (Array.length arr))

let weighted rng choices =
  let total = List.fold_left (fun acc (w, _) -> acc +. Float.max 0.0 w) 0.0 choices in
  if not (total > 0.0) then invalid_arg "Dist.weighted: no positive weight";
  let x = Rng.float rng total in
  let rec pick acc = function
    | [] -> invalid_arg "Dist.weighted: empty list"
    | [ (_, v) ] -> v
    | (w, v) :: rest ->
        let acc = acc +. Float.max 0.0 w in
        if x < acc then v else pick acc rest
  in
  pick 0.0 choices

let poisson rng ~mean =
  assert (mean >= 0.0);
  let limit = exp (-.mean) in
  let rec loop k prod =
    let prod = prod *. Rng.uniform rng in
    if prod <= limit then k else loop (k + 1) prod
  in
  if mean = 0.0 then 0 else loop 0 1.0
