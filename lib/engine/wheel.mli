(** Hierarchical timer wheel — {!Sim}'s default scheduler.

    Stores {!Event.t} records keyed by their [time], quantised to 1 µs
    ticks across nine levels of 32 slots (≈400 virtual days of horizon;
    later deadlines overflow into a respread bucket).  Insert and cancel
    are O(1) amortized; finding the next event costs O(1) amortized via
    per-level occupancy bitmaps plus an O(log k) ready heap over the k
    events of the current tick.

    Events pop in exactly the (time, seq) order of the reference
    {!Heap}-based scheduler; the two are differentially tested.  Unlike
    the heap, cancellation removes the event immediately (swap-remove in
    its bucket), so the wheel only ever holds live events. *)

type t

val create : unit -> t

val add : t -> Event.t -> unit
(** File an event by its [time].  The wheel takes ownership of the
    record's [tick]/[where]/[pos] scratch fields. *)

val remove : t -> Event.t -> bool
(** Detach a cancelled event.  [true] means the record was unlinked and
    may be recycled at once; [false] means it is staged in the ready
    heap (or already gone) and will be discarded when it surfaces.  The
    caller must have cleared [live] first. *)

val length : t -> int
(** Number of live (uncancelled, unfired) events. *)

val min : t -> Event.t option
(** Peek the next event without firing it.  May advance the internal
    cursor (cascading far slots down), which is unobservable. *)

val pop_min : t -> Event.t option
(** Remove and return the next event in (time, seq) order. *)

val tick_of_time : float -> int
(** The quantisation applied to due times (1 µs granularity), exposed
    for white-box tests. *)

val census : t -> int * int * int * int
(** White-box accounting snapshot for tests:
    [(bucket_events, live_ready_events, size, cursor)].  The invariant
    [bucket_events + live_ready_events = size] must hold after every
    operation. *)
