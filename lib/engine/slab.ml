(* Struct-of-arrays arena for per-flow protocol state.

   A [layout] declares how many float and int cells one slot needs; an
   arena ([t]) packs every slot of that layout into two flat parallel
   arrays.  Protocol modules register a layout once at program init and
   allocate one slot per flow from the owning simulation's arena (see
   {!Sim.arena}), so 10k flows hold two arrays per state family rather
   than 10k boxed records — and, because the float cells live in a flat
   [float array], mutating them never allocates (OCaml boxes every
   float write into a mixed-field record, which priced two words of
   garbage into each hot-path rate/clock update under the old
   record-of-mutable-floats representation).

   Slots are never freed: flow state lives exactly as long as its
   simulation, and the arena is unreachable as soon as the [Sim.t] is.
   Standalone instances (unit tests, simless oracles) can [create]
   their own private arena. *)

type layout = { key : int; nf : int; ni : int }

(* Registration happens only from module initialisers (single-threaded,
   before any pool worker spawns); the counter is layout metadata, not
   run-time state. *)
let[@vtp.ambient] next_key = ref 0

let layout ~floats ~ints =
  assert (floats >= 0 && ints >= 0);
  let key = !next_key in
  incr next_key;
  { key; nf = floats; ni = ints }

let registered () = !next_key

let key l = l.key

type t = {
  lay : layout;
  mutable f : float array;
  mutable i : int array;
  mutable cap : int;  (* slots the arrays can hold *)
  mutable n : int;  (* slots handed out *)
}

let create lay = { lay; f = [||]; i = [||]; cap = 0; n = 0 }

let slots t = t.n

let grow t =
  let cap = Stdlib.max 8 (2 * t.cap) in
  let nf = Array.make (cap * t.lay.nf) 0.0
  and ni = Array.make (cap * t.lay.ni) 0 in
  Array.blit t.f 0 nf 0 (t.n * t.lay.nf);
  Array.blit t.i 0 ni 0 (t.n * t.lay.ni);
  t.f <- nf;
  t.i <- ni;
  t.cap <- cap

let alloc t =
  if t.n = t.cap then grow t;
  let slot = t.n in
  t.n <- slot + 1;
  slot

(* Accessors are bounds-unchecked: [slot] comes from [alloc] and the
   field index from the module's own layout constants, both invariants
   local to the owning module (the same contract as the SACK rings). *)

let[@inline] [@vtp.hot] fget t slot j =
  Array.unsafe_get t.f ((slot * t.lay.nf) + j)

let[@inline] [@vtp.hot] fset t slot j v =
  Array.unsafe_set t.f ((slot * t.lay.nf) + j) v

let[@inline] [@vtp.hot] iget t slot j =
  Array.unsafe_get t.i ((slot * t.lay.ni) + j)

let[@inline] [@vtp.hot] iset t slot j v =
  Array.unsafe_set t.i ((slot * t.lay.ni) + j) v
