(** Imperative binary min-heap.

    The heap is polymorphic in its element type; the ordering is fixed at
    creation time by a [compare] function following the convention of
    [Stdlib.compare].  All operations are the textbook complexities:
    [add] and [pop_min] are O(log n), [min] is O(1). *)

type 'a t

val create : compare:('a -> 'a -> int) -> 'a t
(** [create ~compare] is an empty heap ordered by [compare]. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit
(** Insert an element; duplicates are allowed. *)

val min : 'a t -> 'a option
(** Smallest element, without removing it. *)

val pop_min : 'a t -> 'a option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit
(** Remove every element, keeping the underlying storage. *)

val to_sorted_list : 'a t -> 'a list
(** Non-destructive ascending enumeration (O(n log n), copies the heap). *)
