(** Struct-of-arrays arenas for dense per-flow state.

    A {!layout} names one state family (the TFRC sender's rate machine,
    a connection's receive window, …) and fixes its float/int cell
    counts; an arena packs every slot of one layout into two flat
    parallel arrays.  Float cells are unboxed — mutating one allocates
    nothing, unlike a float field in a mixed-type mutable record — and
    ten thousand flows of one family cost two arrays instead of ten
    thousand records.  See {!Sim.arena} for the per-simulation arena
    registry. *)

type layout

val layout : floats:int -> ints:int -> layout
(** Register a slot layout.  Call only from a module initialiser: the
    registration order must be fixed before any simulation exists. *)

val registered : unit -> int
(** Number of layouts registered so far. *)

val key : layout -> int
(** Dense index of this layout in the registration order. *)

type t

val create : layout -> t
(** A fresh private arena — for standalone instances (tests, simless
    oracles).  Flow state inside a simulation should use {!Sim.arena}
    so all flows of one family share one pair of arrays. *)

val alloc : t -> int
(** Claim the next slot (cells zero-initialised).  Slots are never
    freed; the arena lives as long as its owner. *)

val slots : t -> int

val fget : t -> int -> int -> float
(** [fget a slot j] reads float cell [j] of [slot].  Unchecked. *)

val fset : t -> int -> int -> float -> unit

val iget : t -> int -> int -> int

val iset : t -> int -> int -> int -> unit
