(* Work-stealing over lanes of an index range.

   A batch of [n] tasks is the integer range [0, n): it is split into
   [jobs] contiguous lanes, one per worker, each guarded by an atomic
   cursor.  Claiming is [Atomic.fetch_and_add] on a lane's cursor —
   the same operation for the owner and for a thief — so the fast path
   is one uncontended atomic per task and stealing needs no deque
   machinery: a worker that drains its own lane walks the other lanes
   and claims from whichever still has indices left.  A cursor may
   overshoot its lane bound by a few failed probes; claims past the
   bound are simply discarded.

   Results land in a per-batch array at the task's own index, so
   completion order never shows: the caller reads submission order.
   The per-task completion count is the only cross-domain rendezvous;
   its final fetch-and-add wakes the caller.

   Workers are long-lived and batches are handed over under a mutex +
   condition pair.  Each worker remembers the generation of the last
   batch it ran so a slow worker cannot re-enter a finished batch. *)

type batch = {
  b_gen : int;
  size : int;
  lanes : int;
  cursors : int Atomic.t array;
  bounds : int array;  (* lane upper limits; lane l covers [cursor_l0, bounds l) *)
  exec : int -> unit;  (* run task i; must not raise *)
  completed : int Atomic.t;
}

type t = {
  n_jobs : int;
  lock : Mutex.t;
  work : Condition.t;  (* a new batch was installed, or shutdown began *)
  idle : Condition.t;  (* the last task of the current batch finished *)
  mutable batch : batch option;
  mutable gen : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

let max_jobs = 128

let default_jobs () =
  match Sys.getenv_opt "VTP_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Stdlib.min j max_jobs
      | Some _ | None ->
          invalid_arg (Printf.sprintf "VTP_JOBS=%S is not a positive integer" s))
  | None -> Stdlib.max 1 (Domain.recommended_domain_count ())

let jobs t = t.n_jobs

let finish_task t b =
  if Atomic.fetch_and_add b.completed 1 = b.size - 1 then begin
    Mutex.lock t.lock;
    Condition.broadcast t.idle;
    Mutex.unlock t.lock
  end

(* Drain one lane to its bound.  Owner and thief run the same code. *)
let drain_lane t b lane =
  let cursor = b.cursors.(lane) in
  let bound = b.bounds.(lane) in
  let rec go () =
    if Atomic.get cursor < bound then begin
      let i = Atomic.fetch_and_add cursor 1 in
      if i < bound then begin
        b.exec i;
        finish_task t b;
        go ()
      end
    end
  in
  go ()

let run_batch t b ~home =
  (* A worker's home index can exceed the lane count when the batch is
     smaller than the pool: fold it onto a real lane.  Cursors are
     shared atomics, so two workers draining one lane is mere
     contention, never double execution. *)
  let home = home mod b.lanes in
  drain_lane t b home;
  for off = 1 to b.lanes - 1 do
    drain_lane t b ((home + off) mod b.lanes)
  done

let worker_loop t ~home =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    let rec await () =
      if t.stopping then None
      else
        match t.batch with
        | Some b when b.b_gen > !seen -> Some b
        | Some _ | None ->
            Condition.wait t.work t.lock;
            await ()
    in
    let job = await () in
    Mutex.unlock t.lock;
    match job with
    | None -> running := false
    | Some b ->
        seen := b.b_gen;
        run_batch t b ~home
  done

let create ?jobs () =
  let n_jobs = match jobs with Some j -> j | None -> default_jobs () in
  if n_jobs < 1 then invalid_arg "Engine.Pool.create: jobs < 1";
  let t =
    {
      n_jobs;
      lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      batch = None;
      gen = 0;
      stopping = false;
      workers = [||];
    }
  in
  t.workers <-
    Array.init (n_jobs - 1) (fun w ->
        Domain.spawn (fun () -> worker_loop t ~home:(w + 1)));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let reraise_first (results : ('b, exn) result option array) =
  Array.iter
    (function Some (Error e) -> raise e | Some (Ok _) | None -> ())
    results;
  Array.map
    (function
      | Some (Ok x) -> x
      | Some (Error _) | None ->
          failwith "Engine.Pool.map: task neither completed nor failed")
    results

let map t f xs =
  let n = Array.length xs in
  if t.stopping then invalid_arg "Engine.Pool.map: pool is shut down";
  if t.n_jobs = 1 || n <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let exec i = results.(i) <- Some (try Ok (f xs.(i)) with e -> Error e) in
    let lanes = Stdlib.min t.n_jobs n in
    let lane_lo l = l * n / lanes in
    let b =
      {
        b_gen = t.gen + 1;
        size = n;
        lanes;
        cursors = Array.init lanes (fun l -> Atomic.make (lane_lo l));
        bounds = Array.init lanes (fun l -> lane_lo (l + 1));
        exec;
        completed = Atomic.make 0;
      }
    in
    Mutex.lock t.lock;
    t.gen <- b.b_gen;
    t.batch <- Some b;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    (* The caller is worker 0: it helps drain the batch, then sleeps
       until the stragglers' last fetch-and-add wakes it. *)
    run_batch t b ~home:0;
    Mutex.lock t.lock;
    while Atomic.get b.completed < n do
      Condition.wait t.idle t.lock
    done;
    t.batch <- None;
    Mutex.unlock t.lock;
    reraise_first results
  end

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

let tabulate t n f = map t f (Array.init n (fun i -> i))
