(** Hash-consing pools for immutable records.

    [share pool v] returns a canonical physically-shared copy of the
    structurally-equal value seen first, so N flows created from the
    same profile hold one config record, not N.  Only intern values
    that are deeply immutable and compare structurally (no closures).
    Pools are domain-local; create them at module init. *)

type 'a pool

val pool : unit -> 'a pool

val share : 'a pool -> 'a -> 'a
