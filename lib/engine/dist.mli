(** Random variates over an {!Rng.t} stream.

    Every sampler takes the generator explicitly so that call sites make
    their randomness dependency visible and seedable. *)

val exponential : Rng.t -> mean:float -> float
(** Exponentially distributed, [mean > 0]. *)

val pareto : Rng.t -> shape:float -> scale:float -> float
(** Pareto (type I): density [shape * scale^shape / x^(shape+1)] for
    [x >= scale]. Used for heavy-tailed on-off burst sizes. *)

val normal : Rng.t -> mean:float -> stddev:float -> float
(** Gaussian via Box–Muller. *)

val geometric : Rng.t -> p:float -> int
(** Number of Bernoulli(p) failures before the first success; [0 < p <= 1]. *)

val uniform_range : Rng.t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]; requires [lo < hi]. *)

val poisson : Rng.t -> mean:float -> int
(** Poisson-distributed count (Knuth's method; adequate for mean ≲ 500). *)

val log_uniform_range : Rng.t -> lo:float -> hi:float -> float
(** Log-uniform in [\[lo, hi)]; requires [0 < lo < hi].  The natural
    sampler for scale parameters spanning decades (link rates, loss
    probabilities) where every order of magnitude should be equally
    likely. *)

val choice : Rng.t -> 'a array -> 'a
(** Uniform pick from a non-empty array. *)

val weighted : Rng.t -> (float * 'a) list -> 'a
(** Pick with probability proportional to the (non-negative) weights;
    at least one weight must be positive. *)
