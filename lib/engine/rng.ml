type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: expands a 64-bit seed into the 256-bit xoshiro state.
   Reference: Vigna, http://prng.di.unimi.it/splitmix64.c *)
let splitmix64 state =
  let ( +% ) = Int64.add and ( *% ) = Int64.mul in
  state := !state +% 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = (Int64.logxor z (Int64.shift_right_logical z 30)) *% 0xBF58476D1CE4E5B9L in
  let z = (Int64.logxor z (Int64.shift_right_logical z 27)) *% 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** step. Reference: Blackman & Vigna. *)
let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) in
  create ~seed

(* Top 53 bits give a uniform float in [0,1). *)
let uniform t =
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. (1.0 /. 9007199254740992.0)

let float t b =
  assert (b > 0.0);
  uniform t *. b

let int t n =
  assert (n >= 1);
  if n = 1 then 0
  else begin
    (* Rejection sampling over the top bits to avoid modulo bias. *)
    let n64 = Int64.of_int n in
    let limit = Int64.sub (Int64.div Int64.max_int n64) 1L in
    let bound = Int64.mul limit n64 in
    let rec draw () =
      let x = Int64.shift_right_logical (bits64 t) 1 in
      if x >= bound && bound > 0L then draw () else Int64.to_int (Int64.rem x n64)
    in
    draw ()
  end

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let chance t p =
  if p <= 0.0 then false else if p >= 1.0 then true else uniform t < p
