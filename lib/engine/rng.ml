type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  origin : int64;
      (* identity of the creating seed, fixed at [create] time: the
         base every [derive]d child is keyed from, so child streams
         are independent of how many draws the parent has made. *)
}

(* splitmix64's finalizer: a bijective 64-bit mixer.
   Reference: Vigna, http://prng.di.unimi.it/splitmix64.c *)
let mix64 z =
  let ( *% ) = Int64.mul in
  let z = (Int64.logxor z (Int64.shift_right_logical z 30)) *% 0xBF58476D1CE4E5B9L in
  let z = (Int64.logxor z (Int64.shift_right_logical z 27)) *% 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64: expands a 64-bit seed into the 256-bit xoshiro state. *)
let splitmix64 state =
  state := Int64.add !state golden_gamma;
  mix64 !state

let of_state state =
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; origin = !state }

let create ~seed = of_state (ref (Int64.of_int seed))

let copy t = { t with s0 = t.s0 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** step. Reference: Blackman & Vigna. *)
let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) in
  create ~seed

(* The key is mixed before combining so that adjacent keys do not
   yield splitmix walks offset by one step of each other (which would
   make stream k's outputs a shift of stream k+1's). *)
let derive t ~key =
  of_state (ref (mix64 (Int64.logxor t.origin (mix64 (Int64.of_int key)))))

(* Top 53 bits give a uniform float in [0,1). *)
let uniform t =
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. (1.0 /. 9007199254740992.0)

let float t b =
  assert (b > 0.0);
  uniform t *. b

let int t n =
  assert (n >= 1);
  if n = 1 then 0
  else begin
    (* Rejection sampling over the top bits to avoid modulo bias. *)
    let n64 = Int64.of_int n in
    let limit = Int64.sub (Int64.div Int64.max_int n64) 1L in
    let bound = Int64.mul limit n64 in
    let rec draw () =
      let x = Int64.shift_right_logical (bits64 t) 1 in
      if x >= bound && bound > 0L then draw () else Int64.to_int (Int64.rem x n64)
    in
    draw ()
  end

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let chance t p =
  if p <= 0.0 then false else if p >= 1.0 then true else uniform t < p
