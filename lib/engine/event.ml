let noop () = ()

type t = {
  mutable time : float;
  mutable seq : int;
  mutable run : unit -> unit;
  mutable live : bool;
  mutable gen : int;
  mutable tick : int;
  mutable where : int;
  mutable pos : int;
}

let in_none = -2

let in_ready = -1

let make_dummy () =
  {
    time = 0.0;
    seq = -1;
    run = noop;
    live = false;
    gen = 0;
    tick = 0;
    where = in_none;
    pos = 0;
  }

let compare a b =
  match Float.compare a.time b.time with 0 -> Int.compare a.seq b.seq | c -> c
