(** Growable circular FIFO with allocation-free steady-state push/pop.

    A drop-in replacement for [Queue.t] on simulation hot paths: the
    backing array doubles on overflow, and popped slots are overwritten
    with the [dummy] element so the ring never retains references to
    values it no longer holds. *)

type 'a t

val create : dummy:'a -> 'a t
(** [dummy] pads unused array slots; it is never returned. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the tail.  Amortized O(1), allocation-free unless the
    ring must grow. *)

val pop : 'a t -> 'a
(** Remove the head.  Raises [Invalid_argument] when empty. *)

val peek_opt : 'a t -> 'a option
(** The head without removing it, or [None] when empty. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Head-to-tail iteration. *)

val clear : 'a t -> unit
