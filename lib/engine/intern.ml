(* Hash-consing pools for immutable configuration records.

   Ten thousand flows opened from the same profile carry structurally
   equal config/params records; interning collapses them to one shared
   copy per distinct value.  Pools are domain-local (the same DLS
   discipline as the trace recorder), so sharing is deterministic and
   race-free under the worker pool: each domain builds its own copy of
   each distinct value, which is still O(distinct configs), not
   O(flows). *)

type 'a pool = ('a, 'a) Hashtbl.t Domain.DLS.key

let pool () : 'a pool = Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let share (p : 'a pool) v =
  let tbl = Domain.DLS.get p in
  match Hashtbl.find_opt tbl v with
  | Some shared -> shared
  | None ->
      Hashtbl.add tbl v v;
      v
