type 'a t = {
  compare : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~compare = { compare; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

(* The backing array doubles on demand; slot 0 is the root. *)
let ensure_capacity t =
  let cap = Array.length t.data in
  if t.size >= cap then begin
    let dummy = t.data.(0) in
    let data = Array.make (Stdlib.max 8 (2 * cap)) dummy in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let swap t i j =
  let x = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.compare t.data.(i) t.data.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && t.compare t.data.(left) t.data.(!smallest) < 0 then
    smallest := left;
  if right < t.size && t.compare t.data.(right) t.data.(!smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add t x =
  if t.size = 0 && Array.length t.data = 0 then t.data <- Array.make 8 x;
  ensure_capacity t;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let min t = if t.size = 0 then None else Some t.data.(0)

let pop_min t =
  if t.size = 0 then None
  else begin
    let root = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some root
  end

let clear t = t.size <- 0

let to_sorted_list t =
  if t.size = 0 then []
  else begin
    let copy = { t with data = Array.sub t.data 0 t.size } in
    let rec drain acc =
      match pop_min copy with None -> List.rev acc | Some x -> drain (x :: acc)
    in
    drain []
  end
