(** Discrete-event simulation core.

    A simulation owns a virtual clock and an event queue.  Events are
    thunks scheduled at absolute or relative virtual times; ties are
    broken by insertion order so runs are fully deterministic.  Time is
    in seconds (float). *)

type t

type handle
(** Cancellation token for a scheduled event. *)

val create : ?seed:int -> unit -> t
(** Fresh simulation at time 0.  [seed] (default 42) seeds the root RNG
    from which components should [split] their own streams. *)

val now : t -> float
(** Current virtual time. *)

val rng : t -> Rng.t
(** The root random stream of this simulation. *)

val split_rng : t -> Rng.t
(** Convenience for [Rng.split (rng t)]. *)

val schedule_at : t -> float -> (unit -> unit) -> handle
(** [schedule_at t time f] runs [f] at virtual [time].  Scheduling in the
    past raises [Invalid_argument]. *)

val schedule_after : t -> float -> (unit -> unit) -> handle
(** [schedule_after t delay f] = [schedule_at t (now t +. delay) f]. *)

val cancel : t -> handle -> unit
(** Cancel a pending event; cancelling a fired or cancelled event is a
    no-op. *)

val pending : t -> int
(** Number of events still queued (including cancelled placeholders). *)

val run : ?until:float -> t -> unit
(** Drain the event queue in time order.  With [until], stops once the
    next event is strictly later than [until] and advances the clock to
    [until].  Without it, runs until the queue empties. *)

val step : t -> bool
(** Execute the single next event. [false] if the queue was empty. *)
