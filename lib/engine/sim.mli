(** Discrete-event simulation core.

    A simulation owns a virtual clock and an event queue.  Events are
    thunks scheduled at absolute or relative virtual times; ties are
    broken by insertion order so runs are fully deterministic.  Time is
    in seconds (float).

    Two interchangeable schedulers sit behind the queue: a hierarchical
    timer wheel ({!Wheel}, the default — O(1) amortized insert/cancel)
    and a binary heap ({!Heap} — O(log n), kept as the differential
    reference).  Both fire events in identical (time, insertion) order;
    the choice is observable only through performance and through
    {!pending}'s accounting of cancelled events. *)

type t

type sched = [ `Heap | `Wheel ]
(** Event-queue backend: [`Wheel] is the hierarchical timer wheel
    (default), [`Heap] the reference binary heap. *)

type handle
(** Cancellation token for a scheduled event. *)

val create : ?seed:int -> ?sched:sched -> unit -> t
(** Fresh simulation at time 0.  [seed] (default 42) seeds the root RNG
    from which components should [split] their own streams.  [sched]
    picks the queue backend (default [`Wheel]). *)

val sched : t -> sched
(** Which backend this simulation runs on. *)

val now : t -> float
(** Current virtual time. *)

val rng : t -> Rng.t
(** The root random stream of this simulation. *)

val split_rng : t -> Rng.t
(** Convenience for [Rng.split (rng t)]. *)

val arena : t -> Slab.layout -> Slab.t
(** The simulation's shared arena for [layout], created lazily on first
    request.  All flows of one state family inside a simulation pack
    their slots into this one arena, so per-flow state is two flat
    arrays per family instead of a record per flow. *)

val schedule_at : t -> float -> (unit -> unit) -> handle
(** [schedule_at t time f] runs [f] at virtual [time].  Scheduling in the
    past raises [Invalid_argument]. *)

val schedule_after : t -> float -> (unit -> unit) -> handle
(** [schedule_after t delay f] = [schedule_at t (now t +. delay) f]. *)

val post_at : t -> float -> (unit -> unit) -> unit
(** Fire-and-forget {!schedule_at}: no cancellation handle is built, so
    hot paths that never cancel (link transmission, propagation) avoid
    the per-event handle allocation. *)

val post_after : t -> float -> (unit -> unit) -> unit
(** Fire-and-forget {!schedule_after}. *)

val schedule_after_ev : t -> float -> (unit -> unit) -> Event.t
(** Handle-free {!schedule_after} for owners that keep the event record
    itself (timers, send ticks): returns the scheduled event, whose
    [gen] must be captured immediately for a later {!cancel_ev}.  Saves
    the per-arming handle allocation on hot re-arm paths. *)

val cancel_ev : t -> Event.t -> gen:int -> unit
(** Cancel an event obtained from {!schedule_after_ev}.  [gen] is the
    event's generation at scheduling time; a stale pair (the event has
    already fired and been recycled) is a no-op, exactly like a stale
    {!handle}. *)

val cancel : t -> handle -> unit
(** Cancel a pending event; cancelling a fired or cancelled event is a
    no-op.  A cancelled event never runs and never advances the
    clock. *)

val pending : t -> int
(** Number of events still queued.  Under [`Wheel] cancelled events are
    removed immediately so this counts live events exactly; under
    [`Heap] cancelled placeholders linger (and are counted) until they
    would have fired. *)

val executed : t -> int
(** Events run so far — the denominator for events/sec throughput
    accounting.  Cancelled events do not count. *)

val run : ?until:float -> t -> unit
(** Drain the event queue in time order.  With [until], stops once the
    next live event is strictly later than [until] and advances the
    clock to [until].  Without it, runs until the queue empties. *)

val step : t -> bool
(** Execute the single next live event. [false] if none remain. *)

type trace_op =
  | T_schedule of float  (** an event was enqueued for this time *)
  | T_cancel of int  (** the event with this sequence number was cancelled *)
  | T_pop  (** the next live event fired *)

val set_tracer : t -> (trace_op -> unit) option -> unit
(** Observe the raw scheduler operation stream.  The benchmark suite
    records a scenario's trace once, then replays it against each bare
    queue backend to measure scheduler throughput in isolation from
    protocol work.  [None] (the default) disables tracing; the hook
    costs one branch per operation when unset. *)
