(** A reusable work-stealing domain pool for embarrassingly-parallel
    fan-out (fuzz seeds, experiment tables, bench scenarios, golden
    replays).

    The pool owns [jobs - 1] worker domains (the caller participates as
    the remaining worker, so [jobs = 1] spawns nothing and degenerates
    to plain sequential execution).  A batch of [n] independent tasks is
    split into [jobs] contiguous lanes, each with its own atomic cursor;
    a worker drains its own lane and then steals from the other lanes'
    cursors, so uneven task durations balance without a central queue.

    {b Determinism contract.}  Results are always delivered in
    submission order, whatever interleaving the domains produced, and a
    task's exception is re-raised at the lowest failing index.  A task
    must derive everything it does from its own inputs (typically a
    seed): ambient per-domain state (the flight recorder, the
    [Qtp.Inspect] hooks, frame-uid counters) is domain-local, so tasks
    never observe each other.  Under that contract [map] output is a
    pure function of the inputs — byte-identical at [jobs = 1] and
    [jobs = N] — which the [@par-smoke] alias enforces on every test
    run.

    Tasks must not submit work to the pool they run on (no nesting);
    [Domain.spawn] outside this module is rejected by the source lint. *)

type t

val default_jobs : unit -> int
(** [$VTP_JOBS] if set (clamped to [\[1, 128\]]), else
    [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] workers (default {!default_jobs}).  The
    calling domain counts as one worker: [jobs - 1] domains are
    spawned.  [jobs < 1] raises [Invalid_argument]. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] computes [f] over every element, in parallel across
    the pool's workers, and returns the results {e in submission
    order}.  If any task raised, the exception of the lowest-index
    failing task is re-raised after the whole batch has settled.  Not
    re-entrant: must be called from the domain that created the pool,
    and never from inside a task. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)

val tabulate : t -> int -> (int -> 'b) -> 'b array
(** [tabulate pool n f] is [map pool f [|0; ...; n-1|]]. *)

val shutdown : t -> unit
(** Join every worker domain.  Idempotent.  The pool must not be used
    afterwards. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down
    afterwards, even on exception. *)
