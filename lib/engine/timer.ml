type t = {
  sim : Sim.t;
  on_expire : unit -> unit;
  mutable pending : Sim.handle option;
  mutable deadline : float option;
}

let create sim ~on_expire = { sim; on_expire; pending = None; deadline = None }

let stop t =
  (match t.pending with Some h -> Sim.cancel t.sim h | None -> ());
  t.pending <- None;
  t.deadline <- None

let start t ~after =
  stop t;
  let fire () =
    t.pending <- None;
    t.deadline <- None;
    t.on_expire ()
  in
  t.deadline <- Some (Sim.now t.sim +. after);
  t.pending <- Some (Sim.schedule_after t.sim after fire)

let is_armed t = t.pending <> None

let deadline t = t.deadline
