(* Restartable one-shot timer over [Sim] scheduling.

   Arming is allocation-free in steady state: the expiry thunk is built
   once at [create], and the pending event is referenced directly
   (event + generation) rather than through an option-wrapped handle,
   so protocol state machines that re-arm on every feedback or RTT do
   not churn the minor heap. *)

type t = {
  sim : Sim.t;
  mutable fire : unit -> unit;  (* built once in [create] *)
  mutable ev : Event.t;  (* pending event; meaningful only when armed *)
  mutable gen : int;  (* generation of [ev] when it was scheduled *)
  mutable armed : bool;
}

let create sim ~on_expire =
  let t =
    {
      sim;
      fire = Event.noop;
      ev = Event.make_dummy ();
      gen = 0;
      armed = false;
    }
  in
  t.fire <-
    (fun () ->
      t.armed <- false;
      on_expire ());
  t

let stop t =
  if t.armed then begin
    t.armed <- false;
    Sim.cancel_ev t.sim t.ev ~gen:t.gen
  end

let[@vtp.hot] start t ~after =
  stop t;
  let ev = Sim.schedule_after_ev t.sim after t.fire in
  t.ev <- ev;
  t.gen <- ev.Event.gen;
  t.armed <- true

let is_armed t = t.armed

let deadline t = if t.armed then Some t.ev.Event.time else None
