type sack_block = { block_start : Serial.t; block_end : Serial.t }

type data = {
  seq : Serial.t;
  tstamp : float;
  rtt_estimate : float;
  is_retransmit : bool;
  fwd_point : Serial.t;
}

type feedback = {
  tstamp_echo : float;
  t_delay : float;
  x_recv : float;
  p : float;
  recv_seq : Serial.t;
}

type sack_feedback = {
  cum_ack : Serial.t;
  blocks : sack_block list;
  sack_tstamp_echo : float;
  sack_t_delay : float;
  sack_x_recv : float;
  sack_ce_count : int;
}

type handshake_kind = Syn | Syn_ack | Ack_hs | Close | Close_ack

type handshake = { kind : handshake_kind; payload : string }

type t =
  | Data of data
  | Feedback of feedback
  | Sack_feedback of sack_feedback
  | Handshake of handshake

(* Sizes mirror the wire codec layout (see Wire): a 4-byte common prefix
   (type tag + checksum) plus the per-kind fields. *)
let common_prefix_bytes = 4

let data_header_bytes = common_prefix_bytes + 4 + 8 + 8 + 1 + 4

let feedback_bytes = common_prefix_bytes + 8 + 8 + 8 + 8 + 4

let sack_feedback_bytes ~blocks =
  common_prefix_bytes + 4 + 1 + (8 * blocks) + 8 + 8 + 8 + 4

let wire_size t ~payload =
  match t with
  | Data _ -> data_header_bytes + payload
  | Feedback _ -> feedback_bytes
  | Sack_feedback sf -> sack_feedback_bytes ~blocks:(List.length sf.blocks)
  | Handshake h -> common_prefix_bytes + 1 + 2 + String.length h.payload

let seq_of = function
  | Data d -> Some d.seq
  | Feedback _ | Sack_feedback _ | Handshake _ -> None

let pp fmt = function
  | Data d ->
      Format.fprintf fmt "DATA(seq=%a%s)" Serial.pp d.seq
        (if d.is_retransmit then ",retx" else "")
  | Feedback f ->
      Format.fprintf fmt "FB(p=%.4f,x_recv=%.0f,seq=%a)" f.p f.x_recv
        Serial.pp f.recv_seq
  | Sack_feedback sf ->
      Format.fprintf fmt "SACK(cum=%a,blocks=%d,x_recv=%.0f)" Serial.pp
        sf.cum_ack (List.length sf.blocks) sf.sack_x_recv
  | Handshake h ->
      let kind =
        match h.kind with
        | Syn -> "SYN"
        | Syn_ack -> "SYN-ACK"
        | Ack_hs -> "ACK"
        | Close -> "CLOSE"
        | Close_ack -> "CLOSE-ACK"
      in
      Format.fprintf fmt "HS(%s,%dB)" kind (String.length h.payload)
