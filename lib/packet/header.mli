(** VTP segment headers.

    A connection exchanges four families of segments:

    - [Data]: one application payload chunk, sequence-numbered.
    - [Feedback]: an RFC 3448 receiver report — the standard TFRC
      feedback plane, carrying the receiver-computed loss event rate.
    - [Sack_feedback]: the "light" feedback plane of QTP_light — a
      cumulative acknowledgment plus SACK blocks (RFC 2018 shape) and the
      cheap receiver measurements (receive rate, timestamp echo).  The
      loss event rate is absent: the sender reconstructs it.
    - [Handshake]: capability negotiation; the payload is opaque here and
      interpreted by the composition layer. *)

type sack_block = { block_start : Serial.t; block_end : Serial.t }
(** Half-open range [\[block_start, block_end)] of received sequence
    numbers, as in RFC 2018 (left edge, right edge). *)

type data = {
  seq : Serial.t;
  tstamp : float;  (** sender clock when emitted *)
  rtt_estimate : float;  (** sender's current RTT estimate, for the
      receiver's loss-event grouping and feedback pacing *)
  is_retransmit : bool;
  fwd_point : Serial.t;
      (** PR-SCTP-style forward point: the receiver may consider every
          sequence number below this final (holes abandoned) and advance
          its cumulative ack past them.  Under full reliability this is
          simply the sender's lowest unacknowledged number; under
          partial/no reliability it is how the sender tells the receiver
          to stop waiting, keeping receiver state bounded. *)
}

type feedback = {
  tstamp_echo : float;  (** timestamp of the packet that triggered this *)
  t_delay : float;  (** receiver hold time between reception and report *)
  x_recv : float;  (** receive rate, bytes/s *)
  p : float;  (** receiver-computed loss event rate *)
  recv_seq : Serial.t;  (** highest sequence number seen *)
}

type sack_feedback = {
  cum_ack : Serial.t;  (** next expected sequence number *)
  blocks : sack_block list;  (** most recently changed first; bounded *)
  sack_tstamp_echo : float;
  sack_t_delay : float;
  sack_x_recv : float;  (** receive rate — O(1) for the receiver to keep *)
  sack_ce_count : int;
      (** cumulative count of ECN Congestion-Experienced marks seen by
          the receiver — the light plane's congestion-signal echo
          (cumulative so that lost reports lose no information) *)
}

type handshake_kind =
  | Syn
  | Syn_ack
  | Ack_hs
  | Close  (** sender has drained its reliability obligations *)
  | Close_ack

type handshake = { kind : handshake_kind; payload : string }

type t =
  | Data of data
  | Feedback of feedback
  | Sack_feedback of sack_feedback
  | Handshake of handshake

val data_header_bytes : int
(** On-wire size of a data header (excluding payload). *)

val feedback_bytes : int
(** On-wire size of an RFC 3448 feedback segment. *)

val sack_feedback_bytes : blocks:int -> int
(** On-wire size of a SACK feedback segment carrying [blocks] blocks. *)

val wire_size : t -> payload:int -> int
(** Total on-wire size of a segment with [payload] bytes of user data
    (only [Data] carries payload). *)

val seq_of : t -> Serial.t option
(** The data sequence number, when the segment is [Data]. *)

val pp : Format.formatter -> t -> unit
