type t = {
  id : int;
  flow_id : int;
  hdr : Header.t;
  payload : int;
  sent_at : float;
}

let make ~id ~flow_id ~hdr ~payload ~sent_at =
  { id; flow_id; hdr; payload; sent_at }

let size t = Header.wire_size t.hdr ~payload:t.payload

let is_data t = match t.hdr with Header.Data _ -> true | _ -> false

let seq t = Header.seq_of t.hdr

let pp fmt t =
  Format.fprintf fmt "#%d flow=%d %a payload=%dB" t.id t.flow_id Header.pp
    t.hdr t.payload
