exception Malformed of string

(* Accumulators ride in parameters rather than two [ref] cells: the
   checksum runs once per encode/decode, so keep it allocation-free. *)
let[@vtp.hot] rec fletcher_pass buf i stop sum1 sum2 =
  if i > stop then (sum2 lsl 8) lor sum1
  else
    let sum1 = (sum1 + Char.code (Bytes.get buf i)) mod 255 in
    fletcher_pass buf (i + 1) stop sum1 ((sum2 + sum1) mod 255)

let[@vtp.hot] fletcher16 buf ~pos ~len =
  fletcher_pass buf pos (pos + len - 1) 0 0

(* Tags for the common prefix. *)
let tag_data = 1
let tag_feedback = 2
let tag_sack = 3
let tag_handshake = 4

module W = struct
  (* every writer primitive sits on the encode fast path *)
  [@@@vtp.hot]

  type t = { mutable buf : Bytes.t; mutable len : int }

  let create n = { buf = Bytes.create n; len = 0 }

  let ensure t n =
    if t.len + n > Bytes.length t.buf then begin
      let buf = Bytes.create (Stdlib.max (t.len + n) (2 * Bytes.length t.buf)) in
      Bytes.blit t.buf 0 buf 0 t.len;
      t.buf <- buf
    end

  let u8 t v =
    ensure t 1;
    Bytes.set_uint8 t.buf t.len (v land 0xFF);
    t.len <- t.len + 1

  let u16 t v =
    ensure t 2;
    Bytes.set_uint16_be t.buf t.len (v land 0xFFFF);
    t.len <- t.len + 2

  let u32 t v =
    ensure t 4;
    Bytes.set_int32_be t.buf t.len (Int32.of_int (v land 0xFFFFFFFF));
    t.len <- t.len + 4

  let f64 t v =
    ensure t 8;
    Bytes.set_int64_be t.buf t.len (Int64.bits_of_float v);
    t.len <- t.len + 8

  let string t s =
    ensure t (String.length s);
    Bytes.blit_string s 0 t.buf t.len (String.length s);
    t.len <- t.len + String.length s
end

module R = struct
  type t = { buf : Bytes.t; mutable pos : int }

  let create buf pos = { buf; pos }

  let need t n =
    if t.pos + n > Bytes.length t.buf then raise (Malformed "truncated")

  let u8 t =
    need t 1;
    let v = Bytes.get_uint8 t.buf t.pos in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2;
    let v = Bytes.get_uint16_be t.buf t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    need t 4;
    let v = Int32.to_int (Bytes.get_int32_be t.buf t.pos) land 0xFFFFFFFF in
    t.pos <- t.pos + 4;
    v

  let f64 t =
    need t 8;
    let v = Int64.float_of_bits (Bytes.get_int64_be t.buf t.pos) in
    t.pos <- t.pos + 8;
    v

  let string t n =
    need t n;
    let s = Bytes.sub_string t.buf t.pos n in
    t.pos <- t.pos + n;
    s
end

let write_body w hdr =
  match hdr with
  | Header.Data d ->
      W.u32 w (Serial.to_int d.seq);
      W.f64 w d.tstamp;
      W.f64 w d.rtt_estimate;
      W.u8 w (if d.is_retransmit then 1 else 0);
      W.u32 w (Serial.to_int d.fwd_point)
  | Header.Feedback f ->
      W.f64 w f.tstamp_echo;
      W.f64 w f.t_delay;
      W.f64 w f.x_recv;
      W.f64 w f.p;
      W.u32 w (Serial.to_int f.recv_seq)
  | Header.Sack_feedback sf ->
      W.u32 w (Serial.to_int sf.cum_ack);
      let blocks = sf.blocks in
      W.u8 w (List.length blocks);
      List.iter
        (fun { Header.block_start; block_end } ->
          W.u32 w (Serial.to_int block_start);
          W.u32 w (Serial.to_int block_end))
        blocks;
      W.f64 w sf.sack_tstamp_echo;
      W.f64 w sf.sack_t_delay;
      W.f64 w sf.sack_x_recv;
      W.u32 w sf.sack_ce_count
  | Header.Handshake h ->
      let kind =
        match h.kind with
        | Syn -> 0
        | Syn_ack -> 1
        | Ack_hs -> 2
        | Close -> 3
        | Close_ack -> 4
      in
      W.u8 w kind;
      W.u16 w (String.length h.payload);
      W.string w h.payload

let tag_of = function
  | Header.Data _ -> tag_data
  | Header.Feedback _ -> tag_feedback
  | Header.Sack_feedback _ -> tag_sack
  | Header.Handshake _ -> tag_handshake

(* One scratch writer per domain: the 4-byte prefix and the body are
   laid out in place and the only per-call allocation is the returned
   copy.  A simulation runs entirely on one domain and [write_body]
   cannot re-enter [encode], so domain-local reuse is safe — and
   parallel simulations (Engine.Pool) never share a buffer. *)
let scratch = Domain.DLS.new_key (fun () -> W.create 256)

let[@vtp.hot] encode hdr =
  let w = Domain.DLS.get scratch in
  w.W.len <- 0;
  W.u8 w (tag_of hdr);
  W.u8 w 0;
  W.u16 w 0 (* checksum, patched once the body is in place *);
  write_body w hdr;
  let ck = fletcher16 w.W.buf ~pos:4 ~len:(w.W.len - 4) in
  Bytes.set_uint16_be w.W.buf 2 ck;
  Bytes.sub w.W.buf 0 w.W.len

let decode buf =
  if Bytes.length buf < 4 then raise (Malformed "short prefix");
  let tag = Bytes.get_uint8 buf 0 in
  let ck = Bytes.get_uint16_be buf 2 in
  let body_len = Bytes.length buf - 4 in
  if fletcher16 buf ~pos:4 ~len:body_len <> ck then
    raise (Malformed "checksum mismatch");
  let r = R.create buf 4 in
  if tag = tag_data then
    let seq = Serial.of_int (R.u32 r) in
    let tstamp = R.f64 r in
    let rtt_estimate = R.f64 r in
    let is_retransmit = R.u8 r <> 0 in
    let fwd_point = Serial.of_int (R.u32 r) in
    Header.Data { seq; tstamp; rtt_estimate; is_retransmit; fwd_point }
  else if tag = tag_feedback then
    let tstamp_echo = R.f64 r in
    let t_delay = R.f64 r in
    let x_recv = R.f64 r in
    let p = R.f64 r in
    let recv_seq = Serial.of_int (R.u32 r) in
    Header.Feedback { tstamp_echo; t_delay; x_recv; p; recv_seq }
  else if tag = tag_sack then begin
    let cum_ack = Serial.of_int (R.u32 r) in
    let n = R.u8 r in
    let blocks =
      List.init n (fun _ ->
          let block_start = Serial.of_int (R.u32 r) in
          let block_end = Serial.of_int (R.u32 r) in
          { Header.block_start; block_end })
    in
    let sack_tstamp_echo = R.f64 r in
    let sack_t_delay = R.f64 r in
    let sack_x_recv = R.f64 r in
    let sack_ce_count = R.u32 r in
    Header.Sack_feedback
      {
        cum_ack;
        blocks;
        sack_tstamp_echo;
        sack_t_delay;
        sack_x_recv;
        sack_ce_count;
      }
  end
  else if tag = tag_handshake then begin
    let kind =
      match R.u8 r with
      | 0 -> Header.Syn
      | 1 -> Header.Syn_ack
      | 2 -> Header.Ack_hs
      | 3 -> Header.Close
      | 4 -> Header.Close_ack
      | k -> raise (Malformed (Printf.sprintf "handshake kind %d" k))
    in
    let len = R.u16 r in
    let payload = R.string r len in
    Header.Handshake { kind; payload }
  end
  else raise (Malformed (Printf.sprintf "tag %d" tag))
