exception Malformed of string

(* Accumulators ride in parameters rather than two [ref] cells: the
   checksum runs once per encode/decode, so keep it allocation-free. *)
let[@vtp.hot] rec fletcher_pass buf i stop sum1 sum2 =
  if i > stop then (sum2 lsl 8) lor sum1
  else
    let sum1 = (sum1 + Char.code (Bytes.get buf i)) mod 255 in
    fletcher_pass buf (i + 1) stop sum1 ((sum2 + sum1) mod 255)

let[@vtp.hot] fletcher16 buf ~pos ~len =
  fletcher_pass buf pos (pos + len - 1) 0 0

(* Tags for the common prefix. *)
let tag_data = 1
let tag_feedback = 2
let tag_sack = 3
let tag_handshake = 4

module W = struct
  (* every writer primitive sits on the encode fast path *)
  [@@@vtp.hot]

  type t = { mutable buf : Bytes.t; mutable len : int }

  let create n = { buf = Bytes.create n; len = 0 }

  let ensure t n =
    if t.len + n > Bytes.length t.buf then begin
      let buf = Bytes.create (Stdlib.max (t.len + n) (2 * Bytes.length t.buf)) in
      Bytes.blit t.buf 0 buf 0 t.len;
      t.buf <- buf
    end

  let u8 t v =
    ensure t 1;
    Bytes.set_uint8 t.buf t.len (v land 0xFF);
    t.len <- t.len + 1

  let u16 t v =
    ensure t 2;
    Bytes.set_uint16_be t.buf t.len (v land 0xFFFF);
    t.len <- t.len + 2

  let u32 t v =
    ensure t 4;
    Bytes.set_int32_be t.buf t.len (Int32.of_int (v land 0xFFFFFFFF));
    t.len <- t.len + 4

  let f64 t v =
    ensure t 8;
    Bytes.set_int64_be t.buf t.len (Int64.bits_of_float v);
    t.len <- t.len + 8

  let string t s =
    ensure t (String.length s);
    Bytes.blit_string s 0 t.buf t.len (String.length s);
    t.len <- t.len + String.length s
end

module R = struct
  type t = { buf : Bytes.t; mutable pos : int }

  let create buf pos = { buf; pos }

  let need t n =
    if t.pos + n > Bytes.length t.buf then raise (Malformed "truncated")

  let u8 t =
    need t 1;
    let v = Bytes.get_uint8 t.buf t.pos in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2;
    let v = Bytes.get_uint16_be t.buf t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    need t 4;
    let v = Int32.to_int (Bytes.get_int32_be t.buf t.pos) land 0xFFFFFFFF in
    t.pos <- t.pos + 4;
    v

  let f64 t =
    need t 8;
    let v = Int64.float_of_bits (Bytes.get_int64_be t.buf t.pos) in
    t.pos <- t.pos + 8;
    v

  let string t n =
    need t n;
    let s = Bytes.sub_string t.buf t.pos n in
    t.pos <- t.pos + n;
    s
end

let write_body w hdr =
  match hdr with
  | Header.Data d ->
      W.u32 w (Serial.to_int d.seq);
      W.f64 w d.tstamp;
      W.f64 w d.rtt_estimate;
      W.u8 w (if d.is_retransmit then 1 else 0);
      W.u32 w (Serial.to_int d.fwd_point)
  | Header.Feedback f ->
      W.f64 w f.tstamp_echo;
      W.f64 w f.t_delay;
      W.f64 w f.x_recv;
      W.f64 w f.p;
      W.u32 w (Serial.to_int f.recv_seq)
  | Header.Sack_feedback sf ->
      W.u32 w (Serial.to_int sf.cum_ack);
      let blocks = sf.blocks in
      W.u8 w (List.length blocks);
      List.iter
        (fun { Header.block_start; block_end } ->
          W.u32 w (Serial.to_int block_start);
          W.u32 w (Serial.to_int block_end))
        blocks;
      W.f64 w sf.sack_tstamp_echo;
      W.f64 w sf.sack_t_delay;
      W.f64 w sf.sack_x_recv;
      W.u32 w sf.sack_ce_count
  | Header.Handshake h ->
      let kind =
        match h.kind with
        | Syn -> 0
        | Syn_ack -> 1
        | Ack_hs -> 2
        | Close -> 3
        | Close_ack -> 4
      in
      W.u8 w kind;
      W.u16 w (String.length h.payload);
      W.string w h.payload

let tag_of = function
  | Header.Data _ -> tag_data
  | Header.Feedback _ -> tag_feedback
  | Header.Sack_feedback _ -> tag_sack
  | Header.Handshake _ -> tag_handshake

(* One scratch writer per domain: the 4-byte prefix and the body are
   laid out in place and the only per-call allocation is the returned
   copy.  A simulation runs entirely on one domain and [write_body]
   cannot re-enter [encode], so domain-local reuse is safe — and
   parallel simulations (Engine.Pool) never share a buffer. *)
let scratch = Domain.DLS.new_key (fun () -> W.create 256)

let[@vtp.hot] encode hdr =
  let w = Domain.DLS.get scratch in
  w.W.len <- 0;
  W.u8 w (tag_of hdr);
  W.u8 w 0;
  W.u16 w 0 (* checksum, patched once the body is in place *);
  write_body w hdr;
  let ck = fletcher16 w.W.buf ~pos:4 ~len:(w.W.len - 4) in
  Bytes.set_uint16_be w.W.buf 2 ck;
  Bytes.sub w.W.buf 0 w.W.len

let decode buf =
  if Bytes.length buf < 4 then raise (Malformed "short prefix");
  let tag = Bytes.get_uint8 buf 0 in
  let ck = Bytes.get_uint16_be buf 2 in
  let body_len = Bytes.length buf - 4 in
  if fletcher16 buf ~pos:4 ~len:body_len <> ck then
    raise (Malformed "checksum mismatch");
  let r = R.create buf 4 in
  if tag = tag_data then
    let seq = Serial.of_int (R.u32 r) in
    let tstamp = R.f64 r in
    let rtt_estimate = R.f64 r in
    let is_retransmit = R.u8 r <> 0 in
    let fwd_point = Serial.of_int (R.u32 r) in
    Header.Data { seq; tstamp; rtt_estimate; is_retransmit; fwd_point }
  else if tag = tag_feedback then
    let tstamp_echo = R.f64 r in
    let t_delay = R.f64 r in
    let x_recv = R.f64 r in
    let p = R.f64 r in
    let recv_seq = Serial.of_int (R.u32 r) in
    Header.Feedback { tstamp_echo; t_delay; x_recv; p; recv_seq }
  else if tag = tag_sack then begin
    let cum_ack = Serial.of_int (R.u32 r) in
    let n = R.u8 r in
    let blocks =
      List.init n (fun _ ->
          let block_start = Serial.of_int (R.u32 r) in
          let block_end = Serial.of_int (R.u32 r) in
          { Header.block_start; block_end })
    in
    let sack_tstamp_echo = R.f64 r in
    let sack_t_delay = R.f64 r in
    let sack_x_recv = R.f64 r in
    let sack_ce_count = R.u32 r in
    Header.Sack_feedback
      {
        cum_ack;
        blocks;
        sack_tstamp_echo;
        sack_t_delay;
        sack_x_recv;
        sack_ce_count;
      }
  end
  else if tag = tag_handshake then begin
    let kind =
      match R.u8 r with
      | 0 -> Header.Syn
      | 1 -> Header.Syn_ack
      | 2 -> Header.Ack_hs
      | 3 -> Header.Close
      | 4 -> Header.Close_ack
      | k -> raise (Malformed (Printf.sprintf "handshake kind %d" k))
    in
    let len = R.u16 r in
    let payload = R.string r len in
    Header.Handshake { kind; payload }
  end
  else raise (Malformed (Printf.sprintf "tag %d" tag))

(* Zero-copy packed codec: the same byte layout as {!encode}/{!decode},
   but written into a caller-supplied buffer at a fixed layout and read
   back through decode-in-place accessors.  Every primitive is
   [@inline always]: once the accessors inline into a caller's loop
   body, the classic (non-flambda) middle-end keeps the intermediate
   float/int64 values unboxed, so a full SACK roundtrip allocates
   nothing.  {!encode} stays as the allocating reference codec and the
   equivalence oracle for the property tests. *)
module Packed = struct
  [@@@vtp.hot]

  let[@inline always] get_u8 b p = Bytes.get_uint8 b p
  let[@inline always] get_u16 b p = Bytes.get_uint16_be b p

  let[@inline always] get_u32 b p =
    Int32.to_int (Bytes.get_int32_be b p) land 0xFFFFFFFF

  let[@inline always] get_f64 b p =
    Int64.float_of_bits (Bytes.get_int64_be b p)

  let[@inline always] set_u8 b p v = Bytes.set_uint8 b p (v land 0xFF)
  let[@inline always] set_u16 b p v = Bytes.set_uint16_be b p (v land 0xFFFF)

  let[@inline always] set_u32 b p v =
    Bytes.set_int32_be b p (Int32.of_int (v land 0xFFFFFFFF))

  let[@inline always] set_f64 b p v =
    Bytes.set_int64_be b p (Int64.bits_of_float v)

  let measure hdr =
    match hdr with
    | Header.Data _ -> 29
    | Header.Feedback _ -> 40
    | Header.Sack_feedback sf -> 37 + (8 * List.length sf.blocks)
    | Header.Handshake h -> 7 + String.length h.payload

  let rec write_blocks buf off = function
    | [] -> off
    | b :: rest ->
        set_u32 buf off (Serial.to_int b.Header.block_start);
        set_u32 buf (off + 4) (Serial.to_int b.Header.block_end);
        write_blocks buf (off + 8) rest

  let encode_into hdr buf ~pos =
    let n = measure hdr in
    if pos < 0 || pos + n > Bytes.length buf then
      raise (Malformed "buffer too small");
    set_u8 buf pos (tag_of hdr);
    set_u8 buf (pos + 1) 0;
    (match hdr with
    | Header.Data d ->
        set_u32 buf (pos + 4) (Serial.to_int d.seq);
        set_f64 buf (pos + 8) d.tstamp;
        set_f64 buf (pos + 16) d.rtt_estimate;
        set_u8 buf (pos + 24) (if d.is_retransmit then 1 else 0);
        set_u32 buf (pos + 25) (Serial.to_int d.fwd_point)
    | Header.Feedback f ->
        set_f64 buf (pos + 4) f.tstamp_echo;
        set_f64 buf (pos + 12) f.t_delay;
        set_f64 buf (pos + 20) f.x_recv;
        set_f64 buf (pos + 28) f.p;
        set_u32 buf (pos + 36) (Serial.to_int f.recv_seq)
    | Header.Sack_feedback sf ->
        set_u32 buf (pos + 4) (Serial.to_int sf.cum_ack);
        set_u8 buf (pos + 8) (List.length sf.blocks);
        let off = write_blocks buf (pos + 9) sf.blocks in
        set_f64 buf off sf.sack_tstamp_echo;
        set_f64 buf (off + 8) sf.sack_t_delay;
        set_f64 buf (off + 16) sf.sack_x_recv;
        set_u32 buf (off + 24) sf.sack_ce_count
    | Header.Handshake h ->
        let kind =
          match h.kind with
          | Header.Syn -> 0
          | Header.Syn_ack -> 1
          | Header.Ack_hs -> 2
          | Header.Close -> 3
          | Header.Close_ack -> 4
        in
        set_u8 buf (pos + 4) kind;
        set_u16 buf (pos + 5) (String.length h.payload);
        Bytes.blit_string h.payload 0 buf (pos + 7) (String.length h.payload));
    let ck = fletcher16 buf ~pos:(pos + 4) ~len:(n - 4) in
    set_u16 buf (pos + 2) ck;
    n

  let[@vtp.alloc_ok] scratch_key =
    Domain.DLS.new_key (fun () -> Bytes.create 65544)

  let scratch () = Domain.DLS.get scratch_key

  (* frame-start accessors: [b] buffer, [p] frame offset *)
  let[@inline always] tag b p = get_u8 b p
  let[@inline always] flags b p = get_u8 b (p + 1)
  let[@inline always] checksum b p = get_u16 b (p + 2)
  let[@inline always] data_seq b p = get_u32 b (p + 4)
  let[@inline always] data_tstamp b p = get_f64 b (p + 8)
  let[@inline always] data_rtt b p = get_f64 b (p + 16)
  let[@inline always] data_is_retx b p = get_u8 b (p + 24) <> 0
  let[@inline always] data_fwd_point b p = get_u32 b (p + 25)
  let[@inline always] fb_tstamp_echo b p = get_f64 b (p + 4)
  let[@inline always] fb_t_delay b p = get_f64 b (p + 12)
  let[@inline always] fb_x_recv b p = get_f64 b (p + 20)
  let[@inline always] fb_p b p = get_f64 b (p + 28)
  let[@inline always] fb_recv_seq b p = get_u32 b (p + 36)
  let[@inline always] sack_cum_ack b p = get_u32 b (p + 4)
  let[@inline always] sack_nblocks b p = get_u8 b (p + 8)
  let[@inline always] sack_block_start b p i = get_u32 b (p + 9 + (8 * i))
  let[@inline always] sack_block_end b p i = get_u32 b (p + 13 + (8 * i))

  let[@inline always] sack_tail b p = p + 9 + (8 * sack_nblocks b p)
  let[@inline always] sack_tstamp_echo b p = get_f64 b (sack_tail b p)
  let[@inline always] sack_t_delay b p = get_f64 b (sack_tail b p + 8)
  let[@inline always] sack_x_recv b p = get_f64 b (sack_tail b p + 16)
  let[@inline always] sack_ce_count b p = get_u32 b (sack_tail b p + 24)
  let[@inline always] hs_kind b p = get_u8 b (p + 4)
  let[@inline always] hs_payload_len b p = get_u16 b (p + 5)

  let hs_payload b p = Bytes.sub_string b (p + 7) (hs_payload_len b p)

  (* Structural + checksum validation of the frame [pos, pos+len);
     raises on anything {!decode} would reject, without allocating on
     the accept path. *)
  let check buf ~pos ~len =
    if pos < 0 || len < 4 || pos + len > Bytes.length buf then
      raise (Malformed "short prefix");
    let t = tag buf pos in
    let need =
      if t = tag_data then 29
      else if t = tag_feedback then 40
      else if t = tag_sack then
        if len < 9 then raise (Malformed "truncated")
        else 37 + (8 * sack_nblocks buf pos)
      else if t = tag_handshake then
        if len < 7 then raise (Malformed "truncated")
        else if hs_kind buf pos > 4 then raise (Malformed "handshake kind")
        else 7 + hs_payload_len buf pos
      else raise (Malformed "bad tag")
    in
    if len <> need then raise (Malformed "truncated");
    if fletcher16 buf ~pos:(pos + 4) ~len:(len - 4) <> checksum buf pos then
      raise (Malformed "checksum mismatch")

  (* Allocation-free structured read of a checked frame: every field is
     loaded in place and folded into an integer digest (floats via
     their raw bit patterns).  Composed here, in the accessors' own
     unit, because the dev profile compiles with [-opaque], which
     disables cross-module inlining — an external caller reading a
     float field through an accessor gets a boxed return, while this
     body keeps everything in registers.  The [packet.wire.inplace]
     bench row and the zero-alloc property test drive exactly this
     function; it doubles as a cheap whole-frame consistency read. *)
  let[@inline always] mix acc v =
    ((acc lsl 7) lxor (acc lsr 57)) lxor (v land max_int)

  let[@inline always] f64_bits b p = Int64.to_int (Bytes.get_int64_be b p)

  let rec digest_blocks b p i n acc =
    if i >= n then acc
    else
      digest_blocks b p (i + 1) n
        (mix (mix acc (sack_block_start b p i)) (sack_block_end b p i))

  let read_digest buf ~pos =
    let t = tag buf pos in
    let acc = mix (mix 0 t) (flags buf pos) in
    if t = tag_data then
      mix
        (mix
           (mix
              (mix (mix acc (data_seq buf pos)) (f64_bits buf (pos + 8)))
              (f64_bits buf (pos + 16)))
           (if data_is_retx buf pos then 1 else 0))
        (data_fwd_point buf pos)
    else if t = tag_feedback then
      mix
        (mix
           (mix
              (mix (mix acc (f64_bits buf (pos + 4))) (f64_bits buf (pos + 12)))
              (f64_bits buf (pos + 20)))
           (f64_bits buf (pos + 28)))
        (fb_recv_seq buf pos)
    else if t = tag_sack then begin
      let n = sack_nblocks buf pos in
      let acc = mix (mix acc (sack_cum_ack buf pos)) n in
      let acc = digest_blocks buf pos 0 n acc in
      let tail = sack_tail buf pos in
      mix
        (mix
           (mix (mix acc (f64_bits buf tail)) (f64_bits buf (tail + 8)))
           (f64_bits buf (tail + 16)))
        (sack_ce_count buf pos)
    end
    else mix (mix acc (hs_kind buf pos)) (hs_payload_len buf pos)

  (* View-based full decode (allocates the header); for tests and the
     future real-UDP backend's slow path. *)
  let[@vtp.alloc_ok] decode buf ~pos ~len =
    check buf ~pos ~len;
    let t = tag buf pos in
    if t = tag_data then
      Header.Data
        {
          seq = Serial.of_int (data_seq buf pos);
          tstamp = data_tstamp buf pos;
          rtt_estimate = data_rtt buf pos;
          is_retransmit = data_is_retx buf pos;
          fwd_point = Serial.of_int (data_fwd_point buf pos);
        }
    else if t = tag_feedback then
      Header.Feedback
        {
          tstamp_echo = fb_tstamp_echo buf pos;
          t_delay = fb_t_delay buf pos;
          x_recv = fb_x_recv buf pos;
          p = fb_p buf pos;
          recv_seq = Serial.of_int (fb_recv_seq buf pos);
        }
    else if t = tag_sack then
      Header.Sack_feedback
        {
          cum_ack = Serial.of_int (sack_cum_ack buf pos);
          blocks =
            List.init (sack_nblocks buf pos) (fun i ->
                {
                  Header.block_start =
                    Serial.of_int (sack_block_start buf pos i);
                  block_end = Serial.of_int (sack_block_end buf pos i);
                });
          sack_tstamp_echo = sack_tstamp_echo buf pos;
          sack_t_delay = sack_t_delay buf pos;
          sack_x_recv = sack_x_recv buf pos;
          sack_ce_count = sack_ce_count buf pos;
        }
    else
      Header.Handshake
        {
          kind =
            (match hs_kind buf pos with
            | 0 -> Header.Syn
            | 1 -> Header.Syn_ack
            | 2 -> Header.Ack_hs
            | 3 -> Header.Close
            | _ -> Header.Close_ack);
          payload = hs_payload buf pos;
        }
end
