(** A VTP segment instance in flight.

    Pairs a {!Header.t} with the payload length and bookkeeping identity.
    The payload content itself is never materialised — simulations care
    about sizes and sequence numbers, not bytes — but the wire codec
    ({!Wire}) can serialise the header for systems that need real frames. *)

type t = {
  id : int;  (** globally unique per simulation, for tracing *)
  flow_id : int;  (** connection this segment belongs to *)
  hdr : Header.t;
  payload : int;  (** user bytes carried (0 except for [Data]) *)
  sent_at : float;  (** virtual time of first transmission *)
}

val make :
  id:int -> flow_id:int -> hdr:Header.t -> payload:int -> sent_at:float -> t

val size : t -> int
(** Total on-wire bytes (header + payload). *)

val is_data : t -> bool

val seq : t -> Serial.t option

val pp : Format.formatter -> t -> unit
