(** Binary wire codec for VTP headers.

    Layout is big-endian.  Every segment starts with a 4-byte common
    prefix: 1 byte type tag, 1 byte flags/extra, 2 bytes Fletcher-16
    checksum over the rest of the encoding.  Floats (timestamps, rates)
    travel as IEEE-754 doubles; in a space-optimised deployment these
    would be scaled fixed-point fields, which changes sizes but nothing
    structural, so we keep the readable encoding and account sizes via
    {!Header.wire_size}. *)

exception Malformed of string

val encode : Header.t -> bytes
(** Serialise a header (payload bytes are carried out of band). *)

val decode : bytes -> Header.t
(** Inverse of [encode].
    @raise Malformed on truncation, bad tag, or checksum mismatch. *)

val fletcher16 : bytes -> pos:int -> len:int -> int
(** The checksum used by the codec, exposed for tests. *)
