(** Binary wire codec for VTP headers.

    Layout is big-endian.  Every segment starts with a 4-byte common
    prefix: 1 byte type tag, 1 byte flags/extra, 2 bytes Fletcher-16
    checksum over the rest of the encoding.  Floats (timestamps, rates)
    travel as IEEE-754 doubles; in a space-optimised deployment these
    would be scaled fixed-point fields, which changes sizes but nothing
    structural, so we keep the readable encoding and account sizes via
    {!Header.wire_size}. *)

exception Malformed of string

val encode : Header.t -> bytes
(** Serialise a header (payload bytes are carried out of band). *)

val decode : bytes -> Header.t
(** Inverse of [encode].
    @raise Malformed on truncation, bad tag, or checksum mismatch. *)

val fletcher16 : bytes -> pos:int -> len:int -> int
(** The checksum used by the codec, exposed for tests. *)

(** Zero-copy packed codec over the same byte layout as
    {!encode}/{!decode}: fixed-layout encode into a caller-supplied (or
    domain-local scratch) buffer, and decode-in-place field accessors.

    All accessors take the buffer and the frame's start offset and are
    [@inline always]; composed in one loop body they keep floats and
    field offsets unboxed, so a SACK encode → {!Packed.check} → field
    reads roundtrip allocates nothing (property-tested).  Sequence
    fields travel as raw ints in [\[0, 2^32)] to keep the fast path free
    of [Serial.t] boxing; convert with {!Serial.of_int} off the fast
    path.  Accessors perform no bounds or tag validation of their own —
    run {!Packed.check} once per frame first. *)
module Packed : sig
  val measure : Header.t -> int
  (** Encoded size in bytes of a header under the packed layout. *)

  val encode_into : Header.t -> bytes -> pos:int -> int
  (** Write the frame at [pos]; returns its length ({!measure}).
      Byte-identical to {!encode}'s output.
      @raise Malformed when the buffer cannot hold the frame. *)

  val scratch : unit -> bytes
  (** A domain-local buffer large enough for any frame (64 KiB + max
      header) — one per domain, reused across calls. *)

  val check : bytes -> pos:int -> len:int -> unit
  (** Validate the frame [pos, pos+len): structure, tag, and checksum.
      Allocation-free on the accept path.
      @raise Malformed on anything {!decode} would reject. *)

  val decode : bytes -> pos:int -> len:int -> Header.t
  (** View-based full decode ({!check} included) — the allocating slow
      path, for tests and interop. *)

  val read_digest : bytes -> pos:int -> int
  (** Allocation-free in-place read of every field of a {!check}ed
      frame, folded into an integer digest (floats enter via their raw
      bit patterns).  The composed decode-in-place fast path: an
      encode → {!check} → [read_digest] SACK roundtrip allocates zero
      words (property-tested).  Note the float accessors below unbox
      only when inlined into the caller's own compilation unit; the dev
      profile builds with [-opaque], so cross-module float reads box
      their result — which is why this composed reader lives here. *)

  val tag : bytes -> int -> int
  val flags : bytes -> int -> int
  val checksum : bytes -> int -> int
  val data_seq : bytes -> int -> int
  val data_tstamp : bytes -> int -> float
  val data_rtt : bytes -> int -> float
  val data_is_retx : bytes -> int -> bool
  val data_fwd_point : bytes -> int -> int
  val fb_tstamp_echo : bytes -> int -> float
  val fb_t_delay : bytes -> int -> float
  val fb_x_recv : bytes -> int -> float
  val fb_p : bytes -> int -> float
  val fb_recv_seq : bytes -> int -> int
  val sack_cum_ack : bytes -> int -> int
  val sack_nblocks : bytes -> int -> int

  val sack_block_start : bytes -> int -> int -> int
  (** [sack_block_start buf pos i] — start of the [i]-th block. *)

  val sack_block_end : bytes -> int -> int -> int
  val sack_tstamp_echo : bytes -> int -> float
  val sack_t_delay : bytes -> int -> float
  val sack_x_recv : bytes -> int -> float
  val sack_ce_count : bytes -> int -> int
  val hs_kind : bytes -> int -> int
  val hs_payload_len : bytes -> int -> int
  val hs_payload : bytes -> int -> string
end
