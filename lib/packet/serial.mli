(** 32-bit serial (wrap-around) sequence numbers, RFC 1982 style.

    Transport sequence numbers live on a circle of 2^32 values; ordering
    is only meaningful for numbers within half the space of each other,
    which is the invariant every windowed protocol maintains.  [compare]
    implements that circular order: [a < b] iff the signed distance
    [b - a] (mod 2^32) is in (0, 2^31). *)

type t

val zero : t
val of_int : int -> t
(** Truncates to the low 32 bits. *)

val to_int : t -> int
(** In [\[0, 2^32)]. *)

val succ : t -> t
val pred : t -> t
val add : t -> int -> t
val diff : t -> t -> int
(** [diff a b] is the signed circular distance [a - b], in
    [\[-2^31, 2^31)].  [diff] and [add] are inverses:
    [add b (diff a b) = a]. *)

val compare : t -> t -> int
(** Circular comparison (see module doc). Total only within a half-space
    window. *)

val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val equal : t -> t -> bool
val max : t -> t -> t
val min : t -> t -> t
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val range : t -> t -> t list
(** [range lo hi] is [lo; lo+1; …; hi-1] (empty if [lo >= hi]).  Intended
    for short gaps; length is the circular distance. *)

val iter_range : (t -> unit) -> t -> t -> unit
(** [iter_range f lo hi] applies [f] to [lo; lo+1; …; hi-1] in order
    without materialising the list — the allocation-free [range]. *)
