type t = int32

let zero = 0l

let of_int i = Int32.of_int (i land 0xFFFFFFFF)

let to_int t = Int32.to_int t land 0xFFFFFFFF

let succ t = Int32.add t 1l

let pred t = Int32.sub t 1l

let add t n = Int32.add t (Int32.of_int n)

(* Int32 subtraction already wraps, so the result is the signed circular
   distance in [-2^31, 2^31). *)
let diff a b = Int32.to_int (Int32.sub a b)

let compare a b = Stdlib.compare (diff a b) 0

let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let equal a b = Int32.equal a b
let max a b = if Stdlib.( >= ) (compare a b) 0 then a else b
let min a b = if Stdlib.( <= ) (compare a b) 0 then a else b
let hash t = Hashtbl.hash t

let pp fmt t = Format.fprintf fmt "%Lu" (Int64.logand (Int64.of_int32 t) 0xFFFFFFFFL)

let to_string t = Format.asprintf "%a" pp t

let range lo hi =
  let n = diff hi lo in
  if Stdlib.( <= ) n 0 then []
  else List.init n (fun i -> add lo i)

let iter_range f lo hi =
  let n = diff hi lo in
  for i = 0 to Stdlib.( - ) n 1 do
    f (add lo i)
  done
