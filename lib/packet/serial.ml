(* Unboxed 32-bit serial arithmetic.

   Values are kept canonical in [0, 2^32) inside a native int, so every
   operation below is straight-line integer arithmetic with no
   allocation — the previous int32 representation boxed every result,
   which priced a heap word pair into each seq-number touch on the
   per-packet path.  [diff] sign-extends the low 32 bits of the plain
   difference, which is exactly int32 subtraction's wrap-around. *)

type t = int

let mask = 0xFFFFFFFF

let zero = 0

let of_int i = i land mask

let to_int t = t

let succ t = (t + 1) land mask

let pred t = (t - 1) land mask

let add t n = (t + n) land mask

(* Signed circular distance in [-2^31, 2^31): two's-complement
   sign-extension of the low 32 bits of (a - b). *)
let diff a b = (((a - b) land mask) lxor 0x80000000) - 0x80000000

let compare a b = Stdlib.compare (diff a b) 0

let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let equal (a : t) (b : t) = Stdlib.( = ) a b
let max a b = if Stdlib.( >= ) (compare a b) 0 then a else b
let min a b = if Stdlib.( <= ) (compare a b) 0 then a else b
let hash (t : t) = Hashtbl.hash t

let pp fmt t = Format.fprintf fmt "%u" t

let to_string t = Format.asprintf "%a" pp t

let range lo hi =
  let n = diff hi lo in
  if Stdlib.( <= ) n 0 then []
  else List.init n (fun i -> add lo i)

let iter_range f lo hi =
  let n = diff hi lo in
  for i = 0 to Stdlib.( - ) n 1 do
    f (add lo i)
  done
