(* Frozen record-based reference implementation of [Sender], kept as the
   differential-testing oracle for the slab-packed rewrite.  Do not
   optimise this file; its value is being the obviously-correct,
   field-per-record twin. *)

type params = {
  packet_size : int;
  initial_rtt : float;
  min_rate_bps : float;
  max_rate_bps : float option;
  t_mbi : float;
  oscillation_damping : bool;
}

let default_params =
  {
    packet_size = 1500;
    initial_rtt = 0.5;
    min_rate_bps = 0.0;
    max_rate_bps = None;
    t_mbi = 64.0;
    oscillation_damping = false;
  }

type t = {
  sim : Engine.Sim.t;
  cost : Stats.Cost.t option;
  trace : Trace.Sink.t option;
  p : params;
  on_transmit : unit -> bool;
  rtt : Rtt.t;
  mutable x : float;  (* allowed rate, bytes/s *)
  mutable slow_start : bool;
  mutable running : bool;
  mutable idle : bool;
  mutable tick : Engine.Sim.handle option;
  mutable next_at : float;  (* deadline of the pending tick *)
  mutable nofeedback : Engine.Timer.t option;
  mutable sent : int;
  mutable feedbacks : int;
  mutable nfb_expiries : int;
  mutable last_p : float;
  (* §4.5 oscillation damping state *)
  mutable r_sqmean : float;  (* EWMA of sqrt(R_sample); 0 = no sample *)
  mutable r_sample_last : float;
}

let charge t ?ops name =
  match t.cost with Some c -> Stats.Cost.charge c ?ops name | None -> ()

let trace_rate t ~x_calc ~x_recv ~p =
  if Trace.Sink.on t.trace then
    Trace.Sink.emit t.trace
      (Trace.Event.Rate_change
         {
           x_bps = 8.0 *. t.x;
           x_calc_bps = 8.0 *. x_calc;
           x_recv_bps = 8.0 *. x_recv;
           p;
           slow_start = t.slow_start;
         })

let s_float t = float_of_int t.p.packet_size

(* Clamp X to [floor, ceiling]: the gTFRC guarantee g below, the
   application/interface rate above, and never below one packet per
   maximum backoff interval. *)
let clamp t x =
  let x = Float.max x (s_float t /. t.p.t_mbi) in
  let x = Float.max x (t.p.min_rate_bps /. 8.0) in
  match t.p.max_rate_bps with
  | Some cap -> Float.min x (cap /. 8.0)
  | None -> x

let rate_bps t = 8.0 *. t.x

(* §4.5: the instantaneous rate is damped by sqrt(R_sample)/R_sqmean; a
   rising RTT (queue building) slows the sender below X before the next
   equation update, and vice versa. *)
let instantaneous_rate t =
  if t.p.oscillation_damping && t.r_sqmean > 0.0 && t.r_sample_last > 0.0 then
    t.x *. t.r_sqmean /. sqrt t.r_sample_last
  else t.x

let instantaneous_rate_bps t = 8.0 *. instantaneous_rate t

let inter_packet_interval t = s_float t /. instantaneous_rate t

let rec schedule_tick t ~after =
  (match t.tick with Some h -> Engine.Sim.cancel t.sim h | None -> ());
  t.next_at <- Engine.Sim.now t.sim +. after;
  t.tick <- Some (Engine.Sim.schedule_after t.sim after (fun () -> fire t))

and fire t =
  t.tick <- None;
  if t.running then begin
    if t.on_transmit () then begin
      t.sent <- t.sent + 1;
      schedule_tick t ~after:(inter_packet_interval t)
    end
    else t.idle <- true
  end

let nofeedback_timer t =
  match t.nofeedback with
  | Some tm -> tm
  | None ->
      let tm =
        Engine.Timer.create t.sim ~on_expire:(fun () ->
            (* RFC 3448 §4.4: no report for a while — halve the rate.
               The gTFRC floor still applies via [clamp]: the AF
               reservation remains paid for while the connection lives. *)
            t.nfb_expiries <- t.nfb_expiries + 1;
            charge t "send.nofeedback";
            t.x <- clamp t (t.x /. 2.0);
            trace_rate t ~x_calc:0.0 ~x_recv:0.0 ~p:t.last_p;
            let tm2 = Option.get t.nofeedback in
            Engine.Timer.start tm2
              ~after:
                (Float.max (4.0 *. Rtt.smoothed t.rtt)
                   (2.0 *. s_float t /. t.x)))
      in
      t.nofeedback <- Some tm;
      tm

let restart_nofeedback t =
  let tm = nofeedback_timer t in
  Engine.Timer.start tm
    ~after:(Float.max (4.0 *. Rtt.smoothed t.rtt) (2.0 *. s_float t /. t.x))

let create ~sim ?cost ?trace p ~on_transmit () =
  assert (p.packet_size > 0 && p.initial_rtt > 0.0 && p.t_mbi > 0.0);
  let rtt = Rtt.create ~initial:p.initial_rtt () in
  let t =
    {
      sim;
      cost;
      trace;
      p;
      on_transmit;
      rtt;
      x = 0.0;
      slow_start = true;
      running = false;
      idle = false;
      tick = None;
      next_at = 0.0;
      nofeedback = None;
      sent = 0;
      feedbacks = 0;
      nfb_expiries = 0;
      last_p = 0.0;
      r_sqmean = 0.0;
      r_sample_last = 0.0;
    }
  in
  (* Initial rate: two segments per (seeded) RTT — within RFC 3448's
     allowance, conservative for long paths. *)
  t.x <- clamp t (2.0 *. s_float t /. p.initial_rtt);
  t

let start t =
  if not t.running then begin
    t.running <- true;
    t.idle <- false;
    restart_nofeedback t;
    schedule_tick t ~after:0.0
  end

let stop t =
  t.running <- false;
  (match t.tick with Some h -> Engine.Sim.cancel t.sim h | None -> ());
  t.tick <- None;
  match t.nofeedback with Some tm -> Engine.Timer.stop tm | None -> ()

let notify_data t =
  if t.running && t.idle then begin
    t.idle <- false;
    schedule_tick t ~after:0.0
  end

let on_feedback t ~tstamp_echo ~t_delay ~x_recv ~p =
  charge t "send.std.feedback_proc";
  t.feedbacks <- t.feedbacks + 1;
  t.last_p <- p;
  let now = Engine.Sim.now t.sim in
  let sample = now -. tstamp_echo -. t_delay in
  if sample > 0.0 then begin
    Rtt.sample t.rtt sample;
    t.r_sample_last <- sample;
    t.r_sqmean <-
      (if Float.equal t.r_sqmean 0.0 then sqrt sample
       else (0.9 *. t.r_sqmean) +. (0.1 *. sqrt sample));
    if Trace.Sink.on t.trace then
      Trace.Sink.emit t.trace
        (Trace.Event.Rtt_sample { sample; srtt = Rtt.smoothed t.rtt })
  end;
  let r = Rtt.smoothed t.rtt in
  let x_calc =
    if p > 0.0 then begin
      t.slow_start <- false;
      let x_calc = Equation.rate ~s:t.p.packet_size ~r ~p () in
      t.x <- clamp t (Float.min x_calc (2.0 *. x_recv));
      x_calc
    end
    else begin
      (* Slow start: double once per feedback, bounded by twice the rate
         the receiver actually saw. *)
      let doubled = 2.0 *. t.x in
      let bound = if x_recv > 0.0 then 2.0 *. x_recv else doubled in
      t.x <- clamp t (Float.min doubled bound);
      Float.infinity
    end
  in
  trace_rate t ~x_calc ~x_recv ~p;
  (* A rate increase takes effect immediately rather than waiting out a
     long previously-scheduled gap — but never push the pending
     opportunity further away. *)
  if t.running && not t.idle then begin
    let gap = inter_packet_interval t in
    match t.tick with
    | Some _ when now +. gap < t.next_at -> schedule_tick t ~after:gap
    | Some _ | None -> ()
  end;
  restart_nofeedback t

(* Migration notification.  [`Keep] is deliberately a no-op — the whole
   point of the policy comparison is that keeping a WiFi-sized X on a
   3G link overshoots until the feedback loop catches up. *)
let apply_handover t ~policy ~(link : Handover.link_info) =
  (match (policy : Handover.policy) with
  | `Keep -> ()
  | `Reset ->
      Rtt.reseed t.rtt link.Handover.rtt;
      t.slow_start <- true;
      t.last_p <- 0.0;
      t.r_sqmean <- 0.0;
      t.r_sample_last <- 0.0;
      t.x <- clamp t (Handover.reset_rate ~s:(s_float t) ~rtt:link.Handover.rtt);
      trace_rate t ~x_calc:0.0 ~x_recv:0.0 ~p:0.0
  | `Informed ->
      Rtt.reseed t.rtt link.Handover.rtt;
      t.slow_start <- false;
      t.r_sqmean <- 0.0;
      t.r_sample_last <- 0.0;
      let target = Handover.informed_rate link in
      let p = Handover.informed_p ~s:t.p.packet_size link in
      t.last_p <- p;
      t.x <- clamp t target;
      trace_rate t ~x_calc:target ~x_recv:0.0 ~p);
  match (policy : Handover.policy) with
  | `Keep -> ()
  | `Reset | `Informed ->
      (* Take a rate increase immediately (cf. [on_feedback]); a
         decrease naturally stretches the next gap. *)
      if t.running && not t.idle then begin
        let gap = inter_packet_interval t in
        let now = Engine.Sim.now t.sim in
        match t.tick with
        | Some _ when now +. gap < t.next_at -> schedule_tick t ~after:gap
        | Some _ | None -> ()
      end;
      restart_nofeedback t

let rtt t = Rtt.smoothed t.rtt
let has_rtt_sample t = Rtt.has_sample t.rtt
let in_slow_start t = t.slow_start
let packets_sent t = t.sent
let feedbacks_processed t = t.feedbacks
let nofeedback_expiries t = t.nfb_expiries
let params t = t.p
