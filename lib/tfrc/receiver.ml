(* Slab-packed implementation; [Receiver_ref] is the record-based
   oracle.  The per-packet bookkeeping (rate window, timestamp echo,
   RTT adoption) writes only into the slab slot's flat arrays, so
   receiving a data segment allocates nothing here — the old record
   boxed a float per mutable-float write plus a [Some (tstamp,
   arrival)] tuple per packet. *)

let lay = Engine.Slab.layout ~floats:5 ~ints:6

(* float cells *)
let f_last_tstamp = 0 (* sender tstamp of the newest data packet *)
let f_last_arrival = 1 (* its arrival time *)
let f_last_rtt = 2 (* latest sender RTT estimate seen *)
let f_window_start = 3
let f_x_recv = 4

(* int cells *)
let i_has_last = 0 (* any data seen yet? (guards the echo fields) *)
let i_window_bytes = 1 (* received since last feedback *)
let i_reported_events = 2
let i_packets = 3
let i_feedbacks = 4
let i_pkt_size = 5 (* last data size, for the p seed *)

type t = {
  sim : Engine.Sim.t;
  cost : Stats.Cost.t option;
  trace : Trace.Sink.t option;
  send_feedback : Packet.Header.feedback -> unit;
  lh : Loss_history.t;
  ar : Engine.Slab.t;
  slot : int;
  mutable timer : Engine.Timer.t option;  (* created lazily: needs self *)
}

let[@inline] fget t j = Engine.Slab.fget t.ar t.slot j
let[@inline] fset t j v = Engine.Slab.fset t.ar t.slot j v
let[@inline] iget t j = Engine.Slab.iget t.ar t.slot j
let[@inline] iset t j v = Engine.Slab.iset t.ar t.slot j v

let charge t ?ops name =
  match t.cost with Some c -> Stats.Cost.charge c ?ops name | None -> ()

let emit_feedback t =
  if iget t i_has_last <> 0 then begin
    let tstamp = fget t f_last_tstamp and arrival = fget t f_last_arrival in
    let now = Engine.Sim.now t.sim in
    let elapsed = now -. fget t f_window_start in
    if elapsed > 0.0 && iget t i_window_bytes > 0 then
      fset t f_x_recv (float_of_int (iget t i_window_bytes) /. elapsed);
    iset t i_window_bytes 0;
    fset t f_window_start now;
    let p = Loss_history.loss_event_rate t.lh in
    charge t "recv.std.feedback";
    iset t i_feedbacks (iget t i_feedbacks + 1);
    iset t i_reported_events (Loss_history.loss_events t.lh);
    let recv_seq =
      match Loss_history.max_seq t.lh with
      | Some s -> s
      | None -> Packet.Serial.zero
    in
    if Trace.Sink.on t.trace then
      Trace.Sink.emit t.trace
        (Trace.Event.Fb_sent { x_recv = fget t f_x_recv; p });
    t.send_feedback
      {
        Packet.Header.tstamp_echo = tstamp;
        t_delay = now -. arrival;
        x_recv = fget t f_x_recv;
        p;
        recv_seq;
      }
  end

let rec arm_timer t =
  let timer =
    match t.timer with
    | Some tm -> tm
    | None ->
        let tm =
          Engine.Timer.create t.sim ~on_expire:(fun () ->
              (* Report only if data arrived this interval (RFC 3448
                 §6.2); otherwise stay quiet and let the sender's
                 nofeedback timer do its job. *)
              if iget t i_window_bytes > 0 then emit_feedback t;
              arm_timer t)
        in
        t.timer <- Some tm;
        tm
  in
  Engine.Timer.start timer ~after:(Float.max 1e-4 (fget t f_last_rtt))

let create ~sim ?cost ?trace ?ndup ?discount ~send_feedback () =
  let ar = Engine.Sim.arena sim lay in
  let t =
    {
      sim;
      cost;
      trace;
      send_feedback;
      lh = Loss_history.create ?ndup ?discount ?cost ();
      ar;
      slot = Engine.Slab.alloc ar;
      timer = None;
    }
  in
  fset t f_last_rtt 0.1;
  fset t f_window_start (Engine.Sim.now sim);
  iset t i_pkt_size 1500;
  t

let[@vtp.hot] on_data t ?(ce = false) (d : Packet.Header.data) ~size =
  let now = Engine.Sim.now t.sim in
  charge t "recv.std.packet";
  iset t i_packets (iget t i_packets + 1);
  iset t i_pkt_size (Stdlib.max 1 size);
  if d.rtt_estimate > 0.0 then fset t f_last_rtt d.rtt_estimate;
  let last_rtt = fget t f_last_rtt in
  let first = iget t i_has_last = 0 in
  iset t i_has_last 1;
  fset t f_last_tstamp d.tstamp;
  fset t f_last_arrival now;
  iset t i_window_bytes (iget t i_window_bytes + size);
  let events_before = Loss_history.loss_events t.lh in
  Loss_history.on_packet t.lh ~seq:d.seq ~arrival:now ~rtt:last_rtt
    ~is_retx:d.is_retransmit;
  if ce then
    Loss_history.on_congestion_mark t.lh ~seq:d.seq ~arrival:now ~rtt:last_rtt;
  let events_after = Loss_history.loss_events t.lh in
  if events_before = 0 && events_after = 1 then begin
    (* First loss event: synthesise the preceding interval from the
       measured receive rate (RFC 3448 §6.3.1). *)
    let elapsed = now -. fget t f_window_start in
    let x_meas =
      if elapsed > 0.0 && iget t i_window_bytes > 0 then
        float_of_int (iget t i_window_bytes) /. elapsed
      else fget t f_x_recv
    in
    let x_target =
      Float.max (float_of_int (iget t i_pkt_size) /. last_rtt) x_meas
    in
    let p_seed =
      Equation.loss_rate_for ~s:(iget t i_pkt_size) ~r:last_rtt
        ~target:x_target
    in
    if p_seed > 0.0 then Loss_history.set_first_interval t.lh (1.0 /. p_seed)
  end;
  if events_after > events_before && Trace.Sink.on t.trace then
    Trace.Sink.emit t.trace
      (Trace.Event.Loss_event
         {
           side = Trace.Event.S_receiver;
           events = events_after;
           p = Loss_history.loss_event_rate t.lh;
         });
  if events_after > iget t i_reported_events then begin
    (* New loss event: expedited report, then resume the RTT cadence. *)
    emit_feedback t;
    arm_timer t
  end
  else if first then arm_timer t

(* Migration notification: the standard plane's loss history lives
   here, so the policy's history component applies receiver-side. *)
let on_handover t ~policy ~(link : Handover.link_info) =
  match (policy : Handover.policy) with
  | `Keep -> ()
  | `Reset ->
      fset t f_last_rtt link.Handover.rtt;
      Loss_history.reseed t.lh 0.0
  | `Informed ->
      fset t f_last_rtt link.Handover.rtt;
      let p = Handover.informed_p ~s:(iget t i_pkt_size) link in
      Loss_history.reseed t.lh (if p > 0.0 then 1.0 /. p else 0.0)

let x_recv t = fget t f_x_recv
let loss_event_rate t = Loss_history.loss_event_rate t.lh
let loss_events t = Loss_history.loss_events t.lh
let packets_received t = iget t i_packets
let feedbacks_sent t = iget t i_feedbacks
let history t = t.lh
