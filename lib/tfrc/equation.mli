(** The TCP throughput equation of RFC 3448 (Padhye et al.).

    [X = s / (R*sqrt(2*b*p/3) + t_RTO * (3*sqrt(3*b*p/8)) * p * (1+32*p^2))]

    where [s] is the segment size (bytes), [R] the round-trip time (s),
    [p] the loss event rate, [b] the number of packets acknowledged per
    ACK (1 for TFRC), and [t_RTO ~ 4R].  The result is in bytes/s. *)

val rate : s:int -> r:float -> p:float -> ?b:float -> ?t_rto:float -> unit -> float
(** Equation throughput in bytes/s.  [p <= 0] means "no loss observed";
    the equation diverges there, so we return [infinity] and let callers
    clamp (RFC 3448 callers always take a [min] with [2*X_recv]).
    [t_rto] defaults to [4*r]. *)

val rate_bps : s:int -> r:float -> p:float -> ?b:float -> ?t_rto:float -> unit -> float
(** [rate] in bits/s. *)

val loss_rate_for : s:int -> r:float -> target:float -> float
(** Inverse of [rate]: the loss event rate at which the equation yields
    [target] bytes/s, found by bisection on [p] in [\[1e-8, 1\]].  Used to
    seed the first loss interval from the measured receive rate
    (RFC 3448 §6.3.1).  Returns 1.0 if even p=1 gives more than
    [target], and 1e-8 if p=1e-8 still gives less. *)
