module Serial = Packet.Serial

type hole = { seq : Serial.t; mutable after : int }

type event = { start_time : float; start_seq : Serial.t }

type t = {
  ndup : int;
  history : int;
  discount : bool;
  cost : Stats.Cost.t option;
  mutable max_seq : Serial.t option;
  mutable holes : hole list;  (* ascending seq *)
  mutable intervals : float list;  (* newest first, length <= history *)
  mutable current : event option;
  mutable events : int;
  mutable losses : int;
  mutable marks : int;
  mutable seen : int;
}

let create ?(ndup = 3) ?(history = 8) ?(discount = true) ?cost () =
  assert (ndup >= 1 && history >= 1);
  {
    ndup;
    history;
    discount;
    cost;
    max_seq = None;
    holes = [];
    intervals = [];
    current = None;
    events = 0;
    losses = 0;
    marks = 0;
    seen = 0;
  }

let charge t ?ops name =
  match t.cost with Some c -> Stats.Cost.charge c ?ops name | None -> ()

let watermark t =
  match t.cost with
  | Some c ->
      Stats.Cost.watermark c "lh.entries"
        (List.length t.holes + List.length t.intervals)
  | None -> ()

(* The weights of RFC 3448 §5.4 for n = 8; for other history depths we
   keep full weight on the newer half and taper linearly on the older. *)
let[@vtp.hot] weight ~history i =
  if history = 8 then
    match i with
    | 0 | 1 | 2 | 3 -> 1.0
    | 4 -> 0.8
    | 5 -> 0.6
    | 6 -> 0.4
    | _ -> 0.2
  else begin
    let half = history / 2 in
    if i < half then 1.0
    else
      float_of_int (history - i) /. float_of_int (history - half + 1)
  end

(* Shared event machinery: a congestion signal (drop or ECN mark) at
   [seq]/[time] joins the current loss event if within one RTT of its
   start, otherwise closes the running interval and opens a new event. *)
let note_congestion_event t ~seq ~time ~rtt =
  match t.current with
  | Some ev when time -. ev.start_time <= rtt ->
      (* Same loss event: TCP would halve only once for this window. *)
      ()
  | Some ev ->
      (* Close the interval that ran from the previous event to this one
         (length counted in sequence space). *)
      let len = float_of_int (Stdlib.max 1 (Serial.diff seq ev.start_seq)) in
      t.intervals <-
        (if List.length t.intervals >= t.history then
           len :: List.filteri (fun i _ -> i < t.history - 1) t.intervals
         else len :: t.intervals);
      t.current <- Some { start_time = time; start_seq = seq };
      t.events <- t.events + 1
  | None ->
      t.current <- Some { start_time = time; start_seq = seq };
      t.events <- t.events + 1

let record_loss t ~seq ~time ~rtt =
  t.losses <- t.losses + 1;
  charge t "lh.loss";
  note_congestion_event t ~seq ~time ~rtt

let on_congestion_mark t ~seq ~arrival ~rtt =
  t.marks <- t.marks + 1;
  charge t "lh.ce_mark";
  note_congestion_event t ~seq ~time:arrival ~rtt

let set_first_interval t len =
  if t.intervals = [] && len > 0.0 then t.intervals <- [ len ]

(* Handover discontinuity — must mirror [Loss_history.reseed] exactly
   (the differential suites drive both through migrations). *)
let reseed t len =
  t.holes <- [];
  t.current <- None;
  t.intervals <- (if len > 0.0 then [ len ] else [])

let promote_ripe_holes t ~arrival ~rtt =
  let ripe, pending = List.partition (fun h -> h.after >= t.ndup) t.holes in
  t.holes <- pending;
  List.iter (fun h -> record_loss t ~seq:h.seq ~time:arrival ~rtt) ripe

let on_packet t ~seq ~arrival ~rtt ~is_retx =
  if not is_retx then begin
    charge t "lh.update";
    t.seen <- t.seen + 1;
    (match t.max_seq with
    | None -> t.max_seq <- Some seq
    | Some m when Serial.( > ) seq m ->
        (* New holes for every skipped number; every pre-existing hole
           saw one more subsequent packet. *)
        List.iter (fun h -> h.after <- h.after + 1) t.holes;
        let skipped = Serial.range (Serial.succ m) seq in
        (* The arriving packet itself lies beyond each fresh hole, so it
           counts as the first confirming packet (after = 1). *)
        let fresh =
          List.map
            (fun s ->
              charge t "lh.hole";
              { seq = s; after = 1 })
            skipped
        in
        t.holes <- t.holes @ fresh;
        t.max_seq <- Some seq
    | Some _ ->
        (* Late arrival filling a hole: it was never lost. *)
        t.holes <- List.filter (fun h -> not (Serial.equal h.seq seq)) t.holes);
    promote_ripe_holes t ~arrival ~rtt;
    watermark t
  end

let open_interval t =
  match (t.current, t.max_seq) with
  | Some ev, Some m -> float_of_int (Stdlib.max 0 (Serial.diff m ev.start_seq))
  | (None | Some _), _ -> 0.0

let mean_of t ~with_open =
  (* Weighted mean per §5.4; closed intervals are newest-first.  With
     [with_open], the open interval takes index 0 and shifts the closed
     ones, dropping the oldest. *)
  let closed = t.intervals in
  let seq_terms =
    if with_open then
      open_interval t :: List.filteri (fun i _ -> i < t.history - 1) closed
    else closed
  in
  match seq_terms with
  | [] -> infinity
  | terms ->
      charge t ~ops:(List.length terms) "lh.rate_calc";
      (* §5.5 history discounting: when the open interval dominates, old
         intervals' influence is reduced so the rate can rise quickly
         after a long loss-free period. *)
      let discount_factor =
        if (not t.discount) || not with_open then fun _ -> 1.0
        else begin
          let i0 = open_interval t in
          let closed_mean =
            match closed with
            | [] -> 0.0
            | l ->
                List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
          in
          if closed_mean > 0.0 && i0 > 2.0 *. closed_mean then begin
            let df = Float.max 0.25 (2.0 *. closed_mean /. i0) in
            fun i -> if i = 0 then 1.0 else df
          end
          else fun _ -> 1.0
        end
      in
      let num = ref 0.0 and den = ref 0.0 in
      List.iteri
        (fun i len ->
          let w = weight ~history:t.history i *. discount_factor i in
          num := !num +. (w *. len);
          den := !den +. w)
        terms;
      if !den = 0.0 then infinity else !num /. !den

let mean_interval t =
  if t.intervals = [] && t.current = None then infinity
  else Float.max (mean_of t ~with_open:false) (mean_of t ~with_open:true)

let loss_event_rate t =
  let m = mean_interval t in
  if Float.is_finite m && m > 0.0 then Float.min 1.0 (1.0 /. m) else 0.0

let loss_events t = t.events
let losses t = t.losses
let congestion_marks t = t.marks
let packets_seen t = t.seen
let max_seq t = t.max_seq
let closed_intervals t = t.intervals
