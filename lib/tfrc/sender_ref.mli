(** Frozen record-based reference implementation of {!Sender}, kept as
    the differential-testing oracle for the slab-packed rewrite.

    The TFRC sender (RFC 3448 §4) with the gTFRC extension.

    The sender owns the allowed transmit rate [X] and the transmission
    schedule; *what* goes into each transmission opportunity (new data
    or a retransmission) is the composition layer's business — the
    sender just invokes [on_transmit] every inter-packet interval.

    Rate update on feedback [(x_recv, p)]:
    - no loss yet ([p = 0]): slow start, [X := min(2X, 2*x_recv)];
    - otherwise [X := max(min(X_calc, 2*x_recv), s/t_mbi)] with [X_calc]
      from {!Equation}.

    {b gTFRC} (Lochin et al., the QoS-aware specialisation used by
    QTP_AF): when a target rate [g] was negotiated with the AF class,
    the sender never descends below it — [X := max(X, g)] — because the
    network contractually forwards [g] worth of in-profile (Green)
    traffic.  Setting [min_rate_bps = 0] recovers standard TFRC. *)

type params = {
  packet_size : int;  (** segment payload+header bytes, the equation [s] *)
  initial_rtt : float;  (** seed RTT before the first measurement *)
  min_rate_bps : float;  (** gTFRC floor [g] in bits/s; 0 disables *)
  max_rate_bps : float option;  (** application/interface ceiling *)
  t_mbi : float;  (** maximum backoff interval, RFC 3448: 64 s *)
  oscillation_damping : bool;
      (** RFC 3448 §4.5: scale the instantaneous sending rate by
          [sqrt(R_sample)/R_sqmean] so that queueing-delay oscillations
          on underbuffered paths are damped.  Off by default (the RFC
          makes it optional). *)
}

val default_params : params
(** 1500 B segments, 0.5 s initial RTT, no floor, no ceiling, 64 s, no
    oscillation damping. *)

type t

val create :
  sim:Engine.Sim.t ->
  ?cost:Stats.Cost.t ->
  ?trace:Trace.Sink.t ->
  params ->
  on_transmit:(unit -> bool) ->
  unit ->
  t
(** [on_transmit] is called at each transmission opportunity; it must
    send exactly one segment of [packet_size] bytes and return [true],
    or return [false] if the application has nothing to send (the
    sender then idles until {!notify_data}).  [trace] makes the sender
    record RTT samples and every rate update into the flight
    recorder. *)

val start : t -> unit
(** Begin transmitting (schedules the first opportunity immediately). *)

val stop : t -> unit

val on_feedback :
  t -> tstamp_echo:float -> t_delay:float -> x_recv:float -> p:float -> unit
(** Process a receiver report (either feedback plane). *)

val notify_data : t -> unit
(** Wake an idle sender: the application has data again. *)

val apply_handover : t -> policy:Handover.policy -> link:Handover.link_info -> unit
(** React to a path migration per the chosen {!Handover.policy}:
    [`Keep] does nothing; [`Reset] returns to slow start at
    {!Handover.reset_rate} with the RTT estimator re-seeded to the
    declared latency; [`Informed] jumps to {!Handover.informed_rate}
    with the RTT re-seeded and [p] set to {!Handover.informed_p}.  The
    non-trivial policies re-arm the nofeedback timer and, when the rate
    rose, bring the next send opportunity forward. *)

val rate_bps : t -> float
(** Current allowed sending rate. *)

val instantaneous_rate_bps : t -> float
(** The rate actually used for packet spacing — equals {!rate_bps}
    unless oscillation damping is active. *)

val rtt : t -> float
(** Smoothed RTT estimate (seed until first feedback). *)

val has_rtt_sample : t -> bool

val in_slow_start : t -> bool

val packets_sent : t -> int
(** Transmission opportunities consumed ([on_transmit] returned true). *)

val feedbacks_processed : t -> int

val nofeedback_expiries : t -> int

val params : t -> params
