(* Handover rate policies (Mehani, Boreli, Jourjon — "Rate Control
   Adaptation for Heterogeneous Handovers").

   When a flow migrates to a link with different declared parameters,
   the TFRC state machine can: keep its state and let the feedback loop
   discover the new path (`Keep`); restart as if the connection were
   new (`Reset`); or re-seed rate, RTT estimate and loss history from
   the new link's declared bandwidth and latency (`Informed`).  The
   policy parameters live here so the proto-const lint pins them. *)

type policy = [ `Keep | `Reset | `Informed ]

type link_info = { bandwidth_bps : float; rtt : float }

let policy_name = function
  | `Keep -> "keep"
  | `Reset -> "reset"
  | `Informed -> "informed"

let policy_of_string = function
  | "keep" -> Some `Keep
  | "reset" -> Some `Reset
  | "informed" -> Some `Informed
  | _ -> None

(* The informed policy claims half the declared bandwidth — the paper's
   conservative starting share, leaving room for cross traffic the
   declaration cannot know about. *)
let informed_share = 0.5

(* Reset restarts at the RFC 3448 initial window: two segments per
   (declared) RTT. *)
let reset_segments = 2.0

let reset_rate ~s ~rtt = reset_segments *. s /. rtt

let informed_rate link = informed_share *. link.bandwidth_bps /. 8.0

(* The loss-event rate at which the throughput equation yields the
   informed target on the new link — used to re-seed the loss history
   so the very next feedback computes a consistent equation rate. *)
let informed_p ~s link =
  Equation.loss_rate_for ~s ~r:link.rtt ~target:(informed_rate link)

let link_of ~bandwidth_bps ~rtt =
  if bandwidth_bps <= 0.0 || rtt <= 0.0 then
    invalid_arg "Handover.link_of: non-positive bandwidth or rtt";
  { bandwidth_bps; rtt }
