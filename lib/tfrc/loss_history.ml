module Serial = Packet.Serial

(* Run-length hole tracking: holes live in sorted parallel int arrays
   of half-open [lo, hi) runs over absolute positions, and the
   per-hole "packets seen after" counter is virtualised through a
   global epoch — every new-maximum packet bumps [epoch] once instead
   of touching every hole, and a run born at epoch [b] has seen
   [epoch - b + 1] later packets.  Births are non-decreasing along the
   array, so ripe holes are always a prefix and promotion is O(ripe).
   [Loss_history_ref] keeps the per-hole list implementation as the
   differential oracle.

   Absolute positions are anchored at the highest sequence seen:
   [abs = max_abs + Serial.diff s max_seq]. *)

type event = { start_time : float; start_seq : Serial.t }

type t = {
  ndup : int;
  history : int;
  discount : bool;
  cost : Stats.Cost.t option;
  mutable max_seq : Serial.t option;
  mutable max_abs : int;
  (* hole runs, live in [h_fst, h_len) of the parallel arrays *)
  mutable h_lo : int array;
  mutable h_hi : int array;
  mutable h_born : int array;  (* epoch at creation *)
  mutable h_fst : int;
  mutable h_len : int;
  mutable epoch : int;  (* new-maximum packets accounted so far *)
  mutable hole_count : int;  (* sum of run widths *)
  mutable intervals : float list;  (* newest first, length <= history *)
  mutable current : event option;
  mutable events : int;
  mutable losses : int;
  mutable marks : int;
  mutable seen : int;
}

let create ?(ndup = 3) ?(history = 8) ?(discount = true) ?cost () =
  assert (ndup >= 1 && history >= 1);
  {
    ndup;
    history;
    discount;
    cost;
    max_seq = None;
    max_abs = 0;
    h_lo = Array.make 8 0;
    h_hi = Array.make 8 0;
    h_born = Array.make 8 0;
    h_fst = 0;
    h_len = 0;
    epoch = 0;
    hole_count = 0;
    intervals = [];
    current = None;
    events = 0;
    losses = 0;
    marks = 0;
    seen = 0;
  }

let charge t ?ops name =
  match t.cost with Some c -> Stats.Cost.charge c ?ops name | None -> ()

let watermark t =
  match t.cost with
  | Some c ->
      Stats.Cost.watermark c "lh.entries"
        (t.hole_count + List.length t.intervals)
  | None -> ()

(* The weights of RFC 3448 §5.4 for n = 8; for other history depths we
   keep full weight on the newer half and taper linearly on the older. *)
let[@vtp.hot] weight ~history i =
  if history = 8 then
    match i with
    | 0 | 1 | 2 | 3 -> 1.0
    | 4 -> 0.8
    | 5 -> 0.6
    | 6 -> 0.4
    | _ -> 0.2
  else begin
    let half = history / 2 in
    if i < half then 1.0
    else
      float_of_int (history - i) /. float_of_int (history - half + 1)
  end

(* Shared event machinery: a congestion signal (drop or ECN mark) at
   [seq]/[time] joins the current loss event if within one RTT of its
   start, otherwise closes the running interval and opens a new event. *)
let note_congestion_event t ~seq ~time ~rtt =
  match t.current with
  | Some ev when time -. ev.start_time <= rtt ->
      (* Same loss event: TCP would halve only once for this window. *)
      ()
  | Some ev ->
      (* Close the interval that ran from the previous event to this one
         (length counted in sequence space). *)
      let len = float_of_int (Stdlib.max 1 (Serial.diff seq ev.start_seq)) in
      t.intervals <-
        (if List.length t.intervals >= t.history then
           len :: List.filteri (fun i _ -> i < t.history - 1) t.intervals
         else len :: t.intervals);
      t.current <- Some { start_time = time; start_seq = seq };
      t.events <- t.events + 1
  | None ->
      t.current <- Some { start_time = time; start_seq = seq };
      t.events <- t.events + 1

let record_loss t ~seq ~time ~rtt =
  t.losses <- t.losses + 1;
  charge t "lh.loss";
  note_congestion_event t ~seq ~time ~rtt

let on_congestion_mark t ~seq ~arrival ~rtt =
  t.marks <- t.marks + 1;
  charge t "lh.ce_mark";
  note_congestion_event t ~seq ~time:arrival ~rtt

let set_first_interval t len =
  if t.intervals = [] && len > 0.0 then t.intervals <- [ len ]

(* Handover discontinuity: outstanding holes and the open event belong
   to the old path, so they are forgotten wholesale; the closed history
   collapses to the single synthetic interval [len].  Sequence tracking
   ([max_seq]/[max_abs]) is untouched — numbering continues across the
   migration. *)
let reseed t len =
  t.h_fst <- 0;
  t.h_len <- 0;
  t.hole_count <- 0;
  t.current <- None;
  t.intervals <- (if len > 0.0 then [ len ] else [])

let anchor t =
  match t.max_seq with
  | Some m -> m
  | None -> invalid_arg "Loss_history: holes tracked before any packet"

let ser_of t a = Serial.add (anchor t) (a - t.max_abs)

(* A run born at epoch [b] has [epoch - b + 1] confirming later
   packets (the packet that created it counts as the first). *)
let[@vtp.hot] ripe t i = t.epoch - Array.unsafe_get t.h_born i + 1 >= t.ndup

(* Ripe runs are a prefix (births are non-decreasing along the array):
   promote each of their positions to a loss, in ascending order, by
   advancing the front offset. *)
let promote_ripe_holes t ~arrival ~rtt =
  while t.h_fst < t.h_len && ripe t t.h_fst do
    let i = t.h_fst in
    for a = t.h_lo.(i) to t.h_hi.(i) - 1 do
      record_loss t ~seq:(ser_of t a) ~time:arrival ~rtt
    done;
    t.hole_count <- t.hole_count - (t.h_hi.(i) - t.h_lo.(i));
    t.h_fst <- i + 1
  done

(* Make room for one more run at the back. *)
let reserve t =
  let cap = Array.length t.h_lo in
  if t.h_len = cap then begin
    let live = t.h_len - t.h_fst in
    if t.h_fst > 0 then begin
      Array.blit t.h_lo t.h_fst t.h_lo 0 live;
      Array.blit t.h_hi t.h_fst t.h_hi 0 live;
      Array.blit t.h_born t.h_fst t.h_born 0 live
    end
    else begin
      let ncap = 2 * cap in
      let nlo = Array.make ncap 0
      and nhi = Array.make ncap 0
      and nborn = Array.make ncap 0 in
      Array.blit t.h_lo t.h_fst nlo 0 live;
      Array.blit t.h_hi t.h_fst nhi 0 live;
      Array.blit t.h_born t.h_fst nborn 0 live;
      t.h_lo <- nlo;
      t.h_hi <- nhi;
      t.h_born <- nborn
    end;
    t.h_fst <- 0;
    t.h_len <- live
  end

let append_run t l h =
  reserve t;
  t.h_lo.(t.h_len) <- l;
  t.h_hi.(t.h_len) <- h;
  t.h_born.(t.h_len) <- t.epoch;
  t.h_len <- t.h_len + 1;
  t.hole_count <- t.hole_count + (h - l)

(* Smallest live index whose run ends strictly after [a]. *)
let[@vtp.hot] rec seek_from t a lo hi =
  if lo >= hi then lo
  else
    let mid = (lo + hi) lsr 1 in
    if Array.unsafe_get t.h_hi mid > a then seek_from t a lo mid
    else seek_from t a (mid + 1) hi

(* A late arrival fills one hole: remove the single position [a],
   splitting its run when it sits strictly inside. *)
let fill_hole t a =
  let i = seek_from t a t.h_fst t.h_len in
  if i < t.h_len && t.h_lo.(i) <= a then begin
    t.hole_count <- t.hole_count - 1;
    if t.h_hi.(i) - t.h_lo.(i) = 1 then begin
      Array.blit t.h_lo (i + 1) t.h_lo i (t.h_len - i - 1);
      Array.blit t.h_hi (i + 1) t.h_hi i (t.h_len - i - 1);
      Array.blit t.h_born (i + 1) t.h_born i (t.h_len - i - 1);
      t.h_len <- t.h_len - 1
    end
    else if t.h_lo.(i) = a then t.h_lo.(i) <- a + 1
    else if t.h_hi.(i) = a + 1 then t.h_hi.(i) <- a
    else begin
      (* split: both halves keep the birth epoch *)
      reserve t;
      let i = seek_from t a t.h_fst t.h_len in
      Array.blit t.h_lo i t.h_lo (i + 1) (t.h_len - i);
      Array.blit t.h_hi i t.h_hi (i + 1) (t.h_len - i);
      Array.blit t.h_born i t.h_born (i + 1) (t.h_len - i);
      t.h_len <- t.h_len + 1;
      t.h_hi.(i) <- a;
      t.h_lo.(i + 1) <- a + 1
    end
  end

let on_packet t ~seq ~arrival ~rtt ~is_retx =
  if not is_retx then begin
    charge t "lh.update";
    t.seen <- t.seen + 1;
    (match t.max_seq with
    | None -> t.max_seq <- Some seq
    | Some m when Serial.( > ) seq m ->
        (* Every pre-existing hole saw one more subsequent packet; the
           epoch bump accounts for all of them at once.  The skipped
           numbers become one fresh run — the arriving packet itself
           lies beyond it, so it counts as the first confirmation. *)
        t.epoch <- t.epoch + 1;
        let d = Serial.diff seq m in
        if d > 1 then begin
          append_run t (t.max_abs + 1) (t.max_abs + d);
          for _ = 2 to d do
            charge t "lh.hole"
          done
        end;
        t.max_abs <- t.max_abs + d;
        t.max_seq <- Some seq
    | Some m ->
        (* Late arrival filling a hole: it was never lost. *)
        fill_hole t (t.max_abs + Serial.diff seq m));
    promote_ripe_holes t ~arrival ~rtt;
    watermark t
  end

let open_interval t =
  match (t.current, t.max_seq) with
  | Some ev, Some m -> float_of_int (Stdlib.max 0 (Serial.diff m ev.start_seq))
  | (None | Some _), _ -> 0.0

let mean_of t ~with_open =
  (* Weighted mean per §5.4; closed intervals are newest-first.  With
     [with_open], the open interval takes index 0 and shifts the closed
     ones, dropping the oldest. *)
  let closed = t.intervals in
  let seq_terms =
    if with_open then
      open_interval t :: List.filteri (fun i _ -> i < t.history - 1) closed
    else closed
  in
  match seq_terms with
  | [] -> infinity
  | terms ->
      charge t ~ops:(List.length terms) "lh.rate_calc";
      (* §5.5 history discounting: when the open interval dominates, old
         intervals' influence is reduced so the rate can rise quickly
         after a long loss-free period. *)
      let discount_factor =
        if (not t.discount) || not with_open then fun _ -> 1.0
        else begin
          let i0 = open_interval t in
          let closed_mean =
            match closed with
            | [] -> 0.0
            | l ->
                List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
          in
          if closed_mean > 0.0 && i0 > 2.0 *. closed_mean then begin
            let df = Float.max 0.25 (2.0 *. closed_mean /. i0) in
            fun i -> if i = 0 then 1.0 else df
          end
          else fun _ -> 1.0
        end
      in
      let num = ref 0.0 and den = ref 0.0 in
      List.iteri
        (fun i len ->
          let w = weight ~history:t.history i *. discount_factor i in
          num := !num +. (w *. len);
          den := !den +. w)
        terms;
      if !den = 0.0 then infinity else !num /. !den

let mean_interval t =
  if t.intervals = [] && t.current = None then infinity
  else Float.max (mean_of t ~with_open:false) (mean_of t ~with_open:true)

let loss_event_rate t =
  let m = mean_interval t in
  if Float.is_finite m && m > 0.0 then Float.min 1.0 (1.0 /. m) else 0.0

let loss_events t = t.events
let losses t = t.losses
let congestion_marks t = t.marks
let packets_seen t = t.seen
let max_seq t = t.max_seq
let closed_intervals t = t.intervals
let holes_held t = t.h_len - t.h_fst
