(* All fields are floats on purpose: an all-float record is flat in
   the OCaml heap, so the per-feedback estimate update writes in place
   instead of boxing a fresh float (a mixed record would).  [count]
   carries an integer value in a float cell for the same reason. *)
type t = {
  q : float;
  mutable estimate : float;
  mutable count : float;
}

let create ?(q = 0.9) ~initial () =
  assert (initial > 0.0 && q >= 0.0 && q < 1.0);
  { q; estimate = initial; count = 0.0 }

let sample t r =
  assert (r > 0.0);
  if Float.equal t.count 0.0 then t.estimate <- r
  else t.estimate <- (t.q *. t.estimate) +. ((1.0 -. t.q) *. r);
  t.count <- t.count +. 1.0

let reseed t r =
  assert (r > 0.0);
  t.estimate <- r;
  t.count <- 0.0

let smoothed t = t.estimate

let has_sample t = t.count > 0.0

let t_rto t = 4.0 *. t.estimate

let samples t = int_of_float t.count
