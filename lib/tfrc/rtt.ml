type t = {
  q : float;
  mutable estimate : float;
  mutable count : int;
}

let create ?(q = 0.9) ~initial () =
  assert (initial > 0.0 && q >= 0.0 && q < 1.0);
  { q; estimate = initial; count = 0 }

let sample t r =
  assert (r > 0.0);
  if t.count = 0 then t.estimate <- r
  else t.estimate <- (t.q *. t.estimate) +. ((1.0 -. t.q) *. r);
  t.count <- t.count + 1

let reseed t r =
  assert (r > 0.0);
  t.estimate <- r;
  t.count <- 0

let smoothed t = t.estimate

let has_sample t = t.count > 0

let t_rto t = 4.0 *. t.estimate

let samples t = t.count
