(** TFRC handover rate policies (Mehani, Boreli, Jourjon).

    What the congestion-control plane does with its state when the flow
    migrates to a link with different declared parameters:

    - [`Keep] — carry rate, RTT estimate and loss history over
      unchanged; the feedback loop discovers the new path the slow way
      (and overshoots badly on a downgrade).
    - [`Reset] — restart as if the connection were new: slow start, the
      RFC 3448 initial window of {!reset_segments} segments per
      declared RTT, empty loss history.
    - [`Informed] — re-seed from the new link's declaration: the rate
      starts at {!informed_share} of the declared bandwidth, the RTT
      estimate at the declared RTT, and the loss history at the
      interval whose equation rate matches that target. *)

type policy = [ `Keep | `Reset | `Informed ]

type link_info = {
  bandwidth_bps : float;  (** declared bandwidth of the new link *)
  rtt : float;  (** declared path round-trip time, seconds *)
}

val policy_name : policy -> string
(** ["keep"] / ["reset"] / ["informed"]. *)

val policy_of_string : string -> policy option

val informed_share : float
(** Fraction of the declared bandwidth the informed policy claims
    initially (0.5 — conservative, leaves room for unknown cross
    traffic). *)

val reset_segments : float
(** Initial window of the reset policy, segments per declared RTT (2.0,
    RFC 3448 §4.2). *)

val reset_rate : s:float -> rtt:float -> float
(** Reset starting rate, bytes/s, for segment size [s] bytes. *)

val informed_rate : link_info -> float
(** Informed starting rate, bytes/s. *)

val informed_p : s:int -> link_info -> float
(** The loss-event rate at which {!Equation.rate} on the new link
    yields {!informed_rate} — the loss-history re-seed value. *)

val link_of : bandwidth_bps:float -> rtt:float -> link_info
(** Raises [Invalid_argument] on non-positive parameters. *)
