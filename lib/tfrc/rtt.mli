(** Sender-side round-trip-time estimator (RFC 3448 §4.3).

    [R = q*R + (1-q)*R_sample] with [q = 0.9].  The timeout value
    [t_RTO] is the RFC 3448 simplification [4*R] (TFRC uses it only in
    the throughput equation and the nofeedback timer, not for
    retransmission). *)

type t

val create : ?q:float -> initial:float -> unit -> t
(** [initial] seeds the estimate used before the first sample. *)

val sample : t -> float -> unit
(** Feed one measurement (seconds, must be positive). The first sample
    replaces the seed entirely. *)

val reseed : t -> float -> unit
(** Replace the estimate with a fresh seed (handover onto a link with a
    declared latency) and forget the sample count, so the next
    measurement replaces the seed entirely as at creation. *)

val smoothed : t -> float
(** Current estimate (the seed if no sample yet). *)

val has_sample : t -> bool

val t_rto : t -> float
(** [4 * smoothed]. *)

val samples : t -> int
