(** Frozen per-entry reference implementation of {!Loss_history}, kept as the
    differential-testing oracle for the run-length rewrite.

    Loss-event history and loss-event-rate estimation, RFC 3448 §5.

    This is the expensive half of TFRC: it watches the arrival stream
    for sequence holes, promotes holes to *losses* once enough later
    packets confirm them, groups losses within one RTT into a single
    *loss event* (matching TCP's one-halving-per-window), maintains the
    last [n = 8] loss-interval lengths, and computes the weighted
    average loss interval whose inverse is the loss event rate [p].

    The module is deliberately transport-agnostic: the classic TFRC
    receiver feeds it actual arrivals, while the QTP_light *sender*
    feeds it virtual arrivals reconstructed from SACK feedback.  That
    reuse is exactly the paper's point — the mechanism is unchanged,
    only its *location* moves.

    When a [cost] accountant is supplied, the structure charges
    ["lh.update"] per packet processed, ["lh.hole"] per hole tracked and
    ["lh.rate_calc"] per interval term scanned when the rate is
    (re)computed, plus a ["lh.entries"] memory watermark — giving
    experiments an architecture-neutral view of who pays for loss
    estimation. *)

type t

val create :
  ?ndup:int ->
  ?history:int ->
  ?discount:bool ->
  ?cost:Stats.Cost.t ->
  unit ->
  t
(** [ndup] (default 3): later packets needed to declare a hole lost.
    [history] (default 8): closed loss intervals retained.
    [discount] (default true): RFC 3448 §5.5 history discounting when
    the open interval grows beyond twice the closed mean. *)

val on_packet :
  t -> seq:Packet.Serial.t -> arrival:float -> rtt:float -> is_retx:bool -> unit
(** Account one packet of the (possibly reconstructed) arrival stream.
    [rtt] is the sender RTT estimate used for loss-event grouping;
    retransmissions ([is_retx]) are excluded from congestion accounting
    (the reliability plane, not the congestion plane, owns them). *)

val on_congestion_mark :
  t -> seq:Packet.Serial.t -> arrival:float -> rtt:float -> unit
(** Account an ECN Congestion-Experienced signal carried by the packet
    at [seq]: it starts (or joins) a loss event exactly as a lost packet
    would — RFC 3168 requires the transport to react to a mark as it
    would to a drop — but no packet is actually missing. *)

val set_first_interval : t -> float -> unit
(** Seed the synthetic interval preceding the first loss event
    (RFC 3448 §6.3.1 — derived from the receive rate via the inverted
    throughput equation).  Only effective while no closed interval
    exists. *)

val reseed : t -> float -> unit
(** Handover re-seed, mirroring {!Loss_history.reseed}: forget holes
    and the open event, replace the closed history with the single
    synthetic interval [len] ([<= 0.0] clears it). *)

val loss_event_rate : t -> float
(** Current loss event rate [p]; 0.0 until the first loss event. *)

val mean_interval : t -> float
(** The weighted average loss interval (packets); [infinity] before any
    loss event. *)

val loss_events : t -> int
(** Number of loss events recorded so far. *)

val losses : t -> int
(** Individual packets declared lost. *)

val congestion_marks : t -> int
(** ECN CE signals accounted via {!on_congestion_mark}. *)

val packets_seen : t -> int
(** Non-retransmitted packets accounted via [on_packet]. *)

val max_seq : t -> Packet.Serial.t option
(** Highest sequence number seen. *)

val closed_intervals : t -> float list
(** Most recent first; exposed for tests and the estimator-fidelity
    experiment. *)

val open_interval : t -> float
(** Packets since the start of the current loss event (0 before any). *)
