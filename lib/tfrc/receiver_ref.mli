(** Frozen record-based reference implementation of {!Receiver}, kept as
    the differential-testing oracle for the slab-packed rewrite.

    The standard (RFC 3448) TFRC receiver.

    This is the *heavy* receiver the paper wants to relieve mobile
    devices of: it owns the {!Loss_history}, measures the receive rate,
    and reports [(x_recv, p, timestamp echo)] once per RTT — sooner when
    a new loss event appears.

    The receiver is transport-agnostic: it consumes data headers and
    produces {!Packet.Header.feedback} records through a callback. *)

type t

val create :
  sim:Engine.Sim.t ->
  ?cost:Stats.Cost.t ->
  ?trace:Trace.Sink.t ->
  ?ndup:int ->
  ?discount:bool ->
  send_feedback:(Packet.Header.feedback -> unit) ->
  unit ->
  t
(** [trace] makes the receiver record each loss event it opens and each
    feedback report it emits. *)

val on_data : t -> ?ce:bool -> Packet.Header.data -> size:int -> unit
(** Process one arriving data segment of [size] on-wire bytes.  [ce]
    signals an ECN Congestion-Experienced mark on the packet: it is
    accounted as a congestion event (RFC 3168) though nothing was
    lost. *)

val on_handover : t -> policy:Handover.policy -> link:Handover.link_info -> unit
(** Apply the loss-history component of a handover policy (the standard
    plane keeps the history receiver-side): [`Keep] does nothing,
    [`Reset] clears it, [`Informed] re-seeds it to the interval that
    matches {!Handover.informed_rate} on the new link.  Also adopts the
    declared RTT for loss-event grouping until the sender's estimate
    arrives in-band. *)

val x_recv : t -> float
(** Receive rate (bytes/s) over the last feedback interval. *)

val loss_event_rate : t -> float

val loss_events : t -> int

val packets_received : t -> int

val feedbacks_sent : t -> int

val history : t -> Loss_history.t
(** The underlying loss history (read-only use intended). *)
