(* Frozen record-based reference implementation of [Receiver], kept as
   the differential-testing oracle for the slab-packed rewrite. *)

type t = {
  sim : Engine.Sim.t;
  cost : Stats.Cost.t option;
  trace : Trace.Sink.t option;
  send_feedback : Packet.Header.feedback -> unit;
  lh : Loss_history.t;
  mutable timer : Engine.Timer.t option;  (* created lazily: needs self *)
  mutable last_data : (float * float) option;  (* (sender tstamp, arrival) *)
  mutable last_rtt : float;  (* latest sender RTT estimate seen *)
  mutable window_bytes : int;  (* received since last feedback *)
  mutable window_start : float;
  mutable x_recv : float;
  mutable reported_events : int;
  mutable packets : int;
  mutable feedbacks : int;
  mutable pkt_size : int;  (* last data size, for the p seed *)
}

let charge t ?ops name =
  match t.cost with Some c -> Stats.Cost.charge c ?ops name | None -> ()

let emit_feedback t =
  match t.last_data with
  | None -> ()
  | Some (tstamp, arrival) ->
      let now = Engine.Sim.now t.sim in
      let elapsed = now -. t.window_start in
      if elapsed > 0.0 && t.window_bytes > 0 then
        t.x_recv <- float_of_int t.window_bytes /. elapsed;
      t.window_bytes <- 0;
      t.window_start <- now;
      let p = Loss_history.loss_event_rate t.lh in
      charge t "recv.std.feedback";
      t.feedbacks <- t.feedbacks + 1;
      t.reported_events <- Loss_history.loss_events t.lh;
      let recv_seq =
        match Loss_history.max_seq t.lh with
        | Some s -> s
        | None -> Packet.Serial.zero
      in
      if Trace.Sink.on t.trace then
        Trace.Sink.emit t.trace
          (Trace.Event.Fb_sent { x_recv = t.x_recv; p });
      t.send_feedback
        {
          Packet.Header.tstamp_echo = tstamp;
          t_delay = now -. arrival;
          x_recv = t.x_recv;
          p;
          recv_seq;
        }

let rec arm_timer t =
  let timer =
    match t.timer with
    | Some tm -> tm
    | None ->
        let tm =
          Engine.Timer.create t.sim ~on_expire:(fun () ->
              (* Report only if data arrived this interval (RFC 3448
                 §6.2); otherwise stay quiet and let the sender's
                 nofeedback timer do its job. *)
              if t.window_bytes > 0 then emit_feedback t;
              arm_timer t)
        in
        t.timer <- Some tm;
        tm
  in
  Engine.Timer.start timer ~after:(Float.max 1e-4 t.last_rtt)

let create ~sim ?cost ?trace ?ndup ?discount ~send_feedback () =
  {
    sim;
    cost;
    trace;
    send_feedback;
    lh = Loss_history.create ?ndup ?discount ?cost ();
    timer = None;
    last_data = None;
    last_rtt = 0.1;
    window_bytes = 0;
    window_start = Engine.Sim.now sim;
    x_recv = 0.0;
    reported_events = 0;
    packets = 0;
    feedbacks = 0;
    pkt_size = 1500;
  }

let on_data t ?(ce = false) (d : Packet.Header.data) ~size =
  let now = Engine.Sim.now t.sim in
  charge t "recv.std.packet";
  t.packets <- t.packets + 1;
  t.pkt_size <- Stdlib.max 1 size;
  if d.rtt_estimate > 0.0 then t.last_rtt <- d.rtt_estimate;
  let first = t.last_data = None in
  t.last_data <- Some (d.tstamp, now);
  t.window_bytes <- t.window_bytes + size;
  let events_before = Loss_history.loss_events t.lh in
  Loss_history.on_packet t.lh ~seq:d.seq ~arrival:now ~rtt:t.last_rtt
    ~is_retx:d.is_retransmit;
  if ce then
    Loss_history.on_congestion_mark t.lh ~seq:d.seq ~arrival:now
      ~rtt:t.last_rtt;
  let events_after = Loss_history.loss_events t.lh in
  if events_before = 0 && events_after = 1 then begin
    (* First loss event: synthesise the preceding interval from the
       measured receive rate (RFC 3448 §6.3.1). *)
    let elapsed = now -. t.window_start in
    let x_meas =
      if elapsed > 0.0 && t.window_bytes > 0 then
        float_of_int t.window_bytes /. elapsed
      else t.x_recv
    in
    let x_target = Float.max (float_of_int t.pkt_size /. t.last_rtt) x_meas in
    let p_seed =
      Equation.loss_rate_for ~s:t.pkt_size ~r:t.last_rtt ~target:x_target
    in
    if p_seed > 0.0 then
      Loss_history.set_first_interval t.lh (1.0 /. p_seed)
  end;
  if events_after > events_before && Trace.Sink.on t.trace then
    Trace.Sink.emit t.trace
      (Trace.Event.Loss_event
         {
           side = Trace.Event.S_receiver;
           events = events_after;
           p = Loss_history.loss_event_rate t.lh;
         });
  if events_after > t.reported_events then begin
    (* New loss event: expedited report, then resume the RTT cadence. *)
    emit_feedback t;
    arm_timer t
  end
  else if first then arm_timer t

(* Migration notification: the standard plane's loss history lives
   here, so the policy's history component applies receiver-side. *)
let on_handover t ~policy ~(link : Handover.link_info) =
  match (policy : Handover.policy) with
  | `Keep -> ()
  | `Reset ->
      t.last_rtt <- link.Handover.rtt;
      Loss_history.reseed t.lh 0.0
  | `Informed ->
      t.last_rtt <- link.Handover.rtt;
      let p = Handover.informed_p ~s:t.pkt_size link in
      Loss_history.reseed t.lh (if p > 0.0 then 1.0 /. p else 0.0)

let x_recv t = t.x_recv
let loss_event_rate t = Loss_history.loss_event_rate t.lh
let loss_events t = Loss_history.loss_events t.lh
let packets_received t = t.packets
let feedbacks_sent t = t.feedbacks
let history t = t.lh
