(* Slab-packed implementation; [Sender_ref] is the record-based oracle.

   All mutable numeric state lives in one {!Engine.Slab} slot so that
   10k senders share two flat arrays and — critically — rate/clock
   updates never allocate: a mutable float field in the old mixed
   record boxed two words on every write, which on the tick path meant
   garbage proportional to packets sent.  The send tick keeps the
   pending event inline (event + generation, preallocated fire thunk)
   instead of an option-wrapped handle, mirroring {!Engine.Timer}. *)

type params = {
  packet_size : int;
  initial_rtt : float;
  min_rate_bps : float;
  max_rate_bps : float option;
  t_mbi : float;
  oscillation_damping : bool;
}

let default_params =
  {
    packet_size = 1500;
    initial_rtt = 0.5;
    min_rate_bps = 0.0;
    max_rate_bps = None;
    t_mbi = 64.0;
    oscillation_damping = false;
  }

(* Params records are immutable and overwhelmingly shared across a
   scenario's flows: intern them so 10k flows hold one copy. *)
let params_pool : params Engine.Intern.pool = Engine.Intern.pool ()

let lay = Engine.Slab.layout ~floats:5 ~ints:4

(* float cells *)
let f_x = 0 (* allowed rate, bytes/s *)
let f_next_at = 1 (* deadline of the pending tick *)
let f_last_p = 2
let f_r_sqmean = 3 (* §4.5 EWMA of sqrt(R_sample); 0 = no sample *)
let f_r_sample_last = 4

(* int cells *)
let i_sent = 0
let i_feedbacks = 1
let i_nfb_expiries = 2
let i_flags = 3

let fl_slow_start = 1
let fl_running = 2
let fl_idle = 4

type t = {
  sim : Engine.Sim.t;
  cost : Stats.Cost.t option;
  trace : Trace.Sink.t option;
  p : params;
  on_transmit : unit -> bool;
  rtt : Rtt.t;
  ar : Engine.Slab.t;
  slot : int;
  mutable fire : unit -> unit;  (* built once in [create] *)
  mutable tick_ev : Engine.Event.t;  (* meaningful only when armed *)
  mutable tick_gen : int;
  mutable tick_armed : bool;
  mutable nofeedback : Engine.Timer.t option;
}

let[@inline] x t = Engine.Slab.fget t.ar t.slot f_x
let[@inline] set_x t v = Engine.Slab.fset t.ar t.slot f_x v
let[@inline] fget t j = Engine.Slab.fget t.ar t.slot j
let[@inline] fset t j v = Engine.Slab.fset t.ar t.slot j v
let[@inline] iget t j = Engine.Slab.iget t.ar t.slot j
let[@inline] iset t j v = Engine.Slab.iset t.ar t.slot j v
let[@inline] flag t m = iget t i_flags land m <> 0

let[@inline] set_flag t m b =
  let fl = iget t i_flags in
  iset t i_flags (if b then fl lor m else fl land lnot m)

let charge t ?ops name =
  match t.cost with Some c -> Stats.Cost.charge c ?ops name | None -> ()

let trace_rate t ~x_calc ~x_recv ~p =
  if Trace.Sink.on t.trace then
    Trace.Sink.emit t.trace
      (Trace.Event.Rate_change
         {
           x_bps = 8.0 *. x t;
           x_calc_bps = 8.0 *. x_calc;
           x_recv_bps = 8.0 *. x_recv;
           p;
           slow_start = flag t fl_slow_start;
         })

let s_float t = float_of_int t.p.packet_size

(* Clamp X to [floor, ceiling]: the gTFRC guarantee g below, the
   application/interface rate above, and never below one packet per
   maximum backoff interval. *)
let clamp t v =
  let v = Float.max v (s_float t /. t.p.t_mbi) in
  let v = Float.max v (t.p.min_rate_bps /. 8.0) in
  match t.p.max_rate_bps with
  | Some cap -> Float.min v (cap /. 8.0)
  | None -> v

let rate_bps t = 8.0 *. x t

(* §4.5: the instantaneous rate is damped by sqrt(R_sample)/R_sqmean; a
   rising RTT (queue building) slows the sender below X before the next
   equation update, and vice versa. *)
let[@vtp.hot] instantaneous_rate t =
  let r_sqmean = fget t f_r_sqmean and r_sample_last = fget t f_r_sample_last in
  if t.p.oscillation_damping && r_sqmean > 0.0 && r_sample_last > 0.0 then
    x t *. r_sqmean /. sqrt r_sample_last
  else x t

let instantaneous_rate_bps t = 8.0 *. instantaneous_rate t

let[@vtp.hot] inter_packet_interval t = s_float t /. instantaneous_rate t

let[@vtp.hot] schedule_tick t ~after =
  if t.tick_armed then Engine.Sim.cancel_ev t.sim t.tick_ev ~gen:t.tick_gen;
  fset t f_next_at (Engine.Sim.now t.sim +. after);
  let ev = Engine.Sim.schedule_after_ev t.sim after t.fire in
  t.tick_ev <- ev;
  t.tick_gen <- ev.Engine.Event.gen;
  t.tick_armed <- true

let[@vtp.hot] fire t =
  t.tick_armed <- false;
  if flag t fl_running then begin
    if t.on_transmit () then begin
      iset t i_sent (iget t i_sent + 1);
      schedule_tick t ~after:(inter_packet_interval t)
    end
    else set_flag t fl_idle true
  end

let nofeedback_timer t =
  match t.nofeedback with
  | Some tm -> tm
  | None ->
      let tm =
        Engine.Timer.create t.sim ~on_expire:(fun () ->
            (* RFC 3448 §4.4: no report for a while — halve the rate.
               The gTFRC floor still applies via [clamp]: the AF
               reservation remains paid for while the connection lives. *)
            iset t i_nfb_expiries (iget t i_nfb_expiries + 1);
            charge t "send.nofeedback";
            set_x t (clamp t (x t /. 2.0));
            trace_rate t ~x_calc:0.0 ~x_recv:0.0 ~p:(fget t f_last_p);
            let tm2 = Option.get t.nofeedback in
            Engine.Timer.start tm2
              ~after:
                (Float.max (4.0 *. Rtt.smoothed t.rtt)
                   (2.0 *. s_float t /. x t)))
      in
      t.nofeedback <- Some tm;
      tm

let restart_nofeedback t =
  let tm = nofeedback_timer t in
  Engine.Timer.start tm
    ~after:(Float.max (4.0 *. Rtt.smoothed t.rtt) (2.0 *. s_float t /. x t))

let create ~sim ?cost ?trace p ~on_transmit () =
  assert (p.packet_size > 0 && p.initial_rtt > 0.0 && p.t_mbi > 0.0);
  let p = Engine.Intern.share params_pool p in
  let rtt = Rtt.create ~initial:p.initial_rtt () in
  let ar = Engine.Sim.arena sim lay in
  let t =
    {
      sim;
      cost;
      trace;
      p;
      on_transmit;
      rtt;
      ar;
      slot = Engine.Slab.alloc ar;
      fire = Engine.Event.noop;
      tick_ev = Engine.Event.make_dummy ();
      tick_gen = 0;
      tick_armed = false;
      nofeedback = None;
    }
  in
  t.fire <- (fun () -> fire t);
  set_flag t fl_slow_start true;
  (* Initial rate: two segments per (seeded) RTT — within RFC 3448's
     allowance, conservative for long paths. *)
  set_x t (clamp t (2.0 *. s_float t /. p.initial_rtt));
  t

let start t =
  if not (flag t fl_running) then begin
    set_flag t fl_running true;
    set_flag t fl_idle false;
    restart_nofeedback t;
    schedule_tick t ~after:0.0
  end

let stop t =
  set_flag t fl_running false;
  if t.tick_armed then begin
    Engine.Sim.cancel_ev t.sim t.tick_ev ~gen:t.tick_gen;
    t.tick_armed <- false
  end;
  match t.nofeedback with Some tm -> Engine.Timer.stop tm | None -> ()

let notify_data t =
  if flag t fl_running && flag t fl_idle then begin
    set_flag t fl_idle false;
    schedule_tick t ~after:0.0
  end

let[@vtp.hot] on_feedback t ~tstamp_echo ~t_delay ~x_recv ~p =
  charge t "send.std.feedback_proc";
  iset t i_feedbacks (iget t i_feedbacks + 1);
  fset t f_last_p p;
  let now = Engine.Sim.now t.sim in
  let sample = now -. tstamp_echo -. t_delay in
  if sample > 0.0 then begin
    Rtt.sample t.rtt sample;
    fset t f_r_sample_last sample;
    let r_sqmean = fget t f_r_sqmean in
    fset t f_r_sqmean
      (if Float.equal r_sqmean 0.0 then sqrt sample
       else (0.9 *. r_sqmean) +. (0.1 *. sqrt sample));
    if Trace.Sink.on t.trace then
      Trace.Sink.emit t.trace
        (Trace.Event.Rtt_sample { sample; srtt = Rtt.smoothed t.rtt })
  end;
  let r = Rtt.smoothed t.rtt in
  let x_calc =
    if p > 0.0 then begin
      set_flag t fl_slow_start false;
      let x_calc = Equation.rate ~s:t.p.packet_size ~r ~p () in
      set_x t (clamp t (Float.min x_calc (2.0 *. x_recv)));
      x_calc
    end
    else begin
      (* Slow start: double once per feedback, bounded by twice the rate
         the receiver actually saw. *)
      let doubled = 2.0 *. x t in
      let bound = if x_recv > 0.0 then 2.0 *. x_recv else doubled in
      set_x t (clamp t (Float.min doubled bound));
      Float.infinity
    end
  in
  trace_rate t ~x_calc ~x_recv ~p;
  (* A rate increase takes effect immediately rather than waiting out a
     long previously-scheduled gap — but never push the pending
     opportunity further away. *)
  if flag t fl_running && not (flag t fl_idle) then begin
    let gap = inter_packet_interval t in
    if t.tick_armed && now +. gap < fget t f_next_at then
      schedule_tick t ~after:gap
  end;
  restart_nofeedback t

(* Migration notification.  [`Keep] is deliberately a no-op — the whole
   point of the policy comparison is that keeping a WiFi-sized X on a
   3G link overshoots until the feedback loop catches up. *)
let apply_handover t ~policy ~(link : Handover.link_info) =
  (match (policy : Handover.policy) with
  | `Keep -> ()
  | `Reset ->
      Rtt.reseed t.rtt link.Handover.rtt;
      set_flag t fl_slow_start true;
      fset t f_last_p 0.0;
      fset t f_r_sqmean 0.0;
      fset t f_r_sample_last 0.0;
      set_x t (clamp t (Handover.reset_rate ~s:(s_float t) ~rtt:link.Handover.rtt));
      trace_rate t ~x_calc:0.0 ~x_recv:0.0 ~p:0.0
  | `Informed ->
      Rtt.reseed t.rtt link.Handover.rtt;
      set_flag t fl_slow_start false;
      fset t f_r_sqmean 0.0;
      fset t f_r_sample_last 0.0;
      let target = Handover.informed_rate link in
      let p = Handover.informed_p ~s:t.p.packet_size link in
      fset t f_last_p p;
      set_x t (clamp t target);
      trace_rate t ~x_calc:target ~x_recv:0.0 ~p);
  match (policy : Handover.policy) with
  | `Keep -> ()
  | `Reset | `Informed ->
      (* Take a rate increase immediately (cf. [on_feedback]); a
         decrease naturally stretches the next gap. *)
      if flag t fl_running && not (flag t fl_idle) then begin
        let gap = inter_packet_interval t in
        let now = Engine.Sim.now t.sim in
        if t.tick_armed && now +. gap < fget t f_next_at then
          schedule_tick t ~after:gap
      end;
      restart_nofeedback t

let rtt t = Rtt.smoothed t.rtt
let has_rtt_sample t = Rtt.has_sample t.rtt
let in_slow_start t = flag t fl_slow_start
let packets_sent t = iget t i_sent
let feedbacks_processed t = iget t i_feedbacks
let nofeedback_expiries t = iget t i_nfb_expiries
let params t = t.p
