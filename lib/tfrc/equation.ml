let[@vtp.hot] rate ~s ~r ~p ?(b = 1.0) ?t_rto () =
  assert (s > 0 && r > 0.0);
  if p <= 0.0 then infinity
  else begin
    let p = Float.min p 1.0 in
    let t_rto = match t_rto with Some t -> t | None -> 4.0 *. r in
    let root1 = sqrt (2.0 *. b *. p /. 3.0) in
    let root2 = sqrt (3.0 *. b *. p /. 8.0) in
    let denom =
      (r *. root1) +. (t_rto *. 3.0 *. root2 *. p *. (1.0 +. (32.0 *. p *. p)))
    in
    float_of_int s /. denom
  end

let rate_bps ~s ~r ~p ?b ?t_rto () = 8.0 *. rate ~s ~r ~p ?b ?t_rto ()

let loss_rate_for ~s ~r ~target =
  assert (target > 0.0);
  let f p = rate ~s ~r ~p () in
  let lo = 1e-8 and hi = 1.0 in
  if f hi >= target then 1.0
  else if f lo <= target then lo
  else begin
    (* rate is decreasing in p: bisect for f p = target. *)
    let rec bisect lo hi n =
      if n = 0 then (lo +. hi) /. 2.0
      else begin
        let mid = (lo +. hi) /. 2.0 in
        if f mid > target then bisect mid hi (n - 1) else bisect lo mid (n - 1)
      end
    in
    bisect lo hi 60
  end
