type t = {
  sim : Engine.Sim.t;
  sink : Netsim.Frame.t -> unit;
  flow_id : int;
  packet_size : int;
  mark : Netsim.Mark.t;
  stop_at : float option;
  mutable packets : int;
  mutable bytes : int;
  mutable uid : int;
}

let make ~sim ~sink ~flow_id ~packet_size ~mark ~stop_at =
  { sim; sink; flow_id; packet_size; mark; stop_at; packets = 0; bytes = 0; uid = 0 }

let active t =
  match t.stop_at with
  | Some stop -> Engine.Sim.now t.sim < stop
  | None -> true

let emit t =
  t.uid <- t.uid + 1;
  let frame =
    Netsim.Frame.make ~uid:(t.flow_id * 10_000_000 + t.uid) ~flow_id:t.flow_id
      ~size:t.packet_size ~mark:t.mark ~born:(Engine.Sim.now t.sim)
      (Netsim.Frame.Raw t.uid)
  in
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + t.packet_size;
  t.sink frame

(* Loop [next_gap] forever (until stop_at), emitting one frame per gap. *)
let run_loop t ~start_at ~next_gap =
  let rec tick () =
    if active t then begin
      emit t;
      ignore (Engine.Sim.schedule_after t.sim (next_gap ()) tick)
    end
  in
  ignore (Engine.Sim.schedule_at t.sim start_at tick)

let cbr ~sim ~sink ~flow_id ~rate_bps ~packet_size
    ?(mark = Netsim.Mark.Best_effort) ?(start_at = 0.0) ?stop_at () =
  assert (rate_bps > 0.0);
  let t = make ~sim ~sink ~flow_id ~packet_size ~mark ~stop_at in
  let gap = 8.0 *. float_of_int packet_size /. rate_bps in
  run_loop t ~start_at ~next_gap:(fun () -> gap);
  t

let poisson ~sim ~sink ~flow_id ~rng ~rate_bps ~packet_size
    ?(mark = Netsim.Mark.Best_effort) ?(start_at = 0.0) ?stop_at () =
  assert (rate_bps > 0.0);
  let t = make ~sim ~sink ~flow_id ~packet_size ~mark ~stop_at in
  let mean_gap = 8.0 *. float_of_int packet_size /. rate_bps in
  run_loop t ~start_at ~next_gap:(fun () ->
      Engine.Dist.exponential rng ~mean:mean_gap);
  t

let exp_on_off ~sim ~sink ~flow_id ~rng ~peak_rate_bps ~mean_on ~mean_off
    ~packet_size ?(mark = Netsim.Mark.Best_effort) ?(start_at = 0.0) ?stop_at
    () =
  assert (peak_rate_bps > 0.0 && mean_on > 0.0 && mean_off > 0.0);
  let t = make ~sim ~sink ~flow_id ~packet_size ~mark ~stop_at in
  let gap = 8.0 *. float_of_int packet_size /. peak_rate_bps in
  (* Alternate ON bursts (packet count from the exponential duration)
     with exponential OFF silences. *)
  let rec on_period () =
    if active t then begin
      let duration = Engine.Dist.exponential rng ~mean:mean_on in
      let count = Stdlib.max 1 (int_of_float (duration /. gap)) in
      burst count
    end
  and burst n =
    if active t then begin
      emit t;
      if n > 1 then ignore (Engine.Sim.schedule_after t.sim gap (fun () -> burst (n - 1)))
      else
        let off = Engine.Dist.exponential rng ~mean:mean_off in
        ignore (Engine.Sim.schedule_after t.sim off on_period)
    end
  in
  ignore (Engine.Sim.schedule_at t.sim start_at on_period);
  t

let packets_sent t = t.packets

let bytes_sent t = t.bytes
