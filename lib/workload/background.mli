(** Unresponsive background traffic injectors.

    DiffServ assurance experiments need controllable *excess* load that
    does not react to congestion (out-of-profile aggregates, other
    classes' leakage).  These injectors push raw frames straight into a
    sink at a configured pattern; they never listen. *)

type t

val cbr :
  sim:Engine.Sim.t ->
  sink:(Netsim.Frame.t -> unit) ->
  flow_id:int ->
  rate_bps:float ->
  packet_size:int ->
  ?mark:Netsim.Mark.t ->
  ?start_at:float ->
  ?stop_at:float ->
  unit ->
  t
(** Constant bit rate frames of [packet_size] bytes. *)

val poisson :
  sim:Engine.Sim.t ->
  sink:(Netsim.Frame.t -> unit) ->
  flow_id:int ->
  rng:Engine.Rng.t ->
  rate_bps:float ->
  packet_size:int ->
  ?mark:Netsim.Mark.t ->
  ?start_at:float ->
  ?stop_at:float ->
  unit ->
  t
(** Exponential inter-arrivals with the given average rate. *)

val exp_on_off :
  sim:Engine.Sim.t ->
  sink:(Netsim.Frame.t -> unit) ->
  flow_id:int ->
  rng:Engine.Rng.t ->
  peak_rate_bps:float ->
  mean_on:float ->
  mean_off:float ->
  packet_size:int ->
  ?mark:Netsim.Mark.t ->
  ?start_at:float ->
  ?stop_at:float ->
  unit ->
  t
(** CBR at [peak_rate_bps] during exponentially-distributed ON periods. *)

val packets_sent : t -> int
val bytes_sent : t -> int
