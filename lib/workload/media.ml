type params = {
  fps : float;
  gop : int;
  mean_i_bytes : float;
  mean_p_bytes : float;
  jitter : float;
  payload : int;
}

let default_params =
  {
    fps = 25.0;
    gop = 12;
    mean_i_bytes = 9000.0;
    mean_p_bytes = 3000.0;
    jitter = 0.2;
    payload = 1431;
  }

type t = {
  sim : Engine.Sim.t;
  rng : Engine.Rng.t;
  p : params;
  push : int -> unit;
  stop_at : float option;
  mutable frame_no : int;
  mutable frames : int;
  mutable bytes : int;
}

let mean_rate_bps p =
  let per_gop =
    p.mean_i_bytes +. (float_of_int (p.gop - 1) *. p.mean_p_bytes)
  in
  8.0 *. per_gop *. p.fps /. float_of_int p.gop

let frame_size t =
  let mean =
    if t.frame_no mod t.p.gop = 0 then t.p.mean_i_bytes else t.p.mean_p_bytes
  in
  let noise =
    if t.p.jitter <= 0.0 then 1.0
    else
      Engine.Dist.uniform_range t.rng ~lo:(1.0 -. t.p.jitter)
        ~hi:(1.0 +. t.p.jitter)
  in
  Stdlib.max 200 (int_of_float (mean *. noise))

let start ~sim ~rng p ~push ?(start_at = 0.0) ?stop_at () =
  assert (p.fps > 0.0 && p.gop >= 1 && p.payload > 0);
  let t =
    { sim; rng; p; push; stop_at; frame_no = 0; frames = 0; bytes = 0 }
  in
  let gap = 1.0 /. p.fps in
  let active () =
    match t.stop_at with
    | Some stop -> Engine.Sim.now sim < stop
    | None -> true
  in
  let rec tick () =
    if active () then begin
      let size = frame_size t in
      let pkts = (size + p.payload - 1) / p.payload in
      t.frame_no <- t.frame_no + 1;
      t.frames <- t.frames + 1;
      t.bytes <- t.bytes + size;
      push pkts;
      ignore (Engine.Sim.schedule_after sim gap tick)
    end
  in
  ignore (Engine.Sim.schedule_at sim start_at tick);
  t

let frames_emitted t = t.frames

let bytes_emitted t = t.bytes
