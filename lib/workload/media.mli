(** Synthetic video workload.

    A simple GoP-structured encoder model: every [gop] frames an
    I-frame, otherwise P-frames, sizes log-normal-ish around the
    configured means.  Frames are chopped into transport packets and
    pushed into a {!Qtp.Source} queue at the frame rate — the workload
    the paper's mobile-streaming motivation describes. *)

type params = {
  fps : float;
  gop : int;  (** frames per group-of-pictures (I-frame period) *)
  mean_i_bytes : float;
  mean_p_bytes : float;
  jitter : float;  (** multiplicative size noise, e.g. 0.2 *)
  payload : int;  (** transport payload bytes per packet *)
}

val default_params : params
(** 25 fps, GoP 12, 9000 B I-frames, 3000 B P-frames, 0.2 jitter,
    1431 B payload (1500 B wire segments). *)

type t

val start :
  sim:Engine.Sim.t ->
  rng:Engine.Rng.t ->
  params ->
  push:(int -> unit) ->
  ?start_at:float ->
  ?stop_at:float ->
  unit ->
  t
(** Drive [push] (from [Qtp.Source.queued]) with the packetised frame
    schedule. *)

val frames_emitted : t -> int
val bytes_emitted : t -> int
val mean_rate_bps : params -> float
(** The long-run average rate this parameterisation generates. *)
