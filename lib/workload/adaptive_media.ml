type t = {
  sim : Engine.Sim.t;
  rng : Engine.Rng.t;
  ladder : float list;  (* ascending *)
  transport_rate_bps : unit -> float;
  headroom : float;
  fps : float;
  payload : int;
  push : int -> unit;
  stop_at : float option;
  mutable rung : float;
  mutable switches : int;
  mutable frames : int;
  mutable rung_since : float;
  mutable rung_time : (float * float) list;  (* rung -> accumulated secs *)
  mutable started_at : float;
}

let account_rung_time t ~now =
  let elapsed = now -. t.rung_since in
  if elapsed > 0.0 then begin
    let cur = try List.assoc t.rung t.rung_time with Not_found -> 0.0 in
    t.rung_time <-
      (t.rung, cur +. elapsed) :: List.remove_assoc t.rung t.rung_time
  end;
  t.rung_since <- now

let pick_rung t =
  let budget = t.headroom *. t.transport_rate_bps () in
  let best =
    List.fold_left
      (fun acc rung -> if rung <= budget then rung else acc)
      (List.hd t.ladder) t.ladder
  in
  best

let active t =
  match t.stop_at with
  | Some stop -> Engine.Sim.now t.sim < stop
  | None -> true

let start ~sim ~rng ~ladder_bps ~transport_rate_bps ?(headroom = 0.85)
    ?(fps = 25.0) ?(payload = 1431) ~push ?(start_at = 0.0) ?stop_at () =
  if ladder_bps = [] then invalid_arg "Adaptive_media.start: empty ladder";
  let ladder = List.sort Float.compare ladder_bps in
  let t =
    {
      sim;
      rng;
      ladder;
      transport_rate_bps;
      headroom;
      fps;
      payload;
      push;
      stop_at;
      rung = List.hd ladder;
      switches = 0;
      frames = 0;
      rung_since = start_at;
      rung_time = [];
      started_at = start_at;
    }
  in
  (* Start at the rung the transport can already carry — the initial
     ramp is not a viewer-visible quality switch. *)
  t.rung <- pick_rung t;
  (* Once a second: re-evaluate the rung. *)
  let rec adapt () =
    if active t then begin
      let now = Engine.Sim.now sim in
      let next = pick_rung t in
      if next <> t.rung then begin
        account_rung_time t ~now;
        t.rung <- next;
        t.switches <- t.switches + 1
      end;
      ignore (Engine.Sim.schedule_after sim 1.0 adapt)
    end
  in
  (* Frame clock: bytes per frame follow the current rung (with ±10%
     size noise), chopped into payload-sized packets. *)
  let rec frame_tick () =
    if active t then begin
      let bytes_per_frame = t.rung /. 8.0 /. t.fps in
      let noise = Engine.Dist.uniform_range rng ~lo:0.9 ~hi:1.1 in
      let size = Stdlib.max 200 (int_of_float (bytes_per_frame *. noise)) in
      let pkts = (size + t.payload - 1) / t.payload in
      t.frames <- t.frames + 1;
      push pkts;
      ignore (Engine.Sim.schedule_after sim (1.0 /. t.fps) frame_tick)
    end
  in
  ignore (Engine.Sim.schedule_at sim start_at adapt);
  ignore (Engine.Sim.schedule_at sim start_at frame_tick);
  t

let current_rung_bps t = t.rung

let switches t = t.switches

let frames_emitted t = t.frames

let rung_time_fractions t =
  account_rung_time t ~now:(Engine.Sim.now t.sim);
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 t.rung_time in
  if total <= 0.0 then []
  else
    List.sort
      (fun (a, _) (b, _) -> Float.compare b a)
      (List.map (fun (r, s) -> (r, s /. total)) t.rung_time)
