(** Rate-adaptive media source.

    The multimedia use the paper motivates rarely streams at a fixed
    rate: the encoder adapts its target bitrate to what the transport
    can carry.  This source polls the connection's allowed rate once a
    second and switches between configured encoding ladder rungs
    (bitrates), always picking the highest rung at most
    [headroom × transport rate].  Frames are then generated like
    {!Media} at the selected rung. *)

type t

val start :
  sim:Engine.Sim.t ->
  rng:Engine.Rng.t ->
  ladder_bps:float list ->
  transport_rate_bps:(unit -> float) ->
  ?headroom:float ->
  ?fps:float ->
  ?payload:int ->
  push:(int -> unit) ->
  ?start_at:float ->
  ?stop_at:float ->
  unit ->
  t
(** [ladder_bps] must be non-empty; sorted internally.  [headroom]
    defaults to 0.85 (encode below the transport estimate), [fps] to 25,
    [payload] to 1431 bytes/packet. *)

val current_rung_bps : t -> float

val switches : t -> int
(** Ladder switches so far (quality changes the viewer would see). *)

val frames_emitted : t -> int

val rung_time_fractions : t -> (float * float) list
(** (rung, fraction of elapsed time spent at it), descending rungs. *)
