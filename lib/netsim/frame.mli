(** The unit of transfer inside the network simulator.

    A frame is protocol-agnostic: queues, markers and links only look at
    [size], [flow_id] and [mark].  The transported content is an open
    (extensible) variant so each transport library attaches its own
    segments without the simulator depending on them. *)

type body = ..

type body += Raw of int  (** opaque filler traffic of the given id *)

type t = {
  uid : int;
  flow_id : int;
  size : int;  (** on-wire bytes *)
  mutable mark : Mark.t;
  mutable ect : bool;  (** ECN-capable transport (RFC 3168 ECT) *)
  mutable ce : bool;  (** congestion experienced: set by an ECN queue *)
  body : body;
  born : float;  (** virtual time the frame entered the network *)
  mutable hops : int;  (** links traversed so far *)
}

val make :
  uid:int -> flow_id:int -> size:int -> ?mark:Mark.t -> born:float ->
  body -> t

val fresh_uid : unit -> int
(** Next value of the process-wide uid stream.  Every frame allocator
    (transports, the {!Mangler}'s duplicates) must draw from this one
    stream so that uids stay globally unique — the packet-conservation
    invariant keys on them. *)

val copy : t -> t
(** Byte-identical clone carrying a {!fresh_uid} — an in-network
    duplicate, distinguishable from the original by uid alone. *)

val dummy : t
(** Inert zero-size frame (uid 0, flow -1) used to pad preallocated
    container slots.  Never enqueue or transmit it. *)

val pp : Format.formatter -> t -> unit
