(** Canned topologies used by the experiments.

    Endpoints expose send functions toward the peer and accept a receive
    callback; transports plug in without knowing the topology shape. *)

type spec = {
  rate_bps : float;
  delay : float;
  qdisc : unit -> Qdisc.t;  (** fresh qdisc per link instance *)
  loss : unit -> Loss_model.t;  (** fresh loss model per link instance *)
  mangle : unit -> Mangler.t option;
      (** fresh fault-injection stage per link instance; [None] = clean *)
}

val spec :
  ?qdisc:(unit -> Qdisc.t) ->
  ?loss:(unit -> Loss_model.t) ->
  ?mangle:(unit -> Mangler.t option) ->
  rate_bps:float ->
  delay:float ->
  unit ->
  spec
(** Default qdisc: droptail of 100 packets; default loss: none; default
    mangler: none. *)

type endpoint = {
  flow_id : int;
  to_receiver : Frame.t -> unit;  (** sender-side injection (forward) *)
  to_sender : Frame.t -> unit;  (** receiver-side injection (reverse) *)
  on_receiver_rx : (Frame.t -> unit) -> unit;  (** receiver delivery hook *)
  on_sender_rx : (Frame.t -> unit) -> unit;  (** sender delivery hook *)
  marker : Marker.t option;  (** edge marker on the forward path, if any *)
}

type t = {
  sim : Engine.Sim.t;
  bottleneck : Link.t;  (** shared forward bottleneck *)
  reverse : Link.t;  (** shared reverse path *)
  endpoints : endpoint array;
  links : Link.t list;
      (** every link in the topology, access links included — lets an
          observer (e.g. the invariant checker) register {!Link.on_drop}
          on all of them *)
}

val dumbbell :
  sim:Engine.Sim.t ->
  n_flows:int ->
  bottleneck:spec ->
  ?reverse:spec ->
  ?access:spec ->
  ?committed_rates:float array ->
  unit ->
  t
(** Classic dumbbell: per-flow access links into one shared bottleneck,
    one shared (ample) reverse link back.

    - [reverse] defaults to the bottleneck rate with the same delay and a
      large droptail buffer — feedback is not the bottleneck.
    - [access] defaults to 10x the bottleneck rate, 1 ms, large buffer.
    - [committed_rates.(i)], when given and positive, installs a DiffServ
      edge marker with that committed rate on flow [i]'s forward path
      (burst: 4 packets at 1500 B). *)

val duplex_path :
  sim:Engine.Sim.t -> forward:spec -> ?reverse:spec -> unit -> t
(** Two endpoints joined by a single forward link and a reverse link —
    the minimal topology ([endpoints] has one element, flow 0). *)

val parking_lot :
  sim:Engine.Sim.t ->
  hops:spec list ->
  paths:(int * int) array ->
  ?reverse:spec ->
  unit ->
  t
(** The classic parking-lot: [hops] links in a row; flow [i] enters
    before hop [fst paths.(i)] and leaves after hop [snd paths.(i) - 1]
    (half-open hop range, which must be non-empty and within bounds).
    One long flow crossing all hops competing with single-hop cross
    traffic is the standard multi-bottleneck fairness scenario.
    [t.bottleneck] is the slowest hop. *)

val chain :
  sim:Engine.Sim.t ->
  n_flows:int ->
  hops:spec list ->
  ?reverse:spec ->
  unit ->
  t
(** Multi-hop path: every flow's forward traffic traverses the [hops]
    links in order (e.g. a wired segment followed by a wireless one);
    one shared reverse link carries feedback.  [t.bottleneck] is the
    smallest-rate hop.  Raises [Invalid_argument] on an empty hop
    list. *)

val endpoint : t -> int -> endpoint

(** {1 Mobility} *)

type handover_mode = [ `Drain | `Cut ]
(** What happens to traffic still on the old path at migration time:
    [`Drain] lets it propagate and deliver normally (make-before-break);
    [`Cut] severs both directions — queued and in-flight frames drop
    with reason [D_cut] (break-before-make). *)

type mobile
(** A single-flow topology over several candidate duplex paths
    ("path-0", "path-1", …), exactly one active at a time.  Built for
    the heterogeneous-handover scenarios: each path has its own rate,
    delay, queue, loss and fault models (WiFi / 3G / satellite). *)

type handover_schedule = (float * int * handover_mode) list
(** Time-triggered switches: [(at, target path index, mode)]. *)

val mobile :
  sim:Engine.Sim.t -> paths:spec list -> ?reverse:spec list -> unit -> mobile
(** One flow (flow 0) over [List.length paths] duplex paths; path 0 is
    active initially.  [reverse] gives per-path reverse specs (same
    length); by default each path's reverse mirrors its forward rate and
    delay with an ample buffer, so feedback latency tracks the path.
    Raises [Invalid_argument] on an empty path list or a length
    mismatch. *)

val mobile_net : mobile -> t
(** The underlying topology view: one endpoint (flow 0), [links] lists
    every path's forward and reverse links so observers can register
    drop hooks on all of them.  [bottleneck]/[reverse] are path 0. *)

val migrate_flow : mobile -> to_:int -> mode:handover_mode -> unit
(** Atomically re-home the flow onto path [to_]: the old path is
    severed iff [mode = `Cut], the target path is restored (it may have
    been severed by an earlier cut), a [Handover] trace event is
    emitted and the migration hook runs.  Migrating to the already
    active path is a complete no-op — no severing, no trace event, no
    hook — so degenerate schedules are observationally identical to no
    schedule. *)

val apply_schedule : mobile -> handover_schedule -> unit
(** Post one simulation event per entry invoking {!migrate_flow}. *)

val on_migrate : mobile -> (int -> unit) -> unit
(** Register the hook called with the new path index after each actual
    migration — the connection layer uses it to apply its handover rate
    policy.  One hook; later registrations replace earlier ones. *)

val active_path : mobile -> int
val n_paths : mobile -> int

val path_fwd : mobile -> int -> Link.t
(** Forward link of path [i] — its {!Link.rate_bps}/{!Link.delay} are
    the "declared" parameters an informed handover policy consumes. *)

val path_rev : mobile -> int -> Link.t
