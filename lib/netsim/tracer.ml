type event = {
  at : float;
  point : string;
  uid : int;
  flow_id : int;
  size : int;
  mark : Mark.t;
}

type t = {
  sim : Engine.Sim.t;
  capacity : int;
  buffer : event Queue.t;
  mutable total : int;
}

let create ~sim ?(capacity = 10_000) () =
  assert (capacity > 0);
  { sim; capacity; buffer = Queue.create (); total = 0 }

let record t ev =
  t.total <- t.total + 1;
  Queue.add ev t.buffer;
  if Queue.length t.buffer > t.capacity then ignore (Queue.pop t.buffer)

let tap t point sink frame =
  record t
    {
      at = Engine.Sim.now t.sim;
      point;
      uid = frame.Frame.uid;
      flow_id = frame.Frame.flow_id;
      size = frame.Frame.size;
      mark = frame.Frame.mark;
    };
  sink frame

let events t = List.of_seq (Queue.to_seq t.buffer)

let count t = t.total

let count_at t point =
  Queue.fold (fun acc ev -> if ev.point = point then acc + 1 else acc) 0 t.buffer

let dump t fmt =
  Queue.iter
    (fun ev ->
      Format.fprintf fmt "%.6f %-16s frame#%d flow=%d %dB %a@." ev.at ev.point
        ev.uid ev.flow_id ev.size Mark.pp ev.mark)
    t.buffer

let clear t = Queue.clear t.buffer
