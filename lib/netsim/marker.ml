type t = {
  sim : Engine.Sim.t;
  bucket : Token_bucket.t;
  mutable green : int;
  mutable red : int;
}

let create ~sim ~committed_rate_bps ~burst =
  {
    sim;
    bucket =
      Token_bucket.create ~rate_bps:committed_rate_bps ~burst
        ~now:(Engine.Sim.now sim);
    green = 0;
    red = 0;
  }

let mark t frame =
  let now = Engine.Sim.now t.sim in
  if Token_bucket.conform t.bucket ~now ~bytes:frame.Frame.size then begin
    frame.Frame.mark <- Mark.Green;
    t.green <- t.green + 1
  end
  else begin
    frame.Frame.mark <- Mark.Red;
    t.red <- t.red + 1
  end

let wrap t sink frame =
  mark t frame;
  sink frame

let committed_rate_bps t = Token_bucket.rate_bps t.bucket

let green_count t = t.green

let red_count t = t.red
