type body = ..

type body += Raw of int

type t = {
  uid : int;
  flow_id : int;
  size : int;
  mutable mark : Mark.t;
  mutable ect : bool;
  mutable ce : bool;
  body : body;
  born : float;
  mutable hops : int;
}

let make ~uid ~flow_id ~size ?(mark = Mark.Best_effort) ~born body =
  { uid; flow_id; size; mark; ect = false; ce = false; body; born; hops = 0 }

(* One stream per domain keeps frame uids unique across every
   allocator (transport frames, in-network duplicates) of every
   simulation that domain runs, which the packet-conservation checker
   relies on.  A simulation never crosses domains, so domain-local
   uniqueness is all the checker needs — and the counter carries no
   behaviour, so parallel runs stay deterministic. *)
let uid_counter = Domain.DLS.new_key (fun () -> ref 0)

let fresh_uid () =
  let c = Domain.DLS.get uid_counter in
  incr c;
  !c

let copy t = { t with uid = fresh_uid () }

let dummy = make ~uid:0 ~flow_id:(-1) ~size:0 ~born:0.0 (Raw (-1))

let pp fmt t =
  Format.fprintf fmt "frame#%d flow=%d %dB %a hops=%d" t.uid t.flow_id t.size
    Mark.pp t.mark t.hops
