(** Flow-id based demultiplexer.

    The simulator routes by flow identifier: a router maps each flow to a
    next-hop sink (typically [Link.send] of the egress link, or a
    terminal receive callback).  Unknown flows go to the default route if
    set, otherwise the frame is counted as unroutable and discarded. *)

type t

val create : ?name:string -> unit -> t

val add_route : t -> flow_id:int -> (Frame.t -> unit) -> unit

val set_default : t -> (Frame.t -> unit) -> unit

val forward : t -> Frame.t -> unit

val unroutable : t -> int
