(** RED (Random Early Detection) drop decision, Floyd & Jacobson 1993.

    This module is only the *estimator + decision*; buffering lives in
    {!Qdisc}.  The average queue length is an EWMA updated at each
    arrival, with the standard idle-period correction (the average decays
    as if [m] small packets had been transmitted during idle time).

    With [gentle] (Floyd 2000), the drop probability ramps from [max_p]
    at [max_th] to 1 at [2*max_th] instead of jumping to 1. *)

type params = {
  min_th : float;  (** packets *)
  max_th : float;  (** packets *)
  max_p : float;
  w_q : float;  (** EWMA weight, e.g. 0.002 *)
  gentle : bool;
  idle_pkt_time : float;  (** seconds to "transmit" one packet when
      correcting the average across idle periods *)
}

val default_params : params
(** min 5, max 15 pkts, max_p 0.1, w_q 0.002, gentle, 1500B @ 10 Mb/s. *)

type t

val create : params -> rng:Engine.Rng.t -> t

val avg : t -> float
(** Current average queue estimate (packets). *)

val decide : t -> now:float -> qlen:int -> [ `Accept | `Drop ]
(** Update the average with the instantaneous queue length [qlen]
    (packets, sampled at arrival, before enqueue) and decide the fate of
    the arriving packet. *)

val note_idle_start : t -> now:float -> unit
(** Tell the estimator the queue just went empty. *)

val drops : t -> int
(** Early (probabilistic) drops so far. *)
