type Frame.body += Corrupted of Frame.body

type profile = {
  p_reorder : float;
  reorder_max_hold : int;
  p_duplicate : float;
  p_corrupt : float;
}

let none =
  { p_reorder = 0.0; reorder_max_hold = 0; p_duplicate = 0.0; p_corrupt = 0.0 }

let profile ?(p_reorder = 0.0) ?(reorder_max_hold = 3) ?(p_duplicate = 0.0)
    ?(p_corrupt = 0.0) () =
  assert (p_reorder >= 0.0 && p_reorder <= 1.0);
  assert (p_duplicate >= 0.0 && p_duplicate <= 1.0);
  assert (p_corrupt >= 0.0 && p_corrupt <= 1.0);
  assert (reorder_max_hold >= 0);
  { p_reorder; reorder_max_hold; p_duplicate; p_corrupt }

let is_active p =
  p.p_reorder > 0.0 || p.p_duplicate > 0.0 || p.p_corrupt > 0.0

let pp_profile fmt p =
  Format.fprintf fmt "reorder=%.3f(max %d) dup=%.3f corrupt=%.3f" p.p_reorder
    p.reorder_max_hold p.p_duplicate p.p_corrupt

type stats = {
  mutable passed : int;
  mutable reordered : int;
  mutable duplicated : int;
  mutable corrupted : int;
}

type held = { frame : Frame.t; mutable remaining : int }

type t = {
  sim : Engine.Sim.t;
  rng : Engine.Rng.t;
  prof : profile;
  flush_after : float;
  mutable held : held list;  (* oldest first *)
  mutable emit : (Frame.t -> unit) option;
  mutable flush_timer : Engine.Timer.t option;
  mutable on_duplicate : (orig:Frame.t -> dup:Frame.t -> unit) option;
  mutable on_corrupt : (Frame.t -> unit) option;
  st : stats;
}

let create ~sim ~rng ?(flush_after = 0.25) prof =
  assert (flush_after > 0.0);
  {
    sim;
    rng;
    prof;
    flush_after;
    held = [];
    emit = None;
    flush_timer = None;
    on_duplicate = None;
    on_corrupt = None;
    st = { passed = 0; reordered = 0; duplicated = 0; corrupted = 0 };
  }

let on_duplicate t f = t.on_duplicate <- Some f

let on_corrupt t f = t.on_corrupt <- Some f

let emit_now t frame =
  match t.emit with
  | Some sink -> sink frame
  | None -> failwith "Mangler: frame released before any push set a sink"

let flush t =
  let ready = t.held in
  t.held <- [];
  List.iter (fun h -> emit_now t h.frame) ready;
  match t.flush_timer with Some tm -> Engine.Timer.stop tm | None -> ()

(* Every emission — pass-through, duplicate, corrupted or another held
   frame's release — counts as one overtake against every held frame, so
   a frame held with budget [k] is overtaken by exactly [k] frames
   (fewer if the idle flush fires first).  Releases recurse because a
   release is itself an emission. *)
let rec emit_and_account t frame =
  emit_now t frame;
  List.iter (fun h -> h.remaining <- h.remaining - 1) t.held;
  release_first_ready t

(* Release exactly one ready frame — the earliest-held one — per step:
   releasing several at once would let a cascade emit a late arrival
   ahead of an already-ready earlier one, breaching its budget. *)
and release_first_ready t =
  let rec split acc = function
    | [] -> None
    | h :: rest when h.remaining <= 0 -> Some (List.rev_append acc rest, h)
    | h :: rest -> split (h :: acc) rest
  in
  match split [] t.held with
  | None -> ()
  | Some (held', h) ->
      t.held <- held';
      emit_and_account t h.frame

let arm_flush t =
  if t.held <> [] then begin
    let timer =
      match t.flush_timer with
      | Some tm -> tm
      | None ->
          let tm = Engine.Timer.create t.sim ~on_expire:(fun () -> flush t) in
          t.flush_timer <- Some tm;
          tm
    in
    Engine.Timer.start timer ~after:t.flush_after
  end

let push t ~emit frame =
  t.emit <- Some emit;
  let p = t.prof in
  if Engine.Rng.chance t.rng p.p_corrupt then begin
    (* The payload is damaged beyond recognition: the frame still burns
       wire time and buffer space but no receiver will parse it. *)
    t.st.corrupted <- t.st.corrupted + 1;
    (match t.on_corrupt with Some f -> f frame | None -> ());
    emit_and_account t { frame with Frame.body = Corrupted frame.Frame.body }
  end
  else if Engine.Rng.chance t.rng p.p_duplicate then begin
    t.st.duplicated <- t.st.duplicated + 1;
    let dup = Frame.copy frame in
    (match t.on_duplicate with
    | Some f -> f ~orig:frame ~dup
    | None -> ());
    emit_and_account t frame;
    emit_and_account t dup
  end
  else if
    p.reorder_max_hold > 0 && Engine.Rng.chance t.rng p.p_reorder
  then begin
    t.st.reordered <- t.st.reordered + 1;
    let k = 1 + Engine.Rng.int t.rng p.reorder_max_hold in
    t.held <- t.held @ [ { frame; remaining = k } ]
  end
  else begin
    t.st.passed <- t.st.passed + 1;
    emit_and_account t frame
  end;
  arm_flush t

let held_frames t = List.length t.held

let stats t = t.st
