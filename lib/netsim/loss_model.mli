(** Per-link non-congestion loss models.

    These model wireless-style losses independent of queue state — the
    phenomenon that makes TCP collapse on wireless/multi-hop paths (§2 of
    the paper) while rate-based congestion control holds up.

    - [bernoulli p] drops each packet independently with probability [p].
    - [gilbert_elliott] is the classic two-state burst-loss chain: the
      channel alternates between a Good and a Bad state with per-packet
      transition probabilities, and drops with a state-dependent
      probability.  Expected stationary loss rate is
      [pi_b * loss_bad + pi_g * loss_good] with
      [pi_b = p_gb / (p_gb + p_bg)]. *)

type t

val none : t

val bernoulli : p:float -> rng:Engine.Rng.t -> t

val gilbert_elliott :
  p_good_to_bad:float ->
  p_bad_to_good:float ->
  loss_good:float ->
  loss_bad:float ->
  rng:Engine.Rng.t ->
  t

val custom : expected:float -> (unit -> bool) -> t
(** Arbitrary per-packet loss oracle (e.g. a time-varying regime built
    from other models); [expected] is whatever stationary rate the
    caller wants reported by {!expected_loss_rate}. *)

val drops : t -> bool
(** Roll the model for one packet; [true] means the packet is lost.
    Advances the channel state. *)

val expected_loss_rate : t -> float
(** Stationary loss probability of the model. *)

val pp : Format.formatter -> t -> unit
