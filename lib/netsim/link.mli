(** A unidirectional link: serialisation at a fixed bit rate, a buffer
    ({!Qdisc}), a propagation delay, and an optional non-congestion
    {!Loss_model} applied as frames leave the transmitter.

    The link is work-conserving: a frame arriving at an idle transmitter
    starts serialising immediately; otherwise it is offered to the
    qdisc.  Propagation overlaps with the next transmission. *)

type stats = {
  mutable tx_frames : int;  (** frames fully serialised *)
  mutable tx_bytes : int;
  mutable lost_frames : int;  (** dropped by the loss model *)
  mutable delivered : int;  (** frames handed to the sink *)
}

type t

val create :
  sim:Engine.Sim.t ->
  rate_bps:float ->
  delay:float ->
  qdisc:Qdisc.t ->
  ?loss:Loss_model.t ->
  ?mangler:Mangler.t ->
  ?name:string ->
  unit ->
  t
(** [mangler], when given, is applied after propagation and before the
    sink: frames may be reordered, duplicated or corrupted there. *)

val connect : t -> (Frame.t -> unit) -> unit
(** Set the receiver-side sink. Must be called before traffic flows. *)

val on_drop : t -> (Frame.t -> unit) -> unit
(** Observe every frame this link drops — by the loss model after
    serialisation, or by the qdisc refusing to enqueue.  Used by the
    invariant checker's packet-conservation accounting. *)

val send : t -> Frame.t -> unit
(** Offer a frame at the transmitter. *)

val sever : t -> unit
(** Sever the link ([`Cut]-mode handover): queued frames are dropped
    immediately and every frame still serialising or in propagation is
    dropped when its timer fires — all through the {!on_drop} hook with
    reason [D_cut], so conservation accounting stays exact.  Idempotent. *)

val restore : t -> unit
(** Undo {!sever}: subsequent traffic flows normally.  Frames dropped
    while severed stay dropped. *)

val severed : t -> bool

val stats : t -> stats
val qdisc : t -> Qdisc.t

val mangler : t -> Mangler.t option
(** The fault-injection stage installed at creation, if any — exposed so
    an observer (e.g. the fuzz harness's checker) can register its
    {!Mangler.on_duplicate}/{!Mangler.on_corrupt} hooks. *)

val name : t -> string
val rate_bps : t -> float
val delay : t -> float

val utilisation : t -> over:float -> float
(** Fraction of [over] seconds the link spent serialising, computed from
    bytes sent: [tx_bytes * 8 / (rate * over)]. *)
