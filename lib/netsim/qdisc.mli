(** Queueing disciplines for link buffers.

    Three disciplines cover the paper's scenarios:
    - [droptail]: bounded FIFO, tail drop.
    - [red]: FIFO with RED early-drop at enqueue.
    - [rio]: the DiffServ/AF two-profile queue (RED with In and Out) —
      in-profile (Green) packets see a RED estimator over green-only
      occupancy with lenient thresholds; out-of-profile (Red) and
      best-effort packets see an estimator over *total* occupancy with
      aggressive thresholds.  This is what gives an AF class its
      bandwidth assurance. *)

type stats = {
  mutable offered : int;
  mutable accepted : int;
  mutable dropped : int;
  mutable dropped_green : int;
  mutable dropped_nongreen : int;
  mutable dequeued : int;
  mutable ce_marked : int;  (** accepted with Congestion Experienced set *)
}

type t

val droptail : capacity_pkts:int -> t

val red :
  ?capacity_pkts:int -> ?ecn:bool -> params:Red.params -> rng:Engine.Rng.t ->
  unit -> t
(** RED early drop plus a hard tail-drop at [capacity_pkts]
    (default 2.5x max_th).  With [ecn] (RFC 3168), an early "drop"
    decision on an ECN-capable ([Frame.ect]) frame marks it CE and
    enqueues it instead; non-ECT frames and hard-limit overflows still
    drop. *)

val rio :
  ?capacity_pkts:int ->
  ?ecn:bool ->
  in_params:Red.params ->
  out_params:Red.params ->
  rng:Engine.Rng.t ->
  unit ->
  t

val name : t -> string

val enqueue : t -> now:float -> Frame.t -> bool
(** [false] = the frame was dropped (tail or early). *)

val dequeue : t -> now:float -> Frame.t option

val length_pkts : t -> int
val length_bytes : t -> int
val stats : t -> stats
