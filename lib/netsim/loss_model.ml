type ge_state = Good | Bad

type kind =
  | None_
  | Custom of { expected : float; oracle : unit -> bool }
  | Bernoulli of { p : float; rng : Engine.Rng.t }
  | Gilbert of {
      p_gb : float;
      p_bg : float;
      loss_good : float;
      loss_bad : float;
      rng : Engine.Rng.t;
      mutable state : ge_state;
    }

type t = kind

let none = None_

let bernoulli ~p ~rng =
  assert (p >= 0.0 && p <= 1.0);
  Bernoulli { p; rng }

let gilbert_elliott ~p_good_to_bad ~p_bad_to_good ~loss_good ~loss_bad ~rng =
  assert (p_good_to_bad >= 0.0 && p_good_to_bad <= 1.0);
  assert (p_bad_to_good > 0.0 && p_bad_to_good <= 1.0);
  Gilbert
    {
      p_gb = p_good_to_bad;
      p_bg = p_bad_to_good;
      loss_good;
      loss_bad;
      rng;
      state = Good;
    }

let custom ~expected oracle = Custom { expected; oracle }

let drops = function
  | None_ -> false
  | Custom { oracle; _ } -> oracle ()
  | Bernoulli { p; rng } -> Engine.Rng.chance rng p
  | Gilbert g ->
      (* Advance the chain, then roll the state-dependent loss. *)
      (match g.state with
      | Good -> if Engine.Rng.chance g.rng g.p_gb then g.state <- Bad
      | Bad -> if Engine.Rng.chance g.rng g.p_bg then g.state <- Good);
      let p = match g.state with Good -> g.loss_good | Bad -> g.loss_bad in
      Engine.Rng.chance g.rng p

let expected_loss_rate = function
  | None_ -> 0.0
  | Custom { expected; _ } -> expected
  | Bernoulli { p; _ } -> p
  | Gilbert g ->
      let pi_b = g.p_gb /. (g.p_gb +. g.p_bg) in
      (pi_b *. g.loss_bad) +. ((1.0 -. pi_b) *. g.loss_good)

let pp fmt = function
  | None_ -> Format.pp_print_string fmt "lossless"
  | Custom { expected; _ } -> Format.fprintf fmt "custom(~%.4f)" expected
  | Bernoulli { p; _ } -> Format.fprintf fmt "bernoulli(%.4f)" p
  | Gilbert g ->
      Format.fprintf fmt "gilbert(gb=%.3f,bg=%.3f,lg=%.3f,lb=%.3f)" g.p_gb
        g.p_bg g.loss_good g.loss_bad
