(** Periodic sampling of queue state.

    Polls a {!Qdisc} occupancy every [interval] of virtual time and
    keeps the samples; experiments use it to compare queue dynamics
    (mean, variance, percentiles) under different congestion
    controllers. *)

type t

val start :
  sim:Engine.Sim.t -> qdisc:Qdisc.t -> ?interval:float -> ?until:float ->
  unit -> t
(** [interval] defaults to 10 ms; sampling stops at [until] (default:
    runs as long as the simulation does). *)

val samples_pkts : t -> float array
(** Occupancy (packets) per sample, in time order. *)

val times : t -> float array

val mean_pkts : t -> float

val summary : t -> Stats.Summary.t
