(** Token bucket meter.

    Tokens (bytes) accrue at [rate_bps / 8] bytes per second up to
    [burst] bytes.  [conform] lazily refills from the elapsed virtual
    time, so the bucket needs no timers of its own. *)

type t

val create : rate_bps:float -> burst:int -> now:float -> t
(** Starts full. [rate_bps] is the committed information rate in
    bits/s; [burst] the bucket depth in bytes. *)

val conform : t -> now:float -> bytes:int -> bool
(** [true] iff [bytes] tokens were available (they are then consumed).
    A non-conforming packet consumes nothing. *)

val level : t -> now:float -> float
(** Current token level in bytes (after refill). *)

val rate_bps : t -> float
