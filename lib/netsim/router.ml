type t = {
  name : string;
  routes : (int, Frame.t -> unit) Hashtbl.t;
  mutable default : (Frame.t -> unit) option;
  mutable unroutable : int;
}

let create ?(name = "router") () =
  { name; routes = Hashtbl.create 16; default = None; unroutable = 0 }

let add_route t ~flow_id sink = Hashtbl.replace t.routes flow_id sink

let set_default t sink = t.default <- Some sink

let forward t frame =
  match Hashtbl.find_opt t.routes frame.Frame.flow_id with
  | Some sink -> sink frame
  | None -> (
      match t.default with
      | Some sink -> sink frame
      | None ->
          t.unroutable <- t.unroutable + 1;
          Logs.debug (fun m ->
              m "%s: no route for flow %d" t.name frame.Frame.flow_id))

let unroutable t = t.unroutable
