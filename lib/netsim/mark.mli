(** DiffServ drop-precedence colour of a packet.

    The EuQoS Non-Real-Time class the paper targets is a two-colour
    DiffServ/AF service: traffic within the negotiated profile is marked
    in-profile ([Green], low drop precedence) by the edge, excess traffic
    is out-of-profile ([Red], high drop precedence).  Best-effort traffic
    never crosses a marker. *)

type t = Green | Red | Best_effort

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
