(** Seeded in-network fault injection: reordering, duplication and
    corruption of frames.

    A mangler sits between a link's propagation stage and its sink
    (see {!Link.create}'s [mangler] argument).  Each frame entering is
    subjected to at most one fault, drawn deterministically from the
    mangler's own RNG stream:

    - {b corrupt}: the body is wrapped in {!Corrupted}, so no transport
      will parse it — the frame still occupies wire time and buffers
      downstream, modelling a checksum failure at the receiver;
    - {b duplicate}: a byte-identical copy with a fresh
      {!Frame.fresh_uid} follows the original immediately;
    - {b reorder}: the frame is held back until [1 + random(max_hold)]
      later frames have overtaken it (or a quiet-period flush timer
      fires, so a held frame can never be stranded when traffic stops).

    Every frame pushed in emerges exactly once (duplicates add extra
    emissions with their own uids), in an order that is a pure function
    of the RNG seed and the arrival sequence. *)

type Frame.body += Corrupted of Frame.body
      (** A damaged frame: the original body is retained for debugging
          but no receiver should recognise it. *)

type profile = {
  p_reorder : float;  (** probability a frame is held back *)
  reorder_max_hold : int;
      (** max frames that may overtake a held one (bounded reorder
          distance) *)
  p_duplicate : float;
  p_corrupt : float;
}

val none : profile
(** All probabilities zero — a transparent mangler. *)

val profile :
  ?p_reorder:float ->
  ?reorder_max_hold:int ->
  ?p_duplicate:float ->
  ?p_corrupt:float ->
  unit ->
  profile
(** Defaults: no faults, [reorder_max_hold = 3]. *)

val is_active : profile -> bool
(** At least one fault probability is positive. *)

val pp_profile : Format.formatter -> profile -> unit

type stats = {
  mutable passed : int;  (** emitted untouched, immediately *)
  mutable reordered : int;
  mutable duplicated : int;
  mutable corrupted : int;
}

type t

val create :
  sim:Engine.Sim.t -> rng:Engine.Rng.t -> ?flush_after:float -> profile -> t
(** [flush_after] (default 0.25 s) bounds how long a held frame may wait
    when no later traffic overtakes it. *)

val on_duplicate : t -> (orig:Frame.t -> dup:Frame.t -> unit) -> unit
(** Observe every duplication, before either copy is emitted — the
    invariant checker uses this to register the duplicate's fresh uid as
    injected. *)

val on_corrupt : t -> (Frame.t -> unit) -> unit
(** Observe every corruption (called with the original frame, before the
    wrapped one is emitted). *)

val push : t -> emit:(Frame.t -> unit) -> Frame.t -> unit
(** Feed one frame through; [emit] receives every frame the mangler
    releases (possibly several, possibly none right now). *)

val flush : t -> unit
(** Release all held frames immediately, in hold order. *)

val held_frames : t -> int

val stats : t -> stats
