type t = Green | Red | Best_effort

let equal a b =
  match (a, b) with
  | Green, Green | Red, Red | Best_effort, Best_effort -> true
  | (Green | Red | Best_effort), _ -> false

let to_string = function
  | Green -> "green"
  | Red -> "red"
  | Best_effort -> "be"

let pp fmt t = Format.pp_print_string fmt (to_string t)
