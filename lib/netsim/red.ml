type params = {
  min_th : float;
  max_th : float;
  max_p : float;
  w_q : float;
  gentle : bool;
  idle_pkt_time : float;
}

let default_params =
  {
    min_th = 5.0;
    max_th = 15.0;
    max_p = 0.1;
    w_q = 0.002;
    gentle = true;
    idle_pkt_time = 1500.0 *. 8.0 /. 10_000_000.0;
  }

(* The estimator state is an all-float record so it stays flat in the
   heap: [avg] is rewritten on every packet arrival (twice per arrival
   under RIO), and a mixed record would box a float each time.  The
   idle mark uses NaN as "not idle" instead of an option for the same
   reason. *)
type state = {
  mutable avg : float;
  mutable idle_since : float;  (* NaN = not idle *)
}

type t = {
  params : params;
  rng : Engine.Rng.t;
  st : state;
  mutable count : int;  (* packets since last early drop *)
  mutable early_drops : int;
}

let create params ~rng =
  {
    params;
    rng;
    st = { avg = 0.0; idle_since = Float.nan };
    count = -1;
    early_drops = 0;
  }

let avg t = t.st.avg

let note_idle_start t ~now = t.st.idle_since <- now

let drops t = t.early_drops

let[@vtp.hot] update_avg t ~now ~qlen =
  let p = t.params in
  let since = t.st.idle_since in
  if (not (Float.is_nan since)) && qlen = 0 then begin
    (* Decay the average as if m packets had drained while idle. *)
    let m = Float.max 0.0 ((now -. since) /. p.idle_pkt_time) in
    t.st.avg <- t.st.avg *. ((1.0 -. p.w_q) ** m)
  end;
  if qlen > 0 then t.st.idle_since <- Float.nan;
  t.st.avg <- ((1.0 -. p.w_q) *. t.st.avg) +. (p.w_q *. float_of_int qlen)

let[@vtp.hot] decide t ~now ~qlen =
  let p = t.params in
  update_avg t ~now ~qlen;
  let avg = t.st.avg in
  let hard_limit = if p.gentle then 2.0 *. p.max_th else p.max_th in
  if avg < p.min_th then begin
    t.count <- -1;
    `Accept
  end
  else if avg >= hard_limit then begin
    t.count <- 0;
    t.early_drops <- t.early_drops + 1;
    `Drop
  end
  else begin
    t.count <- t.count + 1;
    let p_b =
      if avg < p.max_th then
        p.max_p *. (avg -. p.min_th) /. (p.max_th -. p.min_th)
      else
        (* gentle region: max_p .. 1 over [max_th, 2*max_th) *)
        p.max_p +. ((1.0 -. p.max_p) *. (avg -. p.max_th) /. p.max_th)
    in
    let denom = 1.0 -. (float_of_int t.count *. p_b) in
    let p_a = if denom <= 0.0 then 1.0 else Float.min 1.0 (p_b /. denom) in
    if Engine.Rng.chance t.rng p_a then begin
      t.count <- 0;
      t.early_drops <- t.early_drops + 1;
      `Drop
    end
    else `Accept
  end
