(** Packet-event tracing.

    A tracer collects timestamped per-frame events from any point in the
    simulated network (its [tap] wraps an arbitrary frame sink).  The
    buffer is bounded: the newest [capacity] events are kept.  Intended
    for debugging topologies and for test assertions on event order —
    the hot path stays closure-cheap. *)

type event = {
  at : float;
  point : string;  (** where the tap sits, e.g. "bottleneck-in" *)
  uid : int;
  flow_id : int;
  size : int;
  mark : Mark.t;
}

type t

val create : sim:Engine.Sim.t -> ?capacity:int -> unit -> t
(** [capacity] defaults to 10_000 events. *)

val tap : t -> string -> (Frame.t -> unit) -> Frame.t -> unit
(** [tap tracer point sink] is a sink that records then forwards. *)

val events : t -> event list
(** Oldest first, at most [capacity]. *)

val count : t -> int
(** Total events observed (including evicted ones). *)

val count_at : t -> string -> int
(** Events currently buffered for one tap point. *)

val dump : t -> Format.formatter -> unit
(** Human-readable text trace. *)

val clear : t -> unit
