(** DiffServ edge marker.

    A per-flow token bucket with the flow's negotiated committed rate
    (the AF "target rate" [g]).  Conforming packets are coloured
    {!Mark.Green} (in-profile), the excess {!Mark.Red} (out-of-profile).
    This is a two-colour srTCM-style marker, the conditioning the EuQoS
    NRT class applies at the ingress. *)

type t

val create : sim:Engine.Sim.t -> committed_rate_bps:float -> burst:int -> t

val mark : t -> Frame.t -> unit
(** Colour the frame in place according to current conformance. *)

val wrap : t -> (Frame.t -> unit) -> Frame.t -> unit
(** [wrap m sink] is a sink that marks then forwards. *)

val committed_rate_bps : t -> float

val green_count : t -> int
val red_count : t -> int
