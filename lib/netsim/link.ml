type stats = {
  mutable tx_frames : int;
  mutable tx_bytes : int;
  mutable lost_frames : int;
  mutable delivered : int;
}

type t = {
  sim : Engine.Sim.t;
  rate_bps : float;
  delay : float;
  qdisc : Qdisc.t;
  loss : Loss_model.t;
  mangler : Mangler.t option;
  name : string;
  mutable sink : (Frame.t -> unit) option;
  mutable on_drop : (Frame.t -> unit) option;
  mutable severed : bool;  (** [`Cut] handover: discard all traffic *)
  mutable busy : bool;
  mutable tx_frame : Frame.t;  (** frame being serialized while [busy] *)
  flight : Frame.t Engine.Ring.t;  (** launched frames in propagation *)
  mutable tx_done : unit -> unit;  (** reused serialization-done thunk *)
  mutable arrival : unit -> unit;  (** reused propagation-done thunk *)
  st : stats;
}

let connect t sink = t.sink <- Some sink

let on_drop t f = t.on_drop <- Some f

let dropped t ~reason frame =
  if Trace.Recorder.on () then
    Trace.Recorder.emit ~flow:frame.Frame.flow_id
      ~at:(Engine.Sim.now t.sim)
      (Trace.Event.Drop { link = t.name; reason; size = frame.Frame.size });
  match t.on_drop with Some f -> f frame | None -> ()

let deliver t frame =
  match t.sink with
  | None -> failwith (t.name ^ ": link has no sink")
  | Some sink ->
      frame.Frame.hops <- frame.Frame.hops + 1;
      t.st.delivered <- t.st.delivered + 1;
      sink frame

(* Propagation complete: frames launched onto the wire arrive in FIFO
   order (the delay is constant), so the arrival thunk just pops the
   flight ring.  The mangler stage, when present, sits between the wire
   and the sink (it may hold, clone or damage the frame). *)
let arrive t =
  let frame = Engine.Ring.pop t.flight in
  if t.severed then dropped t ~reason:Trace.Event.D_cut frame
  else
    match t.mangler with
    | Some m -> Mangler.push m ~emit:(fun f -> deliver t f) frame
    | None -> deliver t frame

(* Serialization and propagation reuse one preallocated thunk each
   ([tx_done] / [arrival]); the frame travels via [tx_frame] and the
   flight ring, so a forwarded frame costs zero closure allocations. *)
let rec transmit t frame =
  t.busy <- true;
  t.tx_frame <- frame;
  let tx_time = 8.0 *. float_of_int frame.Frame.size /. t.rate_bps in
  Engine.Sim.post_after t.sim tx_time t.tx_done

and complete t =
  let frame = t.tx_frame in
  t.tx_frame <- Frame.dummy;
  t.st.tx_frames <- t.st.tx_frames + 1;
  t.st.tx_bytes <- t.st.tx_bytes + frame.Frame.size;
  if t.severed then dropped t ~reason:Trace.Event.D_cut frame
  else if Loss_model.drops t.loss then begin
    t.st.lost_frames <- t.st.lost_frames + 1;
    dropped t ~reason:Trace.Event.D_loss frame
  end
  else begin
    Engine.Ring.push t.flight frame;
    Engine.Sim.post_after t.sim t.delay t.arrival
  end;
  match Qdisc.dequeue t.qdisc ~now:(Engine.Sim.now t.sim) with
  | Some next -> transmit t next
  | None -> t.busy <- false

let create ~sim ~rate_bps ~delay ~qdisc ?(loss = Loss_model.none) ?mangler
    ?(name = "link") () =
  assert (rate_bps > 0.0 && delay >= 0.0);
  let t =
    {
      sim;
      rate_bps;
      delay;
      qdisc;
      loss;
      mangler;
      name;
      sink = None;
      on_drop = None;
      severed = false;
      busy = false;
      tx_frame = Frame.dummy;
      flight = Engine.Ring.create ~dummy:Frame.dummy;
      tx_done = Engine.Event.noop;
      arrival = Engine.Event.noop;
      st = { tx_frames = 0; tx_bytes = 0; lost_frames = 0; delivered = 0 };
    }
  in
  t.tx_done <- (fun () -> complete t);
  t.arrival <- (fun () -> arrive t);
  t

let send t frame =
  if t.severed then dropped t ~reason:Trace.Event.D_cut frame
  else if t.busy then begin
    if not (Qdisc.enqueue t.qdisc ~now:(Engine.Sim.now t.sim) frame) then
      dropped t ~reason:Trace.Event.D_queue frame
  end
  else begin
    (* Still count the packet at the qdisc so drop statistics and RED
       averages see the full arrival process. *)
    if Qdisc.enqueue t.qdisc ~now:(Engine.Sim.now t.sim) frame then
      match Qdisc.dequeue t.qdisc ~now:(Engine.Sim.now t.sim) with
      | Some f -> transmit t f
      | None ->
          failwith (t.name ^ ": qdisc accepted a frame but dequeued none")
  end

(* Severing keeps event timing intact — the busy transmitter and the
   frames already in propagation still fire their timers, but every
   frame is routed through [dropped] (reason [D_cut]) instead of the
   sink, so the invariant checker's conservation accounting stays
   exact.  Queued frames are discarded right away. *)
let sever t =
  if not t.severed then begin
    t.severed <- true;
    let rec drain () =
      match Qdisc.dequeue t.qdisc ~now:(Engine.Sim.now t.sim) with
      | Some frame ->
          dropped t ~reason:Trace.Event.D_cut frame;
          drain ()
      | None -> ()
    in
    drain ()
  end

let restore t = t.severed <- false
let severed t = t.severed

let stats t = t.st
let qdisc t = t.qdisc
let mangler t = t.mangler
let name t = t.name
let rate_bps t = t.rate_bps
let delay t = t.delay

let utilisation t ~over =
  if over <= 0.0 then 0.0
  else 8.0 *. float_of_int t.st.tx_bytes /. (t.rate_bps *. over)
