type stats = {
  mutable offered : int;
  mutable accepted : int;
  mutable dropped : int;
  mutable dropped_green : int;
  mutable dropped_nongreen : int;
  mutable dequeued : int;
  mutable ce_marked : int;
}

let fresh_stats () =
  {
    offered = 0;
    accepted = 0;
    dropped = 0;
    dropped_green = 0;
    dropped_nongreen = 0;
    dequeued = 0;
    ce_marked = 0;
  }

type discipline =
  | Droptail of { capacity : int }
  | Red_q of { capacity : int; ecn : bool; red : Red.t }
  | Rio of {
      capacity : int;
      ecn : bool;
      red_in : Red.t;
      red_out : Red.t;
      mutable green_pkts : int;
    }

type t = {
  name : string;
  disc : discipline;
  fifo : Frame.t Engine.Ring.t;
  mutable bytes : int;
  st : stats;
}

let droptail ~capacity_pkts =
  assert (capacity_pkts > 0);
  {
    name = "droptail";
    disc = Droptail { capacity = capacity_pkts };
    fifo = Engine.Ring.create ~dummy:Frame.dummy;
    bytes = 0;
    st = fresh_stats ();
  }

let red ?capacity_pkts ?(ecn = false) ~params ~rng () =
  let capacity =
    match capacity_pkts with
    | Some c -> c
    | None -> int_of_float (2.5 *. params.Red.max_th)
  in
  {
    name = "red";
    disc = Red_q { capacity; ecn; red = Red.create params ~rng };
    fifo = Engine.Ring.create ~dummy:Frame.dummy;
    bytes = 0;
    st = fresh_stats ();
  }

let rio ?capacity_pkts ?(ecn = false) ~in_params ~out_params ~rng () =
  let capacity =
    match capacity_pkts with
    | Some c -> c
    | None -> int_of_float (2.5 *. in_params.Red.max_th)
  in
  {
    name = "rio";
    disc =
      Rio
        {
          capacity;
          ecn;
          red_in = Red.create in_params ~rng;
          red_out = Red.create out_params ~rng:(Engine.Rng.split rng);
          green_pkts = 0;
        };
    fifo = Engine.Ring.create ~dummy:Frame.dummy;
    bytes = 0;
    st = fresh_stats ();
  }

let name t = t.name

let length_pkts t = Engine.Ring.length t.fifo

let length_bytes t = t.bytes

let stats t = t.st

let record_drop t (frame : Frame.t) =
  t.st.dropped <- t.st.dropped + 1;
  match frame.mark with
  | Mark.Green -> t.st.dropped_green <- t.st.dropped_green + 1
  | Mark.Red | Mark.Best_effort ->
      t.st.dropped_nongreen <- t.st.dropped_nongreen + 1

let accept t frame =
  Engine.Ring.push t.fifo frame;
  t.bytes <- t.bytes + frame.Frame.size;
  t.st.accepted <- t.st.accepted + 1;
  (match t.disc with
  | Rio r when Mark.equal frame.Frame.mark Mark.Green ->
      r.green_pkts <- r.green_pkts + 1
  | Rio _ | Droptail _ | Red_q _ -> ());
  true

(* An early congestion signal: mark-and-accept when both the queue and
   the frame are ECN-capable, drop otherwise (RFC 3168 semantics). *)
let congest t ~ecn frame =
  if ecn && frame.Frame.ect then begin
    frame.Frame.ce <- true;
    t.st.ce_marked <- t.st.ce_marked + 1;
    accept t frame
  end
  else begin
    record_drop t frame;
    false
  end

let enqueue t ~now frame =
  t.st.offered <- t.st.offered + 1;
  let qlen = Engine.Ring.length t.fifo in
  match t.disc with
  | Droptail { capacity } ->
      if qlen >= capacity then begin
        record_drop t frame;
        false
      end
      else accept t frame
  | Red_q { capacity; ecn; red } ->
      if qlen >= capacity then begin
        record_drop t frame;
        false
      end
      else begin
        match Red.decide red ~now ~qlen with
        | `Drop -> congest t ~ecn frame
        | `Accept -> accept t frame
      end
  | Rio r ->
      if qlen >= r.capacity then begin
        record_drop t frame;
        false
      end
      else begin
        (* Green packets are judged against green occupancy only; the
           rest against total occupancy.  Both estimators are advanced on
           every arrival so their averages track the shared buffer. *)
        let verdict =
          match frame.Frame.mark with
          | Mark.Green ->
              ignore (Red.decide r.red_out ~now ~qlen);
              Red.decide r.red_in ~now ~qlen:r.green_pkts
          | Mark.Red | Mark.Best_effort ->
              ignore (Red.decide r.red_in ~now ~qlen:r.green_pkts);
              Red.decide r.red_out ~now ~qlen
        in
        match verdict with
        | `Drop -> congest t ~ecn:r.ecn frame
        | `Accept -> accept t frame
      end

let dequeue t ~now =
  if Engine.Ring.is_empty t.fifo then None
  else begin
    let frame = Engine.Ring.pop t.fifo in
    t.bytes <- t.bytes - frame.Frame.size;
    t.st.dequeued <- t.st.dequeued + 1;
    (match t.disc with
    | Rio r when Mark.equal frame.Frame.mark Mark.Green ->
        r.green_pkts <- r.green_pkts - 1
    | Rio _ | Droptail _ | Red_q _ -> ());
    if Engine.Ring.is_empty t.fifo then begin
      match t.disc with
      | Red_q { red; _ } -> Red.note_idle_start red ~now
      | Rio r ->
          Red.note_idle_start r.red_in ~now;
          Red.note_idle_start r.red_out ~now
      | Droptail _ -> ()
    end;
    Some frame
  end
