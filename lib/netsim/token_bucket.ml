type t = {
  rate_bytes : float;
  burst : float;
  mutable tokens : float;
  mutable last : float;
}

let create ~rate_bps ~burst ~now =
  assert (rate_bps >= 0.0 && burst > 0);
  {
    rate_bytes = rate_bps /. 8.0;
    burst = float_of_int burst;
    tokens = float_of_int burst;
    last = now;
  }

let refill t ~now =
  if now > t.last then begin
    t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.last) *. t.rate_bytes));
    t.last <- now
  end

let conform t ~now ~bytes =
  refill t ~now;
  let need = float_of_int bytes in
  if t.tokens >= need then begin
    t.tokens <- t.tokens -. need;
    true
  end
  else false

let level t ~now =
  refill t ~now;
  t.tokens

let rate_bps t = t.rate_bytes *. 8.0
