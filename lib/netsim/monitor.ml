type t = {
  mutable samples : float list;  (* newest first *)
  mutable times : float list;
  mutable count : int;
}

let start ~sim ~qdisc ?(interval = 0.01) ?until () =
  assert (interval > 0.0);
  let t = { samples = []; times = []; count = 0 } in
  let active () =
    match until with Some u -> Engine.Sim.now sim < u | None -> true
  in
  let rec tick () =
    if active () then begin
      t.samples <- float_of_int (Qdisc.length_pkts qdisc) :: t.samples;
      t.times <- Engine.Sim.now sim :: t.times;
      t.count <- t.count + 1;
      ignore (Engine.Sim.schedule_after sim interval tick)
    end
  in
  ignore (Engine.Sim.schedule_after sim interval tick);
  t

let samples_pkts t = Array.of_list (List.rev t.samples)

let times t = Array.of_list (List.rev t.times)

let mean_pkts t =
  if t.count = 0 then nan
  else List.fold_left ( +. ) 0.0 t.samples /. float_of_int t.count

let summary t = Stats.Summary.of_array (samples_pkts t)
