type t = {
  samples : Stats.Fvec.t;  (* occupancy, insertion (= time) order *)
  times : Stats.Fvec.t;
  mutable count : int;
}

let start ~sim ~qdisc ?(interval = 0.01) ?until () =
  assert (interval > 0.0);
  let t = { samples = Stats.Fvec.create (); times = Stats.Fvec.create (); count = 0 } in
  let active () =
    match until with Some u -> Engine.Sim.now sim < u | None -> true
  in
  let rec tick () =
    if active () then begin
      Stats.Fvec.push t.samples (float_of_int (Qdisc.length_pkts qdisc));
      Stats.Fvec.push t.times (Engine.Sim.now sim);
      t.count <- t.count + 1;
      Engine.Sim.post_after sim interval tick
    end
  in
  Engine.Sim.post_after sim interval tick;
  t

let samples_pkts t = Stats.Fvec.to_array t.samples

let times t = Stats.Fvec.to_array t.times

let mean_pkts t =
  if t.count = 0 then nan
  else begin
    let acc = ref 0.0 in
    Stats.Fvec.iter (fun v -> acc := !acc +. v) t.samples;
    !acc /. float_of_int t.count
  end

let summary t = Stats.Summary.of_array (samples_pkts t)
