type spec = {
  rate_bps : float;
  delay : float;
  qdisc : unit -> Qdisc.t;
  loss : unit -> Loss_model.t;
  mangle : unit -> Mangler.t option;
}

let no_mangler () = None

let spec ?(qdisc = fun () -> Qdisc.droptail ~capacity_pkts:100)
    ?(loss = fun () -> Loss_model.none) ?(mangle = no_mangler) ~rate_bps
    ~delay () =
  { rate_bps; delay; qdisc; loss; mangle }

type endpoint = {
  flow_id : int;
  to_receiver : Frame.t -> unit;
  to_sender : Frame.t -> unit;
  on_receiver_rx : (Frame.t -> unit) -> unit;
  on_sender_rx : (Frame.t -> unit) -> unit;
  marker : Marker.t option;
}

type t = {
  sim : Engine.Sim.t;
  bottleneck : Link.t;
  reverse : Link.t;
  endpoints : endpoint array;
  links : Link.t list;  (** every link in the topology, access links included *)
}

let link_of_spec ~sim ~name s =
  Link.create ~sim ~rate_bps:s.rate_bps ~delay:s.delay ~qdisc:(s.qdisc ())
    ~loss:(s.loss ()) ?mangler:(s.mangle ()) ~name ()

let default_reverse_of bottleneck =
  {
    rate_bps = bottleneck.rate_bps;
    delay = bottleneck.delay;
    qdisc = (fun () -> Qdisc.droptail ~capacity_pkts:2000);
    loss = (fun () -> Loss_model.none);
    mangle = no_mangler;
  }

let default_access_of bottleneck =
  {
    rate_bps = 10.0 *. bottleneck.rate_bps;
    delay = 0.001;
    qdisc = (fun () -> Qdisc.droptail ~capacity_pkts:2000);
    loss = (fun () -> Loss_model.none);
    mangle = no_mangler;
  }

let dumbbell ~sim ~n_flows ~bottleneck ?reverse ?access ?committed_rates () =
  assert (n_flows > 0);
  let reverse_spec =
    match reverse with Some r -> r | None -> default_reverse_of bottleneck
  in
  let access_spec =
    match access with Some a -> a | None -> default_access_of bottleneck
  in
  let bneck = link_of_spec ~sim ~name:"bottleneck" bottleneck in
  let rev = link_of_spec ~sim ~name:"reverse" reverse_spec in
  let fwd_router = Router.create ~name:"fwd-router" () in
  let rev_router = Router.create ~name:"rev-router" () in
  Link.connect bneck (Router.forward fwd_router);
  Link.connect rev (Router.forward rev_router);
  let make_endpoint i =
    let access =
      link_of_spec ~sim ~name:(Printf.sprintf "access-%d" i) access_spec
    in
    Link.connect access (Link.send bneck);
    let marker =
      match committed_rates with
      | Some rates when rates.(i) > 0.0 ->
          Some
            (Marker.create ~sim ~committed_rate_bps:rates.(i)
               ~burst:(4 * 1500))
      | Some _ | None -> None
    in
    let to_receiver frame =
      (match marker with Some m -> Marker.mark m frame | None -> ());
      Link.send access frame
    in
    ( {
        flow_id = i;
        to_receiver;
        to_sender = Link.send rev;
        on_receiver_rx =
          (fun sink -> Router.add_route fwd_router ~flow_id:i sink);
        on_sender_rx = (fun sink -> Router.add_route rev_router ~flow_id:i sink);
        marker;
      },
      access )
  in
  let pairs = Array.init n_flows make_endpoint in
  {
    sim;
    bottleneck = bneck;
    reverse = rev;
    endpoints = Array.map fst pairs;
    links = bneck :: rev :: Array.to_list (Array.map snd pairs);
  }

let duplex_path ~sim ~forward ?reverse () =
  let reverse_spec =
    match reverse with Some r -> r | None -> default_reverse_of forward
  in
  let fwd = link_of_spec ~sim ~name:"forward" forward in
  let rev = link_of_spec ~sim ~name:"reverse" reverse_spec in
  let fwd_router = Router.create ~name:"fwd-router" () in
  let rev_router = Router.create ~name:"rev-router" () in
  Link.connect fwd (Router.forward fwd_router);
  Link.connect rev (Router.forward rev_router);
  let ep =
    {
      flow_id = 0;
      to_receiver = Link.send fwd;
      to_sender = Link.send rev;
      on_receiver_rx =
        (fun sink -> Router.add_route fwd_router ~flow_id:0 sink);
      on_sender_rx = (fun sink -> Router.add_route rev_router ~flow_id:0 sink);
      marker = None;
    }
  in
  { sim; bottleneck = fwd; reverse = rev; endpoints = [| ep |]; links = [ fwd; rev ] }

let parking_lot ~sim ~hops ~paths ?reverse () =
  if hops = [] then invalid_arg "Topology.parking_lot: no hops";
  let n_hops = List.length hops in
  Array.iter
    (fun (a, b) ->
      if a < 0 || b > n_hops || a >= b then
        invalid_arg "Topology.parking_lot: bad hop range")
    paths;
  let first_hop = List.hd hops in
  let reverse_spec =
    match reverse with Some r -> r | None -> default_reverse_of first_hop
  in
  let links =
    List.mapi
      (fun i s -> link_of_spec ~sim ~name:(Printf.sprintf "hop-%d" i) s)
    hops
    |> Array.of_list
  in
  let rev = link_of_spec ~sim ~name:"reverse" reverse_spec in
  (* One router after each hop decides, per flow, whether the frame
     continues to the next hop or terminates here. *)
  let routers = Array.init n_hops (fun i -> Router.create ~name:(Printf.sprintf "router-%d" i) ()) in
  Array.iteri (fun i link -> Link.connect link (Router.forward routers.(i))) links;
  let rev_router = Router.create ~name:"rev-router" () in
  Link.connect rev (Router.forward rev_router);
  let bottleneck =
    Array.fold_left
      (fun best l -> if Link.rate_bps l < Link.rate_bps best then l else best)
      links.(0) links
  in
  let make_endpoint i (enter, exit_) =
    (* Forward the flow along hops enter .. exit_-1. *)
    for h = enter to exit_ - 2 do
      Router.add_route routers.(h) ~flow_id:i (Link.send links.(h + 1))
    done;
    {
      flow_id = i;
      to_receiver = Link.send links.(enter);
      to_sender = Link.send rev;
      on_receiver_rx =
        (fun sink -> Router.add_route routers.(exit_ - 1) ~flow_id:i sink);
      on_sender_rx = (fun sink -> Router.add_route rev_router ~flow_id:i sink);
      marker = None;
    }
  in
  {
    sim;
    bottleneck;
    reverse = rev;
    endpoints = Array.mapi make_endpoint paths;
    links = rev :: Array.to_list links;
  }

let chain ~sim ~n_flows ~hops ?reverse () =
  if hops = [] then invalid_arg "Topology.chain: no hops";
  let first_hop = List.hd hops in
  let reverse_spec =
    match reverse with Some r -> r | None -> default_reverse_of first_hop
  in
  let links =
    List.mapi
      (fun i s -> link_of_spec ~sim ~name:(Printf.sprintf "hop-%d" i) s)
      hops
  in
  let rev = link_of_spec ~sim ~name:"reverse" reverse_spec in
  let fwd_router = Router.create ~name:"fwd-router" () in
  let rev_router = Router.create ~name:"rev-router" () in
  (* Wire hop i into hop i+1; the last hop feeds the demux. *)
  let rec wire = function
    | [] -> ()
    | [ last ] -> Link.connect last (Router.forward fwd_router)
    | a :: (b :: _ as rest) ->
        Link.connect a (Link.send b);
        wire rest
  in
  wire links;
  Link.connect rev (Router.forward rev_router);
  let entry = List.hd links in
  let bottleneck =
    List.fold_left
      (fun best l -> if Link.rate_bps l < Link.rate_bps best then l else best)
      entry links
  in
  let make_endpoint i =
    {
      flow_id = i;
      to_receiver = Link.send entry;
      to_sender = Link.send rev;
      on_receiver_rx = (fun sink -> Router.add_route fwd_router ~flow_id:i sink);
      on_sender_rx = (fun sink -> Router.add_route rev_router ~flow_id:i sink);
      marker = None;
    }
  in
  {
    sim;
    bottleneck;
    reverse = rev;
    endpoints = Array.init n_flows make_endpoint;
    links = rev :: links;
  }

let endpoint t i = t.endpoints.(i)
