type spec = {
  rate_bps : float;
  delay : float;
  qdisc : unit -> Qdisc.t;
  loss : unit -> Loss_model.t;
  mangle : unit -> Mangler.t option;
}

let no_mangler () = None

let spec ?(qdisc = fun () -> Qdisc.droptail ~capacity_pkts:100)
    ?(loss = fun () -> Loss_model.none) ?(mangle = no_mangler) ~rate_bps
    ~delay () =
  { rate_bps; delay; qdisc; loss; mangle }

type endpoint = {
  flow_id : int;
  to_receiver : Frame.t -> unit;
  to_sender : Frame.t -> unit;
  on_receiver_rx : (Frame.t -> unit) -> unit;
  on_sender_rx : (Frame.t -> unit) -> unit;
  marker : Marker.t option;
}

type t = {
  sim : Engine.Sim.t;
  bottleneck : Link.t;
  reverse : Link.t;
  endpoints : endpoint array;
  links : Link.t list;  (** every link in the topology, access links included *)
}

let link_of_spec ~sim ~name s =
  Link.create ~sim ~rate_bps:s.rate_bps ~delay:s.delay ~qdisc:(s.qdisc ())
    ~loss:(s.loss ()) ?mangler:(s.mangle ()) ~name ()

let default_reverse_of bottleneck =
  {
    rate_bps = bottleneck.rate_bps;
    delay = bottleneck.delay;
    qdisc = (fun () -> Qdisc.droptail ~capacity_pkts:2000);
    loss = (fun () -> Loss_model.none);
    mangle = no_mangler;
  }

let default_access_of bottleneck =
  {
    rate_bps = 10.0 *. bottleneck.rate_bps;
    delay = 0.001;
    qdisc = (fun () -> Qdisc.droptail ~capacity_pkts:2000);
    loss = (fun () -> Loss_model.none);
    mangle = no_mangler;
  }

let dumbbell ~sim ~n_flows ~bottleneck ?reverse ?access ?committed_rates () =
  assert (n_flows > 0);
  let reverse_spec =
    match reverse with Some r -> r | None -> default_reverse_of bottleneck
  in
  let access_spec =
    match access with Some a -> a | None -> default_access_of bottleneck
  in
  let bneck = link_of_spec ~sim ~name:"bottleneck" bottleneck in
  let rev = link_of_spec ~sim ~name:"reverse" reverse_spec in
  let fwd_router = Router.create ~name:"fwd-router" () in
  let rev_router = Router.create ~name:"rev-router" () in
  Link.connect bneck (Router.forward fwd_router);
  Link.connect rev (Router.forward rev_router);
  let make_endpoint i =
    let access =
      link_of_spec ~sim ~name:(Printf.sprintf "access-%d" i) access_spec
    in
    Link.connect access (Link.send bneck);
    let marker =
      match committed_rates with
      | Some rates when rates.(i) > 0.0 ->
          Some
            (Marker.create ~sim ~committed_rate_bps:rates.(i)
               ~burst:(4 * 1500))
      | Some _ | None -> None
    in
    let to_receiver frame =
      (match marker with Some m -> Marker.mark m frame | None -> ());
      Link.send access frame
    in
    ( {
        flow_id = i;
        to_receiver;
        to_sender = Link.send rev;
        on_receiver_rx =
          (fun sink -> Router.add_route fwd_router ~flow_id:i sink);
        on_sender_rx = (fun sink -> Router.add_route rev_router ~flow_id:i sink);
        marker;
      },
      access )
  in
  let pairs = Array.init n_flows make_endpoint in
  {
    sim;
    bottleneck = bneck;
    reverse = rev;
    endpoints = Array.map fst pairs;
    links = bneck :: rev :: Array.to_list (Array.map snd pairs);
  }

let duplex_path ~sim ~forward ?reverse () =
  let reverse_spec =
    match reverse with Some r -> r | None -> default_reverse_of forward
  in
  let fwd = link_of_spec ~sim ~name:"forward" forward in
  let rev = link_of_spec ~sim ~name:"reverse" reverse_spec in
  let fwd_router = Router.create ~name:"fwd-router" () in
  let rev_router = Router.create ~name:"rev-router" () in
  Link.connect fwd (Router.forward fwd_router);
  Link.connect rev (Router.forward rev_router);
  let ep =
    {
      flow_id = 0;
      to_receiver = Link.send fwd;
      to_sender = Link.send rev;
      on_receiver_rx =
        (fun sink -> Router.add_route fwd_router ~flow_id:0 sink);
      on_sender_rx = (fun sink -> Router.add_route rev_router ~flow_id:0 sink);
      marker = None;
    }
  in
  { sim; bottleneck = fwd; reverse = rev; endpoints = [| ep |]; links = [ fwd; rev ] }

let parking_lot ~sim ~hops ~paths ?reverse () =
  if hops = [] then invalid_arg "Topology.parking_lot: no hops";
  let n_hops = List.length hops in
  Array.iter
    (fun (a, b) ->
      if a < 0 || b > n_hops || a >= b then
        invalid_arg "Topology.parking_lot: bad hop range")
    paths;
  let first_hop = List.hd hops in
  let reverse_spec =
    match reverse with Some r -> r | None -> default_reverse_of first_hop
  in
  let links =
    List.mapi
      (fun i s -> link_of_spec ~sim ~name:(Printf.sprintf "hop-%d" i) s)
    hops
    |> Array.of_list
  in
  let rev = link_of_spec ~sim ~name:"reverse" reverse_spec in
  (* One router after each hop decides, per flow, whether the frame
     continues to the next hop or terminates here. *)
  let routers = Array.init n_hops (fun i -> Router.create ~name:(Printf.sprintf "router-%d" i) ()) in
  Array.iteri (fun i link -> Link.connect link (Router.forward routers.(i))) links;
  let rev_router = Router.create ~name:"rev-router" () in
  Link.connect rev (Router.forward rev_router);
  let bottleneck =
    Array.fold_left
      (fun best l -> if Link.rate_bps l < Link.rate_bps best then l else best)
      links.(0) links
  in
  let make_endpoint i (enter, exit_) =
    (* Forward the flow along hops enter .. exit_-1. *)
    for h = enter to exit_ - 2 do
      Router.add_route routers.(h) ~flow_id:i (Link.send links.(h + 1))
    done;
    {
      flow_id = i;
      to_receiver = Link.send links.(enter);
      to_sender = Link.send rev;
      on_receiver_rx =
        (fun sink -> Router.add_route routers.(exit_ - 1) ~flow_id:i sink);
      on_sender_rx = (fun sink -> Router.add_route rev_router ~flow_id:i sink);
      marker = None;
    }
  in
  {
    sim;
    bottleneck;
    reverse = rev;
    endpoints = Array.mapi make_endpoint paths;
    links = rev :: Array.to_list links;
  }

let chain ~sim ~n_flows ~hops ?reverse () =
  if hops = [] then invalid_arg "Topology.chain: no hops";
  let first_hop = List.hd hops in
  let reverse_spec =
    match reverse with Some r -> r | None -> default_reverse_of first_hop
  in
  let links =
    List.mapi
      (fun i s -> link_of_spec ~sim ~name:(Printf.sprintf "hop-%d" i) s)
      hops
  in
  let rev = link_of_spec ~sim ~name:"reverse" reverse_spec in
  let fwd_router = Router.create ~name:"fwd-router" () in
  let rev_router = Router.create ~name:"rev-router" () in
  (* Wire hop i into hop i+1; the last hop feeds the demux. *)
  let rec wire = function
    | [] -> ()
    | [ last ] -> Link.connect last (Router.forward fwd_router)
    | a :: (b :: _ as rest) ->
        Link.connect a (Link.send b);
        wire rest
  in
  wire links;
  Link.connect rev (Router.forward rev_router);
  let entry = List.hd links in
  let bottleneck =
    List.fold_left
      (fun best l -> if Link.rate_bps l < Link.rate_bps best then l else best)
      entry links
  in
  let make_endpoint i =
    {
      flow_id = i;
      to_receiver = Link.send entry;
      to_sender = Link.send rev;
      on_receiver_rx = (fun sink -> Router.add_route fwd_router ~flow_id:i sink);
      on_sender_rx = (fun sink -> Router.add_route rev_router ~flow_id:i sink);
      marker = None;
    }
  in
  {
    sim;
    bottleneck;
    reverse = rev;
    endpoints = Array.init n_flows make_endpoint;
    links = rev :: links;
  }

let endpoint t i = t.endpoints.(i)

(* ---- Mobility: a single flow re-homed between heterogeneous paths ---- *)

type handover_mode = [ `Drain | `Cut ]

type path = { fwd : Link.t; rev : Link.t }

type mobile = {
  net : t;
  paths : path array;
  active : int ref;
  migrate_hook : (int -> unit) ref;
}

type handover_schedule = (float * int * handover_mode) list

let ignore_migrate (_ : int) = ()

let mobile ~sim ~paths:specs ?reverse () =
  if specs = [] then invalid_arg "Topology.mobile: no paths";
  let specs = Array.of_list specs in
  let rev_specs =
    match reverse with
    | Some rs ->
        if List.length rs <> Array.length specs then
          invalid_arg "Topology.mobile: reverse/paths length mismatch";
        Array.of_list rs
    | None -> Array.map default_reverse_of specs
  in
  let fwd_router = Router.create ~name:"fwd-router" () in
  let rev_router = Router.create ~name:"rev-router" () in
  let paths =
    Array.init (Array.length specs) (fun i ->
        let fwd =
          link_of_spec ~sim ~name:(Printf.sprintf "path-%d" i) specs.(i)
        in
        let rev =
          link_of_spec ~sim
            ~name:(Printf.sprintf "path-%d-rev" i)
            rev_specs.(i)
        in
        Link.connect fwd (Router.forward fwd_router);
        Link.connect rev (Router.forward rev_router);
        { fwd; rev })
  in
  let active = ref 0 in
  let ep =
    {
      flow_id = 0;
      to_receiver = (fun frame -> Link.send paths.(!active).fwd frame);
      to_sender = (fun frame -> Link.send paths.(!active).rev frame);
      on_receiver_rx =
        (fun sink -> Router.add_route fwd_router ~flow_id:0 sink);
      on_sender_rx = (fun sink -> Router.add_route rev_router ~flow_id:0 sink);
      marker = None;
    }
  in
  let links =
    Array.to_list paths |> List.concat_map (fun p -> [ p.fwd; p.rev ])
  in
  let net =
    {
      sim;
      bottleneck = paths.(0).fwd;
      reverse = paths.(0).rev;
      endpoints = [| ep |];
      links;
    }
  in
  { net; paths; active; migrate_hook = ref ignore_migrate }

let mobile_net m = m.net
let active_path m = !(m.active)
let n_paths m = Array.length m.paths
let path_fwd m i = m.paths.(i).fwd
let path_rev m i = m.paths.(i).rev
let on_migrate m f = m.migrate_hook := f

(* Self-migration is a complete no-op — no trace event, no severing, no
   hook — so a schedule of degenerate handovers is observationally
   identical to no schedule at all (the byte-identical differential
   test pins this). *)
let migrate_flow m ~to_ ~mode =
  if to_ < 0 || to_ >= Array.length m.paths then
    invalid_arg "Topology.migrate_flow: path index out of range";
  let from = !(m.active) in
  if to_ <> from then begin
    let old_p = m.paths.(from) and new_p = m.paths.(to_) in
    let cut = match mode with `Cut -> true | `Drain -> false in
    if cut then begin
      Link.sever old_p.fwd;
      Link.sever old_p.rev
    end;
    Link.restore new_p.fwd;
    Link.restore new_p.rev;
    if Trace.Recorder.on () then
      Trace.Recorder.emit ~flow:0
        ~at:(Engine.Sim.now m.net.sim)
        (Trace.Event.Handover
           {
             from_path = Link.name old_p.fwd;
             to_path = Link.name new_p.fwd;
             cut;
           });
    m.active := to_;
    !(m.migrate_hook) to_
  end

let apply_schedule m schedule =
  List.iter
    (fun (at, to_, mode) ->
      Engine.Sim.post_at m.net.sim at (fun () -> migrate_flow m ~to_ ~mode))
    schedule
