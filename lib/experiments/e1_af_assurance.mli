(** E1 — AF bandwidth assurance vs. the negotiated target rate (§4).

    Paper claim: "QTP_AF obtains the QoS negotiated by the application
    with the network service whereas TCP fails to deliver this QoS."
    Sweep the committed rate [g] at a fixed 10 Mb/s AF bottleneck under
    8 Mb/s of unresponsive excess; report achieved/g per protocol. *)

val run : ?seed:int -> unit -> Stats.Table.t
