(** E11 — several reserved flows sharing one AF class (§4, extension).

    The EuQoS deployment the paper targets multiplexes many reservations
    into one AF class.  Three flows with different committed rates
    (1 / 2 / 3 Mb/s) share the 10 Mb/s RIO bottleneck under unresponsive
    excess; each must still collect its own g.  Run once with all-TCP
    flows and once with all-QTP_AF flows. *)

val run : ?seed:int -> unit -> Stats.Table.t
