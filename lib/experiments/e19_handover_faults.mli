(** E19: handover composed with in-network faults.

    QTP_light (full reliability) migrates WiFi -> cellular -> satellite
    with the second migration a hard [`Cut], while a {!Netsim.Mangler}
    reorders / duplicates / corrupts frames on every path.  For every
    (mangler, policy) cell the connection must deliver every distinct
    segment and close cleanly regardless of what the rate policy did. *)

val run : ?seed:int -> unit -> Stats.Table.t
