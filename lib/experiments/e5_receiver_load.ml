type outcome = {
  plane : string;
  packets : int;
  recv_ops : int;
  recv_ops_per_pkt : float;
  recv_lh_entries : int;
  send_ops : int;
  fb_packets : int;
  fb_bytes : int;
  rate_mbps : float;
}

let run_plane ~seed ~loss ~light =
  let sim, topo =
    Common.lossy_path ~seed ~rate_mbps:10.0 ~loss:(Common.bernoulli loss) ()
  in
  let cost_sender = Stats.Cost.create () in
  let cost_receiver = Stats.Cost.create () in
  let offer =
    if light then Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_none ] ()
    else Qtp.Profile.qtp_tfrc ()
  in
  let agreed = Qtp.Profile.agreed_exn offer (Qtp.Profile.anything ()) in
  let conn =
    Qtp.Connection.create ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      ~cost_sender ~cost_receiver
      (Qtp.Connection.config ~initial_rtt:0.2 agreed)
  in
  Engine.Sim.run ~until:Common.duration sim;
  let packets = Stats.Series.count (Qtp.Connection.arrivals conn) in
  let recv_ops = Stats.Cost.total_ops cost_receiver in
  {
    plane = (if light then "QTP_light" else "standard TFRC");
    packets;
    recv_ops;
    recv_ops_per_pkt =
      (if packets = 0 then nan else float_of_int recv_ops /. float_of_int packets);
    recv_lh_entries = Stats.Cost.high_water cost_receiver "lh.entries";
    send_ops = Stats.Cost.total_ops cost_sender;
    fb_packets = Qtp.Connection.feedback_packets conn;
    fb_bytes = Qtp.Connection.feedback_bytes conn;
    rate_mbps = Common.measured_rate (Qtp.Connection.arrivals conn) /. 1e6;
  }

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        "E5: receiver load — standard RFC3448 receiver vs QTP_light (10 Mb/s \
         path)"
      ~columns:
        [
          ("loss", Stats.Table.Right);
          ("receiver", Stats.Table.Left);
          ("rate (Mb/s)", Stats.Table.Right);
          ("recv ops", Stats.Table.Right);
          ("ops/pkt", Stats.Table.Right);
          ("recv hist entries", Stats.Table.Right);
          ("sender ops", Stats.Table.Right);
          ("fb pkts", Stats.Table.Right);
          ("fb bytes", Stats.Table.Right);
        ]
  in
  List.iter
    (fun loss ->
      List.iter
        (fun light ->
          let o = run_plane ~seed ~loss ~light in
          Stats.Table.add_row table
            [
              Stats.Table.cell_f ~decimals:3 loss;
              o.plane;
              Stats.Table.cell_f o.rate_mbps;
              Stats.Table.cell_i o.recv_ops;
              Stats.Table.cell_f o.recv_ops_per_pkt;
              Stats.Table.cell_i o.recv_lh_entries;
              Stats.Table.cell_i o.send_ops;
              Stats.Table.cell_i o.fb_packets;
              Stats.Table.cell_i o.fb_bytes;
            ])
        [ false; true ])
    [ 0.01; 0.05 ];
  table
