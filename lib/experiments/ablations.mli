(** Ablation studies for the design choices DESIGN.md calls out.

    - {!loss_event_grouping}: RTT-window grouping of losses into events
      vs counting every lost packet (grouping is what keeps TFRC's [p]
      comparable to TCP's per-window reaction under bursty loss).
    - {!history_discounting}: RFC 3448 §5.5 discounting on/off — how
      fast [p] decays after the path turns clean.
    - {!sack_block_budget}: SACK blocks per report (1..8) vs the
      fidelity of sender-side reconstruction and achieved rate. *)

val loss_event_grouping : ?seed:int -> unit -> Stats.Table.t

val history_discounting : ?seed:int -> unit -> Stats.Table.t

val sack_block_budget : ?seed:int -> unit -> Stats.Table.t
