let run_case ~seed ~damping =
  let sim = Engine.Sim.create ~seed () in
  (* Short base RTT (10 ms) with a buffer worth ~30 ms: queueing delay
     dominates the RTT — the §4.5 regime. *)
  let forward =
    Netsim.Topology.spec ~rate_bps:10e6 ~delay:0.005
      ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:25)
      ()
  in
  let topo = Netsim.Topology.duplex_path ~sim ~forward () in
  Common.instrument topo;
  let monitor =
    Netsim.Monitor.start ~sim
      ~qdisc:(Netsim.Link.qdisc topo.Netsim.Topology.bottleneck)
      ~interval:0.01 ~until:Common.duration ()
  in
  let agreed =
    Qtp.Profile.agreed_exn (Qtp.Profile.qtp_tfrc ()) (Qtp.Profile.anything ())
  in
  let conn =
    Qtp.Connection.create ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      (Qtp.Connection.config ~initial_rtt:0.05 ~oscillation_damping:damping
         agreed)
  in
  Engine.Sim.run ~until:Common.duration sim;
  let rates =
    Stats.Series.windowed_rates_bps (Qtp.Connection.arrivals conn)
      ~from_:Common.warmup ~until:Common.duration ~window:0.25
  in
  let rate_summary = Stats.Summary.of_array rates in
  let q = Netsim.Monitor.samples_pkts monitor in
  let steady = Array.sub q 500 (Array.length q - 500) in
  let q_summary = Stats.Summary.of_array steady in
  (rate_summary, q_summary)

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        "Ablation: oscillation damping (RFC 3448 §4.5) on an underbuffered \
         path (10 Mb/s, 10 ms base RTT, 25-packet buffer)"
      ~columns:
        [
          ("damping", Stats.Table.Left);
          ("rate (Mb/s)", Stats.Table.Right);
          ("rate CoV", Stats.Table.Right);
          ("queue mean (pkts)", Stats.Table.Right);
          ("queue stddev", Stats.Table.Right);
        ]
  in
  List.iter
    (fun damping ->
      let r, q = run_case ~seed ~damping in
      Stats.Table.add_row table
        [
          (if damping then "on" else "off");
          Stats.Table.cell_f (r.Stats.Summary.mean /. 1e6);
          Stats.Table.cell_f ~decimals:3 (Stats.Summary.cov r);
          Stats.Table.cell_f q.Stats.Summary.mean;
          Stats.Table.cell_f q.Stats.Summary.stddev;
        ])
    [ false; true ];
  table
