(** E13 — standing queue / bufferbloat behaviour (§3, extension).

    The flip side of rate smoothness: with a deep droptail buffer, a
    saturating TCP flow fills whatever buffer exists (its sawtooth rides
    the buffer ceiling), inflating everyone's delay, while the
    equation-driven TFRC sender settles near the loss point it needs and
    keeps the standing queue — hence the path delay a multimedia flow
    experiences — several times smaller.  One flow on a 10 Mb/s
    bottleneck with a 400-packet buffer; occupancy sampled every
    10 ms. *)

val run : ?seed:int -> unit -> Stats.Table.t
