let n_hops = 3

let hop_mbps = 10.0

let run_case ~seed ~long_is_tfrc =
  let sim = Engine.Sim.create ~seed () in
  let hop () =
    Netsim.Topology.spec ~rate_bps:(Common.mbps hop_mbps) ~delay:0.01
      ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:85)
      ()
  in
  (* Flow 0: the long flow over all hops; flows 1..n: one per hop. *)
  let paths =
    Array.init (n_hops + 1) (fun i ->
        if i = 0 then (0, n_hops) else (i - 1, i))
  in
  let topo =
    Netsim.Topology.parking_lot ~sim
      ~hops:(List.init n_hops (fun _ -> hop ()))
      ~paths ()
  in
  Common.instrument topo;
  (* Cross traffic: greedy TCP on every hop. *)
  let cross =
    List.init n_hops (fun i ->
        Tcp.Flow.create ~sim
          ~endpoint:(Netsim.Topology.endpoint topo (i + 1))
          ())
  in
  let long_rate =
    if long_is_tfrc then begin
      let agreed =
        Qtp.Profile.agreed_exn (Qtp.Profile.qtp_tfrc ())
          (Qtp.Profile.anything ())
      in
      let conn =
        Qtp.Connection.create ~sim
          ~endpoint:(Netsim.Topology.endpoint topo 0)
          (Qtp.Connection.config ~initial_rtt:0.2 agreed)
      in
      Engine.Sim.run ~until:Common.duration sim;
      Common.measured_rate (Qtp.Connection.arrivals conn)
    end
    else begin
      let flow =
        Tcp.Flow.create ~sim ~endpoint:(Netsim.Topology.endpoint topo 0) ()
      in
      Engine.Sim.run ~until:Common.duration sim;
      Common.measured_rate (Tcp.Flow.goodput_series flow) *. 1500.0 /. 1460.0
    end
  in
  let cross_rates =
    List.map
      (fun f ->
        Common.measured_rate (Tcp.Flow.goodput_series f) *. 1500.0 /. 1460.0)
      cross
  in
  (long_rate, cross_rates)

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E16: parking lot — one long flow over %d x %.0f Mb/s hops vs one \
            TCP cross flow per hop (flow-fair share = %.1f Mb/s)"
           n_hops hop_mbps (hop_mbps /. 2.0))
      ~columns:
        [
          ("long flow", Stats.Table.Left);
          ("long rate (Mb/s)", Stats.Table.Right);
          ("long/fair", Stats.Table.Right);
          ("mean cross (Mb/s)", Stats.Table.Right);
          ("hop utilisation", Stats.Table.Right);
        ]
  in
  List.iter
    (fun long_is_tfrc ->
      let long_rate, cross_rates = run_case ~seed ~long_is_tfrc in
      let mean_cross =
        List.fold_left ( +. ) 0.0 cross_rates
        /. float_of_int (List.length cross_rates)
      in
      Stats.Table.add_row table
        [
          (if long_is_tfrc then "TFRC" else "TCP");
          Stats.Table.cell_f (long_rate /. 1e6);
          Stats.Table.cell_f (long_rate /. Common.mbps (hop_mbps /. 2.0));
          Stats.Table.cell_f (mean_cross /. 1e6);
          Stats.Table.cell_f
            ((long_rate +. mean_cross) /. Common.mbps hop_mbps);
        ])
    [ false; true ];
  table
