(** E12 — negotiation robustness (§1, implementation hardening).

    Feature negotiation is only versatile if it survives the networks
    the protocol targets: the SYN / SYN-ACK / ACK handshake runs over
    increasingly lossy paths and must still establish (via SYN
    retransmission with backoff) or fail cleanly, never hang.  Reports
    establishment rate, handshake segments spent, and time to establish
    across 20 trials per loss rate. *)

val run : ?seed:int -> unit -> Stats.Table.t
