(** Ablation a4 — RFC 3448 §4.5 oscillation damping.

    On an underbuffered path (queueing delay comparable to the base
    RTT), the equation's RTT feedback loop can oscillate: rate up →
    queue builds → RTT up → equation rate down → queue drains → …
    Damping scales the instantaneous rate by [sqrt(R_sample)/R_sqmean],
    braking as the queue grows.  Compare throughput CoV and queue
    variance with damping on/off. *)

val run : ?seed:int -> unit -> Stats.Table.t
