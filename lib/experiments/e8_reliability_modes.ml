let media_rate = 2.0e6

let path_loss = 0.03

let burstiness = 0.5

let modes =
  [
    ("none", [ Qtp.Capabilities.R_none ]);
    ("partial", [ Qtp.Capabilities.R_partial ]);
    ("full", [ Qtp.Capabilities.R_full ]);
  ]

let run_mode ~seed ~reliability =
  let sim, topo =
    Common.lossy_path ~seed ~rate_mbps:10.0
      ~loss:(fun rng -> Common.gilbert ~loss:path_loss ~burstiness rng)
      ()
  in
  let agreed =
    Qtp.Profile.agreed_exn
      (Qtp.Profile.qtp_light ~reliability ())
      (Qtp.Profile.mobile_receiver ())
  in
  let source =
    Qtp.Source.cbr ~sim ~rate_bps:media_rate ~packet_size:1500 ()
  in
  let conn =
    Qtp.Connection.create ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      ~source
      (Qtp.Connection.config ~initial_rtt:0.2 agreed)
  in
  Engine.Sim.run ~until:Common.duration sim;
  conn

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E8: reliability modes for a 2 Mb/s media stream (Gilbert loss \
            %.0f%%, burstiness %.1f)"
           (path_loss *. 100.0) burstiness)
      ~columns:
        [
          ("mode", Stats.Table.Left);
          ("sent", Stats.Table.Right);
          ("retx", Stats.Table.Right);
          ("abandoned", Stats.Table.Right);
          ("delivered", Stats.Table.Right);
          ("skipped", Stats.Table.Right);
          ("delivery ratio", Stats.Table.Right);
          ("delay p50 (ms)", Stats.Table.Right);
          ("delay p99 (ms)", Stats.Table.Right);
        ]
  in
  List.iter
    (fun (name, reliability) ->
      let conn = run_mode ~seed ~reliability in
      let delivered = Qtp.Connection.delivered conn in
      let skipped = Qtp.Connection.skipped conn in
      let delays = Qtp.Connection.delivery_delays conn in
      let pct q =
        if Array.length delays = 0 then nan
        else 1000.0 *. Stats.Summary.percentile delays q
      in
      Stats.Table.add_row table
        [
          name;
          Stats.Table.cell_i (Qtp.Connection.data_sent conn);
          Stats.Table.cell_i (Qtp.Connection.retransmissions conn);
          Stats.Table.cell_i (Qtp.Connection.abandoned conn);
          Stats.Table.cell_i delivered;
          Stats.Table.cell_i skipped;
          Stats.Table.cell_f ~decimals:4
            (float_of_int delivered /. float_of_int (delivered + skipped));
          Stats.Table.cell_f ~decimals:1 (pct 0.5);
          Stats.Table.cell_f ~decimals:1 (pct 0.99);
        ])
    modes;
  table
