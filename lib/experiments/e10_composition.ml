let initiators =
  [
    ("QTP_AF(g=2M)", Qtp.Profile.qtp_af ~g_bps:2.0e6 ());
    ("QTP_light", Qtp.Profile.qtp_light ());
    ("QTP_tfrc", Qtp.Profile.qtp_tfrc ());
    ("QTP_full", Qtp.Profile.qtp_full ());
  ]

let responders =
  [
    ("anything", Qtp.Profile.anything ());
    ("mobile", Qtp.Profile.mobile_receiver ());
  ]

let horizon = 10.0

let run_pair ~seed initiator responder =
  let sim, topo =
    Common.lossy_path ~seed ~rate_mbps:10.0 ~loss:(Common.bernoulli 0.01) ()
  in
  let conn =
    Qtp.Connection.create_negotiated ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      ~initial_rtt:0.2 ~initiator ~responder ()
  in
  Engine.Sim.run ~until:horizon sim;
  conn

let contract_ok conn (agreed : Qtp.Capabilities.agreed) =
  let delivered = Qtp.Connection.delivered conn in
  if delivered = 0 then false
  else
    match agreed.Qtp.Capabilities.mode with
    | Qtp.Capabilities.R_full -> Qtp.Connection.skipped conn = 0
    | Qtp.Capabilities.R_none -> Qtp.Connection.retransmissions conn = 0
    | Qtp.Capabilities.R_partial -> true

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        "E10: negotiated composition matrix (10 s runs, 1% loss path; hs = \
         handshake segments)"
      ~columns:
        [
          ("initiator", Stats.Table.Left);
          ("responder", Stats.Table.Left);
          ("outcome", Stats.Table.Left);
          ("plane", Stats.Table.Left);
          ("reliability", Stats.Table.Left);
          ("g (Mb/s)", Stats.Table.Right);
          ("hs", Stats.Table.Right);
          ("delivered", Stats.Table.Right);
          ("contract", Stats.Table.Left);
        ]
  in
  List.iter
    (fun (iname, ioffer) ->
      List.iter
        (fun (rname, roffer) ->
          let conn = run_pair ~seed ioffer roffer in
          let fmt_plane p = Format.asprintf "%a" Qtp.Capabilities.pp_plane p in
          let fmt_mode m = Format.asprintf "%a" Qtp.Capabilities.pp_mode m in
          let row =
            match Qtp.Connection.state conn with
            | Qtp.Connection.Established agreed ->
                [
                  iname;
                  rname;
                  "established";
                  fmt_plane agreed.Qtp.Capabilities.plane;
                  fmt_mode agreed.Qtp.Capabilities.mode;
                  Stats.Table.cell_f
                    (agreed.Qtp.Capabilities.target_bps /. 1e6);
                  Stats.Table.cell_i (Qtp.Connection.handshake_packets conn);
                  Stats.Table.cell_i (Qtp.Connection.delivered conn);
                  (if contract_ok conn agreed then "ok" else "VIOLATED");
                ]
            | Qtp.Connection.Failed reason ->
                [ iname; rname; "failed: " ^ reason; "-"; "-"; "-";
                  Stats.Table.cell_i (Qtp.Connection.handshake_packets conn);
                  "0"; "n/a" ]
            | Qtp.Connection.Negotiating | Qtp.Connection.Closing
            | Qtp.Connection.Closed ->
                [ iname; rname; "unexpected state"; "-"; "-"; "-";
                  Stats.Table.cell_i (Qtp.Connection.handshake_packets conn);
                  "0"; "n/a" ]
          in
          Stats.Table.add_row table row)
        responders)
    initiators;
  table
