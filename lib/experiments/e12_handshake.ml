let trials = 20

let horizon = 60.0

let run_trial ~seed ~loss =
  let sim, topo =
    Common.lossy_path ~seed ~rate_mbps:10.0 ~loss:(Common.bernoulli loss) ()
  in
  let conn =
    Qtp.Connection.create_negotiated ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      ~initial_rtt:0.2
      ~initiator:(Qtp.Profile.qtp_light ())
      ~responder:(Qtp.Profile.mobile_receiver ())
      ()
  in
  (* Find the establishment time by stepping in coarse slices. *)
  let established_at = ref None in
  let rec advance until =
    Engine.Sim.run ~until sim;
    (match (Qtp.Connection.state conn, !established_at) with
    | Qtp.Connection.Established _, None ->
        established_at := Some (Engine.Sim.now sim)
    | _ -> ());
    if !established_at = None && until < horizon then advance (until +. 0.5)
  in
  advance 0.5;
  Engine.Sim.run ~until:horizon sim;
  ( Qtp.Connection.state conn,
    !established_at,
    Qtp.Connection.handshake_packets conn,
    Qtp.Connection.delivered conn )

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E12: handshake robustness over lossy paths (%d trials per row, \
            %gs horizon)"
           trials horizon)
      ~columns:
        [
          ("loss", Stats.Table.Right);
          ("established", Stats.Table.Right);
          ("failed", Stats.Table.Right);
          ("stuck", Stats.Table.Right);
          ("mean hs segs", Stats.Table.Right);
          ("mean t_est (s)", Stats.Table.Right);
          ("data moved", Stats.Table.Right);
        ]
  in
  List.iter
    (fun loss ->
      let established = ref 0 and failed = ref 0 and stuck = ref 0 in
      let hs = ref 0 and t_est = ref [] and moved = ref 0 in
      for k = 0 to trials - 1 do
        let state, at, segs, delivered =
          run_trial ~seed:(seed + (1000 * k)) ~loss
        in
        hs := !hs + segs;
        (match state with
        | Qtp.Connection.Established _ ->
            incr established;
            (match at with Some x -> t_est := x :: !t_est | None -> ());
            if delivered > 0 then incr moved
        | Qtp.Connection.Failed _ -> incr failed
        | Qtp.Connection.Negotiating | Qtp.Connection.Closing
        | Qtp.Connection.Closed ->
            incr stuck)
      done;
      let mean_t =
        match !t_est with
        | [] -> nan
        | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
      in
      Stats.Table.add_row table
        [
          Stats.Table.cell_f ~decimals:2 loss;
          Stats.Table.cell_i !established;
          Stats.Table.cell_i !failed;
          Stats.Table.cell_i !stuck;
          Stats.Table.cell_f (float_of_int !hs /. float_of_int trials);
          Stats.Table.cell_f ~decimals:3 mean_t;
          Stats.Table.cell_i !moved;
        ])
    [ 0.0; 0.1; 0.3; 0.5 ];
  table
