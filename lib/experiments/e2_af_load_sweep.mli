(** E2 — AF assurance "under various network conditions" (§4).

    Fixed target g = 3 Mb/s on the 10 Mb/s AF bottleneck; sweep the
    unresponsive excess load.  Shows where plain TFRC+SACK loses the
    assurance and the gTFRC floor keeps it — the design choice QTP_AF
    exists for. *)

val run : ?seed:int -> unit -> Stats.Table.t
