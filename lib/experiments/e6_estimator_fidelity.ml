let n_packets = 30_000

let pkt_gap = 0.001  (* inter-packet time: 1500 B at 12 Mb/s *)

let rtt = 0.05

(* Synthesise which packets of 0..n-1 survive. *)
let survive_pattern ~seed ~model =
  let rng = Engine.Rng.create ~seed in
  let lm =
    match model with
    | `Bernoulli p -> Common.bernoulli p rng
    | `Gilbert (loss, burst) -> Common.gilbert ~loss ~burstiness:burst rng
  in
  Array.init n_packets (fun _ -> not (Netsim.Loss_model.drops lm))

let receiver_side_p pattern =
  let lh = Tfrc.Loss_history.create () in
  Array.iteri
    (fun i alive ->
      if alive then
        Tfrc.Loss_history.on_packet lh ~seq:(Packet.Serial.of_int i)
          ~arrival:((float_of_int i *. pkt_gap) +. (rtt /. 2.0))
          ~rtt ~is_retx:false)
    pattern;
  Tfrc.Loss_history.loss_event_rate lh

(* Replay the same survivals as per-RTT SACK coverage batches. *)
let sender_side_p pattern =
  let lr = Qtp.Loss_reconstructor.create () in
  let batch = ref [] in
  let per_batch = int_of_float (rtt /. pkt_gap) in
  let flush () =
    if !batch <> [] then begin
      Qtp.Loss_reconstructor.on_covers lr ~covers:(List.rev !batch) ~rtt
        ~x_recv:(1500.0 /. pkt_gap) ~packet_size:1500;
      batch := []
    end
  in
  Array.iteri
    (fun i alive ->
      if alive then
        batch :=
          {
            Sack.Scoreboard.cov_seq = Packet.Serial.of_int i;
            cov_sent_at = float_of_int i *. pkt_gap;
            cov_was_retx = false;
          }
          :: !batch;
      if (i + 1) mod per_batch = 0 then flush ())
    pattern;
  flush ();
  Qtp.Loss_reconstructor.loss_event_rate lr

let cases =
  [
    ("bernoulli 0.5%", `Bernoulli 0.005);
    ("bernoulli 1%", `Bernoulli 0.01);
    ("bernoulli 2%", `Bernoulli 0.02);
    ("bernoulli 5%", `Bernoulli 0.05);
    ("gilbert 2% mild", `Gilbert (0.02, 0.3));
    ("gilbert 2% bursty", `Gilbert (0.02, 0.8));
    ("gilbert 5% bursty", `Gilbert (0.05, 0.8));
  ]

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        "E6: loss-event-rate fidelity — receiver-side vs sender-side \
         (reconstructed) estimation on identical loss patterns"
      ~columns:
        [
          ("loss process", Stats.Table.Left);
          ("raw loss", Stats.Table.Right);
          ("p receiver", Stats.Table.Right);
          ("p sender", Stats.Table.Right);
          ("rel diff", Stats.Table.Right);
          ("eq rate recv (Mb/s)", Stats.Table.Right);
          ("eq rate send (Mb/s)", Stats.Table.Right);
        ]
  in
  List.iter
    (fun (name, model) ->
      let pattern = survive_pattern ~seed ~model in
      let losses =
        Array.fold_left (fun acc b -> if b then acc else acc + 1) 0 pattern
      in
      let raw = float_of_int losses /. float_of_int n_packets in
      let p_r = receiver_side_p pattern in
      let p_s = sender_side_p pattern in
      let rel =
        if p_r = 0.0 then (if p_s = 0.0 then 0.0 else infinity)
        else Float.abs (p_s -. p_r) /. p_r
      in
      let eq p =
        if p <= 0.0 then nan
        else Tfrc.Equation.rate_bps ~s:1500 ~r:rtt ~p () /. 1e6
      in
      Stats.Table.add_row table
        [
          name;
          Stats.Table.cell_f ~decimals:4 raw;
          Stats.Table.cell_f ~decimals:4 p_r;
          Stats.Table.cell_f ~decimals:4 p_s;
          Stats.Table.cell_f ~decimals:3 rel;
          Stats.Table.cell_f (eq p_r);
          Stats.Table.cell_f (eq p_s);
        ])
    cases;
  table
