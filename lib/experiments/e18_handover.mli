(** E18: handover rate-policy comparison.

    One QTP_AF flow (g = 0.5 Mb/s) migrates mid-connection across a
    heterogeneous WiFi / cellular / satellite path triple — downgrade
    direction and back up — under each {!Tfrc.Handover.policy}.  Per
    (direction, policy) the table reports the settled rate before and
    after, the throughput recovery time and retransmission burst at
    each handover, and the worst post-handover goodput window relative
    to the committed g (the gTFRC floor). *)

val run : ?seed:int -> unit -> Stats.Table.t
