let targets_mbps = [| 1.0; 2.0; 3.0 |]

let excess_mbps = 6.0

let n_excess = 3

let run_group ~seed ~qtp =
  let n_reserved = Array.length targets_mbps in
  let n_flows = n_reserved + n_excess in
  let committed = Array.make n_flows 0.0 in
  Array.blit targets_mbps 0 committed 0 n_reserved;
  let sim, topo =
    Common.af_dumbbell ~seed ~n_flows ~bottleneck_mbps:10.0
      ~committed_mbps:committed ()
  in
  let rng = Engine.Sim.split_rng sim in
  for i = n_reserved to n_flows - 1 do
    let ep = Netsim.Topology.endpoint topo i in
    Common.sink_background ep;
    ignore
      (Workload.Background.poisson ~sim ~sink:ep.Netsim.Topology.to_receiver
         ~flow_id:i ~rng:(Engine.Rng.split rng)
         ~rate_bps:(Common.mbps (excess_mbps /. float_of_int n_excess))
         ~packet_size:1000 ())
  done;
  let rates =
    if qtp then begin
      let conns =
        Array.mapi
          (fun i g ->
            let agreed =
              Qtp.Profile.agreed_exn
                (Qtp.Profile.qtp_af ~g_bps:(Common.mbps g) ())
                (Qtp.Profile.anything ())
            in
            Qtp.Connection.create ~sim
              ~endpoint:(Netsim.Topology.endpoint topo i)
              (Qtp.Connection.config ~initial_rtt:0.2 agreed))
          targets_mbps
      in
      Engine.Sim.run ~until:Common.duration sim;
      Array.map
        (fun c ->
          let payload = 1500 - Packet.Header.data_header_bytes in
          Common.measured_rate (Qtp.Connection.goodput c)
          *. 1500.0 /. float_of_int payload)
        conns
    end
    else begin
      let flows =
        Array.mapi
          (fun i _ ->
            Tcp.Flow.create ~sim ~endpoint:(Netsim.Topology.endpoint topo i) ())
          targets_mbps
      in
      Engine.Sim.run ~until:Common.duration sim;
      Array.map
        (fun f ->
          Common.measured_rate (Tcp.Flow.goodput_series f) *. 1500.0 /. 1460.0)
        flows
    end
  in
  rates

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        "E11: three reserved flows (g = 1/2/3 Mb/s) in one 10 Mb/s AF class \
         under 6 Mb/s excess"
      ~columns:
        [
          ("protocol", Stats.Table.Left);
          ("flow", Stats.Table.Right);
          ("g (Mb/s)", Stats.Table.Right);
          ("achieved (Mb/s)", Stats.Table.Right);
          ("achieved/g", Stats.Table.Right);
        ]
  in
  List.iter
    (fun qtp ->
      let rates = run_group ~seed ~qtp in
      Array.iteri
        (fun i rate ->
          Stats.Table.add_row table
            [
              (if qtp then "QTP_AF" else "TCP");
              Stats.Table.cell_i i;
              Stats.Table.cell_f ~decimals:1 targets_mbps.(i);
              Stats.Table.cell_f (rate /. 1e6);
              Stats.Table.cell_f (rate /. Common.mbps targets_mbps.(i));
            ])
        rates)
    [ false; true ];
  table
