type entry = {
  id : string;
  title : string;
  claim : string;
  run : seed:int -> Stats.Table.t;
}

let all =
  [
    {
      id = "e1";
      title = "AF bandwidth assurance vs negotiated target";
      claim =
        "§4: QTP_AF obtains the negotiated QoS whereas TCP fails to deliver \
         it";
      run = (fun ~seed -> E1_af_assurance.run ~seed ());
    };
    {
      id = "e2";
      title = "AF assurance vs excess load";
      claim = "§4: the assurance holds under various network conditions";
      run = (fun ~seed -> E2_af_load_sweep.run ~seed ());
    };
    {
      id = "e3";
      title = "Throughput smoothness";
      claim = "§3: TFRC offers the smooth throughput multimedia requires";
      run = (fun ~seed -> E3_smoothness.run ~seed ());
    };
    {
      id = "e4";
      title = "TCP friendliness";
      claim = "§2/§3: TFRC trades fairly against TCP";
      run = (fun ~seed -> E4_friendliness.run ~seed ());
    };
    {
      id = "e5";
      title = "Receiver processing and communication load";
      claim = "§3: QTP_light dramatically decreases the receiver load";
      run = (fun ~seed -> E5_receiver_load.run ~seed ());
    };
    {
      id = "e6";
      title = "Sender-side estimator fidelity";
      claim =
        "§3: the shifted (sender-side) loss estimation reproduces the \
         receiver-side computation";
      run = (fun ~seed -> E6_estimator_fidelity.run ~seed ());
    };
    {
      id = "e7";
      title = "Selfish receiver protection";
      claim = "§3: QTP_light is robust against selfish receivers";
      run = (fun ~seed -> E7_selfish_receiver.run ~seed ());
    };
    {
      id = "e8";
      title = "Reliability modes";
      claim =
        "§1/§3: partial/full reliability is negotiable and selective \
         retransmission is efficient";
      run = (fun ~seed -> E8_reliability_modes.run ~seed ());
    };
    {
      id = "e9";
      title = "Wireless-style loss";
      claim =
        "§2: rate-controlled congestion control behaves well over \
         wireless/multi-hop paths where TCP is poor";
      run = (fun ~seed -> E9_wireless.run ~seed ());
    };
    {
      id = "e10";
      title = "Composition/negotiation matrix";
      claim = "§1: features are negotiated between the transport entities";
      run = (fun ~seed -> E10_composition.run ~seed ());
    };
    {
      id = "e11";
      title = "Multiple reserved flows in one AF class";
      claim =
        "§4 extension: every reservation multiplexed into the class is \
         honoured for QTP_AF, none for TCP";
      run = (fun ~seed -> E11_multi_af.run ~seed ());
    };
    {
      id = "e12";
      title = "Handshake robustness";
      claim =
        "§1 hardening: negotiation completes (or fails cleanly) over lossy \
         paths";
      run = (fun ~seed -> E12_handshake.run ~seed ());
    };
    {
      id = "e13";
      title = "Standing queue in deep buffers";
      claim =
        "§3 extension: the equation-driven sender keeps the standing queue \
         (and thus path delay) far below TCP's buffer-filling sawtooth";
      run = (fun ~seed -> E13_queue_dynamics.run ~seed ());
    };
    {
      id = "e14";
      title = "ECN: congestion signalling without loss";
      claim =
        "extension: negotiated RFC 3168 marking replaces drops on both \
         feedback planes — same throughput, no retransmissions";
      run = (fun ~seed -> E14_ecn.run ~seed ());
    };
    {
      id = "e15";
      title = "Feedback-path loss robustness";
      claim =
        "§3 hardening: the light plane's cumulative SACK survives lossy \
         reverse paths";
      run = (fun ~seed -> E15_feedback_loss.run ~seed ());
    };
    {
      id = "e16";
      title = "Parking-lot multi-bottleneck fairness";
      claim =
        "§2 extension: the long flow's multi-bottleneck penalty, TFRC vs TCP";
      run = (fun ~seed -> E16_parking_lot.run ~seed ());
    };
    {
      id = "e17";
      title = "Large-BDP profile mixes over long-fat networks";
      claim =
        "extension: the negotiated services (AF assurance, light plane, \
         full reliability) survive 250..500 ms RTTs with thousands of \
         packets in flight — the run-length SACK/TFRC fast path at scale";
      run = (fun ~seed -> E17_lfn.run ~seed ());
    };
    {
      id = "e18";
      title = "Handover rate policies across heterogeneous paths";
      claim =
        "extension (Mehani et al.): an informed rate re-seed recovers the \
         new path's throughput faster than a slow-start reset and avoids \
         Keep's post-downgrade loss burst, while the gTFRC floor survives \
         the move";
      run = (fun ~seed -> E18_handover.run ~seed ());
    };
    {
      id = "e19";
      title = "Handover under in-network faults";
      claim =
        "extension: full reliability survives mid-connection migration — \
         including a hard cut that drops the whole flight — under \
         reordering, duplication and corruption";
      run = (fun ~seed -> E19_handover_faults.run ~seed ());
    };
    {
      id = "e20";
      title = "Trunked flow aggregation vs per-flow TCP";
      claim =
        "extension (TCP-trunking): one gTFRC connection fronting N user \
         micro-flows holds the negotiated aggregate g that N per-flow TCP \
         reservations cannot, and DRR keeps the users' shares near-equal";
      run = (fun ~seed -> E20_trunk.run ~seed ());
    };
    {
      id = "a1";
      title = "Ablation: loss-event grouping";
      claim = "design choice: RTT-window grouping of losses";
      run = (fun ~seed -> Ablations.loss_event_grouping ~seed ());
    };
    {
      id = "a2";
      title = "Ablation: history discounting";
      claim = "design choice: RFC 3448 §5.5 discounting";
      run = (fun ~seed -> Ablations.history_discounting ~seed ());
    };
    {
      id = "a3";
      title = "Ablation: SACK block budget";
      claim = "design choice: blocks per light-plane report";
      run = (fun ~seed -> Ablations.sack_block_budget ~seed ());
    };
    {
      id = "a4";
      title = "Ablation: oscillation damping";
      claim = "design choice: RFC 3448 §4.5 instantaneous-rate braking";
      run = (fun ~seed -> Ablation_damping.run ~seed ());
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

(* One experiment, rendered to a string.  Runs inside a pool worker:
   the checker and the flight recorder are ambient {e per domain}, so
   concurrent entries never share them. *)
let render_entry ~seed ~format ~checked ~trace e =
  let buf = Buffer.create 1024 in
  let out = Format.formatter_of_buffer buf in
  let table () =
    let tbl, recorder =
      Common.with_trace ~trace (fun () ->
          Common.with_checked ~checked (fun () -> e.run ~seed))
    in
    (* The trace summary goes only to the human-readable format so
       CSV output stays machine-parseable. *)
    (match (recorder, format) with
    | Some r, `Table ->
        Format.fprintf out "   trace: %d events over %d flows, digest %s@."
          (Trace.Recorder.events r)
          (List.length (Trace.Recorder.flows r))
          (Trace.Export.digest r)
    | Some _, `Csv | None, _ -> ());
    tbl
  in
  (match format with
  | `Table ->
      Format.fprintf out "@.== %s: %s@.   claim: %s@.@." e.id e.title e.claim;
      Format.fprintf out "%s@." (Stats.Table.render (table ()))
  | `Csv -> Format.fprintf out "%s@." (Stats.Table.to_csv (table ())));
  Format.pp_print_flush out ();
  Buffer.contents buf

let run_all ?(seed = 42) ?ids ?(format = `Table) ?(checked = false)
    ?(trace = false) ?jobs ~out () =
  let selected =
    match ids with
    | None -> all
    | Some ids -> List.filter (fun e -> List.mem e.id ids) all
  in
  (* Fan the entries over the pool but emit in registry order; an
     entry's exception (e.g. an invariant violation under ~checked) is
     re-raised only after every earlier entry's output is printed, so
     the bytes up to the failure match a sequential run's. *)
  let rendered =
    Engine.Pool.with_pool ?jobs (fun pool ->
        Engine.Pool.map_list pool
          (fun e ->
            try Ok (render_entry ~seed ~format ~checked ~trace e)
            with exn -> Error exn)
          selected)
  in
  List.iter
    (function
      | Ok s ->
          Format.pp_print_string out s;
          Format.pp_print_flush out ()
      | Error exn -> raise exn)
    rendered
