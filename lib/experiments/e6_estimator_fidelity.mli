(** E6 — sender-side loss estimation fidelity (§3).

    QTP_light is only sound if the sender's reconstructed loss event
    rate matches what an RFC 3448 receiver would have computed from the
    same arrival process.  This experiment is deterministic and
    network-free: one synthetic loss pattern is fed (a) directly into a
    receiver-side {!Tfrc.Loss_history} and (b) through SACK-style
    per-RTT coverage batches into a {!Qtp.Loss_reconstructor}; the two
    resulting [p] estimates are compared, for random and bursty loss. *)

val run : ?seed:int -> unit -> Stats.Table.t
