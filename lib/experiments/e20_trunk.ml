let n_users = 24

let g_mbps = 4.0

let bottleneck_mbps = 10.0

let excess_mbps = 24.0

let n_excess_flows = 4

(* Enough per-user bytes to stay backlogged for the whole run: the
   trunk can ship at most g * duration in profile, so 2 MB x 24 users
   comfortably exceeds the pipe. *)
let workload_bytes = 2_000_000

let measure series =
  Stats.Series.rate_bps series ~from_:Common.warmup ~until:Common.duration

(* One AF dumbbell: [n_committed] reserved flows (given per-flow
   committed rates) plus the unresponsive Poisson excess aggregates. *)
let build ~seed ~committed =
  let n_committed = Array.length committed in
  let n_flows = n_committed + n_excess_flows in
  let all = Array.make n_flows 0.0 in
  Array.blit committed 0 all 0 n_committed;
  let sim, topo =
    Common.af_dumbbell ~seed ~n_flows ~bottleneck_mbps ~committed_mbps:all ()
  in
  let rng = Engine.Sim.split_rng sim in
  let per_flow = Common.mbps (excess_mbps /. float_of_int n_excess_flows) in
  for i = n_committed to n_flows - 1 do
    let ep = Netsim.Topology.endpoint topo i in
    Common.sink_background ep;
    ignore
      (Workload.Background.poisson ~sim ~sink:ep.Netsim.Topology.to_receiver
         ~flow_id:i ~rng:(Engine.Rng.split rng) ~rate_bps:per_flow
         ~packet_size:1000 ())
  done;
  (sim, topo)

type arm = { label : string; sched : string; rate_bps : float; jain : float }

let run_trunk ~seed ~discipline =
  let sim, topo = build ~seed ~committed:[| g_mbps |] in
  let cfg = Trunk.Mux.config ~discipline ~users:n_users () in
  let mux = Trunk.Mux.create cfg in
  let agreed =
    Qtp.Profile.agreed_exn
      (Qtp.Profile.qtp_af ~g_bps:(Common.mbps g_mbps) ())
      (Qtp.Profile.anything ())
  in
  let conn =
    Qtp.Connection.create ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      ~source:(Trunk.Mux.source mux)
      (Qtp.Connection.config ~initial_rtt:0.2 agreed)
  in
  Trunk.Mux.attach mux ~conn
    ~seg_payload:(1500 - Packet.Header.data_header_bytes);
  let workloads = Array.make n_users workload_bytes in
  ignore (Trunk.Mux.feed mux ~sim ~workloads ~stop_at:Common.duration ());
  Engine.Sim.run ~until:Common.duration sim;
  let payload = 1500 - Packet.Header.data_header_bytes in
  let wire_rate =
    measure (Qtp.Connection.goodput conn) *. 1500.0 /. float_of_int payload
  in
  {
    label = "QTP_AF trunk";
    sched = (match discipline with Trunk.Sched.Drr -> "drr" | Fifo -> "fifo");
    rate_bps = wire_rate;
    jain = Stats.Fairness.jain (Trunk.Mux.delivered_per_user mux);
  }

let run_tcp ~seed =
  let committed = Array.make n_users (g_mbps /. float_of_int n_users) in
  let sim, topo = build ~seed ~committed in
  let params = Tcp.Tcp_sender.default_params in
  let flows =
    Array.init n_users (fun i ->
        Tcp.Flow.create ~sim
          ~endpoint:(Netsim.Topology.endpoint topo i)
          ~params ())
  in
  Engine.Sim.run ~until:Common.duration sim;
  let wire = Tcp.Tcp_wire.seg_size ~payload:params.packet_size in
  let rates =
    Array.map
      (fun f ->
        measure (Tcp.Flow.goodput_series f)
        *. float_of_int wire
        /. float_of_int params.packet_size)
      flows
  in
  {
    label = "TCP per-flow";
    sched = "-";
    rate_bps = Array.fold_left ( +. ) 0.0 rates;
    jain = Stats.Fairness.jain rates;
  }

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E20: %d users sharing a g = %.0f Mb/s AF reservation (%.0f Mb/s \
            RIO bottleneck, %.0f Mb/s excess): one trunked gTFRC connection \
            vs per-flow TCP"
           n_users g_mbps bottleneck_mbps excess_mbps)
      ~columns:
        [
          ("transport", Stats.Table.Left);
          ("sched", Stats.Table.Left);
          ("achieved (Mb/s)", Stats.Table.Right);
          ("achieved/g", Stats.Table.Right);
          ("jain(users)", Stats.Table.Right);
        ]
  in
  let arms =
    [
      run_trunk ~seed ~discipline:Trunk.Sched.Drr;
      run_trunk ~seed ~discipline:Trunk.Sched.Fifo;
      run_tcp ~seed;
    ]
  in
  List.iter
    (fun a ->
      Stats.Table.add_row table
        [
          a.label;
          a.sched;
          Stats.Table.cell_f (a.rate_bps /. 1e6);
          Stats.Table.cell_f (a.rate_bps /. Common.mbps g_mbps);
          Stats.Table.cell_f ~decimals:3 a.jain;
        ])
    arms;
  table
