(* Mid-connection handover: one QTP_AF flow (g = 0.5 Mb/s, a rate every
   access technology here can carry) migrates WiFi -> cellular ->
   satellite and back up, under each of the three rate policies.  The
   table contrasts the policies on exactly the axes the mobility
   literature argues about: how fast the throughput recovers onto the
   new path, how many retransmissions the transition provokes (Keep
   keeps blasting at the old rate into a 13x-slower link), and whether
   the gTFRC floor survives the move. *)

type direction = Down | Up

let dir_name = function
  | Down -> "wifi->3g->sat"
  | Up -> "sat->3g->wifi"

(* (rate Mb/s, one-way delay s) *)
let wifi = (20.0, 0.008)

let cellular = (1.5, 0.060)

let satellite = (2.0, 0.270)

let paths_of = function
  | Down -> [ wifi; cellular; satellite ]
  | Up -> [ satellite; cellular; wifi ]

let t_ho1 = 5.0

let t_ho2 = 10.0

let duration = 16.0

let g_mbps = 0.5

let policies : Tfrc.Handover.policy list = [ `Keep; `Reset; `Informed ]

type result = {
  pre_bps : float;  (** settled rate on the first path *)
  rec1 : float option;  (** recovery time after handover 1, None = > cap *)
  retx1 : int;  (** retransmissions in the 2 s after handover 1 *)
  rec2 : float option;
  retx2 : int;
  post_bps : float;  (** settled rate on the final path *)
  floor_min_bps : float;
      (** worst 1 s goodput window after the first handover (transients
          excluded) — the gTFRC floor holds iff this stays >= g *)
}

(* A policy has "recovered" once goodput over a sliding 1 s window
   reaches half the new path's capacity; the search is capped at 4.5 s
   (the inter-handover gap). *)
let recovery_cap = 4.5

let recovery ~rate ~at ~cap_bps =
  let rec find tau =
    if tau > recovery_cap then None
    else if rate ~from_:(at +. tau) ~until:(at +. tau +. 1.0) >= 0.5 *. cap_bps
    then Some tau
    else find (tau +. 0.25)
  in
  find 0.0

let run_one ~seed ~dir ~policy =
  let paths = paths_of dir in
  let sim, m = Common.mobile_path ~seed ~paths () in
  let topo = Netsim.Topology.mobile_net m in
  let agreed =
    Qtp.Profile.agreed_exn
      (Qtp.Profile.qtp_af ~g_bps:(Common.mbps g_mbps) ())
      (Qtp.Profile.anything ())
  in
  let _, delay0 = List.hd paths in
  let cfg =
    Qtp.Connection.config
      ~initial_rtt:(Float.max 0.05 (4.0 *. delay0))
      ~handover:policy agreed
  in
  let conn =
    Qtp.Connection.create ~sim ~endpoint:(Netsim.Topology.endpoint topo 0) cfg
  in
  Netsim.Topology.on_migrate m (fun idx ->
      Qtp.Connection.notify_migration conn ~link:(Common.declared_link m idx));
  Netsim.Topology.apply_schedule m [ (t_ho1, 1, `Drain); (t_ho2, 2, `Drain) ];
  let retx_at = Array.make 4 0 in
  let sample slot at =
    ignore
      (Engine.Sim.schedule_at sim at (fun () ->
           retx_at.(slot) <- Qtp.Connection.retransmissions conn))
  in
  sample 0 t_ho1;
  sample 1 (t_ho1 +. 2.0);
  sample 2 t_ho2;
  sample 3 (t_ho2 +. 2.0);
  Engine.Sim.run ~until:duration sim;
  let goodput = Qtp.Connection.goodput conn in
  let rate ~from_ ~until = Stats.Series.rate_bps goodput ~from_ ~until in
  let cap i = Common.mbps (fst (List.nth paths i)) in
  let floor_min =
    let worst = ref infinity in
    let scan from_ until =
      let t = ref from_ in
      while !t +. 1.0 <= until do
        worst := Float.min !worst (rate ~from_:!t ~until:(!t +. 1.0));
        t := !t +. 0.5
      done
    in
    scan (t_ho1 +. 1.5) t_ho2;
    scan (t_ho2 +. 1.5) duration;
    !worst
  in
  {
    pre_bps = rate ~from_:1.0 ~until:t_ho1;
    rec1 = recovery ~rate ~at:t_ho1 ~cap_bps:(cap 1);
    retx1 = retx_at.(1) - retx_at.(0);
    rec2 = recovery ~rate ~at:t_ho2 ~cap_bps:(cap 2);
    retx2 = retx_at.(3) - retx_at.(2);
    post_bps = rate ~from_:(t_ho2 +. 1.5) ~until:duration;
    floor_min_bps = floor_min;
  }

let cell_rec = function
  | Some tau -> Stats.Table.cell_f tau
  | None -> Printf.sprintf "> %.1f" recovery_cap

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        "E18: handover rate policies — one QTP_AF flow (g = 0.5 Mb/s) \
         migrating across WiFi (20 Mb/s, 16 ms RTT), cellular (1.5 Mb/s, \
         120 ms) and satellite (2 Mb/s, 540 ms) at t = 5 s and t = 10 s"
      ~columns:
        [
          ("direction", Stats.Table.Left);
          ("policy", Stats.Table.Left);
          ("pre (Mb/s)", Stats.Table.Right);
          ("rec1 (s)", Stats.Table.Right);
          ("retx1", Stats.Table.Right);
          ("rec2 (s)", Stats.Table.Right);
          ("retx2", Stats.Table.Right);
          ("post (Mb/s)", Stats.Table.Right);
          ("min/g", Stats.Table.Right);
        ]
  in
  List.iter
    (fun dir ->
      List.iter
        (fun policy ->
          let r = run_one ~seed ~dir ~policy in
          Stats.Table.add_row table
            [
              dir_name dir;
              Tfrc.Handover.policy_name policy;
              Stats.Table.cell_f (r.pre_bps /. 1e6);
              cell_rec r.rec1;
              Stats.Table.cell_i r.retx1;
              cell_rec r.rec2;
              Stats.Table.cell_i r.retx2;
              Stats.Table.cell_f (r.post_bps /. 1e6);
              Stats.Table.cell_f (r.floor_min_bps /. Common.mbps g_mbps);
            ])
        policies)
    [ Down; Up ];
  table
