(** E3 — rate smoothness (§3).

    Paper premise: "TFRC is considered as the current congestion control
    mechanism that offers the best trade-off between TCP fairness and
    the smooth throughput required by multimedia flows."  Measure the
    coefficient of variation of per-500ms throughput for TCP and TFRC on
    the same lossy path, across loss rates. *)

val run : ?seed:int -> unit -> Stats.Table.t

val run_tfrc : seed:int -> loss:float -> float * float
(** (CoV, mean rate in bits/s) for one TFRC run — exposed for tests. *)

val run_tcp : seed:int -> loss:float -> float * float
(** Same for the TCP baseline. *)
