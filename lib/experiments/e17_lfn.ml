(* Long-fat-network mixes: the three service profiles sharing one
   AF-class bottleneck at satellite-grade RTTs (250 and 500 ms).  The
   bandwidth-delay product puts thousands of packets in flight per
   flow, so the run-length scoreboard / receiver tracker / loss history
   and the packed wire codec carry the whole window on every feedback
   round — this experiment is the end-to-end witness that the large-BDP
   fast path sustains the paper's QoS story at RTTs where the
   per-packet representations used to dominate. *)

type proto = Af | Light | Tcp

let proto_name = function
  | Af -> "QTP_AF"
  | Light -> "QTP_light"
  | Tcp -> "TCP"

(* Long-RTT slow starts need tens of RTTs to converge: measure the
   back half of a 40 s run rather than Common's 5/60 window. *)
let duration = 40.0

let warmup = 15.0

type flow_result = {
  proto : proto;
  achieved_bps : float;
  window_pkts : float;  (** achieved rate expressed as packets per RTT *)
  retx : int;
}

let run_mix ~seed ~delay ~bottleneck_mbps =
  let rtt = 2.0 *. delay in
  let g_mbps = bottleneck_mbps /. 4.0 in
  (* Buffer the bottleneck at half a BDP so the AF class can absorb a
     full RTT of feedback lag without tail-dropping green packets. *)
  let bdp_pkts = Common.mbps bottleneck_mbps *. rtt /. (8.0 *. 1500.0) in
  let capacity_pkts = max 100 (int_of_float (0.5 *. bdp_pkts)) in
  let sim, topo =
    Common.af_dumbbell ~capacity_pkts ~seed ~n_flows:3 ~bottleneck_mbps
      ~bottleneck_delay:delay
      ~committed_mbps:[| g_mbps; 0.0; 0.0 |]
      ()
  in
  let mk_qtp i offer =
    let agreed = Qtp.Profile.agreed_exn offer (Qtp.Profile.anything ()) in
    let cfg = Qtp.Connection.config ~initial_rtt:rtt agreed in
    Qtp.Connection.create ~sim ~endpoint:(Netsim.Topology.endpoint topo i) cfg
  in
  let af = mk_qtp 0 (Qtp.Profile.qtp_af ~g_bps:(Common.mbps g_mbps) ()) in
  let light =
    mk_qtp 1
      (Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_full ] ())
  in
  let params = Tcp.Tcp_sender.default_params in
  let tcp =
    Tcp.Flow.create ~sim ~endpoint:(Netsim.Topology.endpoint topo 2) ~params ()
  in
  Engine.Sim.run ~until:duration sim;
  let measure series = Stats.Series.rate_bps series ~from_:warmup ~until:duration in
  let window_pkts achieved = achieved *. rtt /. (8.0 *. 1500.0) in
  let qtp proto conn =
    let achieved = measure (Qtp.Connection.goodput conn) in
    {
      proto;
      achieved_bps = achieved;
      window_pkts = window_pkts achieved;
      retx = Qtp.Connection.retransmissions conn;
    }
  in
  let tcp_achieved = measure (Tcp.Flow.goodput_series tcp) in
  ( g_mbps,
    [
      qtp Af af;
      qtp Light light;
      {
        proto = Tcp;
        achieved_bps = tcp_achieved;
        window_pkts = window_pkts tcp_achieved;
        retx = Tcp.Tcp_sender.retransmits (Tcp.Flow.sender tcp);
      };
    ] )

(* The last row's AF flow runs a >10k-packet window: the band the
   run-length representations exist for. *)
let configs = [ (0.125, 120.0); (0.25, 120.0); (0.25, 240.0); (0.25, 480.0) ]

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        "E17: large-BDP mixes — QTP_AF + QTP_light + TCP sharing one AF \
         bottleneck at 250/500 ms RTT (buffer = BDP/2)"
      ~columns:
        [
          ("RTT (ms)", Stats.Table.Right);
          ("btlneck (Mb/s)", Stats.Table.Right);
          ("protocol", Stats.Table.Left);
          ("achieved (Mb/s)", Stats.Table.Right);
          ("achieved/g", Stats.Table.Right);
          ("window (pkts)", Stats.Table.Right);
          ("retx", Stats.Table.Right);
        ]
  in
  List.iter
    (fun (delay, bottleneck_mbps) ->
      let g_mbps, flows = run_mix ~seed ~delay ~bottleneck_mbps in
      List.iter
        (fun r ->
          Stats.Table.add_row table
            [
              Stats.Table.cell_f ~decimals:0 (2.0 *. delay *. 1000.0);
              Stats.Table.cell_f ~decimals:0 bottleneck_mbps;
              proto_name r.proto;
              Stats.Table.cell_f (r.achieved_bps /. 1e6);
              (match r.proto with
              | Af ->
                  Stats.Table.cell_f (r.achieved_bps /. Common.mbps g_mbps)
              | Light | Tcp -> "-");
              Stats.Table.cell_f ~decimals:0 r.window_pkts;
              Stats.Table.cell_i r.retx;
            ])
        flows)
    configs;
  table
