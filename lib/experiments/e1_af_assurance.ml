let targets = [ 0.5; 1.0; 2.0; 3.0; 4.0 ]

let protos =
  [ Af_scenario.Tcp_newreno; Af_scenario.Qtp_af; Af_scenario.Tfrc_full_nofloor ]

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        "E1: achieved throughput vs negotiated AF target g (10 Mb/s RIO \
         bottleneck, 8 Mb/s unresponsive excess)"
      ~columns:
        [
          ("g (Mb/s)", Stats.Table.Right);
          ("protocol", Stats.Table.Left);
          ("achieved (Mb/s)", Stats.Table.Right);
          ("achieved/g", Stats.Table.Right);
          ("green drops", Stats.Table.Right);
          ("retx", Stats.Table.Right);
        ]
  in
  List.iter
    (fun g ->
      List.iter
        (fun proto ->
          let r = Af_scenario.run ~seed ~g_mbps:g ~proto () in
          Stats.Table.add_row table
            [
              Stats.Table.cell_f ~decimals:1 g;
              Af_scenario.proto_name proto;
              Stats.Table.cell_f (r.achieved_wire_bps /. 1e6);
              Stats.Table.cell_f (r.achieved_wire_bps /. Common.mbps g);
              Stats.Table.cell_i r.bottleneck_green_drops;
              Stats.Table.cell_i r.retransmissions;
            ])
        protos)
    targets;
  table
