let fwd_loss = 0.02

let rev_rates = [ 0.0; 0.1; 0.3 ]

let run_case ~seed ~light ~rev =
  let sim, topo =
    Common.lossy_path ~seed ~rate_mbps:10.0
      ~loss:(Common.bernoulli fwd_loss)
      ~rev_loss:(Common.bernoulli rev)
      ()
  in
  let offer =
    if light then
      Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_none ] ()
    else Qtp.Profile.qtp_tfrc ()
  in
  let responder =
    if light then Qtp.Profile.mobile_receiver () else Qtp.Profile.anything ()
  in
  let agreed = Qtp.Profile.agreed_exn offer responder in
  let conn =
    Qtp.Connection.create ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      (Qtp.Connection.config ~initial_rtt:0.2 agreed)
  in
  Engine.Sim.run ~until:Common.duration sim;
  ( Common.measured_rate (Qtp.Connection.arrivals conn) /. 1e6,
    Qtp.Connection.sender_loss_estimate conn )

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E15: robustness to feedback loss (%.0f%% forward loss; reverse \
            loss swept)"
           (fwd_loss *. 100.0))
      ~columns:
        [
          ("rev loss", Stats.Table.Right);
          ("plane", Stats.Table.Left);
          ("rate (Mb/s)", Stats.Table.Right);
          ("p at sender", Stats.Table.Right);
        ]
  in
  List.iter
    (fun rev ->
      List.iter
        (fun light ->
          let rate, p = run_case ~seed ~light ~rev in
          Stats.Table.add_row table
            [
              Stats.Table.cell_f ~decimals:2 rev;
              (if light then "QTP_light" else "standard");
              Stats.Table.cell_f rate;
              Stats.Table.cell_f ~decimals:4 p;
            ])
        [ false; true ])
    rev_rates;
  table
