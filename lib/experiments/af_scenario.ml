type proto = Tcp_newreno | Qtp_af | Tfrc_full_nofloor

let proto_name = function
  | Tcp_newreno -> "TCP"
  | Qtp_af -> "QTP_AF"
  | Tfrc_full_nofloor -> "TFRC+SACK (no floor)"

type result = {
  achieved_wire_bps : float;
  goodput_bps : float;
  retransmissions : int;
  bottleneck_green_drops : int;
  bottleneck_total_drops : int;
}

let run ~seed ~g_mbps ~proto ?(bottleneck_mbps = 10.0) ?(excess_mbps = 8.0)
    ?(n_excess_flows = 4) ?(link_loss = 0.0) ?(duration = Common.duration) () =
  let measure series =
    Stats.Series.rate_bps series
      ~from_:(Float.min Common.warmup (0.2 *. duration))
      ~until:duration
  in
  let n_flows = 1 + n_excess_flows in
  let committed = Array.make n_flows 0.0 in
  committed.(0) <- g_mbps;
  let sim = Engine.Sim.create ~seed () in
  let qdisc_rng = Engine.Sim.split_rng sim in
  let bottleneck =
    Netsim.Topology.spec
      ~rate_bps:(Common.mbps bottleneck_mbps)
      ~delay:0.03
      ~qdisc:(fun () -> Common.af_rio ~rng:(Engine.Rng.split qdisc_rng) ())
      ~loss:(fun () ->
        if link_loss > 0.0 then
          Netsim.Loss_model.bernoulli ~p:link_loss
            ~rng:(Engine.Rng.split qdisc_rng)
        else Netsim.Loss_model.none)
      ()
  in
  let topo =
    Netsim.Topology.dumbbell ~sim ~n_flows ~bottleneck
      ~committed_rates:(Array.map Common.mbps committed)
      ()
  in
  Common.instrument topo;
  let rng = Engine.Sim.split_rng sim in
  (* Unresponsive excess load, spread over several Poisson aggregates so
     it does not synchronise with anything. *)
  let per_flow = Common.mbps (excess_mbps /. float_of_int n_excess_flows) in
  for i = 1 to n_excess_flows do
    let ep = Netsim.Topology.endpoint topo i in
    Common.sink_background ep;
    ignore
      (Workload.Background.poisson ~sim
         ~sink:ep.Netsim.Topology.to_receiver ~flow_id:i
         ~rng:(Engine.Rng.split rng) ~rate_bps:per_flow ~packet_size:1000 ())
  done;
  let ep = Netsim.Topology.endpoint topo 0 in
  let finish goodput_bps ~wire ~payload ~retx =
    let qd = Netsim.Link.qdisc topo.Netsim.Topology.bottleneck in
    let st = Netsim.Qdisc.stats qd in
    {
      achieved_wire_bps =
        goodput_bps *. float_of_int wire /. float_of_int payload;
      goodput_bps;
      retransmissions = retx;
      bottleneck_green_drops = st.Netsim.Qdisc.dropped_green;
      bottleneck_total_drops = st.Netsim.Qdisc.dropped;
    }
  in
  match proto with
  | Tcp_newreno ->
      let params = Tcp.Tcp_sender.default_params in
      let flow = Tcp.Flow.create ~sim ~endpoint:ep ~params () in
      Engine.Sim.run ~until:duration sim;
      let rate = measure (Tcp.Flow.goodput_series flow) in
      finish rate
        ~wire:(Tcp.Tcp_wire.seg_size ~payload:params.packet_size)
        ~payload:params.packet_size
        ~retx:(Tcp.Tcp_sender.retransmits (Tcp.Flow.sender flow))
  | Qtp_af | Tfrc_full_nofloor ->
      let offer =
        match proto with
        | Qtp_af -> Qtp.Profile.qtp_af ~g_bps:(Common.mbps g_mbps) ()
        | Tcp_newreno | Tfrc_full_nofloor -> Qtp.Profile.qtp_full ()
      in
      let agreed = Qtp.Profile.agreed_exn offer (Qtp.Profile.anything ()) in
      let cfg = Qtp.Connection.config ~initial_rtt:0.2 agreed in
      let conn = Qtp.Connection.create ~sim ~endpoint:ep cfg in
      Engine.Sim.run ~until:duration sim;
      let rate = measure (Qtp.Connection.goodput conn) in
      let payload = 1500 - Packet.Header.data_header_bytes in
      finish rate ~wire:1500 ~payload
        ~retx:(Qtp.Connection.retransmissions conn)
