let group_sizes = [ 1; 2; 4; 8 ]

let run_one ~seed ~n =
  let n_flows = 2 * n in
  let sim, topo =
    Common.plain_dumbbell ~seed ~n_flows ~bottleneck_mbps:10.0 ()
  in
  (* Flows 0..n-1: TFRC; flows n..2n-1: TCP. *)
  let tfrc_conns =
    List.init n (fun i ->
        let agreed =
          Qtp.Profile.agreed_exn (Qtp.Profile.qtp_tfrc ())
            (Qtp.Profile.anything ())
        in
        Qtp.Connection.create ~sim
          ~endpoint:(Netsim.Topology.endpoint topo i)
          (Qtp.Connection.config ~initial_rtt:0.2 agreed))
  in
  let tcp_flows =
    List.init n (fun i ->
        Tcp.Flow.create ~sim ~endpoint:(Netsim.Topology.endpoint topo (n + i)) ())
  in
  Engine.Sim.run ~until:Common.duration sim;
  let tfrc_rates =
    Array.of_list
      (List.map
         (fun c -> Common.measured_rate (Qtp.Connection.arrivals c))
         tfrc_conns)
  in
  let tcp_rates =
    Array.of_list
      (List.map
         (fun f ->
           (* Scale payload goodput to wire bytes for a fair comparison. *)
           Common.measured_rate (Tcp.Flow.goodput_series f) *. 1500.0 /. 1460.0)
         tcp_flows)
  in
  (tfrc_rates, tcp_rates)

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        "E4: TCP-friendliness — n TFRC vs n TCP on a shared 10 Mb/s droptail \
         bottleneck"
      ~columns:
        [
          ("n per group", Stats.Table.Right);
          ("TFRC agg (Mb/s)", Stats.Table.Right);
          ("TCP agg (Mb/s)", Stats.Table.Right);
          ("TFRC/TCP ratio", Stats.Table.Right);
          ("Jain index", Stats.Table.Right);
        ]
  in
  List.iter
    (fun n ->
      let tfrc, tcp = run_one ~seed ~n in
      let ratio = Stats.Fairness.throughput_ratio tfrc tcp in
      let jain = Stats.Fairness.jain (Array.append tfrc tcp) in
      let agg a = Array.fold_left ( +. ) 0.0 a /. 1e6 in
      Stats.Table.add_row table
        [
          Stats.Table.cell_i n;
          Stats.Table.cell_f (agg tfrc);
          Stats.Table.cell_f (agg tcp);
          Stats.Table.cell_f ratio;
          Stats.Table.cell_f ~decimals:3 jain;
        ])
    group_sizes;
  table
