(** E20: trunked flow aggregation vs per-flow TCP in one AF class.

    A 10 Mb/s RIO bottleneck carries 8 Mb/s of unresponsive excess
    load plus a reserved g = 4 Mb/s aggregate shared by 24 user
    micro-flows.  Two ways to carry them: ONE gTFRC connection with
    the whole g committed, fronted by a {!Trunk.Mux} (DRR and FIFO
    intra-trunk scheduling), or 24 per-flow TCP connections each
    committed g/24.  The table reports the aggregate achieved rate
    against g and the Jain fairness index across the 24 users'
    delivered bytes — the trunk holds the floor the fragmented TCP
    reservations cannot, and DRR keeps the users near-equal while
    they share it. *)

val run : ?seed:int -> unit -> Stats.Table.t
