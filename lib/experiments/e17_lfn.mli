(** E17: large-BDP (long-fat-network) profile mixes.

    One QTP_AF flow (committed to a quarter of the bottleneck), one
    QTP_light flow and one TCP NewReno flow share an AF-class RIO
    bottleneck at 250 and 500 ms RTTs with the buffer sized to half the
    bandwidth-delay product.  Windows run to thousands of packets per
    flow, exercising the run-length SACK state and the packed wire
    codec end-to-end: QTP_AF must still clear its assurance while
    QTP_light and TCP split the excess. *)

val run : ?seed:int -> unit -> Stats.Table.t
