let loss = 0.02

let run_case ~seed ~light ~selfish_factor =
  let sim, topo =
    Common.lossy_path ~seed ~rate_mbps:10.0 ~loss:(Common.bernoulli loss) ()
  in
  let offer =
    if light then Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_none ] ()
    else Qtp.Profile.qtp_tfrc ()
  in
  let agreed = Qtp.Profile.agreed_exn offer (Qtp.Profile.anything ()) in
  let cfg =
    Qtp.Connection.config ~initial_rtt:0.2 ~selfish_p_factor:selfish_factor
      agreed
  in
  let conn =
    Qtp.Connection.create ~sim ~endpoint:(Netsim.Topology.endpoint topo 0) cfg
  in
  Engine.Sim.run ~until:Common.duration sim;
  ( Common.measured_rate (Qtp.Connection.arrivals conn) /. 1e6,
    Qtp.Connection.sender_loss_estimate conn )

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E7: selfish receiver — achieved rate when the receiver \
            under-reports loss (path loss %.0f%%, fair TFRC rate is the \
            honest row)"
           (loss *. 100.0))
      ~columns:
        [
          ("plane", Stats.Table.Left);
          ("receiver behaviour", Stats.Table.Left);
          ("rate (Mb/s)", Stats.Table.Right);
          ("p at sender", Stats.Table.Right);
          ("inflation vs honest", Stats.Table.Right);
        ]
  in
  let honest_std, _ = run_case ~seed ~light:false ~selfish_factor:1.0 in
  let add ~plane ~behaviour ~light ~factor =
    let rate, p = run_case ~seed ~light ~selfish_factor:factor in
    let baseline = honest_std in
    Stats.Table.add_row table
      [
        plane;
        behaviour;
        Stats.Table.cell_f rate;
        Stats.Table.cell_f ~decimals:4 p;
        Stats.Table.cell_f (rate /. baseline);
      ]
  in
  add ~plane:"standard" ~behaviour:"honest" ~light:false ~factor:1.0;
  add ~plane:"standard" ~behaviour:"selfish (p x0.25)" ~light:false ~factor:0.25;
  add ~plane:"standard" ~behaviour:"selfish (p = 0)" ~light:false ~factor:0.0;
  add ~plane:"QTP_light" ~behaviour:"honest" ~light:true ~factor:1.0;
  add ~plane:"QTP_light" ~behaviour:"selfish (ignored)" ~light:true ~factor:0.0;
  table
