(** E10 — versatility: the negotiated composition matrix (§1).

    Every profile offer is composed against every responder through the
    in-band SYN / SYN-ACK / ACK handshake; each established composition
    must move data and honour its contract (full ⇒ nothing skipped,
    none ⇒ no retransmissions).  Incompatible pairs must fail cleanly —
    e.g. QTP_AF (standard plane only) against a light-only mobile
    receiver. *)

val run : ?seed:int -> unit -> Stats.Table.t
