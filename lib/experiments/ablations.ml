let n_packets = 20_000

let pkt_gap = 0.001

let rtt = 0.05

let feed_history ~pattern ~group_rtt =
  let lh = Tfrc.Loss_history.create () in
  Array.iteri
    (fun i alive ->
      if alive then
        Tfrc.Loss_history.on_packet lh ~seq:(Packet.Serial.of_int i)
          ~arrival:(float_of_int i *. pkt_gap)
          ~rtt:group_rtt ~is_retx:false)
    pattern;
  lh

let loss_event_grouping ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        "Ablation: loss-event grouping (RTT window) vs per-loss accounting \
         under bursty loss"
      ~columns:
        [
          ("loss process", Stats.Table.Left);
          ("losses", Stats.Table.Right);
          ("events (grouped)", Stats.Table.Right);
          ("p grouped", Stats.Table.Right);
          ("p ungrouped", Stats.Table.Right);
          ("eq rate grouped (Mb/s)", Stats.Table.Right);
          ("eq rate ungrouped (Mb/s)", Stats.Table.Right);
        ]
  in
  List.iter
    (fun (name, model) ->
      let rng = Engine.Rng.create ~seed in
      let lm =
        match model with
        | `Bernoulli p -> Common.bernoulli p rng
        | `Gilbert (l, b) -> Common.gilbert ~loss:l ~burstiness:b rng
      in
      let pattern =
        Array.init n_packets (fun _ -> not (Netsim.Loss_model.drops lm))
      in
      let losses =
        Array.fold_left (fun acc b -> if b then acc else acc + 1) 0 pattern
      in
      let grouped = feed_history ~pattern ~group_rtt:rtt in
      (* group_rtt = 0: every loss lands outside the previous event's
         window, so each becomes its own event. *)
      let ungrouped = feed_history ~pattern ~group_rtt:0.0 in
      let p_g = Tfrc.Loss_history.loss_event_rate grouped in
      let p_u = Tfrc.Loss_history.loss_event_rate ungrouped in
      let eq p =
        if p <= 0.0 then nan
        else Tfrc.Equation.rate_bps ~s:1500 ~r:rtt ~p () /. 1e6
      in
      Stats.Table.add_row table
        [
          name;
          Stats.Table.cell_i losses;
          Stats.Table.cell_i (Tfrc.Loss_history.loss_events grouped);
          Stats.Table.cell_f ~decimals:4 p_g;
          Stats.Table.cell_f ~decimals:4 p_u;
          Stats.Table.cell_f (eq p_g);
          Stats.Table.cell_f (eq p_u);
        ])
    [
      ("bernoulli 2%", `Bernoulli 0.02);
      ("gilbert 2% mild", `Gilbert (0.02, 0.3));
      ("gilbert 2% bursty", `Gilbert (0.02, 0.8));
      ("gilbert 5% bursty", `Gilbert (0.05, 0.8));
    ];
  table

let history_discounting ?(seed = 42) () =
  (* 2% loss for the first quarter of the trace, then a clean path; watch
     how fast p decays with and without §5.5 discounting. *)
  let rng = Engine.Rng.create ~seed in
  let lossy_until = n_packets / 4 in
  let pattern =
    Array.init n_packets (fun i ->
        if i < lossy_until then not (Engine.Rng.chance rng 0.02) else true)
  in
  let feed ~discount ~upto =
    let lh = Tfrc.Loss_history.create ~discount () in
    for i = 0 to upto - 1 do
      if pattern.(i) then
        Tfrc.Loss_history.on_packet lh ~seq:(Packet.Serial.of_int i)
          ~arrival:(float_of_int i *. pkt_gap)
          ~rtt ~is_retx:false
    done;
    Tfrc.Loss_history.loss_event_rate lh
  in
  let table =
    Stats.Table.create
      ~title:
        "Ablation: history discounting — p decay after the path turns clean \
         (loss stops at packet 5000)"
      ~columns:
        [
          ("packets seen", Stats.Table.Right);
          ("p with discounting", Stats.Table.Right);
          ("p without", Stats.Table.Right);
          ("ratio without/with", Stats.Table.Right);
        ]
  in
  List.iter
    (fun upto ->
      let p_d = feed ~discount:true ~upto in
      let p_n = feed ~discount:false ~upto in
      Stats.Table.add_row table
        [
          Stats.Table.cell_i upto;
          Stats.Table.cell_f ~decimals:5 p_d;
          Stats.Table.cell_f ~decimals:5 p_n;
          Stats.Table.cell_f (if p_d > 0.0 then p_n /. p_d else nan);
        ])
    [ 5_000; 6_000; 8_000; 12_000; 20_000 ];
  table

let sack_block_budget ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        "Ablation: SACK blocks per report vs sender-side estimation and rate \
         (QTP_light, per-RTT reports, 5% loss)"
      ~columns:
        [
          ("blocks", Stats.Table.Right);
          ("rate (Mb/s)", Stats.Table.Right);
          ("p at sender", Stats.Table.Right);
          ("retx", Stats.Table.Right);
          ("fb bytes", Stats.Table.Right);
        ]
  in
  List.iter
    (fun blocks ->
      let sim, topo =
        Common.lossy_path ~seed ~rate_mbps:10.0 ~loss:(Common.bernoulli 0.05)
          ()
      in
      let agreed =
        Qtp.Profile.agreed_exn
          (Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_partial ] ())
          (Qtp.Profile.mobile_receiver ())
      in
      let cfg =
        Qtp.Connection.config ~initial_rtt:0.2 ~sack_blocks:blocks agreed
      in
      let conn =
        Qtp.Connection.create ~sim
          ~endpoint:(Netsim.Topology.endpoint topo 0)
          cfg
      in
      Engine.Sim.run ~until:Common.duration sim;
      Stats.Table.add_row table
        [
          Stats.Table.cell_i blocks;
          Stats.Table.cell_f
            (Common.measured_rate (Qtp.Connection.arrivals conn) /. 1e6);
          Stats.Table.cell_f ~decimals:4
            (Qtp.Connection.sender_loss_estimate conn);
          Stats.Table.cell_i (Qtp.Connection.retransmissions conn);
          Stats.Table.cell_i (Qtp.Connection.feedback_bytes conn);
        ])
    [ 1; 2; 4; 8 ];
  table
