(** E15 — feedback-path loss robustness (§3, hardening).

    The light plane's apparent weak point: SACK reports can be lost, and
    the sender's loss reconstruction depends on them.  The design
    defences are (a) the cumulative acknowledgment and CE counter lose
    no information across dropped reports, and (b) block coverage is
    re-sent until superseded.  Sweep the reverse-path loss rate with 2 %
    forward loss and compare both planes' achieved rate and the
    sender-side loss estimate against the clean-feedback baseline. *)

val run : ?seed:int -> unit -> Stats.Table.t
