(** E16 — multi-bottleneck (parking-lot) fairness (§2 extension).

    The multi-hop scenarios the paper's wireless citations study have a
    wired analogue: one long flow crosses three 10 Mb/s hops, each hop
    also carrying one single-hop cross flow.  A flow-rate-fair
    allocation gives everyone 5 Mb/s; congestion controllers that react
    per-bottleneck (both TCP and TFRC) instead push the long flow below
    its fair share because it pays at every hop.  The table shows how
    the TFRC family compares with TCP when it is the long flow. *)

val run : ?seed:int -> unit -> Stats.Table.t
