(** The DiffServ/AF assurance scenario shared by E1 and E2.

    One flow under test crosses an AF-class RIO bottleneck with a
    committed (edge-marked) rate [g]; unresponsive Poisson excess
    traffic loads the class beyond its capacity.  The question is
    whether the transport actually collects the assured [g]. *)

type proto =
  | Tcp_newreno  (** the baseline that "fails to deliver this QoS" *)
  | Qtp_af  (** gTFRC (floor at g) + full reliability *)
  | Tfrc_full_nofloor
      (** ablation: same composition but without the gTFRC floor *)

val proto_name : proto -> string

type result = {
  achieved_wire_bps : float;  (** delivered goodput scaled to wire bytes *)
  goodput_bps : float;  (** application payload rate *)
  retransmissions : int;
  bottleneck_green_drops : int;
  bottleneck_total_drops : int;
}

val run :
  seed:int ->
  g_mbps:float ->
  proto:proto ->
  ?bottleneck_mbps:float ->
  ?excess_mbps:float ->
  ?n_excess_flows:int ->
  ?link_loss:float ->
  ?duration:float ->
  unit ->
  result
(** [duration] (default {!Common.duration}) is the virtual run length —
    the examples' smoke tests shorten it.  [link_loss] adds random
    non-congestion loss on the bottleneck (a
    lossy AF path, e.g. a wireless segment inside the class): green
    packets die too, TFRC's equation share drops below [g], and only the
    gTFRC floor preserves the assurance. *)
