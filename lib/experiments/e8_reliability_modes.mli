(** E8 — the reliability spectrum SACK composition buys (§3).

    A 2 Mb/s CBR media stream crosses a bursty (Gilbert–Elliott) lossy
    path under each negotiable reliability mode.  Full reliability
    delivers everything at the price of delivery delay; partial
    reliability bounds the delay by abandoning late repairs; no
    reliability loses exactly the channel loss.  Delivery-delay
    percentiles make the trade-off visible. *)

val run : ?seed:int -> unit -> Stats.Table.t
