let g_mbps = 3.0

let excess_levels = [ 4.0; 6.0; 8.0; 10.0; 12.0; 14.0 ]

(* Rows with non-congestion loss on the bottleneck itself: the lossy-AF
   regime (e.g. a wireless segment inside the class).  Here green
   packets die too and only the gTFRC floor keeps the assurance. *)
let lossy_rows = [ (8.0, 0.01); (8.0, 0.03); (8.0, 0.05) ]

let protos =
  [ Af_scenario.Tcp_newreno; Af_scenario.Qtp_af; Af_scenario.Tfrc_full_nofloor ]

let add_rows table ~seed ~excess ~link_loss =
  List.iter
    (fun proto ->
      let r =
        Af_scenario.run ~seed ~g_mbps ~proto ~excess_mbps:excess ~link_loss ()
      in
      Stats.Table.add_row table
        [
          Stats.Table.cell_f ~decimals:0 excess;
          Stats.Table.cell_f ~decimals:2 link_loss;
          Af_scenario.proto_name proto;
          Stats.Table.cell_f (r.Af_scenario.achieved_wire_bps /. 1e6);
          Stats.Table.cell_f (r.Af_scenario.achieved_wire_bps /. Common.mbps g_mbps);
          Stats.Table.cell_i r.Af_scenario.bottleneck_green_drops;
        ])
    protos

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E2: assurance under various conditions (g = %.1f Mb/s, 10 Mb/s \
            RIO bottleneck; bottom rows add link loss = lossy AF path)"
           g_mbps)
      ~columns:
        [
          ("excess (Mb/s)", Stats.Table.Right);
          ("link loss", Stats.Table.Right);
          ("protocol", Stats.Table.Left);
          ("achieved (Mb/s)", Stats.Table.Right);
          ("achieved/g", Stats.Table.Right);
          ("green drops", Stats.Table.Right);
        ]
  in
  List.iter (fun excess -> add_rows table ~seed ~excess ~link_loss:0.0) excess_levels;
  List.iter (fun (excess, loss) -> add_rows table ~seed ~excess ~link_loss:loss) lossy_rows;
  table
