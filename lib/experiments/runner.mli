(** Registry of all reproducible experiments. *)

type entry = {
  id : string;  (** e.g. "e1" *)
  title : string;
  claim : string;  (** the paper claim being validated *)
  run : seed:int -> Stats.Table.t;
}

val all : entry list
(** E1..E10 then the ablations, in order. *)

val find : string -> entry option

val run_all :
  ?seed:int ->
  ?ids:string list ->
  ?format:[ `Table | `Csv ] ->
  ?checked:bool ->
  ?trace:bool ->
  ?jobs:int ->
  out:Format.formatter ->
  unit ->
  unit
(** Run (a subset of) the suite, printing each table (or CSV blocks with
    [~format:`Csv]).  With [~checked:true] each entry runs under
    {!Common.with_checked}, raising {!Analysis.Invariants.Violation} on
    the first protocol-invariant violation.  With [~trace:true] each
    entry runs under {!Common.with_trace} and (in table format) a
    per-entry event count and canonical digest is printed.

    Entries are fanned over an {!Engine.Pool} of [jobs] workers
    (default {!Engine.Pool.default_jobs}); output is buffered per entry
    and emitted in registry order, so the bytes printed — including the
    prefix before a [~checked] violation is re-raised — are identical
    at any [jobs]. *)
