(** E7 — protection against selfish receivers (§3).

    A selfish standard-plane receiver (Georg & Gorinsky) under-reports
    the loss event rate to make the sender exceed its fair share.  With
    QTP_light the sender computes [p] itself from SACK coverage, so the
    lie has no channel.  Rows show the sending rate obtained by honest
    and lying receivers on both planes over the same 2%-loss path. *)

val run : ?seed:int -> unit -> Stats.Table.t
