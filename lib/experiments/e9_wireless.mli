(** E9 — rate-based congestion control over wireless-style loss (§2).

    Motivating citation of the paper: TCP performs poorly over
    wireless/multi-hop paths while rate-controlled congestion control
    behaves well.  Sweep the stationary non-congestion loss rate of a
    bursty Gilbert–Elliott link and compare throughput for TCP, plain
    TFRC, and QTP_light with partial reliability. *)

val run : ?seed:int -> unit -> Stats.Table.t
