(** E5 — receiver processing & communication load (§3).

    Paper claim: shifting loss estimation to the sender "allows the
    receiver load to be dramatically decreased", relieving "light"
    mobile clients.  Same lossy path, same duration: a standard RFC 3448
    receiver vs the QTP_light receiver, instrumented with the
    operation-count cost model.  Also reports where the work went (the
    sender) and the feedback traffic each plane generates. *)

val run : ?seed:int -> unit -> Stats.Table.t
