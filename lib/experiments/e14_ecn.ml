let red_params =
  {
    Netsim.Red.min_th = 8.0;
    max_th = 25.0;
    max_p = 0.1;
    w_q = 0.002;
    gentle = true;
    idle_pkt_time = 1500.0 *. 8.0 /. 10e6;
  }

let run_case ~seed ~light ~ecn =
  let sim = Engine.Sim.create ~seed () in
  let rng = Engine.Sim.split_rng sim in
  let forward =
    Netsim.Topology.spec ~rate_bps:10e6 ~delay:0.04
      ~qdisc:(fun () ->
        Netsim.Qdisc.red ~capacity_pkts:60 ~ecn ~params:red_params
          ~rng:(Engine.Rng.split rng) ())
      ()
  in
  let topo = Netsim.Topology.duplex_path ~sim ~forward () in
  Common.instrument topo;
  let offer =
    if light then
      Qtp.Profile.qtp_light ~ecn
        ~reliability:[ Qtp.Capabilities.R_full ] ()
    else Qtp.Profile.qtp_full ~ecn ()
  in
  let responder =
    if light then Qtp.Profile.mobile_receiver () else Qtp.Profile.anything ()
  in
  let agreed = Qtp.Profile.agreed_exn offer responder in
  let conn =
    Qtp.Connection.create ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      (Qtp.Connection.config ~initial_rtt:0.2 agreed)
  in
  Engine.Sim.run ~until:Common.duration sim;
  let st = Netsim.Qdisc.stats (Netsim.Link.qdisc topo.Netsim.Topology.bottleneck) in
  let delays = Qtp.Connection.delivery_delays conn in
  let p99 =
    if Array.length delays = 0 then nan
    else 1000.0 *. Stats.Summary.percentile delays 0.99
  in
  ( Common.measured_rate (Qtp.Connection.goodput conn) /. 1e6,
    st.Netsim.Qdisc.dropped,
    st.Netsim.Qdisc.ce_marked,
    Qtp.Connection.retransmissions conn,
    p99 )

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        "E14: ECN vs drop-based congestion signalling (10 Mb/s RED \
         bottleneck, full reliability)"
      ~columns:
        [
          ("plane", Stats.Table.Left);
          ("signalling", Stats.Table.Left);
          ("goodput (Mb/s)", Stats.Table.Right);
          ("queue drops", Stats.Table.Right);
          ("CE marks", Stats.Table.Right);
          ("retx", Stats.Table.Right);
          ("delay p99 (ms)", Stats.Table.Right);
        ]
  in
  List.iter
    (fun light ->
      List.iter
        (fun ecn ->
          let goodput, drops, marks, retx, p99 = run_case ~seed ~light ~ecn in
          Stats.Table.add_row table
            [
              (if light then "light" else "standard");
              (if ecn then "ECN marks" else "drops");
              Stats.Table.cell_f goodput;
              Stats.Table.cell_i drops;
              Stats.Table.cell_i marks;
              Stats.Table.cell_i retx;
              Stats.Table.cell_f ~decimals:1 p99;
            ])
        [ false; true ])
    [ false; true ];
  table
