(* Handover under in-network faults: QTP_light with full reliability
   rides the downgrade path sequence (WiFi -> cellular -> satellite)
   while a Mangler reorders, duplicates or corrupts frames on every
   path, and the second migration is a hard [`Cut] that drops the whole
   flight.  Whatever the policy does to the rate, the reliability plane
   must still deliver every distinct segment and close cleanly — the
   table is the end-to-end witness that mobility composes with the
   fault machinery. *)

let paths = [ (20.0, 0.008); (1.5, 0.060); (2.0, 0.270) ]

let schedule : Netsim.Topology.handover_schedule =
  [ (3.0, 1, `Drain); (6.0, 2, `Cut) ]

let duration = 9.0

(* The satellite leg's RTT is ~0.54 s and CLOSE retries back off, so
   give the close exchange an ample drain horizon. *)
let drain = 60.0

let manglers =
  [
    ("clean", Netsim.Mangler.none);
    ("reorder", Netsim.Mangler.profile ~p_reorder:0.05 ~reorder_max_hold:4 ());
    ("duplicate", Netsim.Mangler.profile ~p_duplicate:0.05 ());
    ("corrupt", Netsim.Mangler.profile ~p_corrupt:0.02 ());
    ( "all",
      Netsim.Mangler.profile ~p_reorder:0.03 ~reorder_max_hold:4
        ~p_duplicate:0.02 ~p_corrupt:0.01 () );
  ]

let policies : Tfrc.Handover.policy list = [ `Keep; `Reset; `Informed ]

let run_one ~seed ~mangle ~policy =
  let sim, m = Common.mobile_path ~seed ~paths ~mangle () in
  let topo = Netsim.Topology.mobile_net m in
  let agreed =
    Qtp.Profile.agreed_exn
      (Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_full ] ())
      (Qtp.Profile.anything ())
  in
  let cfg = Qtp.Connection.config ~initial_rtt:0.05 ~handover:policy agreed in
  let conn =
    Qtp.Connection.create ~sim ~endpoint:(Netsim.Topology.endpoint topo 0) cfg
  in
  Netsim.Topology.on_migrate m (fun idx ->
      Qtp.Connection.notify_migration conn ~link:(Common.declared_link m idx));
  Netsim.Topology.apply_schedule m schedule;
  Engine.Sim.run ~until:duration sim;
  Qtp.Connection.close conn;
  Engine.Sim.run ~until:(duration +. drain) sim;
  conn

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        "E19: handover under faults — QTP_light (full reliability) across \
         WiFi -> cellular -> satellite with a drain handover at 3 s and a \
         cut at 6 s, mangler active on every path"
      ~columns:
        [
          ("mangler", Stats.Table.Left);
          ("policy", Stats.Table.Left);
          ("goodput (Mb/s)", Stats.Table.Right);
          ("sent", Stats.Table.Right);
          ("retx", Stats.Table.Right);
          ("delivered", Stats.Table.Right);
          ("close", Stats.Table.Left);
          ("reliable", Stats.Table.Left);
        ]
  in
  List.iter
    (fun (mname, mangle) ->
      List.iter
        (fun policy ->
          let conn = run_one ~seed ~mangle ~policy in
          let sent = Qtp.Connection.data_sent conn in
          let delivered = Qtp.Connection.delivered conn in
          let closed =
            match Qtp.Connection.state conn with
            | Qtp.Connection.Closed -> true
            | _ -> false
          in
          let reliable =
            closed && delivered = sent
            && Qtp.Connection.skipped conn = 0
            && Qtp.Connection.abandoned conn = 0
          in
          Stats.Table.add_row table
            [
              mname;
              Tfrc.Handover.policy_name policy;
              Stats.Table.cell_f
                (Stats.Series.rate_bps
                   (Qtp.Connection.goodput conn)
                   ~from_:1.0 ~until:duration
                /. 1e6);
              Stats.Table.cell_i sent;
              Stats.Table.cell_i (Qtp.Connection.retransmissions conn);
              Stats.Table.cell_i delivered;
              (if closed then "clean" else "STUCK");
              (if reliable then "ok" else "LOST");
            ])
        policies)
    manglers;
  table
