let buffer_pkts = 400

let pkt_delay_ms pkts = pkts *. 1500.0 *. 8.0 /. 10e6 *. 1000.0

let run_one ~seed ~proto =
  let sim, topo =
    Common.plain_dumbbell ~seed ~n_flows:1 ~bottleneck_mbps:10.0
      ~buffer_pkts ()
  in
  let monitor =
    Netsim.Monitor.start ~sim
      ~qdisc:(Netsim.Link.qdisc topo.Netsim.Topology.bottleneck)
      ~interval:0.01 ~until:Common.duration ()
  in
  let ep = Netsim.Topology.endpoint topo 0 in
  (match proto with
  | `Tcp -> ignore (Tcp.Flow.create ~sim ~endpoint:ep ())
  | `Tfrc ->
      let agreed =
        Qtp.Profile.agreed_exn (Qtp.Profile.qtp_tfrc ())
          (Qtp.Profile.anything ())
      in
      ignore
        (Qtp.Connection.create ~sim ~endpoint:ep
           (Qtp.Connection.config ~initial_rtt:0.2 agreed)));
  Engine.Sim.run ~until:Common.duration sim;
  let samples = Netsim.Monitor.samples_pkts monitor in
  (* Skip the slow-start warmup (first 10 s). *)
  let steady =
    Array.sub samples
      (Stdlib.min (Array.length samples - 1) 1000)
      (Stdlib.max 1 (Array.length samples - 1000))
  in
  let s = Stats.Summary.of_array steady in
  let p95 = Stats.Summary.percentile steady 0.95 in
  (s, p95)

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E13: standing queue in a deep buffer (10 Mb/s, %d-packet \
            droptail, 10 ms samples, warmup skipped)"
           buffer_pkts)
      ~columns:
        [
          ("protocol", Stats.Table.Left);
          ("mean occupancy (pkts)", Stats.Table.Right);
          ("stddev", Stats.Table.Right);
          ("p95 (pkts)", Stats.Table.Right);
          ("mean queue delay (ms)", Stats.Table.Right);
          ("p95 delay (ms)", Stats.Table.Right);
        ]
  in
  List.iter
    (fun (name, proto) ->
      let s, p95 = run_one ~seed ~proto in
      Stats.Table.add_row table
        [
          name;
          Stats.Table.cell_f s.Stats.Summary.mean;
          Stats.Table.cell_f s.Stats.Summary.stddev;
          Stats.Table.cell_f p95;
          Stats.Table.cell_f (pkt_delay_ms s.Stats.Summary.mean);
          Stats.Table.cell_f (pkt_delay_ms p95);
        ])
    [ ("TCP", `Tcp); ("TFRC", `Tfrc) ];
  table
