let mbps x = x *. 1e6

(* ------------------------------------------------------------------ *)
(* Checked mode: an ambient invariant checker that topology builders
   tap into.  [with_checked ~checked:true run] installs the checker and
   the {!Qtp.Inspect} hooks around [run]; every builder below calls
   {!instrument} so any topology created inside [run] feeds the
   checker.  The run raises {!Analysis.Invariants.Violation} if any
   protocol invariant was broken. *)

(* Domain-local: Runner.run_all fans experiments over Engine.Pool, and
   each domain's run must feed its own checker. *)
let active : Analysis.Invariants.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let instrument (topo : Netsim.Topology.t) =
  match !(Domain.DLS.get active) with
  | None -> ()
  | Some checker -> Analysis.Observe.instrument checker topo

let with_checked ~checked run =
  if not checked then run ()
  else
    Analysis.Observe.with_checker (fun checker ->
        let slot = Domain.DLS.get active in
        slot := Some checker;
        Fun.protect ~finally:(fun () -> slot := None) run)

(* Trace mode mirrors checked mode: install the ambient flight recorder
   around the run, return it alongside the result. *)
let with_trace ~trace run =
  if not trace then (run (), None)
  else
    let x, recorder = Trace.Recorder.with_recorder run in
    (x, Some recorder)

let warmup = 5.0

let duration = 60.0

let red_params ~min_th ~max_th ~max_p =
  {
    Netsim.Red.min_th;
    max_th;
    max_p;
    w_q = 0.002;
    gentle = true;
    idle_pkt_time = 1500.0 *. 8.0 /. 10_000_000.0;
  }

(* RED thresholds scale with the queue: 40/70% of capacity for the
   in-profile curve and 10/30% for out-of-profile, which reproduces the
   historical 40/70 and 10/30-packet thresholds at the default
   100-packet queue while letting LFN scenarios deepen the buffer to
   match their bandwidth-delay product. *)
let af_rio ?(capacity_pkts = 100) ~rng () =
  let c = float_of_int capacity_pkts in
  Netsim.Qdisc.rio ~capacity_pkts
    ~in_params:(red_params ~min_th:(0.4 *. c) ~max_th:(0.7 *. c) ~max_p:0.02)
    ~out_params:(red_params ~min_th:(0.1 *. c) ~max_th:(0.3 *. c) ~max_p:0.5)
    ~rng ()

let af_dumbbell ?sched ?capacity_pkts ~seed ~n_flows ~bottleneck_mbps
    ?(bottleneck_delay = 0.03) ~committed_mbps () =
  assert (Array.length committed_mbps = n_flows);
  let sim = Engine.Sim.create ~seed ?sched () in
  let qdisc_rng = Engine.Sim.split_rng sim in
  let bottleneck =
    Netsim.Topology.spec
      ~rate_bps:(mbps bottleneck_mbps)
      ~delay:bottleneck_delay
      ~qdisc:(fun () ->
        af_rio ?capacity_pkts ~rng:(Engine.Rng.split qdisc_rng) ())
      ()
  in
  let committed_rates = Array.map mbps committed_mbps in
  let topo =
    Netsim.Topology.dumbbell ~sim ~n_flows ~bottleneck ~committed_rates ()
  in
  instrument topo;
  (sim, topo)

let plain_dumbbell ~seed ~n_flows ~bottleneck_mbps ?(bottleneck_delay = 0.03)
    ?(buffer_pkts = 85) () =
  let sim = Engine.Sim.create ~seed () in
  let bottleneck =
    Netsim.Topology.spec
      ~rate_bps:(mbps bottleneck_mbps)
      ~delay:bottleneck_delay
      ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:buffer_pkts)
      ()
  in
  let topo = Netsim.Topology.dumbbell ~sim ~n_flows ~bottleneck () in
  instrument topo;
  (sim, topo)

let lossy_path ~seed ~rate_mbps ?(delay = 0.04) ~loss ?rev_loss () =
  let sim = Engine.Sim.create ~seed () in
  let rng = Engine.Sim.split_rng sim in
  let forward =
    Netsim.Topology.spec ~rate_bps:(mbps rate_mbps) ~delay
      ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:50)
      ~loss:(fun () -> loss (Engine.Rng.split rng))
      ()
  in
  let reverse =
    match rev_loss with
    | None -> None
    | Some rl ->
        Some
          (Netsim.Topology.spec ~rate_bps:(mbps rate_mbps) ~delay
             ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:2000)
             ~loss:(fun () -> rl (Engine.Rng.split rng))
             ())
  in
  let topo = Netsim.Topology.duplex_path ~sim ~forward ?reverse () in
  instrument topo;
  (sim, topo)

let bernoulli p rng =
  if p <= 0.0 then Netsim.Loss_model.none
  else Netsim.Loss_model.bernoulli ~p ~rng

(* Stationary loss = pi_bad * loss_bad with loss_good = 0.  We fix
   loss_bad and derive the state probabilities; burstiness shrinks the
   bad->good escape probability, lengthening loss bursts. *)
let gilbert ~loss ~burstiness rng =
  assert (loss > 0.0 && loss < 0.5);
  assert (burstiness >= 0.0 && burstiness <= 1.0);
  let loss_bad = 0.5 in
  let pi_bad = loss /. loss_bad in
  let p_bg = 0.5 *. (1.0 -. (0.9 *. burstiness)) in
  let p_gb = p_bg *. pi_bad /. (1.0 -. pi_bad) in
  Netsim.Loss_model.gilbert_elliott ~p_good_to_bad:p_gb ~p_bad_to_good:p_bg
    ~loss_good:0.0 ~loss_bad ~rng

let sink_background (ep : Netsim.Topology.endpoint) =
  ep.Netsim.Topology.on_receiver_rx (fun _ -> ())

let measured_rate series =
  Stats.Series.rate_bps series ~from_:warmup ~until:duration

(* ------------------------------------------------------------------ *)
(* Mobility: a single flow over several candidate duplex paths, for
   the handover experiments.  Each path is (rate in Mb/s, one-way
   delay); reverse links take the per-path default, so feedback
   latency jumps with every migration. *)

let mobile_path ~seed ~paths ?(buffer_pkts = 60)
    ?(mangle = Netsim.Mangler.none) () =
  let sim = Engine.Sim.create ~seed () in
  let rng = Engine.Sim.split_rng sim in
  let mangle_f () =
    if Netsim.Mangler.is_active mangle then
      Some (Netsim.Mangler.create ~sim ~rng:(Engine.Rng.split rng) mangle)
    else None
  in
  let spec_of (rate_mbps, delay) =
    Netsim.Topology.spec ~rate_bps:(mbps rate_mbps) ~delay
      ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:buffer_pkts)
      ~mangle:mangle_f ()
  in
  let m = Netsim.Topology.mobile ~sim ~paths:(List.map spec_of paths) () in
  instrument (Netsim.Topology.mobile_net m);
  (sim, m)

let declared_link m i =
  let fwd = Netsim.Topology.path_fwd m i in
  let rev = Netsim.Topology.path_rev m i in
  Tfrc.Handover.link_of
    ~bandwidth_bps:(Netsim.Link.rate_bps fwd)
    ~rtt:(Netsim.Link.delay fwd +. Netsim.Link.delay rev)
