(** E4 — TCP-friendliness (§2).

    n TFRC flows share a droptail bottleneck with n TCP flows; report
    each group's aggregate share, the TFRC/TCP throughput ratio
    (1.0 = perfectly friendly) and Jain's fairness index over all 2n
    flows, for several n. *)

val run : ?seed:int -> unit -> Stats.Table.t

val run_one : seed:int -> n:int -> float array * float array
(** Per-flow wire rates of the (TFRC, TCP) groups — exposed for tests. *)
