(** E14 — ECN: congestion signalling without loss (extension).

    The versatile-transport story continues past the 2006 paper: with
    RFC 3168 ECN negotiated, a RED bottleneck marks instead of dropping,
    the receiver echoes the marks (standard plane: accounted in its loss
    history; light plane: a cumulative CE counter in the SACK report),
    and the sender reacts exactly as to a loss — but nothing needs
    retransmitting.  Same scenario run with and without ECN on both
    feedback planes: throughput holds, drops and retransmissions
    vanish, and delivery-delay tails shrink. *)

val run : ?seed:int -> unit -> Stats.Table.t
