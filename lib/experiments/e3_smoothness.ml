let loss_rates = [ 0.005; 0.01; 0.02; 0.05 ]

let window = 0.5

let cov_of series =
  let rates =
    Stats.Series.windowed_rates_bps series ~from_:Common.warmup
      ~until:Common.duration ~window
  in
  let s = Stats.Summary.of_array rates in
  (Stats.Summary.cov s, s.Stats.Summary.mean)

let run_tfrc ~seed ~loss =
  let sim, topo =
    Common.lossy_path ~seed ~rate_mbps:10.0 ~loss:(Common.bernoulli loss) ()
  in
  let agreed =
    Qtp.Profile.agreed_exn (Qtp.Profile.qtp_tfrc ()) (Qtp.Profile.anything ())
  in
  let conn =
    Qtp.Connection.create ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      (Qtp.Connection.config ~initial_rtt:0.2 agreed)
  in
  Engine.Sim.run ~until:Common.duration sim;
  cov_of (Qtp.Connection.arrivals conn)

let run_tcp ~seed ~loss =
  let sim, topo =
    Common.lossy_path ~seed ~rate_mbps:10.0 ~loss:(Common.bernoulli loss) ()
  in
  let flow =
    Tcp.Flow.create ~sim ~endpoint:(Netsim.Topology.endpoint topo 0) ()
  in
  Engine.Sim.run ~until:Common.duration sim;
  cov_of (Tcp.Flow.goodput_series flow)

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        "E3: throughput smoothness, CoV of 500 ms windows (10 Mb/s path, \
         Bernoulli loss)"
      ~columns:
        [
          ("loss", Stats.Table.Right);
          ("TCP mean (Mb/s)", Stats.Table.Right);
          ("TCP CoV", Stats.Table.Right);
          ("TFRC mean (Mb/s)", Stats.Table.Right);
          ("TFRC CoV", Stats.Table.Right);
          ("CoV ratio TCP/TFRC", Stats.Table.Right);
        ]
  in
  List.iter
    (fun loss ->
      let tcp_cov, tcp_mean = run_tcp ~seed ~loss in
      let tfrc_cov, tfrc_mean = run_tfrc ~seed ~loss in
      Stats.Table.add_row table
        [
          Stats.Table.cell_f ~decimals:3 loss;
          Stats.Table.cell_f (tcp_mean /. 1e6);
          Stats.Table.cell_f ~decimals:3 tcp_cov;
          Stats.Table.cell_f (tfrc_mean /. 1e6);
          Stats.Table.cell_f ~decimals:3 tfrc_cov;
          Stats.Table.cell_f (tcp_cov /. tfrc_cov);
        ])
    loss_rates;
  table
