let loss_rates = [ 0.01; 0.03; 0.05; 0.10 ]

let burstiness = 0.6

let run_tcp ~seed ~loss =
  let sim, topo =
    Common.lossy_path ~seed ~rate_mbps:5.0 ~delay:0.06
      ~loss:(fun rng -> Common.gilbert ~loss ~burstiness rng)
      ()
  in
  let flow =
    Tcp.Flow.create ~sim ~endpoint:(Netsim.Topology.endpoint topo 0) ()
  in
  Engine.Sim.run ~until:Common.duration sim;
  ( Common.measured_rate (Tcp.Flow.goodput_series flow) *. 1500.0 /. 1460.0
      /. 1e6,
    Tcp.Tcp_sender.timeouts (Tcp.Flow.sender flow) )

let run_qtp ~seed ~loss ~light =
  let sim, topo =
    Common.lossy_path ~seed ~rate_mbps:5.0 ~delay:0.06
      ~loss:(fun rng -> Common.gilbert ~loss ~burstiness rng)
      ()
  in
  let offer =
    if light then
      Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_partial ] ()
    else Qtp.Profile.qtp_tfrc ()
  in
  let agreed =
    Qtp.Profile.agreed_exn offer
      (if light then Qtp.Profile.mobile_receiver ()
       else Qtp.Profile.anything ())
  in
  let conn =
    Qtp.Connection.create ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      (Qtp.Connection.config ~initial_rtt:0.2 agreed)
  in
  Engine.Sim.run ~until:Common.duration sim;
  Common.measured_rate (Qtp.Connection.arrivals conn) /. 1e6

let run ?(seed = 42) () =
  let table =
    Stats.Table.create
      ~title:
        "E9: throughput over a bursty wireless link (5 Mb/s, Gilbert-Elliott, \
         60 ms one-way delay)"
      ~columns:
        [
          ("loss", Stats.Table.Right);
          ("TCP (Mb/s)", Stats.Table.Right);
          ("TCP timeouts", Stats.Table.Right);
          ("TFRC (Mb/s)", Stats.Table.Right);
          ("QTP_light (Mb/s)", Stats.Table.Right);
          ("TFRC/TCP", Stats.Table.Right);
        ]
  in
  List.iter
    (fun loss ->
      let tcp, timeouts = run_tcp ~seed ~loss in
      let tfrc = run_qtp ~seed ~loss ~light:false in
      let light = run_qtp ~seed ~loss ~light:true in
      Stats.Table.add_row table
        [
          Stats.Table.cell_f ~decimals:2 loss;
          Stats.Table.cell_f tcp;
          Stats.Table.cell_i timeouts;
          Stats.Table.cell_f tfrc;
          Stats.Table.cell_f light;
          Stats.Table.cell_f (tfrc /. tcp);
        ])
    loss_rates;
  table
