(** Shared scenario scaffolding for the experiment suite.

    Every experiment builds its network from these helpers so that
    parameters (bottleneck speed, AF queue configuration, measurement
    windows) stay consistent across tables. *)

val mbps : float -> float
(** Megabits/s to bits/s. *)

val with_checked : checked:bool -> (unit -> 'a) -> 'a
(** [with_checked ~checked:true run] executes [run] with the
    protocol-invariant checker live: {!Qtp.Inspect} hooks feed every
    TFRC rate update, and any topology built through the helpers below
    (or passed to {!instrument}) is tapped for packet conservation and
    SACK well-formedness.  Raises {!Analysis.Invariants.Violation} with
    the first violation once [run] returns.  With [~checked:false] it is
    just [run ()]. *)

val with_trace : trace:bool -> (unit -> 'a) -> 'a * Trace.Recorder.t option
(** [with_trace ~trace:true run] executes [run] with the flight
    recorder live: every instrumented protocol module records its
    events, and the filled recorder comes back with the result.  With
    [~trace:false] it is [run ()] paired with [None]. *)

val instrument : Netsim.Topology.t -> unit
(** Tap a topology for the ambient checker installed by
    {!with_checked}; a no-op outside checked mode.  Must be called
    before transports attach to the endpoints.  The canned builders
    below already do this — only scenarios that assemble a raw
    {!Netsim.Topology.t} themselves need to call it. *)

val warmup : float
(** Seconds discarded at the start of every measurement (default 5). *)

val duration : float
(** Total simulated seconds per run (default 60). *)

val af_rio : ?capacity_pkts:int -> rng:Engine.Rng.t -> unit -> Netsim.Qdisc.t
(** The DiffServ/AF core queue used by all QoS experiments: RIO with a
    lenient in-profile RED curve (min 40% / max 70% of capacity, maxp
    0.02) and an aggressive out-of-profile curve (min 10% / max 30%,
    maxp 0.5).  The default 100-packet queue reproduces the historical
    40/70 and 10/30-packet thresholds; LFN scenarios pass a deeper
    [capacity_pkts] sized to their bandwidth-delay product. *)

val af_dumbbell :
  ?sched:Engine.Sim.sched ->
  ?capacity_pkts:int ->
  seed:int ->
  n_flows:int ->
  bottleneck_mbps:float ->
  ?bottleneck_delay:float ->
  committed_mbps:float array ->
  unit ->
  Engine.Sim.t * Netsim.Topology.t
(** Dumbbell whose bottleneck runs {!af_rio}; per-flow edge markers are
    installed for every positive committed rate.  [sched] selects the
    simulation's event-queue backend (the scale benchmarks compare
    both). *)

val plain_dumbbell :
  seed:int ->
  n_flows:int ->
  bottleneck_mbps:float ->
  ?bottleneck_delay:float ->
  ?buffer_pkts:int ->
  unit ->
  Engine.Sim.t * Netsim.Topology.t
(** Droptail dumbbell for fairness/smoothness experiments. *)

val lossy_path :
  seed:int ->
  rate_mbps:float ->
  ?delay:float ->
  loss:(Engine.Rng.t -> Netsim.Loss_model.t) ->
  ?rev_loss:(Engine.Rng.t -> Netsim.Loss_model.t) ->
  unit ->
  Engine.Sim.t * Netsim.Topology.t
(** Single duplex path whose forward link applies the given loss model;
    [rev_loss] optionally applies one to the reverse (feedback) link. *)

val bernoulli : float -> Engine.Rng.t -> Netsim.Loss_model.t

val gilbert : loss:float -> burstiness:float -> Engine.Rng.t -> Netsim.Loss_model.t
(** Gilbert–Elliott model with the given stationary [loss] rate; higher
    [burstiness] (0..1) concentrates losses into longer bad periods
    while keeping the stationary rate. *)

val sink_background : Netsim.Topology.endpoint -> unit
(** Install a discarding receiver on a background flow's endpoint. *)

val measured_rate : Stats.Series.t -> float
(** Rate in bits/s over [warmup, duration). *)

val mobile_path :
  seed:int ->
  paths:(float * float) list ->
  ?buffer_pkts:int ->
  ?mangle:Netsim.Mangler.profile ->
  unit ->
  Engine.Sim.t * Netsim.Topology.mobile
(** Single-flow mobile topology over [(rate_mbps, one-way delay)]
    duplex paths (path 0 active first; droptail queues; the mangler
    profile, if active, applies to every forward path).  Instrumented
    for checked mode like every other builder. *)

val declared_link : Netsim.Topology.mobile -> int -> Tfrc.Handover.link_info
(** The declared bandwidth / RTT of path [i] — what an informed
    handover notification carries. *)
