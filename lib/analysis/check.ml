(* The structure-aware analyzer: assembles the pass registry and
   drives it — per-file passes fan out over Engine.Pool in submission
   order, tree passes run once over the collected file set, and the
   final sort makes the report identical at any worker count. *)

let passes : Pass.t list =
  Determinism.passes @ Hotpath.passes @ Constants.passes @ Hygiene.passes

let find_pass id = List.find_opt (fun (p : Pass.t) -> p.Pass.id = id) passes

let source_ctx ~path src =
  let tokens = Array.of_list (Lint.tokenize src) in
  let items = Parser.parse tokens in
  {
    Pass.sc_path = Lint.normalise_path path;
    sc_tokens = tokens;
    sc_items = items;
    sc_contexts = Parser.contexts items;
  }

let run_source (sc : Pass.source_ctx) =
  List.concat_map
    (fun (p : Pass.t) ->
      match p.Pass.kind with
      | Pass.File_pass f when Pass.applies p sc.Pass.sc_path -> f sc
      | Pass.File_pass _ | Pass.Tree_pass _ -> [])
    passes

let compare_finding (a : Pass.finding) (b : Pass.finding) =
  match String.compare a.Pass.path b.Pass.path with
  | 0 -> (
      match Int.compare a.Pass.line b.Pass.line with
      | 0 -> (
          match String.compare a.Pass.rule b.Pass.rule with
          | 0 -> String.compare a.Pass.message b.Pass.message
          | c -> c)
      | c -> c)
  | c -> c

let run_string ~path src =
  List.sort compare_finding (run_source (source_ctx ~path src))

let run_files ?jobs (files : (string * string) list) =
  let files =
    List.map (fun (p, src) -> (Lint.normalise_path p, src)) files
  in
  let mls =
    Array.of_list
      (List.filter (fun (p, _) -> Filename.check_suffix p ".ml") files)
  in
  let file_findings =
    Engine.Pool.with_pool ?jobs (fun pool ->
        Engine.Pool.map pool
          (fun (p, src) -> run_source (source_ctx ~path:p src))
          mls)
    |> Array.to_list |> List.concat
  in
  let tc =
    {
      Pass.tc_files = List.map fst files;
      tc_read = (fun p -> List.assoc_opt p files);
    }
  in
  let tree_findings =
    List.concat_map
      (fun (p : Pass.t) ->
        match p.Pass.kind with
        | Pass.Tree_pass f ->
            List.filter
              (fun (fd : Pass.finding) -> Pass.applies p fd.Pass.path)
              (f tc)
        | Pass.File_pass _ -> [])
      passes
  in
  List.sort compare_finding (file_findings @ tree_findings)

let run_tree ?jobs ~roots () =
  let files = List.concat_map Lint.walk roots in
  run_files ?jobs (List.map (fun p -> (p, Lint.read_file p)) files)
