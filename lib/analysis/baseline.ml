(* Baseline gating: a committed JSON file of suppressed-but-tracked
   findings.  Matching is by fingerprint multiset — N baselined copies
   of a fingerprint absorb at most N current findings — so moving a
   finding (line churn) doesn't resurface it, while a genuinely new
   instance of an already-known pattern still gates. *)

exception Malformed of string

let schema = "vtp-analysis-baseline-1"

type t = (string, int) Hashtbl.t

let empty () : t = Hashtbl.create 8

let of_entries (entries : Report.entry list) : t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (e : Report.entry) ->
      let n =
        match Hashtbl.find_opt tbl e.Report.fingerprint with
        | Some n -> n
        | None -> 0
      in
      Hashtbl.replace tbl e.Report.fingerprint (n + 1))
    entries;
  tbl

let to_json (entries : Report.entry list) : Stats.Json.t =
  let open Stats.Json in
  Obj
    [
      ("schema", String schema);
      ( "findings",
        List
          (List.map
             (fun (e : Report.entry) ->
               Obj
                 [
                   ("rule", String e.Report.rule);
                   ("path", String e.Report.path);
                   ("line", Int e.Report.line);
                   ("message", String e.Report.message);
                   ("fingerprint", String e.Report.fingerprint);
                 ])
             entries) );
    ]

let of_json (j : Stats.Json.t) : t =
  (match Stats.Json.member "schema" j with
  | Some (Stats.Json.String s) when s = schema -> ()
  | Some (Stats.Json.String s) ->
      raise (Malformed (Printf.sprintf "unknown schema %S (want %S)" s schema))
  | _ -> raise (Malformed "missing \"schema\" field"));
  match Stats.Json.member "findings" j with
  | Some (Stats.Json.List fs) ->
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun f ->
          match Stats.Json.member "fingerprint" f with
          | Some (Stats.Json.String fp) ->
              let n =
                match Hashtbl.find_opt tbl fp with Some n -> n | None -> 0
              in
              Hashtbl.replace tbl fp (n + 1)
          | _ -> raise (Malformed "finding without a string \"fingerprint\""))
        fs;
      tbl
  | _ -> raise (Malformed "missing \"findings\" list")

let of_string s =
  match Stats.Json.of_string s with
  | j -> of_json j
  | exception Stats.Json.Parse_error m -> raise (Malformed m)

let load path =
  if not (Sys.file_exists path) then
    raise (Malformed (path ^ ": no such baseline file"))
  else of_string (Lint.read_file path)

let save path entries =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Stats.Json.to_channel oc (to_json entries))

(* Entries must arrive sorted ({!Report.sort}) so which duplicate gets
   absorbed is deterministic. *)
let classify (t : t) (entries : Report.entry list) :
    (Report.entry * bool) list =
  let budget = Hashtbl.copy t in
  List.map
    (fun (e : Report.entry) ->
      match Hashtbl.find_opt budget e.Report.fingerprint with
      | Some n when n > 0 ->
          Hashtbl.replace budget e.Report.fingerprint (n - 1);
          (e, false)
      | _ -> (e, true))
    entries
