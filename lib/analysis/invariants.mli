(** Protocol-invariant checking over an observation stream.

    The invariant catalogue is derived from the paper and the RFCs it
    builds on:

    - {b gtfrc-floor} (paper §4, gTFRC): outside slow start the allowed
      rate never falls below [min(g, X_calc)] — the negotiated AF
      reservation stays honoured.
    - {b tfrc-rate-bounds} (RFC 3448 §4.3): [s/t_mbi <= X <=
      max(2*X_recv, g)], and never above the negotiated ceiling.
    - {b sack-wellformed} (RFC 2018 §4): feedback blocks are non-empty,
      pairwise disjoint, strictly above the cumulative ack and within
      the sequence range actually sent (a selfish or buggy receiver
      acknowledging invented data is caught here).
    - {b cum-ack-monotone}: the cumulative point never regresses.
    - {b packet-conservation}: [sent = delivered + lost + in_flight] —
      every frame accounted exactly once.

    Observations are fed either live (the experiment harness under
    [~checked:true]) or by replaying a {!Netsim.Tracer} buffer through
    {!Trace_check}. *)

type rate_info = {
  at : float;
  flow : int;
  x_bps : float;  (** allowed sending rate *)
  x_calc_bps : float;  (** equation rate; [infinity] while p = 0 *)
  x_recv_bps : float;  (** rate last reported by the receiver *)
  p : float;  (** loss event rate driving the sender *)
  g_bps : float;  (** negotiated AF floor; 0 = none *)
  cap_bps : float option;  (** application/interface ceiling *)
  mbi_floor_bps : float;  (** one packet per t_mbi, in bit/s *)
  slow_start : bool;
}

type event =
  | Epoch
      (** A new topology / set of connections is starting (flow ids may
          be reused); per-flow feedback state resets.  Frame uids are
          global, so packet-conservation accounting carries across
          epochs. *)
  | Rate of rate_info
  | Sent of { at : float; flow : int; uid : int }
  | Delivered of { at : float; flow : int; uid : int }
  | Dropped of { at : float; flow : int; uid : int }
  | Feedback of {
      at : float;
      flow : int;
      cum_ack : int;
      blocks : (int * int) list;  (** half-open [start, end) ranges *)
      window_hi : int option;  (** one past the highest sequence sent *)
    }

type violation = {
  invariant : string;
  at : float;
  flow : int;
  detail : string;
}

exception Violation of violation

val pp_violation : Format.formatter -> violation -> unit

type spec = {
  name : string;
  provenance : string;  (** paper section / RFC the invariant encodes *)
  doc : string;
  make : unit -> event -> (float * int * string) option;
}

val catalogue : spec list
(** All registered invariants; adding one is adding a record here. *)

type t

val create : ?limit:int -> unit -> t
(** A fresh checker instantiating every catalogue invariant.  At most
    [limit] (default 100) violations are retained. *)

val feed : t -> event -> unit

val events_seen : t -> int

val violations : t -> violation list
(** In discovery order (oldest first). *)

val first_violation : t -> violation option

val check_exn : t -> unit
(** Raise {!Violation} with the first recorded violation, if any. *)
