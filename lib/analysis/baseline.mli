(** Baseline gating: a committed JSON file (analysis/BASELINE.json) of
    suppressed-but-tracked findings, matched by fingerprint multiset so
    line churn never resurfaces a baselined finding while a genuinely
    new instance still gates. *)

exception Malformed of string
(** Unparsable JSON, wrong schema tag, or findings without
    fingerprints.  The CLI maps this to exit code 2. *)

val schema : string
(** ["vtp-analysis-baseline-1"]. *)

type t

val empty : unit -> t

val of_entries : Report.entry list -> t

val to_json : Report.entry list -> Stats.Json.t

val of_string : string -> t
(** @raise Malformed on invalid input. *)

val load : string -> t
(** @raise Malformed on invalid input or a missing file. *)

val save : string -> Report.entry list -> unit

val classify : t -> Report.entry list -> (Report.entry * bool) list
(** Tag each entry with "is new": baselined fingerprints absorb as many
    current findings as the baseline holds copies.  Pass entries
    through {!Report.sort} first so absorption is deterministic. *)
