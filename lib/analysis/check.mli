(** The structure-aware analyzer: a registry of passes over the
    {!Parser} item structure (determinism/race, hot-path allocation,
    protocol-constant conformance, API hygiene) with deterministic
    parallel driving.

    Complements {!Lint}: the token lint pattern-matches short windows,
    these passes reason about scope — which binding a token lives in,
    whether that binding is top-level state, whether it is marked
    [\[@vtp.hot\]]. *)

val passes : Pass.t list
(** Registry order: determinism, hot-path, constants, hygiene. *)

val find_pass : string -> Pass.t option

val source_ctx : path:string -> string -> Pass.source_ctx
(** Tokenize + parse one file (exposed for tests). *)

val run_string : path:string -> string -> Pass.finding list
(** All applicable per-file passes over one file's contents, sorted. *)

val run_files : ?jobs:int -> (string * string) list -> Pass.finding list
(** Per-file passes fanned over an {!Engine.Pool} (submission order)
    plus tree passes over the given (path, contents) set — the whole
    analyzer on an in-memory tree.  Sorted by (path, line, rule,
    message), so the result is identical at any [jobs]. *)

val run_tree : ?jobs:int -> roots:string list -> unit -> Pass.finding list
(** {!run_files} over every [.ml]/[.mli] under the roots. *)
