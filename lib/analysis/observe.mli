(** Live instrumentation: wire a running simulation into an
    {!Invariants} checker.

    The experiment harness ({!Experiments.Common}) and the fuzz
    executor both build a {!Netsim.Topology.t}, call {!instrument}
    before attaching transports, and install the {!Qtp.Inspect} rate
    hook around the run — every frame injection, delivery, drop,
    injected fault and TFRC rate update then feeds the checker. *)

val instrument : Invariants.t -> Netsim.Topology.t -> unit
(** Tap every endpoint (sent / delivered / feedback events for VTP
    frames) and every link (drop events, mangler fault accounting) of
    the topology.  Must be called before transports attach to the
    endpoints.  Feeds {!Invariants.Epoch} first, so flow ids may be
    reused across successive topologies on one checker. *)

val instrument_mangler : Invariants.t -> sim:Engine.Sim.t -> Netsim.Mangler.t -> unit
(** Register fault-accounting hooks on a mangler: a duplicated VTP
    frame's fresh uid is fed as {!Invariants.Sent} (it is a new frame
    injected mid-network) and a corrupted VTP frame is fed as
    {!Invariants.Dropped} (its body is wrapped, so no endpoint will
    ever count it as delivered).  {!instrument} already does this for
    every mangler reachable from the topology's links; call this only
    for manglers wired up by hand. *)

val install_rate_hook : Invariants.t -> unit
(** Install the global {!Qtp.Inspect} hook feeding every TFRC rate
    sample to the checker.  One simulation at a time; pair with
    {!clear_rate_hook}. *)

val clear_rate_hook : unit -> unit

val with_checker : (Invariants.t -> 'a) -> 'a
(** [with_checker f] runs [f] with a fresh checker whose rate hook is
    installed, clears the hook afterwards (even on exception), and
    raises {!Invariants.Violation} if [f]'s run broke an invariant.
    [f] is responsible for calling {!instrument} on any topology it
    builds. *)
