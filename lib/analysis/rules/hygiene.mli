(** API hygiene passes: [test-only-escape] (test_only_* hooks
    referenced outside test/) and [undeclared-export]
    (cross-library value references absent from the target .mli). *)

val passes : Pass.t list
