(** Protocol-constant conformance ([proto-const]): RFC 3448 / paper
    constant runs declared once in a table and re-derived from the
    numeric literals of their anchor bindings, so silent drift fails
    the lint gate with a pointer to the authority. *)

val passes : Pass.t list
