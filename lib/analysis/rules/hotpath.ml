(* Hot-path allocation passes.

   A binding is "hot" when it carries [@vtp.hot] directly, or when it
   is a function in a structure marked with a floating [@@@vtp.hot].
   Hot bodies must not allocate per call: no closures, no list
   construction, no option boxing, no formatting.  [@vtp.alloc_ok] on
   a binding acknowledges a deliberate allocation (e.g. an
   API-mandated option return) and silences all four passes. *)

let family = "hot-path"

let is_hot (c : Parser.context) =
  List.mem "vtp.hot" c.Parser.cx_binding.Parser.battrs
  || (c.Parser.cx_binding.Parser.bfun
     && List.mem "vtp.hot" c.Parser.cx_floating)

let exempt (c : Parser.context) =
  List.mem "vtp.alloc_ok" c.Parser.cx_binding.Parser.battrs

let scan_hot (sc : Pass.source_ctx) f =
  List.concat_map
    (fun c -> if is_hot c && not (exempt c) then f c else [])
    sc.Pass.sc_contexts

let mk (sc : Pass.source_ctx) c ~rule ~line message =
  Pass.finding ~rule ~family ~path:sc.Pass.sc_path ~line ~message
    ~context:(Parser.qualified_name c)

let text (ts : Lint.token array) i =
  if i >= 0 && i < Array.length ts then ts.(i).Lint.text else ""

let is_ident (ts : Lint.token array) i =
  i >= 0 && i < Array.length ts
  && match ts.(i).Lint.kind with Lint.Ident -> true | _ -> false

let run_closure (sc : Pass.source_ctx) =
  let ts = sc.Pass.sc_tokens in
  scan_hot sc (fun c ->
      let lo, hi = c.Parser.cx_binding.Parser.bbody in
      let out = ref [] in
      for j = lo to hi - 1 do
        if is_ident ts j then
          match text ts j with
          | ("fun" | "function") when j > lo ->
              (* a leading fun/function IS the binding, not a per-call
                 allocation *)
              out :=
                mk sc c ~rule:"hot-closure" ~line:ts.(j).Lint.tline
                  (Printf.sprintf
                     "'%s' in hot '%s' allocates a closure per call; lift \
                      it to a top-level function (or mark the binding \
                      [@vtp.alloc_ok])"
                     (text ts j) c.Parser.cx_binding.Parser.bname)
                :: !out
          | "let" ->
              let k = if text ts (j + 1) = "rec" then j + 2 else j + 1 in
              if
                is_ident ts k
                && (match text ts k with
                   | "rec" | "open" | "module" | "exception" -> false
                   | _ -> true)
                && not (List.mem (text ts (k + 1)) [ "="; ":"; ","; "::" ])
              then
                out :=
                  mk sc c ~rule:"hot-closure" ~line:ts.(j).Lint.tline
                    (Printf.sprintf
                       "nested function '%s' in hot '%s' allocates a \
                        closure per call; lift it to the top level"
                       (text ts k) c.Parser.cx_binding.Parser.bname)
                  :: !out
          | _ -> ()
      done;
      List.rev !out)

let list_builders =
  [
    "List.map"; "List.mapi"; "List.map2"; "List.append"; "List.concat";
    "List.concat_map"; "List.filter"; "List.filter_map"; "List.init";
    "List.rev"; "List.rev_append"; "List.rev_map"; "List.sort";
    "List.stable_sort"; "List.flatten"; "List.of_seq"; "List.split";
    "List.combine";
  ]

let run_list (sc : Pass.source_ctx) =
  let ts = sc.Pass.sc_tokens in
  scan_hot sc (fun c ->
      let lo, hi = c.Parser.cx_binding.Parser.bbody in
      let out = ref [] in
      let flag j what =
        out :=
          mk sc c ~rule:"hot-list" ~line:ts.(j).Lint.tline
            (Printf.sprintf
               "%s in hot '%s' builds a list per call; use the \
                preallocated scratch buffer or an index loop"
               what c.Parser.cx_binding.Parser.bname)
          :: !out
      in
      for j = lo to hi - 1 do
        let t = ts.(j) in
        match t.Lint.kind with
        | Lint.Ident ->
            if List.mem (Pass.strip_stdlib t.Lint.text) list_builders then
              flag j t.Lint.text
        | Lint.Op ->
            if t.Lint.text = "::" && Pass.expr_position ts j then
              flag j "list cons (::)"
            else if
              t.Lint.text = "@" && j > lo && Parser.is_ender ts.(j - 1)
            then flag j "list append (@)"
            else if
              t.Lint.text = "["
              && (match text ts (j + 1) with
                 | "]" | "|" -> false
                 | s -> not (s <> "" && String.for_all (fun ch -> ch = '@') s))
              && text ts (j - 1) <> "."
              && Pass.expr_position ts j
            then flag j "list literal"
        | _ -> ()
      done;
      List.rev !out)

let run_box (sc : Pass.source_ctx) =
  let ts = sc.Pass.sc_tokens in
  scan_hot sc (fun c ->
      let lo, hi = c.Parser.cx_binding.Parser.bbody in
      let out = ref [] in
      for j = lo to hi - 1 do
        if is_ident ts j then
          let what =
            match text ts j with
            | "Some" when Pass.expr_position ts j -> "Some"
            | "ref" -> "ref cell"
            | "lazy" -> "lazy block"
            | _ -> ""
          in
          if what <> "" then
            out :=
              mk sc c ~rule:"hot-box" ~line:ts.(j).Lint.tline
                (Printf.sprintf
                   "%s allocation in hot '%s'; restructure to avoid \
                    boxing per call (or mark the binding [@vtp.alloc_ok])"
                   what c.Parser.cx_binding.Parser.bname)
              :: !out
      done;
      List.rev !out)

let run_format (sc : Pass.source_ctx) =
  let ts = sc.Pass.sc_tokens in
  scan_hot sc (fun c ->
      let lo, hi = c.Parser.cx_binding.Parser.bbody in
      let out = ref [] in
      let flag j what =
        out :=
          mk sc c ~rule:"hot-format" ~line:ts.(j).Lint.tline
            (Printf.sprintf
               "%s in hot '%s' formats per call; move formatting off \
                the fast path (record raw values, render lazily)"
               what c.Parser.cx_binding.Parser.bname)
          :: !out
      in
      for j = lo to hi - 1 do
        let t = ts.(j) in
        match t.Lint.kind with
        | Lint.Ident -> (
            match Pass.components (Pass.strip_stdlib t.Lint.text) with
            | ("Printf" | "Format") :: _ -> flag j t.Lint.text
            | cs ->
                if
                  List.exists (String.starts_with ~prefix:"string_of_") cs
                then flag j t.Lint.text)
        | Lint.Op ->
            if t.Lint.text = "^" || t.Lint.text = "^^" then
              flag j "string concatenation (^)"
        | _ -> ()
      done;
      List.rev !out)

let passes : Pass.t list =
  [
    {
      id = "hot-closure";
      family;
      doc = "closure allocation inside a [@vtp.hot] body";
      rationale =
        "A fun/function expression or nested let-defined function \
         inside a hot body allocates a closure every call; at packet \
         rate that is steady minor-GC pressure the flight recorder \
         showed up as latency jitter.  Lifted top-level functions \
         allocate nothing.";
      bad = "let[@vtp.hot] level_of t tick =\n  let rec find l = ... in find 0";
      good = "let rec find_level x l = ...\nlet[@vtp.hot] level_of t tick = find_level (tick lxor t.cursor) 0";
      dirs = [];
      allow = [];
      kind = File_pass run_closure;
    };
    {
      id = "hot-list";
      family;
      doc = "list construction inside a [@vtp.hot] body";
      rationale =
        "Consing, list literals and List combinators allocate one cell \
         per element per call; hot paths keep reused scratch arrays \
         instead (see Rcv_tracker.sack_blocks).";
      bad = "let[@vtp.hot] drain t = List.map fire t.due";
      good = "let[@vtp.hot] drain t = for i = 0 to t.n - 1 do fire t.due.(i) done";
      dirs = [];
      allow = [];
      kind = File_pass run_list;
    };
    {
      id = "hot-box";
      family;
      doc = "option/ref/lazy boxing inside a [@vtp.hot] body";
      rationale =
        "Every Some, ref or lazy in a hot body is a fresh heap block; \
         per-segment code paths use sentinel values or mutable fields \
         on preallocated records instead.";
      bad = "let[@vtp.hot] peek t = if t.n = 0 then None else Some t.arr.(0)";
      good = "let[@vtp.hot] peek t = if t.n = 0 then t.dummy else t.arr.(0)";
      dirs = [];
      allow = [];
      kind = File_pass run_box;
    };
    {
      id = "hot-format";
      family;
      doc = "Printf/Format/string building inside a [@vtp.hot] body";
      rationale =
        "Formatting allocates buffers and intermediate strings and is \
         orders of magnitude slower than the surrounding packet \
         processing; the trace subsystem records raw values and \
         renders them only when a report is requested.";
      bad = "let[@vtp.hot] emit t = log (Printf.sprintf \"seq=%d\" t.seq)";
      good = "let[@vtp.hot] emit t = Trace.Sink.seg_send t.sink ~seq:t.seq ~size ~retx";
      dirs = [];
      allow = [];
      kind = File_pass run_format;
    };
  ]
