(* Determinism / race passes.

   The multicore pool's correctness rests on a static contract: no
   top-level mutable state outside Domain.DLS, no output ordered by
   Hashtbl iteration, no wall-clock reads outside the sim clock (the
   token lint's random-call / domain-spawn rules cover the RNG and
   domain halves of the same contract). *)

let family = "determinism"

(* Allocators whose result, bound at the top level, is state shared by
   every domain that touches the module. *)
let alloc_heads =
  [
    "ref"; "Hashtbl.create"; "Buffer.create"; "Queue.create";
    "Stack.create"; "Bytes.create"; "Array.make"; "Array.init";
    "Array.create_float"; "Atomic.make";
  ]

let is_dls_key text =
  let cs = Pass.components text in
  List.mem "DLS" cs && Pass.last_component text = "new_key"

let run_top_state (sc : Pass.source_ctx) =
  List.filter_map
    (fun (c : Parser.context) ->
      let b = c.Parser.cx_binding in
      if b.Parser.bfun || List.mem "vtp.ambient" b.Parser.battrs then None
      else begin
        let lo, hi = b.Parser.bbody in
        let dls = ref false and alloc = ref "" in
        for i = lo to hi - 1 do
          let t = sc.Pass.sc_tokens.(i) in
          match t.Lint.kind with
          | Lint.Ident ->
              let text = Pass.strip_stdlib t.Lint.text in
              if is_dls_key text then dls := true;
              if !alloc = "" && List.mem text alloc_heads then alloc := text
          | _ -> ()
        done;
        if !alloc = "" || !dls then None
        else
          Some
            (Pass.finding ~rule:"top-level-state" ~family
               ~path:sc.Pass.sc_path ~line:b.Parser.bline
               ~message:
                 (Printf.sprintf
                    "top-level binding '%s' allocates mutable state (%s) \
                     shared across domains; register it through \
                     Domain.DLS.new_key or mark it [@vtp.ambient]"
                    b.Parser.bname !alloc)
               ~context:(Parser.qualified_name c))
      end)
    sc.Pass.sc_contexts

let is_hashtbl_iteration text =
  let cs = Pass.components text in
  List.mem "Hashtbl" cs
  && match Pass.last_component text with "iter" | "fold" -> true | _ -> false

let starts_with prefix s = String.starts_with ~prefix s

(* Tokens that commit an ordering: consing onto an accumulator,
   assigning one, or printing/serialising directly. *)
let ordered_sink (ts : Lint.token array) j =
  let t = ts.(j) in
  match t.Lint.kind with
  | Lint.Ident ->
      let cs = Pass.components (Pass.strip_stdlib t.Lint.text) in
      (match cs with
      | "Buffer" :: _ when starts_with "add" (Pass.last_component t.Lint.text)
        ->
          Some "Buffer.add*"
      | ("Printf" | "Format") :: _ -> Some (List.hd cs)
      | _ ->
          if
            List.exists
              (fun c -> starts_with "output_" c || starts_with "print_" c)
              cs
          then Some t.Lint.text
          else None)
  | Lint.Op ->
      if t.Lint.text = ":=" then Some ":="
      else if t.Lint.text = "::" && Pass.expr_position ts j then Some "::"
      else None
  | _ -> None

let sortish (ts : Lint.token array) j =
  match ts.(j).Lint.kind with
  | Lint.Ident ->
      List.exists (starts_with "sort") (Pass.components ts.(j).Lint.text)
  | _ -> false

let run_hashtbl_order (sc : Pass.source_ctx) =
  let ts = sc.Pass.sc_tokens in
  let out = ref [] in
  Array.iteri
    (fun i (t : Lint.token) ->
      if t.Lint.kind = Lint.Ident && is_hashtbl_iteration t.Lint.text then
        match Parser.enclosing sc.Pass.sc_contexts i with
        | None -> ()
        | Some c ->
            let b = c.Parser.cx_binding in
            if List.mem "vtp.unordered" b.Parser.battrs then ()
            else begin
              let lo, hi = b.Parser.bspan in
              let sorted = ref false and sink = ref "" in
              for j = lo to hi - 1 do
                if sortish ts j then sorted := true;
                if !sink = "" then
                  match ordered_sink ts j with
                  | Some s -> sink := s
                  | None -> ()
              done;
              if !sink <> "" && not !sorted then
                out :=
                  Pass.finding ~rule:"hashtbl-order" ~family
                    ~path:sc.Pass.sc_path ~line:t.Lint.tline
                    ~message:
                      (Printf.sprintf
                         "%s feeds an ordered sink (%s) in '%s'; Hashtbl \
                          iteration order is unspecified — sort the keys \
                          first or mark the binding [@vtp.unordered]"
                         t.Lint.text !sink b.Parser.bname)
                    ~context:(Parser.qualified_name c)
                  :: !out
            end)
    ts;
  List.rev !out

let clock_calls =
  [ "Unix.gettimeofday"; "Unix.time"; "Unix.gmtime"; "Unix.localtime";
    "Sys.time" ]

let run_wall_clock (sc : Pass.source_ctx) =
  let ts = sc.Pass.sc_tokens in
  let out = ref [] in
  Array.iteri
    (fun i (t : Lint.token) ->
      if
        t.Lint.kind = Lint.Ident
        && List.mem (Pass.strip_stdlib t.Lint.text) clock_calls
      then
        let context =
          match Parser.enclosing sc.Pass.sc_contexts i with
          | Some c -> Parser.qualified_name c
          | None -> ""
        in
        out :=
          Pass.finding ~rule:"wall-clock" ~family ~path:sc.Pass.sc_path
            ~line:t.Lint.tline
            ~message:
              (t.Lint.text
              ^ " reads the wall clock; simulated components must take \
                 time from Engine.Sim.now so runs replay identically")
            ~context
          :: !out)
    ts;
  List.rev !out

let passes : Pass.t list =
  [
    {
      id = "top-level-state";
      family;
      doc =
        "top-level ref/Hashtbl/Buffer state not registered through \
         Domain.DLS";
      rationale =
        "A top-level ref or table is one instance shared by every \
         domain the pool spawns; concurrent runs then race on it and \
         the @par-smoke byte-diff goes nondeterministic.  Ambient \
         state must be domain-local (Domain.DLS) or explicitly \
         declared [@vtp.ambient] with a reset discipline.";
      bad = "let scratch = Buffer.create 256";
      good =
        "let scratch = Domain.DLS.new_key (fun () -> Buffer.create 256)";
      dirs = [];
      allow = [];
      kind = File_pass run_top_state;
    };
    {
      id = "hashtbl-order";
      family;
      doc = "Hashtbl.iter/fold result escaping into ordered output";
      rationale =
        "Hashtbl iteration order depends on hash seeding and insertion \
         history, so consing or printing from inside iter/fold bakes an \
         unspecified order into reports and traces.  Commutative \
         aggregation (sums, maxima) is fine; ordered sinks need a sort.";
      bad = "let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []";
      good =
        "let keys t = List.sort Int.compare (Hashtbl.fold (fun k _ acc \
         -> k :: acc) t [])";
      dirs = [];
      allow = [];
      kind = File_pass run_hashtbl_order;
    };
    {
      id = "wall-clock";
      family;
      doc = "Unix.gettimeofday/Sys.time outside the sim clock";
      rationale =
        "Reading the host clock inside simulated components makes \
         timeouts and traces depend on machine load, breaking replay \
         and the golden-trace corpus.  Only the benchmark harness \
         measures real elapsed time.";
      bad = "let deadline = Unix.gettimeofday () +. rto";
      good = "let deadline = Engine.Sim.now sim +. rto";
      dirs = [];
      allow = [ "bench/" ];
      kind = File_pass run_wall_clock;
    };
  ]
