(** Hot-path allocation passes over [@vtp.hot] bindings and
    [@@@vtp.hot] structures: [hot-closure], [hot-list], [hot-box],
    [hot-format].  [@vtp.alloc_ok] on a binding acknowledges a
    deliberate allocation and silences all four. *)

val passes : Pass.t list
