(** Determinism / race passes: top-level mutable state outside
    [Domain.DLS] ([top-level-state]), [Hashtbl.iter]/[fold] feeding
    ordered output ([hashtbl-order]), and wall-clock reads outside the
    sim clock ([wall-clock]). *)

val passes : Pass.t list
