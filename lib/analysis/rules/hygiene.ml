(* API hygiene passes.

   test-only-escape: [test_only_*] hooks are deliberate-bug levers for
   the fuzz harness's negative tests; any qualified reference outside
   test/ is production code reaching for a sabotage switch.

   undeclared-export: a compile-independent cross-check that values
   referenced as [Lib.Module.value] from another library appear in
   [lib/<dir>/module.mli].  On a compiling tree this is vacuous by
   construction — its value is on broken or in-progress trees, where
   the analyzer (unlike the compiler) still runs. *)

let family = "api-hygiene"

let run_test_only (sc : Pass.source_ctx) =
  let ts = sc.Pass.sc_tokens in
  let out = ref [] in
  Array.iteri
    (fun i (t : Lint.token) ->
      if t.Lint.kind = Lint.Ident then
        match Pass.components t.Lint.text with
        | _ :: (_ :: _ as rest)
          when List.exists (String.starts_with ~prefix:"test_only_") rest ->
            let context =
              match Parser.enclosing sc.Pass.sc_contexts i with
              | Some c -> Parser.qualified_name c
              | None -> ""
            in
            out :=
              Pass.finding ~rule:"test-only-escape" ~family
                ~path:sc.Pass.sc_path ~line:t.Lint.tline
                ~message:
                  (t.Lint.text
                  ^ " is a test-only sabotage hook; production code must \
                     never reference it (tests under test/ are exempt)")
                ~context
              :: !out
        | _ -> ())
    ts;
  List.rev !out

(* Wrapped-library roots: toplevel module name -> source directory. *)
let libmap =
  [
    ("Engine", "lib/engine"); ("Packet", "lib/packet");
    ("Netsim", "lib/netsim"); ("Tfrc", "lib/tfrc"); ("Sack", "lib/sack");
    ("Tcp", "lib/tcp"); ("Qtp", "lib/core"); ("Stats", "lib/stats");
    ("Trace", "lib/trace"); ("Analysis", "lib/analysis");
    ("Fuzz", "lib/fuzz"); ("Workload", "lib/workload");
    ("Experiments", "lib/experiments");
  ]

let lower_start s =
  s <> "" && ((s.[0] >= 'a' && s.[0] <= 'z') || s.[0] = '_')

let upper_start s = s <> "" && s.[0] >= 'A' && s.[0] <= 'Z'

(* The exported-name set of one .mli: every lowercase dotted-path
   component of every identifier token.  Deliberately permissive — a
   name mentioned anywhere in the interface counts — so the pass only
   fires when the interface is truly silent about a value.  None when
   the .mli is unreadable or uses [include] (the surface is then not
   syntactically evident). *)
let harvest tc_read mli_path =
  match tc_read mli_path with
  | None -> None
  | Some src ->
      let toks = Lint.tokenize src in
      if
        List.exists
          (fun (t : Lint.token) ->
            t.Lint.kind = Lint.Ident && t.Lint.text = "include")
          toks
      then None
      else begin
        let names = Hashtbl.create 64 in
        List.iter
          (fun (t : Lint.token) ->
            if t.Lint.kind = Lint.Ident then
              List.iter
                (fun c -> if lower_start c then Hashtbl.replace names c ())
                (Pass.components t.Lint.text))
          toks;
        Some names
      end

let run_exports (tc : Pass.tree_ctx) =
  let memo = Hashtbl.create 16 in
  let exported mli_path =
    match Hashtbl.find_opt memo mli_path with
    | Some v -> v
    | None ->
        let v = harvest tc.Pass.tc_read mli_path in
        Hashtbl.add memo mli_path v;
        v
  in
  let mls =
    List.sort String.compare
      (List.filter (fun f -> Filename.check_suffix f ".ml") tc.Pass.tc_files)
  in
  List.concat_map
    (fun path ->
      match tc.Pass.tc_read path with
      | None -> []
      | Some src ->
          let seen = Hashtbl.create 8 in
          List.filter_map
            (fun (t : Lint.token) ->
              if t.Lint.kind <> Lint.Ident then None
              else
                match Pass.components t.Lint.text with
                | c0 :: c1 :: c2 :: _
                  when upper_start c1 && lower_start c2
                       && not (Hashtbl.mem seen t.Lint.text) -> (
                    match List.assoc_opt c0 libmap with
                    | Some libdir
                      when not (Lint.contains_sub ~sub:libdir path) -> (
                        Hashtbl.replace seen t.Lint.text ();
                        let mli =
                          libdir ^ "/" ^ String.uncapitalize_ascii c1
                          ^ ".mli"
                        in
                        match exported mli with
                        | None -> None
                        | Some names ->
                            if Hashtbl.mem names c2 then None
                            else
                              Some
                                (Pass.finding ~rule:"undeclared-export"
                                   ~family ~path ~line:t.Lint.tline
                                   ~message:
                                     (Printf.sprintf
                                        "'%s' is referenced cross-library \
                                         but '%s' does not declare '%s'; \
                                         export it (or stop reaching into \
                                         the internals)"
                                        t.Lint.text mli c2)
                                   ~context:t.Lint.text))
                    | _ -> None)
                | _ -> None)
            (Lint.tokenize src))
    mls

let passes : Pass.t list =
  [
    {
      id = "test-only-escape";
      family;
      doc = "test_only_* hooks referenced outside test/";
      rationale =
        "test_only_* switches deliberately break an invariant so the \
         fuzzer's oracles can prove they would catch the breakage; a \
         production reference arms a sabotage lever in shipping code.";
      bad = "if Sack.Rcv_tracker.test_only_skip_dup_check := true";
      good = "(* only test/test_fuzz.ml flips the hook, inside a Fun.protect reset *)";
      dirs = [];
      allow = [ "test/" ];
      kind = File_pass run_test_only;
    };
    {
      id = "undeclared-export";
      family;
      doc =
        "Lib.Module.value referenced cross-library but absent from the \
         module's .mli";
      rationale =
        "A value used across library boundaries without an interface \
         declaration couples downstream code to internals; the compiler \
         catches this only once everything compiles, the analyzer \
         catches it on any tree state.";
      bad = "Engine.Wheel.bucket_push pool.wheel id ev (* not in wheel.mli *)";
      good = "val bucket_push : t -> int -> Event.t -> unit (* declared in wheel.mli *)";
      dirs = [];
      allow = [];
      kind = Tree_pass run_exports;
    };
  ]
