(* Protocol-constant conformance.

   RFC 3448 and the paper fix a handful of magic numbers — the §5.4
   loss-interval weight vector, the throughput-equation coefficients,
   the nofeedback backoff, the dupack threshold.  Each is declared once
   here as (file, anchor binding, expected numeric run) and the pass
   re-derives the run from the source tokens, so silent drift in any
   copy fails @lint with a pointer to the authority. *)

let family = "protocol-constants"

type projection =
  | Floats_only  (** only float literals, in source order *)
  | All_numeric  (** int and float literals, in source order *)

type entry = {
  cid : string;  (** authority, e.g. "rfc3448.s5-4.weights" *)
  cfile : string;  (** path suffix of the owning source file *)
  anchor : string;  (** top-level binding holding the constants *)
  cdoc : string;
  proj : projection;
  expect : float list;  (** consecutive literal run that must appear *)
}

let table =
  [
    {
      cid = "rfc3448.s5-4.weights";
      cfile = "lib/tfrc/loss_history.ml";
      anchor = "weight";
      cdoc = "loss-interval weights 1,1,1,1,0.8,0.6,0.4,0.2 (RFC 3448 §5.4)";
      proj = Floats_only;
      expect = [ 0.8; 0.6; 0.4; 0.2 ];
    };
    {
      cid = "rfc3448.ndup-history";
      cfile = "lib/tfrc/loss_history.ml";
      anchor = "create";
      cdoc = "NDUPACK = 3, loss-interval history depth 8 (RFC 3448 §5.1)";
      proj = All_numeric;
      expect = [ 3.; 8. ];
    };
    {
      cid = "rfc3448.p-unit-ceiling";
      cfile = "lib/tfrc/loss_history.ml";
      anchor = "loss_event_rate";
      cdoc = "loss-event rate capped at 1.0 = 1/mean interval";
      proj = Floats_only;
      expect = [ 1.0; 1.0 ];
    };
    {
      cid = "rfc3448.throughput-eq";
      cfile = "lib/tfrc/equation.ml";
      anchor = "rate";
      cdoc =
        "TCP throughput equation coefficients sqrt(2bp/3), \
         t_rto*(3*sqrt(3bp/8))*p*(1+32p^2) (RFC 3448 §3.1)";
      proj = Floats_only;
      expect = [ 2.0; 3.0; 3.0; 8.0; 3.0; 1.0; 32.0 ];
    };
    {
      cid = "rfc3448.rto-coefficient";
      cfile = "lib/tfrc/equation.ml";
      anchor = "rate";
      cdoc = "t_RTO = max(4R, ...) default coefficient (RFC 3448 §4.3)";
      proj = Floats_only;
      expect = [ 1.0; 4.0 ];
    };
    {
      cid = "paper.sender-defaults";
      cfile = "lib/tfrc/sender.ml";
      anchor = "default_params";
      cdoc =
        "segment 1500 B, initial RTT 0.5 s, t_mbi 64 s (RFC 3448 §4.2, \
         §4.3)";
      proj = All_numeric;
      expect = [ 1500.; 0.5; 0.0; 64.0 ];
    };
    {
      cid = "rfc3448.initial-window";
      cfile = "lib/tfrc/sender.ml";
      anchor = "create";
      cdoc = "initial rate 2 segments per initial RTT (RFC 3448 §4.2)";
      proj = Floats_only;
      expect = [ 2.0 ];
    };
    {
      cid = "rfc3448.nofeedback-backoff";
      cfile = "lib/tfrc/sender.ml";
      anchor = "nofeedback_timer";
      cdoc =
        "nofeedback timer: halve the rate, re-arm at max(4R, 2s/X) \
         (RFC 3448 §4.4)";
      proj = Floats_only;
      expect = [ 2.0; 0.0; 0.0; 4.0; 2.0 ];
    };
    {
      cid = "rfc3448.feedback-timer-floor";
      cfile = "lib/tfrc/receiver.ml";
      anchor = "arm_timer";
      cdoc = "feedback timer floor 1e-4 s before the first RTT sample";
      proj = Floats_only;
      expect = [ 1e-4 ];
    };
    {
      cid = "handover.informed-share";
      cfile = "lib/tfrc/handover.ml";
      anchor = "informed_share";
      cdoc =
        "informed handover starts at half the declared bandwidth \
         (Mehani et al.)";
      proj = Floats_only;
      expect = [ 0.5 ];
    };
    {
      cid = "handover.reset-window";
      cfile = "lib/tfrc/handover.ml";
      anchor = "reset_segments";
      cdoc = "reset handover restarts at 2 segments per declared RTT";
      proj = Floats_only;
      expect = [ 2.0 ];
    };
    {
      cid = "paper.dupack-threshold";
      cfile = "lib/sack/scoreboard.ml";
      anchor = "create";
      cdoc = "SACK dupthresh 3 (fast-retransmit trigger)";
      proj = All_numeric;
      (* dupthresh 3, default ring capacity 256, the >= 1 assert, and
         the power-of-two rounding loop's 256 floor and 2 factor. *)
      expect = [ 3.; 256.; 1.; 256.; 2. ];
    };
    {
      cid = "trunk.drr-quantum";
      cfile = "lib/trunk/sched.ml";
      anchor = "default_quantum";
      cdoc =
        "DRR quantum 1500 B = one MTU per unit weight per round \
         (Shreedhar & Varghese)";
      proj = All_numeric;
      expect = [ 1500. ];
    };
    {
      cid = "trunk.frame-cap";
      cfile = "lib/trunk/frame.ml";
      anchor = "default_frame_cap";
      cdoc = "sub-frame payload cap 512 B (>= 3 frames per 1500 B segment)";
      proj = All_numeric;
      expect = [ 512. ];
    };
  ]

(* [expect] must appear as a consecutive run in the literal projection. *)
let has_run nums expect =
  let nums = Array.of_list nums and expect = Array.of_list expect in
  let n = Array.length nums and m = Array.length expect in
  let rec at i j = j >= m || (Float.equal nums.(i + j) expect.(j) && at i (j + 1)) in
  let rec search i = i + m <= n && (at i 0 || search (i + 1)) in
  m = 0 || search 0

let literal_run (sc : Pass.source_ctx) (lo, hi) proj =
  let out = ref [] in
  for i = lo to hi - 1 do
    let t = sc.Pass.sc_tokens.(i) in
    let keep =
      match t.Lint.kind with
      | Lint.Float_lit -> true
      | Lint.Int_lit -> proj = All_numeric
      | _ -> false
    in
    if keep then
      match float_of_string_opt t.Lint.text with
      | Some v -> out := v :: !out
      | None -> ()
  done;
  List.rev !out

let pp_expect expect =
  String.concat ", "
    (List.map (fun v -> Printf.sprintf "%g" v) expect)

let run (sc : Pass.source_ctx) =
  let entries =
    List.filter
      (fun e -> String.ends_with ~suffix:e.cfile sc.Pass.sc_path)
      table
  in
  List.filter_map
    (fun e ->
      match
        List.find_opt
          (fun (c : Parser.context) ->
            c.Parser.cx_binding.Parser.bname = e.anchor
            && c.Parser.cx_mods = [])
          sc.Pass.sc_contexts
      with
      | None ->
          Some
            (Pass.finding ~rule:"proto-const" ~family ~path:sc.Pass.sc_path
               ~line:1
               ~message:
                 (Printf.sprintf
                    "declared constant anchor '%s' (%s: %s) not found; \
                     update the table in rules/constants.ml alongside the \
                     refactor"
                    e.anchor e.cid e.cdoc)
               ~context:e.cid)
      | Some c ->
          let nums = literal_run sc c.Parser.cx_binding.Parser.bspan e.proj in
          if has_run nums e.expect then None
          else
            Some
              (Pass.finding ~rule:"proto-const" ~family
                 ~path:sc.Pass.sc_path
                 ~line:c.Parser.cx_binding.Parser.bline
                 ~message:
                   (Printf.sprintf
                      "constants in '%s' drifted from %s (%s): expected \
                       the literal run [%s]"
                      e.anchor e.cid e.cdoc (pp_expect e.expect))
                 ~context:e.cid))
    entries

let passes : Pass.t list =
  [
    {
      id = "proto-const";
      family;
      doc =
        "RFC 3448 / paper constants cross-checked against the declared \
         table";
      rationale =
        "The weight vector, equation coefficients and timer floors are \
         normative: a typo'd 0.6 still converges and passes unit tests \
         but changes fairness.  Declaring each constant run once and \
         re-deriving it from the tokens turns silent drift into a lint \
         failure naming the RFC section.";
      bad = "let weight i = [| 1.0; 1.0; 1.0; 1.0; 0.8; 0.7; 0.4; 0.2 |].(i)";
      good = "let weight i = [| 1.0; 1.0; 1.0; 1.0; 0.8; 0.6; 0.4; 0.2 |].(i)";
      dirs = [ "lib/tfrc"; "lib/sack"; "lib/trunk" ];
      allow = [];
      kind = File_pass run;
    };
  ]
