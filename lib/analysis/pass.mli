(** Shared vocabulary of the structural analyzer ({!Check}): findings,
    the two pass shapes, and token-classification helpers used by more
    than one rule family. *)

type finding = {
  rule : string;
  family : string;
  path : string;
  line : int;
  message : string;
  context : string;  (** enclosing binding ("Mod.name") or rule anchor *)
}

type source_ctx = {
  sc_path : string;
  sc_tokens : Lint.token array;
  sc_items : Parser.item list;
  sc_contexts : Parser.context list;
}

type tree_ctx = {
  tc_files : string list;
  tc_read : string -> string option;
}

type kind =
  | File_pass of (source_ctx -> finding list)
  | Tree_pass of (tree_ctx -> finding list)

type t = {
  id : string;
  family : string;
  doc : string;
  rationale : string;  (** why the pattern is hazardous (for [--explain]) *)
  bad : string;  (** minimal offending example *)
  good : string;  (** the accepted fix *)
  dirs : string list;
  allow : string list;
  kind : kind;
}

val applies : t -> string -> bool
(** Directory scoping + allowlist, on normalised paths. *)

val components : string -> string list
(** Dotted-path components of a glued identifier token. *)

val last_component : string -> string

val strip_stdlib : string -> string
(** Drop one leading ["Stdlib."] qualifier. *)

val expr_position : Lint.token array -> int -> bool
(** Heuristic: is the token at this index in expression (not pattern)
    position?  Used for [Some], [::] and list literals. *)

val finding :
  rule:string ->
  family:string ->
  path:string ->
  line:int ->
  message:string ->
  context:string ->
  finding
