(* Paper- and RFC-derived protocol invariants, checked over an abstract
   observation stream.  Observations come either live (the experiment
   harness taps endpoints and the sender's rate updates) or offline
   (Trace_check replays a Netsim.Tracer buffer). *)

type rate_info = {
  at : float;
  flow : int;
  x_bps : float;
  x_calc_bps : float;  (* infinity while no loss event has been seen *)
  x_recv_bps : float;
  p : float;
  g_bps : float;  (* negotiated AF floor; 0 = none *)
  cap_bps : float option;  (* application/interface ceiling *)
  mbi_floor_bps : float;  (* s/t_mbi, RFC 3448's absolute floor *)
  slow_start : bool;
}

type event =
  | Epoch
  | Rate of rate_info
  | Sent of { at : float; flow : int; uid : int }
  | Delivered of { at : float; flow : int; uid : int }
  | Dropped of { at : float; flow : int; uid : int }
  | Feedback of {
      at : float;
      flow : int;
      cum_ack : int;
      blocks : (int * int) list;  (* half-open [start, end) *)
      window_hi : int option;  (* one past the highest sequence sent *)
    }

type violation = {
  invariant : string;
  at : float;
  flow : int;
  detail : string;
}

exception Violation of violation

let pp_violation fmt v =
  Format.fprintf fmt "invariant %S violated at t=%.6f (flow %d): %s"
    v.invariant v.at v.flow v.detail

(* Relative tolerance: the sender's clamp arithmetic is exact float
   max/min, but rates cross a bytes<->bits conversion on the way to the
   checker. *)
let tol x = 1e-9 *. Float.max 1.0 (Float.abs x)

type check = event -> (float * int * string) option
(* at, flow, detail *)

(* --- gTFRC floor: X >= min(g, X_calc) outside slow start (paper §4;
   Lochin et al.'s gTFRC).  The AF reservation stays paid for even when
   the equation says less. *)
let gtfrc_floor () : check = function
  | Rate r
    when (not r.slow_start) && r.p > 0.0 && r.g_bps > 0.0
         && r.x_bps +. tol r.g_bps < Float.min r.g_bps r.x_calc_bps ->
      Some
        ( r.at,
          r.flow,
          Printf.sprintf
            "X = %.0f bit/s below min(g = %.0f, X_calc = %.0f): the \
             negotiated AF floor is not being honoured"
            r.x_bps r.g_bps r.x_calc_bps )
  | _ -> None

(* --- RFC 3448 §4.3 rate bounds: s/t_mbi <= X <= 2*X_recv (the upper
   bound relaxed by the gTFRC floor g and the mbi floor themselves), and
   X never above the negotiated interface ceiling. *)
let tfrc_rate_bounds () : check = function
  | Rate r when r.x_bps +. tol r.mbi_floor_bps < r.mbi_floor_bps ->
      Some
        ( r.at,
          r.flow,
          Printf.sprintf
            "X = %.3f bit/s below the one-packet-per-t_mbi floor %.3f"
            r.x_bps r.mbi_floor_bps )
  | Rate r
    when (match r.cap_bps with
         | Some cap -> r.x_bps > cap +. tol cap
         | None -> false) ->
      Some
        ( r.at,
          r.flow,
          Printf.sprintf "X = %.0f bit/s above the negotiated ceiling %.0f"
            r.x_bps
            (Option.value r.cap_bps ~default:0.0) )
  | Rate r
    when (not r.slow_start)
         && r.p > 0.0
         &&
         let bound =
           Float.max (2.0 *. r.x_recv_bps)
             (Float.max r.g_bps r.mbi_floor_bps)
         in
         r.x_bps > bound +. tol bound ->
      Some
        ( r.at,
          r.flow,
          Printf.sprintf
            "X = %.0f bit/s exceeds max(2*X_recv = %.0f, g = %.0f, \
             s/t_mbi = %.0f)"
            r.x_bps
            (2.0 *. r.x_recv_bps)
            r.g_bps r.mbi_floor_bps )
  | _ -> None

(* --- SACK feedback well-formedness (RFC 2018 block rules, adapted to
   the light plane): non-empty half-open blocks, pairwise disjoint,
   strictly above the cumulative ack, below the highest sequence the
   sender has emitted.  Wire order is most-recently-changed first, so
   blocks are sorted before the disjointness check. *)
let sack_wellformed () : check = function
  | Feedback f ->
      let bad msg = Some (f.at, f.flow, msg) in
      let rec check_sorted = function
        | (s1, e1) :: ((s2, _) :: _ as rest) ->
            if e1 > s2 then
              bad
                (Printf.sprintf
                   "SACK blocks overlap: [%d,%d) and [%d,...)" s1 e1 s2)
            else check_sorted rest
        | [ _ ] | [] -> None
      in
      let empty =
        List.find_opt (fun (s, e) -> s >= e) f.blocks
      in
      let below_cum =
        List.find_opt (fun (s, _) -> s <= f.cum_ack) f.blocks
      in
      let above_window =
        match f.window_hi with
        | None -> None
        | Some hi -> List.find_opt (fun (_, e) -> e > hi) f.blocks
      in
      (match (empty, below_cum, above_window) with
      | Some (s, e), _, _ ->
          bad (Printf.sprintf "empty/reversed SACK block [%d,%d)" s e)
      | None, Some (s, e), _ ->
          bad
            (Printf.sprintf
               "SACK block [%d,%d) not above cum_ack %d (already \
                acknowledged data re-reported)"
               s e f.cum_ack)
      | None, None, Some (s, e) ->
          bad
            (Printf.sprintf
               "SACK block [%d,%d) beyond the highest sent sequence %d \
                (receiver acknowledging data that never existed)"
               s e
               (Option.value f.window_hi ~default:0))
      | None, None, None ->
          check_sorted
            (List.sort (fun (a, _) (b, _) -> Int.compare a b) f.blocks))
  | _ -> None

(* --- Cumulative-ack monotonicity: the light plane's cumulative point
   never moves backwards. *)
let cum_ack_monotone () : check =
  let last : (int, int) Hashtbl.t = Hashtbl.create 8 in
  function
  | Epoch ->
      Hashtbl.reset last;
      None
  | Feedback f -> (
      match Hashtbl.find_opt last f.flow with
      | Some prev when f.cum_ack < prev ->
          Some
            ( f.at,
              f.flow,
              Printf.sprintf "cum_ack went backwards: %d after %d" f.cum_ack
                prev )
      | _ ->
          Hashtbl.replace last f.flow f.cum_ack;
          None)
  | _ -> None

(* --- Packet conservation: every delivered or dropped frame was sent
   exactly once, and no frame is accounted twice — so at any instant
   sent = delivered + lost + in_flight. *)
type fate = Flying | Landed of string

let packet_conservation () : check =
  let seen : (int, fate) Hashtbl.t = Hashtbl.create 1024 in
  let settle at flow uid how =
    match Hashtbl.find_opt seen uid with
    | None ->
        Some
          ( at,
            flow,
            Printf.sprintf "frame #%d %s but never sent" uid how )
    | Some (Landed how0) ->
        Some
          ( at,
            flow,
            Printf.sprintf "frame #%d %s after already being %s" uid how how0
          )
    | Some Flying ->
        Hashtbl.replace seen uid (Landed how);
        None
  in
  function
  | Sent s -> (
      match Hashtbl.find_opt seen s.uid with
      | Some _ ->
          Some
            ( s.at,
              s.flow,
              Printf.sprintf "frame #%d injected twice" s.uid )
      | None ->
          Hashtbl.replace seen s.uid Flying;
          None)
  | Delivered d -> settle d.at d.flow d.uid "delivered"
  | Dropped d -> settle d.at d.flow d.uid "dropped"
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Catalogue *)

type spec = {
  name : string;
  provenance : string;
  doc : string;
  make : unit -> check;
}

let catalogue =
  [
    {
      name = "gtfrc-floor";
      provenance = "paper §4; Lochin et al., gTFRC";
      doc = "X >= min(g, X_calc) outside slow start";
      make = gtfrc_floor;
    };
    {
      name = "tfrc-rate-bounds";
      provenance = "RFC 3448 §4.3";
      doc = "s/t_mbi <= X <= max(2*X_recv, g); X <= interface ceiling";
      make = tfrc_rate_bounds;
    };
    {
      name = "sack-wellformed";
      provenance = "RFC 2018 §4";
      doc =
        "SACK blocks non-empty, disjoint, above cum_ack, within what was \
         sent";
      make = sack_wellformed;
    };
    {
      name = "cum-ack-monotone";
      provenance = "RFC 2018 / paper §3 (QTP_light)";
      doc = "the cumulative acknowledgment never regresses";
      make = cum_ack_monotone;
    };
    {
      name = "packet-conservation";
      provenance = "conservation of frames in the simulated network";
      doc = "sent = delivered + lost + in_flight (no duplication, no loss \
             of accounting)";
      make = packet_conservation;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Checker *)

type t = {
  checks : (string * check) list;
  mutable violations : violation list;  (* newest first, bounded *)
  mutable events : int;
  limit : int;
}

let create ?(limit = 100) () =
  {
    checks = List.map (fun s -> (s.name, s.make ())) catalogue;
    violations = [];
    events = 0;
    limit;
  }

let feed t ev =
  t.events <- t.events + 1;
  List.iter
    (fun (name, check) ->
      if List.length t.violations < t.limit then
        match check ev with
        | Some (at, flow, detail) ->
            t.violations <- { invariant = name; at; flow; detail } :: t.violations
        | None -> ())
    t.checks

let events_seen t = t.events

let violations t = List.rev t.violations

let first_violation t =
  match List.rev t.violations with v :: _ -> Some v | [] -> None

let check_exn t =
  match first_violation t with Some v -> raise (Violation v) | None -> ()
