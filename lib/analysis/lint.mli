(** [vtp_lint]: a token-level linter for the protocol sources.

    The rule table is data-driven: a rule is one record carrying its id,
    severity, the path prefixes it polices, an allowlist, and a matcher
    over the token stream (or over the scanned file set, for tree-shape
    rules such as missing-[.mli]).  Adding a lint is adding one record
    to {!rules}.

    The scanner lexes OCaml just deeply enough to be trustworthy —
    comments (nested, with embedded strings), string/char literals,
    dotted paths glued into single tokens, float vs int literals — so
    rules never fire inside comments or strings.  It is a heuristic
    analyzer by design: it flags [=]/[<>] on float {e literals} (the
    decidable token-level core of "no polymorphic equality on floats"),
    not every float-typed equality. *)

type severity = Warning | Error

type finding = {
  rule_id : string;
  severity : severity;
  path : string;  (** normalised, relative *)
  line : int;
  message : string;
}

type token_kind = Ident | Float_lit | Int_lit | String_lit | Op

type token = { kind : token_kind; text : string; tline : int }

type hit = { hline : int; hmessage : string }

type matcher =
  | Token_rule of (token array -> hit list)
  | File_set_rule of (string list -> (string * hit) list)

type rule = {
  id : string;
  severity : severity;
  doc : string;
  rationale : string;  (** why the pattern is hazardous (for [--explain]) *)
  bad : string;  (** minimal offending example *)
  good : string;  (** the accepted fix *)
  dirs : string list;
  allow : string list;
  matcher : matcher;
}

val rules : rule list
(** The active rule table: poly-compare, float-eq, random-call,
    domain-spawn, obj-magic, assert-false, failwith-empty,
    missing-mli. *)

val tokenize : string -> token list
(** Exposed for tests. *)

val lint_string : path:string -> string -> finding list
(** Run every applicable token rule over one file's contents.  [path]
    decides which rules apply (dir scoping + allowlists). *)

val lint_file_names : string list -> finding list
(** Run the file-set rules (missing-mli) over a list of relative
    paths — no file contents needed. *)

val lint_tree : ?jobs:int -> roots:string list -> unit -> finding list
(** Walk the given directories (skipping dot- and underscore-prefixed
    entries), lint every [.ml] (fanned over an {!Engine.Pool} of [jobs]
    workers, default {!Engine.Pool.default_jobs}), and run the file-set
    rules.  Sorted by path then line, so the report is identical at any
    [jobs]. *)

val errors : finding list -> finding list

val pp_finding : Format.formatter -> finding -> unit
(** [file:line: [rule-id] severity: message] — machine readable. *)

(** {2 Shared plumbing}

    Reused by the structural analyzer ({!Check}) so both scanners agree
    on path normalisation, directory scoping and tree walking. *)

val severity_name : severity -> string

val normalise_path : string -> string
(** Strip a leading ["./"] so directory prefixes match. *)

val contains_sub : sub:string -> string -> bool

val walk : string -> string list
(** Source files ([.ml]/[.mli]) under a directory, skipping dot- and
    underscore-prefixed entries.  Order is unspecified. *)

val read_file : string -> string
