(* A structural parser over the lint lexer's token stream.

   It recovers just enough of the shape of an OCaml compilation unit for
   the rule passes to reason about scope: the sequence of structure
   items (let-bindings, modules, floating attributes), each binding's
   attributes, whether it is a function, and the token span of its body.
   It is not a grammar: item boundaries are recognised by a depth-0
   keyword whose *preceding* token ends an expression (an identifier,
   literal or closer), which cleanly separates `let x = e  let y = ...`
   from `let x = let y = 1 in ...` without parsing expressions.  Like
   the lexer it never sees inside comments or strings, and it stays
   robust on code that does not (yet) compile. *)

type binding = {
  bname : string;
  bline : int;
  battrs : string list;
  bfun : bool;
  bspan : int * int;
  bbody : int * int;
}

type item =
  | Let of binding
  | Module of { mname : string; mline : int; mitems : item list }
  | Floating of { aname : string; aline : int }
  | Other of { okw : string; oline : int; ospan : int * int }

type context = {
  cx_binding : binding;
  cx_mods : string list;
  cx_floating : string list;
}

let item_keywords =
  [
    "let"; "type"; "module"; "open"; "exception"; "include"; "external";
    "and"; "class"; "val";
  ]

(* Keywords that continue an expression: a depth-0 item keyword right
   after one of these is part of the same item, not a new one. *)
let non_enders =
  [
    "in"; "then"; "else"; "begin"; "struct"; "sig"; "object"; "do";
    "downto"; "to"; "with"; "match"; "try"; "fun"; "function"; "if";
    "while"; "for"; "when"; "of"; "as"; "rec"; "nonrec"; "and"; "mutable";
    "private"; "lazy"; "assert"; "not"; "new"; "let"; "type"; "module";
    "open"; "exception"; "include"; "external"; "val"; "method"; "inherit";
    "initializer"; "constraint"; "virtual";
  ]

let is_ender (t : Lint.token) =
  match t.kind with
  | Lint.Int_lit | Lint.Float_lit | Lint.String_lit -> true
  | Lint.Ident -> not (List.mem t.text non_enders)
  | Lint.Op -> ( match t.text with ")" | "]" | "}" -> true | _ -> false)

(* Bracket/block nesting.  `match`/`if` need no closer so they do not
   count; `do...done` covers for/while bodies. *)
let depth_delta (t : Lint.token) =
  match t.text with
  | "(" | "[" | "{" | "begin" | "struct" | "sig" | "object" | "do" -> 1
  | ")" | "]" | "}" | "end" | "done" -> -1
  | _ -> 0

let parse (ts : Lint.token array) : item list =
  let n = Array.length ts in
  let text i = if i >= 0 && i < n then ts.(i).Lint.text else "" in
  let is_ident i =
    i >= 0 && i < n && (match ts.(i).Lint.kind with Lint.Ident -> true | _ -> false)
  in
  let line i =
    if i >= 0 && i < n then ts.(i).Lint.tline
    else if n > 0 then ts.(n - 1).Lint.tline
    else 1
  in
  let all_at s = s <> "" && String.for_all (fun c -> c = '@') s in
  (* attribute opener: "[" followed by a run of '@'s, e.g.
     [@vtp.hot] / [@@deriving] / [@@@vtp.hot] *)
  let at_attr i = text i = "[" && all_at (text (i + 1)) in
  let attr_name i = if is_ident (i + 2) then text (i + 2) else "" in
  (* skip a balanced bracket group starting at i; returns the index one
     past the matching closer *)
  let skip_group i =
    let depth = ref 0 and j = ref i and stop = ref false in
    while (not !stop) && !j < n do
      (match text !j with
      | "(" | "[" | "{" -> incr depth
      | ")" | "]" | "}" ->
          decr depth;
          if !depth = 0 then stop := true
      | _ -> ());
      incr j
    done;
    !j
  in
  let is_item_kw i = is_ident i && List.mem (text i) item_keywords in
  (* End of the item starting at [start]: the first depth-0 item keyword
     preceded by an expression ender, the first depth-0 floating
     attribute, the depth-0 closer of the enclosing block, or [n].
     A depth-0 `and` belongs to an open inner `let ... and ... in`
     chain, not to the item sequence, while any unclosed expression-
     level `let` remains; [inner_lets] tracks that balance. *)
  let find_end start =
    let depth = ref 0 and i = ref start and res = ref n and stop = ref false in
    let inner_lets = ref 0 in
    while (not !stop) && !i < n do
      let t = ts.(!i) in
      let d = depth_delta t in
      let boundary_kw =
        !i > start
        && is_item_kw !i
        && (text !i <> "and" || !inner_lets = 0)
        && is_ender ts.(!i - 1)
      in
      if d < 0 && !depth = 0 then begin
        res := !i;
        stop := true
      end
      else if
        !i > start && !depth = 0
        && (boundary_kw || (at_attr !i && text (!i + 1) = "@@@"))
      then begin
        res := !i;
        stop := true
      end
      else begin
        if !depth = 0 && !i > start then begin
          match t.Lint.text with
          | "let" -> incr inner_lets
          | "in" -> if !inner_lets > 0 then decr inner_lets
          | _ -> ()
        end;
        depth := !depth + d;
        incr i
      end
    done;
    !res
  in
  let parse_let i =
    let bline = line i in
    let battrs = ref [] in
    let j = ref (i + 1) in
    let eat_attrs () =
      (* binding attributes use one or two '@'s: let[@vtp.hot] f ... *)
      while at_attr !j && String.length (text (!j + 1)) <= 2 do
        if attr_name !j <> "" then battrs := attr_name !j :: !battrs;
        j := skip_group !j
      done
    in
    eat_attrs ();
    if text !j = "rec" || text !j = "nonrec" then incr j;
    eat_attrs ();
    let e =
      let e = find_end i in
      if e <= i then i + 1 else e
    in
    let is_pattern = not (is_ident !j) in
    let bname =
      if not is_pattern then text !j
      else if text !j = "(" && text (!j + 1) = ")" then "()"
      else "(pattern)"
    in
    let scan_start = if is_pattern then skip_group !j else !j + 1 in
    (* the binding's own '=' is the first at depth 0 (parameter defaults
       and annotations sit inside parens) *)
    let eq =
      let depth = ref 0 and k = ref scan_start and found = ref (-1) in
      while !found < 0 && !k < e do
        let t = ts.(!k) in
        if !depth = 0 && t.Lint.text = "="
           && (match t.Lint.kind with Lint.Op -> true | _ -> false)
        then found := !k
        else begin
          depth := Stdlib.max 0 (!depth + depth_delta t);
          incr k
        end
      done;
      !found
    in
    let body_lo = if eq >= 0 then eq + 1 else e in
    let params = eq >= 0 && scan_start < eq && text scan_start <> ":" in
    let body_fun =
      body_lo < e && (text body_lo = "fun" || text body_lo = "function")
    in
    (* trailing item attributes: let f x = e [@@vtp.hot] *)
    for k = body_lo to e - 2 do
      if text k = "[" && text (k + 1) = "@@" && attr_name k <> "" then
        battrs := attr_name k :: !battrs
    done;
    ( {
        bname;
        bline;
        battrs = List.rev !battrs;
        bfun = params || body_fun;
        bspan = (i, e);
        bbody = (body_lo, e);
      },
      e )
  in
  let rec parse_items i ~in_module acc =
    if i >= n then (List.rev acc, n)
    else if in_module && text i = "end" then (List.rev acc, i + 1)
    else if at_attr i && text (i + 1) = "@@@" then
      let a = Floating { aname = attr_name i; aline = line i } in
      parse_items (skip_group i) ~in_module (a :: acc)
    else if is_ident i && text i = "let" then
      let b, j = parse_let i in
      parse_items j ~in_module (Let b :: acc)
    else if
      is_ident i && text i = "and"
      && match acc with Let _ :: _ -> true | _ -> false
    then
      let b, j = parse_let i in
      parse_items j ~in_module (Let b :: acc)
    else if is_ident i && text i = "module" && text (i + 1) <> "type" then
      let it, j = parse_module i in
      parse_items j ~in_module (it :: acc)
    else
      let okw = if is_item_kw i then text i else text i in
      let e = find_end i in
      let e = if e <= i then i + 1 else e in
      parse_items e ~in_module
        (Other { okw; oline = line i; ospan = (i, e) } :: acc)
  and parse_module i =
    let mline = line i in
    let j = if text (i + 1) = "rec" then i + 2 else i + 1 in
    let mname = if is_ident j then text j else "?" in
    (* find this item's depth-0 '=' (functor parameters and signature
       annotations live inside parens / after ':') *)
    let eq =
      let depth = ref 0 and k = ref (j + 1) and found = ref (-1) in
      let stop = ref false in
      while (not !stop) && !found < 0 && !k < n do
        let t = ts.(!k) in
        let d = depth_delta t in
        if d < 0 && !depth = 0 then stop := true
        else if
          !depth = 0 && t.Lint.text = "="
          && match t.Lint.kind with Lint.Op -> true | _ -> false
        then found := !k
        else if !depth = 0 && is_item_kw !k && is_ender ts.(!k - 1) then
          stop := true
        else begin
          depth := !depth + d;
          incr k
        end
      done;
      !found
    in
    if eq >= 0 && text (eq + 1) = "struct" then begin
      let mitems, k = parse_items (eq + 2) ~in_module:true [] in
      (Module { mname; mline; mitems }, k)
    end
    else
      let e = find_end i in
      let e = if e <= i then i + 1 else e in
      (Other { okw = "module"; oline = mline; ospan = (i, e) }, e)
  in
  let items, _ = parse_items 0 ~in_module:false [] in
  items

let contexts (items : item list) : context list =
  let acc = ref [] in
  let rec go mods floating items =
    let floats =
      floating
      @ List.filter_map
          (function Floating f -> Some f.aname | _ -> None)
          items
    in
    List.iter
      (function
        | Let b ->
            acc := { cx_binding = b; cx_mods = mods; cx_floating = floats }
                   :: !acc
        | Module m -> go (mods @ [ m.mname ]) floats m.mitems
        | Floating _ | Other _ -> ())
      items
  in
  go [] [] items;
  List.rev !acc

let enclosing (cxs : context list) idx =
  List.find_opt
    (fun c ->
      let lo, hi = c.cx_binding.bspan in
      idx >= lo && idx < hi)
    cxs

let qualified_name c = String.concat "." (c.cx_mods @ [ c.cx_binding.bname ])
