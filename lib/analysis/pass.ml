(* Shared vocabulary of the structural analyzer: the finding record,
   the two pass shapes (per-file over tokens+structure, or once over
   the whole scanned tree), and the token-classification helpers more
   than one rule family needs. *)

type finding = {
  rule : string;
  family : string;
  path : string;
  line : int;
  message : string;
  context : string;  (** enclosing binding ("Mod.name") or rule anchor *)
}

type source_ctx = {
  sc_path : string;
  sc_tokens : Lint.token array;
  sc_items : Parser.item list;
  sc_contexts : Parser.context list;
}

type tree_ctx = {
  tc_files : string list;  (** normalised paths of every scanned file *)
  tc_read : string -> string option;  (** contents by normalised path *)
}

type kind =
  | File_pass of (source_ctx -> finding list)
  | Tree_pass of (tree_ctx -> finding list)

type t = {
  id : string;
  family : string;
  doc : string;
  rationale : string;
  bad : string;
  good : string;
  dirs : string list;  (** path substrings where the pass is active; [] = all *)
  allow : string list;  (** path substrings exempt from the pass *)
  kind : kind;
}

let applies p path =
  let path = Lint.normalise_path path in
  (p.dirs = [] || List.exists (fun d -> Lint.contains_sub ~sub:d path) p.dirs)
  && not (List.exists (fun a -> Lint.contains_sub ~sub:a path) p.allow)

let components s = String.split_on_char '.' s

let last_component s =
  match List.rev (components s) with c :: _ -> c | [] -> s

let strip_stdlib s =
  let prefix = "Stdlib." in
  if String.starts_with ~prefix s then
    String.sub s (String.length prefix) (String.length s - String.length prefix)
  else s

(* Pattern-vs-expression position for tokens that appear on both sides
   of an arrow ([Some], [::], [\[]): walk left until a token that can
   only introduce a pattern ('|', 'with') or one that restarts an
   expression.  Heuristic — deeply nested constructor patterns inside
   parens classify as expressions — but exact on the match/function
   arms that make up nearly all real pattern positions. *)
let expr_position (ts : Lint.token array) i =
  let rec back j =
    if j < 0 then true
    else
      match ts.(j).Lint.text with
      | "|" | "with" -> false
      | "->" | ":=" | "<-" | "=" | "in" | "then" | "else" | "begin" | "("
      | "[" | ";" | "do" | "try" | "when" | "if" | "&&" | "||" ->
          true
      | _ -> back (j - 1)
  in
  back (i - 1)

let finding ~rule ~family ~path ~line ~message ~context =
  { rule; family; path; line; message; context }
