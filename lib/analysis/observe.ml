(* Tap a live simulation for the invariant checker: endpoint send /
   delivery hooks, link drops, mangler fault accounting and the
   {!Qtp.Inspect} rate-sample hook all feed one {!Invariants.t}. *)

let vtp_uid (frame : Netsim.Frame.t) =
  match frame.Netsim.Frame.body with
  | Qtp.Vtp_wire.Vtp _ -> Some frame.Netsim.Frame.uid
  | _ -> None

let instrument_mangler checker ~sim (m : Netsim.Mangler.t) =
  let now () = Engine.Sim.now sim in
  let feed ev = Invariants.feed checker ev in
  (* A duplicate is a brand-new frame (fresh uid) injected mid-network:
     register it as sent so its later delivery (or drop) balances. *)
  Netsim.Mangler.on_duplicate m (fun ~orig ~dup ->
      match vtp_uid orig with
      | Some _ ->
          feed
            (Invariants.Sent
               {
                 at = now ();
                 flow = dup.Netsim.Frame.flow_id;
                 uid = dup.Netsim.Frame.uid;
               })
      | None -> ());
  (* A corrupted frame keeps its uid but its body is wrapped, so no
     endpoint tap will ever recognise it as VTP again — settle it as
     dropped at the instant of corruption. *)
  Netsim.Mangler.on_corrupt m (fun frame ->
      match vtp_uid frame with
      | Some uid ->
          feed
            (Invariants.Dropped
               { at = now (); flow = frame.Netsim.Frame.flow_id; uid })
      | None -> ())

let instrument checker (topo : Netsim.Topology.t) =
  let open Netsim in
  let sim = topo.Topology.sim in
  let now () = Engine.Sim.now sim in
  let feed ev = Invariants.feed checker ev in
  (* Sub-cases inside one experiment reuse flow ids with fresh
     connections; reset the per-flow feedback state. *)
  feed Invariants.Epoch;
  (* Only the protocol under test is tracked: VTP frame uids come from
     one global counter, so they are unique across flows and
     directions; TCP / background frames use separate counters and
     would collide. *)
  let hi_sent : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let note_sent flow (frame : Frame.t) =
    match frame.Frame.body with
    | Qtp.Vtp_wire.Vtp seg ->
        feed (Invariants.Sent { at = now (); flow; uid = frame.Frame.uid });
        (match seg.Packet.Segment.hdr with
        | Packet.Header.Data d ->
            let s = Packet.Serial.to_int d.Packet.Header.seq in
            let prev =
              Option.value (Hashtbl.find_opt hi_sent flow) ~default:(-1)
            in
            if s > prev then Hashtbl.replace hi_sent flow s
        | _ -> ())
    | _ -> ()
  in
  let note_delivered flow frame =
    match vtp_uid frame with
    | Some uid -> feed (Invariants.Delivered { at = now (); flow; uid })
    | None -> ()
  in
  let note_feedback flow (frame : Frame.t) =
    match frame.Frame.body with
    | Qtp.Vtp_wire.Vtp
        { Packet.Segment.hdr = Packet.Header.Sack_feedback sf; _ } ->
        let blocks =
          List.map
            (fun b ->
              ( Packet.Serial.to_int b.Packet.Header.block_start,
                Packet.Serial.to_int b.Packet.Header.block_end ))
            sf.Packet.Header.blocks
        in
        let window_hi =
          Option.map (fun hi -> hi + 1) (Hashtbl.find_opt hi_sent flow)
        in
        feed
          (Invariants.Feedback
             {
               at = now ();
               flow;
               cum_ack = Packet.Serial.to_int sf.Packet.Header.cum_ack;
               blocks;
               window_hi;
             })
    | _ -> ()
  in
  Array.iteri
    (fun i (ep : Topology.endpoint) ->
      let flow = ep.Topology.flow_id in
      topo.Topology.endpoints.(i) <-
        {
          ep with
          Topology.to_receiver =
            (fun f ->
              note_sent flow f;
              ep.Topology.to_receiver f);
          (* Feedback is checked at emission: cum-ack monotonicity and
             SACK well-formedness are receiver properties, and the
             reverse path may legitimately reorder reports in flight. *)
          to_sender =
            (fun f ->
              note_sent flow f;
              note_feedback flow f;
              ep.Topology.to_sender f);
          on_receiver_rx =
            (fun sink ->
              ep.Topology.on_receiver_rx (fun f ->
                  note_delivered flow f;
                  sink f));
          on_sender_rx =
            (fun sink ->
              ep.Topology.on_sender_rx (fun f ->
                  note_delivered flow f;
                  sink f));
        })
    topo.Topology.endpoints;
  List.iter
    (fun link ->
      Link.on_drop link (fun (f : Frame.t) ->
          match vtp_uid f with
          | Some uid ->
              feed
                (Invariants.Dropped
                   { at = now (); flow = f.Frame.flow_id; uid })
          | None -> ());
      match Link.mangler link with
      | Some m -> instrument_mangler checker ~sim m
      | None -> ())
    topo.Topology.links

let install_rate_hook checker =
  Qtp.Inspect.install
    {
      Qtp.Inspect.on_rate_sample =
        (fun s ->
          Invariants.feed checker
            (Invariants.Rate
               {
                 at = s.Qtp.Inspect.at;
                 flow = s.Qtp.Inspect.flow_id;
                 x_bps = s.Qtp.Inspect.x_bps;
                 x_calc_bps = s.Qtp.Inspect.x_calc_bps;
                 x_recv_bps = s.Qtp.Inspect.x_recv_bps;
                 p = s.Qtp.Inspect.p;
                 g_bps = s.Qtp.Inspect.g_bps;
                 cap_bps = s.Qtp.Inspect.cap_bps;
                 mbi_floor_bps = s.Qtp.Inspect.mbi_floor_bps;
                 slow_start = s.Qtp.Inspect.slow_start;
               }));
    }

let clear_rate_hook = Qtp.Inspect.clear

let with_checker f =
  let checker = Invariants.create () in
  install_rate_hook checker;
  Fun.protect ~finally:clear_rate_hook (fun () ->
      let result = f checker in
      Invariants.check_exn checker;
      result)
