(* A token-level linter for the protocol sources.

   The scanner is deliberately not a full parser: it lexes OCaml well
   enough to see through comments, strings and char literals, glue
   dotted paths into single tokens ("Stdlib.compare", "Random.int") and
   classify numeric literals.  Rules then pattern-match short token
   windows.  That keeps the linter dependency-free, fast, and — unlike
   a compiler-libs AST pass — robust against code that does not (yet)
   compile. *)

type severity = Warning | Error

let severity_name = function Warning -> "warning" | Error -> "error"

type finding = {
  rule_id : string;
  severity : severity;
  path : string;
  line : int;
  message : string;
}

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token_kind = Ident | Float_lit | Int_lit | String_lit | Op

type token = { kind : token_kind; text : string; tline : int }

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

let is_op_char c = String.contains "!$%&*+-/:<=>?@^|~." c

let tokenize (src : string) : token list =
  let n = String.length src in
  let line = ref 1 in
  let toks = ref [] in
  let push kind text tline = toks := { kind; text; tline } :: !toks in
  let i = ref 0 in
  let bump_lines upto =
    (* count newlines between the current position and [upto] *)
    for k = !i to upto - 1 do
      if k < n && src.[k] = '\n' then incr line
    done
  in
  (* Skip a string literal starting at [j] (src.[j] = '"'); returns the
     index one past the closing quote and the raw literal. *)
  let skip_string j =
    let k = ref (j + 1) in
    let stop = ref false in
    while (not !stop) && !k < n do
      (match src.[!k] with
      | '\\' -> incr k (* skip escaped char *)
      | '"' -> stop := true
      | '\n' -> incr line
      | _ -> ());
      incr k
    done;
    !k
  in
  (* Skip a (possibly nested) comment starting at [j] with src.[j..j+1] =
     "(*".  OCaml lexes string literals inside comments, so '"' must be
     honoured there too. *)
  let skip_comment j =
    let depth = ref 1 in
    let k = ref (j + 2) in
    while !depth > 0 && !k < n do
      if !k + 1 < n && src.[!k] = '(' && src.[!k + 1] = '*' then begin
        incr depth;
        k := !k + 2
      end
      else if !k + 1 < n && src.[!k] = '*' && src.[!k + 1] = ')' then begin
        decr depth;
        k := !k + 2
      end
      else if src.[!k] = '"' then begin
        let j2 = skip_string !k in
        k := j2
      end
      else begin
        if src.[!k] = '\n' then incr line;
        incr k
      end
    done;
    !k
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if !i + 1 < n && c = '(' && src.[!i + 1] = '*' then i := skip_comment !i
    else if c = '"' then begin
      let tline = !line in
      let j = skip_string !i in
      push String_lit (String.sub src !i (j - !i)) tline;
      i := j
    end
    else if c = '\'' then begin
      (* char literal or type variable *)
      if !i + 2 < n && src.[!i + 1] = '\\' then begin
        (* escaped char literal: skip to closing quote *)
        let k = ref (!i + 2) in
        while !k < n && src.[!k] <> '\'' do incr k done;
        i := !k + 1
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' then i := !i + 3
        (* plain char literal *)
      else incr i (* type variable quote: skip, lex the name as ident *)
    end
    else if is_ident_start c then begin
      let tline = !line in
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do incr j done;
      (* glue dotted paths: "Stdlib.compare", "t.touched" *)
      let continue = ref true in
      while !continue do
        if
          !j + 1 < n
          && src.[!j] = '.'
          && is_ident_start src.[!j + 1]
        then begin
          incr j;
          while !j < n && is_ident_char src.[!j] do incr j done
        end
        else continue := false
      done;
      push Ident (String.sub src !i (!j - !i)) tline;
      i := !j
    end
    else if is_digit c then begin
      let tline = !line in
      let j = ref !i in
      let is_float = ref false in
      while !j < n && (is_digit src.[!j] || src.[!j] = '_') do incr j done;
      if !j < n && src.[!j] = '.' && not (!j + 1 < n && src.[!j + 1] = '.')
      then begin
        is_float := true;
        incr j;
        while !j < n && (is_digit src.[!j] || src.[!j] = '_') do incr j done
      end;
      if !j < n && (src.[!j] = 'e' || src.[!j] = 'E') then begin
        let k = !j + 1 in
        let k = if k < n && (src.[k] = '+' || src.[k] = '-') then k + 1 else k in
        if k < n && is_digit src.[k] then begin
          is_float := true;
          j := k;
          while !j < n && (is_digit src.[!j] || src.[!j] = '_') do incr j done
        end
      end;
      push (if !is_float then Float_lit else Int_lit)
        (String.sub src !i (!j - !i))
        tline;
      i := !j
    end
    else if is_op_char c then begin
      let tline = !line in
      let j = ref !i in
      while !j < n && is_op_char src.[!j] do incr j done;
      (* don't let a comment opener hide inside an operator run *)
      push Op (String.sub src !i (!j - !i)) tline;
      bump_lines !j;
      i := !j
    end
    else begin
      push Op (String.make 1 c) !line;
      incr i
    end
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Rules *)

type hit = { hline : int; hmessage : string }

type matcher =
  | Token_rule of (token array -> hit list)
      (** runs over the token stream of one [.ml] file *)
  | File_set_rule of (string list -> (string * hit) list)
      (** runs once over the relative paths of all scanned files;
          returns (path, hit) pairs — e.g. the missing-[.mli] rule *)

type rule = {
  id : string;
  severity : severity;
  doc : string;
  rationale : string;  (** why the pattern is hazardous (for [--explain]) *)
  bad : string;  (** minimal offending example *)
  good : string;  (** the accepted fix *)
  dirs : string list;  (** path prefixes where the rule is active; [] = all *)
  allow : string list;  (** path substrings exempt from the rule *)
  matcher : matcher;
}

let tok (ts : token array) i =
  if i >= 0 && i < Array.length ts then Some ts.(i) else None

let text_at ts i = match tok ts i with Some t -> t.text | None -> ""

(* Path component test: does [path] start with component [head]
   ("Random.int" starts with "Random")? *)
let first_component s =
  match String.index_opt s '.' with
  | Some i -> String.sub s 0 i
  | None -> s

let scan_tokens f ts =
  let hits = ref [] in
  Array.iteri (fun i t -> match f ts i t with
    | Some h -> hits := h :: !hits
    | None -> ()) ts;
  List.rev !hits

(* [=] / [<>] applied to a float literal.  A bare [=] is also a binder
   (let, record fields, labelled defaults), so an equality is only
   flagged when the token before the left operand introduces an
   expression context. *)
let float_eq_matcher ts =
  let expr_intro = function
    | "if" | "when" | "then" | "else" | "&&" | "||" | "(" | "begin" | "not"
    | "assert" | "->" | "=" | "<>" | "while" | "do" ->
        true
    | _ -> false
  in
  scan_tokens
    (fun ts i t ->
      if t.kind <> Op || (t.text <> "=" && t.text <> "<>") then None
      else
        let left = tok ts (i - 1) and right = tok ts (i + 1) in
        let float_operand =
          (match left with Some l -> l.kind = Float_lit | None -> false)
          || match right with Some r -> r.kind = Float_lit | None -> false
        in
        let simple_left =
          match left with
          | Some l -> (
              match l.kind with
              | Ident | Float_lit | Int_lit -> true
              | String_lit | Op -> false)
          | None -> false
        in
        if not float_operand then None
        else if t.text = "<>" then
          Some
            {
              hline = t.tline;
              hmessage =
                "polymorphic <> on a float; use explicit Float comparison";
            }
        else if not simple_left then
          (* e.g. [let f () = 8.0 *. x]: a binder, not a comparison *)
          None
        else
          (* left operand is a single path/literal token at i-1; the
             token before it decides binder vs expression *)
          let before = text_at ts (i - 2) in
          let is_opt_default =
            before = "(" && text_at ts (i - 3) = "?"
          in
          if expr_intro before && not is_opt_default then
            Some
              {
                hline = t.tline;
                hmessage =
                  "polymorphic = on a float; use Float.equal (or an \
                   epsilon comparison)";
              }
          else None)
    ts

(* Bare [compare] / [Stdlib.compare]: the polymorphic structural compare
   raises on functional values, is wrong on floats (nan) and silently
   depends on record field order — protocol code must use typed
   comparators (Int.compare, Float.compare, Serial.compare, ...). *)
let poly_compare_matcher ts =
  scan_tokens
    (fun ts i t ->
      if t.kind <> Ident then None
      else if t.text = "Stdlib.compare" || t.text = "Poly.compare" then
        Some
          {
            hline = t.tline;
            hmessage =
              t.text ^ " is polymorphic; use a typed comparator \
                        (Int.compare, Float.compare, Serial.compare, ...)";
          }
      else if t.text = "compare" then begin
        (* exempt: definitions (let compare), labels (~compare[:]),
           record-field declarations (compare : ...) *)
        let prev = text_at ts (i - 1) and next = text_at ts (i + 1) in
        if prev = "let" || prev = "~" || prev = "and" || next = ":" || next = "="
        then None
        else
          Some
            {
              hline = t.tline;
              hmessage =
                "bare polymorphic compare; use a typed comparator";
            }
      end
      else None)
    ts

(* Any [Random.*] call outside the engine's seeded RNG shim breaks
   experiment reproducibility (the determinism guard). *)
let random_matcher ts =
  scan_tokens
    (fun _ _ t ->
      if t.kind = Ident && first_component t.text = "Random" then
        Some
          {
            hline = t.tline;
            hmessage =
              "global Random used; draw from Engine.Rng (seeded, \
               splittable) instead";
          }
      else None)
    ts

(* [Domain.spawn] outside the engine's pool: ad-hoc domains bypass the
   pool's determinism contract (submission-order collection, bounded
   worker count) and its shutdown accounting — all parallelism must go
   through [Engine.Pool]. *)
let domain_spawn_matcher ts =
  let is_spawn s =
    let suffix = "Domain.spawn" in
    let n = String.length s and m = String.length suffix in
    n >= m && String.sub s (n - m) m = suffix
  in
  scan_tokens
    (fun _ _ t ->
      if t.kind = Ident && is_spawn t.text then
        Some
          {
            hline = t.tline;
            hmessage =
              "Domain.spawn outside Engine.Pool; submit tasks to the \
               work-stealing pool instead";
          }
      else None)
    ts

let obj_magic_matcher ts =
  scan_tokens
    (fun _ _ t ->
      if t.kind = Ident && t.text = "Obj.magic" then
        Some { hline = t.tline; hmessage = "Obj.magic defeats the type system" }
      else None)
    ts

let assert_false_matcher ts =
  scan_tokens
    (fun ts i t ->
      if t.kind = Ident && t.text = "assert" && text_at ts (i + 1) = "false"
      then
        Some
          {
            hline = t.tline;
            hmessage =
              "bare 'assert false'; raise an informative error \
               (invalid_arg/failwith with a message) instead";
          }
      else None)
    ts

let failwith_empty_matcher ts =
  scan_tokens
    (fun ts i t ->
      if
        t.kind = Ident
        && t.text = "failwith"
        && text_at ts (i + 1) = "\"\""
      then
        Some
          {
            hline = t.tline;
            hmessage = "failwith with an empty message";
          }
      else None)
    ts

(* Every library module must publish an interface.  "lib/" may be the
   start of a relative path or a component of an absolute one. *)
let in_lib f =
  let pre = "lib/" in
  (String.length f > 4 && String.sub f 0 4 = pre)
  ||
  let rec at i =
    i + 5 <= String.length f
    && ((f.[i] = '/' && String.sub f (i + 1) 4 = pre) || at (i + 1))
  in
  at 0

let missing_mli_rule files =
  List.filter_map
    (fun f ->
      if Filename.check_suffix f ".ml" && in_lib f then
        let mli = f ^ "i" in
        if List.mem mli files then None
        else
          Some
            ( f,
              {
                hline = 1;
                hmessage = "library module has no .mli interface";
              } )
      else None)
    files

let protocol_dirs =
  [ "lib/tfrc"; "lib/sack"; "lib/core"; "lib/fuzz"; "lib/trace" ]

let rules : rule list =
  [
    {
      id = "poly-compare";
      severity = Error;
      doc =
        "bare compare/Stdlib.compare in protocol code (floats and \
         protocol records need typed comparators)";
      rationale =
        "Polymorphic compare raises on functional values, orders nan \
         inconsistently and silently depends on record field order, so \
         protocol state comparisons drift when a type is refactored.";
      bad = "let newer a b = compare a.seq b.seq > 0";
      good = "let newer a b = Serial.compare a.seq b.seq > 0";
      dirs = protocol_dirs;
      allow = [];
      matcher = Token_rule poly_compare_matcher;
    };
    {
      id = "float-eq";
      severity = Error;
      doc = "polymorphic =/<> applied to a float literal";
      rationale =
        "Structural =/<> on floats is exact bit equality through the \
         polymorphic comparator: nan <> nan surprises, and rates that \
         differ by one ulp take the wrong branch silently.";
      bad = "if rtt = 0.0 then init_window t";
      good = "if Float.equal rtt 0.0 then init_window t";
      dirs = protocol_dirs @ [ "lib/stats" ];
      allow = [];
      matcher = Token_rule float_eq_matcher;
    };
    {
      id = "random-call";
      severity = Error;
      doc =
        "Random.* outside lib/engine/rng.ml (experiments must be \
         reproducible from the root seed)";
      rationale =
        "The global Random state is shared, unseeded by default and \
         domain-local in OCaml 5, so any draw outside the engine's \
         splittable RNG makes runs irreproducible and schedule-dependent.";
      bad = "let jitter () = Random.float 0.01";
      good = "let jitter rng = Engine.Rng.float rng 0.01";
      dirs = [];
      allow = [ "lib/engine/rng.ml" ];
      matcher = Token_rule random_matcher;
    };
    {
      id = "domain-spawn";
      severity = Error;
      doc =
        "Domain.spawn outside lib/engine/pool.ml (all parallelism goes \
         through the work-stealing pool)";
      rationale =
        "Ad-hoc domains bypass the pool's determinism contract \
         (submission-order collection, bounded worker count) and its \
         shutdown accounting, so results depend on the scheduler.";
      bad = "let d = Domain.spawn (fun () -> run seed)";
      good = "Engine.Pool.with_pool (fun p -> Engine.Pool.map p run seeds)";
      dirs = [];
      allow = [ "lib/engine/pool.ml" ];
      matcher = Token_rule domain_spawn_matcher;
    };
    {
      id = "obj-magic";
      severity = Error;
      doc = "Obj.magic anywhere";
      rationale =
        "Obj.magic defeats the type system; a representation change \
         anywhere upstream becomes a segfault at a distance.";
      bad = "let id = Obj.magic handle";
      good = "let id = Handle.to_int handle";
      dirs = [];
      allow = [];
      matcher = Token_rule obj_magic_matcher;
    };
    {
      id = "assert-false";
      severity = Error;
      doc = "bare 'assert false' without an informative message";
      rationale =
        "assert false crashes with no context and disappears under \
         -noassert; unreachable branches should raise an informative, \
         always-on error.";
      bad = "| Unknown -> assert false";
      good = "| Unknown -> invalid_arg \"Frame.decode: unknown kind\"";
      dirs = [];
      allow = [];
      matcher = Token_rule assert_false_matcher;
    };
    {
      id = "failwith-empty";
      severity = Error;
      doc = "failwith \"\" carries no diagnostic";
      rationale =
        "An empty Failure message turns a precise protocol violation \
         into an unactionable stack trace.";
      bad = "if n < 0 then failwith \"\"";
      good = "if n < 0 then failwith \"Ring.push: negative length\"";
      dirs = [];
      allow = [];
      matcher = Token_rule failwith_empty_matcher;
    };
    {
      id = "missing-mli";
      severity = Error;
      doc = "library .ml without a sibling .mli";
      rationale =
        "Interface-less library modules export every helper, so \
         internal refactors break downstream code and the hygiene \
         passes cannot reason about the intended API surface.";
      bad = "lib/foo/util.ml with no lib/foo/util.mli";
      good = "lib/foo/util.mli declaring the exported values";
      dirs = [ "lib" ];
      allow = [];
      matcher = File_set_rule missing_mli_rule;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Driving *)

let normalise_path p =
  (* strip leading "./" so dir prefixes match *)
  if String.length p > 2 && String.sub p 0 2 = "./" then
    String.sub p 2 (String.length p - 2)
  else p

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let rule_applies r path =
  let path = normalise_path path in
  (r.dirs = [] || List.exists (fun d -> contains_sub ~sub:d path) r.dirs)
  && not (List.exists (fun a -> contains_sub ~sub:a path) r.allow)

let finding_of_hit r path (h : hit) =
  {
    rule_id = r.id;
    severity = r.severity;
    path = normalise_path path;
    line = h.hline;
    message = h.hmessage;
  }

let lint_string ~path src =
  let ts = Array.of_list (tokenize src) in
  List.concat_map
    (fun r ->
      match r.matcher with
      | File_set_rule _ -> []
      | Token_rule m ->
          if rule_applies r path then
            List.map (finding_of_hit r path) (m ts)
          else [])
    rules

let lint_file_names files =
  let files = List.map normalise_path files in
  List.concat_map
    (fun r ->
      match r.matcher with
      | Token_rule _ -> []
      | File_set_rule m ->
          List.filter_map
            (fun (path, h) ->
              if rule_applies r path then Some (finding_of_hit r path h)
              else None)
            (m files))
    rules

let rec walk dir =
  match Sys.readdir dir with
  | entries ->
      Array.fold_left
        (fun acc e ->
          if String.length e > 0 && (e.[0] = '.' || e.[0] = '_') then acc
          else
            let p = Filename.concat dir e in
            if Sys.is_directory p then walk p @ acc
            else if
              Filename.check_suffix e ".ml" || Filename.check_suffix e ".mli"
            then p :: acc
            else acc)
        [] entries
  | exception Sys_error _ -> []

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_tree ?jobs ~roots () =
  let files = List.concat_map walk roots in
  let ml_files =
    Array.of_list (List.filter (fun f -> Filename.check_suffix f ".ml") files)
  in
  (* Per-file lint is embarrassingly parallel; the final sort makes the
     report order independent of which worker finished first. *)
  let token_findings =
    Engine.Pool.with_pool ?jobs (fun pool ->
        Engine.Pool.map pool
          (fun p -> lint_string ~path:p (read_file p))
          ml_files)
    |> Array.to_list |> List.concat
  in
  let tree_findings = lint_file_names files in
  List.sort
    (fun a b ->
      match String.compare a.path b.path with
      | 0 -> Int.compare a.line b.line
      | c -> c)
    (token_findings @ tree_findings)

let errors findings =
  List.filter (fun (f : finding) -> f.severity = Error) findings

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d: [%s] %s: %s" f.path f.line f.rule_id
    (severity_name f.severity)
    f.message
