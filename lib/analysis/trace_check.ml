(* Replay a Netsim.Tracer buffer through the invariant checker.

   A tracer records frame events at named tap points; a [roles] mapping
   says which points mean "frame injected", "frame delivered to the
   application side" and "frame dropped".  Conservation (and any other
   frame-level invariant) is then checked exactly as in a live run. *)

type roles = {
  sent : string list;
  delivered : string list;
  dropped : string list;
}

let default_roles =
  { sent = [ "sent" ]; delivered = [ "delivered" ]; dropped = [ "dropped" ] }

let mem point names = List.exists (String.equal point) names

let event_of roles (ev : Netsim.Tracer.event) =
  if mem ev.point roles.sent then
    Some
      (Invariants.Sent { at = ev.at; flow = ev.flow_id; uid = ev.uid })
  else if mem ev.point roles.delivered then
    Some
      (Invariants.Delivered { at = ev.at; flow = ev.flow_id; uid = ev.uid })
  else if mem ev.point roles.dropped then
    Some
      (Invariants.Dropped { at = ev.at; flow = ev.flow_id; uid = ev.uid })
  else None

let replay ?(roles = default_roles) checker events =
  List.iter
    (fun ev ->
      match event_of roles ev with
      | Some e -> Invariants.feed checker e
      | None -> ())
    events

let check ?roles events =
  let checker = Invariants.create () in
  replay ?roles checker events;
  Invariants.first_violation checker
