(** Unified report over the token lint and the structural check: entry
    records with line-insensitive fingerprints, deterministic ordering,
    and SARIF 2.1.0-style JSON emission. *)

type entry = {
  rule : string;
  family : string;
  severity : string;  (** "error" | "warning" *)
  path : string;
  line : int;
  message : string;
  context : string;
  fingerprint : string;  (** MD5 over rule|path|context|message *)
}

val fingerprint :
  rule:string -> path:string -> context:string -> message:string -> string
(** Line-insensitive, so edits above a finding don't churn the
    baseline. *)

val make :
  rule:string ->
  family:string ->
  severity:string ->
  path:string ->
  line:int ->
  message:string ->
  context:string ->
  entry

val of_lint : Lint.finding list -> entry list

val of_check : Pass.finding list -> entry list

val compare_entry : entry -> entry -> int

val sort : entry list -> entry list
(** By (path, line, rule, message) — identical at any worker count. *)

val sarif : rules:(string * string) list -> (entry * bool) list -> Stats.Json.t
(** SARIF-style report; [rules] is (id, doc) metadata for the tool
    section, the [bool] is "is new vs the baseline" (rendered as
    [baselineState]). *)

val pp_entry : Format.formatter -> entry * bool -> unit
(** [file:line: [rule] severity: message] with a ["(baselined)"]
    suffix on suppressed findings. *)
