(** Replay {!Netsim.Tracer} output through the protocol-invariant
    checker.

    Tap points are free-form strings; [roles] names the points that mean
    "injected", "delivered" and "dropped".  Events whose point carries
    none of these roles are ignored (they are still useful for ordering
    assertions in tests, just not for conservation). *)

type roles = {
  sent : string list;
  delivered : string list;
  dropped : string list;
}

val default_roles : roles
(** ["sent"], ["delivered"], ["dropped"]. *)

val replay :
  ?roles:roles -> Invariants.t -> Netsim.Tracer.event list -> unit
(** Feed each tracer event (oldest first, as {!Netsim.Tracer.events}
    returns them) into the checker. *)

val check :
  ?roles:roles -> Netsim.Tracer.event list -> Invariants.violation option
(** One-shot: fresh checker, replay, first violation if any. *)
