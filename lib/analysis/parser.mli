(** Structural parser over {!Lint.tokenize} output.

    Recovers the item structure of one OCaml source file — let-bindings
    (with attributes, function-ness and body span), [struct ... end]
    modules, floating attributes — without compiler-libs, so the rule
    passes can reason about scope ("is this binding top-level mutable
    state?", "is this token inside a [\[@vtp.hot\]] body?") on code
    that may not even compile.

    Heuristic by design: item boundaries are depth-0 item keywords whose
    preceding token ends an expression, which distinguishes a new
    [let] item from a [let ... in] inside a body. *)

type binding = {
  bname : string;  (** ["()"] / ["(pattern)"] for non-variable patterns *)
  bline : int;
  battrs : string list;
      (** [\[@attr\]] names on the binding, leading or trailing *)
  bfun : bool;  (** has parameters, or body starts with [fun]/[function] *)
  bspan : int * int;  (** token index range of the whole item, half-open *)
  bbody : int * int;  (** tokens after the binding's [=]; empty if none *)
}

type item =
  | Let of binding
  | Module of { mname : string; mline : int; mitems : item list }
  | Floating of { aname : string; aline : int }
      (** [\[@@@attr\]] — scopes over the enclosing structure *)
  | Other of { okw : string; oline : int; ospan : int * int }
      (** [type]/[open]/[module type]/... items the passes don't model *)

type context = {
  cx_binding : binding;
  cx_mods : string list;  (** enclosing module names, outermost first *)
  cx_floating : string list;
      (** floating attribute names of every enclosing structure *)
}

val is_ender : Lint.token -> bool
(** Can this token end an expression (identifier, literal, closer)?
    The boundary test behind item splitting, exposed for rules that
    need the same "what precedes me" classification. *)

val parse : Lint.token array -> item list

val contexts : item list -> context list
(** Every binding in the file, each with its enclosing module path and
    the floating attributes in scope, in source order. *)

val enclosing : context list -> int -> context option
(** The binding whose item span contains the given token index. *)

val qualified_name : context -> string
(** ["Mod.sub.name"] — stable context string for fingerprints. *)
