(* Unified report over both scanners (token lint + structural check):
   one entry shape, a line-insensitive fingerprint for baseline
   matching, and SARIF 2.1.0-style JSON built on Stats.Json so the
   output is byte-deterministic. *)

type entry = {
  rule : string;
  family : string;
  severity : string;  (** "error" | "warning" *)
  path : string;
  line : int;
  message : string;
  context : string;
  fingerprint : string;
}

(* Line numbers are deliberately excluded so unrelated edits above a
   finding don't churn the baseline; the context (enclosing binding)
   disambiguates repeated messages within a file. *)
let fingerprint ~rule ~path ~context ~message =
  Digest.to_hex
    (Digest.string (String.concat "|" [ rule; path; context; message ]))

let make ~rule ~family ~severity ~path ~line ~message ~context =
  {
    rule;
    family;
    severity;
    path;
    line;
    message;
    context;
    fingerprint = fingerprint ~rule ~path ~context ~message;
  }

let of_lint (fs : Lint.finding list) =
  List.map
    (fun (f : Lint.finding) ->
      make ~rule:f.rule_id ~family:"lint"
        ~severity:(Lint.severity_name f.severity)
        ~path:f.path ~line:f.line ~message:f.message ~context:"")
    fs

let of_check (fs : Pass.finding list) =
  List.map
    (fun (f : Pass.finding) ->
      make ~rule:f.rule ~family:f.family ~severity:"error" ~path:f.path
        ~line:f.line ~message:f.message ~context:f.context)
    fs

let compare_entry a b =
  match String.compare a.path b.path with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match String.compare a.rule b.rule with
          | 0 -> String.compare a.message b.message
          | c -> c)
      | c -> c)
  | c -> c

let sort entries = List.sort compare_entry entries

let sarif ~rules (classified : (entry * bool) list) : Stats.Json.t =
  let open Stats.Json in
  let rule_objs =
    List.map
      (fun (id, doc) ->
        Obj
          [
            ("id", String id);
            ("shortDescription", Obj [ ("text", String doc) ]);
          ])
      (List.sort_uniq
         (fun (a, _) (b, _) -> String.compare a b)
         rules)
  in
  let result_objs =
    List.map
      (fun (e, is_new) ->
        Obj
          [
            ("ruleId", String e.rule);
            ("level", String e.severity);
            ("message", Obj [ ("text", String e.message) ]);
            ( "locations",
              List
                [
                  Obj
                    [
                      ( "physicalLocation",
                        Obj
                          [
                            ( "artifactLocation",
                              Obj [ ("uri", String e.path) ] );
                            ( "region",
                              Obj [ ("startLine", Int e.line) ] );
                          ] );
                    ];
                ] );
            ( "partialFingerprints",
              Obj [ ("vtp/v1", String e.fingerprint) ] );
            ("baselineState", String (if is_new then "new" else "unchanged"));
            ( "properties",
              Obj
                [
                  ("family", String e.family);
                  ("context", String e.context);
                ] );
          ])
      classified
  in
  Obj
    [
      ("$schema", String "https://json.schemastore.org/sarif-2.1.0.json");
      ("version", String "2.1.0");
      ( "runs",
        List
          [
            Obj
              [
                ( "tool",
                  Obj
                    [
                      ( "driver",
                        Obj
                          [
                            ("name", String "vtp_lint");
                            ("rules", List rule_objs);
                          ] );
                    ] );
                ("results", List result_objs);
              ];
          ] );
    ]

let pp_entry fmt (e, is_new) =
  Format.fprintf fmt "%s:%d: [%s] %s: %s%s" e.path e.line e.rule e.severity
    e.message
    (if is_new then "" else " (baselined)")
