(** The protocol instances of the paper, as capability offers.

    A profile is just a canned {!Capabilities.offer}; composing it with
    a peer's offer through {!Capabilities.negotiate} (or fixing it with
    [agreed_exn]) yields a runnable configuration for
    {!Connection.create}. *)

val qtp_af : ?ecn:bool -> g_bps:float -> unit -> Capabilities.offer
(** {b QTP_AF} (§4): QoS-aware reliable transport for DiffServ/AF
    networks — standard TFRC feedback specialised with the gTFRC target
    rate [g], composed with full SACK reliability. *)

val qtp_light : ?ecn:bool ->
  ?reliability:Capabilities.reliability_mode list ->
  unit -> Capabilities.offer
(** {b QTP_light} (§3): for resource-limited receivers — light (SACK
    only) feedback plane, loss estimation on the sender.  Reliability
    defaults to partial-then-none preference: multimedia wants fresh
    data over late repairs. *)

val qtp_tfrc : ?ecn:bool -> unit -> Capabilities.offer
(** Plain RFC 3448 TFRC: standard feedback, no reliability — the
    baseline composition. *)

val qtp_full : ?ecn:bool -> unit -> Capabilities.offer
(** TFRC + full reliability over a best-effort network (QTP_AF without
    the QoS specialisation). *)

val mobile_receiver : unit -> Capabilities.offer
(** What a constrained handset offers: light plane only; accepts any
    reliability. *)

val anything : unit -> Capabilities.offer
(** A fully permissive endpoint (all planes, all modes). *)

val agreed_exn :
  Capabilities.offer -> Capabilities.offer -> Capabilities.agreed
(** [negotiate] or raise [Invalid_argument] — convenience for examples
    and tests where failure is a bug. *)
