(** Frozen record-based reference implementation of
    {!Loss_reconstructor}, kept as the differential-testing oracle for
    the slab-packed rewrite.

    Sender-side loss-event reconstruction — the heart of QTP_light.

    The receiver only reports *which* sequence numbers arrived (SACK);
    this module replays those reports as a virtual arrival stream into
    the very same {!Tfrc.Loss_history} machinery a standard receiver
    runs, yielding the loss event rate [p] on the sender side.

    Virtual arrival times: a number first covered by feedback at time
    [now], originally sent at [sent_at], is replayed with arrival time
    [sent_at +. rtt] — the moment it would have reached the receiver
    plus the feedback path, preserving the relative spacing that drives
    RTT-based loss-event grouping.

    Because the sender computes [p] itself, a selfish receiver cannot
    deflate it (Georg & Gorinsky's attack), and the receiver no longer
    pays for the history — the paper's two QTP_light claims. *)

type t

val create :
  ?ndup:int ->
  ?discount:bool ->
  ?cost:Stats.Cost.t ->
  ?trace:Trace.Sink.t ->
  unit ->
  t
(** [trace] records a sender-side loss event whenever a replay batch
    opens one. *)

val on_covers :
  t ->
  covers:Sack.Scoreboard.cover list ->
  rtt:float ->
  x_recv:float ->
  packet_size:int ->
  unit
(** Replay the numbers newly known received (ascending; merged
    cumulative + SACK coverage).  [x_recv] and [packet_size] are used to
    seed the synthetic first interval exactly as an RFC 3448 receiver
    would (§6.3.1). *)

(** {2 Streaming replay}

    The list-free twin of {!on_covers}, fed directly from
    {!Sack.Scoreboard.iter_feedback}: open a batch, push each cover in
    ascending sequence order, close the batch.  Closing performs the
    once-per-feedback trace accounting {!on_covers} does at its end;
    seeding (§6.3.1) still happens immediately at the first loss event,
    mid-batch, exactly as the list path did. *)

type batch

val begin_batch : t -> batch

val push_cover :
  t ->
  seq:Packet.Serial.t ->
  sent_at:float ->
  was_retx:bool ->
  rtt:float ->
  x_recv:float ->
  packet_size:int ->
  unit

val end_batch : t -> batch -> unit

val on_ce_marks :
  t ->
  new_marks:int ->
  rtt:float ->
  x_recv:float ->
  packet_size:int ->
  unit
(** Account ECN Congestion-Experienced signals echoed by the receiver
    (the cumulative counter increased by [new_marks] since the previous
    report).  Marks are attributed to the most recently replayed
    sequence position; like losses, marks within one RTT collapse into a
    single congestion event. *)

val on_handover :
  t ->
  policy:Tfrc.Handover.policy ->
  packet_size:int ->
  link:Tfrc.Handover.link_info ->
  unit
(** Apply the loss-history component of a handover policy to the
    reconstructed history — [`Keep] no-op, [`Reset] clear (§6.3.1
    seeding will run again on the new path's first loss event),
    [`Informed] re-seed to the interval matching
    {!Tfrc.Handover.informed_rate}. *)

val loss_event_rate : t -> float
val loss_events : t -> int
val history : t -> Tfrc.Loss_history.t
