(** VTP segments as simulator frame bodies, and frame construction. *)

type Netsim.Frame.body += Vtp of Packet.Segment.t

let frame_of ~sim ~flow_id segment =
  Netsim.Frame.make ~uid:(Netsim.Frame.fresh_uid ()) ~flow_id
    ~size:(Packet.Segment.size segment)
    ~born:(Engine.Sim.now sim) (Vtp segment)

let next_pkt_id = ref 0

let segment ~sim ~flow_id ~hdr ~payload =
  incr next_pkt_id;
  Packet.Segment.make ~id:!next_pkt_id ~flow_id ~hdr ~payload
    ~sent_at:(Engine.Sim.now sim)
