(** VTP segments as simulator frame bodies, and frame construction. *)

type Netsim.Frame.body += Vtp of Packet.Segment.t

let frame_of ~sim ~flow_id segment =
  Netsim.Frame.make ~uid:(Netsim.Frame.fresh_uid ()) ~flow_id
    ~size:(Packet.Segment.size segment)
    ~born:(Engine.Sim.now sim) (Vtp segment)

(* Domain-local (not shared) so parallel simulations never race; the
   id is a debugging label, unique within a domain's run. *)
let next_pkt_id = Domain.DLS.new_key (fun () -> ref 0)

let segment ~sim ~flow_id ~hdr ~payload =
  let c = Domain.DLS.get next_pkt_id in
  incr c;
  Packet.Segment.make ~id:!c ~flow_id ~hdr ~payload
    ~sent_at:(Engine.Sim.now sim)
