module Header = Packet.Header
module Serial = Packet.Serial

let log_src = Logs.Src.create "qtp.connection" ~doc:"VTP connection events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type sack_cadence = Per_packet | Per_rtt

type config = {
  agreed : Capabilities.agreed;
  packet_size : int;
  initial_rtt : float;
  max_rate_bps : float option;
  cadence : sack_cadence;
  selfish_p_factor : float;
  sack_blocks : int;
  oscillation_damping : bool;
  handover : Tfrc.Handover.policy;
}

(* Configs are immutable and shared by every flow of a scenario
   profile: intern them so 10k flows hold one record (and one inner
   [agreed]) instead of 10k copies. *)
let config_pool : config Engine.Intern.pool = Engine.Intern.pool ()

let config ?(packet_size = 1500) ?(initial_rtt = 0.5) ?max_rate_bps
    ?(cadence = Per_rtt) ?(selfish_p_factor = 1.0) ?(sack_blocks = 4)
    ?(oscillation_damping = false) ?(handover = `Keep) agreed =
  Engine.Intern.share config_pool
    {
      agreed;
      packet_size;
      initial_rtt;
      max_rate_bps;
      cadence;
      selfish_p_factor;
      sack_blocks;
      oscillation_damping;
      handover;
    }

type state =
  | Negotiating
  | Established of Capabilities.agreed
  | Closing  (** [close] called; draining reliability obligations *)
  | Closed
  | Failed of string

(* The receiver half's per-packet numeric state (rate window, timestamp
   echo, CE accounting) is slab-packed: the old mutable-float record
   fields boxed two words per write on every data arrival, and the
   [(tstamp, arrival) option] echo added a tuple per packet. *)
let rx_lay = Engine.Slab.layout ~floats:5 ~ints:3

(* float cells *)
let rxf_window_start = 0
let rxf_x_recv = 1
let rxf_last_tstamp = 2 (* sender tstamp of the newest data packet *)
let rxf_last_arrival = 3
let rxf_last_rtt = 4

(* int cells *)
let rxi_window_bytes = 0
let rxi_has_last = 1 (* any data seen yet? (guards the echo cells) *)
let rxi_ce_count = 2 (* cumulative CE marks seen (light echo) *)

type receiver_side = {
  mutable std_recv : Tfrc.Receiver.t option;
  tracker : Sack.Rcv_tracker.t option;
  reassembly : Sack.Reassembly.t;
  rx_ar : Engine.Slab.t;
  rx_slot : int;
  mutable sack_timer : Engine.Timer.t option;
}

let[@inline] rxf r j = Engine.Slab.fget r.rx_ar r.rx_slot j
let[@inline] rxf_set r j v = Engine.Slab.fset r.rx_ar r.rx_slot j v
let[@inline] rxi r j = Engine.Slab.iget r.rx_ar r.rx_slot j
let[@inline] rxi_set r j v = Engine.Slab.iset r.rx_ar r.rx_slot j v

module Sent_times = struct
  (* Original send time per fresh-data sequence number, replacing a
     seq→time hashtable: sends record monotonically increasing numbers
     and the reassembly queue takes them back in order, so a ring over
     [base, base+cap) with in-order base advance covers the live range
     with zero steady-state allocation.  NaN marks an absent entry;
     entries the advancing base passes over (numbers that will never be
     delivered, e.g. abandoned ones) are dropped — the hashtable kept
     them forever and merely never looked them up again. *)
  type t = {
    mutable buf : float array;  (* NaN = absent *)
    mutable mask : int;
    mutable base : Serial.t;  (* lowest possibly-live seq *)
    mutable span : int;  (* highest recorded (diff seq base) + 1 *)
  }

  let create () =
    { buf = Array.make 64 Float.nan; mask = 63; base = Serial.zero; span = 0 }

  let grow t need =
    let cap = ref (Array.length t.buf) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let buf = Array.make !cap Float.nan in
    let mask = !cap - 1 in
    for off = 0 to t.span - 1 do
      let s = Serial.to_int (Serial.add t.base off) in
      buf.(s land mask) <- t.buf.(s land t.mask)
    done;
    t.buf <- buf;
    t.mask <- mask

  let[@vtp.hot] record t seq now =
    let off = Serial.diff seq t.base in
    if off >= 0 then begin
      if off >= Array.length t.buf then grow t (off + 1);
      if off >= t.span then t.span <- off + 1;
      Array.unsafe_set t.buf (Serial.to_int seq land t.mask) now
    end

  (* NaN result = no record (delivery of a number never freshly sent
     here, or one already dropped). *)
  let[@vtp.hot] take t seq =
    let off = Serial.diff seq t.base in
    if off < 0 || off >= t.span then Float.nan
    else begin
      let v = t.buf.(Serial.to_int seq land t.mask) in
      (* Deliveries are in-order: numbers at or below [seq] can never
         be asked for again, so drop them and advance the base. *)
      for o = 0 to off do
        t.buf.(Serial.to_int (Serial.add t.base o) land t.mask) <- Float.nan
      done;
      t.base <- Serial.succ seq;
      t.span <- t.span - (off + 1);
      v
    end
end

type sender_side = {
  cc : Tfrc.Sender.t;
  scoreboard : Sack.Scoreboard.t option;
  reliability : Sack.Reliability.t option;
  reconstructor : Loss_reconstructor.t option;
  source : Source.t;
  mutable expiry_timer : Engine.Timer.t option;
  mutable plain_seq : Serial.t;  (* sequencing when no scoreboard *)
  mutable known_ce : int;  (* highest CE echo processed so far *)
  (* Loss scratch for the SACK feedback path: newly inferred losses
     are staged here (as raw serial ints) during the scoreboard digest
     and fed to the reliability plane after the [Sack_rcvd] trace
     emission, preserving the Loss_inferred* -> Sack_rcvd ->
     Abandoned* event order without a per-feedback list. *)
  mutable loss_scr : int array;
  mutable loss_n : int;
}

type t = {
  sim : Engine.Sim.t;
  endpoint : Netsim.Topology.endpoint;
  cfg : config;
  (* Always [Some]: the sink itself is inert until a recorder is
     installed, so the per-event cost without tracing is one branch. *)
  trace : Trace.Sink.t option;
  mutable state : state;
  (* [responder_offer] is consulted by the receiver half during the
     handshake; [initiator_offer] is what the SYN carries. *)
  mutable initiator_offer : Capabilities.offer option;
  mutable responder_offer : Capabilities.offer option;
  snd : sender_side;
  rcv : receiver_side;
  goodput : Stats.Series.t;
  arrivals : Stats.Series.t;
  first_sent : Sent_times.t;  (* seq -> original send time *)
  delays : Stats.Fvec.t;  (* in-order delivery delays, oldest first *)
  mutable feedback_packets : int;
  mutable feedback_bytes : int;
  mutable handshake_packets : int;
  mutable hs_timer : Engine.Timer.t option;  (* SYN retransmission *)
  mutable hs_tries : int;
  mutable close_timer : Engine.Timer.t option;  (* CLOSE retransmission *)
  mutable close_tries : int;
  mutable close_ticks : int;
  (* Per-segment in-order delivery tap (the trunk layer's demultiplex
     point); [None] costs one branch per delivery. *)
  mutable on_deliver : (seq:Serial.t -> size:int -> unit) option;
}

let uses_sack cfg =
  cfg.agreed.Capabilities.plane = Capabilities.Light
  || cfg.agreed.Capabilities.mode <> Capabilities.R_none

let payload_of cfg = Stdlib.max 1 (cfg.packet_size - Header.data_header_bytes)

(* ------------------------------------------------------------------ *)
(* Emission helpers *)

let send_forward t segment =
  t.endpoint.Netsim.Topology.to_receiver
    (Vtp_wire.frame_of ~sim:t.sim ~flow_id:t.endpoint.Netsim.Topology.flow_id
       segment)

let send_reverse t segment =
  t.endpoint.Netsim.Topology.to_sender
    (Vtp_wire.frame_of ~sim:t.sim ~flow_id:t.endpoint.Netsim.Topology.flow_id
       segment)

(* ------------------------------------------------------------------ *)
(* Sender side *)

let fwd_point_now t =
  match (t.snd.scoreboard, t.snd.reliability) with
  | Some sb, Some rel ->
      let fwd =
        Sack.Reliability.fwd_point rel
          ~highest_sent:(Sack.Scoreboard.next_seq sb)
      in
      Sack.Scoreboard.abandon_below sb fwd;
      fwd
  | _ ->
      (* No SACK plane: the receiver should never wait for repairs. *)
      t.snd.plain_seq

let emit_data t ~seq ~is_retx =
  let now = Engine.Sim.now t.sim in
  let hdr =
    Header.Data
      {
        seq;
        tstamp = now;
        rtt_estimate = Tfrc.Sender.rtt t.snd.cc;
        is_retransmit = is_retx;
        fwd_point = fwd_point_now t;
      }
  in
  let segment =
    Vtp_wire.segment ~sim:t.sim ~flow_id:t.endpoint.Netsim.Topology.flow_id
      ~hdr ~payload:(payload_of t.cfg)
  in
  let frame =
    Vtp_wire.frame_of ~sim:t.sim ~flow_id:t.endpoint.Netsim.Topology.flow_id
      segment
  in
  frame.Netsim.Frame.ect <- t.cfg.agreed.Capabilities.use_ecn;
  Trace.Sink.seg_send t.trace ~seq ~size:t.cfg.packet_size ~retx:is_retx;
  t.endpoint.Netsim.Topology.to_receiver frame

let transmit_opportunity t =
  let now = Engine.Sim.now t.sim in
  let decision =
    match t.snd.reliability with
    | Some rel -> Sack.Reliability.next_decision rel ~now
    | None -> Sack.Reliability.Fresh_data
  in
  match decision with
  | Sack.Reliability.Retransmit seq ->
      (match t.snd.scoreboard with
      | Some sb ->
          Sack.Scoreboard.on_send sb ~seq ~now ~size:t.cfg.packet_size
            ~is_retx:true
      | None ->
          failwith
            "Connection: Retransmit decision without a scoreboard (the \
             reliability plane exists only alongside one)");
      emit_data t ~seq ~is_retx:true;
      true
  | Sack.Reliability.Fresh_data ->
      if t.state <> Closing && t.state <> Closed && Source.take t.snd.source
      then begin
        let seq =
          match t.snd.scoreboard with
          | Some sb ->
              let s = Sack.Scoreboard.next_seq sb in
              Sack.Scoreboard.on_send sb ~seq:s ~now ~size:t.cfg.packet_size
                ~is_retx:false;
              s
          | None ->
              let s = t.snd.plain_seq in
              t.snd.plain_seq <- Serial.succ s;
              s
        in
        Sent_times.record t.first_sent seq now;
        emit_data t ~seq ~is_retx:false;
        true
      end
      else false

let push_loss t seq =
  let n = t.snd.loss_n in
  let cap = Array.length t.snd.loss_scr in
  if n >= cap then begin
    let nbuf = Array.make (2 * cap) 0 in
    Array.blit t.snd.loss_scr 0 nbuf 0 cap;
    t.snd.loss_scr <- nbuf
  end;
  t.snd.loss_scr.(n) <- Serial.to_int seq;
  t.snd.loss_n <- n + 1

(* Report the rate-update outcome to the invariant checker, when one is
   installed (the harness's checked mode).  [x_recv] and [p] are the
   bytes/s inputs the sender was just fed. *)
let inspect_sample t ~x_recv ~p =
  match Inspect.hooks () with
  | None -> ()
  | Some h ->
      let cc = t.snd.cc in
      let prm = Tfrc.Sender.params cc in
      let s = prm.Tfrc.Sender.packet_size in
      let x_calc_bps =
        if p > 0.0 then Tfrc.Equation.rate_bps ~s ~r:(Tfrc.Sender.rtt cc) ~p ()
        else infinity
      in
      h.Inspect.on_rate_sample
        {
          Inspect.at = Engine.Sim.now t.sim;
          flow_id = t.endpoint.Netsim.Topology.flow_id;
          x_bps = Tfrc.Sender.rate_bps cc;
          x_calc_bps;
          x_recv_bps = 8.0 *. x_recv;
          p;
          g_bps = t.cfg.agreed.Capabilities.target_bps;
          cap_bps = t.cfg.max_rate_bps;
          mbi_floor_bps = 8.0 *. float_of_int s /. prm.Tfrc.Sender.t_mbi;
          slow_start = Tfrc.Sender.in_slow_start cc;
        }

let sender_on_sack t (sf : Header.sack_feedback) =
  match t.snd.scoreboard with
  | None -> ()
  | Some sb ->
      let now = Engine.Sim.now t.sim in
      let rtt = Tfrc.Sender.rtt t.snd.cc in
      (* Streaming digest: covers flow straight from the scoreboard into
         the light plane's loss-history replay (ascending acks then
         ascending sacks = merged ascending order) without per-cover
         list materialisation — the trunk/LFN bulk-advance fast path.
         Losses stay a list; they are rare and the reliability plane
         takes them in one call. *)
      let batch =
        Option.map Loss_reconstructor.begin_batch t.snd.reconstructor
      in
      let on_cover ~seq ~sent_at ~was_retx =
        match t.snd.reconstructor with
        | Some lr ->
            Loss_reconstructor.push_cover lr ~seq ~sent_at ~was_retx ~rtt
              ~x_recv:sf.sack_x_recv ~packet_size:t.cfg.packet_size
        | None -> ()
      in
      t.snd.loss_n <- 0;
      let summary =
        Sack.Scoreboard.iter_feedback sb ~cum_ack:sf.cum_ack ~blocks:sf.blocks
          ~on_ack:on_cover ~on_sack:on_cover
          ~on_lost:(fun seq -> push_loss t seq)
      in
      if Trace.Sink.on t.trace then
        Trace.Sink.sack_rcvd t.trace ~cum_ack:sf.cum_ack
          ~blocks:(List.length sf.blocks)
          ~acked:summary.Sack.Scoreboard.fb_acked
          ~sacked:summary.Sack.Scoreboard.fb_sacked
          ~lost:summary.Sack.Scoreboard.fb_lost;
      (* Feed the staged losses (ascending) after the Sack_rcvd emit. *)
      (match t.snd.reliability with
      | Some rel when t.snd.loss_n > 0 ->
          for k = 0 to t.snd.loss_n - 1 do
            Sack.Reliability.on_loss rel ~now (Serial.of_int t.snd.loss_scr.(k))
          done;
          Tfrc.Sender.notify_data t.snd.cc
      | Some _ | None -> ());
      t.snd.loss_n <- 0;
      (match (t.snd.reconstructor, batch) with
      | Some lr, Some b ->
          Loss_reconstructor.end_batch lr b;
          if sf.sack_ce_count > t.snd.known_ce then begin
            Loss_reconstructor.on_ce_marks lr
              ~new_marks:(sf.sack_ce_count - t.snd.known_ce)
              ~rtt ~x_recv:sf.sack_x_recv ~packet_size:t.cfg.packet_size;
            t.snd.known_ce <- sf.sack_ce_count
          end;
          let p = Loss_reconstructor.loss_event_rate lr in
          Tfrc.Sender.on_feedback t.snd.cc ~tstamp_echo:sf.sack_tstamp_echo
            ~t_delay:sf.sack_t_delay ~x_recv:sf.sack_x_recv ~p;
          inspect_sample t ~x_recv:sf.sack_x_recv ~p
      | _ -> ())

let sender_on_std_feedback t (f : Header.feedback) =
  if Trace.Sink.on t.trace then
    Trace.Sink.emit t.trace
      (Trace.Event.Fb_rcvd { x_recv = f.x_recv; p = f.p });
  Tfrc.Sender.on_feedback t.snd.cc ~tstamp_echo:f.tstamp_echo
    ~t_delay:f.t_delay ~x_recv:f.x_recv ~p:f.p;
  inspect_sample t ~x_recv:f.x_recv ~p:f.p

let arm_expiry_timer t =
  match (t.snd.scoreboard, t.snd.reliability) with
  | Some sb, Some rel ->
      let timer = ref None in
      let fire () =
        let now = Engine.Sim.now t.sim in
        let rtt = Tfrc.Sender.rtt t.snd.cc in
        let timeout = Float.max (4.0 *. rtt) 0.2 in
        let expired = Sack.Scoreboard.mark_expired sb ~now ~timeout in
        if expired <> [] then begin
          Sack.Reliability.on_losses rel ~now expired;
          Tfrc.Sender.notify_data t.snd.cc
        end;
        match !timer with
        | Some tm -> Engine.Timer.start tm ~after:(Float.max rtt 0.05)
        | None -> ()
      in
      let tm = Engine.Timer.create t.sim ~on_expire:fire in
      timer := Some tm;
      t.snd.expiry_timer <- Some tm;
      Engine.Timer.start tm ~after:(Float.max t.cfg.initial_rtt 0.05)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Receiver side *)

let update_x_recv t ~now =
  let r = t.rcv in
  let elapsed = now -. rxf r rxf_window_start in
  (* Re-estimate only over windows of at least half an RTT so that
     per-packet SACK cadences don't produce a wildly noisy x_recv. *)
  if
    elapsed >= 0.5 *. Float.max (rxf r rxf_last_rtt) 1e-3
    && rxi r rxi_window_bytes > 0
  then begin
    rxf_set r rxf_x_recv (float_of_int (rxi r rxi_window_bytes) /. elapsed);
    rxi_set r rxi_window_bytes 0;
    rxf_set r rxf_window_start now
  end

let emit_sack t =
  match t.rcv.tracker with
  | None -> ()
  | Some tr ->
      let r = t.rcv in
      if rxi r rxi_has_last <> 0 then begin
        let tstamp = rxf r rxf_last_tstamp
        and arrival = rxf r rxf_last_arrival in
        let now = Engine.Sim.now t.sim in
        update_x_recv t ~now;
        let blocks = Sack.Rcv_tracker.sack_blocks tr in
        let hdr =
          Header.Sack_feedback
            {
              cum_ack = Sack.Rcv_tracker.cum_ack tr;
              blocks;
              sack_tstamp_echo = tstamp;
              sack_t_delay = now -. arrival;
              sack_x_recv = rxf r rxf_x_recv;
              sack_ce_count = rxi r rxi_ce_count;
            }
        in
        let segment =
          Vtp_wire.segment ~sim:t.sim
            ~flow_id:t.endpoint.Netsim.Topology.flow_id ~hdr ~payload:0
        in
        t.feedback_packets <- t.feedback_packets + 1;
        t.feedback_bytes <- t.feedback_bytes + Packet.Segment.size segment;
        if Trace.Sink.on t.trace then
          Trace.Sink.sack_sent t.trace
            ~cum_ack:(Sack.Rcv_tracker.cum_ack tr)
            ~blocks:(List.length blocks) ~x_recv:(rxf r rxf_x_recv);
        send_reverse t segment
      end

let arm_sack_timer t =
  let fire () =
    if rxi t.rcv rxi_has_last <> 0 then emit_sack t;
    match t.rcv.sack_timer with
    | Some tm ->
        Engine.Timer.start tm ~after:(Float.max (rxf t.rcv rxf_last_rtt) 1e-3)
    | None -> ()
  in
  let tm = Engine.Timer.create t.sim ~on_expire:fire in
  t.rcv.sack_timer <- Some tm

let[@vtp.hot] receiver_on_data t (d : Header.data) ~ce ~wire_size ~payload =
  let now = Engine.Sim.now t.sim in
  let r = t.rcv in
  Stats.Series.record t.arrivals ~time:now ~bytes:wire_size;
  Trace.Sink.seg_recv t.trace ~seq:d.seq ~size:wire_size ~ce
    ~retx:d.is_retransmit;
  if d.rtt_estimate > 0.0 then rxf_set r rxf_last_rtt d.rtt_estimate;
  let first = rxi r rxi_has_last = 0 in
  rxi_set r rxi_has_last 1;
  rxf_set r rxf_last_tstamp d.tstamp;
  rxf_set r rxf_last_arrival now;
  rxi_set r rxi_window_bytes (rxi r rxi_window_bytes + wire_size);
  if ce then rxi_set r rxi_ce_count (rxi r rxi_ce_count + 1);
  (* Standard plane: the heavy RFC 3448 receiver. *)
  (match r.std_recv with
  | Some sr -> Tfrc.Receiver.on_data sr ~ce d ~size:wire_size
  | None -> ());
  (* SACK plane: O(1) tracking; note whether this arrival opened a new
     hole (a fresh loss indication worth an expedited report). *)
  let new_hole =
    match r.tracker with
    | Some tr ->
        let expected = Sack.Rcv_tracker.highest_expected tr in
        let opened = Serial.( > ) d.seq expected in
        Sack.Rcv_tracker.on_data tr ~seq:d.seq;
        Sack.Rcv_tracker.apply_fwd_point tr d.fwd_point;
        opened
    | None -> false
  in
  (* Application delivery. *)
  Sack.Reassembly.on_data r.reassembly ~seq:d.seq ~size:payload;
  Sack.Reassembly.apply_fwd_point r.reassembly d.fwd_point;
  (* Feedback emission policy. *)
  match (t.cfg.agreed.Capabilities.plane, r.tracker) with
  | Capabilities.Standard, Some _ ->
      (* Reliability ack-clock alongside RFC 3448 reports. *)
      emit_sack t
  | Capabilities.Standard, None -> ()
  | Capabilities.Light, Some _ -> (
      match t.cfg.cadence with
      | Per_packet -> emit_sack t
      | Per_rtt ->
          if new_hole || first || ce then begin
            emit_sack t;
            match r.sack_timer with
            | Some tm ->
                Engine.Timer.start tm
                  ~after:(Float.max (rxf r rxf_last_rtt) 1e-3)
            | None -> ()
          end
          else begin
            match r.sack_timer with
            | Some tm when not (Engine.Timer.is_armed tm) ->
                Engine.Timer.start tm
                  ~after:(Float.max (rxf r rxf_last_rtt) 1e-3)
            | Some _ | None -> ()
          end)
  | Capabilities.Light, None -> ()

(* ------------------------------------------------------------------ *)
(* Handshake *)

let send_handshake t ~forward kind payload =
  let hdr = Header.Handshake { kind; payload } in
  let segment =
    Vtp_wire.segment ~sim:t.sim ~flow_id:t.endpoint.Netsim.Topology.flow_id
      ~hdr ~payload:0
  in
  t.handshake_packets <- t.handshake_packets + 1;
  if forward then send_forward t segment else send_reverse t segment

let max_handshake_tries = 6

let stop_hs_timer t =
  match t.hs_timer with Some tm -> Engine.Timer.stop tm | None -> ()

(* Retransmit the SYN with exponential backoff until the SYN-ACK lands
   (the responder answers every SYN statelessly, so duplicate SYNs and a
   lost final ACK are harmless). *)
let send_syn_with_retry t offer =
  let backoff tries = Float.min 8.0 (t.cfg.initial_rtt *. (2.0 ** float_of_int tries)) in
  let timer =
    match t.hs_timer with
    | Some tm -> tm
    | None ->
        let tm =
          Engine.Timer.create t.sim ~on_expire:(fun () ->
              if t.state = Negotiating then begin
                if t.hs_tries >= max_handshake_tries then begin
                  t.state <- Failed "handshake timeout";
                  if Trace.Sink.on t.trace then
                    Trace.Sink.emit t.trace
                      (Trace.Event.Nego_failed { reason = "handshake timeout" })
                end
                else begin
                  t.hs_tries <- t.hs_tries + 1;
                  send_handshake t ~forward:true Header.Syn
                    (Capabilities.encode_offer offer);
                  match t.hs_timer with
                  | Some tm -> Engine.Timer.start tm ~after:(backoff t.hs_tries)
                  | None -> ()
                end
              end)
        in
        t.hs_timer <- Some tm;
        tm
  in
  t.hs_tries <- 1;
  send_handshake t ~forward:true Header.Syn (Capabilities.encode_offer offer);
  Engine.Timer.start timer ~after:(backoff 1)

let establish t agreed =
  stop_hs_timer t;
  t.state <- Established agreed;
  Log.info (fun m ->
      m "flow %d established: %a" t.endpoint.Netsim.Topology.flow_id
        Capabilities.pp_agreed agreed);
  if Trace.Sink.on t.trace then
    Trace.Sink.emit t.trace
      (Trace.Event.Negotiated
         {
           plane =
             Format.asprintf "%a" Capabilities.pp_plane
               agreed.Capabilities.plane;
           mode =
             Format.asprintf "%a" Capabilities.pp_mode
               agreed.Capabilities.mode;
           g_bps = agreed.Capabilities.target_bps;
         });
  arm_expiry_timer t;
  Tfrc.Sender.start t.snd.cc

let handle_handshake_at_receiver t (h : Header.handshake) =
  match h.kind with
  | Header.Close ->
      (* The sender has no more data and no pending repairs: confirm and
         quiesce the receiving side. *)
      (match t.rcv.sack_timer with
      | Some tm -> Engine.Timer.stop tm
      | None -> ());
      send_handshake t ~forward:false Header.Close_ack ""
  | Header.Close_ack -> ()
  | Header.Syn -> (
      match
        ( Capabilities.decode_offer h.payload,
          t.responder_offer )
      with
      | Ok initiator, Some responder -> (
          match Capabilities.negotiate ~initiator ~responder with
          | Ok agreed ->
              send_handshake t ~forward:false Header.Syn_ack
                (Capabilities.encode_agreed agreed)
          | Error e ->
              send_handshake t ~forward:false Header.Syn_ack ("error:" ^ e))
      | Error e, _ ->
          send_handshake t ~forward:false Header.Syn_ack ("error:" ^ e)
      | Ok _, None ->
          send_handshake t ~forward:false Header.Syn_ack
            "error:responder has no offer")
  | Header.Ack_hs | Header.Syn_ack -> ()

let finish_close t =
  if t.state <> Closed then begin
    t.state <- Closed;
    Log.info (fun m -> m "flow %d closed" t.endpoint.Netsim.Topology.flow_id);
    if Trace.Sink.on t.trace then
      Trace.Sink.emit t.trace (Trace.Event.Conn_state { state = "closed" });
    (match t.close_timer with
    | Some tm -> Engine.Timer.stop tm
    | None -> ());
    (match t.snd.expiry_timer with
    | Some tm -> Engine.Timer.stop tm
    | None -> ());
    Tfrc.Sender.stop t.snd.cc
  end

let handle_handshake_at_sender t (h : Header.handshake) =
  match h.kind with
  | Header.Close_ack -> if t.state = Closing then finish_close t
  | Header.Close -> ()
  | Header.Syn_ack -> (
      if t.state = Negotiating then
        match Capabilities.decode_agreed h.payload with
        | Ok agreed ->
            send_handshake t ~forward:true Header.Ack_hs "";
            establish t agreed
        | Error _ ->
            let reason =
              if String.length h.payload >= 6
                 && String.sub h.payload 0 6 = "error:"
              then String.sub h.payload 6 (String.length h.payload - 6)
              else "malformed SYN-ACK"
            in
            stop_hs_timer t;
            Log.warn (fun m ->
                m "flow %d negotiation failed: %s"
                  t.endpoint.Netsim.Topology.flow_id reason);
            t.state <- Failed reason;
            if Trace.Sink.on t.trace then
              Trace.Sink.emit t.trace (Trace.Event.Nego_failed { reason }))
  | Header.Syn | Header.Ack_hs -> ()

(* ------------------------------------------------------------------ *)
(* Graceful close *)

let drained t =
  match t.snd.scoreboard with
  | None -> true
  | Some sb -> Sack.Scoreboard.outstanding sb = 0

let max_close_tries = 8

let max_close_ticks = 200  (* hard bound: never linger in Closing forever *)

(* The close driver: poll until the reliability plane drains (actively
   advancing abandonment, since no data emission does it for us any
   more), then send CLOSE with retries; close unilaterally once either
   budget runs out. *)
let close_tick t =
  if t.state = Closing then begin
    (match (t.snd.scoreboard, t.snd.reliability) with
    | Some sb, Some rel ->
        let fwd =
          Sack.Reliability.fwd_point rel
            ~highest_sent:(Sack.Scoreboard.next_seq sb)
        in
        Sack.Scoreboard.abandon_below sb fwd
    | _ -> ());
    t.close_ticks <- t.close_ticks + 1;
    if t.close_ticks > max_close_ticks then finish_close t
    else begin
      if drained t then begin
        if t.close_tries >= max_close_tries then finish_close t
        else begin
          t.close_tries <- t.close_tries + 1;
          send_handshake t ~forward:true Header.Close ""
        end
      end;
      if t.state = Closing then
        match t.close_timer with
        | Some tm ->
            Engine.Timer.start tm
              ~after:(Float.max (2.0 *. Tfrc.Sender.rtt t.snd.cc) 0.05)
        | None -> ()
    end
  end

let close t =
  match t.state with
  | Closed | Closing -> ()
  | Negotiating | Failed _ ->
      stop_hs_timer t;
      finish_close t
  | Established _ ->
      t.state <- Closing;
      if Trace.Sink.on t.trace then
        Trace.Sink.emit t.trace (Trace.Event.Conn_state { state = "closing" });
      (* New data stops immediately; retransmissions keep flowing until
         the scoreboard drains (full reliability finishes its job). *)
      (match t.close_timer with
      | Some _ -> ()
      | None ->
          t.close_timer <-
            Some (Engine.Timer.create t.sim ~on_expire:(fun () -> close_tick t)));
      close_tick t

(* ------------------------------------------------------------------ *)
(* Construction *)

let build ~sim ~endpoint ?cost_sender ?cost_receiver ?source ~start_at
    ~initial_state ~initiator_offer ~responder_offer cfg =
  let agreed = cfg.agreed in
  let uses_sack_plane = uses_sack cfg in
  let policy = Capabilities.to_policy agreed in
  let trace =
    Trace.Sink.of_sim sim ~flow:endpoint.Netsim.Topology.flow_id
  in
  let scoreboard =
    if uses_sack_plane then
      Some (Sack.Scoreboard.create ?cost:cost_sender ~trace ())
    else None
  in
  let reliability =
    Option.map
      (fun sb ->
        Sack.Reliability.create ?cost:cost_sender ~trace policy
          ~scoreboard:sb ())
      scoreboard
  in
  let reconstructor =
    if agreed.Capabilities.plane = Capabilities.Light then
      Some (Loss_reconstructor.create ~sim ?cost:cost_sender ~trace ())
    else None
  in
  let source = match source with Some s -> s | None -> Source.greedy () in
  let t_ref = ref None in
  let with_t f = match !t_ref with Some t -> f t | None -> () in
  let reassembly =
    Sack.Reassembly.create ?cost:cost_receiver
      ~deliver:(fun ~seq ~size ->
        with_t (fun t ->
            let now = Engine.Sim.now sim in
            Stats.Series.record t.goodput ~time:now ~bytes:size;
            let sent = Sent_times.take t.first_sent seq in
            if not (Float.is_nan sent) then
              Stats.Fvec.push t.delays (now -. sent);
            match t.on_deliver with
            | Some f -> f ~seq ~size
            | None -> ()))
      ~on_gap:(fun ~skipped:_ -> ())
      ()
  in
  let cc =
    Tfrc.Sender.create ~sim ?cost:cost_sender ~trace
      {
        Tfrc.Sender.default_params with
        packet_size = cfg.packet_size;
        initial_rtt = cfg.initial_rtt;
        min_rate_bps = agreed.Capabilities.target_bps;
        max_rate_bps = cfg.max_rate_bps;
        oscillation_damping = cfg.oscillation_damping;
      }
      ~on_transmit:(fun () ->
        match !t_ref with
        | Some t -> transmit_opportunity t
        | None -> false)
      ()
  in
  let t =
    {
      sim;
      endpoint;
      cfg;
      trace = Some trace;
      state = initial_state;
      initiator_offer;
      responder_offer;
      snd =
        {
          cc;
          scoreboard;
          reliability;
          reconstructor;
          source;
          expiry_timer = None;
          plain_seq = Serial.zero;
          known_ce = 0;
          loss_scr = Array.make 16 0;
          loss_n = 0;
        };
      rcv =
        (let rx_ar = Engine.Sim.arena sim rx_lay in
         {
           std_recv = None;
           tracker =
             (if uses_sack_plane then
                Some
                  (Sack.Rcv_tracker.create ~max_blocks:cfg.sack_blocks
                     ?cost:cost_receiver ())
              else None);
           reassembly;
           rx_ar;
           rx_slot = Engine.Slab.alloc rx_ar;
           sack_timer = None;
         });
      goodput = Stats.Series.create ();
      arrivals = Stats.Series.create ();
      first_sent = Sent_times.create ();
      delays = Stats.Fvec.create ();
      feedback_packets = 0;
      feedback_bytes = 0;
      handshake_packets = 0;
      hs_timer = None;
      hs_tries = 0;
      close_timer = None;
      close_tries = 0;
      close_ticks = 0;
      on_deliver = None;
    }
  in
  t_ref := Some t;
  rxf_set t.rcv rxf_window_start (Engine.Sim.now sim);
  rxf_set t.rcv rxf_last_rtt cfg.initial_rtt;
  Source.set_notify source (fun () -> Tfrc.Sender.notify_data cc);
  if agreed.Capabilities.plane = Capabilities.Standard then begin
    let send_feedback (f : Header.feedback) =
      (* The selfish-receiver knob only exists where the receiver
         computes p — that is the attack surface QTP_light removes. *)
      let f =
        if Float.equal cfg.selfish_p_factor 1.0 then f
        else { f with p = f.p *. cfg.selfish_p_factor }
      in
      let segment =
        Vtp_wire.segment ~sim ~flow_id:endpoint.Netsim.Topology.flow_id
          ~hdr:(Header.Feedback f) ~payload:0
      in
      t.feedback_packets <- t.feedback_packets + 1;
      t.feedback_bytes <- t.feedback_bytes + Packet.Segment.size segment;
      send_reverse t segment
    in
    t.rcv.std_recv <-
      Some
        (Tfrc.Receiver.create ~sim ?cost:cost_receiver ~trace ~send_feedback ())
  end;
  if agreed.Capabilities.plane = Capabilities.Light && cfg.cadence = Per_rtt
  then arm_sack_timer t;
  endpoint.Netsim.Topology.on_receiver_rx (fun frame ->
      match frame.Netsim.Frame.body with
      | Vtp_wire.Vtp seg -> (
          match seg.Packet.Segment.hdr with
          | Header.Data d ->
              receiver_on_data t d ~ce:frame.Netsim.Frame.ce
                ~wire_size:(Packet.Segment.size seg)
                ~payload:seg.Packet.Segment.payload
          | Header.Handshake h -> handle_handshake_at_receiver t h
          | Header.Feedback _ | Header.Sack_feedback _ -> ())
      | _ -> ());
  endpoint.Netsim.Topology.on_sender_rx (fun frame ->
      match frame.Netsim.Frame.body with
      | Vtp_wire.Vtp seg -> (
          match seg.Packet.Segment.hdr with
          | Header.Feedback f -> sender_on_std_feedback t f
          | Header.Sack_feedback sf -> sender_on_sack t sf
          | Header.Handshake h -> handle_handshake_at_sender t h
          | Header.Data _ -> ())
      | _ -> ());
  ignore
    (Engine.Sim.schedule_at sim start_at (fun () ->
         match t.state with
         | Established _ ->
             arm_expiry_timer t;
             Tfrc.Sender.start t.snd.cc
         | Negotiating -> (
             match t.initiator_offer with
             | Some offer -> send_syn_with_retry t offer
             | None -> t.state <- Failed "no initiator offer")
         | Closing | Closed | Failed _ -> ()));
  t

let create ~sim ~endpoint ?cost_sender ?cost_receiver ?source
    ?(start_at = 0.0) cfg =
  build ~sim ~endpoint ?cost_sender ?cost_receiver ?source ~start_at
    ~initial_state:(Established cfg.agreed) ~initiator_offer:None
    ~responder_offer:None cfg

let create_negotiated ~sim ~endpoint ?cost_sender ?cost_receiver ?source
    ?(start_at = 0.0) ?packet_size ?initial_rtt ?handover ~initiator ~responder
    () =
  match Capabilities.negotiate ~initiator ~responder with
  | Ok agreed ->
      let cfg = config ?packet_size ?initial_rtt ?handover agreed in
      build ~sim ~endpoint ?cost_sender ?cost_receiver ?source ~start_at
        ~initial_state:Negotiating ~initiator_offer:(Some initiator)
        ~responder_offer:(Some responder) cfg
  | Error reason ->
      (* Build an inert connection that still runs the wire handshake so
         the failure is observable end to end. *)
      let dummy =
        {
          Capabilities.plane = Capabilities.Standard;
          mode = Capabilities.R_none;
          target_bps = 0.0;
          max_retx = 0;
          deadline = 0.0;
          use_ecn = false;
        }
      in
      let cfg = config ?packet_size ?initial_rtt ?handover dummy in
      let t =
        build ~sim ~endpoint ?cost_sender ?cost_receiver ?source ~start_at
          ~initial_state:Negotiating ~initiator_offer:(Some initiator)
          ~responder_offer:(Some responder) cfg
      in
      ignore reason;
      t

(* ------------------------------------------------------------------ *)
(* Observation *)

(* A migration notification fans the configured handover policy out to
   every piece of TFRC state the connection owns: the sender's rate /
   RTT machinery, the light plane's reconstructed loss history, and the
   standard plane's receiver-side history.  With [`Keep] (the default)
   this is a no-op end to end. *)
let notify_migration t ~link =
  let policy = t.cfg.handover in
  Tfrc.Sender.apply_handover t.snd.cc ~policy ~link;
  (match t.snd.reconstructor with
  | Some rc ->
      Loss_reconstructor.on_handover rc ~policy
        ~packet_size:t.cfg.packet_size ~link
  | None -> ());
  match t.rcv.std_recv with
  | Some r -> Tfrc.Receiver.on_handover r ~policy ~link
  | None -> ()

let state t = t.state

let set_on_deliver t f = t.on_deliver <- Some f

let goodput t = t.goodput

let arrivals t = t.arrivals

let cc t = t.snd.cc

let current_rate_bps t = Tfrc.Sender.rate_bps t.snd.cc

let sender_loss_estimate t =
  match t.snd.reconstructor with
  | Some lr -> Loss_reconstructor.loss_event_rate lr
  | None -> (
      match t.rcv.std_recv with
      | Some r -> Tfrc.Receiver.loss_event_rate r
      | None -> 0.0)

let receiver_loss_estimate t =
  Option.map Tfrc.Receiver.loss_event_rate t.rcv.std_recv

let data_sent t =
  match t.snd.scoreboard with
  | Some sb -> Sack.Scoreboard.stats_sent sb
  | None -> Tfrc.Sender.packets_sent t.snd.cc

let retransmissions t =
  match t.snd.scoreboard with
  | Some sb -> Sack.Scoreboard.stats_retx sb
  | None -> 0

let abandoned t =
  match t.snd.reliability with
  | Some rel -> Sack.Reliability.abandoned rel
  | None -> 0

let delivered t = Sack.Reassembly.delivered t.rcv.reassembly

let skipped t = Sack.Reassembly.skipped t.rcv.reassembly

let delivery_delays t = Stats.Fvec.to_array t.delays

let feedback_packets t = t.feedback_packets

let feedback_bytes t = t.feedback_bytes

let handshake_packets t = t.handshake_packets
