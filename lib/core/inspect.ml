type rate_sample = {
  at : float;
  flow_id : int;
  x_bps : float;
  x_calc_bps : float;
  x_recv_bps : float;
  p : float;
  g_bps : float;
  cap_bps : float option;
  mbi_floor_bps : float;
  slow_start : bool;
}

type hooks = { on_rate_sample : rate_sample -> unit }

(* Domain-local so parallel suites (Engine.Pool) can each run a checked
   simulation with its own hooks; within a domain the "one simulation
   at a time" discipline is unchanged. *)
let current : hooks option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let install h = Domain.DLS.get current := Some h

let clear () = Domain.DLS.get current := None

let hooks () = !(Domain.DLS.get current)
