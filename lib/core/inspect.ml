type rate_sample = {
  at : float;
  flow_id : int;
  x_bps : float;
  x_calc_bps : float;
  x_recv_bps : float;
  p : float;
  g_bps : float;
  cap_bps : float option;
  mbi_floor_bps : float;
  slow_start : bool;
}

type hooks = { on_rate_sample : rate_sample -> unit }

let current : hooks option ref = ref None

let install h = current := Some h

let clear () = current := None

let hooks () = !current
