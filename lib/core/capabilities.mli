(** Negotiable transport features.

    The paper's §1 lists the features a connection negotiates between
    transport entities: (1) partial/full reliability, (2) light receiver
    processing, (3) QoS awareness.  An {!offer} is what one endpoint can
    and wants to do (lists in preference order); {!negotiate} intersects
    the initiator's and responder's offers into the {!agreed}
    configuration both run, or explains why no composition exists.

    Offers travel inside handshake segments as a versioned textual
    encoding (robust, debuggable; this is control-plane traffic). *)

type feedback_plane =
  | Standard  (** RFC 3448 receiver computes the loss event rate *)
  | Light  (** SACK-only receiver; the sender reconstructs loss *)

type reliability_mode = R_none | R_partial | R_full

type offer = {
  planes : feedback_plane list;  (** supported, preferred first *)
  reliability : reliability_mode list;  (** supported, preferred first *)
  qos_target_bps : float;  (** requested AF committed rate; 0 = none *)
  partial_max_retx : int;  (** parameters used if R_partial is agreed *)
  partial_deadline : float;
  ecn : bool;  (** willing to use ECN (RFC 3168) congestion marking *)
}

type agreed = {
  plane : feedback_plane;
  mode : reliability_mode;
  target_bps : float;
  max_retx : int;
  deadline : float;
  use_ecn : bool;  (** both endpoints support it *)
}

val negotiate : initiator:offer -> responder:offer -> (agreed, string) result
(** First initiator preference the responder also supports wins, for
    both the plane and the reliability mode.  The QoS target is the
    initiator's request capped by the responder's (a receiver may lower,
    never raise, the reservation it will honour; a responder target of 0
    means "no opinion").  Partial-reliability parameters: the stricter of
    the two (fewer retransmits, shorter deadline). *)

val encode_offer : offer -> string
val decode_offer : string -> (offer, string) result

val encode_agreed : agreed -> string
val decode_agreed : string -> (agreed, string) result

val to_policy : agreed -> Sack.Reliability.policy

val pp_plane : Format.formatter -> feedback_plane -> unit
val pp_mode : Format.formatter -> reliability_mode -> unit
val pp_agreed : Format.formatter -> agreed -> unit

val equal_offer : offer -> offer -> bool
val equal_agreed : agreed -> agreed -> bool
