open Capabilities

let base ?(ecn = false) ~planes ~reliability ~g () =
  {
    planes;
    reliability;
    qos_target_bps = g;
    partial_max_retx = 3;
    partial_deadline = 0.5;
    ecn;
  }

let qtp_af ?ecn ~g_bps () =
  base ?ecn ~planes:[ Standard ] ~reliability:[ R_full ] ~g:g_bps ()

let qtp_light ?ecn ?(reliability = [ R_partial; R_none ]) () =
  base ?ecn ~planes:[ Light ] ~reliability ~g:0.0 ()

let qtp_tfrc ?ecn () =
  base ?ecn ~planes:[ Standard ] ~reliability:[ R_none ] ~g:0.0 ()

let qtp_full ?ecn () =
  base ?ecn ~planes:[ Standard ] ~reliability:[ R_full ] ~g:0.0 ()

let mobile_receiver () =
  base ~ecn:true ~planes:[ Light ]
    ~reliability:[ R_partial; R_none; R_full ] ~g:0.0 ()

let anything () =
  base ~ecn:true
    ~planes:[ Standard; Light ]
    ~reliability:[ R_full; R_partial; R_none ]
    ~g:0.0 ()

let agreed_exn initiator responder =
  match negotiate ~initiator ~responder with
  | Ok a -> a
  | Error e -> invalid_arg ("Profile.agreed_exn: " ^ e)
