(** Application traffic sources feeding a connection's sender.

    The congestion-control plane pulls: at each transmission opportunity
    it asks the source for one packet ([take]).  A source that answers
    [false] must later call the notifier (installed by the connection)
    when data becomes available again, waking the sender. *)

type t

val take : t -> bool
(** Consume one packet's worth of data if available now. *)

val set_notify : t -> (unit -> unit) -> unit
(** Install the data-available callback (connection internal). *)

val offered_packets : t -> int
(** Packets handed out so far. *)

val greedy : unit -> t
(** Always has data (bulk transfer). *)

val pull : take:(unit -> bool) -> unit -> t
(** A source owned by an external multiplexer (the trunk layer): [take]
    is consulted at each transmission opportunity and must commit one
    packet's worth of data when it answers [true].  The owner calls
    {!wake} when data becomes available after a [false] answer. *)

val wake : t -> unit
(** Invoke the connection-installed notifier: data became available
    again.  Safe to call before the connection attaches (no-op). *)

val finite : packets:int -> t
(** Greedy for exactly [packets] packets, then dry forever. *)

val cbr :
  sim:Engine.Sim.t -> rate_bps:float -> packet_size:int -> unit -> t
(** Constant bit rate media: bytes accrue at [rate_bps]; a packet is
    available once [packet_size] bytes have accumulated.  When asked too
    early, wakes the sender exactly when the next packet completes. *)

val queued : unit -> t * (int -> unit)
(** A source fed externally: the returned function pushes [n] packets
    into the source's queue and wakes the sender.  Used for trace-driven
    workloads (e.g. video frames arriving from an encoder). *)

val on_off :
  sim:Engine.Sim.t ->
  rng:Engine.Rng.t ->
  mean_on:float ->
  mean_off:float ->
  rate_bps:float ->
  packet_size:int ->
  unit ->
  t
(** Exponential on/off source emitting CBR at [rate_bps] during ON
    periods (VoIP/video talk-spurt model). *)
