type t = {
  take_impl : t -> bool;
  mutable notify : unit -> unit;
  mutable offered : int;
}

let take t =
  let ok = t.take_impl t in
  if ok then t.offered <- t.offered + 1;
  ok

let set_notify t f = t.notify <- f

let offered_packets t = t.offered

let greedy () =
  { take_impl = (fun _ -> true); notify = ignore; offered = 0 }

let pull ~take () = { take_impl = (fun _ -> take ()); notify = ignore; offered = 0 }

let wake t = t.notify ()

let finite ~packets =
  let remaining = ref packets in
  {
    take_impl =
      (fun _ ->
        if !remaining > 0 then begin
          decr remaining;
          true
        end
        else false);
    notify = ignore;
    offered = 0;
  }

(* Shared machinery for rate-shaped sources: a byte accumulator filled
   while [active ()], waking the sender when the next packet is ready. *)
let shaped ~sim ~rate_bps ~packet_size ~active =
  assert (rate_bps > 0.0 && packet_size > 0);
  let bytes_per_s = rate_bps /. 8.0 in
  let credit = ref 0.0 in
  let last = ref (Engine.Sim.now sim) in
  let refill () =
    let now = Engine.Sim.now sim in
    if active () then credit := !credit +. ((now -. !last) *. bytes_per_s);
    last := now
  in
  let take_impl t =
    refill ();
    let need = float_of_int packet_size in
    (* The epsilon absorbs float rounding at the credit boundary; without
       it a wakeup can land infinitesimally short of a packet and respawn
       itself forever at the same virtual instant. *)
    if !credit >= need -. 1e-6 then begin
      credit := Float.max 0.0 (!credit -. need);
      true
    end
    else begin
      if active () then begin
        let wait = ((need -. !credit) /. bytes_per_s) +. 1e-6 in
        ignore
          (Engine.Sim.schedule_after sim (Float.max wait 1e-6) (fun () ->
               t.notify ()))
      end;
      false
    end
  in
  take_impl

let cbr ~sim ~rate_bps ~packet_size () =
  {
    take_impl = shaped ~sim ~rate_bps ~packet_size ~active:(fun () -> true);
    notify = ignore;
    offered = 0;
  }

let queued () =
  let backlog = ref 0 in
  let t =
    {
      take_impl =
        (fun _ ->
          if !backlog > 0 then begin
            decr backlog;
            true
          end
          else false);
      notify = ignore;
      offered = 0;
    }
  in
  let push n =
    assert (n >= 0);
    if n > 0 then begin
      backlog := !backlog + n;
      t.notify ()
    end
  in
  (t, push)

let on_off ~sim ~rng ~mean_on ~mean_off ~rate_bps ~packet_size () =
  assert (mean_on > 0.0 && mean_off > 0.0);
  let on = ref true in
  let t_ref = ref None in
  let rec toggle () =
    on := not !on;
    let mean = if !on then mean_on else mean_off in
    ignore
      (Engine.Sim.schedule_after sim
         (Engine.Dist.exponential rng ~mean)
         toggle);
    if !on then
      match !t_ref with Some t -> t.notify () | None -> ()
  in
  ignore
    (Engine.Sim.schedule_after sim (Engine.Dist.exponential rng ~mean:mean_on)
       toggle);
  let take_impl = shaped ~sim ~rate_bps ~packet_size ~active:(fun () -> !on) in
  let t = { take_impl; notify = ignore; offered = 0 } in
  t_ref := Some t;
  t
