(** VTP segments as simulator frame bodies.

    [Vtp] is the open-variant tag carrying a {!Packet.Segment.t} through
    {!Netsim}; [segment] and [frame_of] stamp fresh identities. *)

type Netsim.Frame.body += Vtp of Packet.Segment.t

val segment :
  sim:Engine.Sim.t ->
  flow_id:int ->
  hdr:Packet.Header.t ->
  payload:int ->
  Packet.Segment.t

val frame_of :
  sim:Engine.Sim.t -> flow_id:int -> Packet.Segment.t -> Netsim.Frame.t
