type feedback_plane = Standard | Light

type reliability_mode = R_none | R_partial | R_full

type offer = {
  planes : feedback_plane list;
  reliability : reliability_mode list;
  qos_target_bps : float;
  partial_max_retx : int;
  partial_deadline : float;
  ecn : bool;
}

type agreed = {
  plane : feedback_plane;
  mode : reliability_mode;
  target_bps : float;
  max_retx : int;
  deadline : float;
  use_ecn : bool;
}

let plane_to_string = function Standard -> "std" | Light -> "light"

let plane_of_string = function
  | "std" -> Ok Standard
  | "light" -> Ok Light
  | s -> Error ("unknown feedback plane: " ^ s)

let mode_to_string = function
  | R_none -> "none"
  | R_partial -> "partial"
  | R_full -> "full"

let mode_of_string = function
  | "none" -> Ok R_none
  | "partial" -> Ok R_partial
  | "full" -> Ok R_full
  | s -> Error ("unknown reliability mode: " ^ s)

let pp_plane fmt p = Format.pp_print_string fmt (plane_to_string p)

let pp_mode fmt m = Format.pp_print_string fmt (mode_to_string m)

let pp_agreed fmt a =
  Format.fprintf fmt "plane=%a rel=%a g=%.0fbps retx<=%d deadline=%.2fs%s"
    pp_plane a.plane pp_mode a.mode a.target_bps a.max_retx a.deadline
    (if a.use_ecn then " ecn" else "")

let first_common pref supported =
  List.find_opt (fun x -> List.mem x supported) pref

let negotiate ~initiator ~responder =
  match first_common initiator.planes responder.planes with
  | None -> Error "no common feedback plane"
  | Some plane -> (
      match first_common initiator.reliability responder.reliability with
      | None -> Error "no common reliability mode"
      | Some mode ->
          let target_bps =
            if responder.qos_target_bps <= 0.0 then initiator.qos_target_bps
            else Float.min initiator.qos_target_bps responder.qos_target_bps
          in
          Ok
            {
              plane;
              mode;
              target_bps;
              max_retx =
                Stdlib.min initiator.partial_max_retx
                  responder.partial_max_retx;
              deadline =
                Float.min initiator.partial_deadline
                  responder.partial_deadline;
              use_ecn = initiator.ecn && responder.ecn;
            })

(* The textual encoding: "qtp1;<k>=<v>;…".  Lists are comma-separated,
   preference order preserved. *)

let magic_offer = "qtp1-offer"
let magic_agreed = "qtp1-agreed"

let encode_offer o =
  Printf.sprintf "%s;planes=%s;rel=%s;g=%.17g;pmr=%d;pdl=%.17g;ecn=%d"
    magic_offer
    (String.concat "," (List.map plane_to_string o.planes))
    (String.concat "," (List.map mode_to_string o.reliability))
    o.qos_target_bps o.partial_max_retx o.partial_deadline
    (if o.ecn then 1 else 0)

let fields_of s =
  match String.split_on_char ';' s with
  | magic :: rest ->
      let kvs =
        List.filter_map
          (fun part ->
            match String.index_opt part '=' with
            | Some i ->
                Some
                  ( String.sub part 0 i,
                    String.sub part (i + 1) (String.length part - i - 1) )
            | None -> None)
          rest
      in
      Ok (magic, kvs)
  | [] -> Error "empty capability string"

let lookup kvs k =
  match List.assoc_opt k kvs with
  | Some v -> Ok v
  | None -> Error ("missing field: " ^ k)

let ( let* ) = Result.bind

let parse_list of_string s =
  let items = if s = "" then [] else String.split_on_char ',' s in
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* x = of_string item in
      Ok (acc @ [ x ]))
    (Ok []) items

let parse_float name s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error ("bad float in " ^ name)

let parse_int name s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error ("bad int in " ^ name)

let decode_offer s =
  let* magic, kvs = fields_of s in
  if magic <> magic_offer then Error ("bad magic: " ^ magic)
  else
    let* planes_s = lookup kvs "planes" in
    let* planes = parse_list plane_of_string planes_s in
    let* rel_s = lookup kvs "rel" in
    let* reliability = parse_list mode_of_string rel_s in
    let* g_s = lookup kvs "g" in
    let* qos_target_bps = parse_float "g" g_s in
    let* pmr_s = lookup kvs "pmr" in
    let* partial_max_retx = parse_int "pmr" pmr_s in
    let* pdl_s = lookup kvs "pdl" in
    let* partial_deadline = parse_float "pdl" pdl_s in
    let* ecn_s = lookup kvs "ecn" in
    let* ecn_i = parse_int "ecn" ecn_s in
    if planes = [] then Error "offer with no feedback plane"
    else if reliability = [] then Error "offer with no reliability mode"
    else
      Ok
        {
          planes;
          reliability;
          qos_target_bps;
          partial_max_retx;
          partial_deadline;
          ecn = ecn_i <> 0;
        }

let encode_agreed a =
  Printf.sprintf "%s;plane=%s;rel=%s;g=%.17g;pmr=%d;pdl=%.17g;ecn=%d"
    magic_agreed (plane_to_string a.plane) (mode_to_string a.mode)
    a.target_bps a.max_retx a.deadline
    (if a.use_ecn then 1 else 0)

let decode_agreed s =
  let* magic, kvs = fields_of s in
  if magic <> magic_agreed then Error ("bad magic: " ^ magic)
  else
    let* plane_s = lookup kvs "plane" in
    let* plane = plane_of_string plane_s in
    let* mode_s = lookup kvs "rel" in
    let* mode = mode_of_string mode_s in
    let* g_s = lookup kvs "g" in
    let* target_bps = parse_float "g" g_s in
    let* pmr_s = lookup kvs "pmr" in
    let* max_retx = parse_int "pmr" pmr_s in
    let* pdl_s = lookup kvs "pdl" in
    let* deadline = parse_float "pdl" pdl_s in
    let* ecn_s = lookup kvs "ecn" in
    let* ecn_i = parse_int "ecn" ecn_s in
    Ok { plane; mode; target_bps; max_retx; deadline; use_ecn = ecn_i <> 0 }

let to_policy a =
  match a.mode with
  | R_none -> Sack.Reliability.Unreliable
  | R_partial ->
      Sack.Reliability.Partial { max_retx = a.max_retx; deadline = a.deadline }
  | R_full -> Sack.Reliability.Full

let equal_offer (a : offer) (b : offer) =
  a.planes = b.planes && a.reliability = b.reliability
  && a.qos_target_bps = b.qos_target_bps
  && a.partial_max_retx = b.partial_max_retx
  && a.partial_deadline = b.partial_deadline
  && a.ecn = b.ecn

let equal_agreed (a : agreed) (b : agreed) =
  a.plane = b.plane && a.mode = b.mode && a.target_bps = b.target_bps
  && a.max_retx = b.max_retx
  && a.deadline = b.deadline
  && a.use_ecn = b.use_ecn
