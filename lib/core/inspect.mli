(** Connection observability hooks for the invariant checker.

    When hooks are installed (the experiment harness's [~checked:true]
    mode), every {!Connection} reports a {!rate_sample} each time its
    TFRC sender processes feedback — the exact inputs and output of the
    rate update, so a checker can assert the gTFRC floor and the
    RFC 3448 rate bounds without reaching into sender internals.

    The registry is deliberately global (one simulation at a time): the
    harness installs hooks around a run and {!clear}s them after, and no
    per-connection plumbing is needed across the 16 experiment
    scenarios. *)

type rate_sample = {
  at : float;
  flow_id : int;
  x_bps : float;  (** allowed rate after this update *)
  x_calc_bps : float;  (** equation rate for (rtt, p); [infinity] if p = 0 *)
  x_recv_bps : float;  (** receiver-reported rate in this feedback *)
  p : float;  (** loss event rate driving the update *)
  g_bps : float;  (** negotiated AF target ([agreed.target_bps]) *)
  cap_bps : float option;  (** configured interface ceiling *)
  mbi_floor_bps : float;  (** one packet per t_mbi *)
  slow_start : bool;
}

type hooks = { on_rate_sample : rate_sample -> unit }

val install : hooks -> unit

val clear : unit -> unit

val hooks : unit -> hooks option
