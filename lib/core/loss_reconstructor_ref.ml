(* Frozen record-based reference implementation of [Loss_reconstructor],
   kept as the differential-testing oracle for the slab-packed rewrite. *)

type t = {
  lh : Tfrc.Loss_history.t;
  trace : Trace.Sink.t option;
  mutable last_arrival : float;
  mutable seeded : bool;
}

let create ?ndup ?discount ?cost ?trace () =
  {
    lh = Tfrc.Loss_history.create ?ndup ?discount ?cost ();
    trace;
    last_arrival = 0.0;
    seeded = false;
  }

let trace_new_events t ~before =
  let after = Tfrc.Loss_history.loss_events t.lh in
  if after > before && Trace.Sink.on t.trace then
    Trace.Sink.emit t.trace
      (Trace.Event.Loss_event
         {
           side = Trace.Event.S_sender;
           events = after;
           p = Tfrc.Loss_history.loss_event_rate t.lh;
         })

(* §6.3.1 seeding must happen immediately when the first loss event
   appears — checking only at batch boundaries would make the estimate
   depend on how covers were batched into feedback packets. *)
let maybe_seed t ~rtt ~x_recv ~packet_size =
  if (not t.seeded) && Tfrc.Loss_history.loss_events t.lh >= 1 then begin
    t.seeded <- true;
    let x_target =
      Float.max (float_of_int packet_size /. Float.max rtt 1e-3) x_recv
    in
    let p_seed =
      Tfrc.Equation.loss_rate_for ~s:(Stdlib.max 1 packet_size)
        ~r:(Float.max rtt 1e-3) ~target:x_target
    in
    if p_seed > 0.0 then
      Tfrc.Loss_history.set_first_interval t.lh (1.0 /. p_seed)
  end

type batch = int

let begin_batch t = Tfrc.Loss_history.loss_events t.lh

let push_cover t ~seq ~sent_at ~was_retx ~rtt ~x_recv ~packet_size =
  (* Clamp to keep the virtual clock monotone even when covers from
     reordered feedback interleave. *)
  let arrival = Float.max t.last_arrival (sent_at +. rtt) in
  t.last_arrival <- arrival;
  Tfrc.Loss_history.on_packet t.lh ~seq ~arrival ~rtt ~is_retx:was_retx;
  maybe_seed t ~rtt ~x_recv ~packet_size

let end_batch t before = trace_new_events t ~before

let on_covers t ~covers ~rtt ~x_recv ~packet_size =
  let before = begin_batch t in
  List.iter
    (fun (c : Sack.Scoreboard.cover) ->
      push_cover t ~seq:c.cov_seq ~sent_at:c.cov_sent_at
        ~was_retx:c.cov_was_retx ~rtt ~x_recv ~packet_size)
    covers;
  end_batch t before

let on_ce_marks t ~new_marks ~rtt ~x_recv ~packet_size =
  if new_marks > 0 then begin
    let before = Tfrc.Loss_history.loss_events t.lh in
    let seq =
      match Tfrc.Loss_history.max_seq t.lh with
      | Some s -> s
      | None -> Packet.Serial.zero
    in
    for _ = 1 to new_marks do
      Tfrc.Loss_history.on_congestion_mark t.lh ~seq ~arrival:t.last_arrival
        ~rtt
    done;
    maybe_seed t ~rtt ~x_recv ~packet_size;
    trace_new_events t ~before
  end

(* Handover: the reconstructed history follows the same policy as a
   standard receiver's.  After [`Reset] the §6.3.1 seeding may run
   again on the new path's first loss event. *)
let on_handover t ~policy ~packet_size ~(link : Tfrc.Handover.link_info) =
  match (policy : Tfrc.Handover.policy) with
  | `Keep -> ()
  | `Reset ->
      Tfrc.Loss_history.reseed t.lh 0.0;
      t.seeded <- false
  | `Informed ->
      let p = Tfrc.Handover.informed_p ~s:(Stdlib.max 1 packet_size) link in
      Tfrc.Loss_history.reseed t.lh (if p > 0.0 then 1.0 /. p else 0.0);
      t.seeded <- true

let loss_event_rate t = Tfrc.Loss_history.loss_event_rate t.lh

let loss_events t = Tfrc.Loss_history.loss_events t.lh

let history t = t.lh
