(** A VTP connection: the composition of a congestion-control plane, a
    reliability plane and a feedback plane over a simulated path.

    This module is the paper's "versatile transport protocol": both
    endpoints are built here from an agreed {!Capabilities.agreed}
    configuration — either fixed by the caller or negotiated in-band
    through a SYN / SYN-ACK / ACK handshake carrying encoded offers.

    Composition map:

    - congestion control: {!Tfrc.Sender} (gTFRC when [target_bps > 0]);
    - feedback plane [Standard]: an RFC 3448 {!Tfrc.Receiver} computes
      [p] remotely; when reliability is on, per-packet SACK reports run
      alongside as the repair ack-clock;
    - feedback plane [Light]: the receiver runs only a
      {!Sack.Rcv_tracker}; the sender reconstructs loss events with
      {!Loss_reconstructor} (QTP_light);
    - reliability: {!Sack.Scoreboard} + {!Sack.Reliability} decide
      retransmissions; abandoned holes propagate to the receiver through
      the data-header forward point. *)

type sack_cadence = Per_packet | Per_rtt

type config = {
  agreed : Capabilities.agreed;
  packet_size : int;  (** on-wire bytes per data segment *)
  initial_rtt : float;
  max_rate_bps : float option;
  cadence : sack_cadence;  (** light-plane report cadence *)
  selfish_p_factor : float;
      (** receiver misbehaviour knob for the standard plane: reported
          [p] is multiplied by this (1.0 = honest, 0.0 = claims a
          loss-free path).  The light plane has no [p] to lie about. *)
  sack_blocks : int;  (** SACK blocks carried per report (default 4) *)
  oscillation_damping : bool;  (** RFC 3448 §4.5 (default off) *)
  handover : Tfrc.Handover.policy;
      (** rate-policy applied on {!notify_migration} (default [`Keep]) *)
}

val config : ?packet_size:int -> ?initial_rtt:float -> ?max_rate_bps:float ->
  ?cadence:sack_cadence -> ?selfish_p_factor:float -> ?sack_blocks:int ->
  ?oscillation_damping:bool -> ?handover:Tfrc.Handover.policy ->
  Capabilities.agreed -> config

type state =
  | Negotiating
  | Established of Capabilities.agreed
  | Closing
      (** {!close} was called: no new data; retransmissions continue
          until the reliability plane drains, then CLOSE / CLOSE-ACK *)
  | Closed
  | Failed of string

type t

val create :
  sim:Engine.Sim.t ->
  endpoint:Netsim.Topology.endpoint ->
  ?cost_sender:Stats.Cost.t ->
  ?cost_receiver:Stats.Cost.t ->
  ?source:Source.t ->
  ?start_at:float ->
  config ->
  t
(** Build both endpoints with a fixed configuration and start the
    sender at [start_at] (default 0).  [source] defaults to greedy. *)

val create_negotiated :
  sim:Engine.Sim.t ->
  endpoint:Netsim.Topology.endpoint ->
  ?cost_sender:Stats.Cost.t ->
  ?cost_receiver:Stats.Cost.t ->
  ?source:Source.t ->
  ?start_at:float ->
  ?packet_size:int ->
  ?initial_rtt:float ->
  ?handover:Tfrc.Handover.policy ->
  initiator:Capabilities.offer ->
  responder:Capabilities.offer ->
  unit ->
  t
(** Run the in-band handshake; data flows only if negotiation succeeds
    (check {!state} after the simulation ran past the handshake). *)

val state : t -> state

val set_on_deliver :
  t -> (seq:Packet.Serial.t -> size:int -> unit) -> unit
(** Install a per-segment in-order delivery tap on the receiving side:
    called for every payload the reassembly hands to the application, in
    sequence order, exactly once per sequence number.  The trunk layer's
    demultiplex point. *)

val notify_migration : t -> link:Tfrc.Handover.link_info -> unit
(** Tell the connection its path just migrated to a link with the given
    declared parameters.  The configured {!Tfrc.Handover.policy} is
    applied to the sender's rate/RTT state and to whichever loss
    history the plane owns — the light plane's sender-side
    reconstruction or the standard plane's receiver history.  Typically
    registered via {!Netsim.Topology.on_migrate}. *)

val close : t -> unit
(** Graceful teardown: stop accepting application data, finish pending
    retransmissions, then exchange CLOSE / CLOSE-ACK (with retries; the
    sender eventually closes unilaterally if the peer vanished).
    Idempotent. *)

(** {2 Observation} *)

val goodput : t -> Stats.Series.t
(** Payload bytes delivered in order to the receiving application. *)

val arrivals : t -> Stats.Series.t
(** Wire bytes of every data segment reaching the receiver (includes
    out-of-order and duplicates) — the throughput view. *)

val cc : t -> Tfrc.Sender.t

val current_rate_bps : t -> float

val sender_loss_estimate : t -> float
(** The loss event rate steering the sender: receiver-reported on the
    standard plane, reconstructed on the light plane. *)

val receiver_loss_estimate : t -> float option
(** The RFC 3448 receiver's own estimate (standard plane only). *)

val delivery_delays : t -> float array
(** Per-segment time from first transmission to in-order delivery, in
    delivery order (retransmission and reassembly waits included). *)

val data_sent : t -> int
val retransmissions : t -> int
val abandoned : t -> int
val delivered : t -> int
val skipped : t -> int
val feedback_packets : t -> int
val feedback_bytes : t -> int
val handshake_packets : t -> int
