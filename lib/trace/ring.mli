(** Bounded per-connection event ring.

    A bounded circular buffer of timestamped events, packed into flat
    float chunks that are allocated lazily as the ring fills (so
    short-lived flows stay small and recording allocates nothing per
    event).  When full, the oldest entry is overwritten and {!dropped}
    counts the eviction,
    so a long run keeps the newest window at O(capacity) memory while
    the canonical serialisation still states exactly how much history
    was shed (keeping digests a pure function of the recorded run). *)

type entry = { at : float;  (** virtual time *) ev : Event.t }

type t

val create : capacity:int -> t
(** [capacity >= 1]. *)

val push : ?flow:int -> t -> at:float -> Event.t -> unit
(** Append an entry, evicting the oldest when full.  [flow]
    (default 0) is an integer label stored alongside the entry; the
    recorder uses it to journal every connection through one shared
    ring (a single sequential write stream stays cache-friendly where
    many interleaved rings do not) and to rebuild per-flow rings at
    export via {!iter_tagged}. *)

val push_seg_send :
  ?flow:int -> t -> at:float -> seq:Packet.Serial.t -> size:int ->
  retx:bool -> unit

val push_seg_recv :
  ?flow:int -> t -> at:float -> seq:Packet.Serial.t -> size:int ->
  ce:bool -> retx:bool -> unit

val push_sack_sent :
  ?flow:int -> t -> at:float -> cum_ack:Packet.Serial.t -> blocks:int ->
  x_recv:float -> unit

val push_sack_rcvd :
  ?flow:int -> t -> at:float -> cum_ack:Packet.Serial.t -> blocks:int ->
  acked:int -> sacked:int -> lost:int -> unit

val push_tcp_send :
  ?flow:int -> t -> at:float -> seq:Packet.Serial.t -> retx:bool -> unit

val push_tcp_ack :
  ?flow:int -> t -> at:float -> cum_ack:Packet.Serial.t -> cwnd:float ->
  ssthresh:float -> unit
(** Zero-allocation fast paths for the hot event shapes: encode the
    fields directly, bit-for-bit identical to {!push} of the
    corresponding {!Event.t} (the golden corpus pins the
    equivalence). *)

val length : t -> int
(** Entries currently held (<= capacity). *)

val total : t -> int
(** Entries ever pushed. *)

val dropped : t -> int
(** Entries overwritten ([total - length]). *)

val note_dropped : t -> int -> unit
(** [note_dropped t n] accounts for [n >= 0] entries that were shed
    before they reached this ring (adds to {!total} only).  Used when
    materialising a per-flow view of a partially-evicted journal, so
    the view's {!dropped} still reports the full history shed. *)

val capacity : t -> int

val iter : (entry -> unit) -> t -> unit
(** Oldest to newest. *)

val iter_tagged : (int -> entry -> unit) -> t -> unit
(** Oldest to newest, with each entry's flow label. *)

val to_list : t -> entry list
(** Oldest first. *)
