type entry = { at : float; ev : Event.t }

(* Recording must cost neither allocation nor redundant memory
   traffic: the retained trace is the one part of a traced run that
   must travel to RAM, so bytes per event is the overhead budget.  A
   first cut that retained [Event.t] values paid the GC for promoting
   every variant block, boxed float and int32 serial (~25% events/sec
   on the 100-flow bench scenario); a struct-of-arrays int+float
   encoding fixed the GC but still wrote ~2 cache lines per event plus
   the same again zeroing fresh chunks.

   So entries are packed into bare [float] chunks at a fixed 6-word
   stride: timestamp, one tag word, and up to four payload words.  The
   tag word is an integer (exact as a double, budget 2^53) packing the
   constructor tag in bits 0-5, the flow label in bits 6-25, and the
   constructor's booleans and small counts from bit 26 up — so the hot
   events (segments, sacks) cost three or four stores, not eight.
   Integer payloads (serials are 32-bit, sizes and counts small) are
   exact as doubles; strings are interned into a small side table and
   stored by index.  Chunks come from [Array.create_float], so nothing
   is zeroed, nothing is boxed, stores need no write barrier, and a
   push touches under one cache line.  Chunks are fixed-size and
   allocated lazily as the ring fills — never copied or doubled — so a
   mostly-idle flow stays small.  Events are re-materialised only at
   export.

   The flow label (default 0) exists because the recorder journals
   every flow through one shared ring — a single sequential write
   stream the hardware prefetcher can track, where a hundred
   interleaved per-flow rings each miss the cache — and reconstructs
   per-flow rings from the labels at export time. *)

let stride = 6

let chunk_slots = 512 (* power of two: chunk indexing is shift/mask *)

let chunk_shift = 9

let chunk_mask = chunk_slots - 1

let max_flow = (1 lsl 20) - 1

type t = {
  capacity : int;
  chunks : float array array;
  mutable head : int;  (* slot index of the oldest entry *)
  mutable len : int;
  mutable total : int;
  mutable strs : string array;
  mutable n_strs : int;
  str_ids : (string, int) Hashtbl.t;
}

let no_chunk : float array = [||]

let create ~capacity =
  if capacity < 1 then invalid_arg "Trace.Ring.create: capacity < 1";
  let n_chunks = (capacity + chunk_slots - 1) / chunk_slots in
  {
    capacity;
    chunks = Array.make n_chunks no_chunk;
    head = 0;
    len = 0;
    total = 0;
    strs = Array.make 8 "";
    n_strs = 0;
    str_ids = Hashtbl.create 8;
  }

let capacity t = t.capacity

let chunk_for t slot =
  let c = slot lsr chunk_shift in
  let ch = t.chunks.(c) in
  if Array.length ch > 0 then ch
  else begin
    (* The last chunk of a non-multiple capacity is allocated at the
       full chunk size; the ring arithmetic never indexes past
       [capacity - 1], so the tail slots are simply unused. *)
    let ch = Array.create_float (chunk_slots * stride) in
    t.chunks.(c) <- ch;
    ch
  end

let intern t s =
  match Hashtbl.find_opt t.str_ids s with
  | Some i -> i
  | None ->
      if t.n_strs = Array.length t.strs then begin
        let bigger = Array.make (2 * t.n_strs) "" in
        Array.blit t.strs 0 bigger 0 t.n_strs;
        t.strs <- bigger
      end;
      let i = t.n_strs in
      t.strs.(i) <- s;
      t.n_strs <- i + 1;
      Hashtbl.add t.str_ids s i;
      i

let serial s = float_of_int (Packet.Serial.to_int s)

let fi = float_of_int

(* Aux bits sit above the tag (6 bits) and flow (20 bits).  Counts
   packed here are bounded by the wire format (sack blocks per packet,
   sizes below 2^16); the masks keep an out-of-range value from
   silently damaging neighbour bits. *)
let aux0 = 26

let b1 cond = if cond then 1 lsl aux0 else 0

let tag ~flow n = n lor (flow lsl 6)

(* Tags are the declaration order of {!Event.t}'s constructors; decode
   must mirror encode exactly. *)
let encode t slot ~flow ~at ev =
  let w = chunk_for t slot in
  let b = (slot land chunk_mask) * stride in
  w.(b) <- at;
  match ev with
  | Event.Seg_send { seq; size; retx } ->
      w.(b + 1) <- fi (tag ~flow 0 lor b1 retx);
      w.(b + 2) <- serial seq;
      w.(b + 3) <- fi size
  | Event.Seg_recv { seq; size; ce; retx } ->
      w.(b + 1) <- fi (tag ~flow 1 lor b1 ce lor (b1 retx lsl 1));
      w.(b + 2) <- serial seq;
      w.(b + 3) <- fi size
  | Event.Sack_sent { cum_ack; blocks; x_recv } ->
      w.(b + 1) <- fi (tag ~flow 2);
      w.(b + 2) <- serial cum_ack;
      w.(b + 3) <- fi blocks;
      w.(b + 4) <- x_recv
  | Event.Sack_rcvd { cum_ack; blocks; acked; sacked; lost } ->
      w.(b + 1) <- fi (tag ~flow 3 lor ((blocks land 0xFFFF) lsl aux0));
      w.(b + 2) <- serial cum_ack;
      w.(b + 3) <- fi acked;
      w.(b + 4) <- fi sacked;
      w.(b + 5) <- fi lost
  | Event.Fb_sent { x_recv; p } ->
      w.(b + 1) <- fi (tag ~flow 4);
      w.(b + 2) <- x_recv;
      w.(b + 3) <- p
  | Event.Fb_rcvd { x_recv; p } ->
      w.(b + 1) <- fi (tag ~flow 5);
      w.(b + 2) <- x_recv;
      w.(b + 3) <- p
  | Event.Loss_event { side; events; p } ->
      w.(b + 1) <- fi (tag ~flow 6 lor b1 (match side with Event.S_receiver -> true | Event.S_sender -> false));
      w.(b + 2) <- fi events;
      w.(b + 3) <- p
  | Event.Loss_inferred { seq; by } ->
      w.(b + 1) <- fi (tag ~flow 7 lor b1 (match by with Event.I_timeout -> true | Event.I_dupthresh -> false));
      w.(b + 2) <- serial seq
  | Event.Rate_change { x_bps; x_calc_bps; x_recv_bps; p; slow_start } ->
      w.(b + 1) <- fi (tag ~flow 8 lor b1 slow_start);
      w.(b + 2) <- x_bps;
      w.(b + 3) <- x_calc_bps;
      w.(b + 4) <- x_recv_bps;
      w.(b + 5) <- p
  | Event.Rtt_sample { sample; srtt } ->
      w.(b + 1) <- fi (tag ~flow 9);
      w.(b + 2) <- sample;
      w.(b + 3) <- srtt
  | Event.Retransmit { seq; count } ->
      w.(b + 1) <- fi (tag ~flow 10);
      w.(b + 2) <- serial seq;
      w.(b + 3) <- fi count
  | Event.Abandoned { seq } ->
      w.(b + 1) <- fi (tag ~flow 11);
      w.(b + 2) <- serial seq
  | Event.Negotiated { plane; mode; g_bps } ->
      w.(b + 1) <- fi (tag ~flow 12);
      w.(b + 2) <- fi (intern t plane);
      w.(b + 3) <- fi (intern t mode);
      w.(b + 4) <- g_bps
  | Event.Nego_failed { reason } ->
      w.(b + 1) <- fi (tag ~flow 13);
      w.(b + 2) <- fi (intern t reason)
  | Event.Conn_state { state } ->
      w.(b + 1) <- fi (tag ~flow 14);
      w.(b + 2) <- fi (intern t state)
  | Event.Drop { link; reason; size } ->
      (* Two aux bits; values 0/1 predate [D_cut], keeping old traces
         decodable. *)
      w.(b + 1) <- fi (tag ~flow 15 lor ((match reason with Event.D_loss -> 0 | Event.D_queue -> 1 | Event.D_cut -> 2) lsl aux0));
      w.(b + 2) <- fi (intern t link);
      w.(b + 3) <- fi size
  | Event.Tcp_send { seq; retx } ->
      w.(b + 1) <- fi (tag ~flow 16 lor b1 retx);
      w.(b + 2) <- serial seq
  | Event.Tcp_ack_rcvd { cum_ack; cwnd; ssthresh } ->
      w.(b + 1) <- fi (tag ~flow 17);
      w.(b + 2) <- serial cum_ack;
      w.(b + 3) <- cwnd;
      w.(b + 4) <- ssthresh
  | Event.Handover { from_path; to_path; cut } ->
      w.(b + 1) <- fi (tag ~flow 18 lor b1 cut);
      w.(b + 2) <- fi (intern t from_path);
      w.(b + 3) <- fi (intern t to_path)

let decode t slot =
  let w = chunk_for t slot in
  let b = (slot land chunk_mask) * stride in
  let f k = w.(b + k) in
  let i k = int_of_float (f k) in
  let str k = t.strs.(i k) in
  let seq k = Packet.Serial.of_int (i k) in
  let tagw = i 1 in
  let aux = tagw lsr aux0 in
  let abit n = (aux lsr n) land 1 = 1 in
  let ev =
    match tagw land 63 with
    | 0 -> Event.Seg_send { seq = seq 2; size = i 3; retx = abit 0 }
    | 1 -> Event.Seg_recv { seq = seq 2; size = i 3; ce = abit 0; retx = abit 1 }
    | 2 -> Event.Sack_sent { cum_ack = seq 2; blocks = i 3; x_recv = f 4 }
    | 3 ->
        Event.Sack_rcvd
          {
            cum_ack = seq 2;
            blocks = aux land 0xFFFF;
            acked = i 3;
            sacked = i 4;
            lost = i 5;
          }
    | 4 -> Event.Fb_sent { x_recv = f 2; p = f 3 }
    | 5 -> Event.Fb_rcvd { x_recv = f 2; p = f 3 }
    | 6 ->
        Event.Loss_event
          {
            side = (if abit 0 then Event.S_receiver else Event.S_sender);
            events = i 2;
            p = f 3;
          }
    | 7 ->
        Event.Loss_inferred
          {
            seq = seq 2;
            by = (if abit 0 then Event.I_timeout else Event.I_dupthresh);
          }
    | 8 ->
        Event.Rate_change
          {
            x_bps = f 2;
            x_calc_bps = f 3;
            x_recv_bps = f 4;
            p = f 5;
            slow_start = abit 0;
          }
    | 9 -> Event.Rtt_sample { sample = f 2; srtt = f 3 }
    | 10 -> Event.Retransmit { seq = seq 2; count = i 3 }
    | 11 -> Event.Abandoned { seq = seq 2 }
    | 12 -> Event.Negotiated { plane = str 2; mode = str 3; g_bps = f 4 }
    | 13 -> Event.Nego_failed { reason = str 2 }
    | 14 -> Event.Conn_state { state = str 2 }
    | 15 ->
        Event.Drop
          {
            link = str 2;
            reason =
              (match aux land 3 with
              | 0 -> Event.D_loss
              | 1 -> Event.D_queue
              | _ -> Event.D_cut);
            size = i 3;
          }
    | 16 -> Event.Tcp_send { seq = seq 2; retx = abit 0 }
    | 17 -> Event.Tcp_ack_rcvd { cum_ack = seq 2; cwnd = f 3; ssthresh = f 4 }
    | 18 ->
        Event.Handover { from_path = str 2; to_path = str 3; cut = abit 0 }
    | tag -> Printf.ksprintf failwith "Trace.Ring: corrupt tag %d" tag
  in
  ((tagw lsr 6) land max_flow, { at = f 0; ev })

let check_flow flow =
  if flow < 0 || flow > max_flow then
    invalid_arg "Trace.Ring.push: flow outside [0, 2^20)"

let next_slot t =
  let s = t.head + t.len in
  if s >= t.capacity then s - t.capacity else s

let advance t =
  if t.len = t.capacity then
    t.head <- (if t.head + 1 >= t.capacity then 0 else t.head + 1)
  else t.len <- t.len + 1;
  t.total <- t.total + 1

let push ?(flow = 0) t ~at ev =
  check_flow flow;
  encode t (next_slot t) ~flow ~at ev;
  advance t

(* Fast paths for the event shapes that dominate a busy trace, encoded
   straight from scalar arguments: no [Event.t] allocation, no
   constructor dispatch, three to five unboxed stores.  Each writes
   bit-for-bit what [encode] writes for the equivalent event, so decode
   and the canonical serialisation cannot tell them apart — the golden
   corpus pins that equivalence. *)

let push_seg_send ?(flow = 0) t ~at ~seq ~size ~retx =
  check_flow flow;
  let slot = next_slot t in
  let w = chunk_for t slot in
  let b = (slot land chunk_mask) * stride in
  w.(b) <- at;
  w.(b + 1) <- fi (tag ~flow 0 lor b1 retx);
  w.(b + 2) <- serial seq;
  w.(b + 3) <- fi size;
  advance t

let push_seg_recv ?(flow = 0) t ~at ~seq ~size ~ce ~retx =
  check_flow flow;
  let slot = next_slot t in
  let w = chunk_for t slot in
  let b = (slot land chunk_mask) * stride in
  w.(b) <- at;
  w.(b + 1) <- fi (tag ~flow 1 lor b1 ce lor (b1 retx lsl 1));
  w.(b + 2) <- serial seq;
  w.(b + 3) <- fi size;
  advance t

let push_sack_sent ?(flow = 0) t ~at ~cum_ack ~blocks ~x_recv =
  check_flow flow;
  let slot = next_slot t in
  let w = chunk_for t slot in
  let b = (slot land chunk_mask) * stride in
  w.(b) <- at;
  w.(b + 1) <- fi (tag ~flow 2);
  w.(b + 2) <- serial cum_ack;
  w.(b + 3) <- fi blocks;
  w.(b + 4) <- x_recv;
  advance t

let push_sack_rcvd ?(flow = 0) t ~at ~cum_ack ~blocks ~acked ~sacked ~lost =
  check_flow flow;
  let slot = next_slot t in
  let w = chunk_for t slot in
  let b = (slot land chunk_mask) * stride in
  w.(b) <- at;
  w.(b + 1) <- fi (tag ~flow 3 lor ((blocks land 0xFFFF) lsl aux0));
  w.(b + 2) <- serial cum_ack;
  w.(b + 3) <- fi acked;
  w.(b + 4) <- fi sacked;
  w.(b + 5) <- fi lost;
  advance t

let push_tcp_send ?(flow = 0) t ~at ~seq ~retx =
  check_flow flow;
  let slot = next_slot t in
  let w = chunk_for t slot in
  let b = (slot land chunk_mask) * stride in
  w.(b) <- at;
  w.(b + 1) <- fi (tag ~flow 16 lor b1 retx);
  w.(b + 2) <- serial seq;
  advance t

let push_tcp_ack ?(flow = 0) t ~at ~cum_ack ~cwnd ~ssthresh =
  check_flow flow;
  let slot = next_slot t in
  let w = chunk_for t slot in
  let b = (slot land chunk_mask) * stride in
  w.(b) <- at;
  w.(b + 1) <- fi (tag ~flow 17);
  w.(b + 2) <- serial cum_ack;
  w.(b + 3) <- cwnd;
  w.(b + 4) <- ssthresh;
  advance t

let note_dropped t n =
  if n < 0 then invalid_arg "Trace.Ring.note_dropped: n < 0";
  t.total <- t.total + n

let length t = t.len

let total t = t.total

let dropped t = t.total - t.len

let iter_tagged f t =
  for i = 0 to t.len - 1 do
    let s = t.head + i in
    let flow, e = decode t (if s >= t.capacity then s - t.capacity else s) in
    f flow e
  done

let iter f t = iter_tagged (fun _ e -> f e) t

let to_list t =
  let acc = ref [] in
  iter (fun e -> acc := e :: !acc) t;
  List.rev !acc
