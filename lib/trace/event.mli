(** Typed protocol events — the vocabulary of the flight recorder.

    One constructor per protocol occurrence the paper's claims are
    stated over: data-segment emission and arrival, SACK and RFC 3448
    feedback in both directions, TFRC loss events (receiver-side and
    sender-reconstructed), rate updates with every input the equation
    saw, RTT samples, loss inference and repair decisions, capability
    negotiation, teardown, in-network drops and the TCP baseline's
    send/ack stream.

    Two renderings:

    - {!pp_canonical} — a compact single-line text form whose bytes are
      a pure function of the event value (floats print as lossless
      hexadecimal literals), used for golden-trace digests and diffs;
    - {!to_json} — a qlog-style [(name, data)] pair for the JSON
      exporter.

    Events deliberately carry no frame uids: uids are drawn from a
    process-global stream, so including them would make an otherwise
    deterministic trace differ between two runs in one process. *)

type side = S_sender | S_receiver
(** Where a loss event was detected: the RFC 3448 receiver, or the
    QTP_light sender reconstructing from SACK coverage. *)

type infer = I_dupthresh | I_timeout
(** How the scoreboard inferred a loss: SACK coverage above the hole, or
    retransmission-timeout expiry. *)

type drop_reason = D_loss | D_queue | D_cut
(** Why a link dropped a frame: its non-congestion loss model, the
    qdisc refusing the enqueue, or a severed link discarding traffic
    during a [`Cut]-mode handover. *)

type t =
  | Seg_send of { seq : Packet.Serial.t; size : int; retx : bool }
      (** a data segment left the sender (original or repair) *)
  | Seg_recv of { seq : Packet.Serial.t; size : int; ce : bool; retx : bool }
      (** a data segment reached the receiver *)
  | Sack_sent of { cum_ack : Packet.Serial.t; blocks : int; x_recv : float }
  | Sack_rcvd of {
      cum_ack : Packet.Serial.t;
      blocks : int;
      acked : int;  (** covers newly acknowledged cumulatively *)
      sacked : int;  (** covers newly SACKed *)
      lost : int;  (** fresh loss inferences this report triggered *)
    }
  | Fb_sent of { x_recv : float; p : float }
      (** RFC 3448 receiver report emitted *)
  | Fb_rcvd of { x_recv : float; p : float }
      (** RFC 3448 receiver report consumed by the sender *)
  | Loss_event of { side : side; events : int; p : float }
      (** the loss history opened a new loss event; [events] is the
          running total, [p] the rate after it *)
  | Loss_inferred of { seq : Packet.Serial.t; by : infer }
  | Rate_change of {
      x_bps : float;  (** allowed rate after the update *)
      x_calc_bps : float;  (** equation rate for (rtt, p); inf if p = 0 *)
      x_recv_bps : float;
      p : float;
      slow_start : bool;
    }
  | Rtt_sample of { sample : float; srtt : float }
  | Retransmit of { seq : Packet.Serial.t; count : int }
      (** [count]-th retransmission of [seq] *)
  | Abandoned of { seq : Packet.Serial.t }
      (** the reliability policy gave up on [seq] *)
  | Negotiated of { plane : string; mode : string; g_bps : float }
  | Nego_failed of { reason : string }
  | Conn_state of { state : string }  (** "closing" / "closed" *)
  | Drop of { link : string; reason : drop_reason; size : int }
  | Tcp_send of { seq : Packet.Serial.t; retx : bool }
  | Tcp_ack_rcvd of { cum_ack : Packet.Serial.t; cwnd : float; ssthresh : float }
  | Handover of { from_path : string; to_path : string; cut : bool }
      (** the flow's path migrated between named link pairs; [cut]
          distinguishes [`Cut] (old path severed) from [`Drain] *)

val dummy : t
(** Inert placeholder for preallocated ring slots. *)

val name : t -> string
(** Short stable event name (also the qlog event name). *)

val pp_canonical : Format.formatter -> t -> unit
(** The canonical single-line body (no timestamp).  Floats render as
    lossless hex literals, so equal bytes iff equal values. *)

val to_json : t -> string * Stats.Json.t
(** [(name, data)] for the qlog-style exporter. *)
