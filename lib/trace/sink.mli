(** A sink binds the ambient recorder to one connection's flow id and
    clock.

    Protocol modules sit at different distances from the simulation:
    TFRC endpoints hold the sim, the SACK scoreboard deliberately holds
    neither a sim nor a flow id.  A sink packages both as closures so a
    module can stamp events without growing new fields, and so passing
    [?trace:Sink.t] through a constructor stays a one-word option. *)

type t = { flow : int; now : unit -> float }

val make : flow:int -> now:(unit -> float) -> t

val of_sim : Engine.Sim.t -> flow:int -> t
(** Clock = the simulation's virtual time. *)

val on : t option -> bool
(** Cheap hot-path guard: a sink is present {e and} a recorder is
    installed.  Call before allocating an event. *)

val emit : t option -> Event.t -> unit
(** Record into the ambient recorder, stamped with the sink's flow and
    current time.  No-op when the sink is [None] or tracing is off. *)

val seg_send :
  t option -> seq:Packet.Serial.t -> size:int -> retx:bool -> unit

val seg_recv :
  t option -> seq:Packet.Serial.t -> size:int -> ce:bool -> retx:bool ->
  unit

val sack_sent :
  t option -> cum_ack:Packet.Serial.t -> blocks:int -> x_recv:float -> unit

val sack_rcvd :
  t option -> cum_ack:Packet.Serial.t -> blocks:int -> acked:int ->
  sacked:int -> lost:int -> unit

val tcp_send : t option -> seq:Packet.Serial.t -> retx:bool -> unit

val tcp_ack :
  t option -> cum_ack:Packet.Serial.t -> cwnd:float -> ssthresh:float ->
  unit
(** Zero-allocation equivalents of {!emit} for the hot event shapes
    (same gating, identical recorded bytes): the fields are encoded
    directly instead of building an {!Event.t} on a per-packet
    path. *)
