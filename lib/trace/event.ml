module Serial = Packet.Serial

type side = S_sender | S_receiver

type infer = I_dupthresh | I_timeout

type drop_reason = D_loss | D_queue | D_cut

type t =
  | Seg_send of { seq : Serial.t; size : int; retx : bool }
  | Seg_recv of { seq : Serial.t; size : int; ce : bool; retx : bool }
  | Sack_sent of { cum_ack : Serial.t; blocks : int; x_recv : float }
  | Sack_rcvd of {
      cum_ack : Serial.t;
      blocks : int;
      acked : int;
      sacked : int;
      lost : int;
    }
  | Fb_sent of { x_recv : float; p : float }
  | Fb_rcvd of { x_recv : float; p : float }
  | Loss_event of { side : side; events : int; p : float }
  | Loss_inferred of { seq : Serial.t; by : infer }
  | Rate_change of {
      x_bps : float;
      x_calc_bps : float;
      x_recv_bps : float;
      p : float;
      slow_start : bool;
    }
  | Rtt_sample of { sample : float; srtt : float }
  | Retransmit of { seq : Serial.t; count : int }
  | Abandoned of { seq : Serial.t }
  | Negotiated of { plane : string; mode : string; g_bps : float }
  | Nego_failed of { reason : string }
  | Conn_state of { state : string }
  | Drop of { link : string; reason : drop_reason; size : int }
  | Tcp_send of { seq : Serial.t; retx : bool }
  | Tcp_ack_rcvd of { cum_ack : Serial.t; cwnd : float; ssthresh : float }
  | Handover of { from_path : string; to_path : string; cut : bool }

let dummy = Conn_state { state = "" }

let name = function
  | Seg_send _ -> "segment_sent"
  | Seg_recv _ -> "segment_received"
  | Sack_sent _ -> "sack_sent"
  | Sack_rcvd _ -> "sack_received"
  | Fb_sent _ -> "feedback_sent"
  | Fb_rcvd _ -> "feedback_received"
  | Loss_event _ -> "loss_event"
  | Loss_inferred _ -> "loss_inferred"
  | Rate_change _ -> "rate_change"
  | Rtt_sample _ -> "rtt_sample"
  | Retransmit _ -> "retransmit"
  | Abandoned _ -> "abandoned"
  | Negotiated _ -> "negotiated"
  | Nego_failed _ -> "negotiation_failed"
  | Conn_state _ -> "connection_state"
  | Drop _ -> "drop"
  | Tcp_send _ -> "tcp_segment_sent"
  | Tcp_ack_rcvd _ -> "tcp_ack_received"
  | Handover _ -> "handover"

let side_str = function S_sender -> "sender" | S_receiver -> "receiver"

let infer_str = function I_dupthresh -> "dupthresh" | I_timeout -> "timeout"

let drop_str = function D_loss -> "loss" | D_queue -> "queue" | D_cut -> "cut"

let bool01 b = if b then 1 else 0

(* Canonical float rendering: OCaml's %h hexadecimal literals are a
   lossless, locale-free image of the IEEE value — equal bytes iff
   equal floats (modulo NaN payloads, which the protocols never
   produce). *)
let pp_canonical fmt ev =
  match ev with
  | Seg_send { seq; size; retx } ->
      Format.fprintf fmt "send seq=%d size=%d retx=%d" (Serial.to_int seq)
        size (bool01 retx)
  | Seg_recv { seq; size; ce; retx } ->
      Format.fprintf fmt "recv seq=%d size=%d ce=%d retx=%d"
        (Serial.to_int seq) size (bool01 ce) (bool01 retx)
  | Sack_sent { cum_ack; blocks; x_recv } ->
      Format.fprintf fmt "sack-tx cum=%d blocks=%d x_recv=%h"
        (Serial.to_int cum_ack) blocks x_recv
  | Sack_rcvd { cum_ack; blocks; acked; sacked; lost } ->
      Format.fprintf fmt "sack-rx cum=%d blocks=%d acked=%d sacked=%d lost=%d"
        (Serial.to_int cum_ack) blocks acked sacked lost
  | Fb_sent { x_recv; p } ->
      Format.fprintf fmt "fb-tx x_recv=%h p=%h" x_recv p
  | Fb_rcvd { x_recv; p } ->
      Format.fprintf fmt "fb-rx x_recv=%h p=%h" x_recv p
  | Loss_event { side; events; p } ->
      Format.fprintf fmt "loss-event side=%s n=%d p=%h" (side_str side)
        events p
  | Loss_inferred { seq; by } ->
      Format.fprintf fmt "loss-inferred seq=%d by=%s" (Serial.to_int seq)
        (infer_str by)
  | Rate_change { x_bps; x_calc_bps; x_recv_bps; p; slow_start } ->
      Format.fprintf fmt "rate x=%h x_calc=%h x_recv=%h p=%h ss=%d" x_bps
        x_calc_bps x_recv_bps p (bool01 slow_start)
  | Rtt_sample { sample; srtt } ->
      Format.fprintf fmt "rtt sample=%h srtt=%h" sample srtt
  | Retransmit { seq; count } ->
      Format.fprintf fmt "retx seq=%d count=%d" (Serial.to_int seq) count
  | Abandoned { seq } ->
      Format.fprintf fmt "abandon seq=%d" (Serial.to_int seq)
  | Negotiated { plane; mode; g_bps } ->
      Format.fprintf fmt "negotiated plane=%s mode=%s g=%h" plane mode g_bps
  | Nego_failed { reason } -> Format.fprintf fmt "nego-failed %s" reason
  | Conn_state { state } -> Format.fprintf fmt "state %s" state
  | Drop { link; reason; size } ->
      Format.fprintf fmt "drop link=%s reason=%s size=%d" link
        (drop_str reason) size
  | Tcp_send { seq; retx } ->
      Format.fprintf fmt "tcp-send seq=%d retx=%d" (Serial.to_int seq)
        (bool01 retx)
  | Tcp_ack_rcvd { cum_ack; cwnd; ssthresh } ->
      Format.fprintf fmt "tcp-ack cum=%d cwnd=%h ssthresh=%h"
        (Serial.to_int cum_ack) cwnd ssthresh
  | Handover { from_path; to_path; cut } ->
      Format.fprintf fmt "handover from=%s to=%s cut=%d" from_path to_path
        (bool01 cut)

let to_json ev =
  let module J = Stats.Json in
  let seq s = ("seq", J.Int (Serial.to_int s)) in
  let data =
    match ev with
    | Seg_send { seq = s; size; retx } ->
        [ seq s; ("size", J.Int size); ("retx", J.Bool retx) ]
    | Seg_recv { seq = s; size; ce; retx } ->
        [ seq s; ("size", J.Int size); ("ce", J.Bool ce); ("retx", J.Bool retx) ]
    | Sack_sent { cum_ack; blocks; x_recv } ->
        [
          ("cum_ack", J.Int (Serial.to_int cum_ack));
          ("blocks", J.Int blocks);
          ("x_recv", J.Float x_recv);
        ]
    | Sack_rcvd { cum_ack; blocks; acked; sacked; lost } ->
        [
          ("cum_ack", J.Int (Serial.to_int cum_ack));
          ("blocks", J.Int blocks);
          ("acked", J.Int acked);
          ("sacked", J.Int sacked);
          ("lost", J.Int lost);
        ]
    | Fb_sent { x_recv; p } | Fb_rcvd { x_recv; p } ->
        [ ("x_recv", J.Float x_recv); ("p", J.Float p) ]
    | Loss_event { side; events; p } ->
        [
          ("side", J.String (side_str side));
          ("events", J.Int events);
          ("p", J.Float p);
        ]
    | Loss_inferred { seq = s; by } ->
        [ seq s; ("by", J.String (infer_str by)) ]
    | Rate_change { x_bps; x_calc_bps; x_recv_bps; p; slow_start } ->
        [
          ("x_bps", J.Float x_bps);
          ("x_calc_bps", J.Float x_calc_bps);
          ("x_recv_bps", J.Float x_recv_bps);
          ("p", J.Float p);
          ("slow_start", J.Bool slow_start);
        ]
    | Rtt_sample { sample; srtt } ->
        [ ("sample", J.Float sample); ("srtt", J.Float srtt) ]
    | Retransmit { seq = s; count } -> [ seq s; ("count", J.Int count) ]
    | Abandoned { seq = s } -> [ seq s ]
    | Negotiated { plane; mode; g_bps } ->
        [
          ("plane", J.String plane);
          ("mode", J.String mode);
          ("g_bps", J.Float g_bps);
        ]
    | Nego_failed { reason } -> [ ("reason", J.String reason) ]
    | Conn_state { state } -> [ ("state", J.String state) ]
    | Drop { link; reason; size } ->
        [
          ("link", J.String link);
          ("reason", J.String (drop_str reason));
          ("size", J.Int size);
        ]
    | Tcp_send { seq = s; retx } -> [ seq s; ("retx", J.Bool retx) ]
    | Tcp_ack_rcvd { cum_ack; cwnd; ssthresh } ->
        [
          ("cum_ack", J.Int (Serial.to_int cum_ack));
          ("cwnd", J.Float cwnd);
          ("ssthresh", J.Float ssthresh);
        ]
    | Handover { from_path; to_path; cut } ->
        [
          ("from", J.String from_path);
          ("to", J.String to_path);
          ("cut", J.Bool cut);
        ]
  in
  (name ev, J.Obj data)
