module J = Stats.Json

let magic = "# vtp-trace-1"

let canonical rec_ =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_set_margin fmt max_int;
  Format.fprintf fmt "%s@\n" magic;
  List.iter
    (fun flow ->
      match Recorder.ring rec_ ~flow with
      | None -> ()
      | Some ring ->
          Format.fprintf fmt "flow %d events=%d dropped=%d@\n" flow
            (Ring.total ring) (Ring.dropped ring);
          Ring.iter
            (fun { Ring.at; ev } ->
              Format.fprintf fmt "%h %a@\n" at Event.pp_canonical ev)
            ring)
    (Recorder.flows rec_);
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let digest_of_string s = Digest.to_hex (Digest.string s)

let digest rec_ = digest_of_string (canonical rec_)

let to_json ?(meta = []) rec_ =
  let flow_json flow =
    match Recorder.ring rec_ ~flow with
    | None -> J.Null
    | Some ring ->
        let events = ref [] in
        Ring.iter
          (fun { Ring.at; ev } ->
            let name, data = Event.to_json ev in
            events :=
              J.Obj [ ("time", J.Float at); ("name", J.String name); ("data", data) ]
              :: !events)
          ring;
        J.Obj
          [
            ("flow", J.Int flow);
            ("events", J.Int (Ring.total ring));
            ("dropped", J.Int (Ring.dropped ring));
            ("records", J.List (List.rev !events));
          ]
  in
  J.Obj
    [
      ("format", J.String "vtp-qlog-1");
      ("meta", J.Obj meta);
      ("traces", J.List (List.map flow_json (Recorder.flows rec_)));
    ]

type divergence = { line : int; left : string option; right : string option }

let diff a b =
  if String.equal a b then None
  else
    let la = String.split_on_char '\n' a in
    let lb = String.split_on_char '\n' b in
    let rec walk n la lb =
      match (la, lb) with
      | [], [] -> None
      | x :: la', y :: lb' ->
          if String.equal x y then walk (n + 1) la' lb'
          else Some { line = n; left = Some x; right = Some y }
      | x :: _, [] -> Some { line = n; left = Some x; right = None }
      | [], y :: _ -> Some { line = n; left = None; right = Some y }
    in
    walk 1 la lb

let pp_divergence fmt d =
  let side name v =
    match v with
    | Some s -> Format.fprintf fmt "  %s: %s@\n" name s
    | None -> Format.fprintf fmt "  %s: <end of trace>@\n" name
  in
  Format.fprintf fmt "first divergence at line %d:@\n" d.line;
  side "left " d.left;
  side "right" d.right
