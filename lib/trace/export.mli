(** Trace serialisation: canonical text, digests, qlog-style JSON and a
    line diff.

    The canonical form is the conformance artefact: a small line-based
    text whose bytes are a pure function of the recorded events, so two
    runs agree iff their canonical traces are byte-identical and a
    digest pins a whole corpus entry to one string.

    {v
    # vtp-trace-1
    flow 0 events=812 dropped=0
    0x0p+0 state established
    0x1.0624dd2f1a9fcp-10 send seq=0 size=1000 retx=0
    ...
    v}

    Timestamps and floats render as lossless hexadecimal literals;
    flows print in ascending id order. *)

val magic : string
(** First line of every canonical trace ("# vtp-trace-1"). *)

val canonical : Recorder.t -> string
(** The full canonical text (trailing newline included). *)

val digest : Recorder.t -> string
(** MD5 of {!canonical}, as a lowercase hex string. *)

val digest_of_string : string -> string
(** Digest of an already-serialised canonical trace. *)

val to_json : ?meta:(string * Stats.Json.t) list -> Recorder.t -> Stats.Json.t
(** qlog-style export: a header object (format tag plus [meta]) and one
    trace per flow with [(time, name, data)] event records. *)

type divergence = {
  line : int;  (** 1-based line number of the first difference *)
  left : string option;  (** that line on the left, if present *)
  right : string option;  (** that line on the right, if present *)
}

val diff : string -> string -> divergence option
(** [diff a b] compares two canonical traces line by line and returns
    the first divergence, or [None] when byte-identical. *)

val pp_divergence : Format.formatter -> divergence -> unit
