(* every wrapper below sits on the per-segment fast path *)
[@@@vtp.hot]

type t = { flow : int; now : unit -> float }

let make ~flow ~now = { flow; now }

(* one closure per sink at construction time, not per event *)
let[@vtp.alloc_ok] of_sim sim ~flow =
  { flow; now = (fun () -> Engine.Sim.now sim) }

let on sink = match sink with None -> false | Some _ -> Recorder.on ()

let emit sink ev =
  match sink with
  | None -> ()
  | Some s -> Recorder.emit ~flow:s.flow ~at:(s.now ()) ev

(* Hot-path wrappers: gate on the ambient registry BEFORE touching any
   argument (in particular before reading the clock), so an untraced
   run pays one load and two branches per call, same as [on]+[emit]. *)

let seg_send sink ~seq ~size ~retx =
  match sink with
  | None -> ()
  | Some s -> (
      match Recorder.installed () with
      | None -> ()
      | Some t ->
          Recorder.record_seg_send t ~flow:s.flow ~at:(s.now ()) ~seq ~size
            ~retx)

let seg_recv sink ~seq ~size ~ce ~retx =
  match sink with
  | None -> ()
  | Some s -> (
      match Recorder.installed () with
      | None -> ()
      | Some t ->
          Recorder.record_seg_recv t ~flow:s.flow ~at:(s.now ()) ~seq ~size
            ~ce ~retx)

let sack_sent sink ~cum_ack ~blocks ~x_recv =
  match sink with
  | None -> ()
  | Some s -> (
      match Recorder.installed () with
      | None -> ()
      | Some t ->
          Recorder.record_sack_sent t ~flow:s.flow ~at:(s.now ()) ~cum_ack
            ~blocks ~x_recv)

let sack_rcvd sink ~cum_ack ~blocks ~acked ~sacked ~lost =
  match sink with
  | None -> ()
  | Some s -> (
      match Recorder.installed () with
      | None -> ()
      | Some t ->
          Recorder.record_sack_rcvd t ~flow:s.flow ~at:(s.now ()) ~cum_ack
            ~blocks ~acked ~sacked ~lost)

let tcp_send sink ~seq ~retx =
  match sink with
  | None -> ()
  | Some s -> (
      match Recorder.installed () with
      | None -> ()
      | Some t ->
          Recorder.record_tcp_send t ~flow:s.flow ~at:(s.now ()) ~seq ~retx)

let tcp_ack sink ~cum_ack ~cwnd ~ssthresh =
  match sink with
  | None -> ()
  | Some s -> (
      match Recorder.installed () with
      | None -> ()
      | Some t ->
          Recorder.record_tcp_ack t ~flow:s.flow ~at:(s.now ()) ~cum_ack
            ~cwnd ~ssthresh)
