(** The flight recorder: one bounded {!Ring} per connection (flow id),
    fed through an ambient global registry.

    The registry follows the repo's one-simulation-at-a-time idiom
    (mirroring [Qtp.Inspect] and the experiment harness's checked
    mode): a harness {!install}s a recorder around a run and {!clear}s
    it after; instrumented modules ask {!on} — one mutable-load branch
    when tracing is off — before building an event, then hand it to
    {!emit}.  Recording is deterministic: events land in the emitting
    flow's ring in emission order, and rings never contain wall-clock
    or process-global state.

    Internally events are journaled through one shared flow-tagged
    ring (a single sequential write stream, cache-friendly where many
    interleaved per-flow rings are not); {!ring} materialises a flow's
    bounded ring from the journal on demand. *)

type t

val default_capacity : int
(** Per-flow ring capacity when none is given (16384). *)

val create : ?capacity:int -> unit -> t

val install : t -> unit
(** Make [t] the ambient recorder.  Replaces any previous one. *)

val clear : unit -> unit
(** Remove the ambient recorder (tracing off). *)

val installed : unit -> t option

val on : unit -> bool
(** Cheap guard: is a recorder installed?  Call before allocating an
    event on a hot path. *)

val emit : flow:int -> at:float -> Event.t -> unit
(** Record into the ambient recorder; no-op when none is installed. *)

val record : t -> flow:int -> at:float -> Event.t -> unit
(** Record into a specific recorder (bypassing the registry). *)

val record_seg_send :
  t -> flow:int -> at:float -> seq:Packet.Serial.t -> size:int ->
  retx:bool -> unit

val record_seg_recv :
  t -> flow:int -> at:float -> seq:Packet.Serial.t -> size:int ->
  ce:bool -> retx:bool -> unit

val record_sack_sent :
  t -> flow:int -> at:float -> cum_ack:Packet.Serial.t -> blocks:int ->
  x_recv:float -> unit

val record_sack_rcvd :
  t -> flow:int -> at:float -> cum_ack:Packet.Serial.t -> blocks:int ->
  acked:int -> sacked:int -> lost:int -> unit

val record_tcp_send :
  t -> flow:int -> at:float -> seq:Packet.Serial.t -> retx:bool -> unit

val record_tcp_ack :
  t -> flow:int -> at:float -> cum_ack:Packet.Serial.t -> cwnd:float ->
  ssthresh:float -> unit
(** Zero-allocation fast paths for the hot event shapes — no [Event.t]
    is built; the recorded bytes are identical to {!record} of the
    corresponding constructor. *)

val with_recorder : ?capacity:int -> (unit -> 'a) -> 'a * t
(** [with_recorder f] installs a fresh recorder, runs [f], clears the
    registry (also on exception) and returns [f]'s result with the
    recorder. *)

val flows : t -> int list
(** Flow ids with at least one event, ascending. *)

val ring : t -> flow:int -> Ring.t option
(** Materialise [flow]'s bounded ring (capped at the recorder's
    per-flow capacity) by replaying the journal — an O(events) walk,
    intended for export time, not hot paths.  [None] if the flow never
    recorded an event. *)

val events : t -> int
(** Total events recorded (evicted entries included). *)
