(* Recording funnels every flow through ONE shared journal ring: a
   hundred per-flow rings each force a cold cache-line fill per event
   (interleaved write streams defeat the hardware prefetcher — measured
   ~4x the cost of a single stream on the 100-flow bench scenario),
   while a single sequential journal streams at near-bandwidth.
   Per-flow bounded rings — the exported shape — are materialised on
   demand from the journal's flow labels; only per-flow event COUNTS
   are maintained online, in a direct-mapped array so the hot path
   stays allocation-free. *)

let max_slot = 1024

type t = {
  capacity : int;  (* bound for materialised per-flow rings *)
  journal : Ring.t;
  counts : int array;
  more : (int, int ref) Hashtbl.t;  (* flows outside [0, max_slot) *)
  mutable total : int;
}

let default_capacity = 16384

(* The journal holds [journal_factor] times the per-flow capacity, so
   each of up to [journal_factor] similarly-chatty flows keeps its full
   per-flow window; beyond that the journal sheds oldest-first across
   all flows (a global memory bound, counted per flow in the
   materialised views' [dropped]). *)
let journal_factor = 4

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.Recorder.create: capacity < 1";
  {
    capacity;
    journal = Ring.create ~capacity:(journal_factor * capacity);
    counts = Array.make max_slot 0;
    more = Hashtbl.create 16;
    total = 0;
  }

(* The ambient registry is domain-local: parallel fan-out (Engine.Pool)
   runs one simulation per domain, and each must journal into its own
   recorder — a shared ref would interleave unrelated runs' events and
   race on the ring.  Within a domain the discipline is unchanged: one
   installed recorder at a time. *)
let ambient : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let install t = Domain.DLS.get ambient := Some t

let clear () = Domain.DLS.get ambient := None

let installed () = !(Domain.DLS.get ambient)

let on () =
  match !(Domain.DLS.get ambient) with Some _ -> true | None -> false

let bump t flow =
  if flow >= 0 && flow < max_slot then t.counts.(flow) <- t.counts.(flow) + 1
  else begin
    match Hashtbl.find_opt t.more flow with
    | Some r -> incr r
    | None -> Hashtbl.add t.more flow (ref 1)
  end;
  t.total <- t.total + 1

let record t ~flow ~at ev =
  Ring.push ~flow t.journal ~at ev;
  bump t flow

let emit ~flow ~at ev =
  match !(Domain.DLS.get ambient) with
  | None -> ()
  | Some t -> record t ~flow ~at ev

(* Fast-path mirrors of {!Ring}'s zero-allocation pushes; {!Sink}'s
   wrappers check {!installed} before evaluating any argument, so an
   untraced run pays only that load. *)

let record_seg_send t ~flow ~at ~seq ~size ~retx =
  Ring.push_seg_send ~flow t.journal ~at ~seq ~size ~retx;
  bump t flow

let record_seg_recv t ~flow ~at ~seq ~size ~ce ~retx =
  Ring.push_seg_recv ~flow t.journal ~at ~seq ~size ~ce ~retx;
  bump t flow

let record_sack_sent t ~flow ~at ~cum_ack ~blocks ~x_recv =
  Ring.push_sack_sent ~flow t.journal ~at ~cum_ack ~blocks ~x_recv;
  bump t flow

let record_sack_rcvd t ~flow ~at ~cum_ack ~blocks ~acked ~sacked ~lost =
  Ring.push_sack_rcvd ~flow t.journal ~at ~cum_ack ~blocks ~acked ~sacked
    ~lost;
  bump t flow

let record_tcp_send t ~flow ~at ~seq ~retx =
  Ring.push_tcp_send ~flow t.journal ~at ~seq ~retx;
  bump t flow

let record_tcp_ack t ~flow ~at ~cum_ack ~cwnd ~ssthresh =
  Ring.push_tcp_ack ~flow t.journal ~at ~cum_ack ~cwnd ~ssthresh;
  bump t flow

let with_recorder ?capacity f =
  let t = create ?capacity () in
  install t;
  let x = Fun.protect ~finally:clear f in
  (x, t)

let count t flow =
  if flow >= 0 && flow < max_slot then t.counts.(flow)
  else match Hashtbl.find_opt t.more flow with Some r -> !r | None -> 0

let flows t =
  let ids = ref (Hashtbl.fold (fun k _ acc -> k :: acc) t.more []) in
  Array.iteri (fun i c -> if c > 0 then ids := i :: !ids) t.counts;
  List.sort Int.compare !ids

let ring t ~flow =
  let n = count t flow in
  if n = 0 then None
  else begin
    let r = Ring.create ~capacity:t.capacity in
    Ring.iter_tagged
      (fun fl e -> if fl = flow then Ring.push r ~at:e.Ring.at e.Ring.ev)
      t.journal;
    Ring.note_dropped r (n - Ring.total r);
    Some r
  end

let events t = t.total
