module Serial = Packet.Serial

type params = {
  packet_size : int;
  initial_window : float;
  initial_ssthresh : float;
  min_rto : float;
  max_rto : float;
  use_sack : bool;
  delayed_acks : bool;
}

let default_params =
  {
    packet_size = 1460;
    initial_window = 2.0;
    initial_ssthresh = 64.0;
    min_rto = 0.2;
    max_rto = 60.0;
    use_sack = false;
    delayed_acks = false;
  }

(* Congestion-control numerics in one all-float record: flat in the
   heap, so the per-ack cwnd/RTT updates write in place instead of
   boxing a float each (the fields used to be mutable floats in the
   mixed sender record).  [srtt] uses NaN for "no sample yet". *)
type cc = {
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable srtt : float;  (* NaN = no sample *)
  mutable rttvar : float;
  mutable rto : float;
}

type t = {
  sim : Engine.Sim.t;
  p : params;
  transmit : Tcp_wire.seg -> payload:int -> unit;
  (* Per-sequence flag bits (retransmitted / SACK-covered) for the
     in-flight window [snd_una, snd_nxt), kept in a power-of-two ring
     indexed by the sequence number — the hashtable version allocated a
     bucket per send and a removal walk per ack.  A slot is cleared
     when a fresh send claims its sequence number; growth keeps the
     window span strictly below capacity so live slots never collide. *)
  mutable meta : int array;
  mutable mask : int;
  mutable running : bool;
  mutable snd_una : Serial.t;
  mutable snd_nxt : Serial.t;
  cc : cc;
  mutable dupacks : int;
  mutable recover : Serial.t;  (* NewReno recovery point *)
  mutable in_recovery : bool;
  mutable backoff : int;
  rto_timer : Engine.Timer.t option ref;
  mutable sent : int;
  mutable retx : int;
  mutable timeouts : int;
}

let m_retx = 1
let m_sacked = 2

let flight t = Stdlib.max 0 (Serial.diff t.snd_nxt t.snd_una)

let grow_meta t =
  let cap = 2 * Array.length t.meta in
  let meta = Array.make cap 0 in
  let mask = cap - 1 in
  Serial.iter_range
    (fun s ->
      let i = Serial.to_int s in
      meta.(i land mask) <- t.meta.(i land t.mask))
    t.snd_una t.snd_nxt;
  t.meta <- meta;
  t.mask <- mask

let[@inline] meta_get t seq = t.meta.(Serial.to_int seq land t.mask)

let[@inline] meta_or t seq m =
  let i = Serial.to_int seq land t.mask in
  t.meta.(i) <- t.meta.(i) lor m

let rto_value t =
  Float.min t.p.max_rto (t.cc.rto *. float_of_int (1 lsl t.backoff))

let arm_rto t =
  match !(t.rto_timer) with
  | Some timer -> Engine.Timer.start timer ~after:(rto_value t)
  | None -> ()

let disarm_rto t =
  match !(t.rto_timer) with
  | Some timer -> Engine.Timer.stop timer
  | None -> ()

let[@vtp.hot] send_segment t ~seq ~is_retx =
  let now = Engine.Sim.now t.sim in
  if is_retx then begin
    t.retx <- t.retx + 1;
    meta_or t seq m_retx
  end
  else begin
    (* Fresh sends advance the window head: claim (and clear) the
       sequence number's ring slot. *)
    if flight t >= Array.length t.meta then grow_meta t;
    t.meta.(Serial.to_int seq land t.mask) <- 0;
    t.sent <- t.sent + 1
  end;
  t.transmit { Tcp_wire.seq; tstamp = now; is_retx } ~payload:t.p.packet_size;
  if not (Engine.Timer.is_armed (Option.get !(t.rto_timer))) then arm_rto t

(* Send as much new data as the window allows (the application is
   greedy). *)
let fill_window t =
  if t.running then begin
    let allowance () = int_of_float t.cc.cwnd - flight t in
    while allowance () > 0 do
      let seq = t.snd_nxt in
      t.snd_nxt <- Serial.succ t.snd_nxt;
      send_segment t ~seq ~is_retx:false
    done
  end

let sample_rtt t ~tstamp_echo ~echo_is_retx ~acked_was_retx =
  (* Karn's rule: never time a segment that was retransmitted. *)
  if not (echo_is_retx || acked_was_retx) then begin
    let sample = Engine.Sim.now t.sim -. tstamp_echo in
    if sample > 0.0 then begin
      (if Float.is_nan t.cc.srtt then begin
         t.cc.srtt <- sample;
         t.cc.rttvar <- sample /. 2.0
       end
       else begin
         let err = sample -. t.cc.srtt in
         t.cc.srtt <- t.cc.srtt +. (0.125 *. err);
         t.cc.rttvar <- (0.75 *. t.cc.rttvar) +. (0.25 *. Float.abs err)
       end);
      t.cc.rto <-
        Float.max t.p.min_rto
          (Float.min t.p.max_rto (t.cc.srtt +. (4.0 *. t.cc.rttvar)))
    end
  end

let enter_fast_recovery t =
  let fl = float_of_int (flight t) in
  t.cc.ssthresh <- Float.max 2.0 (fl /. 2.0);
  t.cc.cwnd <- t.cc.ssthresh +. 3.0;
  t.in_recovery <- true;
  t.recover <- t.snd_nxt;
  send_segment t ~seq:t.snd_una ~is_retx:true

let on_timeout t =
  t.timeouts <- t.timeouts + 1;
  t.cc.ssthresh <- Float.max 2.0 (float_of_int (flight t) /. 2.0);
  t.cc.cwnd <- 1.0;
  t.dupacks <- 0;
  t.in_recovery <- false;
  t.backoff <- Stdlib.min 6 (t.backoff + 1);
  if t.running && Serial.( < ) t.snd_una t.snd_nxt then begin
    send_segment t ~seq:t.snd_una ~is_retx:true;
    arm_rto t
  end

let create ~sim p ~transmit () =
  let t =
    {
      sim;
      p;
      transmit;
      meta = Array.make 64 0;
      mask = 63;
      running = false;
      snd_una = Serial.zero;
      snd_nxt = Serial.zero;
      cc =
        {
          cwnd = p.initial_window;
          ssthresh = p.initial_ssthresh;
          srtt = Float.nan;
          rttvar = 0.0;
          rto = 1.0;
        };
      dupacks = 0;
      recover = Serial.zero;
      in_recovery = false;
      backoff = 0;
      rto_timer = ref None;
      sent = 0;
      retx = 0;
      timeouts = 0;
    }
  in
  t.rto_timer :=
    Some (Engine.Timer.create sim ~on_expire:(fun () -> on_timeout t));
  t

let start t =
  if not t.running then begin
    t.running <- true;
    fill_window t
  end

let stop t =
  t.running <- false;
  disarm_rto t

(* First unsacked hole above una — the NewReno partial-ack retransmit
   target, refined by SACK information when enabled. *)
let next_hole t =
  if not t.p.use_sack then t.snd_una
  else begin
    let rec scan s =
      if Serial.( >= ) s t.snd_nxt then t.snd_una
      else if meta_get t s land m_sacked <> 0 then scan (Serial.succ s)
      else s
    in
    scan t.snd_una
  end

(* Cold path: only runs when use_sack is on and blocks are present. *)
let mark_sacked t blocks =
  List.iter
    (fun (b : Sack.Blocks.t) ->
      Serial.iter_range
        (fun s -> if Serial.( >= ) s t.snd_una then meta_or t s m_sacked)
        b.block_start b.block_end)
    blocks

let[@vtp.hot] on_ack t (ack : Tcp_wire.ack) =
  (match ack.blocks with
  | [] -> ()
  | blocks -> if t.p.use_sack then mark_sacked t blocks);
  if Serial.( > ) ack.cum_ack t.snd_una then begin
    (* New data acknowledged.  Acked slots need no cleanup: the ring
       slot is cleared when a fresh send reclaims the number. *)
    let acked_was_retx = meta_get t t.snd_una land m_retx <> 0 in
    t.snd_una <- ack.cum_ack;
    t.backoff <- 0;
    sample_rtt t ~tstamp_echo:ack.tstamp_echo ~echo_is_retx:ack.echo_is_retx
      ~acked_was_retx;
    if t.in_recovery then begin
      if Serial.( >= ) ack.cum_ack t.recover then begin
        (* Full ack: leave recovery, deflate. *)
        t.in_recovery <- false;
        t.cc.cwnd <- t.cc.ssthresh;
        t.dupacks <- 0
      end
      else begin
        (* Partial ack: retransmit the next hole, stay in recovery. *)
        send_segment t ~seq:(next_hole t) ~is_retx:true;
        t.cc.cwnd <- Float.max 1.0 (t.cc.cwnd -. 1.0)
      end
    end
    else begin
      t.dupacks <- 0;
      if t.cc.cwnd < t.cc.ssthresh then t.cc.cwnd <- t.cc.cwnd +. 1.0
      else t.cc.cwnd <- t.cc.cwnd +. (1.0 /. t.cc.cwnd)
    end;
    if Serial.( < ) t.snd_una t.snd_nxt then arm_rto t else disarm_rto t;
    fill_window t
  end
  else if Serial.equal ack.cum_ack t.snd_una && Serial.( < ) t.snd_una t.snd_nxt
  then begin
    (* Duplicate ack. *)
    if t.in_recovery then begin
      t.cc.cwnd <- t.cc.cwnd +. 1.0;
      fill_window t
    end
    else begin
      t.dupacks <- t.dupacks + 1;
      if t.dupacks = 3 then enter_fast_recovery t
    end
  end

let cwnd t = t.cc.cwnd
let ssthresh t = t.cc.ssthresh
let srtt t = if Float.is_nan t.cc.srtt then None else Some t.cc.srtt
let rto t = rto_value t
let in_fast_recovery t = t.in_recovery
let segments_sent t = t.sent
let retransmits t = t.retx
let timeouts t = t.timeouts
